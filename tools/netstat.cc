// netstat: walk a node's /net the way the paper reads it — every protocol
// directory, every conversation's status file, then the registry snapshot in
// /net/stats — over a live 9P-over-IL session, optionally under a fault
// profile.  Demonstrates that all observability is plain files: the same
// walk also runs against a *remote* /net imported with 9P (§6.1).
//
// With --chaos, musca is crashed and restarted between the echo traffic and
// the export, so the final counter section shows the chaos.* / recovery.*
// families moving.
//
//   netstat [--profile=burst-loss|reorder|hostile] [--rounds=N] [--trace]
//           [--chaos]
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/ns/proc.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/faults.h"
#include "src/svc/exportfs.h"
#include "src/svc/listen.h"
#include "src/world/boot.h"
#include "src/world/node.h"

using namespace plan9;

namespace {

const char kNdb[] =
    "sys=helix\n\tip=135.104.9.31\n\til=echo port=56789\n"
    "sys=musca\n\tip=135.104.9.6\n\til=exportfs port=17007\n";

// Print every conversation's status line under each protocol directory,
// then the stats file — one walk serves both local and imported /net.
void WalkNet(Proc* proc, const std::string& net, const char* heading) {
  std::printf("== %s (%s) ==\n", heading, net.c_str());
  auto entries = proc->ReadDir(net);
  if (!entries.ok()) {
    std::printf("  (unreadable: %s)\n", entries.error().message().c_str());
    return;
  }
  for (const auto& d : *entries) {
    if (!d.qid.IsDir()) {
      continue;
    }
    auto convs = proc->ReadDir(net + "/" + d.name);
    if (!convs.ok()) {
      continue;
    }
    for (const auto& c : *convs) {
      if (!c.qid.IsDir()) {
        continue;
      }
      auto status =
          proc->ReadFile(net + "/" + d.name + "/" + c.name + "/status");
      if (status.ok() && !status->empty()) {
        std::printf("  %s", status->c_str());
      }
    }
  }
  auto stats = proc->ReadFile(net + "/stats");
  if (stats.ok()) {
    std::printf("\n-- %s/stats --\n%s", net.c_str(), stats->c_str());
  }
}

// The lifecycle, recovery, and recorder-health counters live in the
// process-wide registry, not any one node's /net/stats; print just those
// families (obs.trace.dropped says whether the flight recorder overwrote
// events nobody had read yet).
void PrintChaosCounters() {
  std::istringstream all(obs::MetricsRegistry::Default().RenderText());
  std::printf("\n-- chaos/recovery/obs counters --\n");
  std::string line;
  while (std::getline(all, line)) {
    if (line.rfind("chaos.", 0) == 0 || line.rfind("recovery.", 0) == 0 ||
        line.rfind("obs.", 0) == 0) {
      std::printf("%s\n", line.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile_name = "none";
  int rounds = 50;
  bool trace = false;
  bool chaos = false;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("--profile=", 0) == 0) {
      profile_name = arg.substr(10);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      rounds = std::atoi(arg.c_str() + 9);
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--chaos") {
      chaos = true;
    } else {
      std::fprintf(stderr,
                   "usage: netstat [--profile=burst-loss|reorder|hostile] "
                   "[--rounds=N] [--trace] [--chaos]\n");
      return 2;
    }
  }

  LinkParams params = LinkParams::Ether10();
  if (profile_name == "burst-loss") {
    params.faults = FaultProfile::BurstLoss(0.05);
  } else if (profile_name == "reorder") {
    params.faults =
        FaultProfile::Reorder(0.10, std::chrono::microseconds(3000));
  } else if (profile_name == "hostile") {
    params.faults = FaultProfile::Hostile();
  } else if (profile_name != "none") {
    std::fprintf(stderr, "unknown profile %s\n", profile_name.c_str());
    return 2;
  }

  EtherSegment ether(params);
  auto db = std::make_shared<Ndb>();
  if (!db->Load(kNdb).ok()) {
    std::fprintf(stderr, "ndb load failed\n");
    return 1;
  }
  Node helix("helix"), musca("musca");
  helix.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                 Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
  musca.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                 Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
  if (!BootNetwork(&helix, db, kNdb).ok() ||
      !BootNetwork(&musca, db, kNdb).ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }

  if (trace) {
    (void)obs::FlightRecorder::Default().Ctl("trace on il dial 9p fault");
  }

  // Traffic source 1: IL echo round trips.  Serve echo on helix, dial from
  // musca, so both nodes' counters move.
  auto echo = StartEchoService(
      std::shared_ptr<Proc>(helix.NewProc().release()), "il!*!echo");
  if (!echo.ok()) {
    std::fprintf(stderr, "echo announce failed\n");
    return 1;
  }
  auto client = musca.NewProc();
  auto fd = Dial(client.get(), "il!135.104.9.31!56789");
  if (!fd.ok()) {
    std::fprintf(stderr, "dial failed: %s\n", fd.error().message().c_str());
    return 1;
  }
  std::string ping(512, 'p');
  for (int i = 0; i < rounds; i++) {
    if (!client->WriteString(*fd, ping).ok()) {
      break;
    }
    (void)client->ReadString(*fd, ping.size() * 2);
  }

  // Optional chaos cycle: crash musca (silent on the wire — the echo
  // client's conversation dies without a goodbye) and reboot it from its
  // recorded spec before the export below, so the counter section at the
  // end shows the lifecycle families moving.
  if (chaos) {
    musca.Crash();
    Status back = musca.Restart();
    if (!back.ok()) {
      std::fprintf(stderr, "restart failed: %s\n", back.error().message().c_str());
      return 1;
    }
    std::printf("chaos: musca crashed and restarted (generation %d)\n",
                musca.generation());
  }

  // Traffic source 2: a 9P-over-IL session — musca exports its /net, helix
  // imports it, and the final walk reads musca's counters remotely.
  auto exportsvc = StartExportfs(
      std::shared_ptr<Proc>(musca.NewProc().release()), "il!*!exportfs");
  if (!exportsvc.ok()) {
    std::fprintf(stderr, "exportfs failed\n");
    return 1;
  }
  auto importer = helix.NewProcPrivate();
  Status imported = Import(importer.get(), "il!135.104.9.6!17007", "/net",
                           "/n/muscanet", kMRepl);

  std::printf("netstat: profile=%s rounds=%d\n\n", profile_name.c_str(),
              rounds);
  auto hp = helix.NewProc();
  WalkNet(hp.get(), "/net", "helix local");
  auto mp = musca.NewProc();
  std::printf("\n");
  WalkNet(mp.get(), "/net", "musca local");
  if (imported.ok()) {
    std::printf("\n");
    WalkNet(importer.get(), "/n/muscanet", "musca via 9P import");
  } else {
    std::printf("\n(import of musca /net failed: %s)\n",
                imported.error().message().c_str());
  }
  PrintChaosCounters();

  if (trace) {
    auto tr = hp->ReadFile("/net/trace");
    if (tr.ok()) {
      std::printf("\n-- /net/trace --\n%s", tr->c_str());
    }
    (void)obs::FlightRecorder::Default().Ctl("trace off");
  }
  (void)client->Close(*fd);
  return 0;
}

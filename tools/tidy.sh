#!/bin/sh
# Run clang-tidy (config: .clang-tidy) over the tree.
#
#   tools/tidy.sh [--diff ref] [build-dir] [file...]
#
# Needs a configured build dir for compile_commands.json (exported by the
# top-level CMakeLists).  With no files given, checks every .cc under
# src/, tests/, bench/ and examples/.  With --diff REF, checks only the
# .cc files changed relative to REF (what CI uses on pull requests; pushes
# to main get the full scan).  Exits non-zero on any finding that
# .clang-tidy promotes to an error.
set -eu

cd "$(dirname "$0")/.."

diff_ref=""
if [ "${1:-}" = "--diff" ]; then
  diff_ref="${2:?tidy.sh: --diff needs a git ref}"
  shift 2
fi

build="${1:-build}"
[ $# -gt 0 ] && shift

if [ ! -f "$build/compile_commands.json" ]; then
  echo "tidy.sh: no $build/compile_commands.json — run: cmake -B $build -S ." >&2
  exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "tidy.sh: $tidy not found (set CLANG_TIDY to override)" >&2
  exit 2
fi

if [ -n "$diff_ref" ]; then
  # Changed .cc files only; deleted files drop out via the -f test.  A .h
  # change still tidies the .cc files that include it only on the full
  # scan — the PR gate is a fast signal, not the last line of defense.
  files=$(git diff --name-only --diff-filter=d "$diff_ref" -- \
            'src/*.cc' 'tests/*.cc' 'bench/*.cc' 'examples/*.cc' \
            'tools/*.cc' | sort)
  if [ -z "$files" ]; then
    echo "tidy.sh: no .cc files changed relative to $diff_ref"
    exit 0
  fi
elif [ $# -gt 0 ]; then
  files="$*"
else
  files=$(find src tests bench examples -name '*.cc' | sort)
fi

jobs="$(nproc 2>/dev/null || echo 2)"
echo "$files" | tr ' ' '\n' | xargs -P "$jobs" -n 4 "$tidy" -p "$build" --quiet

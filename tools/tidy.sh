#!/bin/sh
# Run clang-tidy (config: .clang-tidy) over the tree.
#
#   tools/tidy.sh [build-dir] [file...]
#
# Needs a configured build dir for compile_commands.json (exported by the
# top-level CMakeLists).  With no files given, checks every .cc under
# src/, tests/, bench/ and examples/.  Exits non-zero on any finding that
# .clang-tidy promotes to an error.
set -eu

cd "$(dirname "$0")/.."

build="${1:-build}"
[ $# -gt 0 ] && shift

if [ ! -f "$build/compile_commands.json" ]; then
  echo "tidy.sh: no $build/compile_commands.json — run: cmake -B $build -S ." >&2
  exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "tidy.sh: $tidy not found (set CLANG_TIDY to override)" >&2
  exit 2
fi

if [ $# -gt 0 ]; then
  files="$*"
else
  files=$(find src tests bench examples -name '*.cc' | sort)
fi

jobs="$(nproc 2>/dev/null || echo 2)"
echo "$files" | tr ' ' '\n' | xargs -P "$jobs" -n 4 "$tidy" -p "$build" --quiet

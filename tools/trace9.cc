// trace9: cross-node causal tracing, demonstrated and stitched (§6.1 spirit:
// everything — including the trace — is a file you can import).
//
// Demo mode (default): boot a three-node world
//
//   helix ── musca (gateway) ── tern (server)
//
// where tern exports its root over IL, musca imports it at /n/tern and
// re-exports its own root, and helix imports musca at /n/gw.  With
// `trace sample 1` written to /net/ctl, a helix read of
// /n/gw/n/tern/net/stats fans out spans on every hop: helix's 9p.client.*,
// musca's 9p.server.* relaying into its own 9p.client.*, tern's
// 9p.server.*.  trace9 then walks the local and imported /net/trace files,
// stitches the span records into per-trace trees, and prints each tree with
// per-hop latency attribution plus a critical-path summary.
//
// Stitch mode: `trace9 --stitch-file=PATH` parses span records out of any
// flight-recorder dump (e.g. the chaos CI artifact), prints the trees, and
// with --fail-orphans / --min-hops=N exits nonzero when a span's parent was
// never seen or no tree reaches N hops — the CI gate for context loss.
//
//   trace9 [--dump=PATH] [--fail-orphans] [--min-hops=N]
//   trace9 --stitch-file=PATH [--fail-orphans] [--min-hops=N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/ns/proc.h"
#include "src/obs/span.h"
#include "src/obs/stitch.h"
#include "src/obs/trace.h"
#include "src/svc/exportfs.h"
#include "src/world/boot.h"
#include "src/world/node.h"

using namespace plan9;

namespace {

const char kNdb[] =
    "sys=helix\n\tip=135.104.9.31\n"
    "sys=musca\n\tip=135.104.9.6\n\til=exportfs port=17008\n"
    "sys=tern\n\tip=135.104.9.42\n\til=9fs port=17007\n";

int Report(const std::vector<obs::SpanTree>& trees, bool fail_orphans,
           size_t min_hops) {
  if (trees.empty()) {
    std::printf("no traces found\n");
  }
  size_t orphan_total = 0;
  int max_depth = 0;
  for (const auto& tree : trees) {
    std::printf("%s", obs::RenderSpanTree(tree).c_str());
    std::printf("  critical path: %s\n\n", obs::CriticalPath(tree).c_str());
    orphan_total += tree.orphans.size();
    max_depth = std::max(max_depth, obs::SpanTreeDepth(tree));
  }
  std::printf("-- per-hop latency --\n%s", obs::PerHopSummary(trees).c_str());
  int rc = 0;
  if (fail_orphans && orphan_total > 0) {
    std::fprintf(stderr, "FAIL: %zu orphan span(s) — parent id never seen\n",
                 orphan_total);
    rc = 1;
  }
  if (min_hops > 0 && max_depth < static_cast<int>(min_hops)) {
    std::fprintf(stderr, "FAIL: deepest trace has %d hop(s), need %zu\n",
                 max_depth, min_hops);
    rc = 1;
  }
  return rc;
}

int StitchFile(const std::string& path, bool fail_orphans, size_t min_hops) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace9: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto spans = obs::ParseSpans(text.str());
  std::printf("%zu span(s) in %s\n\n", spans.size(), path.c_str());
  return Report(obs::StitchSpans(spans), fail_orphans, min_hops);
}

}  // namespace

int main(int argc, char** argv) {
  std::string stitch_path;
  std::string dump_path;
  bool fail_orphans = false;
  size_t min_hops = 0;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("--stitch-file=", 0) == 0) {
      stitch_path = arg.substr(14);
    } else if (arg.rfind("--dump=", 0) == 0) {
      dump_path = arg.substr(7);
    } else if (arg == "--fail-orphans") {
      fail_orphans = true;
    } else if (arg.rfind("--min-hops=", 0) == 0) {
      min_hops = static_cast<size_t>(std::atoi(arg.c_str() + 11));
    } else {
      std::fprintf(stderr,
                   "usage: trace9 [--stitch-file=PATH] [--dump=PATH] "
                   "[--fail-orphans] [--min-hops=N]\n");
      return 2;
    }
  }
  if (!stitch_path.empty()) {
    return StitchFile(stitch_path, fail_orphans, min_hops);
  }

  // --- demo world: helix -> musca (gateway) -> tern --------------------------
  EtherSegment ether(LinkParams::Ether10());
  auto db = std::make_shared<Ndb>();
  if (!db->Load(kNdb).ok()) {
    std::fprintf(stderr, "ndb load failed\n");
    return 1;
  }
  Node helix("helix"), musca("musca"), tern("tern");
  helix.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                 Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
  musca.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                 Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
  tern.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 3},
                Ipv4Addr::FromOctets(135, 104, 9, 42), Ipv4Addr{0xffffff00});
  if (!BootNetwork(&helix, db, kNdb).ok() || !BootNetwork(&musca, db, kNdb).ok() ||
      !BootNetwork(&tern, db, kNdb).ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }

  // Head sampling on, through the file interface like any other program.
  auto ctl = helix.NewProc();
  if (!ctl->WriteFile("/net/ctl", "trace sample 1").ok()) {
    std::fprintf(stderr, "trace sample ctl failed\n");
    return 1;
  }

  // tern exports its root; musca imports it into the *base* namespace (so
  // musca's own exportfs serves it onward) and re-exports; helix imports the
  // gateway.  The classic multi-hop import chain.  Managed imports so exit
  // dismantles each session in reverse declaration order and the exporters
  // can join their handlers.
  ImportOptions iopts;
  iopts.flags = kMRepl;
  auto ternfs = StartExportfs(
      std::shared_ptr<Proc>(tern.NewProc().release()), "il!*!9fs");
  if (!ternfs.ok()) {
    std::fprintf(stderr, "tern exportfs failed\n");
    return 1;
  }
  auto muscaproc = musca.NewProc();
  auto tern_import =
      ImportManaged(muscaproc.get(), "il!tern!9fs", "/", "/n/tern", iopts);
  if (!tern_import.ok()) {
    std::fprintf(stderr, "musca import failed: %s\n",
                 tern_import.error().message().c_str());
    return 1;
  }
  auto gwfs = StartExportfs(
      std::shared_ptr<Proc>(musca.NewProc().release()), "il!*!exportfs");
  if (!gwfs.ok()) {
    std::fprintf(stderr, "musca exportfs failed\n");
    return 1;
  }
  auto helixproc = helix.NewProcPrivate();
  auto gw_import =
      ImportManaged(helixproc.get(), "il!musca!exportfs", "/", "/n/gw", iopts);
  if (!gw_import.ok()) {
    std::fprintf(stderr, "helix import failed: %s\n",
                 gw_import.error().message().c_str());
    return 1;
  }

  // Traced traffic: each read from helix crosses two 9P hops.
  for (int i = 0; i < 3; i++) {
    auto remote = helixproc->ReadFile("/n/gw/n/tern/net/stats");
    if (!remote.ok()) {
      std::fprintf(stderr, "remote read failed: %s\n",
                   remote.error().message().c_str());
      return 1;
    }
  }
  (void)ctl->WriteFile("/net/ctl", "trace sample 0", /*create=*/false);

  // Harvest the span records the way an operator would: this node's
  // /net/trace plus the imported ones.  (In the simulator all nodes share
  // one recorder, so these reads overlap; ParseSpans dedupes by span id —
  // exactly what a real multi-machine stitch must do anyway.)
  std::string text;
  for (const char* path :
       {"/net/trace", "/n/gw/net/trace", "/n/gw/n/tern/net/trace"}) {
    auto t = helixproc->ReadFile(path);
    if (t.ok()) {
      text += *t;
    }
  }
  if (!dump_path.empty()) {
    std::ofstream out(dump_path);
    out << text;
  }
  auto spans = obs::ParseSpans(text);
  std::printf("trace9: %zu span(s) harvested across 3 nodes\n\n", spans.size());
  return Report(obs::StitchSpans(spans), fail_orphans, min_hops);
}

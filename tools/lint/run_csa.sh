#!/bin/sh
# Run the Clang Static Analyzer over every translation unit in the compile
# database.
#
#   tools/lint/run_csa.sh [build-dir]
#
# Uses scan-build when present, else drives `clang++ --analyze` per entry in
# compile_commands.json.  Findings matching a line in
# tools/lint/csa-suppressions.txt (substring match against the
# "file:line: warning: ..." output) are dropped.  CI runs this job
# non-blocking (continue-on-error): CSA's interprocedural nullability and
# leak findings are valuable but too path-sensitive to gate merges on.
set -u

cd "$(dirname "$0")/../.."
build="${1:-build}"
supp="tools/lint/csa-suppressions.txt"

if [ ! -f "$build/compile_commands.json" ]; then
  echo "run_csa.sh: no $build/compile_commands.json — run: cmake -B $build -S ." >&2
  exit 2
fi

clangxx="${CLANGXX:-clang++}"
if command -v scan-build >/dev/null 2>&1; then
  echo "run_csa.sh: using scan-build"
  scan-build --status-bugs -o "$build/csa" \
    cmake --build "$build" --clean-first -j "$(nproc 2>/dev/null || echo 2)"
  exit $?
fi
if ! command -v "$clangxx" >/dev/null 2>&1; then
  echo "run_csa.sh: neither scan-build nor $clangxx found; skipping" >&2
  exit 2
fi

# Fallback: --analyze each TU with the flags from the compile database.
out="$build/csa-findings.txt"
python3 - "$build" "$clangxx" > "$out" 2>&1 <<'EOF'
import json, shlex, subprocess, sys
build, clangxx = sys.argv[1], sys.argv[2]
entries = json.load(open(f"{build}/compile_commands.json"))
rc = 0
for e in entries:
    f = e["file"]
    if "_deps" in f:
        continue
    raw = e.get("arguments") or shlex.split(e["command"])
    keep = [a for a in raw[1:] if a.startswith(("-I", "-D", "-std", "-isystem"))]
    p = subprocess.run([clangxx, "--analyze",
                        "--analyzer-output", "text", *keep, f],
                       capture_output=True, text=True, cwd=e.get("directory", "."))
    if p.stderr.strip():
        sys.stdout.write(p.stderr)
sys.exit(0)
EOF

# Apply the suppression list and report.
findings=$(grep -E "warning:" "$out" 2>/dev/null || true)
if [ -f "$supp" ]; then
  while IFS= read -r line; do
    case "$line" in ""|\#*) continue;; esac
    findings=$(printf '%s\n' "$findings" | grep -vF "$line" || true)
  done < "$supp"
fi
if [ -n "$findings" ]; then
  printf '%s\n' "$findings"
  count=$(printf '%s\n' "$findings" | grep -c "warning:")
  echo "run_csa.sh: $count unsuppressed finding(s)" >&2
  exit 1
fi
echo "run_csa.sh: clean"
exit 0

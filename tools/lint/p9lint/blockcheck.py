"""Blockcheck: ownership and copy discipline for the Block data path.

Four checks over the P9_CONSUMES / P9_BORROWS / P9_HOT_PATH annotations
(src/base/block_annotations.h, DESIGN.md section 13):

  use-after-move       a BlockPtr named after std::move(it) on the same path
  consume-on-all-paths a P9_CONSUMES parameter must be forwarded, pooled, or
                       explicitly dropped on every exit
  copy-in-hot-path     hot-reachable functions must not clone, copy-build, or
                       heap-allocate per message (whitelist: HOT_PATH_SAFE)
  borrow-escape        a P9_BORROWS parameter must not have its address taken
                       or be stored past the call

All four run over per-file RAW bodies rather than the merged Function
records: the protocol modules are all anonymous-namespace `class Module`, so
their qnames collide and merging would silently skip every body but the
first.  Hot-path propagation instead uses Program.all_calls, the unioned
call graph over every body (direction: callee-ward — anything a hot
function calls is itself hot, the inverse of MAY_BLOCK's caller-ward walk).
"""

from typing import Dict, List, Optional, Set, Tuple

from . import config
from .model import Finding, Program, Token
from .textparse import FileIndex, RawFunction

_CTRL = {"if", "for", "while", "switch"}


def _raws(files: List[FileIndex]):
    for fi in files:
        for raw in fi.raw_functions:
            yield raw


# --------------------------------------------------------------------------
# Annotation collection and hot-path propagation.
# --------------------------------------------------------------------------


def collect_consumes(files: List[FileIndex]) -> Dict[str, Set[str]]:
    """qname -> consumed parameter names, merged over declarations and
    definitions (the annotation usually rides the header declaration)."""
    out: Dict[str, Set[str]] = {}
    for raw in _raws(files):
        if raw.consumes:
            out.setdefault(raw.qname, set()).update(raw.consumes)
    return out


def collect_borrows(files: List[FileIndex]) -> Dict[str, Set[str]]:
    out: Dict[str, Set[str]] = {}
    for raw in _raws(files):
        if raw.borrows:
            out.setdefault(raw.qname, set()).update(raw.borrows)
    return out


def propagate_hot(program: Program, files: List[FileIndex]) -> Set[str]:
    """Transitive closure: a function is hot if annotated P9_HOT_PATH, a
    configured seed, or called (by resolved qualified name) from a hot
    function.  Callee-ward: work a per-message path does is per-message."""
    hot: Set[str] = set(config.HOT_SEEDS)
    for raw in _raws(files):
        if raw.hot:
            hot.add(raw.qname)
    changed = True
    while changed:
        changed = False
        for q in list(hot):
            for callee in program.all_calls.get(q, ()):
                if callee in program.functions and callee not in hot:
                    hot.add(callee)
                    changed = True
    return hot


# --------------------------------------------------------------------------
# Shared token helpers.
# --------------------------------------------------------------------------


def _match(toks: List[Token], i: int, open_t: str, close_t: str) -> int:
    depth = 0
    n = len(toks)
    while i < n:
        if toks[i].text == open_t:
            depth += 1
        elif toks[i].text == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _block_ptr_vars(raw: RawFunction) -> Set[str]:
    """Parameters and locals of a block-owning type in this body."""
    vars_: Set[str] = {name for (t, name) in raw.params
                       if t in config.BLOCK_PTR_TYPES}
    toks = raw.body
    for i in range(len(toks) - 1):
        if (toks[i].kind == "id" and toks[i].text in config.BLOCK_PTR_TYPES
                and toks[i + 1].kind == "id"):
            vars_.add(toks[i + 1].text)
    return vars_


def _is_move_of(toks: List[Token], i: int, vars_: Set[str]) -> Optional[str]:
    """toks[i] == 'move': the var moved if this is std::move(<var>)."""
    if (i >= 2 and toks[i - 1].text == "::" and toks[i - 2].text == "std"
            and i + 3 < len(toks) and toks[i + 1].text == "("
            and toks[i + 2].kind == "id" and toks[i + 2].text in vars_
            and toks[i + 3].text == ")"):
        return toks[i + 2].text
    return None


# --------------------------------------------------------------------------
# Check: use-after-move.
# --------------------------------------------------------------------------


def check_use_after_move(files: List[FileIndex]) -> List[Finding]:
    out: List[Finding] = []
    for raw in _raws(files):
        if not raw.has_body:
            continue
        vars_ = _block_ptr_vars(raw)
        if not vars_:
            continue
        toks = raw.body
        n = len(toks)
        # var -> brace depth at the move; a move inside a deeper scope than
        # the use is conditional, so the moved state dies with its scope.
        moved: Dict[str, int] = {}
        emitted: Set[str] = set()
        depth = 0
        virt = 0  # braceless if/else/loop bodies, popped at ';'
        paren = 0
        i = 0

        def eff() -> int:
            return depth + virt

        while i < n:
            t = toks[i]
            tt = t.text
            if tt in "([":
                paren += 1
            elif tt in ")]":
                paren -= 1
            elif tt == "{":
                depth += 1
            elif tt == "}":
                depth -= 1
                moved_now = {v: d for v, d in moved.items() if d <= eff()}
                moved.clear()
                moved.update(moved_now)
            elif tt == ";" and paren == 0 and virt > 0:
                virt = 0
                moved_now = {v: d for v, d in moved.items() if d <= eff()}
                moved.clear()
                moved.update(moved_now)
            if t.kind == "id" and tt in _CTRL.union({"else"}):
                # Peek past the condition: a non-'{' body is a virtual scope.
                j = i + 1
                if j < n and toks[j].text == "(":
                    j = _match(toks, j, "(", ")")
                if j < n and toks[j].text not in ("{", "if"):
                    virt += 1
            if t.kind == "id" and tt == "move":
                v = _is_move_of(toks, i, vars_)
                if v is not None:
                    if v in moved and moved[v] <= eff() and v not in emitted:
                        out.append(Finding(
                            check="use-after-move",
                            file=raw.file, line=t.line, function=raw.qname,
                            message=(f"BlockPtr {v!r} is moved again after "
                                     f"std::move({v}); ownership already "
                                     f"left this function"),
                            detail=f"var={v}"))
                        emitted.add(v)
                    else:
                        moved[v] = eff()
                    i += 4
                    continue
            if t.kind == "id" and tt in vars_:
                nxt = toks[i + 1].text if i + 1 < n else ""
                prev = toks[i - 1].text if i > 0 else ""
                if tt in moved and moved[tt] <= eff() and tt not in emitted:
                    # Reassignment / reset() revives the pointer.
                    if nxt == "=" or (nxt == "." and i + 2 < n
                                      and toks[i + 2].text == "reset"):
                        del moved[tt]
                    elif nxt in ("->", ".") or prev == "*":
                        out.append(Finding(
                            check="use-after-move",
                            file=raw.file, line=t.line, function=raw.qname,
                            message=(f"BlockPtr {v!r} dereferenced after "
                                     f"std::move({tt}); the block now belongs"
                                     f" to the callee"
                                     ).replace(f"{v!r}", f"{tt!r}"),
                            detail=f"var={tt}"))
                        emitted.add(tt)
                elif nxt == "=" and tt in moved:
                    del moved[tt]
            i += 1
    return out


# --------------------------------------------------------------------------
# Check: consume-on-all-paths.
# --------------------------------------------------------------------------


def _stmt_consumes(stmt: List[Token], var: str) -> bool:
    """A statement consumes `var` if it std::moves it, resets it, or
    reassigns it (ownership handed off or explicitly replaced)."""
    vset = {var}
    n = len(stmt)
    for i, t in enumerate(stmt):
        if t.kind != "id":
            continue
        if t.text == "move" and _is_move_of(stmt, i, vset) is not None:
            return True
        if t.text == var and i + 1 < n:
            nxt = stmt[i + 1].text
            if nxt == "=":
                return True
            if (nxt == "." and i + 2 < n and stmt[i + 2].text == "reset"):
                return True
    return False


def _walk_consume(toks: List[Token], var: str, consumed: bool,
                  findings: List[Tuple[int, str]]) -> Tuple[bool, bool]:
    """Walk one statement list.  Returns (consumed after, always exits).

    `findings` collects (line, kind) for exits reached with `var` owned but
    unconsumed.  Branches merge pessimistically (both must consume), loops
    and switches optimistically (the check is for forgotten paths, not
    double moves — use-after-move covers those).
    """
    n = len(toks)
    i = 0
    always_exits = False
    while i < n:
        t = toks[i]
        tt = t.text
        if always_exits:
            # Unreachable tail (e.g. code after return in a fixture); skip.
            break
        if tt == ";":
            i += 1
            continue
        if tt == "{":
            end = _match(toks, i, "{", "}")
            consumed, exits = _walk_consume(toks[i + 1 : end - 1], var,
                                            consumed, findings)
            always_exits = always_exits or exits
            i = end
            continue
        if t.kind == "id" and tt == "if":
            j = i + 1
            if j < n and toks[j].text == "(":
                cond_end = _match(toks, j, "(", ")")
            else:
                cond_end = j
            cond = toks[j:cond_end]
            if _stmt_consumes(cond, var):
                consumed = True
            # `if (b == nullptr) ...`: inside the then-branch there is
            # nothing to consume; `if (b != nullptr)` dually for the else.
            null_then = _null_test(cond, var) == "null"
            null_else = _null_test(cond, var) == "nonnull"
            then_start, then_end = _branch_extent(toks, cond_end)
            c_then, x_then = _walk_consume(toks[then_start:then_end], var,
                                           consumed or null_then, findings)
            k = then_end
            if k < n and toks[k].text == ";":
                k += 1
            if k < n and toks[k].kind == "id" and toks[k].text == "else":
                else_start, else_end = _branch_extent(toks, k + 1)
                c_else, x_else = _walk_consume(toks[else_start:else_end], var,
                                               consumed or null_else, findings)
                if x_then and x_else:
                    always_exits = True
                elif x_then:
                    consumed = c_else
                elif x_else:
                    consumed = c_then
                else:
                    consumed = c_then and c_else
                i = else_end
            else:
                # No else: the branch may be skipped, so only the pre-branch
                # state survives (an exiting branch doesn't change it).
                i = then_end
            continue
        if t.kind == "id" and tt in ("for", "while"):
            j = i + 1
            if j < n and toks[j].text == "(":
                j = _match(toks, j, "(", ")")
            body_start, body_end = _branch_extent(toks, j)
            c_body, _ = _walk_consume(toks[body_start:body_end], var,
                                      consumed, findings)
            consumed = consumed or c_body  # optimistic: loop may run
            i = body_end
            continue
        if t.kind == "id" and tt == "do":
            body_start, body_end = _branch_extent(toks, i + 1)
            c_body, _ = _walk_consume(toks[body_start:body_end], var,
                                      consumed, findings)
            consumed = consumed or c_body
            # skip `while (...) ;`
            k = body_end
            while k < n and toks[k].text != ";":
                k += 1
            i = k + 1
            continue
        if t.kind == "id" and tt == "switch":
            j = i + 1
            if j < n and toks[j].text == "(":
                j = _match(toks, j, "(", ")")
            if j < n and toks[j].text == "{":
                end = _match(toks, j, "{", "}")
                if _stmt_consumes(toks[j + 1 : end - 1], var):
                    consumed = True  # optimistic across cases
                i = end
                continue
            i = j
            continue
        # Plain statement (including return) up to ';' at depth 0.
        end = i
        d = 0
        while end < n:
            u = toks[end].text
            if u in "([{":
                d += 1
            elif u in ")]}":
                d -= 1
            elif u == ";" and d == 0:
                break
            end += 1
        stmt = toks[i:end]
        if _stmt_consumes(stmt, var):
            consumed = True
        # A `return` nested in braces within the statement belongs to a
        # lambda, not to this function.
        d2 = 0
        for x in stmt:
            if x.text == "{":
                d2 += 1
            elif x.text == "}":
                d2 -= 1
            elif x.kind == "id" and x.text == "return" and d2 == 0:
                if not consumed:
                    findings.append((t.line, "return"))
                always_exits = True
            elif x.kind == "id" and x.text in ("abort", "throw") and d2 == 0:
                always_exits = True
        i = end + 1
    return consumed, always_exits


def _null_test(cond: List[Token], var: str) -> Optional[str]:
    """Classify a condition as a null ("null") or non-null ("nonnull") test
    of `var`, else None.  Handles `v == nullptr`, `nullptr != v`, `!v`, and
    a bare truthy `v`."""
    ids = [t.text for t in cond]
    for i, t in enumerate(cond):
        if t.text != var or t.kind != "id":
            continue
        if i + 2 < len(cond) and cond[i + 1].text in ("==", "!=") \
                and cond[i + 2].text == "nullptr":
            return "null" if cond[i + 1].text == "==" else "nonnull"
        if i >= 2 and cond[i - 1].text in ("==", "!=") \
                and cond[i - 2].text == "nullptr":
            return "null" if cond[i - 1].text == "==" else "nonnull"
        if i >= 1 and cond[i - 1].text == "!":
            return "null" if len(ids) <= 2 else None
        if len(ids) == 1:
            return "nonnull"
    return None


def _branch_extent(toks: List[Token], i: int) -> Tuple[int, int]:
    """Extent of the statement-or-block starting at toks[i]: (start, end)
    where the slice excludes outer braces for a block."""
    n = len(toks)
    if i < n and toks[i].text == "{":
        end = _match(toks, i, "{", "}")
        return i + 1, end - 1
    if i < n and toks[i].kind == "id" and toks[i].text == "if":
        # `else if`: the nested if runs to the end of ITS branch(es); give
        # the walker the whole rest and let recursion sort it out.
        return i, n
    # Single statement up to ';' at depth 0.
    d = 0
    j = i
    while j < n:
        u = toks[j].text
        if u in "([{":
            d += 1
        elif u in ")]}":
            d -= 1
        elif u == ";" and d == 0:
            return i, j
        j += 1
    return i, n


def check_consume_on_all_paths(files: List[FileIndex]) -> List[Finding]:
    consumes = collect_consumes(files)
    out: List[Finding] = []
    for raw in _raws(files):
        if not raw.has_body or raw.qname not in consumes:
            continue
        declared = consumes[raw.qname]
        pnames = {name for (_t, name) in raw.params}
        for var in sorted(declared):
            if var not in pnames:
                continue  # definition renamed the parameter; declaration-only
            exits: List[Tuple[int, str]] = []
            consumed, always_exits = _walk_consume(raw.body, var, False, exits)
            if not always_exits and not consumed:
                exits.append((raw.line, "end"))
            if exits:
                line, kind = exits[0]
                out.append(Finding(
                    check="consume-on-all-paths",
                    file=raw.file, line=line, function=raw.qname,
                    message=(f"P9_CONSUMES parameter {var!r} is not consumed"
                             f" on every path (first unconsumed exit:"
                             f" {'falls off the end' if kind == 'end' else 'return'});"
                             f" forward it, RecycleBlock it, or DropBlock it"
                             f" explicitly"),
                    detail=f"var={var}"))
    return out


# --------------------------------------------------------------------------
# Check: copy-in-hot-path.
# --------------------------------------------------------------------------


def check_copy_in_hot_path(program: Program, files: List[FileIndex],
                           hot: Set[str]) -> List[Finding]:
    out: List[Finding] = []
    for raw in _raws(files):
        if not raw.has_body or raw.qname not in hot:
            continue
        if raw.qname in config.HOT_PATH_SAFE:
            continue
        toks = raw.body
        n = len(toks)
        seen: Set[str] = set()
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            tt = t.text
            nxt = toks[i + 1].text if i + 1 < n else ""
            prev = toks[i - 1].text if i > 0 else ""
            what = None
            if tt in config.HOT_BANNED_CALLEES and nxt == "(":
                what = tt
            elif tt == "Text" and nxt == "(" and prev in ("->", "."):
                what = "Text"
            elif tt in config.HOT_COPY_CTORS and nxt == "(":
                what = tt
            elif tt in ("string", "vector") and prev == "::" \
                    and _constructs(toks, i):
                what = f"std::{tt}"
            elif tt == "new" and nxt != "(":  # placement new is fine
                what = "new"
            if what is None or what in seen:
                continue
            if _cold_statement(toks, i):
                continue
            seen.add(what)
            out.append(Finding(
                check="copy-in-hot-path",
                file=raw.file, line=t.line, function=raw.qname,
                message=(f"{what} in hot-path function {raw.qname} (reachable"
                         f" from a P9_HOT_PATH root): per-message copies and"
                         f" allocations belong behind AllocDataBlock/the"
                         f" block pool, or add the function to HOT_PATH_SAFE"
                         f" with a comment"),
                detail=f"callee={what}"))
    return out


def _constructs(toks: List[Token], i: int) -> bool:
    """toks[i] is `string`/`vector`: True when this is a construction with
    arguments (`std::string(kErr)`, `std::vector<T>(n)`), not a bare local
    declaration — declaring an empty container allocates nothing (what it
    does later is the runtime hotcheck's department)."""
    n = len(toks)
    j = i + 1
    if j < n and toks[j].text == "<":
        d = 0
        while j < n:
            if toks[j].text == "<":
                d += 1
            elif toks[j].text == ">":
                d -= 1
                if d == 0:
                    j += 1
                    break
            elif toks[j].text in ";{(":
                return False
            j += 1
    if j < n and toks[j].text == "(":
        return toks[j + 1].text != ")" if j + 1 < n else False
    return False


def _cold_statement(toks: List[Token], i: int) -> bool:
    """The statement around toks[i] is a cold error sub-path of a hot
    function when it mentions an error marker (Error(...) construction or
    the conversation's err_ string) — failures are not per-message work."""
    s = i
    while s > 0 and toks[s - 1].text not in (";", "{", "}"):
        s -= 1
    e = i
    n = len(toks)
    while e < n and toks[e].text not in (";", "{", "}"):
        e += 1
    return any(x.kind == "id" and x.text in config.HOT_COLD_MARKERS
               for x in toks[s:e])


# --------------------------------------------------------------------------
# Check: borrow-escape.
# --------------------------------------------------------------------------


def check_borrow_escape(files: List[FileIndex]) -> List[Finding]:
    borrows = collect_borrows(files)
    out: List[Finding] = []
    for raw in _raws(files):
        if not raw.has_body or raw.qname not in borrows:
            continue
        declared = borrows[raw.qname]
        pnames = {name for (_t, name) in raw.params}
        vars_ = {v for v in declared if v in pnames}
        if not vars_:
            continue
        toks = raw.body
        n = len(toks)
        emitted: Set[str] = set()
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in vars_ or t.text in emitted:
                continue
            v = t.text
            prev = toks[i - 1].text if i > 0 else ""
            prev2 = toks[i - 2].text if i > 1 else ""
            nxt = toks[i + 1].text if i + 1 < n else ""
            escape = None
            if prev == "&" and prev2 in ("=", "(", ",", "return", "{", ";", ""):
                escape = "address-of"
            elif prev == "=" and i >= 2 and toks[i - 2].kind == "id" \
                    and toks[i - 2].text.endswith("_") and nxt in (";", ","):
                escape = "stored-to-member"
            if escape is None:
                continue
            emitted.add(v)
            out.append(Finding(
                check="borrow-escape",
                file=raw.file, line=t.line, function=raw.qname,
                message=(f"P9_BORROWS parameter {v!r} escapes the call"
                         f" ({escape}): a borrowed block is only valid for"
                         f" the duration of this function"),
                detail=f"var={v};escape={escape}"))
    return out


# --------------------------------------------------------------------------
# Entry point.
# --------------------------------------------------------------------------


def run(program: Program, files: List[FileIndex]) -> List[Finding]:
    hot = propagate_hot(program, files)
    findings: List[Finding] = []
    findings += check_use_after_move(files)
    findings += check_consume_on_all_paths(files)
    findings += check_copy_in_hot_path(program, files, hot)
    findings += check_borrow_escape(files)
    return findings

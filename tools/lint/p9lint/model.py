"""Intermediate representation shared by every frontend and check."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class Token:
    kind: str  # "id" | "num" | "str" | "punct"
    text: str
    line: int


@dataclass
class CallSite:
    """One resolved-or-not call inside a function body."""

    callee: Optional[str]  # qualified "Class::Name" or "Name"; None if unresolved
    name: str  # bare callee name as written
    line: int
    # Lock expressions textually held at the call (e.g. "lock_", "c->lock_"),
    # each paired with its resolved class name or None.
    held: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    # For rendez sleeps: the first-argument lock expression.
    sleep_lock: Optional[str] = None


@dataclass
class LockAcq:
    """A QLockGuard acquisition observed in a body."""

    expr: str
    cls: Optional[str]
    line: int
    held: List[Tuple[str, Optional[str]]] = field(default_factory=list)


@dataclass
class Function:
    qname: str  # "Class::Name" or "Name"
    file: str
    line: int
    may_block_declared: bool = False
    requires: List[str] = field(default_factory=list)  # REQUIRES(...) exprs
    calls: List[CallSite] = field(default_factory=list)
    acquisitions: List[LockAcq] = field(default_factory=list)
    has_body: bool = False


@dataclass
class Program:
    """Whole-program index the checks run over."""

    functions: Dict[str, Function] = field(default_factory=dict)
    # (class, member) -> bare type name, e.g. ("NinepClient","transport_") ->
    # "MsgTransport" (smart-pointer wrappers stripped).
    member_types: Dict[Tuple[str, str], str] = field(default_factory=dict)
    # (class, member) -> declared lock class, e.g. ("Queue","lock_") ->
    # "stream.queue"; "" for unnamed per-instance classes.
    lock_classes: Dict[Tuple[str, str], str] = field(default_factory=dict)
    # method qname -> bare return type (for a()->b() chains).
    return_types: Dict[str, str] = field(default_factory=dict)
    # qname -> resolved callee qnames, unioned over EVERY body with that
    # qname (colliding anonymous-namespace classes included) — the graph
    # hot-path propagation walks.  Function.calls keeps only the first body.
    all_calls: Dict[str, Set[str]] = field(default_factory=dict)
    findings_inputs: Dict[str, list] = field(default_factory=dict)

    def merge_function(self, fn: Function) -> None:
        prev = self.functions.get(fn.qname)
        if prev is None:
            self.functions[fn.qname] = fn
            return
        prev.may_block_declared = prev.may_block_declared or fn.may_block_declared
        # A definition (with body) supersedes a bare declaration for calls.
        if fn.has_body and not prev.has_body:
            fn.may_block_declared = fn.may_block_declared or prev.may_block_declared
            self.functions[fn.qname] = fn


@dataclass(frozen=True)
class Finding:
    check: str
    file: str
    line: int
    function: str
    message: str
    detail: str  # stable discriminator for the baseline key (no line numbers)

    def key(self) -> str:
        return f"{self.check}|{self.file}|{self.function}|{self.detail}"

    def render(self) -> str:
        where = f"{self.file}:{self.line}"
        fn = f" [{self.function}]" if self.function else ""
        return f"{where}: {self.check}{fn}: {self.message}"

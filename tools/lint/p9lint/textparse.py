"""The always-available text frontend.

A purpose-built tokenizer + pragmatic declaration scanner for this
repository's C++ subset.  It is not a C++ parser; it understands exactly as
much structure as the checks need:

  * class/struct scopes and namespace nesting (for qualified names);
  * member declarations (types, and QLock members with their class names);
  * function definitions/declarations, their trailing annotation macros
    (MAY_BLOCK, REQUIRES(...)), and their body token slices;
  * within bodies: QLockGuard scopes (including mid-scope Unlock()/Lock()),
    local variable types for receiver resolution, and call sites with
    receiver chains (`a->b()`, `x.y()`, `A::B()`, chained `p()->q()`).

Phase 1 (parse_file) builds per-file raw records; phase 2 (analyze) runs
with the whole-program indexes complete, so cross-file receiver types and
lock classes resolve.
"""

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .model import CallSite, Function, LockAcq, Program, Token

# Multi-character punctuators the scanner must keep whole.  '>>' is NOT
# here: splitting it into two '>' makes template-argument tracking easy and
# shift expressions do not occur at declaration scope.
_PUNCTS = [
    "::", "->", "<<=", ">>=", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", "...", "++", "--",
]
_PUNCTS.sort(key=len, reverse=True)

_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"(?:0[xX][0-9a-fA-F']+|[0-9][0-9a-fA-F'.eExXpPuUlLfF]*)")

KEYWORDS = {
    "if", "else", "while", "for", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "sizeof", "alignof", "new",
    "delete", "throw", "try", "catch", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "co_await", "co_return", "co_yield",
    "and", "or", "not", "this", "nullptr", "true", "false", "operator",
}

_DECL_QUALIFIERS = {
    "virtual", "static", "inline", "constexpr", "explicit", "friend",
    "mutable", "typename", "const", "volatile", "extern", "thread_local",
    "noexcept", "override", "final", "public", "private", "protected",
}

_SMART_WRAPPERS = {"unique_ptr", "shared_ptr", "weak_ptr"}

_ANNOTATION_MACROS = {
    "REQUIRES", "EXCLUDES", "ACQUIRE", "RELEASE", "TRY_ACQUIRE",
    "ASSERT_CAPABILITY", "RETURN_CAPABILITY", "GUARDED_BY", "PT_GUARDED_BY",
}

# Data-path ownership annotations (src/base/block_annotations.h).  The
# parenthesized ones name a parameter; P9_HOT_PATH is bare like MAY_BLOCK.
_OWNERSHIP_MACROS = {"P9_CONSUMES", "P9_BORROWS"}


def lex(text: str) -> List[Token]:
    """Tokenize, dropping comments, preprocessor lines and whitespace.

    String literals are kept as single tokens (kind "str") holding the raw
    characters between the quotes; adjacent literals are NOT merged here.
    """
    toks: List[Token] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\v\f":
            i += 1
            continue
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                if j < 0:
                    break
                line += text.count("\n", i, j)
                i = j + 2
                continue
        if c == "#":
            # Preprocessor line (with continuations).
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                if text[k - 1] == "\\":
                    j = k + 1
                    continue
                j = k
                break
            line += text.count("\n", i, j)
            i = j
            continue
        if c == '"':
            # Raw strings appear only in tests; handle the common form anyway.
            if toks and toks[-1].kind == "id" and toks[-1].text == "R":
                j = text.find('"', i + 1)
            j = i + 1
            buf = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j : j + 2])
                    j += 2
                    continue
                buf.append(text[j])
                j += 1
            toks.append(Token("str", "".join(buf), line))
            line += text.count("\n", i, j)
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            toks.append(Token("chr", text[i + 1 : j], line))
            i = j + 1
            continue
        m = _ID_RE.match(text, i)
        if m:
            toks.append(Token("id", m.group(), line))
            i = m.end()
            continue
        m = _NUM_RE.match(text, i)
        if m:
            toks.append(Token("num", m.group(), line))
            i = m.end()
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                toks.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            toks.append(Token("punct", c, line))
            i += 1
    return toks


@dataclass
class RawFunction:
    qname: str
    cls: Optional[str]
    file: str
    line: int
    may_block: bool
    requires: List[str]
    body: List[Token]  # empty for bare declarations
    has_body: bool
    hot: bool = False  # P9_HOT_PATH on this declaration/definition
    consumes: List[str] = field(default_factory=list)  # P9_CONSUMES(param)
    borrows: List[str] = field(default_factory=list)  # P9_BORROWS(param)
    params: List[Tuple[Optional[str], str]] = field(default_factory=list)


@dataclass
class FileIndex:
    path: str
    raw_functions: List[RawFunction] = field(default_factory=list)
    # All tokens, for the token-stream checks (fmt-arity, metric-name).
    tokens: List[Token] = field(default_factory=list)


def _match_forward(toks: List[Token], i: int, open_t: str, close_t: str) -> int:
    """Index just past the token matching the opener at toks[i]."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


class _Parser:
    def __init__(self, program: Program, path: str, toks: List[Token]):
        self.program = program
        self.path = path
        self.toks = toks
        self.i = 0
        self.n = len(toks)

    # ---- helpers ---------------------------------------------------------

    def _tok(self, k: int = 0) -> Optional[Token]:
        j = self.i + k
        return self.toks[j] if 0 <= j < self.n else None

    def _skip_to(self, stop: str) -> None:
        """Skip to just past `stop` at depth 0, balancing (), {} and []."""
        depth = 0
        while self.i < self.n:
            t = self.toks[self.i].text
            if t in "({[":
                depth += 1
            elif t in ")}]":
                depth -= 1
            elif t == stop and depth <= 0:
                self.i += 1
                return
            self.i += 1

    def _skip_template_args(self) -> None:
        """self.i at '<': skip balanced template arguments."""
        depth = 0
        while self.i < self.n:
            t = self.toks[self.i].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    self.i += 1
                    return
            elif t in ";{":
                return  # not actually template args; bail
            self.i += 1

    # ---- declaration scope ----------------------------------------------

    def parse(self) -> List[RawFunction]:
        out: List[RawFunction] = []
        self._parse_scope(None, out, top=True)
        return out

    def _parse_scope(self, cls: Optional[str], out: List[RawFunction], top: bool = False) -> None:
        while self.i < self.n:
            t = self.toks[self.i]
            text = t.text
            if text == "}":
                if not top:
                    self.i += 1
                    return
                self.i += 1
                continue
            if text == ";":
                self.i += 1
                continue
            if text == "namespace":
                self.i += 1
                while self._tok() and self._tok().kind == "id":
                    self.i += 1
                    if self._tok() and self._tok().text == "::":
                        self.i += 1
                if self._tok() and self._tok().text == "{":
                    self.i += 1
                    self._parse_scope(cls, out)
                else:
                    self._skip_to(";")
                continue
            if text in ("class", "struct"):
                self._parse_class(out)
                continue
            if text == "enum":
                # enum [class] Name [: type] { ... };
                while self.i < self.n and self.toks[self.i].text != "{":
                    if self.toks[self.i].text == ";":
                        break
                    self.i += 1
                if self.i < self.n and self.toks[self.i].text == "{":
                    self.i = _match_forward(self.toks, self.i, "{", "}")
                self._skip_to(";")
                continue
            if text == "template":
                self.i += 1
                if self._tok() and self._tok().text == "<":
                    self._skip_template_args()
                continue
            if text in ("using", "typedef", "static_assert", "extern"):
                self._skip_to(";")
                continue
            if text in ("public", "private", "protected"):
                self.i += 1
                if self._tok() and self._tok().text == ":":
                    self.i += 1
                continue
            if text == "friend":
                self._skip_to(";")
                continue
            self._parse_declaration(cls, out)

    def _parse_class(self, out: List[RawFunction]) -> None:
        self.i += 1  # past class/struct
        # Skip attributes like CAPABILITY("qlock") / SCOPED_CAPABILITY.
        name = None
        while self._tok():
            t = self._tok()
            if t.kind == "id":
                nxt = self._tok(1)
                if t.text.isupper() is False and nxt and nxt.text in ("{", ":", ";", "<"):
                    name = t.text
                    self.i += 1
                    break
                if nxt and nxt.text == "(":
                    # annotation macro with args
                    self.i += 1
                    self.i = _match_forward(self.toks, self.i, "(", ")")
                    continue
                name = t.text
                self.i += 1
                if self._tok() and self._tok().text not in ("{", ":", ";", "<"):
                    continue  # previous id was a macro; keep the latest
                break
            else:
                break
        # Template specialization args on the name.
        if self._tok() and self._tok().text == "<":
            self._skip_template_args()
        if self._tok() and self._tok().text == ":":
            # base clause
            while self.i < self.n and self.toks[self.i].text != "{":
                if self.toks[self.i].text == ";":
                    self.i += 1
                    return
                self.i += 1
        if self._tok() and self._tok().text == "{":
            self.i += 1
            self._parse_scope(name, out)
            self._skip_to(";")
        else:
            self._skip_to(";")

    # ---- a single declaration at class/namespace scope -------------------

    def _parse_declaration(self, cls: Optional[str], out: List[RawFunction]) -> None:
        start = self.i
        depth = 0
        head_end = None  # index of the structural token
        kind = None
        j = self.i
        while j < self.n:
            tt = self.toks[j].text
            if (tt == "<" and self.toks[j - 1].kind == "id"
                    and self.toks[j - 1].text != "operator"):
                # template args in a type: skip balanced
                d = 0
                while j < self.n:
                    u = self.toks[j].text
                    if u == "<":
                        d += 1
                    elif u == ">":
                        d -= 1
                        if d == 0:
                            break
                    elif u in ";{(":
                        d = 0
                        j -= 1
                        break
                    j += 1
                j += 1
                continue
            if tt == "(" and depth == 0:
                kind, head_end = "func", j
                break
            if tt == "{" and depth == 0:
                kind, head_end = "var_brace", j
                break
            if tt == "=" and depth == 0:
                kind, head_end = "var_eq", j
                break
            if tt == ";" and depth == 0:
                kind, head_end = "var_plain", j
                break
            j += 1
        if kind is None:
            self.i = self.n
            return

        if kind != "func":
            slice_end = head_end
            if kind == "var_brace":
                close = _match_forward(self.toks, head_end, "{", "}")
                self._record_member(cls, self.toks[start:head_end], self.toks[head_end:close])
                self.i = close
                self._skip_to(";")
            elif kind == "var_eq":
                self._record_member(cls, self.toks[start:head_end], [])
                self.i = head_end
                self._skip_to(";")
            else:
                self._record_member(cls, self.toks[start:head_end], [])
                self.i = head_end + 1
            return

        # Function-ish.  Name = id sequence just before '('.
        name_idx = head_end - 1
        if name_idx < start or self.toks[name_idx].kind != "id":
            # e.g. `operator<(...)`: still function-shaped, so consume the
            # params and tail (incl. a possible body) without recording —
            # _skip_to(";") here would eat the enclosing class's brace.
            self.i = _match_forward(self.toks, head_end, "(", ")")
            self._paren_then_tail(cls, None, None, start, record=False)
            return
        name = self.toks[name_idx].text
        qual = cls
        k = name_idx - 1
        if k > start and self.toks[k].text == "~":
            name = "~" + name
            k -= 1
        # A::B( — out-of-class definition: innermost explicit qualifier wins.
        if k > start and self.toks[k].text == "::" and self.toks[k - 1].kind == "id":
            qual = self.toks[k - 1].text
        if name == "operator" or self.toks[name_idx - 1].text == "operator":
            self.i = head_end
            self._paren_then_tail(cls, None, None, start, record=False)
            return

        params_end = _match_forward(self.toks, head_end, "(", ")")
        params = _parse_params(self.toks[head_end + 1 : params_end - 1])
        self.i = params_end
        self._paren_then_tail(cls, qual, name, start, record=True, head_start=start,
                              name_line=self.toks[name_idx].line, params=params)

    def _paren_then_tail(self, cls, qual, name, start, record, head_start=0, name_line=0,
                         params=None):
        """self.i just past the parameter ')': consume qualifiers + body/;."""
        may_block = False
        hot = False
        requires: List[str] = []
        consumes: List[str] = []
        borrows: List[str] = []
        while self.i < self.n:
            t = self.toks[self.i]
            tt = t.text
            if tt == "MAY_BLOCK":
                may_block = True
                self.i += 1
                continue
            if tt == "P9_HOT_PATH":
                hot = True
                self.i += 1
                continue
            if t.kind == "id" and tt in _OWNERSHIP_MACROS:
                self.i += 1
                if self._tok() and self._tok().text == "(":
                    arg_start = self.i + 1
                    end = _match_forward(self.toks, self.i, "(", ")")
                    arg = "".join(x.text for x in self.toks[arg_start : end - 1])
                    (consumes if tt == "P9_CONSUMES" else borrows).append(arg)
                    self.i = end
                continue
            if t.kind == "id" and tt in _ANNOTATION_MACROS:
                self.i += 1
                if self._tok() and self._tok().text == "(":
                    arg_start = self.i + 1
                    end = _match_forward(self.toks, self.i, "(", ")")
                    if tt == "REQUIRES":
                        requires.append(
                            "".join(x.text for x in self.toks[arg_start : end - 1]))
                    self.i = end
                continue
            if t.kind == "id" and (tt in _DECL_QUALIFIERS or tt == "MAY_BLOCK"):
                self.i += 1
                continue
            if tt == "(":  # noexcept(...)
                self.i = _match_forward(self.toks, self.i, "(", ")")
                continue
            if tt == "->":  # trailing return type
                self.i += 1
                while self._tok() and self._tok().text not in ("{", ";"):
                    self.i += 1
                continue
            break
        t = self._tok()
        if t is None:
            return
        body: List[Token] = []
        has_body = False
        if t.text == ";":
            self.i += 1
        elif t.text == "=":
            self._skip_to(";")  # = 0 / = default / = delete
        elif t.text == ":":
            # ctor init list: skip entries (id(..) or id{..}) up to the body.
            self.i += 1
            while self.i < self.n:
                u = self.toks[self.i]
                if u.text == "(":
                    self.i = _match_forward(self.toks, self.i, "(", ")")
                elif u.text == "{":
                    prev = self.toks[self.i - 1]
                    if prev.kind == "id":  # member{init}
                        self.i = _match_forward(self.toks, self.i, "{", "}")
                    else:
                        break  # the body
                elif u.text == ";":
                    self.i += 1
                    return
                else:
                    self.i += 1
            if self.i < self.n and self.toks[self.i].text == "{":
                end = _match_forward(self.toks, self.i, "{", "}")
                body = self.toks[self.i + 1 : end - 1]
                has_body = True
                self.i = end
        elif t.text == "{":
            end = _match_forward(self.toks, self.i, "{", "}")
            body = self.toks[self.i + 1 : end - 1]
            has_body = True
            self.i = end
        else:
            self._skip_to(";")
            return
        if not record or name is None:
            return
        qname = f"{qual}::{name}" if qual else name
        # Leading MAY_BLOCK / P9_HOT_PATH (before the return type) also count.
        for x in self.toks[head_start : head_start + 6]:
            if x.text == "MAY_BLOCK":
                may_block = True
            if x.text == "P9_HOT_PATH":
                hot = True
        self.raw_out.append(
            RawFunction(qname=qname, cls=qual, file=self.path, line=name_line,
                        may_block=may_block, requires=requires, body=body,
                        has_body=has_body, hot=hot, consumes=consumes,
                        borrows=borrows, params=params or []))
        # Return type (for a()->b() chains): first useful id of the head.
        rt = _bare_type(self.toks[head_start : max(head_start, 0) + 0] or [])
        rt = _bare_type(self.toks[head_start:], stop_at=name)
        if rt:
            self.program.return_types.setdefault(qname, rt)

    def _record_member(self, cls: Optional[str], decl: List[Token], init: List[Token]) -> None:
        if cls is None or not decl:
            return
        ids = [t for t in decl if t.kind == "id"]
        if len(ids) < 2:
            return
        name = None
        for t in reversed(decl):
            if t.kind == "id" and t.text not in _DECL_QUALIFIERS:
                name = t.text
                break
        if name is None:
            return
        if ids[0].text == "QLock" or (ids[0].text in _DECL_QUALIFIERS and len(ids) > 1
                                      and ids[1].text == "QLock"):
            lock_class = ""
            for t in init:
                if t.kind == "str":
                    lock_class = t.text
                    break
            self.program.lock_classes[(cls, name)] = lock_class
            self.program.member_types[(cls, name)] = "QLock"
            return
        bt = _bare_type(decl, stop_at=name)
        if bt:
            self.program.member_types[(cls, name)] = bt

    # plumbing: the declaration parser appends here
    raw_out: List[RawFunction] = None


def _parse_params(toks: List[Token]) -> List[Tuple[Optional[str], str]]:
    """(bare type, name) per parameter; unnamed parameters are skipped.

    `BlockPtr b` -> ("BlockPtr", "b"); `const Bytes& msg` -> ("Bytes",
    "msg"); default arguments are ignored.
    """
    groups: List[List[Token]] = [[]]
    depth = 0
    for t in toks:
        if t.text in "([{<":
            depth += 1
        elif t.text in ")]}>":
            depth -= 1
        elif t.text == "," and depth == 0:
            groups.append([])
            continue
        groups[-1].append(t)
    out: List[Tuple[Optional[str], str]] = []
    for g in groups:
        # Drop a default argument: everything from a top-level '='.
        d = 0
        for k, t in enumerate(g):
            if t.text in "([{<":
                d += 1
            elif t.text in ")]}>":
                d -= 1
            elif t.text == "=" and d == 0:
                g = g[:k]
                break
        ids = [t for t in g if t.kind == "id" and t.text not in _DECL_QUALIFIERS
               and t.text != "std"]
        if len(ids) < 2:
            continue  # unnamed (`int`, `BlockPtr&&`) or empty
        name = ids[-1].text
        out.append((_bare_type(g, stop_at=name), name))
    return out


def _bare_type(toks: List[Token], stop_at: Optional[str] = None) -> Optional[str]:
    """Best-effort bare type name from a declaration head.

    `std::unique_ptr<MsgTransport>` -> MsgTransport; `IlProto*` -> IlProto;
    `Result<size_t>` -> Result.  Stops before the declarator name.
    """
    ids: List[str] = []
    depth = 0
    wrapper = False
    inner: List[str] = []
    for t in toks:
        if t.text == "<":
            depth += 1
            continue
        if t.text == ">":
            depth -= 1
            continue
        if t.kind != "id":
            continue
        if t.text in _DECL_QUALIFIERS or t.text in ("std",):
            continue
        if stop_at and t.text == stop_at and depth == 0 and ids:
            break
        if depth == 0:
            ids.append(t.text)
            if t.text in _SMART_WRAPPERS:
                wrapper = True
        elif depth >= 1 and wrapper:
            inner.append(t.text)
    if wrapper and inner:
        return inner[-1]
    return ids[0] if ids else None


def parse_file(program: Program, path: str, text: str) -> FileIndex:
    toks = lex(text)
    fi = FileIndex(path=path, tokens=toks)
    p = _Parser(program, path, toks)
    p.raw_out = fi.raw_functions
    p.parse()
    return fi


# --------------------------------------------------------------------------
# Phase 2: body analysis with complete whole-program indexes.
# --------------------------------------------------------------------------

_CAST_NAMES = {"static_cast", "dynamic_cast", "reinterpret_cast", "const_cast"}


def _resolve_lock_class(program: Program, cls: Optional[str], expr: str) -> Optional[str]:
    """Map a lock expression to its declared class name.

    `lock_` -> lock_classes[(cls, "lock_")]; `c->lock_` with c of type T ->
    lock_classes[(T, "lock_")].  Returns None when unknown, "" for unnamed.
    """
    expr = expr.strip()
    if "->" in expr or "." in expr:
        recv, _, member = expr.rpartition("->")
        if not recv:
            recv, _, member = expr.rpartition(".")
        recv = recv.split("->")[-1].split(".")[-1].strip("()*& ")
        rt = None
        if cls is not None:
            rt = program.member_types.get((cls, recv))
        if rt is None:
            rt = _LOCAL_TYPES.get(recv)
        if rt:
            return program.lock_classes.get((rt, member))
        return None
    if cls is not None:
        return program.lock_classes.get((cls, expr))
    return None


_LOCAL_TYPES: Dict[str, str] = {}


def analyze(program: Program, files: List[FileIndex]) -> None:
    """Fill Function records (calls, acquisitions) from the raw bodies.

    Two passes: first register every function shell so call resolution can
    see forward references and cross-file definitions, then walk the bodies.
    """
    pending: List[RawFunction] = []
    for fi in files:
        for raw in fi.raw_functions:
            fn = Function(qname=raw.qname, file=raw.file, line=raw.line,
                          may_block_declared=raw.may_block,
                          requires=list(raw.requires), has_body=raw.has_body)
            program.merge_function(fn)
            pending.append(raw)
    analyzed: set = set()
    for raw in pending:
        if not raw.has_body:
            continue
        if raw.qname in analyzed:
            # Colliding qname (e.g. anonymous-namespace `Module::DownPut`
            # across protocol files): the merged Function keeps the first
            # body, but the call graph must still see this body's edges —
            # hot-path propagation walks program.all_calls, not fn.calls.
            shadow = Function(qname=raw.qname, file=raw.file, line=raw.line)
            _analyze_body(program, raw, shadow)
            edges = program.all_calls.setdefault(raw.qname, set())
            edges.update(c.callee for c in shadow.calls if c.callee)
            continue
        # The surviving record is the first definition merge kept; analyzing
        # the first body raw per qname keeps them in step.
        analyzed.add(raw.qname)
        fn = program.functions[raw.qname]
        _analyze_body(program, raw, fn)
        edges = program.all_calls.setdefault(raw.qname, set())
        edges.update(c.callee for c in fn.calls if c.callee)


def _analyze_body(program: Program, raw: RawFunction, fn: Function) -> None:
    toks = raw.body
    n = len(toks)
    cls = raw.cls
    locals_types: Dict[str, str] = {}
    for ptype, pname in raw.params:
        if ptype:
            locals_types[pname] = ptype
    global _LOCAL_TYPES
    _LOCAL_TYPES = locals_types

    # guards: list of [var, expr, cls, depth, active]
    guards: List[list] = []
    base_held: List[Tuple[str, Optional[str]]] = []
    for expr in raw.requires:
        base_held.append((expr, _resolve_lock_class(program, cls, expr)))

    def held_now() -> List[Tuple[str, Optional[str]]]:
        out = list(base_held)
        for g in guards:
            if g[4]:
                out.append((g[1], g[2]))
        return out

    depth = 0
    i = 0
    known_types = {t for t in program.member_types.values()}
    known_types.update(c for (c, _m) in program.member_types.keys())

    while i < n:
        t = toks[i]
        tt = t.text
        if tt == "{":
            depth += 1
            i += 1
            continue
        if tt == "}":
            depth -= 1
            guards[:] = [g for g in guards if g[3] <= depth]
            i += 1
            continue

        # Local declarations: Type[*&] name ( = | ; | ( | { )
        if (t.kind == "id" and tt in known_types and i + 1 < n):
            j = i + 1
            while j < n and toks[j].text in ("*", "&", "const"):
                j += 1
            if (j + 1 < n and toks[j].kind == "id"
                    and toks[j + 1].text in ("=", ";", "{")):
                locals_types[toks[j].text] = tt
            # Fall through: the same token may still start a call (Type(...)).

        # Casts carry types for locals: auto* x = static_cast<T*>(...)
        if t.kind == "id" and tt in _CAST_NAMES:
            # find target id between < >
            j = i + 1
            if j < n and toks[j].text == "<":
                k = j + 1
                tgt = None
                while k < n and toks[k].text != ">":
                    if toks[k].kind == "id" and toks[k].text not in _DECL_QUALIFIERS:
                        tgt = toks[k].text
                    k += 1
                # look back for `x =` immediately before the cast
                if tgt and i >= 2 and toks[i - 1].text == "=" and toks[i - 2].kind == "id":
                    locals_types[toks[i - 2].text] = tgt

        # QLockGuard scopes.
        if t.kind == "id" and tt == "QLockGuard" and i + 1 < n and toks[i + 1].kind == "id":
            var = toks[i + 1].text
            j = i + 2
            if j < n and toks[j].text in ("(", "{"):
                open_t = toks[j].text
                close_t = ")" if open_t == "(" else "}"
                end = _match_forward(toks, j, open_t, close_t)
                expr = "".join(x.text for x in toks[j + 1 : end - 1])
                lcls = _resolve_lock_class(program, cls, expr)
                acq = LockAcq(expr=expr, cls=lcls, line=t.line, held=held_now())
                fn.acquisitions.append(acq)
                guards.append([var, expr, lcls, depth, True])
                i = end
                continue

        # guard.Unlock() / guard.Lock() toggles.
        if (t.kind == "id" and i + 2 < n and toks[i + 1].text == "."
                and toks[i + 2].text in ("Unlock", "Lock")):
            for g in guards:
                if g[0] == tt:
                    g[4] = toks[i + 2].text == "Lock"
                    if g[4]:
                        fn.acquisitions.append(
                            LockAcq(expr=g[1], cls=g[2], line=t.line,
                                    held=[h for h in held_now() if h[0] != g[1]]))
                    break
            i += 3
            continue

        # Call sites: id '('
        if (t.kind == "id" and tt not in KEYWORDS and i + 1 < n
                and toks[i + 1].text == "("):
            callee = _resolve_call(program, cls, locals_types, toks, i)
            site = CallSite(callee=callee, name=tt, line=t.line, held=held_now())
            from .config import SLEEP_METHODS
            if tt in SLEEP_METHODS:
                arg_start = i + 2
                k = arg_start
                d = 0
                while k < n:
                    u = toks[k].text
                    if u in "([{":
                        d += 1
                    elif u in ")]}":
                        if d == 0:
                            break
                        d -= 1
                    elif u == "," and d == 0:
                        break
                    k += 1
                site.sleep_lock = "".join(x.text for x in toks[arg_start:k])
            fn.calls.append(site)
            i += 1
            continue

        i += 1
    _LOCAL_TYPES = {}


def _resolve_call(program: Program, cls: Optional[str],
                  locals_types: Dict[str, str], toks: List[Token], i: int) -> Optional[str]:
    """Qualified name for the call at toks[i] (an id followed by '(')."""
    name = toks[i].text

    def exists(q: str) -> Optional[str]:
        return q if q in program.functions else None

    if i >= 2 and toks[i - 1].text == "::" and toks[i - 2].kind == "id":
        q = f"{toks[i - 2].text}::{name}"
        return exists(q) or q
    if i >= 2 and toks[i - 1].text in ("->", "."):
        prev = toks[i - 2]
        if prev.kind == "id":
            recv = prev.text
            # receiver chain like a.b.c( — use the last link's type only.
            rt = locals_types.get(recv)
            if rt is None and cls is not None:
                rt = program.member_types.get((cls, recv))
            if rt is None and i >= 4 and toks[i - 3].text in ("->", ".") \
                    and toks[i - 4].kind == "id":
                # x->member.Method( : member's type within x's class
                outer = toks[i - 4].text
                ot = locals_types.get(outer)
                if ot is None and cls is not None:
                    ot = program.member_types.get((cls, outer))
                if ot is not None:
                    rt = program.member_types.get((ot, recv))
            if rt:
                return exists(f"{rt}::{name}") or f"{rt}::{name}"
            return None
        if prev.text == ")":
            # chained: f(...)->Method( — find f, use its return type.
            d = 0
            k = i - 2
            while k >= 0:
                u = toks[k].text
                if u == ")":
                    d += 1
                elif u == "(":
                    d -= 1
                    if d == 0:
                        break
                k -= 1
            if k > 0 and toks[k - 1].kind == "id":
                inner = _resolve_call(program, cls, locals_types, toks, k - 1)
                if inner:
                    rt = program.return_types.get(inner)
                    if rt:
                        return exists(f"{rt}::{name}") or f"{rt}::{name}"
            return None
        return None
    # Bare call: method of the enclosing class, else free function.
    if cls is not None and exists(f"{cls}::{name}"):
        return f"{cls}::{name}"
    return exists(name) or name

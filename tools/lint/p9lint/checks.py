"""The five plan9lint checks, run over the Program IR."""

import re
from typing import Dict, List, Optional, Set, Tuple

from . import blockcheck, config
from .model import Finding, Function, Program, Token
from .textparse import FileIndex

# --------------------------------------------------------------------------
# MAY_BLOCK propagation.
# --------------------------------------------------------------------------


def propagate_may_block(program: Program) -> Set[str]:
    """Transitive closure: a function may block if it is annotated, is a
    seed, or calls (by resolved qualified name) a function that may block."""
    blocking: Set[str] = set(config.MAY_BLOCK_SEEDS)
    for q, fn in program.functions.items():
        if fn.may_block_declared:
            blocking.add(q)
    changed = True
    while changed:
        changed = False
        for q, fn in program.functions.items():
            if q in blocking or not fn.has_body:
                continue
            for call in fn.calls:
                if call.callee in blocking:
                    blocking.add(q)
                    changed = True
                    break
    return blocking


# --------------------------------------------------------------------------
# Check 1: blocking-under-lock.
# --------------------------------------------------------------------------


def _norm(expr: str) -> str:
    return expr.replace(" ", "")


def check_blocking_under_lock(program: Program, blocking: Set[str]) -> List[Finding]:
    out: List[Finding] = []
    for q, fn in program.functions.items():
        if not fn.has_body:
            continue
        for call in fn.calls:
            if not call.held:
                continue
            if call.callee not in blocking:
                continue
            held = list(call.held)
            if call.sleep_lock is not None:
                # The rendez-own-lock idiom: Sleep(l, ...) atomically
                # releases l, so holding l itself is the point, not a bug.
                own = _norm(call.sleep_lock)
                held = [h for h in held if _norm(h[0]) != own]
            offenders = [h for h in held
                         if h[1] not in config.SLEEPABLE_CLASSES]
            for expr, cls in offenders:
                shown = cls if cls else expr
                out.append(Finding(
                    check="blocking-under-lock",
                    file=fn.file, line=call.line, function=q,
                    message=(f"call to {call.callee} (MAY_BLOCK) while "
                             f"holding qlock {expr!r}"
                             + (f" (class \"{cls}\")" if cls else "")
                             + "; only the rendez's own lock or a sleepable"
                               " class may be held across a sleep"),
                    detail=f"callee={call.callee};held={shown}"))
    return out


# --------------------------------------------------------------------------
# Check 2: lock-order vs the declared ranks.
# --------------------------------------------------------------------------


def _declared_reach() -> Dict[str, Set[str]]:
    adj: Dict[str, Set[str]] = {}
    for a, b in config.DECLARED_ORDER:
        adj.setdefault(a, set()).add(b)
    # Floyd–Warshall-ish closure over the small DAG.
    reach: Dict[str, Set[str]] = {k: set(v) for k, v in adj.items()}
    changed = True
    while changed:
        changed = False
        for a in list(reach):
            for b in list(reach[a]):
                for c in reach.get(b, ()):
                    if c not in reach[a]:
                        reach[a].add(c)
                        changed = True
    return reach


def check_lock_order(program: Program) -> List[Finding]:
    reach = _declared_reach()
    out: List[Finding] = []
    for q, fn in program.functions.items():
        for acq in fn.acquisitions:
            b = acq.cls
            if not b:
                continue
            for _expr, a in acq.held:
                if not a or a == b:
                    continue
                if a in reach.get(b, ()):  # declared b-before-a, doing a->b
                    out.append(Finding(
                        check="lock-order",
                        file=fn.file, line=acq.line, function=q,
                        message=(f"acquires \"{b}\" while holding \"{a}\","
                                 f" but the declared order is"
                                 f" \"{b}\" before \"{a}\""),
                        detail=f"acquire={b};held={a}"))
    return out


# --------------------------------------------------------------------------
# Check 3: fd-guard.  Raw fds from P9_ASSIGN_OR_RETURN(int X, ...Source...)
# must be consumed (FdCloser, Close, or returned) before the next statement
# that can return early.
# --------------------------------------------------------------------------

_EARLY_RETURN_MACROS = {"P9_ASSIGN_OR_RETURN", "P9_RETURN_IF_ERROR"}


def _match(toks: List[Token], i: int, open_t: str, close_t: str) -> int:
    depth = 0
    n = len(toks)
    while i < n:
        if toks[i].text == open_t:
            depth += 1
        elif toks[i].text == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def check_fd_guard(program: Program, raw_bodies) -> List[Finding]:
    """raw_bodies: iterable of (qname, file, body tokens)."""
    out: List[Finding] = []
    for qname, path, toks in raw_bodies:
        n = len(toks)
        i = 0
        while i < n:
            t = toks[i]
            if not (t.kind == "id" and t.text == "P9_ASSIGN_OR_RETURN"
                    and i + 1 < n and toks[i + 1].text == "("):
                i += 1
                continue
            end = _match(toks, i + 1, "(", ")")
            macro = toks[i + 2 : end - 1]
            # Form: int NAME , <expr containing an fd source call>
            if len(macro) < 4 or macro[0].text != "int" or macro[1].kind != "id":
                i = end
                continue
            name = macro[1].text
            if not any(x.kind == "id" and x.text in config.FD_SOURCES
                       for x in macro[3:]):
                i = end
                continue
            # Scan forward for consumption vs. early return.
            j = end
            guarded = False
            leak_line = None
            while j < n:
                u = toks[j]
                if u.kind == "id" and u.text == name:
                    # Consumption: any statement naming the fd together with
                    # a guard type, a Close call, or returning it.
                    s = j
                    while s > end and toks[s - 1].text not in (";", "{", "}"):
                        s -= 1
                    e = j
                    while e < n and toks[e].text not in (";", "{", "}"):
                        e += 1
                    stmt = toks[s:e]
                    names = {x.text for x in stmt if x.kind == "id"}
                    if (names & config.FD_GUARD_TYPES or "Close" in names
                            or any(x.text == "return" for x in stmt)):
                        guarded = True
                        break
                    # A plain use (read/write on the fd) neither guards nor
                    # leaks; keep scanning past this statement.
                    j = e
                    continue
                if u.kind == "id" and u.text == "return":
                    leak_line = u.line
                    break
                if (u.kind == "id" and u.text in _EARLY_RETURN_MACROS):
                    leak_line = u.line
                    break
                j += 1
            if not guarded and leak_line is not None:
                out.append(Finding(
                    check="fd-guard",
                    file=path, line=leak_line, function=qname,
                    message=(f"raw fd {name!r} can leak: an early return is"
                             f" reachable before it is wrapped in FdCloser,"
                             f" closed, or returned"),
                    detail=f"fd={name}"))
            i = end
        # next function
    return out


# --------------------------------------------------------------------------
# Check 4: fmt-arity for StrFormat-style printf wrappers.
# --------------------------------------------------------------------------

_CONV_RE = re.compile(
    r"%(?P<flags>[-+ #0]*)(?P<width>\*|\d+)?(?:\.(?P<prec>\*|\d+))?"
    r"(?:hh|h|ll|l|j|z|t|L)?(?P<conv>[diouxXeEfFgGaAcspn%])")


def _count_conversions(fmt: str) -> int:
    count = 0
    for m in _CONV_RE.finditer(fmt):
        if m.group("conv") == "%":
            continue
        count += 1
        if m.group("width") == "*":
            count += 1
        if m.group("prec") == "*":
            count += 1
    return count


def check_fmt_arity(files: List[FileIndex]) -> List[Finding]:
    out: List[Finding] = []
    for fi in files:
        toks = fi.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if not (t.kind == "id" and t.text in config.FORMAT_FUNCTIONS
                    and i + 1 < n and toks[i + 1].text == "("):
                continue
            j = i + 2
            if j >= n or toks[j].kind != "str":
                continue  # non-literal format: out of scope
            fmt = ""
            while j < n and toks[j].kind == "str":
                fmt += toks[j].text
                j += 1
            expected = _count_conversions(fmt)
            # Count the remaining top-level arguments.
            if j < n and toks[j].text == ")":
                got = 0
            elif j < n and toks[j].text == ",":
                got = 1
                depth = 0
                k = j + 1
                while k < n:
                    u = toks[k].text
                    if u in "([{":
                        depth += 1
                    elif u in ")]}":
                        if depth == 0:
                            break
                        depth -= 1
                    elif u == "," and depth == 0:
                        got += 1
                    elif u == "<" and toks[k - 1].kind == "id":
                        pass  # templates in args don't nest commas we count
                    k += 1
            else:
                continue  # adjacent-literal split across macros etc.
            if got != expected:
                out.append(Finding(
                    check="fmt-arity",
                    file=fi.path, line=t.line, function="",
                    message=(f"format string {fmt!r} expects {expected}"
                             f" argument(s) but {got} passed"),
                    detail=f"fmt={fmt};expected={expected};got={got}"))
    return out


# --------------------------------------------------------------------------
# Check 5: metric-name grammar.
# --------------------------------------------------------------------------

_METRIC_RE = re.compile(
    r"^(?:%s)(?:\.%s){2,}$" % ("|".join(config.METRIC_FAMILIES),
                               config.METRIC_SEGMENT))


def check_metric_names(files: List[FileIndex]) -> List[Finding]:
    out: List[Finding] = []
    for fi in files:
        toks = fi.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if not (t.kind == "id" and t.text in config.METRIC_FACTORIES
                    and i + 1 < n and toks[i + 1].text == "("):
                continue
            if i + 2 >= n or toks[i + 2].kind != "str":
                continue  # declaration or computed name
            name = toks[i + 2].text
            if i + 3 < n and toks[i + 3].kind == "str":
                continue  # concatenated literals: dynamic enough to skip
            if not _METRIC_RE.match(name):
                out.append(Finding(
                    check="metric-name",
                    file=fi.path, line=t.line, function="",
                    message=(f"metric name {name!r} violates the grammar"
                             f" <family>.<subsystem>.<name> with family in "
                             + "{" + ",".join(config.METRIC_FAMILIES) + "}"
                             + " and lowercase dash-separated segments"
                               " (DESIGN.md section 9)"),
                    detail=f"name={name}"))
    return out


# --------------------------------------------------------------------------
# Check 6: span-op-name grammar.  Dotted op names are what the trace9
# stitcher groups per-hop latency by (DESIGN.md section 12); a misspelled
# family silently falls out of the attribution tables.
# --------------------------------------------------------------------------

_SPAN_RE = re.compile(
    r"^(?:%s)(?:\.%s)+$" % ("|".join(config.SPAN_FAMILIES),
                            config.METRIC_SEGMENT))


def check_span_names(files: List[FileIndex]) -> List[Finding]:
    out: List[Finding] = []
    for fi in files:
        toks = fi.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if not (t.kind == "id" and t.text in config.SPAN_FACTORIES):
                continue
            j = i + 1
            # ScopedSpan is a constructor: `ScopedSpan span("op", ...)` puts
            # the variable name between the type and the open paren.
            if j < n and toks[j].kind == "id":
                j += 1
            if not (j < n and toks[j].text == "("):
                continue
            j += 1
            if j >= n or toks[j].kind != "str":
                continue  # computed op (ClientSpanOp etc.) or a declaration
            name = toks[j].text
            if j + 1 < n and toks[j + 1].kind == "str":
                continue  # concatenated literals: dynamic enough to skip
            if not _SPAN_RE.match(name):
                out.append(Finding(
                    check="span-op-name",
                    file=fi.path, line=t.line, function="",
                    message=(f"span op {name!r} violates the grammar"
                             f" <family>(.<segment>)+ with family in "
                             + "{" + ",".join(config.SPAN_FAMILIES) + "}"
                             + " and lowercase dash-separated segments"
                               " (DESIGN.md section 12)"),
                    detail=f"op={name}"))
    return out


# --------------------------------------------------------------------------
# Driver entry.
# --------------------------------------------------------------------------


def run_all(program: Program, files: List[FileIndex]) -> List[Finding]:
    blocking = propagate_may_block(program)
    findings: List[Finding] = []
    findings += check_blocking_under_lock(program, blocking)
    findings += check_lock_order(program)
    raw_bodies = []
    for fi in files:
        for raw in fi.raw_functions:
            if raw.has_body:
                raw_bodies.append((raw.qname, raw.file, raw.body))
    findings += check_fd_guard(program, raw_bodies)
    findings += check_fmt_arity(files)
    findings += check_metric_names(files)
    findings += check_span_names(files)
    findings += blockcheck.run(program, files)
    findings.sort(key=lambda f: (f.file, f.line, f.check, f.detail))
    return findings

"""plan9lint — whole-program invariant checker for the plan9net tree.

The compiler cannot see the paper's central discipline: kernel processes
sleep on Rendez conditions, flow control blocks in Queue, and none of that
may happen while an unrelated QLock is held (DESIGN.md section 7).  This
package propagates the MAY_BLOCK annotation (src/base/thread_annotations.h)
over the whole-program call graph and enforces that rule statically, plus a
handful of project invariants generic clang-tidy cannot express:

  blocking-under-lock   a call that can sleep runs while a QLock is held
                        (the rendez-own-lock idiom and classes declared
                        sleepable are whitelisted)
  lock-order            a lock acquisition contradicting the declared class
                        ranks (the same DAG src/task/lockcheck enforces at
                        run time)
  fd-guard              a raw fd obtained on an error-returning path that is
                        not wrapped in FdCloser before the next early return
  fmt-arity             StrFormat calls whose argument count disagrees with
                        the literal format string
  metric-name           obs registry names violating the dotted grammar of
                        DESIGN.md section 9

Frontends: `text` (always available; a purpose-built tokenizer) and
`cindex`/`astdump` (libclang refinement of the annotation seeds and call
graph when clang is installed; any failure falls back to text).  CI gates on
`--frontend=text` for determinism.
"""

__version__ = "1.0"

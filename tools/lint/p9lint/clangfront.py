"""Optional libclang-backed frontends.

Both frontends refine the text frontend rather than replace it: they parse
the real AST to recover MAY_BLOCK seeds (the `annotate("plan9::may_block")`
attribute) and direct call-graph edges with true overload resolution, then
merge those into the text-built Program.  The checks themselves always run
over the shared IR.

Neither clang binding is guaranteed to exist in the build environment, so
every entry point catches *all* exceptions and returns None; the driver then
falls back to the text frontend.  CI pins `--frontend=text` for determinism
regardless.
"""

import json
import os
import shlex
import subprocess
from typing import Dict, List, Optional, Set

ANNOTATION = "plan9::may_block"


def load_compile_commands(build_dir: str) -> List[dict]:
    path = os.path.join(build_dir, "compile_commands.json")
    with open(path) as f:
        return json.load(f)


# --------------------------------------------------------------------------
# Frontend "cindex": python clang bindings over libclang.
# --------------------------------------------------------------------------


def cindex_seeds(build_dir: str, files: List[str]) -> Optional[Dict[str, Set[str]]]:
    """Return {"may_block": {qnames...}, "calls:<qname>": {callees...}} or
    None when the bindings (or libclang itself) are unavailable."""
    try:
        from clang import cindex  # noqa: F401

        index = cindex.Index.create()
        db = {e["file"]: e for e in load_compile_commands(build_dir)}
        may_block: Set[str] = set()
        out: Dict[str, Set[str]] = {}

        def qname(cur) -> str:
            parent = cur.semantic_parent
            if parent is not None and parent.kind in (
                    cindex.CursorKind.CLASS_DECL,
                    cindex.CursorKind.STRUCT_DECL):
                return f"{parent.spelling}::{cur.spelling}"
            return cur.spelling

        def visit(cur, current: Optional[str]):
            k = cur.kind
            if k in (cindex.CursorKind.CXX_METHOD,
                     cindex.CursorKind.FUNCTION_DECL,
                     cindex.CursorKind.CONSTRUCTOR,
                     cindex.CursorKind.DESTRUCTOR):
                current = qname(cur)
                for ch in cur.get_children():
                    if (ch.kind == cindex.CursorKind.ANNOTATE_ATTR
                            and ch.spelling == ANNOTATION):
                        may_block.add(current)
            elif k == cindex.CursorKind.CALL_EXPR and current:
                ref = cur.referenced
                if ref is not None:
                    out.setdefault(f"calls:{current}", set()).add(qname(ref))
            for ch in cur.get_children():
                visit(ch, current)

        for path in files:
            entry = db.get(os.path.abspath(path)) or db.get(path)
            args = []
            if entry:
                raw = entry.get("arguments") or shlex.split(entry["command"])
                args = [a for a in raw[1:] if a not in ("-c", "-o")
                        and not a.endswith((".o", ".cc", ".cpp"))]
            tu = index.parse(path, args=args)
            visit(tu.cursor, None)
        out["may_block"] = may_block
        return out
    except Exception:
        return None


# --------------------------------------------------------------------------
# Frontend "astdump": `clang -Xclang -ast-dump=json` parsing, for machines
# with a clang binary but no python bindings.
# --------------------------------------------------------------------------


def astdump_seeds(build_dir: str, files: List[str]) -> Optional[Dict[str, Set[str]]]:
    try:
        db = {e["file"]: e for e in load_compile_commands(build_dir)}
        may_block: Set[str] = set()

        def walk(node, cls: Optional[str]):
            kind = node.get("kind", "")
            if kind in ("CXXRecordDecl",):
                cls = node.get("name", cls)
            if kind in ("CXXMethodDecl", "FunctionDecl", "CXXConstructorDecl",
                        "CXXDestructorDecl"):
                name = node.get("name", "")
                q = f"{cls}::{name}" if cls else name
                for ch in node.get("inner", []):
                    if (ch.get("kind") == "AnnotateAttr"
                            and ANNOTATION in json.dumps(ch)):
                        may_block.add(q)
            for ch in node.get("inner", []) or []:
                walk(ch, cls)

        for path in files:
            entry = db.get(os.path.abspath(path)) or db.get(path)
            extra: List[str] = []
            if entry:
                raw = entry.get("arguments") or shlex.split(entry["command"])
                extra = [a for a in raw[1:]
                         if a.startswith(("-I", "-D", "-std", "-isystem"))]
            proc = subprocess.run(
                ["clang++", "-Xclang", "-ast-dump=json", "-fsyntax-only",
                 *extra, path],
                capture_output=True, text=True, timeout=300)
            if proc.returncode != 0 or not proc.stdout:
                return None
            walk(json.loads(proc.stdout), None)
        return {"may_block": may_block}
    except Exception:
        return None


def refine_program(program, seeds: Dict[str, Set[str]]) -> None:
    """Merge clang-recovered facts into the text-built Program."""
    for q in seeds.get("may_block", ()):
        fn = program.functions.get(q)
        if fn is not None:
            fn.may_block_declared = True
    for key, callees in seeds.items():
        if not key.startswith("calls:"):
            continue
        q = key[len("calls:"):]
        fn = program.functions.get(q)
        if fn is None:
            continue
        known = {c.callee for c in fn.calls}
        from .model import CallSite
        for callee in callees:
            if callee not in known and callee in program.functions:
                fn.calls.append(CallSite(callee=callee,
                                         name=callee.rsplit("::", 1)[-1],
                                         line=fn.line))

"""Project invariants plan9lint enforces.

This file is the single source of truth shared (by convention, checked in
review) with the runtime counterparts:

  * SLEEPABLE_CLASSES mirrors the `kSleepableClass` constructor tags in the
    tree (src/task/qlock.h); lockcheck::OnBlock enforces the same list at
    run time.
  * DECLARED_ORDER mirrors the lock hierarchy of DESIGN.md section 7, which
    src/task/lockcheck discovers dynamically; here it is declared so a
    *statically visible* contradiction fails CI before any test runs.
"""

# Lock classes that may legally be held while the owner blocks on an
# unrelated Rendez.  Keep this list short and deliberate: each entry is a
# documented hold-across-sleep idiom, not an exemption of convenience.
SLEEPABLE_CLASSES = {
    # Stream::Read/ReadMessage hold the per-stream read lock across
    # Queue::Get: later readers are *supposed* to park behind the blocked
    # one ("a per stream read lock ensures only one process...").
    "stream.read",
    # NinepServer::Reply holds the reply serialization lock across a
    # flow-controlled transport WriteMsg so concurrent repliers queue
    # behind a stalled frame write instead of interleaving frames.
    "9p.server.write",
}

# Declared lock ranks: "A -> B" means A may be held while acquiring B.
# Acquiring in an order whose reverse is declared is a finding.  Pairs with
# no declared path either way are left to the runtime checker (new nesting
# must pick a direction; see DESIGN.md).
DECLARED_ORDER = [
    ("stream.read", "stream.queue"),
    # Protocol lock pairs: proto (clone/alloc) outranks its conversations.
    ("il.proto", "il.conv"),
    ("tcp.proto", "tcp.conv"),
    ("udp.proto", "udp.conv"),
    ("dk.proto", "dk.conv"),
    ("ether.proto", "ether.conv"),
    ("cyclone.proto", "cyclone.conv"),
    # Conversation locks are held while emitting into the IP stack, putting
    # to stream queues, and scheduling timers.
    ("il.conv", "ip.stack"),
    ("tcp.conv", "ip.stack"),
    ("udp.conv", "ip.stack"),
    ("il.conv", "stream.queue"),
    ("tcp.conv", "stream.queue"),
    ("udp.conv", "stream.queue"),
    ("dk.conv", "stream.queue"),
    ("ether.conv", "stream.queue"),
    ("cyclone.conv", "stream.queue"),
    ("il.conv", "timer"),
    ("tcp.conv", "timer"),
    ("udp.conv", "timer"),
    ("dk.conv", "timer"),
    ("cyclone.conv", "timer"),
    # The IP stack emits onto simulated media and arms timers.
    ("ip.stack", "sim.wire"),
    ("ip.stack", "sim.ether"),
    ("ip.stack", "timer"),
]

# Functions that are blocking roots even without a MAY_BLOCK token visible
# to the frontend (names as the text frontend qualifies them).  Rendez's
# methods are annotated in rendez.h too; listing them here keeps the checker
# correct even if a frontend misses attribute tokens on templates.
MAY_BLOCK_SEEDS = {
    "Rendez::Sleep",
    "Rendez::SleepFor",
    "Rendez::SleepUntil",
}

# Callee base names treated as rendez sleeps: the first argument is the
# lock the sleep atomically releases (the rendez-own-lock idiom).
SLEEP_METHODS = {"Sleep", "SleepFor", "SleepUntil"}

# Registry factory functions whose first argument must satisfy the metric
# grammar (DESIGN.md section 9).
METRIC_FACTORIES = {"CounterNamed", "GaugeNamed", "HistogramNamed"}

# Dotted, lowercase, dash-separated words; at least family.subsystem.name.
METRIC_FAMILIES = ("net", "ninep", "stream", "sim", "chaos", "recovery", "obs")
METRIC_SEGMENT = r"[a-z0-9]+(?:-[a-z0-9]+)*"

# Span factories whose literal op argument must satisfy the span-op grammar
# (DESIGN.md section 12): <family>(.<segment>)+, lowercase dash-separated
# segments.  ScopedSpan is a constructor, so a variable name may sit between
# the type and the open paren; EmitPointSpan is a plain call.
SPAN_FACTORIES = {"ScopedSpan", "EmitPointSpan"}
SPAN_FAMILIES = ("dial", "cs", "il", "tcp", "9p", "import")

# printf-checked variadic formatters: (name, index of the format argument).
FORMAT_FUNCTIONS = {"StrFormat": 0}

# Functions returning a raw fd that the caller must guard with FdCloser (or
# consume) before any statement that can return early.
FD_SOURCES = {"Open", "Create", "Dial", "Accept", "Listen", "Announce", "Dup"}

# Consuming a raw fd: constructing a guard, returning it, or closing it.
FD_GUARD_TYPES = {"FdCloser"}

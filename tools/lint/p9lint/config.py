"""Project invariants plan9lint enforces.

This file is the single source of truth shared (by convention, checked in
review) with the runtime counterparts:

  * SLEEPABLE_CLASSES mirrors the `kSleepableClass` constructor tags in the
    tree (src/task/qlock.h); lockcheck::OnBlock enforces the same list at
    run time.
  * DECLARED_ORDER mirrors the lock hierarchy of DESIGN.md section 7, which
    src/task/lockcheck discovers dynamically; here it is declared so a
    *statically visible* contradiction fails CI before any test runs.
"""

# Lock classes that may legally be held while the owner blocks on an
# unrelated Rendez.  Keep this list short and deliberate: each entry is a
# documented hold-across-sleep idiom, not an exemption of convenience.
SLEEPABLE_CLASSES = {
    # Stream::Read/ReadMessage hold the per-stream read lock across
    # Queue::Get: later readers are *supposed* to park behind the blocked
    # one ("a per stream read lock ensures only one process...").
    "stream.read",
    # NinepServer::Reply holds the reply serialization lock across a
    # flow-controlled transport WriteMsg so concurrent repliers queue
    # behind a stalled frame write instead of interleaving frames.
    "9p.server.write",
}

# Declared lock ranks: "A -> B" means A may be held while acquiring B.
# Acquiring in an order whose reverse is declared is a finding.  Pairs with
# no declared path either way are left to the runtime checker (new nesting
# must pick a direction; see DESIGN.md).
DECLARED_ORDER = [
    ("stream.read", "stream.queue"),
    # Protocol lock pairs: proto (clone/alloc) outranks its conversations.
    ("il.proto", "il.conv"),
    ("tcp.proto", "tcp.conv"),
    ("udp.proto", "udp.conv"),
    ("dk.proto", "dk.conv"),
    ("ether.proto", "ether.conv"),
    ("cyclone.proto", "cyclone.conv"),
    # Conversation locks are held while emitting into the IP stack, putting
    # to stream queues, and scheduling timers.
    ("il.conv", "ip.stack"),
    ("tcp.conv", "ip.stack"),
    ("udp.conv", "ip.stack"),
    ("il.conv", "stream.queue"),
    ("tcp.conv", "stream.queue"),
    ("udp.conv", "stream.queue"),
    ("dk.conv", "stream.queue"),
    ("ether.conv", "stream.queue"),
    ("cyclone.conv", "stream.queue"),
    ("il.conv", "timer"),
    ("tcp.conv", "timer"),
    ("udp.conv", "timer"),
    ("dk.conv", "timer"),
    ("cyclone.conv", "timer"),
    # The IP stack emits onto simulated media and arms timers.
    ("ip.stack", "sim.wire"),
    ("ip.stack", "sim.ether"),
    ("ip.stack", "timer"),
]

# Functions that are blocking roots even without a MAY_BLOCK token visible
# to the frontend (names as the text frontend qualifies them).  Rendez's
# methods are annotated in rendez.h too; listing them here keeps the checker
# correct even if a frontend misses attribute tokens on templates.
MAY_BLOCK_SEEDS = {
    "Rendez::Sleep",
    "Rendez::SleepFor",
    "Rendez::SleepUntil",
}

# Callee base names treated as rendez sleeps: the first argument is the
# lock the sleep atomically releases (the rendez-own-lock idiom).
SLEEP_METHODS = {"Sleep", "SleepFor", "SleepUntil"}

# Registry factory functions whose first argument must satisfy the metric
# grammar (DESIGN.md section 9).
METRIC_FACTORIES = {"CounterNamed", "GaugeNamed", "HistogramNamed"}

# Dotted, lowercase, dash-separated words; at least family.subsystem.name.
METRIC_FAMILIES = ("net", "ninep", "stream", "sim", "chaos", "recovery", "obs")
METRIC_SEGMENT = r"[a-z0-9]+(?:-[a-z0-9]+)*"

# Span factories whose literal op argument must satisfy the span-op grammar
# (DESIGN.md section 12): <family>(.<segment>)+, lowercase dash-separated
# segments.  ScopedSpan is a constructor, so a variable name may sit between
# the type and the open paren; EmitPointSpan is a plain call.
SPAN_FACTORIES = {"ScopedSpan", "EmitPointSpan"}
SPAN_FAMILIES = ("dial", "cs", "il", "tcp", "9p", "import")

# printf-checked variadic formatters: (name, index of the format argument).
FORMAT_FUNCTIONS = {"StrFormat": 0}

# Functions returning a raw fd that the caller must guard with FdCloser (or
# consume) before any statement that can return early.
FD_SOURCES = {"Open", "Create", "Dial", "Accept", "Listen", "Announce", "Dup"}

# Consuming a raw fd: constructing a guard, returning it, or closing it.
FD_GUARD_TYPES = {"FdCloser"}

# ---------------------------------------------------------------------------
# Blockcheck (src/base/block_annotations.h, DESIGN.md section 13).
# ---------------------------------------------------------------------------

# Types whose locals/parameters the use-after-move check tracks.
BLOCK_PTR_TYPES = {"BlockPtr"}

# Extra hot-path roots beyond the P9_HOT_PATH annotations in the tree (names
# as the text frontend qualifies them).  Normally empty: annotate the source
# instead so the runtime hotcheck scope rides along.
HOT_SEEDS: set = set()

# Callees that clone or copy-build a block/buffer: banned in hot functions.
# AllocDataBlock is the sanctioned pooled allocator and is NOT here.
HOT_BANNED_CALLEES = {
    "CloneBlock", "MakeDataBlock", "MakeControlBlock", "MakeHangupBlock",
    "ToBytes",
}

# Copy/alloc constructors flagged in hot bodies: `Bytes(p, p + n)` is a
# whole-payload copy, `Bytes(n)` a fresh allocation.
HOT_COPY_CTORS = {"Bytes"}

# Statements mentioning these identifiers are cold error sub-paths of hot
# functions (building an error string on hangup is not per-message work).
HOT_COLD_MARKERS = {"Error", "err_"}

# Hot-reachable functions allowed to copy or allocate, mirroring the
# SLEEPABLE_CLASSES idea: each entry is a documented, *counted* exception
# (blockaudit::NoteCopy or a deliberate cold sub-path), not an exemption of
# convenience.
HOT_PATH_SAFE = {
    # The single sanctioned user-to-kernel copy: Stream::Write builds the
    # block payload from the caller's buffer (DESIGN.md section 13).
    "Stream::Write",
    # The pooled allocator itself: its miss path `new Block()` is what the
    # pool-miss counter measures; steady state never takes it.
    "AllocDataBlock",
    # Ether multicast: one extra payload copy per additional recipient,
    # counted via blockaudit::NoteCopy right at the copy.
    "EtherProto::Input",
    # CloneBlock is the *deliberate* copy primitive; it counts itself.
    "CloneBlock",
    # Retransmit-path serializers: EmitLocked builds the wire frame (header
    # + payload) it hands to IpStack::Send; the IL data path reuses the
    # sender's buffer for the retransmit queue, so this is the one framing
    # copy per message the protocol design requires.
    "IlConv::EmitLocked",
    "TcpConv::EmitLocked",
    "UdpConv::Output",
    "CycloneConv::SendMessage",
    "UrpCircuit::SendMessage",
    # 9P framing: WriteMsg length-prefixes the serialized message in place
    # (one memmove); ReadMsg assembles a frame from the byte stream.
    "FramedMsgTransport::WriteMsg",
    "FramedMsgTransport::ReadMsg",
    # Leak-singleton accessors: the `new` runs once per process, under the
    # first caller, never per message.
    "MetricsRegistry::Default",
    "Tracer::Default",
    "FlightRecorder::Default",
    "TimerWheel::Default",
}

// Fixture: copy-in-hot-path.  HotRecv is annotated P9_HOT_PATH; Helper is
// reachable from it, so the propagated hot set covers both.
#include "src/base/block_annotations.h"
#include "src/stream/block.h"

namespace plan9 {

class Conv2 {
 public:
  void Deliver(BlockPtr b);
  void Helper(const Block& b);

  // BAD: clones the block on the per-message receive path.
  void HotRecv(const Block& b) P9_HOT_PATH {
    Deliver(CloneBlock(b));
    Helper(b);
  }

  // BAD via propagation: called from HotRecv, builds a std::string copy of
  // the payload and a non-pooled block.
  void HotHelper(const Block& b) {
    name_ = std::string(reinterpret_cast<const char*>(b.payload()), b.size());
    Deliver(MakeDataBlock(name_, true));
  }

  // OK: not reachable from any hot function; copies freely.
  void ColdStats(const Block& b) {
    name_ = b.Text();
    Deliver(CloneBlock(b));
  }

  // OK: hot, but only pooled allocation and moves.
  void HotClean(Bytes payload) P9_HOT_PATH {
    Deliver(AllocDataBlock(std::move(payload), true));
  }

 private:
  std::string name_;
};

inline void Glue(Conv2* c, const Block& b) { c->HotHelper(b); }

inline void HotEntry(Conv2* c, const Block& b) P9_HOT_PATH { Glue(c, b); }

}  // namespace plan9

// plan9lint fixture: obs registry names violating the DESIGN.md section 9
// grammar: <family>.<subsystem>.<name>, family in {net,ninep,stream,sim},
// lowercase dash-separated segments, at least three segments.
namespace plan9 {

class MetricsRegistry;

void Register(MetricsRegistry& r) {
  r.CounterNamed("net.il.rexmits");        // fine
  r.GaugeNamed("stream.queue.bytes");      // fine
  r.CounterNamed("net.badUpper");          // BAD: case + only two segments
  r.CounterNamed("foo.bar.baz");           // BAD: unknown family
  r.HistogramNamed("ninep.rpc.latency-us");  // fine
}

}  // namespace plan9

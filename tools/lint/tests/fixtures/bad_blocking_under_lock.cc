// plan9lint fixture: blocking-under-lock, the bad cases.
// Not compiled; parsed by the text frontend in run_tests.py.
#include "src/base/thread_annotations.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"

namespace plan9 {

class Chan {
 public:
  void Send() MAY_BLOCK;  // flow-controlled: can park the caller
  void Poke();            // non-blocking
};

class Mux {
 public:
  void Drive() {
    QLockGuard guard(lock_);
    chan_->Send();  // BAD: can block while holding test.mux
    chan_->Poke();  // fine
  }

  void DriveIndirect() {
    QLockGuard guard(lock_);
    Step();  // BAD: Step() transitively blocks via Chan::Send
  }

  void Step() { chan_->Send(); }  // may-block by propagation, no lock held

  void BadSleep() {
    QLockGuard gu(other_);
    QLockGuard go(lock_);
    r_.Sleep(lock_, [this] { return ready_; });  // BAD: test.other also held
  }

 private:
  QLock lock_{"test.mux"};
  QLock other_{"test.other"};
  Rendez r_;
  bool ready_ = false;
  Chan* chan_ = nullptr;
};

}  // namespace plan9

// Fixture: consume-on-all-paths for P9_CONSUMES parameters.
#include "src/base/block_annotations.h"
#include "src/stream/block.h"

namespace plan9 {

class Queue2 {
 public:
  // BAD: the closed path returns without consuming b (the BlockPtr dies in
  // its destructor instead of being explicitly dropped).
  int LeakyPut(BlockPtr b) P9_CONSUMES(b) {
    if (closed_) {
      return -1;
    }
    store_ = std::move(b);
    return 0;
  }

  // BAD: the non-data branch silently falls off the end with b still owned.
  void LeakyDownPut(BlockPtr b) P9_CONSUMES(b) {
    if (b->type == BlockType::kData) {
      store_ = std::move(b);
    }
  }

  // OK: every path forwards, recycles, or drops.
  int CleanPut(BlockPtr b) P9_CONSUMES(b) {
    if (b == nullptr) {
      return 0;
    }
    if (closed_) {
      DropBlock(std::move(b));
      return -1;
    }
    store_ = std::move(b);
    return 0;
  }

  // OK: both branches of the if/else consume.
  void CleanDownPut(BlockPtr b) P9_CONSUMES(b) {
    if (b->type == BlockType::kData) {
      store_ = std::move(b);
    } else {
      DropBlock(std::move(b));
    }
  }

 private:
  bool closed_ = false;
  BlockPtr store_;
};

}  // namespace plan9

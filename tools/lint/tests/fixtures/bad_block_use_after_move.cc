// Fixture: use-after-move of BlockPtr variables.
#include "src/stream/block.h"

namespace plan9 {

class Sink {
 public:
  void Forward(BlockPtr b);

  // BAD: dereferences b after handing it off.
  void UseAfterMove(BlockPtr b) {
    Forward(std::move(b));
    last_size_ = b->size();
  }

  // BAD: moves the same block twice on one path.
  void DoubleMove(BlockPtr b) {
    Forward(std::move(b));
    Forward(std::move(b));
  }

  // OK: the move is conditional; the use is on the other path.
  void ConditionalMove(BlockPtr b) {
    if (closed_) {
      Forward(std::move(b));
      return;
    }
    last_size_ = b->size();
    Forward(std::move(b));
  }

  // OK: reassigned between the move and the use.
  void Reassigned(BlockPtr b) {
    Forward(std::move(b));
    b = MakeDataBlock("again", true);
    last_size_ = b->size();
  }

 private:
  bool closed_ = false;
  size_t last_size_ = 0;
};

}  // namespace plan9

// plan9lint fixture: StrFormat argument-count mismatches.
#include <string>

namespace plan9 {

std::string StrFormat(const char* fmt, ...);

void Report(int n, const char* who) {
  auto a = StrFormat("conv %d of %d", n);             // BAD: expects 2, got 1
  auto b = StrFormat("hello %s", who, n);             // BAD: expects 1, got 2
  auto c = StrFormat("%-5s %*d 100%%", who, 8, n);    // fine: 3 and 3
  auto d = StrFormat("plain");                        // fine: 0 and 0
  auto e = StrFormat("%6lld.%06lld %s", 1LL, 2LL, who);  // fine
}

}  // namespace plan9

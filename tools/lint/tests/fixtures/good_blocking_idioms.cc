// plan9lint fixture: the sanctioned blocking idioms — zero findings.
#include "src/base/thread_annotations.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"

namespace plan9 {

class Q {
 public:
  void Get() MAY_BLOCK;
};

class Waiter {
 public:
  void Wait() {
    QLockGuard g(lock_);
    // The rendez-own-lock idiom: Sleep atomically releases lock_.
    r_.Sleep(lock_, [this] { return ready_; });
  }

  void WaitUnlockedCall() {
    {
      QLockGuard g(lock_);
      ready_ = false;
    }
    q_->Get();  // guard scope ended: nothing held across the block
  }

  void MidScopeUnlock() {
    QLockGuard g(lock_);
    g.Unlock();
    q_->Get();  // explicitly dropped before blocking
    g.Lock();
  }

 private:
  QLock lock_{"test.waiter"};
  Rendez r_;
  bool ready_ = false;
  Q* q_ = nullptr;
};

class Reader {
 public:
  void Read() {
    QLockGuard g(read_lock_);
    q_->Get();  // OK: stream.read is a declared sleepable class
  }

 private:
  QLock read_lock_{"stream.read", kSleepableClass};
  Q* q_ = nullptr;
};

}  // namespace plan9

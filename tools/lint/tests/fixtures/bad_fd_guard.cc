// plan9lint fixture: raw fds that can leak down early-return paths.
#include "src/base/status.h"

namespace plan9 {

class Proc;

Result<int> LeakyOpen(Proc* p) {
  P9_ASSIGN_OR_RETURN(int fd, p->Open("/net/cs", kORdWr));
  auto num = p->ReadString(fd, 32);
  if (!num.ok()) {
    return num.error();  // BAD: fd leaks on this path
  }
  return fd;
}

Result<int> LeakyViaMacro(Proc* p) {
  P9_ASSIGN_OR_RETURN(int cfd, p->Dial("tcp!remote!564"));
  P9_ASSIGN_OR_RETURN(auto line, p->ReadString(cfd, 32));  // BAD: hidden
  // early return inside the macro leaks cfd before anything owns it.
  p->Close(cfd);
  return 0;
}

Result<int> GuardedOpen(Proc* p) {
  P9_ASSIGN_OR_RETURN(int fd, p->Open("/net/cs", kORdWr));
  FdCloser guard(p, fd);
  auto num = p->ReadString(guard.get(), 32);
  if (!num.ok()) {
    return num.error();  // fine: guard closes fd
  }
  return guard.Release();
}

Result<int> ClosedOnErrorOpen(Proc* p) {
  P9_ASSIGN_OR_RETURN(int fd, p->Open("/net/log", kORead));
  p->Close(fd);
  return 0;
}

}  // namespace plan9

// plan9lint fixture: lock acquisition contradicting the declared ranks.
#include "src/task/qlock.h"

namespace plan9 {

class Stack {
 public:
  QLock lock_{"ip.stack"};
};

class Conv {
 public:
  void BadNesting() {
    QLockGuard g1(stack_->lock_);
    QLockGuard g2(lock_);  // BAD: declared order is il.conv before ip.stack
  }

  void GoodNesting() {
    QLockGuard g2(lock_);
    QLockGuard g1(stack_->lock_);  // matches the declared direction
  }

 private:
  QLock lock_{"il.conv"};
  Stack* stack_ = nullptr;
};

}  // namespace plan9

// plan9lint fixture: span op names violating the DESIGN.md section 12
// grammar: <family>(.<segment>)+, family in {dial,cs,il,tcp,9p,import},
// lowercase dash-separated segments.
namespace plan9 {
namespace obs {
class ScopedSpan;
}  // namespace obs

void Traced(const char* computed) {
  obs::ScopedSpan span("dial.cs", "helix");           // fine
  obs::ScopedSpan shouty("Dial.CS", "helix");         // BAD: uppercase
  obs::ScopedSpan lost("frobnicate.walk", "helix");   // BAD: unknown family
  obs::ScopedSpan dynamic(computed, "helix");         // computed: skipped
  obs::EmitPointSpan("il.rtt");                       // fine
  obs::EmitPointSpan("il");                           // BAD: family alone
}

}  // namespace plan9

// Fixture: borrow-escape for P9_BORROWS parameters.
#include "src/base/block_annotations.h"
#include "src/stream/block.h"

namespace plan9 {

class Peeker {
 public:
  // BAD: stashes the address of a borrowed block past the call.
  void KeepAddress(const Block& b) P9_BORROWS(b) {
    stash_ = &b;
  }

  // OK: reads the borrow, copies the bytes it needs, keeps nothing.
  size_t Peek(const Block& b) P9_BORROWS(b) {
    head_ = Bytes(b.payload(), b.payload() + std::min<size_t>(4, b.size()));
    return b.size();
  }

 private:
  const Block* stash_ = nullptr;
  Bytes head_;
};

}  // namespace plan9

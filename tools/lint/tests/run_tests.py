#!/usr/bin/env python3
"""plan9lint fixture self-tests.

Each fixture under fixtures/ is parsed with the text frontend and the full
check suite runs over it; the expected findings are asserted *exactly* (by
stable baseline key), so a regression that silences a check or invents a
false positive fails loudly.
"""

import os
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(HERE))  # tools/lint

from p9lint import checks, textparse  # noqa: E402
from p9lint.model import Program  # noqa: E402

FIXTURES = os.path.join(HERE, "fixtures")


def lint(*names):
    program = Program()
    indexes = []
    for name in names:
        path = os.path.join(FIXTURES, name)
        with open(path) as f:
            indexes.append(textparse.parse_file(program, name, f.read()))
    textparse.analyze(program, indexes)
    return [f.key() for f in checks.run_all(program, indexes)]


class BlockingUnderLock(unittest.TestCase):
    def test_bad(self):
        keys = lint("bad_blocking_under_lock.cc")
        self.assertEqual(sorted(keys), sorted([
            "blocking-under-lock|bad_blocking_under_lock.cc|Mux::BadSleep"
            "|callee=Rendez::Sleep;held=test.other",
            "blocking-under-lock|bad_blocking_under_lock.cc|Mux::Drive"
            "|callee=Chan::Send;held=test.mux",
            "blocking-under-lock|bad_blocking_under_lock.cc|Mux::DriveIndirect"
            "|callee=Mux::Step;held=test.mux",
        ]))

    def test_good_idioms_are_clean(self):
        self.assertEqual(lint("good_blocking_idioms.cc"), [])

    def test_transitive_propagation(self):
        program = Program()
        path = os.path.join(FIXTURES, "bad_blocking_under_lock.cc")
        with open(path) as f:
            idx = textparse.parse_file(program, "f.cc", f.read())
        textparse.analyze(program, [idx])
        blocking = checks.propagate_may_block(program)
        self.assertIn("Chan::Send", blocking)       # annotated
        self.assertIn("Mux::Step", blocking)        # one hop
        self.assertIn("Mux::Drive", blocking)       # two hops
        self.assertNotIn("Chan::Poke", blocking)


class LockOrder(unittest.TestCase):
    def test_bad(self):
        keys = lint("bad_lock_order.cc")
        self.assertEqual(keys, [
            "lock-order|bad_lock_order.cc|Conv::BadNesting"
            "|acquire=il.conv;held=ip.stack",
        ])


class FdGuard(unittest.TestCase):
    def test_bad(self):
        keys = lint("bad_fd_guard.cc")
        self.assertEqual(sorted(keys), [
            "fd-guard|bad_fd_guard.cc|LeakyOpen|fd=fd",
            "fd-guard|bad_fd_guard.cc|LeakyViaMacro|fd=cfd",
        ])


class FmtArity(unittest.TestCase):
    def test_bad(self):
        keys = lint("bad_fmt_arity.cc")
        self.assertEqual(sorted(keys), [
            "fmt-arity|bad_fmt_arity.cc||fmt=conv %d of %d;expected=2;got=1",
            "fmt-arity|bad_fmt_arity.cc||fmt=hello %s;expected=1;got=2",
        ])


class MetricName(unittest.TestCase):
    def test_bad(self):
        keys = lint("bad_metric_name.cc")
        self.assertEqual(sorted(keys), [
            "metric-name|bad_metric_name.cc||name=foo.bar.baz",
            "metric-name|bad_metric_name.cc||name=net.badUpper",
        ])


class SpanOpName(unittest.TestCase):
    def test_bad(self):
        keys = lint("bad_span_name.cc")
        self.assertEqual(sorted(keys), [
            "span-op-name|bad_span_name.cc||op=Dial.CS",
            "span-op-name|bad_span_name.cc||op=frobnicate.walk",
            "span-op-name|bad_span_name.cc||op=il",
        ])


class RealTreeSmoke(unittest.TestCase):
    """The annotations the sweep added to the real headers must be visible
    to the text frontend and propagate into the core call graph."""

    def test_real_headers_parse(self):
        root = os.path.abspath(os.path.join(HERE, "..", "..", ".."))
        program = Program()
        indexes = []
        for rel in ("src/task/rendez.h", "src/stream/queue.h",
                    "src/stream/stream.h", "src/ninep/client.h",
                    "src/task/qlock.h"):
            path = os.path.join(root, rel)
            if not os.path.exists(path):
                self.skipTest(f"{rel} not found (fixture-only checkout)")
            with open(path) as f:
                indexes.append(textparse.parse_file(program, rel, f.read()))
        textparse.analyze(program, indexes)
        blocking = checks.propagate_may_block(program)
        self.assertIn("Queue::Put", blocking)
        self.assertIn("Queue::Get", blocking)
        self.assertIn("Stream::Read", blocking)
        self.assertIn("NinepClient::Rpc", blocking)
        # The sleepable whitelist classes must be declared on real locks.
        self.assertEqual(program.lock_classes.get(("Stream", "read_lock_")),
                         "stream.read")
        # And the good idioms must not fire in these headers.
        keys = [k for k in (f.key() for f in checks.run_all(program, indexes))
                if k.startswith("blocking-under-lock")]
        self.assertEqual(keys, [])


if __name__ == "__main__":
    unittest.main(verbosity=2)

#!/usr/bin/env python3
"""plan9lint fixture self-tests.

Each fixture under fixtures/ is parsed with the text frontend and the full
check suite runs over it; the expected findings are asserted *exactly* (by
stable baseline key), so a regression that silences a check or invents a
false positive fails loudly.
"""

import os
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(HERE))  # tools/lint

from p9lint import blockcheck, checks, textparse  # noqa: E402
from p9lint.model import Program  # noqa: E402

FIXTURES = os.path.join(HERE, "fixtures")


def lint(*names):
    program = Program()
    indexes = []
    for name in names:
        path = os.path.join(FIXTURES, name)
        with open(path) as f:
            indexes.append(textparse.parse_file(program, name, f.read()))
    textparse.analyze(program, indexes)
    return [f.key() for f in checks.run_all(program, indexes)]


class BlockingUnderLock(unittest.TestCase):
    def test_bad(self):
        keys = lint("bad_blocking_under_lock.cc")
        self.assertEqual(sorted(keys), sorted([
            "blocking-under-lock|bad_blocking_under_lock.cc|Mux::BadSleep"
            "|callee=Rendez::Sleep;held=test.other",
            "blocking-under-lock|bad_blocking_under_lock.cc|Mux::Drive"
            "|callee=Chan::Send;held=test.mux",
            "blocking-under-lock|bad_blocking_under_lock.cc|Mux::DriveIndirect"
            "|callee=Mux::Step;held=test.mux",
        ]))

    def test_good_idioms_are_clean(self):
        self.assertEqual(lint("good_blocking_idioms.cc"), [])

    def test_transitive_propagation(self):
        program = Program()
        path = os.path.join(FIXTURES, "bad_blocking_under_lock.cc")
        with open(path) as f:
            idx = textparse.parse_file(program, "f.cc", f.read())
        textparse.analyze(program, [idx])
        blocking = checks.propagate_may_block(program)
        self.assertIn("Chan::Send", blocking)       # annotated
        self.assertIn("Mux::Step", blocking)        # one hop
        self.assertIn("Mux::Drive", blocking)       # two hops
        self.assertNotIn("Chan::Poke", blocking)


class LockOrder(unittest.TestCase):
    def test_bad(self):
        keys = lint("bad_lock_order.cc")
        self.assertEqual(keys, [
            "lock-order|bad_lock_order.cc|Conv::BadNesting"
            "|acquire=il.conv;held=ip.stack",
        ])


class FdGuard(unittest.TestCase):
    def test_bad(self):
        keys = lint("bad_fd_guard.cc")
        self.assertEqual(sorted(keys), [
            "fd-guard|bad_fd_guard.cc|LeakyOpen|fd=fd",
            "fd-guard|bad_fd_guard.cc|LeakyViaMacro|fd=cfd",
        ])


class FmtArity(unittest.TestCase):
    def test_bad(self):
        keys = lint("bad_fmt_arity.cc")
        self.assertEqual(sorted(keys), [
            "fmt-arity|bad_fmt_arity.cc||fmt=conv %d of %d;expected=2;got=1",
            "fmt-arity|bad_fmt_arity.cc||fmt=hello %s;expected=1;got=2",
        ])


class MetricName(unittest.TestCase):
    def test_bad(self):
        keys = lint("bad_metric_name.cc")
        self.assertEqual(sorted(keys), [
            "metric-name|bad_metric_name.cc||name=foo.bar.baz",
            "metric-name|bad_metric_name.cc||name=net.badUpper",
        ])


class SpanOpName(unittest.TestCase):
    def test_bad(self):
        keys = lint("bad_span_name.cc")
        self.assertEqual(sorted(keys), [
            "span-op-name|bad_span_name.cc||op=Dial.CS",
            "span-op-name|bad_span_name.cc||op=frobnicate.walk",
            "span-op-name|bad_span_name.cc||op=il",
        ])


class BlockUseAfterMove(unittest.TestCase):
    def test_bad_and_good(self):
        keys = lint("bad_block_use_after_move.cc")
        self.assertEqual(sorted(keys), sorted([
            "use-after-move|bad_block_use_after_move.cc|Sink::UseAfterMove"
            "|var=b",
            "use-after-move|bad_block_use_after_move.cc|Sink::DoubleMove"
            "|var=b",
        ]))


class ConsumeOnAllPaths(unittest.TestCase):
    def test_bad_and_good(self):
        keys = lint("bad_block_consume.cc")
        self.assertEqual(sorted(keys), sorted([
            "consume-on-all-paths|bad_block_consume.cc|Queue2::LeakyPut"
            "|var=b",
            "consume-on-all-paths|bad_block_consume.cc|Queue2::LeakyDownPut"
            "|var=b",
        ]))


class CopyInHotPath(unittest.TestCase):
    def test_bad_and_good(self):
        keys = lint("bad_hot_path_copy.cc")
        self.assertEqual(sorted(keys), sorted([
            "copy-in-hot-path|bad_hot_path_copy.cc|Conv2::HotRecv"
            "|callee=CloneBlock",
            "copy-in-hot-path|bad_hot_path_copy.cc|Conv2::HotHelper"
            "|callee=MakeDataBlock",
            "copy-in-hot-path|bad_hot_path_copy.cc|Conv2::HotHelper"
            "|callee=std::string",
        ]))

    def test_hot_propagation_is_transitive_and_callee_ward(self):
        program = Program()
        path = os.path.join(FIXTURES, "bad_hot_path_copy.cc")
        with open(path) as f:
            idx = textparse.parse_file(program, "f.cc", f.read())
        textparse.analyze(program, [idx])
        hot = blockcheck.propagate_hot(program, [idx])
        self.assertIn("Conv2::HotRecv", hot)    # annotated
        self.assertIn("HotEntry", hot)          # annotated free function
        self.assertIn("Glue", hot)              # one hop
        self.assertIn("Conv2::HotHelper", hot)  # two hops, via receiver type
        self.assertNotIn("Conv2::ColdStats", hot)


class BorrowEscape(unittest.TestCase):
    def test_bad_and_good(self):
        keys = lint("bad_borrow_escape.cc")
        self.assertEqual(keys, [
            "borrow-escape|bad_borrow_escape.cc|Peeker::KeepAddress"
            "|var=b;escape=address-of",
        ])


class RealTreeSmoke(unittest.TestCase):
    """The annotations the sweep added to the real headers must be visible
    to the text frontend and propagate into the core call graph."""

    def test_real_headers_parse(self):
        root = os.path.abspath(os.path.join(HERE, "..", "..", ".."))
        program = Program()
        indexes = []
        for rel in ("src/task/rendez.h", "src/stream/queue.h",
                    "src/stream/stream.h", "src/stream/block.h",
                    "src/ninep/client.h", "src/task/qlock.h"):
            path = os.path.join(root, rel)
            if not os.path.exists(path):
                self.skipTest(f"{rel} not found (fixture-only checkout)")
            with open(path) as f:
                indexes.append(textparse.parse_file(program, rel, f.read()))
        textparse.analyze(program, indexes)
        blocking = checks.propagate_may_block(program)
        self.assertIn("Queue::Put", blocking)
        self.assertIn("Queue::Get", blocking)
        self.assertIn("Stream::Read", blocking)
        self.assertIn("NinepClient::Rpc", blocking)
        # The sleepable whitelist classes must be declared on real locks.
        self.assertEqual(program.lock_classes.get(("Stream", "read_lock_")),
                         "stream.read")
        # The data-path annotations must be visible and propagate: the
        # queue entry points are hot roots, and everything Stream::Write
        # touches rides along.
        hot = blockcheck.propagate_hot(program, indexes)
        self.assertIn("Queue::Put", hot)
        self.assertIn("Stream::Write", hot)
        consumes = blockcheck.collect_consumes(indexes)
        self.assertEqual(consumes.get("Queue::Put"), {"b"})
        self.assertEqual(consumes.get("RecycleBlock"), {"b"})
        # And the good idioms must not fire in these headers.
        keys = [k for k in (f.key() for f in checks.run_all(program, indexes))
                if k.startswith("blocking-under-lock")]
        self.assertEqual(keys, [])


if __name__ == "__main__":
    unittest.main(verbosity=2)

#!/bin/sh
# Lines-of-code inventory, reproducing the paper's two code-size claims:
#   §2: "of 25,000 lines of kernel code, 12,500 are network and protocol
#        related"
#   §3: "The entire protocol is 847 lines of code, compared to 2200 lines
#        for TCP."
# Counts non-blank, non-pure-comment lines of .h/.cc under src/.
cd "$(dirname "$0")/.." || exit 1

count() {
  # shellcheck disable=SC2068
  cat $@ 2>/dev/null | grep -v '^[[:space:]]*$' | grep -cv '^[[:space:]]*//'
}

total=$(count src/*/*.h src/*/*.cc)
il=$(count src/inet/il.h src/inet/il.cc)
tcp=$(count src/inet/tcp.h src/inet/tcp.cc)
udp=$(count src/inet/udp.h src/inet/udp.cc)
net=$(count src/inet/*.h src/inet/*.cc src/dk/*.h src/dk/*.cc \
            src/dev/*.h src/dev/*.cc src/ninep/*.h src/ninep/*.cc \
            src/stream/*.h src/stream/*.cc src/csdns/*.h src/csdns/*.cc \
            src/dial/*.h src/dial/*.cc src/ndb/*.h src/ndb/*.cc)

echo "module LoC (non-blank, non-comment):"
for d in src/*/; do
  printf '  %-10s %6s\n' "$(basename "$d")" "$(count "$d"/*.h "$d"/*.cc)"
done
echo
echo "total library:           $total"
echo "network+protocol related: $net  ($(awk -v a="$net" -v b="$total" 'BEGIN{printf "%.0f%%", 100*a/b}') of library; paper: 12500/25000 = 50% of kernel)"
echo
echo "IL:  $il lines   (paper:  847)"
echo "TCP: $tcp lines   (paper: 2200)"
awk -v il="$il" -v tcp="$tcp" 'BEGIN{printf "TCP/IL ratio: %.2f (paper: 2.60)\n", tcp/il}'
echo "UDP: $udp lines"

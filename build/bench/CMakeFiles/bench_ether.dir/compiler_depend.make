# Empty compiler generated dependencies file for bench_ether.
# This may be replaced when dependencies are built.

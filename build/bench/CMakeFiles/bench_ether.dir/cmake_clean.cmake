file(REMOVE_RECURSE
  "CMakeFiles/bench_ether.dir/bench_ether.cc.o"
  "CMakeFiles/bench_ether.dir/bench_ether.cc.o.d"
  "bench_ether"
  "bench_ether.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ether.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

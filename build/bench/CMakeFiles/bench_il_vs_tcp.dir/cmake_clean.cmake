file(REMOVE_RECURSE
  "CMakeFiles/bench_il_vs_tcp.dir/bench_il_vs_tcp.cc.o"
  "CMakeFiles/bench_il_vs_tcp.dir/bench_il_vs_tcp.cc.o.d"
  "bench_il_vs_tcp"
  "bench_il_vs_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_il_vs_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

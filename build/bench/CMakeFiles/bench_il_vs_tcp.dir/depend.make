# Empty dependencies file for bench_il_vs_tcp.
# This may be replaced when dependencies are built.

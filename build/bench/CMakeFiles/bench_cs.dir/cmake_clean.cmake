file(REMOVE_RECURSE
  "CMakeFiles/bench_cs.dir/bench_cs.cc.o"
  "CMakeFiles/bench_cs.dir/bench_cs.cc.o.d"
  "bench_cs"
  "bench_cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

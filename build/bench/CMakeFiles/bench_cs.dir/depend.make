# Empty dependencies file for bench_cs.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_ninep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ninep.dir/bench_ninep.cc.o"
  "CMakeFiles/bench_ninep.dir/bench_ninep.cc.o.d"
  "bench_ninep"
  "bench_ninep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ninep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_streams.dir/bench_streams.cc.o"
  "CMakeFiles/bench_streams.dir/bench_streams.cc.o.d"
  "bench_streams"
  "bench_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_loss.dir/bench_loss.cc.o"
  "CMakeFiles/bench_loss.dir/bench_loss.cc.o.d"
  "bench_loss"
  "bench_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_loss.
# This may be replaced when dependencies are built.

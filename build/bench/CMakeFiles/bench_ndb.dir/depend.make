# Empty dependencies file for bench_ndb.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ndb.dir/bench_ndb.cc.o"
  "CMakeFiles/bench_ndb.dir/bench_ndb.cc.o.d"
  "bench_ndb"
  "bench_ndb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ndb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_csquery.dir/csquery.cpp.o"
  "CMakeFiles/example_csquery.dir/csquery.cpp.o.d"
  "example_csquery"
  "example_csquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_csquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_csquery.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_echo_server.
# This may be replaced when dependencies are built.

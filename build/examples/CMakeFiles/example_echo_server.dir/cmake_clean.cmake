file(REMOVE_RECURSE
  "CMakeFiles/example_echo_server.dir/echo_server.cpp.o"
  "CMakeFiles/example_echo_server.dir/echo_server.cpp.o.d"
  "example_echo_server"
  "example_echo_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_echo_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_import_net.dir/import_net.cpp.o"
  "CMakeFiles/example_import_net.dir/import_net.cpp.o.d"
  "example_import_net"
  "example_import_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_import_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_import_net.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/plan9net.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/base/logging.cc.o.d"
  "/root/repo/src/base/strings.cc" "src/CMakeFiles/plan9net.dir/base/strings.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/base/strings.cc.o.d"
  "/root/repo/src/csdns/cs.cc" "src/CMakeFiles/plan9net.dir/csdns/cs.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/csdns/cs.cc.o.d"
  "/root/repo/src/csdns/dns.cc" "src/CMakeFiles/plan9net.dir/csdns/dns.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/csdns/dns.cc.o.d"
  "/root/repo/src/dev/cyclone.cc" "src/CMakeFiles/plan9net.dir/dev/cyclone.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/dev/cyclone.cc.o.d"
  "/root/repo/src/dev/devproto.cc" "src/CMakeFiles/plan9net.dir/dev/devproto.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/dev/devproto.cc.o.d"
  "/root/repo/src/dev/ether.cc" "src/CMakeFiles/plan9net.dir/dev/ether.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/dev/ether.cc.o.d"
  "/root/repo/src/dial/dial.cc" "src/CMakeFiles/plan9net.dir/dial/dial.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/dial/dial.cc.o.d"
  "/root/repo/src/dk/urp.cc" "src/CMakeFiles/plan9net.dir/dk/urp.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/dk/urp.cc.o.d"
  "/root/repo/src/inet/il.cc" "src/CMakeFiles/plan9net.dir/inet/il.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/inet/il.cc.o.d"
  "/root/repo/src/inet/ip.cc" "src/CMakeFiles/plan9net.dir/inet/ip.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/inet/ip.cc.o.d"
  "/root/repo/src/inet/ipaddr.cc" "src/CMakeFiles/plan9net.dir/inet/ipaddr.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/inet/ipaddr.cc.o.d"
  "/root/repo/src/inet/portutil.cc" "src/CMakeFiles/plan9net.dir/inet/portutil.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/inet/portutil.cc.o.d"
  "/root/repo/src/inet/tcp.cc" "src/CMakeFiles/plan9net.dir/inet/tcp.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/inet/tcp.cc.o.d"
  "/root/repo/src/inet/udp.cc" "src/CMakeFiles/plan9net.dir/inet/udp.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/inet/udp.cc.o.d"
  "/root/repo/src/ndb/ndb.cc" "src/CMakeFiles/plan9net.dir/ndb/ndb.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/ndb/ndb.cc.o.d"
  "/root/repo/src/ninep/client.cc" "src/CMakeFiles/plan9net.dir/ninep/client.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/ninep/client.cc.o.d"
  "/root/repo/src/ninep/fcall.cc" "src/CMakeFiles/plan9net.dir/ninep/fcall.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/ninep/fcall.cc.o.d"
  "/root/repo/src/ninep/ramfs.cc" "src/CMakeFiles/plan9net.dir/ninep/ramfs.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/ninep/ramfs.cc.o.d"
  "/root/repo/src/ninep/server.cc" "src/CMakeFiles/plan9net.dir/ninep/server.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/ninep/server.cc.o.d"
  "/root/repo/src/ninep/transport.cc" "src/CMakeFiles/plan9net.dir/ninep/transport.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/ninep/transport.cc.o.d"
  "/root/repo/src/ns/mnt.cc" "src/CMakeFiles/plan9net.dir/ns/mnt.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/ns/mnt.cc.o.d"
  "/root/repo/src/ns/namespace.cc" "src/CMakeFiles/plan9net.dir/ns/namespace.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/ns/namespace.cc.o.d"
  "/root/repo/src/ns/proc.cc" "src/CMakeFiles/plan9net.dir/ns/proc.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/ns/proc.cc.o.d"
  "/root/repo/src/sim/datakit.cc" "src/CMakeFiles/plan9net.dir/sim/datakit.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/sim/datakit.cc.o.d"
  "/root/repo/src/sim/ether_segment.cc" "src/CMakeFiles/plan9net.dir/sim/ether_segment.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/sim/ether_segment.cc.o.d"
  "/root/repo/src/sim/wire.cc" "src/CMakeFiles/plan9net.dir/sim/wire.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/sim/wire.cc.o.d"
  "/root/repo/src/stream/queue.cc" "src/CMakeFiles/plan9net.dir/stream/queue.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/stream/queue.cc.o.d"
  "/root/repo/src/stream/stream.cc" "src/CMakeFiles/plan9net.dir/stream/stream.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/stream/stream.cc.o.d"
  "/root/repo/src/svc/exportfs.cc" "src/CMakeFiles/plan9net.dir/svc/exportfs.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/svc/exportfs.cc.o.d"
  "/root/repo/src/svc/listen.cc" "src/CMakeFiles/plan9net.dir/svc/listen.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/svc/listen.cc.o.d"
  "/root/repo/src/task/kproc.cc" "src/CMakeFiles/plan9net.dir/task/kproc.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/task/kproc.cc.o.d"
  "/root/repo/src/task/timers.cc" "src/CMakeFiles/plan9net.dir/task/timers.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/task/timers.cc.o.d"
  "/root/repo/src/world/boot.cc" "src/CMakeFiles/plan9net.dir/world/boot.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/world/boot.cc.o.d"
  "/root/repo/src/world/node.cc" "src/CMakeFiles/plan9net.dir/world/node.cc.o" "gcc" "src/CMakeFiles/plan9net.dir/world/node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libplan9net.a"
)

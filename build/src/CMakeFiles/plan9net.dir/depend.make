# Empty dependencies file for plan9net.
# This may be replaced when dependencies are built.

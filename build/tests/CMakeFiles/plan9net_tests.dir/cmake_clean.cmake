file(REMOVE_RECURSE
  "CMakeFiles/plan9net_tests.dir/dial_test.cc.o"
  "CMakeFiles/plan9net_tests.dir/dial_test.cc.o.d"
  "CMakeFiles/plan9net_tests.dir/inet_test.cc.o"
  "CMakeFiles/plan9net_tests.dir/inet_test.cc.o.d"
  "CMakeFiles/plan9net_tests.dir/namespace_test.cc.o"
  "CMakeFiles/plan9net_tests.dir/namespace_test.cc.o.d"
  "CMakeFiles/plan9net_tests.dir/ndb_test.cc.o"
  "CMakeFiles/plan9net_tests.dir/ndb_test.cc.o.d"
  "CMakeFiles/plan9net_tests.dir/ninep_test.cc.o"
  "CMakeFiles/plan9net_tests.dir/ninep_test.cc.o.d"
  "CMakeFiles/plan9net_tests.dir/stream_test.cc.o"
  "CMakeFiles/plan9net_tests.dir/stream_test.cc.o.d"
  "CMakeFiles/plan9net_tests.dir/strings_test.cc.o"
  "CMakeFiles/plan9net_tests.dir/strings_test.cc.o.d"
  "CMakeFiles/plan9net_tests.dir/svc_test.cc.o"
  "CMakeFiles/plan9net_tests.dir/svc_test.cc.o.d"
  "CMakeFiles/plan9net_tests.dir/world_test.cc.o"
  "CMakeFiles/plan9net_tests.dir/world_test.cc.o.d"
  "plan9net_tests"
  "plan9net_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan9net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dial_test.cc" "tests/CMakeFiles/plan9net_tests.dir/dial_test.cc.o" "gcc" "tests/CMakeFiles/plan9net_tests.dir/dial_test.cc.o.d"
  "/root/repo/tests/inet_test.cc" "tests/CMakeFiles/plan9net_tests.dir/inet_test.cc.o" "gcc" "tests/CMakeFiles/plan9net_tests.dir/inet_test.cc.o.d"
  "/root/repo/tests/namespace_test.cc" "tests/CMakeFiles/plan9net_tests.dir/namespace_test.cc.o" "gcc" "tests/CMakeFiles/plan9net_tests.dir/namespace_test.cc.o.d"
  "/root/repo/tests/ndb_test.cc" "tests/CMakeFiles/plan9net_tests.dir/ndb_test.cc.o" "gcc" "tests/CMakeFiles/plan9net_tests.dir/ndb_test.cc.o.d"
  "/root/repo/tests/ninep_test.cc" "tests/CMakeFiles/plan9net_tests.dir/ninep_test.cc.o" "gcc" "tests/CMakeFiles/plan9net_tests.dir/ninep_test.cc.o.d"
  "/root/repo/tests/stream_test.cc" "tests/CMakeFiles/plan9net_tests.dir/stream_test.cc.o" "gcc" "tests/CMakeFiles/plan9net_tests.dir/stream_test.cc.o.d"
  "/root/repo/tests/strings_test.cc" "tests/CMakeFiles/plan9net_tests.dir/strings_test.cc.o" "gcc" "tests/CMakeFiles/plan9net_tests.dir/strings_test.cc.o.d"
  "/root/repo/tests/svc_test.cc" "tests/CMakeFiles/plan9net_tests.dir/svc_test.cc.o" "gcc" "tests/CMakeFiles/plan9net_tests.dir/svc_test.cc.o.d"
  "/root/repo/tests/world_test.cc" "tests/CMakeFiles/plan9net_tests.dir/world_test.cc.o" "gcc" "tests/CMakeFiles/plan9net_tests.dir/world_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plan9net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

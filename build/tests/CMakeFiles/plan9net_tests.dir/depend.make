# Empty dependencies file for plan9net_tests.
# This may be replaced when dependencies are built.

#include "src/csdns/dns.h"

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/dial/dial.h"
#include "src/svc/service.h"

namespace plan9 {
namespace {
constexpr auto kCacheTtl = std::chrono::seconds(300);
}  // namespace

DnsResolver::DnsResolver(Proc* proc, std::string upstream, const Ndb* local_db)
    : proc_(proc), upstream_(std::move(upstream)), local_db_(local_db) {
  auto& r = obs::MetricsRegistry::Default();
  cache_hits_.BindParent(&r.CounterNamed("net.dns.cache-hits"));
  upstream_queries_.BindParent(&r.CounterNamed("net.dns.upstream-queries"));
}

Result<std::vector<std::string>> DnsResolver::Resolve(const std::string& domain,
                                                      const std::string& type) {
  std::string key = domain + " " + type;
  {
    QLockGuard guard(lock_);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.expires > std::chrono::steady_clock::now()) {
      cache_hits_.Inc();
      return it->second.values;
    }
  }
  if (!upstream_.empty()) {
    auto answer = AskUpstream(domain, type);
    if (answer.ok() && !answer->empty()) {
      QLockGuard guard(lock_);
      cache_[key] = CacheLine{*answer, std::chrono::steady_clock::now() + kCacheTtl};
      return answer;
    }
  }
  // "If no DNS is reachable, CS relies on its own tables."
  if (local_db_ != nullptr) {
    std::vector<std::string> values;
    for (const auto* e : local_db_->Search("dom", domain)) {
      for (auto& ip : e->FindAll(type == "ip" ? "ip" : std::string(type))) {
        values.push_back(ip);
      }
    }
    if (!values.empty()) {
      return values;
    }
  }
  return Error(StrFormat("dns: no entry for %s", domain.c_str()));
}

Result<std::vector<std::string>> DnsResolver::AskUpstream(const std::string& domain,
                                                          const std::string& type) {
  upstream_queries_.Inc();
  P9_ASSIGN_OR_RETURN(int fd, Dial(proc_, upstream_));
  std::string query = domain + " " + type;
  Status sent = proc_->WriteString(fd, query);
  if (!sent.ok()) {
    (void)proc_->Close(fd);
    return Error(sent.error());
  }
  auto reply = proc_->ReadString(fd);
  (void)proc_->Close(fd);
  if (!reply.ok()) {
    return reply.error();
  }
  if (HasPrefix(*reply, "!")) {
    return Error(reply->substr(1));
  }
  std::vector<std::string> values;
  for (auto& line : GetFields(*reply, "\n")) {
    auto fields = Tokenize(line);
    if (fields.size() >= 3 && fields[0] == domain && fields[1] == type) {
      values.push_back(fields[2]);
    }
  }
  return values;
}

namespace {

// The /net/dns file.  Write a query, then read record lines one per read;
// a read at offset 0 (re)starts the enumeration.
class DnsFileVnode : public Vnode {
 public:
  explicit DnsFileVnode(DnsResolver* resolver) : resolver_(resolver) {}

  Qid qid() override { return Qid{0x0d2f, 0}; }

  Result<Dir> Stat() override {
    Dir d;
    d.name = "dns";
    d.qid = qid();
    d.mode = 0666;
    d.type = 'x';
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    return Error(kErrNotDir);
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    QLockGuard guard(lock_);
    if (offset == 0) {
      next_ = 0;
    }
    if (!error_.empty()) {
      return Error(error_);
    }
    if (next_ >= lines_.size()) {
      return Bytes{};
    }
    return ToBytes(lines_[next_++]);
  }

  Result<uint32_t> Write(uint64_t offset, const Bytes& data) override {
    auto fields = Tokenize(ToString(data));
    if (fields.empty()) {
      return Error("dns: empty query");
    }
    std::string domain = fields[0];
    std::string type = fields.size() >= 2 ? fields[1] : "ip";
    auto values = resolver_->Resolve(domain, type);
    QLockGuard guard(lock_);
    lines_.clear();
    next_ = 0;
    error_.clear();
    if (!values.ok()) {
      error_ = values.error().message();
      return Error(error_);
    }
    for (auto& v : *values) {
      lines_.push_back(domain + " " + type + " " + v);
    }
    return static_cast<uint32_t>(data.size());
  }

 private:
  DnsResolver* resolver_;
  QLock lock_{"dns.file"};
  std::vector<std::string> lines_ GUARDED_BY(lock_);
  size_t next_ GUARDED_BY(lock_) = 0;
  std::string error_ GUARDED_BY(lock_);
};

class DnsRootVnode : public Vnode, public std::enable_shared_from_this<DnsRootVnode> {
 public:
  explicit DnsRootVnode(DnsResolver* resolver) : resolver_(resolver) {}

  Qid qid() override { return Qid{0x0d00 | kQidDirBit, 0}; }

  Result<Dir> Stat() override {
    Dir d;
    d.name = "dns";
    d.qid = qid();
    d.mode = kDmDir | 0555;
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    if (name == "." || name == "..") {
      return std::shared_ptr<Vnode>(shared_from_this());
    }
    if (name == "dns") {
      return std::shared_ptr<Vnode>(std::make_shared<DnsFileVnode>(resolver_));
    }
    return Error(kErrNotExist);
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    std::vector<Dir> entries(1);
    entries[0].name = "dns";
    entries[0].qid = Qid{0x0d2f, 0};
    entries[0].mode = 0666;
    return PackDirEntries(entries, offset, count);
  }

 private:
  DnsResolver* resolver_;
};

}  // namespace

Result<std::shared_ptr<Vnode>> DnsVfs::Attach(const std::string& uname,
                                              const std::string& aname) {
  return std::shared_ptr<Vnode>(std::make_shared<DnsRootVnode>(resolver_.get()));
}

Result<std::unique_ptr<Service>> StartDnsServer(std::shared_ptr<Proc> proc,
                                                const Ndb* db) {
  std::string adir;
  auto afd = Announce(proc.get(), "udp!*!53", &adir);
  if (!afd.ok()) {
    return afd.error();
  }
  auto svc = std::make_unique<Service>("dns.server");
  // Closing the announcement unblocks the listen loop.
  svc->OnStop([proc, afd = *afd] { (void)proc->Close(afd); });
  svc->Spawn([proc, db, adir] {
    for (;;) {
      std::string ldir;
      auto lcfd = Listen(proc.get(), adir, &ldir);
      if (!lcfd.ok()) {
        return;  // announcement closed: shutting down
      }
      auto dfd = Accept(proc.get(), *lcfd, ldir);
      if (!dfd.ok()) {
        (void)proc->Close(*lcfd);
        continue;
      }
      auto query = proc->ReadString(*dfd);
      std::string reply = "!dns: bad query";
      if (query.ok()) {
        auto fields = Tokenize(*query);
        if (!fields.empty()) {
          std::string type = fields.size() >= 2 ? fields[1] : "ip";
          std::string want = type == "ip" ? "ip" : type;
          std::vector<std::string> lines;
          for (const auto* e : db->Search("dom", fields[0])) {
            for (auto& v : e->FindAll(want)) {
              lines.push_back(fields[0] + " " + type + " " + v);
            }
          }
          reply = lines.empty() ? "!dns: no such domain" : Join(lines, "\n");
        }
      }
      (void)proc->WriteString(*dfd, reply);
      (void)proc->Close(*dfd);
      (void)proc->Close(*lcfd);
    }
  });
  return svc;
}

}  // namespace plan9

#include "src/csdns/cs.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/obs/span.h"
#include "src/task/qlock.h"

namespace plan9 {

Result<std::vector<std::string>> CsTranslator::Query(const std::string& query) const {
  // Visible in a dial trace as the name-translation hop under dial.cs.
  obs::ScopedSpan span("cs.translate", config_.sysname);
  auto q = std::string(TrimSpace(query));
  if (HasPrefix(q, "announce ")) {
    return TranslateAnnounce(q.substr(9));
  }
  return Translate(q);
}

std::vector<std::string> CsTranslator::ExpandHost(const std::string& host) const {
  if (!host.empty() && host[0] == '$') {
    // "A host name of the form $attr is the name of an attribute in the
    // network database.  The database search returns the value of the
    // matching attribute/value pair most closely associated with the source
    // host."
    return config_.db->IpInfo(config_.self_ip, host.substr(1));
  }
  return {host};
}

std::vector<std::string> CsTranslator::IpAddrsFor(const std::string& host) const {
  // Already numeric?
  if (IpFromString(host).ok()) {
    return {host};
  }
  std::vector<std::string> out;
  auto add_entry_ips = [&](const NdbEntry* e) {
    for (auto& ip : e->FindAll("ip")) {
      if (std::find(out.begin(), out.end(), ip) == out.end()) {
        out.push_back(ip);
      }
    }
  };
  for (const auto* e : config_.db->Search("sys", host)) {
    add_entry_ips(e);
  }
  for (const auto* e : config_.db->Search("dom", host)) {
    add_entry_ips(e);
  }
  if (out.empty() && config_.dns != nullptr &&
      host.find('.') != std::string::npos) {
    // "For domain names however, CS first consults ... (DNS)."
    auto resolved = config_.dns->Resolve(host);
    if (resolved.ok()) {
      out = *resolved;
    }
  }
  return out;
}

std::vector<std::string> CsTranslator::DkAddrsFor(const std::string& host) const {
  // A literal circuit path is already an address.
  if (host.find('/') != std::string::npos) {
    return {host};
  }
  std::vector<std::string> out;
  for (const auto* e : config_.db->Search("sys", host)) {
    for (auto& dk : e->FindAll("dk")) {
      out.push_back(dk);
    }
  }
  for (const auto* e : config_.db->Search("dom", host)) {
    for (auto& dk : e->FindAll("dk")) {
      if (std::find(out.begin(), out.end(), dk) == out.end()) {
        out.push_back(dk);
      }
    }
  }
  return out;
}

Result<std::vector<std::string>> CsTranslator::Translate(const std::string& dest) const {
  auto parts = GetFields(dest, "!", /*collapse=*/false);
  if (parts.size() < 2) {
    return Error(kErrBadAddr);
  }
  const std::string& net = parts[0];
  const std::string& host = parts[1];
  std::string service = parts.size() >= 3 ? parts[2] : "";

  std::vector<std::string> lines;
  for (const auto& n : config_.nets) {
    // "The special network name net selects any network in common between
    // source and destination supporting the specified service."
    if (net != "net" && net != n.proto) {
      continue;
    }
    for (const auto& hostval : ExpandHost(host)) {
      if (n.is_ip) {
        if (service.empty()) {
          continue;  // IP networks need a port
        }
        auto port = config_.db->ServicePort(n.proto, service);
        if (!port.has_value()) {
          continue;  // this network does not support the service
        }
        for (const auto& ip : IpAddrsFor(hostval)) {
          std::string line = StrFormat("/net/%s/clone %s!%u", n.proto.c_str(),
                                       ip.c_str(), *port);
          if (std::find(lines.begin(), lines.end(), line) == lines.end()) {
            lines.push_back(line);
          }
        }
      } else {
        for (const auto& dk : DkAddrsFor(hostval)) {
          std::string line = service.empty()
                                 ? StrFormat("/net/dk/clone %s", dk.c_str())
                                 : StrFormat("/net/dk/clone %s!%s", dk.c_str(),
                                             service.c_str());
          if (std::find(lines.begin(), lines.end(), line) == lines.end()) {
            lines.push_back(line);
          }
        }
      }
    }
  }
  if (lines.empty()) {
    return Error(StrFormat("cs: cannot translate %s", dest.c_str()));
  }
  return lines;
}

Result<std::vector<std::string>> CsTranslator::TranslateAnnounce(
    const std::string& addr) const {
  auto parts = GetFields(addr, "!", /*collapse=*/false);
  if (parts.size() < 2) {
    return Error(kErrBadAddr);
  }
  const std::string& net = parts[0];
  std::string service = parts.size() >= 3 ? parts[2] : parts[1];

  std::vector<std::string> lines;
  for (const auto& n : config_.nets) {
    if (net != "net" && net != n.proto) {
      continue;
    }
    if (n.is_ip) {
      auto port = config_.db->ServicePort(n.proto, service);
      if (!port.has_value()) {
        continue;
      }
      lines.push_back(StrFormat("/net/%s/clone *!%u", n.proto.c_str(), *port));
    } else {
      lines.push_back(StrFormat("/net/dk/clone %s", service.c_str()));
    }
  }
  if (lines.empty()) {
    return Error(kErrUnknownService);
  }
  return lines;
}

namespace {

// The /net/cs file: write a query; each read returns one translation line;
// a read at offset 0 restarts.
class CsFileVnode : public Vnode {
 public:
  explicit CsFileVnode(std::shared_ptr<CsTranslator> translator)
      : translator_(std::move(translator)) {}

  Qid qid() override { return Qid{0xc5, 0}; }

  Result<Dir> Stat() override {
    Dir d;
    d.name = "cs";
    d.qid = qid();
    d.mode = 0666;
    d.type = 'x';
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    return Error(kErrNotDir);
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    QLockGuard guard(lock_);
    if (offset == 0) {
      next_ = 0;
    }
    if (!error_.empty()) {
      return Error(error_);
    }
    if (next_ >= lines_.size()) {
      return Bytes{};
    }
    return ToBytes(lines_[next_++]);
  }

  Result<uint32_t> Write(uint64_t offset, const Bytes& data) override {
    auto result = translator_->Query(ToString(data));
    QLockGuard guard(lock_);
    next_ = 0;
    lines_.clear();
    error_.clear();
    if (!result.ok()) {
      error_ = result.error().message();
      return Error(error_);
    }
    lines_ = result.take();
    return static_cast<uint32_t>(data.size());
  }

 private:
  std::shared_ptr<CsTranslator> translator_;
  QLock lock_{"cs.file"};
  std::vector<std::string> lines_ GUARDED_BY(lock_);
  size_t next_ GUARDED_BY(lock_) = 0;
  std::string error_ GUARDED_BY(lock_);
};

class CsRootVnode : public Vnode, public std::enable_shared_from_this<CsRootVnode> {
 public:
  explicit CsRootVnode(std::shared_ptr<CsTranslator> translator)
      : translator_(std::move(translator)) {}

  Qid qid() override { return Qid{0xc0 | kQidDirBit, 0}; }

  Result<Dir> Stat() override {
    Dir d;
    d.name = "cs";
    d.qid = qid();
    d.mode = kDmDir | 0555;
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    if (name == "." || name == "..") {
      return std::shared_ptr<Vnode>(shared_from_this());
    }
    if (name == "cs") {
      return std::shared_ptr<Vnode>(std::make_shared<CsFileVnode>(translator_));
    }
    return Error(kErrNotExist);
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    std::vector<Dir> entries(1);
    entries[0].name = "cs";
    entries[0].qid = Qid{0xc5, 0};
    entries[0].mode = 0666;
    return PackDirEntries(entries, offset, count);
  }

 private:
  std::shared_ptr<CsTranslator> translator_;
};

}  // namespace

Result<std::shared_ptr<Vnode>> CsVfs::Attach(const std::string& uname,
                                             const std::string& aname) {
  return std::shared_ptr<Vnode>(std::make_shared<CsRootVnode>(translator_));
}

}  // namespace plan9

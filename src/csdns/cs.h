// CS — the connection server (§4.2).
//
// "On each system a user level connection server process, CS, translates
// symbolic names to addresses.  CS uses information about available
// networks, the network database, and other servers (such as DNS) to
// translate names.  CS is a file server serving a single file, /net/cs.
// A client writes a symbolic name to /net/cs then reads one line for each
// matching destination reachable from this system.  The lines are of the
// form `filename message`."
//
// Meta-names (§4.2):
//   * network "net" selects every network in common between source and
//     destination supporting the service;
//   * host "$attr" searches the database for attr starting at the source
//     system's entry, then its subnetwork, then its network.
#ifndef SRC_CSDNS_CS_H_
#define SRC_CSDNS_CS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/csdns/dns.h"
#include "src/inet/ipaddr.h"
#include "src/ndb/ndb.h"
#include "src/ninep/server.h"

namespace plan9 {

struct CsConfig {
  std::string sysname;
  Ipv4Addr self_ip;     // source host for $attr walks
  std::string dk_name;  // this host's Datakit address ("" = none)
  // Networks this machine can reach, in preference order.  The paper's
  // machines prefer IL ("IL is our protocol of choice"), then Datakit,
  // then TCP.
  struct Net {
    std::string proto;  // "il", "tcp", "udp", "dk"
    bool is_ip;
  };
  std::vector<Net> nets;
  const Ndb* db = nullptr;
  // Optional resolver for unknown domain names ("For domain names however,
  // CS first consults... DNS").
  std::shared_ptr<DnsResolver> dns;
};

// Pure translation engine (separately testable from the file plumbing).
class CsTranslator {
 public:
  explicit CsTranslator(CsConfig config) : config_(std::move(config)) {}

  // One query ("net!helix!9fs" or "announce tcp!*!echo") -> result lines.
  Result<std::vector<std::string>> Query(const std::string& query) const;

  const CsConfig& config() const { return config_; }

 private:
  Result<std::vector<std::string>> Translate(const std::string& dest) const;
  Result<std::vector<std::string>> TranslateAnnounce(const std::string& addr) const;
  // Resolve `host` to addresses usable on an IP network.
  std::vector<std::string> IpAddrsFor(const std::string& host) const;
  // Resolve `host` to a Datakit address, if it has one.
  std::vector<std::string> DkAddrsFor(const std::string& host) const;
  // Expand "$attr" via the source-host walk; otherwise {host}.
  std::vector<std::string> ExpandHost(const std::string& host) const;

  CsConfig config_;
};

// /net/cs as a one-file tree to union-mount onto /net.
class CsVfs : public Vfs {
 public:
  explicit CsVfs(CsConfig config)
      : translator_(std::make_shared<CsTranslator>(std::move(config))) {}

  Result<std::shared_ptr<Vnode>> Attach(const std::string& uname,
                                        const std::string& aname) override;

  const CsTranslator* translator() const { return translator_.get(); }

 private:
  std::shared_ptr<CsTranslator> translator_;
};

}  // namespace plan9

#endif  // SRC_CSDNS_CS_H_

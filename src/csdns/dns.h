// DNS — the domain name server (§4.2).
//
// "Like CS, the domain name server is a user level process providing one
// file, /net/dns.  A client writes a request of the form domain-name type
// ... The client reads /net/dns to retrieve the records.  Like other domain
// name servers, DNS caches information learned from the network."
//
// The resolver asks an upstream DNS service (a user-level process on
// another node answering from *its* ndb over UDP — our stand-in for "a
// recursive query through the Internet domain name system"), caches
// answers, and falls back to the local ndb when no server is reachable
// ("If no DNS is reachable, CS relies on its own tables").
#ifndef SRC_CSDNS_DNS_H_
#define SRC_CSDNS_DNS_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/ndb/ndb.h"
#include "src/obs/metrics.h"
#include "src/ninep/server.h"
#include "src/ns/proc.h"
#include "src/task/kproc.h"
#include "src/task/qlock.h"

namespace plan9 {

class DnsResolver {
 public:
  // `proc` is the user-level process context used to dial the upstream
  // server; `upstream` is a dial string ("udp!135.104.9.6!53"), empty for
  // none; `local_db` is the fallback (not owned, may be null).
  DnsResolver(Proc* proc, std::string upstream, const Ndb* local_db);

  // Resolve domain -> dotted-quad strings.  type is "ip" for now (the only
  // record type the 1993 paper exercises by name).
  Result<std::vector<std::string>> Resolve(const std::string& domain,
                                           const std::string& type = "ip");

  uint64_t cache_hits() const { return cache_hits_.value(); }
  uint64_t upstream_queries() const { return upstream_queries_.value(); }

 private:
  struct CacheLine {
    std::vector<std::string> values;
    std::chrono::steady_clock::time_point expires;
  };

  Result<std::vector<std::string>> AskUpstream(const std::string& domain,
                                               const std::string& type);

  Proc* proc_;
  std::string upstream_;
  const Ndb* local_db_;
  QLock lock_{"dns.cache"};
  std::map<std::string, CacheLine> cache_ GUARDED_BY(lock_);
  // Atomic: bumped on the resolve path, read by unlocked stats accessors.
  // Registry-backed (net.dns.* aggregates in /net/stats).
  obs::Counter cache_hits_;
  obs::Counter upstream_queries_;
};

// The /net/dns file server: a one-file tree to union-mount onto /net.
class DnsVfs : public Vfs {
 public:
  explicit DnsVfs(std::shared_ptr<DnsResolver> resolver)
      : resolver_(std::move(resolver)) {}

  Result<std::shared_ptr<Vnode>> Attach(const std::string& uname,
                                        const std::string& aname) override;

  DnsResolver* resolver() { return resolver_.get(); }

 private:
  std::shared_ptr<DnsResolver> resolver_;
};

// Run an authoritative DNS service answering from `db` on udp!*!53 within
// `proc`'s name space.  Protocol (ASCII, one datagram each way):
//   request:  "domain type"
//   response: "domain type value" per record, or "!dns: no such domain".
class Service;
Result<std::unique_ptr<Service>> StartDnsServer(std::shared_ptr<Proc> proc,
                                                const Ndb* db);

}  // namespace plan9

#endif  // SRC_CSDNS_DNS_H_

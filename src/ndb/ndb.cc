#include "src/ndb/ndb.h"

#include <algorithm>

#include "src/base/rand.h"
#include "src/base/strings.h"

namespace plan9 {

std::optional<std::string> NdbEntry::Find(std::string_view attr) const {
  for (const auto& t : tuples) {
    if (t.attr == attr) {
      return t.val;
    }
  }
  return std::nullopt;
}

std::vector<std::string> NdbEntry::FindAll(std::string_view attr) const {
  std::vector<std::string> out;
  for (const auto& t : tuples) {
    if (t.attr == attr) {
      out.push_back(t.val);
    }
  }
  return out;
}

bool NdbEntry::Has(std::string_view attr, std::string_view val) const {
  for (const auto& t : tuples) {
    if (t.attr == attr && t.val == val) {
      return true;
    }
  }
  return false;
}

namespace {

// Parse one line's attr=value pairs into the entry.  Tolerates typographic
// spacing around '=' ("sys = helix", as printed in the paper).
void ParseLine(std::string_view line, NdbEntry* entry) {
  auto words = Tokenize(line);
  for (size_t i = 0; i < words.size(); i++) {
    const std::string& word = words[i];
    if (word.empty() || word[0] == '#') {
      break;
    }
    if (word == "=" && !entry->tuples.empty() && i + 1 < words.size()) {
      // "attr = value": attach the value to the preceding bare attribute.
      entry->tuples.back().val = words[++i];
      continue;
    }
    std::string attr = word;
    std::string val;
    auto eq = word.find('=');
    if (eq != std::string::npos) {
      attr = word.substr(0, eq);
      val = word.substr(eq + 1);
      if (val.empty() && i + 1 < words.size()) {
        val = words[++i];  // "attr= value"
      }
    } else if (i + 1 < words.size() && words[i + 1][0] == '=' &&
               words[i + 1].size() > 1) {
      val = words[++i].substr(1);  // "attr =value"
    }
    entry->tuples.push_back(NdbTuple{std::move(attr), std::move(val)});
  }
}

}  // namespace

Status Ndb::Load(const std::string& text) {
  NdbEntry current;
  bool in_entry = false;
  for (const auto& line : GetFields(text, "\n", /*collapse=*/false)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    bool indented = line[0] == ' ' || line[0] == '\t';
    if (!indented) {
      // "a header line at the left margin begins each entry"
      if (in_entry && !current.tuples.empty()) {
        entries_.push_back(std::move(current));
        current = NdbEntry{};
      }
      in_entry = true;
    } else if (!in_entry) {
      return Error("ndb: continuation line before any entry");
    }
    ParseLine(line, &current);
  }
  if (in_entry && !current.tuples.empty()) {
    entries_.push_back(std::move(current));
  }
  InvalidateIndexes();  // master changed; hash files are now out-of-date
  return Status::Ok();
}

std::vector<const NdbEntry*> Ndb::Search(std::string_view attr,
                                         std::string_view val) const {
  std::vector<const NdbEntry*> out;
  auto idx = indexes_.find(attr);
  if (idx != indexes_.end() && idx->second.fresh) {
    indexed_lookups++;
    auto [lo, hi] = idx->second.map.equal_range(std::string(val));
    for (auto it = lo; it != hi; ++it) {
      out.push_back(&entries_[it->second]);
    }
    return out;
  }
  // "Searches for attributes that aren't hashed or whose hash table is
  // out-of-date still work, they just take longer."
  linear_lookups++;
  for (const auto& e : entries_) {
    if (e.Has(attr, val)) {
      out.push_back(&e);
    }
  }
  return out;
}

std::optional<std::string> Ndb::LookValue(std::string_view attr, std::string_view val,
                                          std::string_view rattr) const {
  for (const auto* e : Search(attr, val)) {
    auto v = e->Find(rattr);
    if (v.has_value()) {
      return v;
    }
  }
  return std::nullopt;
}

std::vector<std::string> Ndb::IpInfo(Ipv4Addr ip, std::string_view rattr) const {
  std::vector<std::string> out;
  auto add_all = [&](const NdbEntry& e) {
    for (auto& v : e.FindAll(rattr)) {
      if (std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    }
  };

  // 1. The source system's own entry.
  for (const auto* e : Search("ip", IpToString(ip))) {
    add_all(*e);
  }
  if (!out.empty()) {
    return out;
  }

  // 2. "then its subnetwork (if there is one) and then its network."
  //
  // The classful network entry (ip == host & classmask) declares, via its
  // ipmask attribute, how the network is subnetted (§4.1: the class B entry
  // carries ipmask=255.255.255.0).  The subnet entry is the ipnet whose ip
  // equals host & that mask.
  auto find_ipnets = [&](Ipv4Addr addr) {
    std::vector<const NdbEntry*> hits;
    for (const auto& e : entries_) {
      if (e.Find("ipnet").has_value() && e.Has("ip", IpToString(addr))) {
        hits.push_back(&e);
      }
    }
    return hits;
  };

  Ipv4Addr class_net{ip.v & ClassMask(ip).v};
  auto networks = find_ipnets(class_net);

  // Subnet mask: declared on the network entry, default /24 inside a
  // class A/B net (the paper's networks are built that way).
  Ipv4Addr subnet_mask{0};
  for (const auto* net : networks) {
    auto mask_s = net->Find("ipmask");
    if (mask_s.has_value()) {
      auto m = IpFromString(*mask_s);
      if (m.ok()) {
        subnet_mask = *m;
      }
    }
  }
  if (subnet_mask.IsUnspecified() && ClassMask(ip).v != 0xffffff00u) {
    subnet_mask = Ipv4Addr{0xffffff00u};
  }

  if (!subnet_mask.IsUnspecified()) {
    Ipv4Addr subnet{ip.v & subnet_mask.v};
    if (!(subnet == class_net)) {
      for (const auto* e : find_ipnets(subnet)) {
        add_all(*e);
      }
      if (!out.empty()) {
        return out;  // most closely associated level wins
      }
    }
  }
  for (const auto* e : networks) {
    add_all(*e);
  }
  return out;
}

std::optional<uint16_t> Ndb::ServicePort(std::string_view proto,
                                         std::string_view service) const {
  // Numeric services pass straight through.
  if (auto n = ParseU64(service); n.has_value() && *n > 0 && *n <= 65535) {
    return static_cast<uint16_t>(*n);
  }
  auto port = LookValue(proto, service, "port");
  if (!port.has_value()) {
    return std::nullopt;
  }
  auto n = ParseU64(*port);
  if (!n.has_value() || *n == 0 || *n > 65535) {
    return std::nullopt;
  }
  return static_cast<uint16_t>(*n);
}

void Ndb::BuildIndex(const std::string& attr) {
  Index idx;
  for (size_t i = 0; i < entries_.size(); i++) {
    for (const auto& t : entries_[i].tuples) {
      if (t.attr == attr) {
        idx.map.emplace(t.val, i);
      }
    }
  }
  idx.fresh = true;
  indexes_[attr] = std::move(idx);
}

bool Ndb::HasFreshIndex(std::string_view attr) const {
  auto it = indexes_.find(attr);
  return it != indexes_.end() && it->second.fresh;
}

void Ndb::InvalidateIndexes() {
  for (auto& [attr, idx] : indexes_) {
    idx.fresh = false;
  }
}

void Ndb::RebuildIndexes() {
  std::vector<std::string> attrs;
  for (auto& [attr, idx] : indexes_) {
    attrs.push_back(attr);
  }
  for (auto& attr : attrs) {
    BuildIndex(attr);
  }
}

std::string SynthesizeGlobalNdb(size_t lines, uint64_t seed) {
  Rng rng(seed);
  std::string out;
  out.reserve(lines * 48);
  size_t line_count = 0;
  size_t sys = 0;
  while (line_count < lines) {
    uint32_t a = static_cast<uint32_t>(10 + rng.Below(120));
    uint32_t b = static_cast<uint32_t>(rng.Below(256));
    uint32_t c = static_cast<uint32_t>(rng.Below(256));
    uint32_t d = static_cast<uint32_t>(1 + rng.Below(250));
    out += StrFormat("sys=synth%zu\n", sys);
    out += StrFormat("\tdom=synth%zu.research.example.com\n", sys);
    out += StrFormat("\tip=%u.%u.%u.%u ether=%012llx\n", a, b, c, d,
                     static_cast<unsigned long long>(rng.Next() & 0xffffffffffffULL));
    if (rng.Chance(0.3)) {
      out += StrFormat("\tdk=nj/astro/synth%zu\n", sys);
      line_count++;
    }
    if (rng.Chance(0.2)) {
      out += StrFormat("\tbootf=/mips/9power proto=il\n");
      line_count++;
    }
    line_count += 3;
    sys++;
  }
  return out;
}

}  // namespace plan9

// ndb — the network database (§4.1).
//
// "One database on a shared server contains all the information needed for
// network administration.  Two ASCII files comprise the main database:
// /lib/ndb/local ... and /lib/ndb/global ...  The files contain sets of
// attribute/value pairs of the form attr=value...  Systems are described by
// multi-line entries; a header line at the left margin begins each entry
// followed by zero or more indented attribute/value pairs."
//
// "To speed searches, we build hash table files for each attribute we expect
// to search often...  Every hash file contains the modification time of its
// master file so we can avoid using an out-of-date hash table.  Searches for
// attributes that aren't hashed or whose hash table is out-of-date still
// work, they just take longer."  BuildIndex/InvalidateIndexes model exactly
// that (bench_ndb measures the difference).
#ifndef SRC_NDB_NDB_H_
#define SRC_NDB_NDB_H_

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/inet/ipaddr.h"

namespace plan9 {

struct NdbTuple {
  std::string attr;
  std::string val;
};

struct NdbEntry {
  std::vector<NdbTuple> tuples;

  // First value for attr, if any.
  std::optional<std::string> Find(std::string_view attr) const;
  // All values for attr.
  std::vector<std::string> FindAll(std::string_view attr) const;
  bool Has(std::string_view attr, std::string_view val) const;
};

class Ndb {
 public:
  // Parse database text (comments '#', indented continuation lines).
  // Multiple calls append (local + global files, §4.1).
  Status Load(const std::string& text);

  size_t entry_count() const { return entries_.size(); }
  const std::vector<NdbEntry>& entries() const { return entries_; }

  // All entries containing attr=val.  Uses the hash index when fresh,
  // otherwise scans ("they just take longer").
  std::vector<const NdbEntry*> Search(std::string_view attr, std::string_view val) const;

  // First value of rattr in the first entry with attr=val.
  std::optional<std::string> LookValue(std::string_view attr, std::string_view val,
                                       std::string_view rattr) const;

  // §4.2 "$attr" meta-name resolution: "the database search returns the
  // value of the matching attribute/value pair most closely associated with
  // the source host": the host's own entry, then its subnetwork(s), then
  // its network.  `ip` is the source host's address.
  std::vector<std::string> IpInfo(Ipv4Addr ip, std::string_view rattr) const;

  // Service name -> port for a protocol ("tcp", "il", "udp"): the paper's
  //   tcp=echo port=7
  // entries.
  std::optional<uint16_t> ServicePort(std::string_view proto,
                                      std::string_view service) const;

  // --- hash indexes --------------------------------------------------------

  // Build the hash table for one attribute.
  void BuildIndex(const std::string& attr);
  bool HasFreshIndex(std::string_view attr) const;
  // Mark every index out-of-date (as if the master file changed under
  // them); searches fall back to linear scans until Rebuild.
  void InvalidateIndexes();
  void RebuildIndexes();

  // Lookup counters (benchmarks / tests).
  mutable uint64_t indexed_lookups = 0;
  mutable uint64_t linear_lookups = 0;

 private:
  struct Index {
    std::unordered_multimap<std::string, size_t> map;  // val -> entry index
    bool fresh = false;
  };

  std::vector<NdbEntry> entries_;
  std::map<std::string, Index, std::less<>> indexes_;
};

// Generate a synthetic "global" database of roughly `lines` lines (the
// paper's AT&T-wide file had 43,000) for index benchmarks.  Deterministic.
std::string SynthesizeGlobalNdb(size_t lines, uint64_t seed = 1);

}  // namespace plan9

#endif  // SRC_NDB_NDB_H_

#include "src/ns/mnt.h"

namespace plan9 {

Result<std::shared_ptr<Vnode>> MntAttach(std::shared_ptr<NinepClient> client,
                                         const std::string& uname,
                                         const std::string& aname) {
  P9_RETURN_IF_ERROR(client->Session());
  uint32_t fid = client->AllocFid();
  auto qid = client->Attach(fid, uname, aname);
  if (!qid.ok()) {
    return qid.error();
  }
  return std::shared_ptr<Vnode>(std::make_shared<MntVnode>(std::move(client), fid, *qid));
}

MntVnode::~MntVnode() {
  if (!removed_ && client_->ok()) {
    (void)client_->Clunk(fid_);
  }
}

Result<Dir> MntVnode::Stat() { return client_->Stat(fid_); }

Result<std::shared_ptr<Vnode>> MntVnode::Walk(const std::string& name) {
  uint32_t newfid = client_->AllocFid();
  auto qid = client_->CloneWalk(fid_, newfid, {name});
  if (!qid.ok()) {
    return qid.error();
  }
  return std::shared_ptr<Vnode>(std::make_shared<MntVnode>(client_, newfid, *qid));
}

Status MntVnode::Open(uint8_t mode, const std::string& user) {
  auto qid = client_->Open(fid_, mode);
  if (!qid.ok()) {
    return qid.error();
  }
  qid_ = *qid;  // listen-style opens can morph the file's identity
  return Status::Ok();
}

Result<std::shared_ptr<Vnode>> MntVnode::Create(const std::string& name, uint32_t perm,
                                                uint8_t mode, const std::string& user) {
  // Create operates on a clone so this vnode keeps naming the directory.
  uint32_t newfid = client_->AllocFid();
  auto cloned = client_->CloneWalk(fid_, newfid, {});
  if (!cloned.ok()) {
    return cloned.error();
  }
  auto qid = client_->Create(newfid, name, perm, mode);
  if (!qid.ok()) {
    (void)client_->Clunk(newfid);
    return qid.error();
  }
  return std::shared_ptr<Vnode>(std::make_shared<MntVnode>(client_, newfid, *qid));
}

Result<Bytes> MntVnode::Read(uint64_t offset, uint32_t count) {
  return client_->Read(fid_, offset, count);
}

Result<uint32_t> MntVnode::Write(uint64_t offset, const Bytes& data) {
  // The RPC layer caps a single write at kMaxData; chunk larger ones.
  uint32_t written = 0;
  while (written < data.size()) {
    size_t chunk = std::min<size_t>(kMaxData, data.size() - written);
    Bytes part(data.begin() + written, data.begin() + written + static_cast<long>(chunk));
    auto n = client_->Write(fid_, offset + written, part);
    if (!n.ok()) {
      if (written > 0) {
        return written;
      }
      return n.error();
    }
    written += *n;
    if (*n < chunk) {
      break;
    }
  }
  return written;
}

Status MntVnode::Remove() {
  removed_ = true;  // Tremove clunks the fid even on failure
  return client_->Remove(fid_);
}

Status MntVnode::Wstat(const Dir& d) { return client_->Wstat(fid_, d); }

}  // namespace plan9

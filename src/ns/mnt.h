// The mount driver (§2.1).
//
// "A kernel resident file server called the mount driver converts the
// procedural version of 9P into RPCs."  MntVnode implements the Vnode
// interface by issuing 9P messages through a NinepClient; mounting one into
// a Namespace makes a remote tree indistinguishable from a local one.
#ifndef SRC_NS_MNT_H_
#define SRC_NS_MNT_H_

#include <memory>
#include <string>

#include "src/ninep/client.h"
#include "src/ninep/server.h"

namespace plan9 {

// Attach to the remote server: session + attach; returns the root vnode.
Result<std::shared_ptr<Vnode>> MntAttach(std::shared_ptr<NinepClient> client,
                                         const std::string& uname,
                                         const std::string& aname);

class MntVnode : public Vnode {
 public:
  MntVnode(std::shared_ptr<NinepClient> client, uint32_t fid, Qid qid)
      : client_(std::move(client)), fid_(fid), qid_(qid) {}
  ~MntVnode() override;

  Qid qid() override { return qid_; }
  Result<Dir> Stat() override;
  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override;
  Status Open(uint8_t mode, const std::string& user) override;
  Result<std::shared_ptr<Vnode>> Create(const std::string& name, uint32_t perm,
                                        uint8_t mode, const std::string& user) override;
  Result<Bytes> Read(uint64_t offset, uint32_t count) override;
  Result<uint32_t> Write(uint64_t offset, const Bytes& data) override;
  Status Remove() override;
  Status Wstat(const Dir& d) override;

 private:
  std::shared_ptr<NinepClient> client_;
  uint32_t fid_;
  Qid qid_;
  bool removed_ = false;
};

}  // namespace plan9

#endif  // SRC_NS_MNT_H_

// Per-process name spaces (§2.1, §6).
//
// "Each process assembles a view of the system by building a name space
// connecting its resources."  A Namespace is a root plus a mount table;
// bind and mount splice trees (local Vfs instances or remote servers via
// the mount driver) onto names, with union-directory semantics:
//
//   "The import command mounts the remote /net directory after (the -a
//    option) the existing contents of the local /net directory.  The
//    directory contains the union of the local and remote contents of
//    /net.  Local entries supersede remote ones of the same name."
#ifndef SRC_NS_NAMESPACE_H_
#define SRC_NS_NAMESPACE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/ninep/client.h"
#include "src/ninep/ramfs.h"
#include "src/ns/chan.h"
#include "src/task/qlock.h"

namespace plan9 {

// Mount/bind flags, as in Plan 9's bind(2).
inline constexpr int kMRepl = 0;    // replace the mounted-on directory
inline constexpr int kMBefore = 1;  // union, new tree searched first
inline constexpr int kMAfter = 2;   // union, new tree searched last
inline constexpr int kMCreate = 4;  // creates in this union element

class Namespace {
 public:
  // The namespace root is served by `root_fs` (conventionally a RamFs with
  // /net /dev /srv /lib pre-made).  Does not take ownership.
  explicit Namespace(Vfs* root_fs);

  // Resolve an absolute path to a chan (mount translation + union walk
  // applied at every step).  MAY_BLOCK: walking into a mounted 9P tree
  // issues RPCs.  The namespace lock is held only per-step for mount
  // translation, never across a walk, so resolution is not atomic against
  // concurrent binds (as in Plan 9).
  Result<ChanPtr> Resolve(const std::string& path) MAY_BLOCK;

  // Resolve the directory containing `path`, returning the final element
  // name via `last` (for create/remove).
  Result<ChanPtr> ResolveParent(const std::string& path, std::string* last) MAY_BLOCK;

  // bind(new, old, flags): make `newpath`'s tree visible at `oldpath`.
  Status Bind(const std::string& newpath, const std::string& oldpath,
              int flags) MAY_BLOCK;

  // Mount a local Vfs (kernel device driver or in-process server) at old.
  Status MountVfs(Vfs* fs, const std::string& oldpath, int flags,
                  const std::string& aname = "") MAY_BLOCK;

  // Mount a remote server via the mount driver (§2.1).
  Status MountClient(std::shared_ptr<NinepClient> client, const std::string& oldpath,
                     int flags, const std::string& aname = "",
                     const std::string& uname = "none") MAY_BLOCK;

  // Remove every mount at oldpath.
  Status Unmount(const std::string& oldpath) MAY_BLOCK;

  // Forget a session recorded by MountClient, so an unmounted client can
  // actually be destroyed (closing its transport and hanging up on the
  // server).  The client stays alive while any mount entry or resolved chan
  // still references it; dropping the last reference joins its reader.
  void DropSession(const std::shared_ptr<NinepClient>& client) MAY_BLOCK;

  // Deep copy (rfork RFNAMEG-style: child namespaces evolve independently).
  std::shared_ptr<Namespace> Fork();

  // Create a file/dir at path inside the resolved (possibly union) parent,
  // honouring kMCreate.
  Result<ChanPtr> Create(const std::string& path, uint32_t perm, uint8_t mode,
                         const std::string& user) MAY_BLOCK;

  size_t MountCount();

 private:
  struct MountEntry {
    ChanPtr to;
    bool create = false;
  };
  struct MountKey {
    uint64_t dev_id;
    uint32_t qid_path;
    bool operator<(const MountKey& o) const {
      return dev_id != o.dev_id ? dev_id < o.dev_id : qid_path < o.qid_path;
    }
  };

  // If c names a mount point, return it with union_stack populated.
  ChanPtr TranslateLocked(ChanPtr c) REQUIRES(lock_);
  Result<ChanPtr> WalkOne(const ChanPtr& from, const std::string& elem) MAY_BLOCK;

  QLock lock_{"namespace"};
  Vfs* root_fs_;  // set in the constructor, immutable after
  ChanPtr root_ GUARDED_BY(lock_);
  std::map<MountKey, std::vector<MountEntry>> mounts_ GUARDED_BY(lock_);
  // Remote sessions kept alive by the namespace that mounted them.
  std::vector<std::shared_ptr<NinepClient>> sessions_ GUARDED_BY(lock_);
  uint64_t next_dev_id_ GUARDED_BY(lock_) = 1;
};

// Read a whole directory through a chan, merging union elements: first
// occurrence of a name wins.
Result<std::vector<Dir>> ReadDirChan(const ChanPtr& chan);

}  // namespace plan9

#endif  // SRC_NS_NAMESPACE_H_

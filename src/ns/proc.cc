#include "src/ns/proc.h"

#include <algorithm>
#include <cstring>

#include "src/base/strings.h"
#include "src/ninep/transport.h"
#include "src/stream/stream.h"

namespace plan9 {
namespace {

// Pipe plumbing: each end is a Stream whose device module hands blocks to
// the peer stream's upstream side — the two-stream structure of §2.4.
struct PipePair {
  std::unique_ptr<Stream> ends[2];
};

class PipeDeviceModule : public StreamModule {
 public:
  std::string_view name() const override { return "pipedev"; }
  void DownPut(BlockPtr b) override P9_CONSUMES(b) P9_HOT_PATH {
    if (peer_ != nullptr && b->type == BlockType::kData) {
      // Pipes respect the head-queue flow-control limit implicitly via the
      // writer's stream; deliver directly.
      peer_->DeliverUp(std::move(b));
    } else {
      DropBlock(std::move(b));
    }
  }
  Stream* peer_ = nullptr;
};

class PipeEndVnode : public Vnode {
 public:
  PipeEndVnode(std::shared_ptr<PipePair> pair, int side, uint32_t qid_path)
      : pair_(std::move(pair)), side_(side), qid_{qid_path, 0} {}

  ~PipeEndVnode() override { HangupBoth(); }

  Qid qid() override { return qid_; }

  Result<Dir> Stat() override {
    Dir d;
    d.name = side_ == 0 ? "data" : "data1";
    d.qid = qid_;
    d.mode = 0600;
    d.type = '|';
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    return Error(kErrNotDir);
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    Bytes buf(count);
    auto n = pair_->ends[side_]->Read(buf.data(), buf.size());
    if (!n.ok()) {
      return n.error();
    }
    buf.resize(*n);
    return buf;
  }

  Result<uint32_t> Write(uint64_t offset, const Bytes& data) override {
    auto n = pair_->ends[side_]->Write(data.data(), data.size());
    if (!n.ok()) {
      return n.error();
    }
    return static_cast<uint32_t>(*n);
  }

  void Close(uint8_t mode) override { HangupBoth(); }

 private:
  void HangupBoth() {
    // "The last close destroys it": either end closing hangs up both
    // directions; the peer drains queued data then sees EOF.
    pair_->ends[0]->Hangup();
    pair_->ends[1]->Hangup();
  }

  std::shared_ptr<PipePair> pair_;
  int side_;
  Qid qid_;
};

}  // namespace

Proc::Proc(std::shared_ptr<Namespace> ns, std::string user)
    : ns_(std::move(ns)), user_(std::move(user)) {}

Result<Proc::FdEntry*> Proc::GetLocked(int fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || fds_[fd] == nullptr) {
    return Error(kErrBadFd);
  }
  return fds_[fd].get();
}

int Proc::InstallLocked(FdEntry entry) {
  for (size_t i = 0; i < fds_.size(); i++) {
    if (fds_[i] == nullptr) {
      fds_[i] = std::make_unique<FdEntry>(std::move(entry));
      return static_cast<int>(i);
    }
  }
  fds_.push_back(std::make_unique<FdEntry>(std::move(entry)));
  return static_cast<int>(fds_.size() - 1);
}

Result<int> Proc::Open(const std::string& path, uint8_t mode) {
  auto chan = ns_->Resolve(path);
  if (!chan.ok()) {
    return chan.error();
  }
  ChanPtr c = *chan;
  FdEntry entry;
  if (c->IsDir() && !c->union_stack.empty()) {
    // Union directory: materialize the merged listing now.
    auto entries = ReadDirChan(c);
    if (!entries.ok()) {
      return entries.error();
    }
    auto image = std::make_shared<Bytes>();
    for (auto& d : *entries) {
      d.Pack(image.get());
    }
    entry.dir_image = image;
  } else {
    ChanPtr opened = c->CloneUnopened();
    Status s = opened->node->Open(mode, user_);
    if (!s.ok()) {
      return s.error();
    }
    opened->open = true;
    opened->mode = mode;
    opened->qid = opened->node->qid();  // listen-style opens morph identity
    c = opened;
  }
  entry.chan = c;
  QLockGuard guard(lock_);
  return InstallLocked(std::move(entry));
}

Result<int> Proc::Create(const std::string& path, uint32_t perm, uint8_t mode) {
  auto chan = ns_->Create(path, perm, mode, user_);
  if (!chan.ok()) {
    return chan.error();
  }
  FdEntry entry;
  entry.chan = *chan;
  QLockGuard guard(lock_);
  return InstallLocked(std::move(entry));
}

Status Proc::Close(int fd) {
  std::unique_ptr<FdEntry> entry;
  {
    QLockGuard guard(lock_);
    auto e = GetLocked(fd);
    if (!e.ok()) {
      return e.error();
    }
    entry = std::move(fds_[fd]);
  }
  if (entry->chan->open && entry->chan.use_count() == 1) {
    entry->chan->node->Close(entry->chan->mode);
  }
  return Status::Ok();
}

Result<int> Proc::Dup(int fd) {
  QLockGuard guard(lock_);
  auto e = GetLocked(fd);
  if (!e.ok()) {
    return e.error();
  }
  FdEntry copy;
  copy.chan = (*e)->chan;  // shares open chan and its node
  copy.offset = (*e)->offset;
  copy.dir_image = (*e)->dir_image;
  return InstallLocked(std::move(copy));
}

Result<size_t> Proc::Read(int fd, void* buf, size_t n) {
  ChanPtr chan;
  uint64_t offset;
  std::shared_ptr<Bytes> image;
  {
    QLockGuard guard(lock_);
    auto e = GetLocked(fd);
    if (!e.ok()) {
      return e.error();
    }
    chan = (*e)->chan;
    offset = (*e)->offset;
    image = (*e)->dir_image;
  }
  size_t got;
  if (image != nullptr) {
    if (offset >= image->size()) {
      return size_t{0};
    }
    got = std::min(n, image->size() - offset);
    std::memcpy(buf, image->data() + offset, got);
  } else {
    auto data = chan->node->Read(offset, static_cast<uint32_t>(std::min<size_t>(n, 1 << 20)));
    if (!data.ok()) {
      return data.error();
    }
    got = data->size();
    if (got != 0) {  // empty Bytes may have a null data(); memcpy forbids it
      std::memcpy(buf, data->data(), got);
    }
  }
  {
    QLockGuard guard(lock_);
    auto e = GetLocked(fd);
    if (e.ok()) {
      (*e)->offset = offset + got;
    }
  }
  return got;
}

Result<size_t> Proc::Write(int fd, const void* buf, size_t n) {
  ChanPtr chan;
  uint64_t offset;
  {
    QLockGuard guard(lock_);
    auto e = GetLocked(fd);
    if (!e.ok()) {
      return e.error();
    }
    chan = (*e)->chan;
    offset = (*e)->offset;
  }
  auto written = chan->node->Write(
      offset, Bytes(static_cast<const uint8_t*>(buf), static_cast<const uint8_t*>(buf) + n));
  if (!written.ok()) {
    return written.error();
  }
  {
    QLockGuard guard(lock_);
    auto e = GetLocked(fd);
    if (e.ok()) {
      (*e)->offset = offset + *written;
    }
  }
  return static_cast<size_t>(*written);
}

Result<uint64_t> Proc::Seek(int fd, int64_t offset, int whence) {
  QLockGuard guard(lock_);
  auto e = GetLocked(fd);
  if (!e.ok()) {
    return e.error();
  }
  int64_t base = 0;
  switch (whence) {
    case kSeekSet:
      base = 0;
      break;
    case kSeekCur:
      base = static_cast<int64_t>((*e)->offset);
      break;
    case kSeekEnd: {
      auto d = (*e)->chan->node->Stat();
      if (!d.ok()) {
        return d.error();
      }
      base = static_cast<int64_t>(d->length);
      break;
    }
    default:
      return Error(kErrBadArg);
  }
  int64_t target = base + offset;
  if (target < 0) {
    return Error(kErrBadArg);
  }
  (*e)->offset = static_cast<uint64_t>(target);
  return (*e)->offset;
}

Result<std::string> Proc::ReadString(int fd, size_t max) {
  std::string buf(max, 0);
  auto n = Read(fd, buf.data(), buf.size());
  if (!n.ok()) {
    return n.error();
  }
  buf.resize(*n);
  return buf;
}

Status Proc::WriteString(int fd, std::string_view s) {
  auto n = Write(fd, s.data(), s.size());
  if (!n.ok()) {
    return n.error();
  }
  if (*n != s.size()) {
    return Error("short write");
  }
  return Status::Ok();
}

Result<std::string> Proc::ReadFile(const std::string& path) {
  P9_ASSIGN_OR_RETURN(int fd, Open(path, kORead));
  std::string out;
  char buf[8192];
  for (;;) {
    auto n = Read(fd, buf, sizeof buf);
    if (!n.ok()) {
      (void)Close(fd);
      return n.error();
    }
    if (*n == 0) {
      break;
    }
    out.append(buf, *n);
  }
  (void)Close(fd);
  return out;
}

Status Proc::WriteFile(const std::string& path, std::string_view contents, bool create) {
  auto fd = Open(path, kOWrite | kOTrunc);
  if (!fd.ok() && create) {
    fd = Create(path, 0664, kOWrite);
  }
  if (!fd.ok()) {
    return fd.error();
  }
  Status s = WriteString(*fd, contents);
  (void)Close(*fd);
  return s;
}

Result<Dir> Proc::Fstat(int fd) {
  ChanPtr chan;
  {
    QLockGuard guard(lock_);
    auto e = GetLocked(fd);
    if (!e.ok()) {
      return e.error();
    }
    chan = (*e)->chan;
  }
  return chan->node->Stat();
}

Result<Dir> Proc::Stat(const std::string& path) {
  auto chan = ns_->Resolve(path);
  if (!chan.ok()) {
    return chan.error();
  }
  return (*chan)->node->Stat();
}

Status Proc::Wstat(const std::string& path, const Dir& d) {
  auto chan = ns_->Resolve(path);
  if (!chan.ok()) {
    return chan.error();
  }
  return (*chan)->node->Wstat(d);
}

Status Proc::Remove(const std::string& path) {
  auto chan = ns_->Resolve(path);
  if (!chan.ok()) {
    return chan.error();
  }
  return (*chan)->node->Remove();
}

Result<std::vector<Dir>> Proc::ReadDir(const std::string& path) {
  auto chan = ns_->Resolve(path);
  if (!chan.ok()) {
    return chan.error();
  }
  if (!(*chan)->IsDir()) {
    return Error(kErrNotDir);
  }
  return ReadDirChan(*chan);
}

Status Proc::Bind(const std::string& newpath, const std::string& oldpath, int flags) {
  return ns_->Bind(newpath, oldpath, flags);
}

Status Proc::MountVfs(Vfs* fs, const std::string& oldpath, int flags,
                      const std::string& aname) {
  return ns_->MountVfs(fs, oldpath, flags, aname);
}

Status Proc::MountClient(std::shared_ptr<NinepClient> client, const std::string& oldpath,
                         int flags, const std::string& aname) {
  return ns_->MountClient(std::move(client), oldpath, flags, aname, user_);
}

Status Proc::MountFd(int fd, const std::string& oldpath, int flags,
                     const std::string& aname, bool delimited) {
  auto transport = TransportForFd(fd, delimited);
  if (transport == nullptr) {
    return Error(kErrBadFd);
  }
  auto client = std::make_shared<NinepClient>(std::move(transport));
  return ns_->MountClient(std::move(client), oldpath, flags, aname, user_);
}

Status Proc::Unmount(const std::string& oldpath) { return ns_->Unmount(oldpath); }

void Proc::DropSession(const std::shared_ptr<NinepClient>& client) {
  ns_->DropSession(client);
}

Result<std::pair<int, int>> Proc::Pipe() {
  auto pair = std::make_shared<PipePair>();
  auto mod0 = std::make_unique<PipeDeviceModule>();
  auto mod1 = std::make_unique<PipeDeviceModule>();
  PipeDeviceModule* m0 = mod0.get();
  PipeDeviceModule* m1 = mod1.get();
  pair->ends[0] = std::make_unique<Stream>(std::move(mod0));
  pair->ends[1] = std::make_unique<Stream>(std::move(mod1));
  m0->peer_ = pair->ends[1].get();
  m1->peer_ = pair->ends[0].get();

  static std::atomic<uint32_t> pipe_qid{0x100000};
  uint32_t q = pipe_qid.fetch_add(2);
  auto v0 = std::make_shared<PipeEndVnode>(pair, 0, q);
  auto v1 = std::make_shared<PipeEndVnode>(pair, 1, q + 1);

  constexpr uint64_t kPipeDevId = 0x7c;  // '|'
  ChanPtr c0 = Chan::Make(v0, kPipeDevId, "#|/data");
  c0->open = true;
  c0->mode = kORdWr;
  ChanPtr c1 = Chan::Make(v1, kPipeDevId, "#|/data1");
  c1->open = true;
  c1->mode = kORdWr;
  QLockGuard guard(lock_);
  FdEntry e0;
  e0.chan = c0;
  FdEntry e1;
  e1.chan = c1;
  int fd0 = InstallLocked(std::move(e0));
  int fd1 = InstallLocked(std::move(e1));
  return std::make_pair(fd0, fd1);
}

int Proc::PutChan(ChanPtr chan) {
  FdEntry entry;
  entry.chan = std::move(chan);
  QLockGuard guard(lock_);
  return InstallLocked(std::move(entry));
}

ChanPtr Proc::GetChan(int fd) {
  QLockGuard guard(lock_);
  auto e = GetLocked(fd);
  return e.ok() ? (*e)->chan : nullptr;
}

std::unique_ptr<MsgTransport> Proc::TransportForFd(int fd, bool delimited) {
  ChanPtr chan = GetChan(fd);
  if (chan == nullptr) {
    return nullptr;
  }
  auto node = chan->node;
  if (delimited) {
    // Each Read returns one whole message (the stream head stops at the
    // delimiter); each Write is one delimited message.
    class DelimTransport : public MsgTransport {
     public:
      explicit DelimTransport(std::shared_ptr<Vnode> node) : node_(std::move(node)) {}
      Result<Bytes> ReadMsg() override { return node_->Read(0, kMaxMsg); }
      Status WriteMsg(Bytes msg) override {
        auto n = node_->Write(0, msg);
        if (!n.ok()) {
          return n.error();
        }
        return Status::Ok();
      }
      void Close() override { node_->Close(kORdWr); }

     private:
      std::shared_ptr<Vnode> node_;
    };
    return std::make_unique<DelimTransport>(node);
  }
  return std::make_unique<FramedMsgTransport>(
      [node](uint8_t* buf, size_t n) -> Result<size_t> {
        auto data = node->Read(0, static_cast<uint32_t>(n));
        if (!data.ok()) {
          return data.error();
        }
        std::memcpy(buf, data->data(), data->size());
        return data->size();
      },
      [node](const uint8_t* data, size_t n) -> Status {
        auto w = node->Write(0, Bytes(data, data + n));
        if (!w.ok()) {
          return w.error();
        }
        return Status::Ok();
      },
      [node] { node->Close(kORdWr); });
}

}  // namespace plan9

#include "src/ns/namespace.h"

#include <algorithm>
#include <set>

#include "src/base/strings.h"
#include "src/ns/mnt.h"

namespace plan9 {

Namespace::Namespace(Vfs* root_fs) : root_fs_(root_fs) {
  auto root = root_fs_->Attach("sys", "");
  // A root that cannot attach is a programming error; fail loudly.
  root_ = Chan::Make(root.take(), next_dev_id_++, "/");
}

ChanPtr Namespace::TranslateLocked(ChanPtr c) {
  auto it = mounts_.find(MountKey{c->dev_id, c->qid.path});
  if (it == mounts_.end()) {
    c->union_stack.clear();
    return c;
  }
  // Keep the original identity (so the chan remains the mount-table key) but
  // attach the union stack for walking and reading.
  c->union_stack.clear();
  for (auto& entry : it->second) {
    c->union_stack.push_back(entry.to);
  }
  return c;
}

Result<ChanPtr> Namespace::WalkOne(const ChanPtr& from, const std::string& elem) {
  if (!from->union_stack.empty()) {
    Error last_err{std::string(kErrNotExist)};
    for (auto& element : from->union_stack) {
      auto walked = element->node->Walk(elem);
      if (walked.ok()) {
        auto c = Chan::Make(walked.take(), element->dev_id, from->path + "/" + elem);
        return c;
      }
      last_err = walked.error();
    }
    return last_err;
  }
  auto walked = from->node->Walk(elem);
  if (!walked.ok()) {
    return walked.error();
  }
  return Chan::Make(walked.take(), from->dev_id, from->path + "/" + elem);
}

Result<ChanPtr> Namespace::Resolve(const std::string& path) {
  std::string clean = CleanName(path);
  if (clean.empty() || clean[0] != '/') {
    return Error(StrFormat("not an absolute path: %s", path.c_str()));
  }
  // The mount-table lock is held only for translation at each step, never
  // across WalkOne: a walk can enter a mounted 9P tree and block in an RPC
  // for a full network round trip (or forever, against a wedged server),
  // and holding the namespace lock there would stall every other namespace
  // operation in the process — the blocking-under-lock class plan9lint and
  // lockcheck::OnBlock both reject.  Resolution is therefore not atomic
  // against concurrent binds, exactly as in Plan 9.
  ChanPtr cur;
  {
    QLockGuard guard(lock_);
    cur = TranslateLocked(root_->CloneUnopened());
  }
  for (auto& elem : GetFields(clean, "/")) {
    auto next = WalkOne(cur, elem);
    if (!next.ok()) {
      return Error(StrFormat("%s: '%s' %s", path.c_str(), elem.c_str(),
                             next.error().message().c_str()));
    }
    ChanPtr translated;
    {
      QLockGuard guard(lock_);
      translated = TranslateLocked(next.take());
    }
    // Assign outside the guard: dropping the previous step's chan can clunk
    // a 9P fid — a blocking RPC that must not run under the namespace lock.
    cur = std::move(translated);
  }
  return cur;
}

Result<ChanPtr> Namespace::ResolveParent(const std::string& path, std::string* last) {
  std::string clean = CleanName(path);
  auto parts = GetFields(clean, "/");
  if (parts.empty()) {
    return Error(kErrBadArg);
  }
  *last = parts.back();
  parts.pop_back();
  return Resolve("/" + Join(parts, "/"));
}

Status Namespace::Bind(const std::string& newpath, const std::string& oldpath,
                       int flags) {
  // Both resolutions run unlocked (they may block in a mounted tree); the
  // lock protects only the table mutation below.
  auto from = Resolve(newpath);
  if (!from.ok()) {
    return from.error();
  }
  auto onto = Resolve(oldpath);
  if (!onto.ok()) {
    return onto.error();
  }
  // Entries displaced by kMRepl are destroyed only after the guard drops:
  // their chans can clunk 9P fids (blocking RPCs).
  std::vector<MountEntry> displaced;
  QLockGuard guard(lock_);
  MountKey key{(*onto)->dev_id, (*onto)->qid.path};
  auto& stack = mounts_[key];
  if (stack.empty() && (flags & 3) != kMRepl) {
    // First union mount: the mounted-on directory itself stays visible.
    stack.push_back(MountEntry{(*onto)->CloneUnopened(), /*create=*/true});
  }
  MountEntry entry{(*from)->CloneUnopened(), (flags & kMCreate) != 0};
  switch (flags & 3) {
    case kMRepl:
      displaced.swap(stack);
      entry.create = true;
      stack.push_back(std::move(entry));
      break;
    case kMBefore:
      stack.insert(stack.begin(), std::move(entry));
      break;
    case kMAfter:
      stack.push_back(std::move(entry));
      break;
    default:
      return Error(kErrBadArg);
  }
  return Status::Ok();
}

Status Namespace::MountVfs(Vfs* fs, const std::string& oldpath, int flags,
                           const std::string& aname) {
  auto root = fs->Attach("sys", aname);
  if (!root.ok()) {
    return root.error();
  }
  auto onto = Resolve(oldpath);
  if (!onto.ok()) {
    return onto.error();
  }
  std::vector<MountEntry> displaced;  // destroyed after the guard (fid clunks)
  QLockGuard guard(lock_);
  ChanPtr from = Chan::Make(root.take(), next_dev_id_++, oldpath);
  MountKey key{(*onto)->dev_id, (*onto)->qid.path};
  auto& stack = mounts_[key];
  if (stack.empty() && (flags & 3) != kMRepl) {
    stack.push_back(MountEntry{(*onto)->CloneUnopened(), true});
  }
  MountEntry entry{from, (flags & kMCreate) != 0 || (flags & 3) == kMRepl};
  switch (flags & 3) {
    case kMRepl:
      displaced.swap(stack);
      stack.push_back(std::move(entry));
      break;
    case kMBefore:
      stack.insert(stack.begin(), std::move(entry));
      break;
    case kMAfter:
      stack.push_back(std::move(entry));
      break;
    default:
      return Error(kErrBadArg);
  }
  return Status::Ok();
}

Status Namespace::MountClient(std::shared_ptr<NinepClient> client,
                              const std::string& oldpath, int flags,
                              const std::string& aname, const std::string& uname) {
  auto root = MntAttach(client, uname, aname);
  if (!root.ok()) {
    return root.error();
  }
  auto onto = Resolve(oldpath);
  if (!onto.ok()) {
    return onto.error();
  }
  std::vector<MountEntry> displaced;  // destroyed after the guard (fid clunks)
  QLockGuard guard(lock_);
  sessions_.push_back(client);
  ChanPtr from = Chan::Make(root.take(), next_dev_id_++, oldpath);
  MountKey key{(*onto)->dev_id, (*onto)->qid.path};
  auto& stack = mounts_[key];
  if (stack.empty() && (flags & 3) != kMRepl) {
    stack.push_back(MountEntry{(*onto)->CloneUnopened(), true});
  }
  MountEntry entry{from, (flags & kMCreate) != 0 || (flags & 3) == kMRepl};
  switch (flags & 3) {
    case kMRepl:
      displaced.swap(stack);
      stack.push_back(std::move(entry));
      break;
    case kMBefore:
      stack.insert(stack.begin(), std::move(entry));
      break;
    case kMAfter:
      stack.push_back(std::move(entry));
      break;
    default:
      return Error(kErrBadArg);
  }
  return Status::Ok();
}

Status Namespace::Unmount(const std::string& oldpath) {
  // Resolve preserves the mounted-on chan's original identity, which is the
  // mount key; runs unlocked like every resolution.
  auto onto = Resolve(oldpath);
  if (!onto.ok()) {
    return onto.error();
  }
  std::vector<MountEntry> dropped;  // destroyed after the guard (fid clunks)
  {
    QLockGuard guard(lock_);
    MountKey key{(*onto)->dev_id, (*onto)->qid.path};
    auto it = mounts_.find(key);
    if (it == mounts_.end()) {
      return Error("not mounted");
    }
    dropped = std::move(it->second);
    mounts_.erase(it);
  }
  return Status::Ok();
}

void Namespace::DropSession(const std::shared_ptr<NinepClient>& client) {
  std::vector<std::shared_ptr<NinepClient>> released;  // destroyed unlocked
  QLockGuard guard(lock_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (*it == client) {
      released.push_back(std::move(*it));
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

std::shared_ptr<Namespace> Namespace::Fork() {
  QLockGuard guard(lock_);
  auto copy = std::make_shared<Namespace>(root_fs_);
  // copy is unshared, but its members are lock-annotated; both locks are the
  // same class, which the lock-order checker treats as unordered.
  QLockGuard copy_guard(copy->lock_);
  copy->mounts_ = mounts_;
  copy->sessions_ = sessions_;
  copy->next_dev_id_ = next_dev_id_;
  // Note: dev_ids are assigned from the same sequence, and chans are shared
  // (immutable once in the table), so keys remain consistent.
  copy->root_ = root_;
  return copy;
}

Result<ChanPtr> Namespace::Create(const std::string& path, uint32_t perm, uint8_t mode,
                                  const std::string& user) {
  std::string name;
  auto parent = ResolveParent(path, &name);
  if (!parent.ok()) {
    return parent.error();
  }
  std::vector<ChanPtr> candidates;
  {
    QLockGuard guard(lock_);
    if (!(*parent)->union_stack.empty()) {
      auto it = mounts_.find(MountKey{(*parent)->dev_id, (*parent)->qid.path});
      if (it != mounts_.end()) {
        for (auto& entry : it->second) {
          if (entry.create) {
            candidates.push_back(entry.to);
          }
        }
      }
      if (candidates.empty()) {
        return Error(kErrPerm);
      }
    } else {
      candidates.push_back(*parent);
    }
  }
  // node->Create can block in a mounted tree (9P RPC); lock not held.
  Error last{std::string(kErrPerm)};
  for (auto& cand : candidates) {
    auto made = cand->node->Create(name, perm, mode, user);
    if (made.ok()) {
      auto c = Chan::Make(made.take(), cand->dev_id, CleanName(path));
      c->open = true;
      c->mode = mode;
      return c;
    }
    last = made.error();
  }
  return last;
}

size_t Namespace::MountCount() {
  QLockGuard guard(lock_);
  return mounts_.size();
}

Result<std::vector<Dir>> ReadDirChan(const ChanPtr& chan) {
  std::vector<ChanPtr> sources;
  if (!chan->union_stack.empty()) {
    sources = chan->union_stack;
  } else {
    sources.push_back(chan);
  }
  std::vector<Dir> out;
  std::set<std::string> seen;
  for (auto& src : sources) {
    if (!src->qid.IsDir()) {
      continue;
    }
    // Read through a fresh opened handle: remote (mount-driver) fids must
    // be opened before reading, and we must not disturb src's own state.
    std::shared_ptr<Vnode> reader = src->node;
    bool opened = false;
    if (auto clone = src->node->Walk("."); clone.ok()) {
      reader = clone.take();
      opened = reader->Open(kORead, "none").ok();
    }
    uint64_t offset = 0;
    for (;;) {
      auto chunk = reader->Read(offset, kDirLen * 32);
      if (!chunk.ok()) {
        return chunk.error();
      }
      if (chunk->empty()) {
        break;
      }
      offset += chunk->size();
      ByteReader r(*chunk);
      while (r.remaining() >= kDirLen) {
        auto d = Dir::Unpack(&r);
        if (!d.ok()) {
          return d.error();
        }
        // "Local entries supersede remote ones of the same name" — first
        // union element wins.
        if (seen.insert(d->name).second) {
          out.push_back(d.take());
        }
      }
    }
    if (opened) {
      reader->Close(kORead);
    }
  }
  return out;
}

}  // namespace plan9

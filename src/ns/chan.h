// Chan — the kernel's handle on a file (§2.1).
//
// "A kernel data structure, the channel, is a handle to a file server."  In
// this library every file provider — kernel-resident device driver, local
// user-level server, or remote server via the mount driver — presents Vnode
// objects; a Chan binds a Vnode to a name-space position plus open state.
#ifndef SRC_NS_CHAN_H_
#define SRC_NS_CHAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ninep/fcall.h"
#include "src/ninep/server.h"

namespace plan9 {

struct Chan;
using ChanPtr = std::shared_ptr<Chan>;

struct Chan {
  std::shared_ptr<Vnode> node;
  // Identity of the *server instance* providing the node.  (dev_id,
  // qid.path) names a file uniquely across the whole name space; it is the
  // mount-table key.
  uint64_t dev_id = 0;
  Qid qid;
  // The path by which this chan was reached (diagnostics, status files).
  std::string path;

  bool open = false;
  uint8_t mode = 0;

  // When this chan sits on a union mount point, the ordered stack of
  // directories mounted there ("Local entries supersede remote ones", §6.1:
  // earlier elements win).  Empty for ordinary files.
  std::vector<ChanPtr> union_stack;

  bool IsDir() const { return qid.IsDir(); }

  static ChanPtr Make(std::shared_ptr<Vnode> node, uint64_t dev_id, std::string path) {
    auto c = std::make_shared<Chan>();
    c->node = std::move(node);
    c->dev_id = dev_id;
    c->qid = c->node->qid();
    c->path = std::move(path);
    return c;
  }

  ChanPtr CloneUnopened() const {
    auto c = std::make_shared<Chan>();
    c->node = node;
    c->dev_id = dev_id;
    c->qid = qid;
    c->path = path;
    c->union_stack = union_stack;
    return c;
  }
};

}  // namespace plan9

#endif  // SRC_NS_CHAN_H_

// Proc — a process context: name space + fd table + user identity.
//
// Plan 9 processes see the system entirely through their name space; the
// "system calls" here (open/read/write/bind/mount/pipe...) are the
// user-facing surface of the kernel layers beneath.  Procs are cheap; fork
// semantics are explicit (share or Fork() the Namespace).
#ifndef SRC_NS_PROC_H_
#define SRC_NS_PROC_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/ninep/client.h"
#include "src/ns/chan.h"
#include "src/ns/namespace.h"
#include "src/task/qlock.h"

namespace plan9 {

// Seek whence.
inline constexpr int kSeekSet = 0;
inline constexpr int kSeekCur = 1;
inline constexpr int kSeekEnd = 2;

class Proc {
 public:
  explicit Proc(std::shared_ptr<Namespace> ns, std::string user = "glenda");

  Namespace* ns() { return ns_.get(); }
  std::shared_ptr<Namespace> ns_ref() { return ns_; }
  const std::string& user() const { return user_; }

  // The sysname of the node this proc runs on ("" for bare test procs);
  // set by Node::NewProc, used to label trace spans with their hop.
  const std::string& host() const { return host_; }
  void set_host(std::string host) { host_ = std::move(host); }

  // --- file descriptors ------------------------------------------------------
  // Open/Read/Write (and their string/file helpers) are MAY_BLOCK: the path
  // may resolve to a device vnode that waits (a protocol data file, /net
  // listen file, mounted 9P fid).  The fd-table lock is never held across
  // the blocking vnode call.

  Result<int> Open(const std::string& path, uint8_t mode) MAY_BLOCK;
  Result<int> Create(const std::string& path, uint32_t perm, uint8_t mode) MAY_BLOCK;
  Status Close(int fd);
  Result<int> Dup(int fd);

  Result<size_t> Read(int fd, void* buf, size_t n) MAY_BLOCK;
  Result<size_t> Write(int fd, const void* buf, size_t n) MAY_BLOCK;
  Result<uint64_t> Seek(int fd, int64_t offset, int whence);

  // One read() as a string — the idiom for ctl/status/cs files.
  Result<std::string> ReadString(int fd, size_t max = 8192) MAY_BLOCK;
  Status WriteString(int fd, std::string_view s) MAY_BLOCK;

  // Whole file by path (loops reads).
  Result<std::string> ReadFile(const std::string& path) MAY_BLOCK;
  Status WriteFile(const std::string& path, std::string_view contents,
                   bool create = true) MAY_BLOCK;

  Result<Dir> Fstat(int fd);
  Result<Dir> Stat(const std::string& path);
  Status Wstat(const std::string& path, const Dir& d);
  Status Remove(const std::string& path);
  Result<std::vector<Dir>> ReadDir(const std::string& path);

  // --- name space ------------------------------------------------------------

  Status Bind(const std::string& newpath, const std::string& oldpath, int flags);
  Status MountVfs(Vfs* fs, const std::string& oldpath, int flags,
                  const std::string& aname = "");
  Status MountClient(std::shared_ptr<NinepClient> client, const std::string& oldpath,
                     int flags, const std::string& aname = "");
  // Mount the server reachable through open fd (a network data file or pipe
  // end).  `delimited` says whether the transport preserves message
  // boundaries (IL/URP/pipe: yes; TCP: no -> length-prefix framing).
  Status MountFd(int fd, const std::string& oldpath, int flags,
                 const std::string& aname = "", bool delimited = true);
  Status Unmount(const std::string& oldpath);
  // Forget an unmounted client's session record (see Namespace::DropSession).
  void DropSession(const std::shared_ptr<NinepClient>& client);

  // --- pipes -------------------------------------------------------------

  // A full-duplex Plan 9 pipe: two cross-connected streams.  Returns two fds.
  Result<std::pair<int, int>> Pipe();

  // --- plumbing for libraries (dial, exportfs) ---------------------------

  // Install an externally built chan; returns its fd.
  int PutChan(ChanPtr chan);
  ChanPtr GetChan(int fd);

  // Build a 9P message transport reading/writing through fd.
  std::unique_ptr<MsgTransport> TransportForFd(int fd, bool delimited);

 private:
  struct FdEntry {
    ChanPtr chan;
    uint64_t offset = 0;
    // Union directories are materialized at open ("ls /net" must merge).
    std::shared_ptr<Bytes> dir_image;
  };

  Result<FdEntry*> GetLocked(int fd) REQUIRES(lock_);
  int InstallLocked(FdEntry entry) REQUIRES(lock_);

  std::shared_ptr<Namespace> ns_;
  std::string user_;
  std::string host_;
  QLock lock_{"proc.fds"};
  std::vector<std::unique_ptr<FdEntry>> fds_ GUARDED_BY(lock_);
};

}  // namespace plan9

#endif  // SRC_NS_PROC_H_

// URP over Datakit (§2.3, §8).
//
// The Datakit protocol device: conversations are virtual circuits through a
// DatakitSwitch, with URP ("Universal Receiver Protocol" [Fra80]) providing
// reliable windowed transmission over each circuit.  Addresses are ASCII
// ("connect nj/astro/helix!9fs"); message delimiters are preserved, so 9P
// runs over it unframed.  Datakit is the network that "accept[s] a reason
// for a rejection" — the spawned incoming conversation understands
// `accept` and `reject <reason>` ctl messages.
//
// URP here: cells of at most kCellData bytes, 3-bit sequence numbers, a
// window of kWindow cells, cumulative ACK cells, go-back-N retransmission
// on a fixed circuit timeout (Datakit circuits have stable latency, unlike
// IP paths — contrast with IL's adaptive timers).
#ifndef SRC_DK_URP_H_
#define SRC_DK_URP_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/inet/netproto.h"
#include "src/obs/metrics.h"
#include "src/sim/datakit.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"
#include "src/task/timers.h"

namespace plan9 {

// Registry-backed URP counters (net.dk.* aggregates in /net/stats).
struct UrpMetrics {
  UrpMetrics();

  obs::Counter cells_sent;
  obs::Counter cells_received;
  obs::Counter retransmits;
  obs::Counter msgs_sent;
  obs::Counter msgs_received;
  obs::Counter bytes_sent;
  obs::Counter bytes_received;

  void Reset();  // this conversation only
};

class DkProto;

class DkConv : public NetConv {
 public:
  enum class State { kIdle, kAnnounced, kIncoming, kEstablished, kClosed };

  static constexpr size_t kCellData = 1024;
  static constexpr uint8_t kSeqMod = 8;
  static constexpr uint8_t kWindow = 4;

  DkConv(DkProto* proto, int index);
  ~DkConv() override;

  Status Ctl(const std::string& msg) override;
  Status WaitReady() override;
  Result<int> Listen() override;
  std::string Local() override;
  std::string Remote() override;
  std::string StatusText() override;
  void CloseUser() override;

  const UrpMetrics& metrics() const { return metrics_; }

 private:
  friend class DkProto;
  class Module;
  struct Cell {
    uint8_t seq;
    Bytes raw;  // full cell incl. header
    bool sent = false;
  };

  Status AttachCircuit(std::shared_ptr<DkCircuit> circuit, DkCircuit::End end);
  Status SendMessage(const Bytes& msg) P9_HOT_PATH MAY_BLOCK;  // URP window sleep
  void CircuitInput(Bytes cell) P9_HOT_PATH;
  void CircuitHangup();
  void PumpLocked() REQUIRES(lock_);  // send cells while window allows
  void EmitAckLocked() REQUIRES(lock_);
  void ArmTimerLocked() REQUIRES(lock_);
  void TimerFire();
  Status DoAccept();
  void Recycle();

  DkProto* proto_;
  // Ordered after dk.proto (AllocConv/IncomingCall hold both).
  QLock lock_{"dk.conv"};
  Rendez window_;    // sender window space
  Rendez incoming_;  // pending calls
  Rendez decided_;   // incoming call accepted/rejected

  State state_ GUARDED_BY(lock_) = State::kIdle;
  bool slot_free_ GUARDED_BY(lock_) = true;
  // Proto teardown: never re-arm the timer.
  bool dying_ GUARDED_BY(lock_) = false;
  std::string remote_addr_ GUARDED_BY(lock_);
  std::string announced_service_ GUARDED_BY(lock_);

  std::shared_ptr<DkCircuit> circuit_ GUARDED_BY(lock_);
  DkCircuit::End end_ GUARDED_BY(lock_) = Wire::kA;
  std::shared_ptr<DkCall> call_ GUARDED_BY(lock_);  // incoming, pre-accept

  // URP sender.
  uint8_t send_seq_ GUARDED_BY(lock_) = 0;  // next sequence to assign
  uint8_t send_una_ GUARDED_BY(lock_) = 0;  // oldest unacknowledged
  // Cells [send_una_ ...], window + queued.
  std::deque<Cell> out_ GUARDED_BY(lock_);
  TimerId timer_ GUARDED_BY(lock_) = kNoTimer;

  // URP receiver.
  uint8_t recv_expect_ GUARDED_BY(lock_) = 0;
  Bytes partial_ GUARDED_BY(lock_);  // message being reassembled (BOT..EOT)

  std::deque<int> pending_ GUARDED_BY(lock_);
  std::string err_ GUARDED_BY(lock_);
  UrpMetrics metrics_;  // atomic counters; no lock needed
};

class DkProto : public NetProto {
 public:
  // `host_name` is this machine's Datakit address ("nj/astro/helix").
  DkProto(DatakitSwitch* dk_switch, std::string host_name);
  ~DkProto() override;

  std::string name() override { return "dk"; }
  Result<NetConv*> Clone() override;
  NetConv* Conv(size_t index) override;
  size_t ConvCount() override;

  DatakitSwitch* dk() { return switch_; }
  const std::string& host_name() const { return host_name_; }

  // Crash semantics (node lifecycle).  Unplug detaches this host from the
  // switch so the name is free for the restarted kernel to re-attach — a
  // graveyarded proto must never DetachHost again, or it would rip out its
  // successor's registration (the "address in use" stale-registry bug).
  void Unplug();
  // Abort closes every circuit abruptly (the switch drops a dead host's
  // circuits; peers see a hangup through the wire, not a polite close).
  void Abort(const std::string& why) MAY_BLOCK;

 private:
  friend class DkConv;

  void IncomingCall(std::shared_ptr<DkCall> call);
  Result<DkConv*> AllocConv();

  DatakitSwitch* switch_;
  std::string host_name_;
  QLock lock_{"dk.proto"};
  std::vector<std::unique_ptr<DkConv>> convs_ GUARDED_BY(lock_);
  bool unplugged_ GUARDED_BY(lock_) = false;
};

}  // namespace plan9

#endif  // SRC_DK_URP_H_

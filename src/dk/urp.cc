#include "src/dk/urp.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/task/hotcheck.h"

namespace plan9 {
namespace {

// Cell header: [type(1)][seq(1)][flags(1)][pad(1)] + payload.
constexpr size_t kCellHeader = 4;
constexpr uint8_t kTypeData = 0;
constexpr uint8_t kTypeAck = 1;
constexpr uint8_t kFlagBot = 1;  // beginning of message
constexpr uint8_t kFlagEot = 2;  // end of message
constexpr auto kUrpRto = std::chrono::microseconds(100'000);


const char* StateName(DkConv::State s) {
  switch (s) {
    case DkConv::State::kIdle:
      return "Idle";
    case DkConv::State::kAnnounced:
      return "Listen";
    case DkConv::State::kIncoming:
      return "Incoming";
    case DkConv::State::kEstablished:
      return "Established";
    case DkConv::State::kClosed:
      return "Closed";
  }
  return "?";
}

}  // namespace

class DkConv::Module : public StreamModule {
 public:
  explicit Module(DkConv* conv) : conv_(conv) {}
  std::string_view name() const override { return "urp"; }

  void DownPut(BlockPtr b) override P9_CONSUMES(b) P9_HOT_PATH {
    if (b->type != BlockType::kData) {
      DropBlock(std::move(b));
      return;
    }
    pending_.insert(pending_.end(), b->payload(), b->payload() + b->size());
    bool delim = b->delim;
    RecycleBlock(std::move(b));
    if (!delim) {
      return;
    }
    Bytes msg;
    msg.swap(pending_);
    Status s = conv_->SendMessage(msg);
    if (!s.ok()) {
      P9_LOG(kDebug) << "urp send: " << s.error().message();
    }
  }

 private:
  DkConv* conv_;
  Bytes pending_;
};

UrpMetrics::UrpMetrics() {
  auto& r = obs::MetricsRegistry::Default();
  cells_sent.BindParent(&r.CounterNamed("net.dk.cells-sent"));
  cells_received.BindParent(&r.CounterNamed("net.dk.cells-rcvd"));
  retransmits.BindParent(&r.CounterNamed("net.dk.resends"));
  msgs_sent.BindParent(&r.CounterNamed("net.dk.msgs-sent"));
  msgs_received.BindParent(&r.CounterNamed("net.dk.msgs-rcvd"));
  bytes_sent.BindParent(&r.CounterNamed("net.dk.bytes-sent"));
  bytes_received.BindParent(&r.CounterNamed("net.dk.bytes-rcvd"));
}

void UrpMetrics::Reset() {
  cells_sent.Reset();
  cells_received.Reset();
  retransmits.Reset();
  msgs_sent.Reset();
  msgs_received.Reset();
  bytes_sent.Reset();
  bytes_received.Reset();
}

DkConv::DkConv(DkProto* proto, int index) : proto_(proto) {
  index_ = index;
  stream_ = std::make_unique<Stream>(std::make_unique<Module>(this));
}

DkConv::~DkConv() {
  TimerId t;
  {
    QLockGuard guard(lock_);
    t = timer_;
    timer_ = kNoTimer;
  }
  if (t != kNoTimer) {
    TimerWheel::Default().Cancel(t);
  }
}

void DkConv::Recycle() {
  QLockGuard guard(lock_);
  stream_ = std::make_unique<Stream>(std::make_unique<Module>(this));
  state_ = State::kIdle;
  remote_addr_.clear();
  announced_service_.clear();
  circuit_.reset();
  call_.reset();
  send_seq_ = send_una_ = recv_expect_ = 0;
  out_.clear();
  partial_.clear();
  pending_.clear();
  err_.clear();
  metrics_.Reset();
}

Status DkConv::Ctl(const std::string& msg) {
  auto words = Tokenize(msg);
  if (words.empty()) {
    return Error(kErrBadCtl);
  }
  if (words[0] == "connect" && words.size() >= 2) {
    {
      QLockGuard guard(lock_);
      if (state_ != State::kIdle) {
        return Error("connection already in use");
      }
    }
    auto circuit = proto_->dk()->Dial(proto_->host_name(), words[1]);
    if (!circuit.ok()) {
      return circuit.error();
    }
    {
      QLockGuard guard(lock_);
      remote_addr_ = words[1];
    }
    return AttachCircuit(*circuit, Wire::kA);
  }
  if (words[0] == "announce" && words.size() >= 2) {
    QLockGuard guard(lock_);
    if (state_ != State::kIdle) {
      return Error("connection already in use");
    }
    announced_service_ = words[1];
    state_ = State::kAnnounced;
    return Status::Ok();
  }
  if (words[0] == "accept") {
    return DoAccept();
  }
  if (words[0] == "reject") {
    // "Some networks such as Datakit accept a reason for a rejection."
    std::string reason = words.size() >= 2 ? words[1] : "rejected";
    std::shared_ptr<DkCall> call;
    {
      QLockGuard guard(lock_);
      call = call_;
      state_ = State::kClosed;
      err_ = reason;
    }
    if (call != nullptr) {
      call->Reject(reason);
    }
    decided_.Wakeup();
    stream_->Hangup();
    {
      QLockGuard guard(lock_);
      slot_free_ = true;
    }
    return Status::Ok();
  }
  if (words[0] == "hangup") {
    CloseUser();
    return Status::Ok();
  }
  return Error(kErrBadCtl);
}

Status DkConv::DoAccept() {
  std::shared_ptr<DkCall> call;
  {
    QLockGuard guard(lock_);
    if (state_ != State::kIncoming) {
      return state_ == State::kEstablished ? Status::Ok() : Error("no call to accept");
    }
    call = call_;
  }
  auto circuit = call->Accept();
  if (circuit == nullptr) {
    return Error("call vanished");
  }
  Status s = AttachCircuit(circuit, Wire::kB);
  decided_.Wakeup();
  return s;
}

Status DkConv::AttachCircuit(std::shared_ptr<DkCircuit> circuit, DkCircuit::End end) {
  {
    QLockGuard guard(lock_);
    circuit_ = circuit;
    end_ = end;
    state_ = State::kEstablished;
  }
  circuit->Attach(
      end, [this](Bytes cell) { CircuitInput(std::move(cell)); },
      [this] { CircuitHangup(); });
  return Status::Ok();
}

Status DkConv::WaitReady() {
  // Opening the data file of an un-accepted incoming call accepts it (IP
  // protocols auto-accept at listen; Datakit does it here).
  {
    QLockGuard guard(lock_);
    if (state_ == State::kAnnounced) {
      return Status::Ok();
    }
  }
  (void)DoAccept();
  QLockGuard guard(lock_);
  bool done = decided_.SleepFor(lock_, std::chrono::seconds(5), [&]() REQUIRES(lock_) {
    return state_ == State::kEstablished || state_ == State::kClosed;
  });
  if (state_ == State::kEstablished) {
    return Status::Ok();
  }
  return Error(!done ? std::string(kErrTimedOut)
                     : (err_.empty() ? std::string(kErrConnRefused) : err_));
}

Result<int> DkConv::Listen() {
  QLockGuard guard(lock_);
  if (state_ != State::kAnnounced) {
    return Error("not announced");
  }
  incoming_.Sleep(lock_, [&]() REQUIRES(lock_) { return !pending_.empty() || state_ == State::kClosed; });
  if (state_ == State::kClosed) {
    return Error(kErrHungup);
  }
  int conv = pending_.front();
  pending_.pop_front();
  return conv;
}

std::string DkConv::Local() {
  QLockGuard guard(lock_);
  std::string addr = proto_->host_name();
  if (state_ == State::kAnnounced && !announced_service_.empty()) {
    addr += "!" + announced_service_;
  }
  return addr + "\n";
}

std::string DkConv::Remote() {
  QLockGuard guard(lock_);
  return remote_addr_ + "\n";
}

std::string DkConv::StatusText() {
  QLockGuard guard(lock_);
  return StrFormat("dk/%d %d %s %s %s tx %llu rx %llu\n", index_, refs.load(),
                   StateName(state_), remote_addr_.empty() ? "announce" : "connect",
                   remote_addr_.empty() ? announced_service_.c_str()
                                        : remote_addr_.c_str(),
                   static_cast<unsigned long long>(metrics_.bytes_sent.value()),
                   static_cast<unsigned long long>(metrics_.bytes_received.value()));
}

void DkConv::CloseUser() {
  std::deque<int> orphans;
  std::shared_ptr<DkCircuit> circuit;
  std::shared_ptr<DkCall> call;
  DkCircuit::End end = Wire::kA;
  {
    QLockGuard guard(lock_);
    orphans.swap(pending_);
    circuit = circuit_;
    call = call_;
    end = end_;
    state_ = State::kClosed;
    if (timer_ != kNoTimer) {
      TimerWheel::Default().Cancel(timer_);
      timer_ = kNoTimer;
    }
    slot_free_ = true;
  }
  if (call != nullptr) {
    call->Reject("hangup");
  }
  if (circuit != nullptr) {
    circuit->Close(end);
  }
  stream_->Hangup();
  incoming_.Wakeup();
  window_.Wakeup();
  decided_.Wakeup();
  for (int idx : orphans) {
    if (NetConv* c = proto_->Conv(static_cast<size_t>(idx)); c != nullptr) {
      c->CloseUser();
    }
  }
}

Status DkConv::SendMessage(const Bytes& msg) {
  QLockGuard guard(lock_);
  // Cut the message into cells, marking message boundaries (Datakit/URP
  // preserves delimiters).
  size_t ncells = msg.empty() ? 1 : (msg.size() + DkConv::kCellData - 1) / DkConv::kCellData;
  for (size_t i = 0; i < ncells; i++) {
    // Flow control: at most kWindow cells outstanding plus a modest queue.
    window_.Sleep(lock_, [&]() REQUIRES(lock_) { return state_ != State::kEstablished || out_.size() < 32; });
    if (state_ != State::kEstablished) {
      return Error(err_.empty() ? std::string(kErrHungup) : err_);
    }
    size_t off = i * DkConv::kCellData;
    size_t len = std::min(DkConv::kCellData, msg.size() - off);
    Cell cell;
    cell.seq = 0;  // assigned when sent
    cell.raw.reserve(kCellHeader + len);
    cell.raw.push_back(kTypeData);
    cell.raw.push_back(0);  // seq placeholder
    uint8_t flags = 0;
    if (i == 0) {
      flags |= kFlagBot;
    }
    if (i + 1 == ncells) {
      flags |= kFlagEot;
    }
    cell.raw.push_back(flags);
    cell.raw.push_back(0);
    cell.raw.insert(cell.raw.end(), msg.begin() + static_cast<long>(off),
                    msg.begin() + static_cast<long>(off + len));
    out_.push_back(std::move(cell));
  }
  metrics_.msgs_sent.Inc();
  metrics_.bytes_sent.Inc(msg.size());
  PumpLocked();
  return Status::Ok();
}

void DkConv::PumpLocked() {
  // Send queued cells while the window has room.
  size_t inflight = static_cast<uint8_t>((send_seq_ - send_una_) & 7);
  for (auto& cell : out_) {
    if (cell.sent) {
      continue;
    }
    if (inflight >= kWindow) {
      break;
    }
    cell.seq = send_seq_;
    cell.raw[1] = send_seq_;
    send_seq_ = (send_seq_ + 1) & 7;
    cell.sent = true;
    inflight++;
    metrics_.cells_sent.Inc();
    (void)circuit_->Send(end_, cell.raw);
  }
  if (send_una_ != send_seq_ && timer_ == kNoTimer) {
    ArmTimerLocked();
  }
}

void DkConv::EmitAckLocked() {
  Bytes ack{kTypeAck, recv_expect_, 0, 0};
  (void)circuit_->Send(end_, std::move(ack));
}

void DkConv::ArmTimerLocked() {
  if (dying_) {
    return;
  }
  if (timer_ != kNoTimer) {
    TimerWheel::Default().Cancel(timer_);
  }
  timer_ = TimerWheel::Default().Schedule(kUrpRto, [this] { TimerFire(); });
}

void DkConv::TimerFire() {
  QLockGuard guard(lock_);
  timer_ = kNoTimer;
  if (state_ != State::kEstablished || send_una_ == send_seq_) {
    return;
  }
  // Go-back-N: resend every outstanding cell.
  for (auto& cell : out_) {
    if (!cell.sent) {
      break;
    }
    metrics_.retransmits.Inc();
    (void)circuit_->Send(end_, cell.raw);
  }
  ArmTimerLocked();
}

void DkConv::CircuitInput(Bytes cell) {
  P9_HOT_ROOT("urp.input");
  std::vector<BlockPtr> deliveries;
  {
    QLockGuard guard(lock_);
    if (cell.size() < kCellHeader || state_ != State::kEstablished) {
      return;
    }
    uint8_t type = cell[0];
    uint8_t seq = cell[1];
    uint8_t flags = cell[2];
    metrics_.cells_received.Inc();
    if (type == kTypeAck) {
      // Cumulative ack: seq = next cell the peer expects.
      while (send_una_ != seq && send_una_ != send_seq_) {
        if (!out_.empty()) {
          out_.pop_front();
        }
        send_una_ = (send_una_ + 1) & 7;
      }
      if (send_una_ == send_seq_ && timer_ != kNoTimer) {
        TimerWheel::Default().Cancel(timer_);
        timer_ = kNoTimer;
      }
      PumpLocked();
    } else if (type == kTypeData) {
      if (seq != recv_expect_) {
        // Out of order (go-back-N receiver accepts only in sequence);
        // re-ack so the sender resynchronizes.
        EmitAckLocked();
      } else {
        recv_expect_ = (recv_expect_ + 1) & 7;
        if (flags & kFlagBot) {
          partial_.clear();
        }
        partial_.insert(partial_.end(), cell.begin() + kCellHeader, cell.end());
        if (flags & kFlagEot) {
          metrics_.msgs_received.Inc();
          metrics_.bytes_received.Inc(partial_.size());
          deliveries.push_back(AllocDataBlock(std::move(partial_), /*delim=*/true));
          partial_ = Bytes{};
        }
        EmitAckLocked();
      }
    }
  }
  for (auto& b : deliveries) {
    stream_->DeliverUp(std::move(b));
  }
  window_.Wakeup();
}

void DkConv::CircuitHangup() {
  {
    QLockGuard guard(lock_);
    state_ = State::kClosed;
    err_ = kErrHungup;
    if (timer_ != kNoTimer) {
      TimerWheel::Default().Cancel(timer_);
      timer_ = kNoTimer;
    }
  }
  stream_->Hangup();
  window_.Wakeup();
  decided_.Wakeup();
}

DkProto::DkProto(DatakitSwitch* dk_switch, std::string host_name)
    : switch_(dk_switch), host_name_(std::move(host_name)) {
  (void)switch_->AttachHost(host_name_,
                            [this](std::shared_ptr<DkCall> call) { IncomingCall(call); });
}

void DkProto::Unplug() {
  bool detach = false;
  {
    QLockGuard guard(lock_);
    detach = !unplugged_;
    unplugged_ = true;
  }
  if (detach) {
    switch_->DetachHost(host_name_);
  }
}

void DkProto::Abort(const std::string& why) {
  Unplug();
  std::vector<DkConv*> convs;
  {
    QLockGuard guard(lock_);
    for (auto& c : convs_) {
      convs.push_back(c.get());
    }
  }
  for (DkConv* c : convs) {
    std::shared_ptr<DkCircuit> circuit;
    DkCircuit::End end = Wire::kA;
    {
      QLockGuard guard(c->lock_);
      c->dying_ = true;
      if (c->state_ != DkConv::State::kClosed && c->state_ != DkConv::State::kIdle) {
        c->err_ = why;
      }
      c->state_ = DkConv::State::kClosed;
      c->pending_.clear();
      c->call_.reset();  // pending incoming calls time out at the caller
      circuit.swap(c->circuit_);
      end = c->end_;
      if (c->timer_ != kNoTimer) {
        TimerWheel::Default().Cancel(c->timer_);
        c->timer_ = kNoTimer;
      }
    }
    if (circuit != nullptr) {
      // The switch tears down a dead host's circuits: the peer observes a
      // hangup arriving over the circuit, never our memory state.
      circuit->Close(end);
    }
    c->stream_->Hangup();
    c->window_.Wakeup();
    c->incoming_.Wakeup();
    c->decided_.Wakeup();
  }
  TimerWheel::Default().Drain();
}

DkProto::~DkProto() {
  Unplug();
  {
    QLockGuard guard(lock_);
    for (auto& c : convs_) {
      TimerId t;
      {
        QLockGuard cguard(c->lock_);
        c->dying_ = true;
        t = c->timer_;
        c->timer_ = kNoTimer;
      }
      if (t != kNoTimer) {
        TimerWheel::Default().Cancel(t);
      }
    }
  }
  TimerWheel::Default().Drain();
}

Result<NetConv*> DkProto::Clone() {
  auto conv = AllocConv();
  if (!conv.ok()) {
    return conv.error();
  }
  return static_cast<NetConv*>(*conv);
}

Result<DkConv*> DkProto::AllocConv() {
  QLockGuard guard(lock_);
  for (auto& c : convs_) {
    bool reusable;
    {
      QLockGuard cguard(c->lock_);
      reusable = c->slot_free_ && c->state_ == DkConv::State::kIdle && c->refs.load() == 0;
    }
    if (reusable) {
      c->Recycle();
      QLockGuard cguard(c->lock_);
      c->slot_free_ = false;
      return c.get();
    }
  }
  if (convs_.size() >= MaxConvs()) {
    return Error(kErrNoConv);
  }
  convs_.push_back(std::make_unique<DkConv>(this, static_cast<int>(convs_.size())));
  DkConv* c = convs_.back().get();
  QLockGuard cguard(c->lock_);
  c->slot_free_ = false;
  return c;
}

NetConv* DkProto::Conv(size_t index) {
  QLockGuard guard(lock_);
  return index < convs_.size() ? convs_[index].get() : nullptr;
}

size_t DkProto::ConvCount() {
  QLockGuard guard(lock_);
  return convs_.size();
}

void DkProto::IncomingCall(std::shared_ptr<DkCall> call) {
  // Route to the conversation announced for this service; "*" hears
  // anything not explicitly announced ("one can easily write the equivalent
  // of the inetd program", §5.2).
  DkConv* listener = nullptr;
  {
    QLockGuard guard(lock_);
    for (auto& c : convs_) {
      QLockGuard cguard(c->lock_);
      if (c->state_ == DkConv::State::kAnnounced &&
          c->announced_service_ == call->service()) {
        listener = c.get();
        break;
      }
    }
    if (listener == nullptr) {
      for (auto& c : convs_) {
        QLockGuard cguard(c->lock_);
        if (c->state_ == DkConv::State::kAnnounced && c->announced_service_ == "*") {
          listener = c.get();
          break;
        }
      }
    }
  }
  if (listener == nullptr) {
    call->Reject("no listener");
    return;
  }
  auto spawned = AllocConv();
  if (!spawned.ok()) {
    call->Reject("no free conversations");
    return;
  }
  DkConv* nc = *spawned;
  {
    QLockGuard guard(nc->lock_);
    nc->state_ = DkConv::State::kIncoming;
    nc->call_ = call;
    nc->remote_addr_ = call->from() + "!" + call->service();
  }
  {
    QLockGuard guard(listener->lock_);
    listener->pending_.push_back(nc->index());
  }
  listener->incoming_.Wakeup();
}

}  // namespace plan9

// Simulated-media parameters.
//
// Plan 9's networks span "a hierarchy of network speeds": 125 Mb/s Cyclone
// fiber, 10 Mb/s Ethernet, Datakit circuits, ISDN and 9600-baud serial
// lines.  Every simulated medium is configured with a LinkParams describing
// bandwidth, propagation latency and loss.  Loss draws from a seeded Rng so
// every experiment replays deterministically.
#ifndef SRC_SIM_MEDIUM_H_
#define SRC_SIM_MEDIUM_H_

#include <chrono>
#include <cstdint>

#include "src/obs/metrics.h"
#include "src/sim/faults.h"

namespace plan9 {

struct LinkParams {
  // Bits per second; 0 means infinitely fast (no serialization delay).
  uint64_t bandwidth_bps = 0;
  // One-way propagation delay.
  std::chrono::microseconds latency{0};
  // Probability each frame is silently dropped (legacy uniform knob; the
  // FaultProfile below models everything richer).
  double loss_rate = 0.0;
  // Seed for the loss/jitter Rng.
  uint64_t seed = 1;
  // Maximum frame size; larger sends fail (media enforce their MTU).
  size_t mtu = 64 * 1024;
  // Adversarial link behaviour: loss bursts, duplication, reordering, bit
  // corruption, scripted partitions.  Driven by `seed`, so replays exactly.
  FaultProfile faults;

  static LinkParams Perfect() { return LinkParams{}; }

  // The paper's media, by the numbers it quotes.
  static LinkParams Ether10() {
    return LinkParams{.bandwidth_bps = 10'000'000,
                      .latency = std::chrono::microseconds(200),
                      .mtu = 1514,
                      .faults = {}};
  }
  static LinkParams Datakit() {
    // URP/Datakit measured 0.22 MB/s and 1.75 ms RTT latency in Table 1;
    // circuits through the switch were ~2 Mb/s with millisecond latencies.
    return LinkParams{.bandwidth_bps = 2'000'000,
                      .latency = std::chrono::microseconds(700),
                      .mtu = 2048,
                      .faults = {}};
  }
  static LinkParams Cyclone() {
    // "two VME cards ... drive the lines at 125 Mbit/sec"; software copies
    // directly from system memory to fiber.
    return LinkParams{.bandwidth_bps = 125'000'000,
                      .latency = std::chrono::microseconds(50),
                      .mtu = 64 * 1024,
                      .faults = {}};
  }
  static LinkParams Serial9600() {
    return LinkParams{.bandwidth_bps = 9'600,
                      .latency = std::chrono::microseconds(100),
                      .mtu = 1024,
                      .faults = {}};
  }
};

// Counters every medium keeps; the ether device's `stats` file reports them.
// Registry-backed: increments also feed the process-wide sim.media.*
// aggregates in /net/stats.  Atomic, so readable without the medium's lock.
struct MediaStats {
  MediaStats();

  obs::Counter frames_sent;
  obs::Counter frames_delivered;
  obs::Counter frames_dropped;
  obs::Counter bytes_sent;
  obs::Counter bytes_delivered;
  obs::Counter send_errors;  // oversize etc.
};

}  // namespace plan9

#endif  // SRC_SIM_MEDIUM_H_

// DatakitSwitch — a virtual-circuit network with ASCII addresses.
//
// Datakit [Fra80] is a circuit switch: hosts attach with hierarchical names
// like "nj/astro/helix", calls name a host and service ("nj/astro/helix!9fs"),
// and an established call is a full-duplex circuit that preserves message
// delimiters.  The switch models call placement (accept/reject with a reason
// — "Some networks such as Datakit accept a reason for a rejection"),
// per-circuit bandwidth/latency/loss, and hangup propagation.  URP (src/dk)
// provides reliable transmission over these circuits.
#ifndef SRC_SIM_DATAKIT_H_
#define SRC_SIM_DATAKIT_H_

#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/base/bytes.h"
#include "src/base/thread_annotations.h"
#include "src/base/result.h"
#include "src/sim/medium.h"
#include "src/sim/wire.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"

namespace plan9 {

// An established circuit.  End kA is always the caller.
class DkCircuit {
 public:
  using RecvFn = std::function<void(Bytes msg)>;
  using HangupFn = std::function<void()>;
  using End = Wire::End;

  explicit DkCircuit(LinkParams params);
  ~DkCircuit();

  void Attach(End end, RecvFn on_msg, HangupFn on_hangup);
  Status Send(End end, Bytes msg);
  // Close this end; the other end's HangupFn fires after in-flight messages.
  void Close(End end);
  bool closed();

 private:
  // Hand a raw frame to the conv attached at `to`.
  void Deliver(End to, Bytes raw);

  Wire wire_;
  QLock lock_{"dk.circuit"};
  RecvFn recv_[2] GUARDED_BY(lock_);
  HangupFn hangup_[2] GUARDED_BY(lock_);
  bool closed_ GUARDED_BY(lock_) = false;
};

// A pending incoming call, delivered to the callee's listener.
class DkCall {
 public:
  DkCall(std::string from, std::string service, LinkParams params)
      : from_(std::move(from)), service_(std::move(service)), params_(params) {}

  const std::string& from() const { return from_; }
  const std::string& service() const { return service_; }

  // Completes the caller's Dial with a circuit (callee gets End kB).
  std::shared_ptr<DkCircuit> Accept();
  void Reject(std::string reason);

 private:
  friend class DatakitSwitch;
  enum class State { kPending, kAccepted, kRejected };

  std::string from_;
  std::string service_;
  LinkParams params_;

  QLock lock_{"dk.call"};
  Rendez decided_;
  State state_ GUARDED_BY(lock_) = State::kPending;
  std::string reject_reason_ GUARDED_BY(lock_);
  std::shared_ptr<DkCircuit> circuit_ GUARDED_BY(lock_);
};

class DatakitSwitch {
 public:
  using CallFn = std::function<void(std::shared_ptr<DkCall>)>;

  explicit DatakitSwitch(LinkParams circuit_params = LinkParams::Datakit());

  // Attach a host by Datakit name; on_call receives incoming calls (it
  // typically enqueues them for a listener kproc).
  Status AttachHost(const std::string& name, CallFn on_call);
  void DetachHost(const std::string& name);

  // Place a call to "path/of/host!service".  Blocks until the callee accepts
  // or rejects, or the timeout expires.
  Result<std::shared_ptr<DkCircuit>> Dial(
      const std::string& from_host, const std::string& dest,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(2000)) MAY_BLOCK;

  size_t host_count();

 private:
  QLock lock_{"dk.switch"};
  LinkParams circuit_params_;
  std::vector<std::pair<std::string, CallFn>> hosts_ GUARDED_BY(lock_);
};

}  // namespace plan9

#endif  // SRC_SIM_DATAKIT_H_

#include "src/sim/datakit.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/task/timers.h"

namespace plan9 {
namespace {
// In-band message tags so hangup ordering follows the data path.
constexpr uint8_t kTagData = 0;
constexpr uint8_t kTagHangup = 1;
}  // namespace

DkCircuit::DkCircuit(LinkParams params) : wire_(params) {
  // The callback attached at an end receives frames sent from the *other*
  // end, so it delivers to its own side.
  wire_.Attach(Wire::kA, [this](Bytes raw) { Deliver(Wire::kA, std::move(raw)); });
  wire_.Attach(Wire::kB, [this](Bytes raw) { Deliver(Wire::kB, std::move(raw)); });
}

DkCircuit::~DkCircuit() {
  wire_.Cut();
  // Wire delivery lambdas capture `this`; wait out any in flight.
  TimerWheel::Default().Drain();
}

void DkCircuit::Attach(End end, RecvFn on_msg, HangupFn on_hangup) {
  QLockGuard guard(lock_);
  recv_[end] = std::move(on_msg);
  hangup_[end] = std::move(on_hangup);
}

Status DkCircuit::Send(End end, Bytes msg) {
  {
    QLockGuard guard(lock_);
    if (closed_) {
      return Error(kErrHungup);
    }
  }
  Bytes raw;
  raw.reserve(msg.size() + 1);
  raw.push_back(kTagData);
  raw.insert(raw.end(), msg.begin(), msg.end());
  return wire_.Send(end, std::move(raw));
}

void DkCircuit::Close(End end) {
  {
    QLockGuard guard(lock_);
    if (closed_) {
      return;
    }
    closed_ = true;
  }
  (void)wire_.Send(end, Bytes{kTagHangup});
}

bool DkCircuit::closed() {
  QLockGuard guard(lock_);
  return closed_;
}

void DkCircuit::Deliver(End to, Bytes raw) {
  if (raw.empty()) {
    return;
  }
  uint8_t tag = raw[0];
  RecvFn recv;
  HangupFn hangup;
  {
    QLockGuard guard(lock_);
    recv = recv_[to];
    hangup = hangup_[to];
  }
  if (tag == kTagHangup) {
    if (hangup) {
      hangup();
    }
    return;
  }
  if (recv) {
    recv(Bytes(raw.begin() + 1, raw.end()));
  }
}

std::shared_ptr<DkCircuit> DkCall::Accept() {
  std::shared_ptr<DkCircuit> circuit;
  {
    QLockGuard guard(lock_);
    if (state_ != State::kPending) {
      return state_ == State::kAccepted ? circuit_ : nullptr;
    }
    circuit_ = std::make_shared<DkCircuit>(params_);
    circuit = circuit_;
    state_ = State::kAccepted;
  }
  decided_.Wakeup();
  return circuit;
}

void DkCall::Reject(std::string reason) {
  {
    QLockGuard guard(lock_);
    if (state_ != State::kPending) {
      return;
    }
    state_ = State::kRejected;
    reject_reason_ = std::move(reason);
  }
  decided_.Wakeup();
}

DatakitSwitch::DatakitSwitch(LinkParams circuit_params) : circuit_params_(circuit_params) {}

Status DatakitSwitch::AttachHost(const std::string& name, CallFn on_call) {
  QLockGuard guard(lock_);
  for (auto& [n, fn] : hosts_) {
    if (n == name) {
      return Error(StrFormat("datakit host already attached: %s", name.c_str()));
    }
  }
  hosts_.emplace_back(name, std::move(on_call));
  return Status::Ok();
}

void DatakitSwitch::DetachHost(const std::string& name) {
  QLockGuard guard(lock_);
  hosts_.erase(std::remove_if(hosts_.begin(), hosts_.end(),
                              [&](const auto& h) { return h.first == name; }),
               hosts_.end());
}

Result<std::shared_ptr<DkCircuit>> DatakitSwitch::Dial(const std::string& from_host,
                                                       const std::string& dest,
                                                       std::chrono::milliseconds timeout) {
  auto bang = dest.find('!');
  std::string host = bang == std::string::npos ? dest : dest.substr(0, bang);
  std::string service = bang == std::string::npos ? "" : dest.substr(bang + 1);

  CallFn on_call;
  {
    QLockGuard guard(lock_);
    for (auto& [n, fn] : hosts_) {
      if (n == host) {
        on_call = fn;
        break;
      }
    }
  }
  if (!on_call) {
    return Error(StrFormat("unknown datakit host: %s", host.c_str()));
  }

  auto call = std::make_shared<DkCall>(from_host, service, circuit_params_);
  on_call(call);

  QLockGuard guard(call->lock_);
  bool decided = call->decided_.SleepFor(
      call->lock_, timeout,
      [&]() REQUIRES(call->lock_) { return call->state_ != DkCall::State::kPending; });
  if (!decided) {
    return Error(kErrTimedOut);
  }
  if (call->state_ == DkCall::State::kRejected) {
    return Error(call->reject_reason_.empty() ? std::string(kErrConnRefused)
                                              : call->reject_reason_);
  }
  return call->circuit_;
}

size_t DatakitSwitch::host_count() {
  QLockGuard guard(lock_);
  return hosts_.size();
}

}  // namespace plan9

#include "src/sim/wire.h"

#include <algorithm>

#include "src/base/strings.h"

namespace plan9 {

// Shared state outlives the Wire so in-flight timer callbacks stay valid.
struct Wire::Shared {
  // A leaf lock: held only across bookkeeping; delivery callbacks run with
  // it dropped.
  QLock lock{"sim.wire"};
  Direction dirs[2] GUARDED_BY(lock);  // dirs[kA] = A->B, dirs[kB] = B->A
  bool cut GUARDED_BY(lock) = false;
};

Wire::Wire(LinkParams a_to_b, LinkParams b_to_a) : shared_(std::make_shared<Shared>()) {
  auto now = TimerWheel::Clock::now();
  shared_->dirs[kA].params = a_to_b;
  shared_->dirs[kA].rng = Rng(a_to_b.seed);
  shared_->dirs[kA].faults.Reconfigure(a_to_b.faults, a_to_b.seed, now);
  shared_->dirs[kB].params = b_to_a;
  shared_->dirs[kB].rng = Rng(b_to_a.seed ^ 0x517cc1b727220a95ULL);
  shared_->dirs[kB].faults.Reconfigure(b_to_a.faults,
                                       b_to_a.seed ^ 0x517cc1b727220a95ULL, now);
  shared_->dirs[kA].busy_until = now;
  shared_->dirs[kB].busy_until = now;
}

Wire::~Wire() { Cut(); }

void Wire::Attach(End end, RecvFn fn) {
  QLockGuard guard(shared_->lock);
  // The callback of end X receives traffic from the *other* end, i.e. the
  // direction indexed by the sender.
  shared_->dirs[end == kA ? kB : kA].recv = std::move(fn);
}

void Wire::Detach(End end) { Attach(end, nullptr); }

Status Wire::Send(End from, Bytes frame) {
  auto shared = shared_;
  TimerWheel::Clock::duration delay;
  TimerWheel::Clock::duration tx_time{0};
  bool duplicate = false;
  {
    QLockGuard guard(shared->lock);
    Direction& dir = shared->dirs[from];
    if (shared->cut) {
      return Error(kErrHungup);
    }
    if (frame.size() > dir.params.mtu) {
      dir.stats.send_errors.Inc();
      return Error(StrFormat("frame too large for medium (%zu > %zu)", frame.size(),
                             dir.params.mtu));
    }
    dir.stats.frames_sent.Inc();
    dir.stats.bytes_sent.Inc(frame.size());
    if (dir.params.loss_rate > 0 && dir.rng.Chance(dir.params.loss_rate)) {
      dir.stats.frames_dropped.Inc();
      return Status::Ok();  // silently lost on the wire
    }
    auto now = TimerWheel::Clock::now();
    auto fault = dir.faults.Evaluate(now, frame.size());
    if (fault.drop) {
      dir.stats.frames_dropped.Inc();
      return Status::Ok();
    }
    if (fault.corrupt) {
      FaultInjector::ApplyCorruption(&frame, fault.corrupt_bit);
    }
    duplicate = fault.duplicate;
    // Serialization: the line transmits one frame at a time.
    if (dir.params.bandwidth_bps > 0) {
      tx_time = std::chrono::nanoseconds(frame.size() * 8ULL * 1'000'000'000ULL /
                                         dir.params.bandwidth_bps);
    }
    auto start = std::max(now, dir.busy_until);
    dir.busy_until = start + tx_time;
    delay = (dir.busy_until + dir.params.latency) - now + fault.extra_delay;
  }
  auto schedule = [](std::shared_ptr<Shared> shared, End from,
                     TimerWheel::Clock::duration delay, Bytes frame) {
    TimerWheel::Default().Schedule(
        delay, [shared = std::move(shared), from, frame = std::move(frame)]() mutable {
          RecvFn recv;
          {
            QLockGuard guard(shared->lock);
            if (shared->cut) {
              return;
            }
            Direction& dir = shared->dirs[from];
            dir.stats.frames_delivered.Inc();
            dir.stats.bytes_delivered.Inc(frame.size());
            recv = dir.recv;
          }
          if (recv) {
            recv(std::move(frame));
          }
        });
  };
  if (duplicate) {
    // The copy re-serializes behind the original, so it lands strictly later.
    schedule(shared, from, delay + tx_time + std::chrono::microseconds(1), frame);
  }
  schedule(shared, from, delay, std::move(frame));
  return Status::Ok();
}

const MediaStats& Wire::stats(End from) {
  QLockGuard guard(shared_->lock);
  return shared_->dirs[from].stats;
}

const FaultStats& Wire::fault_stats(End from) {
  QLockGuard guard(shared_->lock);
  return shared_->dirs[from].faults.stats();
}

void Wire::SetPartitioned(bool down) {
  QLockGuard guard(shared_->lock);
  shared_->dirs[kA].faults.SetDown(down);
  shared_->dirs[kB].faults.SetDown(down);
}

void Wire::Cut() {
  QLockGuard guard(shared_->lock);
  shared_->cut = true;
  shared_->dirs[kA].recv = nullptr;
  shared_->dirs[kB].recv = nullptr;
}

}  // namespace plan9

// EtherSegment — a broadcast Ethernet cable.
//
// Stations attach with a 6-byte MAC address and a receive callback.  A frame
// is delivered to the station whose address matches the destination, to all
// stations for the broadcast address, and additionally to any station in
// promiscuous mode (the ether device's snooping interface, §2.2).  The
// segment is a shared medium: one frame serializes at a time.
#ifndef SRC_SIM_ETHER_SEGMENT_H_
#define SRC_SIM_ETHER_SEGMENT_H_

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/thread_annotations.h"
#include "src/base/rand.h"
#include "src/base/result.h"
#include "src/sim/faults.h"
#include "src/sim/medium.h"
#include "src/task/qlock.h"
#include "src/task/timers.h"

namespace plan9 {

using MacAddr = std::array<uint8_t, 6>;

inline constexpr MacAddr kEtherBroadcast = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff};

std::string MacToString(const MacAddr& mac);            // "0800690222f0"
Result<MacAddr> MacFromString(std::string_view s);

// On-the-cable frame layout: dst[6] src[6] type[2,big-endian] payload.
struct EtherFrame {
  MacAddr dst{};
  MacAddr src{};
  uint16_t type = 0;
  Bytes payload;

  Bytes Pack() const;
  static Result<EtherFrame> Unpack(const Bytes& raw);
};
inline constexpr size_t kEtherHeaderSize = 14;

class EtherSegment {
 public:
  using RecvFn = std::function<void(const EtherFrame&)>;
  using StationId = int;

  explicit EtherSegment(LinkParams params = LinkParams::Ether10());
  ~EtherSegment();

  // Attach a station; callbacks run on the timer kproc and must not block.
  StationId Attach(MacAddr mac, RecvFn fn);
  void Detach(StationId id);
  void SetPromiscuous(StationId id, bool on);

  // Queue a frame for transmission on the cable.
  Status Send(const EtherFrame& frame);

  const MediaStats& stats();
  const FaultStats& fault_stats();
  size_t station_count();

  // Temporary partition (the test's hand on the cable): while down, every
  // frame sent drops as a partition loss.  Frames already in flight still
  // arrive — propagation was committed at send time.
  void SetPartitioned(bool down);

 private:
  struct Station {
    StationId id;
    MacAddr mac;
    RecvFn recv;
    bool promiscuous = false;
  };
  struct Shared {
    // A leaf lock: held only across bookkeeping; delivery callbacks run
    // with it dropped.
    QLock lock{"sim.ether"};
    LinkParams params GUARDED_BY(lock);
    Rng rng GUARDED_BY(lock){1};
    FaultInjector faults GUARDED_BY(lock);
    TimerWheel::Clock::time_point busy_until GUARDED_BY(lock);
    MediaStats stats;  // atomic counters; readable without the lock
    std::vector<Station> stations GUARDED_BY(lock);
    StationId next_id GUARDED_BY(lock) = 1;
    bool down GUARDED_BY(lock) = false;
  };

  std::shared_ptr<Shared> shared_;
};

}  // namespace plan9

#endif  // SRC_SIM_ETHER_SEGMENT_H_

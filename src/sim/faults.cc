#include "src/sim/faults.h"

#include "src/base/strings.h"
#include "src/obs/trace.h"

namespace plan9 {

FaultProfile FaultProfile::BurstLoss(double avg_loss) {
  // A bursty channel whose long-run loss averages roughly avg_loss: the
  // chain spends ~1/8 of its time in the Bad state where most frames die.
  FaultProfile p;
  p.loss_good = avg_loss / 4;
  p.loss_bad = std::min(1.0, avg_loss * 6);
  p.p_good_to_bad = 0.02;
  p.p_bad_to_good = 0.15;
  return p;
}

FaultProfile FaultProfile::Reorder(double rate, std::chrono::microseconds jitter) {
  FaultProfile p;
  p.reorder_rate = rate;
  p.reorder_jitter = jitter;
  return p;
}

FaultProfile FaultProfile::Hostile() {
  FaultProfile p = BurstLoss(0.10);
  p.reorder_rate = 0.05;
  p.reorder_jitter = std::chrono::microseconds(2000);
  p.dup_rate = 0.02;
  p.corrupt_rate = 0.01;
  return p;
}

FaultStats::FaultStats() {
  auto& r = obs::MetricsRegistry::Default();
  drops_burst.BindParent(&r.CounterNamed("sim.fault.drops-burst"));
  drops_partition.BindParent(&r.CounterNamed("sim.fault.drops-partition"));
  dups.BindParent(&r.CounterNamed("sim.fault.dups"));
  reorders.BindParent(&r.CounterNamed("sim.fault.reorders"));
  corruptions.BindParent(&r.CounterNamed("sim.fault.corruptions"));
  bad_state_entries.BindParent(&r.CounterNamed("sim.fault.bursts"));
}

void FaultStats::Reset() {
  drops_burst.Reset();
  drops_partition.Reset();
  dups.Reset();
  reorders.Reset();
  corruptions.Reset();
  bad_state_entries.Reset();
}

FaultInjector::FaultInjector(const FaultProfile& profile, uint64_t seed,
                             TimerWheel::Clock::time_point epoch)
    : profile_(profile), rng_(seed ^ 0xfa171a7e5eedULL), epoch_(epoch) {}

void FaultInjector::Reconfigure(const FaultProfile& profile, uint64_t seed,
                                TimerWheel::Clock::time_point epoch) {
  profile_ = profile;
  rng_ = Rng(seed ^ 0xfa171a7e5eedULL);
  epoch_ = epoch;
  bad_state_ = false;
  forced_down_ = false;
  stats_.Reset();
}

bool FaultInjector::ScriptedDown(TimerWheel::Clock::time_point now) const {
  auto since = std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_);
  for (const auto& w : profile_.partitions) {
    if (since >= w.start && since < w.start + w.duration) {
      return true;
    }
  }
  if (profile_.flap_period.count() > 0 && profile_.flap_down.count() > 0) {
    auto phase = since.count() % profile_.flap_period.count();
    if (phase < profile_.flap_down.count()) {
      return true;
    }
  }
  return false;
}

FaultInjector::Decision FaultInjector::Evaluate(TimerWheel::Clock::time_point now,
                                                size_t frame_size) {
  Decision d;
  if (down(now)) {
    stats_.drops_partition.Inc();
    P9_TRACE(obs::TraceKind::kFault, "sim.fault", "drop partition", frame_size);
    d.drop = true;
    return d;
  }
  if (!profile_.Enabled()) {
    return d;
  }
  // Advance the Gilbert–Elliott chain, then sample loss in the new state.
  // The chain advances on every frame even when both loss rates are zero so
  // that adding a second fault mode to a profile does not perturb the
  // replayed decision sequence of the first.
  if (bad_state_) {
    if (rng_.Chance(profile_.p_bad_to_good)) {
      bad_state_ = false;
    }
  } else {
    if (rng_.Chance(profile_.p_good_to_bad)) {
      bad_state_ = true;
      stats_.bad_state_entries.Inc();
    }
  }
  double loss = bad_state_ ? profile_.loss_bad : profile_.loss_good;
  if (loss > 0 && rng_.Chance(loss)) {
    stats_.drops_burst.Inc();
    P9_TRACE(obs::TraceKind::kFault, "sim.fault", "drop burst", frame_size);
    d.drop = true;
    return d;
  }
  if (profile_.corrupt_rate > 0 && rng_.Chance(profile_.corrupt_rate) &&
      frame_size > 0) {
    d.corrupt = true;
    d.corrupt_bit = rng_.Below(frame_size * 8);
    stats_.corruptions.Inc();
    P9_TRACE(obs::TraceKind::kFault, "sim.fault", "corrupt bit", d.corrupt_bit);
  }
  if (profile_.dup_rate > 0 && rng_.Chance(profile_.dup_rate)) {
    d.duplicate = true;
    stats_.dups.Inc();
    P9_TRACE(obs::TraceKind::kFault, "sim.fault", "duplicate", frame_size);
  }
  if (profile_.reorder_rate > 0 && rng_.Chance(profile_.reorder_rate) &&
      profile_.reorder_jitter.count() > 0) {
    d.extra_delay =
        std::chrono::microseconds(1 + rng_.Below(
            static_cast<uint64_t>(profile_.reorder_jitter.count())));
    stats_.reorders.Inc();
    P9_TRACE(obs::TraceKind::kFault, "sim.fault", "reorder",
             static_cast<uint64_t>(d.extra_delay.count()));
  }
  return d;
}

void FaultInjector::ApplyCorruption(Bytes* frame, size_t bit_index) {
  if (frame->empty()) {
    return;
  }
  size_t byte = (bit_index / 8) % frame->size();
  (*frame)[byte] ^= static_cast<uint8_t>(1u << (bit_index % 8));
}

std::string FormatFaultStats(const FaultStats& s, const char* prefix) {
  std::string out;
  auto line = [&](const char* key, uint64_t v) {
    out += StrFormat("%s%s: %llu\n", prefix, key, static_cast<unsigned long long>(v));
  };
  line("drops-burst", s.drops_burst.value());
  line("drops-partition", s.drops_partition.value());
  line("dups", s.dups.value());
  line("reorders", s.reorders.value());
  line("corruptions", s.corruptions.value());
  line("bursts", s.bad_state_entries.value());
  return out;
}

}  // namespace plan9

#include "src/sim/chaos.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <thread>

#include "src/base/rand.h"
#include "src/base/strings.h"
#include "src/dial/dial.h"
#include "src/obs/metrics.h"
#include "src/obs/stitch.h"
#include "src/obs/trace.h"
#include "src/task/kproc.h"
#include "src/task/timers.h"

namespace plan9 {
namespace {

std::atomic<ChaosEngine*> g_current{nullptr};

const char* KindName(ChaosEvent::Kind k) {
  switch (k) {
    case ChaosEvent::Kind::kCrash:
      return "crash";
    case ChaosEvent::Kind::kRestart:
      return "restart";
    case ChaosEvent::Kind::kPartition:
      return "partition";
    case ChaosEvent::Kind::kHeal:
      return "heal";
    case ChaosEvent::Kind::kFlap:
      return "flap";
  }
  return "?";
}

std::optional<ChaosEvent::Kind> KindFromName(std::string_view name) {
  for (ChaosEvent::Kind k :
       {ChaosEvent::Kind::kCrash, ChaosEvent::Kind::kRestart,
        ChaosEvent::Kind::kPartition, ChaosEvent::Kind::kHeal,
        ChaosEvent::Kind::kFlap}) {
    if (name == KindName(k)) {
      return k;
    }
  }
  return std::nullopt;
}

bool IsNodeKind(ChaosEvent::Kind k) {
  return k == ChaosEvent::Kind::kCrash || k == ChaosEvent::Kind::kRestart;
}

// Durations parse as "500ms", "2s" or a bare millisecond count; the
// canonical rendering is always the millisecond form.
std::optional<std::chrono::milliseconds> ParseDuration(std::string_view s) {
  size_t digits = 0;
  while (digits < s.size() && s[digits] >= '0' && s[digits] <= '9') {
    digits++;
  }
  if (digits == 0) {
    return std::nullopt;
  }
  auto n = ParseU64(s.substr(0, digits));
  if (!n.has_value()) {
    return std::nullopt;
  }
  std::string_view unit = s.substr(digits);
  if (unit.empty() || unit == "ms") {
    return std::chrono::milliseconds(*n);
  }
  if (unit == "s") {
    return std::chrono::milliseconds(*n * 1000);
  }
  return std::nullopt;
}

}  // namespace

std::string RenderChaosEvent(const ChaosEvent& ev) {
  std::string line =
      StrFormat("%s t=%llums %s=%s", KindName(ev.kind),
                static_cast<unsigned long long>(ev.at.count()),
                IsNodeKind(ev.kind) ? "node" : "medium", ev.target.c_str());
  if (ev.kind == ChaosEvent::Kind::kFlap) {
    line += StrFormat(" down=%llums",
                      static_cast<unsigned long long>(ev.down.count()));
  }
  return line;
}

ChaosEngine::ChaosEngine() {
  ChaosEngine* expected = nullptr;
  (void)g_current.compare_exchange_strong(expected, this);
  // Chaos runs are forensic by nature: always record lifecycle events.
  obs::FlightRecorder::Default().Enable(
      static_cast<uint32_t>(obs::TraceKind::kChaos));
}

ChaosEngine::~ChaosEngine() {
  ChaosEngine* expected = this;
  (void)g_current.compare_exchange_strong(expected, nullptr);
}

ChaosEngine* ChaosEngine::Current() {
  return g_current.load(std::memory_order_acquire);
}

void ChaosEngine::AddNode(Node* node) {
  QLockGuard guard(lock_);
  nodes_.push_back(node);
}

void ChaosEngine::AddMedium(const std::string& name, EtherSegment* segment) {
  QLockGuard guard(lock_);
  media_.push_back(Medium{name, segment, nullptr});
}

void ChaosEngine::AddMedium(const std::string& name, Wire* wire) {
  QLockGuard guard(lock_);
  media_.push_back(Medium{name, nullptr, wire});
}

Node* ChaosEngine::FindNodeLocked(const std::string& sysname) const {
  for (Node* n : nodes_) {
    if (n->sysname() == sysname) {
      return n;
    }
  }
  return nullptr;
}

ChaosEngine::Medium* ChaosEngine::FindMediumLocked(const std::string& name) {
  for (auto& m : media_) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

Status ChaosEngine::Script(const std::string& text) {
  std::vector<ChaosEvent> events;
  for (const std::string& stmt : GetFields(text, "\n;")) {
    std::string_view line = TrimSpace(stmt);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    auto words = Tokenize(line);
    if (words.empty()) {
      continue;
    }
    auto kind = KindFromName(words[0]);
    if (!kind.has_value()) {
      return Error(StrFormat("chaos: unknown event '%s'", words[0].c_str()));
    }
    ChaosEvent ev;
    ev.kind = *kind;
    bool have_t = false;
    for (size_t i = 1; i < words.size(); i++) {
      auto eq = words[i].find('=');
      if (eq == std::string::npos) {
        return Error(StrFormat("chaos: expected key=value, got '%s'",
                               words[i].c_str()));
      }
      std::string key = words[i].substr(0, eq);
      std::string val = words[i].substr(eq + 1);
      if (key == "t") {
        auto d = ParseDuration(val);
        if (!d.has_value()) {
          return Error(StrFormat("chaos: bad duration '%s'", val.c_str()));
        }
        ev.at = *d;
        have_t = true;
      } else if (key == "down") {
        auto d = ParseDuration(val);
        if (!d.has_value()) {
          return Error(StrFormat("chaos: bad duration '%s'", val.c_str()));
        }
        ev.down = *d;
      } else if (key == "node" || key == "medium") {
        if ((key == "node") != IsNodeKind(ev.kind)) {
          return Error(StrFormat("chaos: %s takes %s=, not %s=",
                                 KindName(ev.kind),
                                 IsNodeKind(ev.kind) ? "node" : "medium",
                                 key.c_str()));
        }
        ev.target = val;
      } else {
        return Error(StrFormat("chaos: unknown key '%s'", key.c_str()));
      }
    }
    if (!have_t || ev.target.empty()) {
      return Error(StrFormat("chaos: %s needs t= and %s=", KindName(ev.kind),
                             IsNodeKind(ev.kind) ? "node" : "medium"));
    }
    events.push_back(std::move(ev));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at < b.at;
                   });
  QLockGuard guard(lock_);
  schedule_ = std::move(events);
  seed_ = 0;
  executed_ = 0;
  return Status::Ok();
}

void ChaosEngine::Seed(uint64_t seed, int events,
                       std::chrono::milliseconds min_gap,
                       std::chrono::milliseconds max_gap) {
  QLockGuard guard(lock_);
  // Deterministic over the *set* of registered names: sort them so the
  // schedule is a pure function of (seed, names), whatever the
  // registration order.
  std::vector<std::string> node_names;
  for (Node* n : nodes_) {
    node_names.push_back(n->sysname());
  }
  std::sort(node_names.begin(), node_names.end());
  std::vector<std::string> medium_names;
  for (auto& m : media_) {
    medium_names.push_back(m.name);
  }
  std::sort(medium_names.begin(), medium_names.end());

  Rng rng(seed);
  if (max_gap < min_gap) {
    max_gap = min_gap;
  }
  auto gap = [&]() {
    return min_gap + std::chrono::milliseconds(rng.Below(
                         static_cast<uint64_t>((max_gap - min_gap).count()) + 1));
  };

  std::set<std::string> crashed;
  std::set<std::string> parted;
  std::vector<ChaosEvent> out;
  std::chrono::milliseconds t{0};
  for (int i = 0; i < events; i++) {
    // Enumerate the sensible moves in deterministic order, pick one.
    std::vector<ChaosEvent> moves;
    for (const auto& name : node_names) {
      ChaosEvent ev;
      ev.kind = crashed.count(name) ? ChaosEvent::Kind::kRestart
                                    : ChaosEvent::Kind::kCrash;
      ev.target = name;
      moves.push_back(ev);
    }
    for (const auto& name : medium_names) {
      ChaosEvent ev;
      ev.target = name;
      if (parted.count(name)) {
        ev.kind = ChaosEvent::Kind::kHeal;
        moves.push_back(ev);
      } else {
        ev.kind = ChaosEvent::Kind::kPartition;
        moves.push_back(ev);
        ev.kind = ChaosEvent::Kind::kFlap;
        ev.down = std::chrono::milliseconds(1 + rng.Below(
                      static_cast<uint64_t>(min_gap.count()) + 1));
        moves.push_back(ev);
      }
    }
    if (moves.empty()) {
      break;
    }
    t += gap();
    ChaosEvent ev = moves[rng.Below(moves.size())];
    ev.at = t;
    if (ev.kind == ChaosEvent::Kind::kCrash) {
      crashed.insert(ev.target);
    } else if (ev.kind == ChaosEvent::Kind::kRestart) {
      crashed.erase(ev.target);
    } else if (ev.kind == ChaosEvent::Kind::kPartition) {
      parted.insert(ev.target);
    } else if (ev.kind == ChaosEvent::Kind::kHeal) {
      parted.erase(ev.target);
    }
    out.push_back(std::move(ev));
  }
  // End balanced: heal every partition, restart every crashed node, so the
  // invariant checker meets a world that can recover.
  for (const auto& name : parted) {
    t += gap();
    ChaosEvent ev;
    ev.at = t;
    ev.kind = ChaosEvent::Kind::kHeal;
    ev.target = name;
    out.push_back(std::move(ev));
  }
  for (const auto& name : crashed) {
    t += gap();
    ChaosEvent ev;
    ev.at = t;
    ev.kind = ChaosEvent::Kind::kRestart;
    ev.target = name;
    out.push_back(std::move(ev));
  }
  schedule_ = std::move(out);
  seed_ = seed;
  executed_ = 0;
}

void ChaosEngine::ClearSchedule() {
  QLockGuard guard(lock_);
  schedule_.clear();
  seed_ = 0;
  executed_ = 0;
}

uint64_t ChaosEngine::seed() const {
  QLockGuard guard(lock_);
  return seed_;
}

size_t ChaosEngine::EventCount() const {
  QLockGuard guard(lock_);
  return schedule_.size();
}

std::string ChaosEngine::ScheduleText() const {
  QLockGuard guard(lock_);
  std::string out;
  for (const auto& ev : schedule_) {
    out += RenderChaosEvent(ev);
    out += "\n";
  }
  return out;
}

Status ChaosEngine::Run() {
  std::vector<ChaosEvent> sched;
  {
    QLockGuard guard(lock_);
    sched = schedule_;
    executed_ = 0;
  }
  auto start = TimerWheel::Clock::now();
  for (const auto& ev : sched) {
    std::this_thread::sleep_until(start + ev.at);
    Status s = Fire(ev);
    if (!s.ok()) {
      return Error(StrFormat("chaos: '%s': %s", RenderChaosEvent(ev).c_str(),
                             s.error().message().c_str()));
    }
    QLockGuard guard(lock_);
    executed_++;
  }
  return Status::Ok();
}

Status ChaosEngine::SetMediumDown(const std::string& name, bool down) {
  EtherSegment* segment = nullptr;
  Wire* wire = nullptr;
  {
    QLockGuard guard(lock_);
    Medium* m = FindMediumLocked(name);
    if (m == nullptr) {
      return Error(StrFormat("chaos: no medium '%s'", name.c_str()));
    }
    segment = m->segment;
    wire = m->wire;
    auto it = std::find(down_media_.begin(), down_media_.end(), name);
    if (down && it == down_media_.end()) {
      down_media_.push_back(name);
    } else if (!down && it != down_media_.end()) {
      down_media_.erase(it);
    }
  }
  if (segment != nullptr) {
    segment->SetPartitioned(down);
  }
  if (wire != nullptr) {
    wire->SetPartitioned(down);
  }
  return Status::Ok();
}

Status ChaosEngine::Fire(const ChaosEvent& ev) {
  auto& registry = obs::MetricsRegistry::Default();
  registry.CounterNamed("chaos.sched.events").Inc();
  P9_TRACE(obs::TraceKind::kChaos, "chaos", RenderChaosEvent(ev));
  switch (ev.kind) {
    case ChaosEvent::Kind::kCrash:
    case ChaosEvent::Kind::kRestart: {
      Node* node;
      {
        QLockGuard guard(lock_);
        node = FindNodeLocked(ev.target);
      }
      if (node == nullptr) {
        return Error(StrFormat("chaos: no node '%s'", ev.target.c_str()));
      }
      if (ev.kind == ChaosEvent::Kind::kCrash) {
        node->Crash();
        return Status::Ok();
      }
      return node->Restart();
    }
    case ChaosEvent::Kind::kPartition:
      registry.CounterNamed("chaos.sched.partitions").Inc();
      return SetMediumDown(ev.target, true);
    case ChaosEvent::Kind::kHeal:
      registry.CounterNamed("chaos.sched.heals").Inc();
      return SetMediumDown(ev.target, false);
    case ChaosEvent::Kind::kFlap: {
      registry.CounterNamed("chaos.sched.flaps").Inc();
      P9_RETURN_IF_ERROR(SetMediumDown(ev.target, true));
      std::this_thread::sleep_for(ev.down);
      return SetMediumDown(ev.target, false);
    }
  }
  return Error("chaos: bad event");
}

Status ChaosEngine::Ctl(const std::string& msg) {
  std::string_view trimmed = TrimSpace(msg);
  if (HasPrefix(trimmed, "script")) {
    return Script(std::string(trimmed.substr(6)));
  }
  auto words = Tokenize(trimmed);
  if (words.empty()) {
    return Error("chaos: empty ctl message");
  }
  if (words[0] == "run") {
    return Run();
  }
  if (words[0] == "clear") {
    ClearSchedule();
    return Status::Ok();
  }
  if (words[0] == "seed") {
    if (words.size() < 2) {
      return Error("usage: seed <n> [events [min-gap [max-gap]]]");
    }
    auto seed = ParseU64(words[1]);
    if (!seed.has_value()) {
      return Error(StrFormat("chaos: bad seed '%s'", words[1].c_str()));
    }
    uint64_t events = 8;
    auto min_gap = std::chrono::milliseconds(100);
    auto max_gap = std::chrono::milliseconds(400);
    if (words.size() > 2) {
      auto n = ParseU64(words[2]);
      if (!n.has_value()) {
        return Error(StrFormat("chaos: bad event count '%s'", words[2].c_str()));
      }
      events = *n;
    }
    if (words.size() > 3) {
      auto d = ParseDuration(words[3]);
      if (!d.has_value()) {
        return Error(StrFormat("chaos: bad duration '%s'", words[3].c_str()));
      }
      min_gap = *d;
    }
    if (words.size() > 4) {
      auto d = ParseDuration(words[4]);
      if (!d.has_value()) {
        return Error(StrFormat("chaos: bad duration '%s'", words[4].c_str()));
      }
      max_gap = *d;
    }
    Seed(*seed, static_cast<int>(events), min_gap, max_gap);
    return Status::Ok();
  }
  // Immediate events: "crash gnot", "flap ether0 200ms".
  auto kind = KindFromName(words[0]);
  if (!kind.has_value()) {
    return Error(StrFormat("chaos: unknown ctl message '%s'", words[0].c_str()));
  }
  if (words.size() < 2) {
    return Error(StrFormat("usage: %s <%s>", words[0].c_str(),
                           IsNodeKind(*kind) ? "node" : "medium"));
  }
  ChaosEvent ev;
  ev.kind = *kind;
  ev.target = words[1];
  if (*kind == ChaosEvent::Kind::kFlap) {
    if (words.size() < 3) {
      return Error("usage: flap <medium> <down>");
    }
    auto d = ParseDuration(words[2]);
    if (!d.has_value()) {
      return Error(StrFormat("chaos: bad duration '%s'", words[2].c_str()));
    }
    ev.down = *d;
  }
  return Fire(ev);
}

std::string ChaosEngine::StatusText() const {
  QLockGuard guard(lock_);
  std::string out = StrFormat(
      "# chaos seed=%llu events=%zu executed=%zu\n",
      static_cast<unsigned long long>(seed_), schedule_.size(), executed_);
  for (Node* n : nodes_) {
    out += StrFormat("# node %s %s gen=%d\n", n->sysname().c_str(),
                     n->alive() ? "alive" : "dead", n->generation());
  }
  for (const auto& m : media_) {
    bool down = std::find(down_media_.begin(), down_media_.end(), m.name) !=
                down_media_.end();
    out += StrFormat("# medium %s %s\n", m.name.c_str(), down ? "down" : "up");
  }
  for (const auto& ev : schedule_) {
    out += RenderChaosEvent(ev);
    out += "\n";
  }
  return out;
}

// --------------------------------------------------------------------------
// InvariantChecker
// --------------------------------------------------------------------------

InvariantChecker::InvariantChecker() : baseline_kprocs_(Kproc::LiveCount()) {}

void InvariantChecker::WatchNode(Node* node) { nodes_.push_back(node); }

void InvariantChecker::ExpectService(Node* via, const std::string& addr) {
  services_.push_back(ServiceProbe{via, addr});
}

void InvariantChecker::ExpectMount(Proc* proc, const std::string& path) {
  mounts_.push_back(MountProbe{proc, path});
}

namespace {

// A conversation parked in one of these states after recovery is stuck: it
// is mid-handshake or mid-close with a peer that will never answer.
// Established, Listen, Closed, Time_wait are all legitimate at rest.
bool StuckState(const std::string& state) {
  static const char* kStuck[] = {"Syncer",   "Syncee",   "Closing",
                                 "Syn_sent", "Syn_rcvd", "Finwait1",
                                 "Finwait2", "Last_ack"};
  for (const char* s : kStuck) {
    if (state == s) {
      return true;
    }
  }
  return false;
}

// Scan one protocol device's conversations via their status lines (the
// file-system idiom: state is the third field of `cat status`).
Status ScanProto(NetProto* proto, const std::string& sysname) {
  if (proto == nullptr) {
    return Status::Ok();
  }
  for (size_t i = 0; i < proto->ConvCount(); i++) {
    NetConv* conv = proto->Conv(i);
    if (conv == nullptr) {
      continue;
    }
    std::string status = conv->StatusText();
    auto words = Tokenize(status);
    if (words.size() >= 3 && StuckState(words[2])) {
      std::string line(TrimSpace(status));
      return Error(StrFormat("stuck conversation on %s: %s", sysname.c_str(),
                             line.c_str()));
    }
  }
  return Status::Ok();
}

// A stuck-conversation failure names the trace that dialed the conversation
// (the status line's "trace <32 hex>" note).  Dump that trace's stitched
// span tree to stderr so the failure arrives with its causal history
// attached — which hop stalled, and how long each one took.
void DumpStuckTrace(const std::string& error_message) {
  auto pos = error_message.find(" trace ");
  if (pos == std::string::npos) {
    return;
  }
  std::string id = error_message.substr(pos + 7, 32);
  if (id.size() != 32) {
    return;
  }
  auto spans = obs::ParseSpans(obs::FlightRecorder::Default().RenderText(
      static_cast<uint32_t>(obs::TraceKind::kSpan)));
  for (const auto& tree : obs::StitchSpans(spans)) {
    if (tree.trace != id) {
      continue;
    }
    std::fprintf(stderr, "stuck conversation trace %s:\n%s", id.c_str(),
                 obs::RenderSpanTree(tree).c_str());
    return;
  }
  std::fprintf(stderr, "stuck conversation trace %s: no spans recorded\n",
               id.c_str());
}

}  // namespace

Status InvariantChecker::QuiescedOnce() {
  for (Node* n : nodes_) {
    if (!n->alive()) {
      continue;  // a dead node's kernel is in the graveyard, all convs closed
    }
    P9_RETURN_IF_ERROR(ScanProto(n->il(), n->sysname()));
    P9_RETURN_IF_ERROR(ScanProto(n->tcp(), n->sysname()));
    P9_RETURN_IF_ERROR(ScanProto(n->dk(), n->sysname()));
  }
  int live = Kproc::LiveCount();
  if (live > baseline_kprocs_) {
    return Error(StrFormat("kproc leak: %d live, baseline %d", live,
                           baseline_kprocs_));
  }
  return Status::Ok();
}

Status InvariantChecker::Check(std::chrono::milliseconds deadline) {
  auto until = TimerWheel::Clock::now() + deadline;
  // Quiescence first: stuck convs and leaked kprocs need time to drain
  // (deadman timers, joining service kprocs), so poll.
  for (;;) {
    Status s = QuiescedOnce();
    if (s.ok()) {
      break;
    }
    if (TimerWheel::Clock::now() >= until) {
      DumpStuckTrace(s.error().message());
      return s;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  // Every expected service answers a dial through its node's own /net.
  for (const auto& probe : services_) {
    if (!probe.via->alive()) {
      return Error(StrFormat("service %s: node %s is down", probe.addr.c_str(),
                             probe.via->sysname().c_str()));
    }
    auto proc = probe.via->NewProc();
    if (proc == nullptr) {
      return Error(StrFormat("service %s: node %s has no kernel",
                             probe.addr.c_str(), probe.via->sysname().c_str()));
    }
    DialOptions opts;
    opts.attempts = 8;
    opts.backoff = std::chrono::milliseconds(50);
    opts.max_backoff = std::chrono::milliseconds(400);
    auto fd = Dial(proc.get(), probe.addr, opts);
    if (!fd.ok()) {
      return Error(StrFormat("service %s unreachable after recovery: %s",
                             probe.addr.c_str(),
                             fd.error().message().c_str()));
    }
    (void)proc->Close(*fd);
  }
  // Every expected mount *returns* — success or a clean error; only a hang
  // violates (and surfaces as this call never returning).
  for (const auto& probe : mounts_) {
    (void)probe.proc->Stat(probe.path);
  }
  return Status::Ok();
}

}  // namespace plan9

// Chaos engine — replayable crash/partition schedules + recovery invariants.
//
// The paper's design claims are recovery claims: IL's deadman "kills off"
// connections to dead peers, the dial library retries, importers redial and
// remount.  The chaos engine exercises them end to end by composing node
// crashes/restarts (Node::Crash/Restart), rolling partitions and link flaps
// (the fault layer's SetPartitioned) into one deterministic schedule.
//
// A schedule is either scripted —
//
//   crash t=500ms node=gnot
//   partition t=1000ms medium=ether0
//   heal t=2000ms medium=ether0
//   restart t=2500ms node=gnot
//   flap t=3000ms medium=ether0 down=200ms
//
// (statements separated by newlines or ';'; '#' lines are comments) — or
// generated from a seed over the registered nodes and media.  Generation is
// purely a function of (seed, registered names), so a failing run replays
// byte-for-byte from the seed its test prints: ScheduleText() renders the
// canonical form, and Script(ScheduleText()) reproduces it exactly.
//
// Every fired event lands in the flight recorder (TraceKind::kChaos) and
// bumps the chaos.sched.* counters; the engine is readable and drivable
// through /net/chaos in the usual ctl-file idiom (see devproto).
//
// The InvariantChecker closes the loop: after a chaos round (and at
// teardown) it asserts the world actually recovered — no conversation stuck
// mid-handshake or mid-close, no leaked kprocs beyond its baseline, every
// expected service dialable, every expected mount answering (successfully
// or with a clean error — anything but a hang).
#ifndef SRC_SIM_CHAOS_H_
#define SRC_SIM_CHAOS_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/thread_annotations.h"
#include "src/sim/ether_segment.h"
#include "src/sim/wire.h"
#include "src/task/qlock.h"
#include "src/world/node.h"

namespace plan9 {

struct ChaosEvent {
  enum class Kind { kCrash, kRestart, kPartition, kHeal, kFlap };

  std::chrono::milliseconds at{0};  // offset from Run() start
  Kind kind = Kind::kCrash;
  std::string target;                 // node sysname or medium name
  std::chrono::milliseconds down{0};  // kFlap: outage length
};

// Canonical one-line rendering ("crash t=500ms node=gnot"); parsing this
// back yields an identical event — the replay contract.
std::string RenderChaosEvent(const ChaosEvent& ev);

class ChaosEngine {
 public:
  ChaosEngine();
  ~ChaosEngine();

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  // The most recently constructed engine, for /net/chaos; null when none.
  static ChaosEngine* Current();

  // --- registration ---------------------------------------------------------
  // Targets events may name.  Registration order does not matter: seeded
  // generation sorts names so the schedule is a function of the set.

  void AddNode(Node* node);
  void AddMedium(const std::string& name, EtherSegment* segment);
  void AddMedium(const std::string& name, Wire* wire);

  // --- schedule building ----------------------------------------------------

  // Replace the schedule with the parsed script (grammar above).  Events
  // need not be time-sorted in the text; they execute sorted, ties in text
  // order.
  Status Script(const std::string& text);

  // Replace the schedule with `events` seeded events spaced uniformly in
  // [min_gap, max_gap], over the registered targets.  Only sensible events
  // are generated (a crashed node restarts, a partitioned medium heals) and
  // the schedule ends balanced: everything crashed restarts, everything
  // partitioned heals.
  void Seed(uint64_t seed, int events,
            std::chrono::milliseconds min_gap = std::chrono::milliseconds(100),
            std::chrono::milliseconds max_gap = std::chrono::milliseconds(400));

  void ClearSchedule();
  uint64_t seed() const;
  size_t EventCount() const;

  // The whole schedule in canonical form, one event per line.
  std::string ScheduleText() const;

  // --- execution ------------------------------------------------------------

  // Execute the schedule synchronously: sleep to each event's offset, fire
  // it.  Returns the first failure (unknown target, restart of a live node).
  Status Run() MAY_BLOCK;

  // Apply one event immediately (Run's worker; also the ctl file's
  // immediate commands).
  Status Fire(const ChaosEvent& ev) MAY_BLOCK;

  // --- /net/chaos -----------------------------------------------------------
  // Ctl grammar:
  //   crash <node>          restart <node>
  //   partition <medium>    heal <medium>      flap <medium> <down>
  //   seed <n> [events [min-gap [max-gap]]]
  //   script <schedule...>  (rest of the message, newline/';' separated)
  //   run                   (blocks until the schedule completes)
  //   clear
  Status Ctl(const std::string& msg) MAY_BLOCK;

  // '#'-prefixed state summary (seed, progress, node/medium state) followed
  // by the canonical schedule — so `cat /net/chaos` output can be written
  // back through `script` to replay.
  std::string StatusText() const;

 private:
  struct Medium {
    std::string name;
    EtherSegment* segment = nullptr;
    Wire* wire = nullptr;
  };

  Node* FindNodeLocked(const std::string& sysname) const REQUIRES(lock_);
  Medium* FindMediumLocked(const std::string& name) REQUIRES(lock_);
  Status SetMediumDown(const std::string& name, bool down);

  mutable QLock lock_{"chaos.engine"};
  std::vector<Node*> nodes_ GUARDED_BY(lock_);
  std::vector<Medium> media_ GUARDED_BY(lock_);
  std::vector<ChaosEvent> schedule_ GUARDED_BY(lock_);
  uint64_t seed_ GUARDED_BY(lock_) = 0;
  size_t executed_ GUARDED_BY(lock_) = 0;
  // Which media this engine has forced down (for StatusText and balance).
  std::vector<std::string> down_media_ GUARDED_BY(lock_);
};

// Post-chaos recovery invariants.  Construct while the world is healthy
// (the kproc baseline is captured then), register expectations, Check after
// each chaos round and at teardown.
class InvariantChecker {
 public:
  InvariantChecker();

  // Scan this node's protocol conversations for stuck states.
  void WatchNode(Node* node);
  // After recovery, `addr` must be dialable through `via`'s name space.
  void ExpectService(Node* via, const std::string& addr);
  // After recovery, a stat of `path` in `proc` must *return* — recovered
  // mounts answer, cleanly-failed mounts error; only a hang is a violation
  // (and shows up as Check never returning, caught by the test timeout).
  void ExpectMount(Proc* proc, const std::string& path);

  // Polls until every invariant holds or `deadline` elapses; returns the
  // first still-violated invariant on timeout.
  Status Check(std::chrono::milliseconds deadline) MAY_BLOCK;

  int baseline_kprocs() const { return baseline_kprocs_; }

 private:
  struct ServiceProbe {
    Node* via;
    std::string addr;
  };
  struct MountProbe {
    Proc* proc;
    std::string path;
  };

  // One non-blocking pass over the quiescence invariants (stuck convs,
  // kproc leak); ok when all hold right now.
  Status QuiescedOnce();

  int baseline_kprocs_;
  std::vector<Node*> nodes_;
  std::vector<ServiceProbe> services_;
  std::vector<MountProbe> mounts_;
};

}  // namespace plan9

#endif  // SRC_SIM_CHAOS_H_

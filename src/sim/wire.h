// Wire — a full-duplex point-to-point framed link.
//
// Models the paper's point-to-point media (Cyclone fiber between file and
// CPU servers, serial lines, ISDN): each direction serializes frames at the
// configured bandwidth, delays them by the propagation latency, and may drop
// them.  Delivery callbacks run on the shared timer kproc and must not block.
#ifndef SRC_SIM_WIRE_H_
#define SRC_SIM_WIRE_H_

#include <functional>
#include <memory>

#include "src/base/bytes.h"
#include "src/base/thread_annotations.h"
#include "src/base/rand.h"
#include "src/base/result.h"
#include "src/sim/faults.h"
#include "src/sim/medium.h"
#include "src/task/qlock.h"
#include "src/task/timers.h"

namespace plan9 {

class Wire {
 public:
  using RecvFn = std::function<void(Bytes frame)>;
  enum End { kA = 0, kB = 1 };

  explicit Wire(LinkParams params) : Wire(params, params) {}
  Wire(LinkParams a_to_b, LinkParams b_to_a);
  ~Wire();

  // Install the receive callback for one end.  Frames sent from the other
  // end are delivered to it after serialization + latency.
  void Attach(End end, RecvFn fn);
  void Detach(End end);

  // Transmit a frame from `from`; fails only on oversize.  Loss is silent
  // (the frame is counted dropped, never delivered) — real media don't
  // report collisions to software either.
  Status Send(End from, Bytes frame);

  const MediaStats& stats(End from);
  const FaultStats& fault_stats(End from);

  // Sever the link: nothing further is delivered in either direction.
  void Cut();

  // Temporary partition (the test's hand on the cable): while down, frames
  // sent in either direction drop as partition losses.  Frames already in
  // flight still arrive — propagation was committed at send time.
  void SetPartitioned(bool down);

 private:
  struct Direction {
    LinkParams params;
    Rng rng;
    FaultInjector faults;
    TimerWheel::Clock::time_point busy_until;
    MediaStats stats;  // atomic counters; readable without the lock
    RecvFn recv;  // callback of the *receiving* end
  };

  struct Shared;
  std::shared_ptr<Shared> shared_;
};

}  // namespace plan9

#endif  // SRC_SIM_WIRE_H_

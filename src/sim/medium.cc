#include "src/sim/medium.h"

namespace plan9 {

MediaStats::MediaStats() {
  auto& r = obs::MetricsRegistry::Default();
  frames_sent.BindParent(&r.CounterNamed("sim.media.frames-sent"));
  frames_delivered.BindParent(&r.CounterNamed("sim.media.frames-delivered"));
  frames_dropped.BindParent(&r.CounterNamed("sim.media.frames-dropped"));
  bytes_sent.BindParent(&r.CounterNamed("sim.media.bytes-sent"));
  bytes_delivered.BindParent(&r.CounterNamed("sim.media.bytes-delivered"));
  send_errors.BindParent(&r.CounterNamed("sim.media.send-errors"));
}

}  // namespace plan9

#include "src/sim/ether_segment.h"

#include <algorithm>

#include "src/base/strings.h"

namespace plan9 {

std::string MacToString(const MacAddr& mac) {
  std::string out;
  for (uint8_t b : mac) {
    out += StrFormat("%02x", b);
  }
  return out;
}

Result<MacAddr> MacFromString(std::string_view s) {
  // Accept "0800690222f0" and "08:00:69:02:22:f0".
  std::string hex;
  for (char c : s) {
    if (c == ':') {
      continue;
    }
    hex.push_back(c);
  }
  if (hex.size() != 12) {
    return Error(kErrBadAddr);
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') {
      return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
      return c - 'a' + 10;
    }
    if (c >= 'A' && c <= 'F') {
      return c - 'A' + 10;
    }
    return -1;
  };
  MacAddr mac{};
  for (size_t i = 0; i < 6; i++) {
    int hi = nibble(hex[2 * i]);
    int lo = nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      return Error(kErrBadAddr);
    }
    mac[i] = static_cast<uint8_t>(hi << 4 | lo);
  }
  return mac;
}

Bytes EtherFrame::Pack() const {
  Bytes out;
  out.reserve(kEtherHeaderSize + payload.size());
  out.insert(out.end(), dst.begin(), dst.end());
  out.insert(out.end(), src.begin(), src.end());
  out.push_back(static_cast<uint8_t>(type >> 8));  // Ethernet types are big-endian
  out.push_back(static_cast<uint8_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<EtherFrame> EtherFrame::Unpack(const Bytes& raw) {
  if (raw.size() < kEtherHeaderSize) {
    return Error("short ether frame");
  }
  EtherFrame f;
  std::copy_n(raw.begin(), 6, f.dst.begin());
  std::copy_n(raw.begin() + 6, 6, f.src.begin());
  f.type = static_cast<uint16_t>(raw[12] << 8 | raw[13]);
  f.payload.assign(raw.begin() + kEtherHeaderSize, raw.end());
  return f;
}

EtherSegment::EtherSegment(LinkParams params) : shared_(std::make_shared<Shared>()) {
  auto now = TimerWheel::Clock::now();
  shared_->params = params;
  shared_->rng = Rng(params.seed);
  shared_->faults.Reconfigure(params.faults, params.seed, now);
  shared_->busy_until = now;
}

EtherSegment::~EtherSegment() {
  QLockGuard guard(shared_->lock);
  shared_->down = true;
  shared_->stations.clear();
}

EtherSegment::StationId EtherSegment::Attach(MacAddr mac, RecvFn fn) {
  QLockGuard guard(shared_->lock);
  StationId id = shared_->next_id++;
  shared_->stations.push_back(Station{id, mac, std::move(fn), false});
  return id;
}

void EtherSegment::Detach(StationId id) {
  QLockGuard guard(shared_->lock);
  auto& v = shared_->stations;
  v.erase(std::remove_if(v.begin(), v.end(), [&](const Station& s) { return s.id == id; }),
          v.end());
}

void EtherSegment::SetPromiscuous(StationId id, bool on) {
  QLockGuard guard(shared_->lock);
  for (auto& s : shared_->stations) {
    if (s.id == id) {
      s.promiscuous = on;
    }
  }
}

Status EtherSegment::Send(const EtherFrame& frame) {
  auto shared = shared_;
  TimerWheel::Clock::duration delay;
  TimerWheel::Clock::duration tx_time{0};
  size_t frame_size = kEtherHeaderSize + frame.payload.size();
  EtherFrame delivered = frame;
  bool duplicate = false;
  {
    QLockGuard guard(shared->lock);
    if (shared->down) {
      return Error(kErrShutdown);
    }
    if (frame_size > shared->params.mtu) {
      shared->stats.send_errors.Inc();
      return Error(StrFormat("frame too large for medium (%zu > %zu)", frame_size,
                             shared->params.mtu));
    }
    shared->stats.frames_sent.Inc();
    shared->stats.bytes_sent.Inc(frame_size);
    if (shared->params.loss_rate > 0 && shared->rng.Chance(shared->params.loss_rate)) {
      shared->stats.frames_dropped.Inc();
      return Status::Ok();
    }
    auto now = TimerWheel::Clock::now();
    auto fault = shared->faults.Evaluate(now, delivered.payload.size());
    if (fault.drop) {
      shared->stats.frames_dropped.Inc();
      return Status::Ok();
    }
    if (fault.corrupt) {
      // Damage the payload, not the header: a corrupted destination would
      // just look like loss, which the burst model already covers.
      FaultInjector::ApplyCorruption(&delivered.payload, fault.corrupt_bit);
    }
    duplicate = fault.duplicate;
    if (shared->params.bandwidth_bps > 0) {
      tx_time = std::chrono::nanoseconds(frame_size * 8ULL * 1'000'000'000ULL /
                                         shared->params.bandwidth_bps);
    }
    auto start = std::max(now, shared->busy_until);
    shared->busy_until = start + tx_time;
    delay = (shared->busy_until + shared->params.latency) - now + fault.extra_delay;
  }
  auto deliver = [shared, frame = std::move(delivered)]() {
    std::vector<RecvFn> receivers;
    {
      QLockGuard guard(shared->lock);
      if (shared->down) {
        return;
      }
      for (auto& s : shared->stations) {
        bool match = s.mac == frame.dst || frame.dst == kEtherBroadcast || s.promiscuous;
        // A station never hears its own transmission back.
        if (match && s.mac != frame.src && s.recv) {
          receivers.push_back(s.recv);
        }
      }
      if (!receivers.empty()) {
        shared->stats.frames_delivered.Inc();
        shared->stats.bytes_delivered.Inc(kEtherHeaderSize + frame.payload.size());
      }
    }
    for (auto& recv : receivers) {
      recv(frame);
    }
  };
  if (duplicate) {
    // The copy re-serializes behind the original, so it lands strictly later.
    TimerWheel::Default().Schedule(delay + tx_time + std::chrono::microseconds(1),
                                   deliver);
  }
  TimerWheel::Default().Schedule(delay, std::move(deliver));
  return Status::Ok();
}

const MediaStats& EtherSegment::stats() {
  QLockGuard guard(shared_->lock);
  return shared_->stats;
}

const FaultStats& EtherSegment::fault_stats() {
  QLockGuard guard(shared_->lock);
  return shared_->faults.stats();
}

void EtherSegment::SetPartitioned(bool down) {
  QLockGuard guard(shared_->lock);
  shared_->faults.SetDown(down);
}

size_t EtherSegment::station_count() {
  QLockGuard guard(shared_->lock);
  return shared_->stations.size();
}

}  // namespace plan9

// Fault injection for simulated media.
//
// The paper's claim that 9P runs "over any reliable, delimited transport"
// and that IL's query-based retransmission keeps connections alive on lossy
// long-haul links is only demonstrable under adversarial link conditions.
// A FaultProfile describes an adversary: Gilbert–Elliott loss bursts,
// frame duplication, reordering (per-frame jitter), bit corruption, and
// scripted partitions/flaps.  Every decision draws from a seeded Rng so a
// failing run replays exactly — same seed, same delivery trace.
//
// A FaultInjector is embedded in a medium (Wire direction, EtherSegment)
// and consulted once per frame *under the medium's lock*; it keeps no lock
// of its own.  Partition scheduling is expressed in time-since-creation so
// two injectors built together see the same script.
#ifndef SRC_SIM_FAULTS_H_
#define SRC_SIM_FAULTS_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/rand.h"
#include "src/obs/metrics.h"
#include "src/task/timers.h"

namespace plan9 {

// One scripted outage: the link is dead during [start, start + duration),
// measured from injector creation (i.e. medium construction).
struct PartitionWindow {
  std::chrono::milliseconds start{0};
  std::chrono::milliseconds duration{0};
};

struct FaultProfile {
  // --- loss ---------------------------------------------------------------
  // Gilbert–Elliott two-state burst model.  In the Good state frames drop
  // with probability loss_good; in the Bad state with loss_bad.  After each
  // frame the chain transitions Good->Bad with p_good_to_bad and Bad->Good
  // with p_bad_to_good.  (loss_good=loss_bad reduces to uniform loss; the
  // plain LinkParams::loss_rate remains as the legacy uniform knob and is
  // applied independently.)
  double loss_good = 0.0;
  double loss_bad = 0.0;
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;

  // --- duplication --------------------------------------------------------
  // Probability a delivered frame arrives twice (the copy re-serializes, so
  // it lands strictly later).
  double dup_rate = 0.0;

  // --- reordering ---------------------------------------------------------
  // Probability a frame is held back by an extra uniformly random delay in
  // (0, reorder_jitter], letting later frames overtake it.
  double reorder_rate = 0.0;
  std::chrono::microseconds reorder_jitter{0};

  // --- corruption ---------------------------------------------------------
  // Probability one random bit of the frame is flipped in flight.  Media
  // deliver the damaged frame; protocol checksums must catch it.
  double corrupt_rate = 0.0;

  // --- partitions ---------------------------------------------------------
  // Scripted outages (both directions of a Wire share the script since both
  // directions share LinkParams-by-default construction).
  std::vector<PartitionWindow> partitions;
  // Periodic flapping: every flap_period the link goes down for flap_down.
  // Zero period disables.  Applied in addition to `partitions`.
  std::chrono::milliseconds flap_period{0};
  std::chrono::milliseconds flap_down{0};

  bool Enabled() const {
    return loss_good > 0 || loss_bad > 0 || dup_rate > 0 || reorder_rate > 0 ||
           corrupt_rate > 0 || !partitions.empty() || flap_period.count() > 0;
  }

  // Canned adversaries used by tests, benches, and the CI fault matrix.
  static FaultProfile BurstLoss(double avg_loss);
  static FaultProfile Reorder(double rate, std::chrono::microseconds jitter);
  static FaultProfile Hostile();  // burst loss + reorder + dup + corruption
};

// Per-cause counters; media expose these next to MediaStats in their
// `stats` files so tests and benches can assert on recovery behaviour.
// Registry-backed: each increment also feeds the process-wide sim.fault.*
// aggregate in /net/stats.  Atomic, so readable without the medium's lock.
struct FaultStats {
  FaultStats();

  obs::Counter drops_burst;      // Gilbert–Elliott losses
  obs::Counter drops_partition;  // scripted/forced outage losses
  obs::Counter dups;             // frames delivered twice
  obs::Counter reorders;         // frames held back by jitter
  obs::Counter corruptions;      // frames with a flipped bit
  obs::Counter bad_state_entries;  // Good->Bad transitions (burst count)

  void Reset();  // this injector only; the aggregates keep counting
};

class FaultInjector {
 public:
  // `epoch` anchors the partition script; media pass their construction
  // time so paired directions agree on when windows open.
  FaultInjector() : FaultInjector(FaultProfile{}, 1, TimerWheel::Clock::now()) {}
  FaultInjector(const FaultProfile& profile, uint64_t seed,
                TimerWheel::Clock::time_point epoch);

  // Re-arm in place (media reconfigure their embedded injector: the atomic
  // counters make FaultInjector non-assignable).  Resets the chain state,
  // the Rng, and this injector's counters.
  void Reconfigure(const FaultProfile& profile, uint64_t seed,
                   TimerWheel::Clock::time_point epoch);

  // The verdict for one frame.  NOT thread safe: call under the medium's
  // lock, exactly once per frame sent (every call advances the Rng).
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    size_t corrupt_bit = 0;  // valid when corrupt: absolute bit index
    std::chrono::microseconds extra_delay{0};  // valid when held for reorder
  };
  Decision Evaluate(TimerWheel::Clock::time_point now, size_t frame_size);

  // Flip the decided bit in place (helper so media share one definition).
  static void ApplyCorruption(Bytes* frame, size_t bit_index);

  // Manual partition control (the test's hand on the cable): while down,
  // every frame drops as a partition loss, independent of the script.
  void SetDown(bool down) { forced_down_ = down; }
  bool down(TimerWheel::Clock::time_point now) const {
    return forced_down_ || ScriptedDown(now);
  }

  const FaultStats& stats() const { return stats_; }
  const FaultProfile& profile() const { return profile_; }

 private:
  bool ScriptedDown(TimerWheel::Clock::time_point now) const;

  FaultProfile profile_;
  Rng rng_;
  TimerWheel::Clock::time_point epoch_;
  bool bad_state_ = false;  // Gilbert–Elliott chain state
  bool forced_down_ = false;
  FaultStats stats_;
};

// Render the counters as `key: value` lines for a stats file; `prefix` is
// prepended to each key ("fault-drops-burst: 3\n" ...).  Lines with zero
// counts are included so parsers see a stable schema.
std::string FormatFaultStats(const FaultStats& s, const char* prefix = "fault-");

}  // namespace plan9

#endif  // SRC_SIM_FAULTS_H_

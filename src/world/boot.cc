#include "src/world/boot.h"

namespace plan9 {
namespace {

// The actual boot work, shared by the first boot and every Restart replay.
Status DoBootNetwork(Node* node, const std::shared_ptr<Ndb>& db,
                     const std::string& ndb_text, const BootOptions& opts) {
  if (!ndb_text.empty()) {
    P9_RETURN_IF_ERROR(node->rootfs()->WriteFile("lib/ndb/local", ndb_text));
  }

  // Default gateway from the subnet entry, as the paper's examples configure
  // ("ipnet=unix-room ip=135.104.117.0  ipgw=135.104.117.1").
  if (!node->addr().IsUnspecified()) {
    auto gws = db->IpInfo(node->addr(), "ipgw");
    if (!gws.empty()) {
      auto gw = IpFromString(gws[0]);
      if (gw.ok() && !(*gw == node->addr())) {
        node->SetDefaultGateway(*gw);
      }
    }
  }

  // DNS resolver (user-level, dials upstream through this node's /net).
  std::shared_ptr<DnsResolver> resolver;
  auto dns_proc = std::shared_ptr<Proc>(node->NewProc("network").release());
  resolver = std::make_shared<DnsResolver>(dns_proc.get(), opts.dns_upstream, db.get());
  auto dns_vfs = std::make_shared<DnsVfs>(resolver);
  node->Keep(dns_proc);
  node->Keep(dns_vfs);
  P9_RETURN_IF_ERROR(node->base_ns()->MountVfs(dns_vfs.get(), "/net", kMAfter));

  // Connection server.
  CsConfig config;
  config.sysname = node->sysname();
  config.self_ip = node->addr();
  config.dk_name = node->dk_name();
  config.db = db.get();
  config.dns = resolver;
  bool has_ip = !node->addr().IsUnspecified();
  if (has_ip) {
    config.nets.push_back(CsConfig::Net{"il", true});
  }
  if (!node->dk_name().empty()) {
    config.nets.push_back(CsConfig::Net{"dk", false});
  }
  if (has_ip) {
    config.nets.push_back(CsConfig::Net{"tcp", true});
    config.nets.push_back(CsConfig::Net{"udp", true});
  }
  auto cs_vfs = std::make_shared<CsVfs>(std::move(config));
  node->Keep(cs_vfs);
  node->Keep(db);
  P9_RETURN_IF_ERROR(node->base_ns()->MountVfs(cs_vfs.get(), "/net", kMAfter));

  return Status::Ok();
}

}  // namespace

Status BootNetwork(Node* node, std::shared_ptr<Ndb> db, const std::string& ndb_text,
                   BootOptions opts) {
  // Record the step so Restart can rerun the boot against the fresh kernel
  // (new CS/DNS instances mounted on the new name space), then run it now.
  node->RecordBootStep([db, ndb_text, opts](Node* n) {
    return DoBootNetwork(n, db, ndb_text, opts);
  });
  return DoBootNetwork(node, db, ndb_text, opts);
}

}  // namespace plan9

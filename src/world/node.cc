#include "src/world/node.h"

namespace plan9 {

Node::Node(std::string sysname) : sysname_(std::move(sysname)) {
  // Conventional directories every Plan 9 name space provides.
  (void)rootfs_.MkdirAll("net");
  (void)rootfs_.MkdirAll("dev");
  (void)rootfs_.MkdirAll("srv");
  (void)rootfs_.MkdirAll("lib/ndb");
  (void)rootfs_.MkdirAll("n");
  (void)rootfs_.MkdirAll("bin");
  (void)rootfs_.WriteFile("dev/sysname", sysname_);

  tcp_ = std::make_unique<TcpProto>(&ip_);
  udp_ = std::make_unique<UdpProto>(&ip_);
  il_ = std::make_unique<IlProto>(&ip_);

  base_ns_ = std::make_shared<Namespace>(&rootfs_);
  // "By convention, the protocol and device driver file systems are mounted
  // in a directory called /net."  Union-mounted so imports can add more.
  (void)base_ns_->MountVfs(&netdir_, "/net", kMAfter);
}

Node::~Node() = default;

void Node::AddIpProtoDirs() {
  // The IP protocol devices appear under /net only on machines with an IP
  // network — a Datakit-only terminal shows just /net/cs and /net/dk (§6.1).
  if (ip_protos_added_) {
    return;
  }
  ip_protos_added_ = true;
  netdir_.Add(tcp_.get(), tcp_.get());
  netdir_.Add(udp_.get());
  netdir_.Add(il_.get(), il_.get());
}

void Node::AddEther(EtherSegment* segment, MacAddr mac, Ipv4Addr addr, Ipv4Addr mask) {
  AddIpProtoDirs();
  ip_.AddEtherInterface(segment, mac, addr, mask);
  auto ether = std::make_unique<EtherProto>(
      segment, mac, ethers_.empty() ? "ether0" : "ether" + std::to_string(ethers_.size()));
  netdir_.Add(ether.get(), ether.get());
  ethers_.push_back(std::move(ether));
}

void Node::AddDatakit(DatakitSwitch* dk, const std::string& dk_name) {
  dk_name_ = dk_name;
  dk_ = std::make_unique<DkProto>(dk, dk_name);
  netdir_.Add(dk_.get());
}

int Node::AddCyclone(Wire* wire, Wire::End end) {
  bool first = cyclone_.ConvCount() == 0 && cyclone_link_count_ == 0;
  if (first) {
    netdir_.Add(&cyclone_, &cyclone_);
  }
  cyclone_link_count_++;
  return cyclone_.AddLink(wire, end);
}

void Node::AddRoute(Ipv4Addr dest, Ipv4Addr mask, Ipv4Addr gateway) {
  // Route out of whichever interface reaches the gateway.
  ip_.AddRoute(dest, mask, gateway, 0);
}

void Node::SetDefaultGateway(Ipv4Addr gw) { ip_.SetDefaultGateway(gw); }

void Node::EnableForwarding() { ip_.EnableForwarding(true); }

std::unique_ptr<Proc> Node::NewProc(const std::string& user) {
  return std::make_unique<Proc>(base_ns_, user);
}

std::unique_ptr<Proc> Node::NewProcPrivate(const std::string& user) {
  return std::make_unique<Proc>(base_ns_->Fork(), user);
}

}  // namespace plan9

#include "src/world/node.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace plan9 {

Node::Kernel::Kernel(const std::string& sysname) {
  // Conventional directories every Plan 9 name space provides.
  (void)rootfs.MkdirAll("net");
  (void)rootfs.MkdirAll("dev");
  (void)rootfs.MkdirAll("srv");
  (void)rootfs.MkdirAll("lib/ndb");
  (void)rootfs.MkdirAll("n");
  (void)rootfs.MkdirAll("bin");
  (void)rootfs.WriteFile("dev/sysname", sysname);

  tcp = std::make_unique<TcpProto>(&ip);
  udp = std::make_unique<UdpProto>(&ip);
  il = std::make_unique<IlProto>(&ip);
  tcp->set_host(sysname);
  udp->set_host(sysname);
  il->set_host(sysname);

  base_ns = std::make_shared<Namespace>(&rootfs);
  // "By convention, the protocol and device driver file systems are mounted
  // in a directory called /net."  Union-mounted so imports can add more.
  (void)base_ns->MountVfs(&netdir, "/net", kMAfter);
}

Node::Node(std::string sysname) : sysname_(std::move(sysname)) {
  k_ = std::make_shared<Kernel>(sysname_);
}

// Destruction is graceful (services stop, protos tear down politely); only
// Crash() is abrupt.  The Kernel's member order makes teardown safe.
Node::~Node() = default;

void Node::Crash() {
  if (!alive_) {
    return;
  }
  alive_ = false;
  P9_TRACE(obs::TraceKind::kChaos, sysname_, "crash",
           static_cast<uint64_t>(generation_));

  // 1. Unplug the media first: the node falls silent on the wire before any
  //    software teardown runs, so nothing below can emit a polite goodbye.
  k_->ip.Unplug();
  for (auto& e : k_->ethers) {
    e->Unplug();
  }
  if (k_->dk != nullptr) {
    k_->dk->Unplug();
  }
  k_->cyclone.Unplug();

  // 2. Abandon every conversation abruptly.  Peers learn of the crash only
  //    through the wire: IL's deadman, TCP retransmit exhaustion, a 9P RPC
  //    deadline — never a FIN or close cell from here.
  k_->il->Abort("node crashed");
  k_->tcp->Abort("node crashed");
  k_->udp->Abort("node crashed");
  if (k_->dk != nullptr) {
    k_->dk->Abort("node crashed");
  }

  // 3. Services: their kprocs unblock because the conversations are dead
  //    (listen returns Hungup, reads see hangup), so Stop's join returns.
  k_->services.clear();

  // 4. Graveyard, don't free: surviving Procs hold the kernel's name space
  //    and channels into its objects.  Unplug above was idempotent, so the
  //    graveyard's destructors cannot detach a restarted kernel's media.
  graveyard_.push_back(std::move(k_));
  obs::MetricsRegistry::Default().CounterNamed("chaos.node.crashes").Inc();
}

Status Node::Restart() {
  if (alive_) {
    return Error("node is alive");
  }
  generation_++;
  k_ = std::make_shared<Kernel>(sysname_);
  // Replay the machine spec in boot order: hardware, boot steps, services.
  replaying_ = true;
  for (auto& hw : hw_spec_) {
    hw(this);
  }
  for (auto& step : boot_steps_) {
    Status s = step(this);
    if (!s.ok()) {
      replaying_ = false;
      return s;
    }
  }
  for (auto& spec : service_specs_) {
    auto svc = spec.factory(this);
    if (!svc.ok()) {
      replaying_ = false;
      return svc.error();
    }
    k_->services.push_back(std::move(*svc));
  }
  replaying_ = false;
  alive_ = true;
  P9_TRACE(obs::TraceKind::kChaos, sysname_, "restart",
           static_cast<uint64_t>(generation_));
  obs::MetricsRegistry::Default().CounterNamed("chaos.node.restarts").Inc();
  return Status::Ok();
}

void Node::AddIpProtoDirs() {
  // The IP protocol devices appear under /net only on machines with an IP
  // network — a Datakit-only terminal shows just /net/cs and /net/dk (§6.1).
  if (k_->ip_protos_added) {
    return;
  }
  k_->ip_protos_added = true;
  k_->netdir.Add(k_->tcp.get(), k_->tcp.get());
  k_->netdir.Add(k_->udp.get());
  k_->netdir.Add(k_->il.get(), k_->il.get());
}

void Node::DoAddEther(EtherSegment* segment, MacAddr mac, Ipv4Addr addr,
                      Ipv4Addr mask) {
  AddIpProtoDirs();
  k_->ip.AddEtherInterface(segment, mac, addr, mask);
  auto ether = std::make_unique<EtherProto>(
      segment, mac,
      k_->ethers.empty() ? "ether0" : "ether" + std::to_string(k_->ethers.size()));
  k_->netdir.Add(ether.get(), ether.get());
  k_->ethers.push_back(std::move(ether));
}

void Node::AddEther(EtherSegment* segment, MacAddr mac, Ipv4Addr addr,
                    Ipv4Addr mask) {
  if (!replaying_) {
    hw_spec_.push_back([segment, mac, addr, mask](Node* n) {
      n->DoAddEther(segment, mac, addr, mask);
    });
  }
  DoAddEther(segment, mac, addr, mask);
}

void Node::DoAddDatakit(DatakitSwitch* dk, const std::string& dk_name) {
  k_->dk_name = dk_name;
  k_->dk = std::make_unique<DkProto>(dk, dk_name);
  k_->netdir.Add(k_->dk.get());
}

void Node::AddDatakit(DatakitSwitch* dk, const std::string& dk_name) {
  if (!replaying_) {
    hw_spec_.push_back([dk, dk_name](Node* n) { n->DoAddDatakit(dk, dk_name); });
  }
  DoAddDatakit(dk, dk_name);
}

int Node::DoAddCyclone(Wire* wire, Wire::End end) {
  bool first = k_->cyclone.ConvCount() == 0 && k_->cyclone_link_count == 0;
  if (first) {
    k_->netdir.Add(&k_->cyclone, &k_->cyclone);
  }
  k_->cyclone_link_count++;
  return k_->cyclone.AddLink(wire, end);
}

int Node::AddCyclone(Wire* wire, Wire::End end) {
  if (!replaying_) {
    hw_spec_.push_back([wire, end](Node* n) { (void)n->DoAddCyclone(wire, end); });
  }
  return DoAddCyclone(wire, end);
}

void Node::AddRoute(Ipv4Addr dest, Ipv4Addr mask, Ipv4Addr gateway) {
  if (!replaying_) {
    hw_spec_.push_back([dest, mask, gateway](Node* n) {
      n->k_->ip.AddRoute(dest, mask, gateway, 0);
    });
  }
  // Route out of whichever interface reaches the gateway.
  k_->ip.AddRoute(dest, mask, gateway, 0);
}

void Node::SetDefaultGateway(Ipv4Addr gw) {
  if (!replaying_) {
    hw_spec_.push_back([gw](Node* n) { n->k_->ip.SetDefaultGateway(gw); });
  }
  k_->ip.SetDefaultGateway(gw);
}

void Node::EnableForwarding() {
  if (!replaying_) {
    hw_spec_.push_back([](Node* n) { n->k_->ip.EnableForwarding(true); });
  }
  k_->ip.EnableForwarding(true);
}

void Node::RecordBootStep(std::function<Status(Node*)> step) {
  if (!replaying_) {
    boot_steps_.push_back(std::move(step));
  }
}

Status Node::StartService(const std::string& name, ServiceFactory factory) {
  if (!replaying_) {
    service_specs_.push_back(ServiceSpec{name, factory});
  }
  if (k_ == nullptr) {
    // Recorded; comes up with the next Restart.
    return Error("node is down");
  }
  auto svc = factory(this);
  if (!svc.ok()) {
    return svc.error();
  }
  k_->services.push_back(std::move(*svc));
  return Status::Ok();
}

void Node::Keep(std::shared_ptr<void> obj) {
  if (k_ != nullptr) {
    k_->kept.push_back(std::move(obj));
  }
}

const std::string& Node::dk_name() const {
  static const std::string kEmpty;
  return k_ ? k_->dk_name : kEmpty;
}

std::unique_ptr<Proc> Node::NewProc(const std::string& user) {
  if (k_ == nullptr) {
    return nullptr;
  }
  auto p = std::make_unique<Proc>(k_->base_ns, user);
  p->set_host(sysname_);
  return p;
}

std::unique_ptr<Proc> Node::NewProcPrivate(const std::string& user) {
  if (k_ == nullptr) {
    return nullptr;
  }
  auto p = std::make_unique<Proc>(k_->base_ns->Fork(), user);
  p->set_host(sysname_);
  return p;
}

}  // namespace plan9

// Boot — configure a node's user level from the network database.
//
// Mirrors what a Plan 9 profile does at boot: write /lib/ndb/local, start
// the connection server (and DNS) and mount them on /net, and pick up the
// default gateway from the node's subnet entry (ipgw=, §4.1).
#ifndef SRC_WORLD_BOOT_H_
#define SRC_WORLD_BOOT_H_

#include <memory>
#include <string>

#include "src/csdns/cs.h"
#include "src/csdns/dns.h"
#include "src/ndb/ndb.h"
#include "src/world/node.h"

namespace plan9 {

struct BootOptions {
  // Dial string of an upstream DNS server ("udp!135.104.9.6!53"); empty for
  // a node that relies on its own tables.
  std::string dns_upstream;
};

// Installs CS (+DNS) into the node's base name space.  `db` must outlive
// the node (it is shared among nodes, like the paper's "one database on a
// shared server").  `ndb_text` additionally lands in /lib/ndb/local so
// programs can read the database through the file system.
Status BootNetwork(Node* node, std::shared_ptr<Ndb> db, const std::string& ndb_text,
                   BootOptions opts = {});

}  // namespace plan9

#endif  // SRC_WORLD_BOOT_H_

// Node — one Plan 9 "machine", with a crash/restart lifecycle.
//
// "A Plan 9 system comprises file servers, CPU servers and terminals"
// connected by "a hierarchy of network speeds".  A Node assembles the kernel
// pieces this library implements — root file system, IP stack with
// TCP/UDP/IL protocol devices, optional Ethernet / Datakit / Cyclone
// attachments, the connection server — into one bootable machine whose
// processes see the conventional name space:
//
//   /net/{tcp,udp,il}/...     protocol devices (§2.3)
//   /net/ether0/...           the Ethernet driver (§2.2, Figure 1)
//   /net/dk/...               URP/Datakit
//   /net/cyclone/...          point-to-point fiber (§7)
//   /net/cs, /net/dns         connection server & DNS (mounted by csdns)
//   /lib/ndb/local            the network database (§4.1)
//   /srv /dev /n              conventional mount points
//
// Many Nodes live in one process; a World (world.h) wires their media
// together according to an ndb description.
//
// Lifecycle.  All kernel state lives in an inner Kernel record so the
// machine can die and reboot:
//
//   * Crash() is abrupt: the media are unplugged first (the node goes
//     silent on the wire), then every conversation is abandoned without a
//     FIN, close cell or Rhangup; services' kprocs unblock because their
//     fds are dead and are joined.  Surviving nodes learn of the crash
//     only through the wire — IL's deadman, 9P's RPC deadline, a failed
//     dial — never through shared memory.
//   * Restart() builds a fresh Kernel and replays the recorded hardware
//     attachments, boot steps (BootNetwork records itself) and service
//     factories, so announced services come back under the same names and
//     importers can redial.
//   * The crashed Kernel moves to a graveyard rather than being freed:
//     processes the test still holds reference its name space, and their
//     channels point into kernel objects.  Unplug() is idempotent, so the
//     graveyard's eventual destruction cannot rip out the successor
//     kernel's registrations (switch host names, segment stations).
#ifndef SRC_WORLD_NODE_H_
#define SRC_WORLD_NODE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/dev/cyclone.h"
#include "src/dev/devproto.h"
#include "src/dev/ether.h"
#include "src/dk/urp.h"
#include "src/inet/il.h"
#include "src/inet/ip.h"
#include "src/inet/tcp.h"
#include "src/inet/udp.h"
#include "src/ninep/ramfs.h"
#include "src/ns/namespace.h"
#include "src/ns/proc.h"
#include "src/sim/datakit.h"
#include "src/sim/ether_segment.h"
#include "src/sim/wire.h"
#include "src/svc/service.h"

namespace plan9 {

class Node {
 public:
  // Builds and starts one service instance; invoked at StartService time and
  // again on every Restart (the service must re-announce through the new
  // kernel's /net).
  using ServiceFactory = std::function<Result<std::unique_ptr<Service>>(Node*)>;

  explicit Node(std::string sysname);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& sysname() const { return sysname_; }

  // --- lifecycle ------------------------------------------------------------

  bool alive() const { return alive_; }
  // Incremented on every Restart; generation 0 is the original boot.
  int generation() const { return generation_; }

  // Power-fail the machine: no graceful shutdown, no goodbye on the wire.
  // Idempotent (crashing a dead node is a no-op).
  void Crash() MAY_BLOCK;
  // Reboot from the recorded spec: hardware, boot steps, services, in the
  // original order.  Fails if the node is still alive.
  Status Restart() MAY_BLOCK;

  // --- hardware attachment (call before running traffic) -------------------
  // Each attachment is recorded so Restart can replay it.

  // Ethernet interface: joins the segment and configures IP over it.
  void AddEther(EtherSegment* segment, MacAddr mac, Ipv4Addr addr,
                Ipv4Addr mask = Ipv4Addr{});
  // Datakit host attachment ("nj/astro/helix").
  void AddDatakit(DatakitSwitch* dk, const std::string& dk_name);
  // One end of a Cyclone fiber; returns the link number for `connect N`.
  int AddCyclone(Wire* wire, Wire::End end);
  // Static route / default gateway / packet forwarding (gateways, §4.1).
  void AddRoute(Ipv4Addr dest, Ipv4Addr mask, Ipv4Addr gateway);
  void SetDefaultGateway(Ipv4Addr gw);
  void EnableForwarding();

  // --- boot & services ------------------------------------------------------

  // Record a boot step for Restart to replay (after hardware, before
  // services).  Does not run it — BootNetwork runs the work itself and
  // records a step so the reboot reproduces it.
  void RecordBootStep(std::function<Status(Node*)> step);

  // Run `factory` now, keep the service until crash/destruction, and record
  // the spec so Restart re-announces it.
  Status StartService(const std::string& name, ServiceFactory factory) MAY_BLOCK;

  // --- processes ------------------------------------------------------------

  // A new process sharing the node's base name space.  Null if the node is
  // down (a dead machine runs nothing).
  std::unique_ptr<Proc> NewProc(const std::string& user = "glenda");
  // A new process with a *copy* of the base name space (rfork RFNAMEG).
  std::unique_ptr<Proc> NewProcPrivate(const std::string& user = "glenda");

  // --- guts (for services and tests) ----------------------------------------
  // Pointer accessors return null while the node is crashed.

  // Tie an object's lifetime to the current kernel (mounted Vfs instances,
  // service procs, shared databases).  Dies with the kernel's graveyard.
  void Keep(std::shared_ptr<void> obj);

  RamFs* rootfs() { return k_ ? &k_->rootfs : nullptr; }
  IpStack* ip() { return k_ ? &k_->ip : nullptr; }
  IlProto* il() { return k_ ? k_->il.get() : nullptr; }
  TcpProto* tcp() { return k_ ? k_->tcp.get() : nullptr; }
  UdpProto* udp() { return k_ ? k_->udp.get() : nullptr; }
  DkProto* dk() { return k_ ? k_->dk.get() : nullptr; }
  EtherProto* ether(size_t i = 0) {
    return k_ && i < k_->ethers.size() ? k_->ethers[i].get() : nullptr;
  }
  CycloneProto* cyclone() { return k_ ? &k_->cyclone : nullptr; }
  Namespace* base_ns() { return k_ ? k_->base_ns.get() : nullptr; }
  Ipv4Addr addr() { return k_ ? k_->ip.PrimaryAddr() : Ipv4Addr{}; }
  const std::string& dk_name() const;

 private:
  // Everything that dies in a crash and is rebuilt by a restart.
  // Declaration order is destruction-critical: services stop first (their
  // kprocs use the stack), protocol devices before the IP stack they ride.
  struct Kernel {
    explicit Kernel(const std::string& sysname);

    RamFs rootfs;
    IpStack ip;
    std::unique_ptr<TcpProto> tcp;
    std::unique_ptr<UdpProto> udp;
    std::unique_ptr<IlProto> il;
    std::unique_ptr<DkProto> dk;
    std::vector<std::unique_ptr<EtherProto>> ethers;
    CycloneProto cyclone;
    int cyclone_link_count = 0;
    bool ip_protos_added = false;
    NetDirVfs netdir;
    std::string dk_name;
    std::shared_ptr<Namespace> base_ns;
    std::vector<std::shared_ptr<void>> kept;
    std::vector<std::unique_ptr<Service>> services;
  };

  struct ServiceSpec {
    std::string name;
    ServiceFactory factory;
  };

  void AddIpProtoDirs();
  // The Do* forms apply one spec step to the current kernel without
  // re-recording it (Restart replays through these).
  void DoAddEther(EtherSegment* segment, MacAddr mac, Ipv4Addr addr, Ipv4Addr mask);
  void DoAddDatakit(DatakitSwitch* dk, const std::string& dk_name);
  int DoAddCyclone(Wire* wire, Wire::End end);

  std::string sysname_;
  // Atomic: observers (the chaos status file, invariant checker) read these
  // from other threads while the chaos runner crashes/restarts the node.
  std::atomic<bool> alive_{true};
  std::atomic<int> generation_{0};
  // Restart replays recorded steps; those must not re-record themselves
  // (BootNetwork's replayed step calls SetDefaultGateway, for example).
  bool replaying_ = false;

  std::shared_ptr<Kernel> k_;
  // Crashed kernels; kept because surviving Procs hold their name spaces.
  std::vector<std::shared_ptr<Kernel>> graveyard_;

  // The machine's spec, replayed by Restart in this order.
  std::vector<std::function<void(Node*)>> hw_spec_;
  std::vector<std::function<Status(Node*)>> boot_steps_;
  std::vector<ServiceSpec> service_specs_;
};

}  // namespace plan9

#endif  // SRC_WORLD_NODE_H_

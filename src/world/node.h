// Node — one Plan 9 "machine".
//
// "A Plan 9 system comprises file servers, CPU servers and terminals"
// connected by "a hierarchy of network speeds".  A Node assembles the kernel
// pieces this library implements — root file system, IP stack with
// TCP/UDP/IL protocol devices, optional Ethernet / Datakit / Cyclone
// attachments, the connection server — into one bootable machine whose
// processes see the conventional name space:
//
//   /net/{tcp,udp,il}/...     protocol devices (§2.3)
//   /net/ether0/...           the Ethernet driver (§2.2, Figure 1)
//   /net/dk/...               URP/Datakit
//   /net/cyclone/...          point-to-point fiber (§7)
//   /net/cs, /net/dns         connection server & DNS (mounted by csdns)
//   /lib/ndb/local            the network database (§4.1)
//   /srv /dev /n              conventional mount points
//
// Many Nodes live in one process; a World (world.h) wires their media
// together according to an ndb description.
#ifndef SRC_WORLD_NODE_H_
#define SRC_WORLD_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/dev/cyclone.h"
#include "src/dev/devproto.h"
#include "src/dev/ether.h"
#include "src/dk/urp.h"
#include "src/inet/il.h"
#include "src/inet/ip.h"
#include "src/inet/tcp.h"
#include "src/inet/udp.h"
#include "src/ninep/ramfs.h"
#include "src/ns/namespace.h"
#include "src/ns/proc.h"
#include "src/sim/datakit.h"
#include "src/sim/ether_segment.h"
#include "src/sim/wire.h"

namespace plan9 {

class Node {
 public:
  explicit Node(std::string sysname);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& sysname() const { return sysname_; }

  // --- hardware attachment (call before running traffic) -------------------

  // Ethernet interface: joins the segment and configures IP over it.
  void AddEther(EtherSegment* segment, MacAddr mac, Ipv4Addr addr,
                Ipv4Addr mask = Ipv4Addr{});
  // Datakit host attachment ("nj/astro/helix").
  void AddDatakit(DatakitSwitch* dk, const std::string& dk_name);
  // One end of a Cyclone fiber; returns the link number for `connect N`.
  int AddCyclone(Wire* wire, Wire::End end);
  // Static route / default gateway / packet forwarding (gateways, §4.1).
  void AddRoute(Ipv4Addr dest, Ipv4Addr mask, Ipv4Addr gateway);
  void SetDefaultGateway(Ipv4Addr gw);
  void EnableForwarding();

  // --- processes ------------------------------------------------------------

  // A new process sharing the node's base name space.
  std::unique_ptr<Proc> NewProc(const std::string& user = "glenda");
  // A new process with a *copy* of the base name space (rfork RFNAMEG).
  std::unique_ptr<Proc> NewProcPrivate(const std::string& user = "glenda");

  // --- guts (for services and tests) ----------------------------------------

  // Tie an object's lifetime to the node (mounted Vfs instances, service
  // procs, shared databases).
  void Keep(std::shared_ptr<void> obj) { kept_.push_back(std::move(obj)); }

  RamFs* rootfs() { return &rootfs_; }
  IpStack* ip() { return &ip_; }
  IlProto* il() { return il_.get(); }
  TcpProto* tcp() { return tcp_.get(); }
  UdpProto* udp() { return udp_.get(); }
  DkProto* dk() { return dk_.get(); }
  EtherProto* ether(size_t i = 0) {
    return i < ethers_.size() ? ethers_[i].get() : nullptr;
  }
  CycloneProto* cyclone() { return &cyclone_; }
  Namespace* base_ns() { return base_ns_.get(); }
  Ipv4Addr addr() { return ip_.PrimaryAddr(); }
  const std::string& dk_name() const { return dk_name_; }

 private:
  void AddIpProtoDirs();

  std::string sysname_;
  RamFs rootfs_;
  IpStack ip_;
  std::unique_ptr<TcpProto> tcp_;
  std::unique_ptr<UdpProto> udp_;
  std::unique_ptr<IlProto> il_;
  std::unique_ptr<DkProto> dk_;
  std::vector<std::unique_ptr<EtherProto>> ethers_;
  CycloneProto cyclone_;
  int cyclone_link_count_ = 0;
  bool ip_protos_added_ = false;
  NetDirVfs netdir_;
  std::string dk_name_;
  std::shared_ptr<Namespace> base_ns_;
  std::vector<std::shared_ptr<void>> kept_;
};

}  // namespace plan9

#endif  // SRC_WORLD_NODE_H_

// Timer service.
//
// Protocol retransmission (§2.4: "a helper kernel process awakens
// periodically to perform any necessary TCP retransmissions") and simulated
// media delivery both need one-shot timers.  TimerWheel runs callbacks on a
// dedicated kproc; Cancel guarantees the callback either already ran or will
// never run (it never cancels a callback mid-flight from another thread's
// perspective — see CancelSync).
#ifndef SRC_TASK_TIMERS_H_
#define SRC_TASK_TIMERS_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <thread>

#include "src/base/thread_annotations.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"

namespace plan9 {

using TimerId = uint64_t;
inline constexpr TimerId kNoTimer = 0;

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  TimerWheel();
  ~TimerWheel();
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Run `fn` on the timer kproc after `delay`.  Callbacks must not block for
  // long: they typically put a block on a queue or wake a Rendez.
  TimerId Schedule(Clock::duration delay, std::function<void()> fn);

  // Best-effort cancel; returns true if the callback was removed before it
  // ran.  The callback may be executing concurrently when this returns false.
  bool Cancel(TimerId id);

  // Number of pending timers (tests).
  size_t Pending();

  // Wait until the timer thread is not executing callbacks.  Teardown
  // protocol: cancel your timers / detach your media callbacks, then Drain();
  // afterwards no callback scheduled before the Drain can still be touching
  // your state.  Must not be called from a timer callback.
  void Drain() MAY_BLOCK;

  // Process-wide default instance used by the simulator and protocols.
  static TimerWheel& Default();

 private:
  struct Entry {
    Clock::time_point when;
    std::function<void()> fn;
  };

  void Loop();

  // Leaf lock of the hierarchy (DESIGN.md): conversations call
  // Schedule/Cancel holding their own lock, and callbacks run with this lock
  // *dropped* so they may take conversation locks in turn.
  QLock lock_{"timer"};
  Rendez wake_;
  Rendez drained_;
  std::multimap<Clock::time_point, std::pair<TimerId, std::function<void()>>> queue_
      GUARDED_BY(lock_);
  std::map<TimerId, Clock::time_point> index_ GUARDED_BY(lock_);
  TimerId next_id_ GUARDED_BY(lock_) = 1;
  bool stop_ GUARDED_BY(lock_) = false;
  bool executing_ GUARDED_BY(lock_) = false;
  std::thread thread_;
};

}  // namespace plan9

#endif  // SRC_TASK_TIMERS_H_

// Kernel processes.
//
// §2.4: "Processing modules create helper kernel processes to provide a
// context for handling asynchronous events."  A Kproc is a named thread of
// kernel context; unlike Unix stream service routines it may block on any
// kernel resource and keeps long-lived local state.
#ifndef SRC_TASK_KPROC_H_
#define SRC_TASK_KPROC_H_

#include <functional>
#include <string>
#include <thread>

#include "src/base/thread_annotations.h"

namespace plan9 {

class Kproc {
 public:
  Kproc() = default;
  Kproc(std::string name, std::function<void()> fn);
  ~Kproc() { Join(); }

  Kproc(Kproc&&) = default;
  Kproc& operator=(Kproc&& other) {
    if (this != &other) {  // self-move must not join and clobber the thread
      Join();
      name_ = std::move(other.name_);
      thread_ = std::move(other.thread_);
    }
    return *this;
  }

  const std::string& name() const { return name_; }
  bool joinable() const { return thread_.joinable(); }
  void Join() MAY_BLOCK;  // see src/base/thread_annotations.h

  // Count of currently live kprocs (leak checking in tests).
  static int LiveCount();

  // Name of the kproc the calling thread runs in; "main" outside any kproc.
  // Used by logging to prefix each line with its execution context.
  static const std::string& CurrentName();

 private:
  std::string name_;
  std::thread thread_;
};

}  // namespace plan9

#endif  // SRC_TASK_KPROC_H_

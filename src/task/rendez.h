// Rendez — Plan 9 sleep/wakeup.
//
// A kernel process sleeps on a Rendez until a condition holds; interrupt
// handlers and other kprocs call Wakeup after changing the condition.  The
// caller holds the QLock protecting the condition state, exactly as in the
// Plan 9 kernel's sleep(r, cond, arg) idiom — and the thread-safety analysis
// enforces it: Sleep REQUIRES the lock.  The lock is released while sleeping
// and re-held on return.
//
// Sleep predicates run with the lock held, but Clang analyzes a lambda body
// as its own function; annotate predicates that read guarded state:
//
//   can_read_.Sleep(lock_, [&]() REQUIRES(lock_) { return !blocks_.empty(); });
#ifndef SRC_TASK_RENDEZ_H_
#define SRC_TASK_RENDEZ_H_

#include <chrono>
#include <condition_variable>

#include "src/base/thread_annotations.h"
#include "src/task/qlock.h"

namespace plan9 {

class Rendez {
 public:
  Rendez() = default;
  Rendez(const Rendez&) = delete;
  Rendez& operator=(const Rendez&) = delete;

  // Every sleep entry point is MAY_BLOCK — the transitive root of the
  // blocking-under-lock check (tools/lint/plan9lint).  Under
  // PLAN9NET_LOCKCHECK each sleep also asserts at run time, *before*
  // parking, that the thread holds no lock other than `l` itself unless
  // that lock's class is marked sleepable (lockcheck::OnBlock) — so the
  // check fires deterministically even when the predicate is already true.
#if defined(PLAN9NET_LOCKCHECK)
  // Block until pred() is true.  `l` must be the held QLock protecting the
  // state pred reads.
  template <typename Pred>
  void Sleep(QLock& l, Pred pred, P9_LOCK_SITE) REQUIRES(l) MAY_BLOCK {
    lockcheck::OnBlock(&l, p9_site.file_name(), static_cast<int>(p9_site.line()));
    cv_.wait(l, pred);
  }

  // Block until woken (spurious wakeups possible; callers re-check state).
  void Sleep(QLock& l, P9_LOCK_SITE) REQUIRES(l) MAY_BLOCK {
    lockcheck::OnBlock(&l, p9_site.file_name(), static_cast<int>(p9_site.line()));
    cv_.wait(l);
  }

  // As Sleep, with a timeout.  Returns false if it expired with pred false.
  template <typename Pred>
  bool SleepFor(QLock& l, std::chrono::nanoseconds timeout, Pred pred,
                P9_LOCK_SITE) REQUIRES(l) MAY_BLOCK {
    lockcheck::OnBlock(&l, p9_site.file_name(), static_cast<int>(p9_site.line()));
    return cv_.wait_for(l, timeout, pred);
  }

  // Block until woken or `deadline` passes (callers re-check state).
  template <typename Clock, typename Duration>
  void SleepUntil(QLock& l, std::chrono::time_point<Clock, Duration> deadline,
                  P9_LOCK_SITE) REQUIRES(l) MAY_BLOCK {
    lockcheck::OnBlock(&l, p9_site.file_name(), static_cast<int>(p9_site.line()));
    cv_.wait_until(l, deadline);
  }
#else
  // Block until pred() is true.  `l` must be the held QLock protecting the
  // state pred reads.
  template <typename Pred>
  void Sleep(QLock& l, Pred pred) REQUIRES(l) MAY_BLOCK {
    cv_.wait(l, pred);
  }

  // Block until woken (spurious wakeups possible; callers re-check state).
  void Sleep(QLock& l) REQUIRES(l) MAY_BLOCK { cv_.wait(l); }

  // As Sleep, with a timeout.  Returns false if it expired with pred false.
  template <typename Pred>
  bool SleepFor(QLock& l, std::chrono::nanoseconds timeout, Pred pred)
      REQUIRES(l) MAY_BLOCK {
    return cv_.wait_for(l, timeout, pred);
  }

  // Block until woken or `deadline` passes (callers re-check state).
  template <typename Clock, typename Duration>
  void SleepUntil(QLock& l, std::chrono::time_point<Clock, Duration> deadline)
      REQUIRES(l) MAY_BLOCK {
    cv_.wait_until(l, deadline);
  }
#endif

  // Wake all sleepers to re-evaluate their condition.  Plan 9's wakeup wakes
  // one process; we wake all because distinct conditions can share a Rendez
  // here (harmless: spurious wakeups re-check the predicate).
  void Wakeup() { cv_.notify_all(); }

 private:
  // _any: waits on the QLock itself, so acquisition tracking (lockcheck) and
  // the capability model see the release/re-acquire around the sleep.
  std::condition_variable_any cv_;
};

}  // namespace plan9

#endif  // SRC_TASK_RENDEZ_H_

// Rendez — Plan 9 sleep/wakeup.
//
// A kernel process sleeps on a Rendez until a condition holds; interrupt
// handlers and other kprocs call Wakeup after changing the condition.  The
// caller holds the QLock protecting the condition state, exactly as in the
// Plan 9 kernel's sleep(r, cond, arg) idiom.
#ifndef SRC_TASK_RENDEZ_H_
#define SRC_TASK_RENDEZ_H_

#include <chrono>
#include <condition_variable>

#include "src/task/qlock.h"

namespace plan9 {

class Rendez {
 public:
  Rendez() = default;
  Rendez(const Rendez&) = delete;
  Rendez& operator=(const Rendez&) = delete;

  // Block until pred() is true.  `guard` must hold the QLock protecting the
  // state pred reads; it is released while sleeping and re-held on return.
  template <typename Pred>
  void Sleep(QLockGuard& guard, Pred pred) {
    cv_.wait(guard.native(), pred);
  }

  // As Sleep, with a deadline.  Returns false on timeout.
  template <typename Pred>
  bool SleepFor(QLockGuard& guard, std::chrono::nanoseconds timeout, Pred pred) {
    return cv_.wait_for(guard.native(), timeout, pred);
  }

  // Wake all sleepers to re-evaluate their condition.  Plan 9's wakeup wakes
  // one process; we wake all because distinct conditions can share a Rendez
  // here (harmless: spurious wakeups re-check the predicate).
  void Wakeup() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace plan9

#endif  // SRC_TASK_RENDEZ_H_

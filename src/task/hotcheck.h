// Hot-path allocation checking (debug builds).
//
// The per-message data path (device input -> protocol module -> stream head,
// and the reverse on write) is supposed to pass blocks, not copy them, and —
// pool warm — not to allocate at all.  tools/lint/plan9lint proves that
// statically for the tokens it can see (blockcheck, DESIGN.md §13); this is
// the runtime half, mirroring lockcheck: when built with
// -DPLAN9NET_HOTCHECK=ON (the default; tier-1 tests always run with it) the
// global operator new is hooked and a thread-local Scope entered at
// P9_HOT_PATH roots counts every heap allocation and block copy made while
// the scope is open.
//
//   * Mode::kCount (product code, via P9_HOT_ROOT): counters are flushed on
//     scope exit into stream.hot.msgs / stream.hot.allocs /
//     stream.hot.alloc-bytes / stream.hot.copies, from which the bench
//     snapshot derives allocs_per_message — the runtime view of the same
//     invariant blockcheck enforces statically.
//   * Mode::kZeroAlloc (tests): the first allocation inside the scope
//     aborts with the allocation size, the root name, and a flight-recorder
//     dump, exactly like lockcheck's order-violation death.  Used to pin
//     down paths that must stay allocation-free once the block pool is warm.
//
// Scopes nest; only the outermost owns the per-message accounting, so a hot
// root calling another hot root counts one message.  Counting is per-thread:
// allocations made by other kprocs while this one sleeps are not charged.
#ifndef SRC_TASK_HOTCHECK_H_
#define SRC_TASK_HOTCHECK_H_

#include <cstddef>
#include <cstdint>

namespace plan9 {
namespace hotcheck {

enum class Mode {
  kCount,      // account allocations/copies, flush to stream.hot.* on exit
  kZeroAlloc,  // abort (with flight-recorder dump) on the first allocation
};

class Scope {
 public:
  explicit Scope(const char* root, Mode mode = Mode::kCount);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  bool outer_;
};

// Hook entry points.  No-ops when no scope is active on this thread.
void NoteAlloc(std::size_t bytes);  // called by the operator new hook
void NoteBlockCopy();               // called by CloneBlock / Block::Text

// Introspection (tests, and the bench snapshot before flush).
bool InScope();
uint64_t ScopeAllocs();      // allocations seen by the active scope
uint64_t ScopeAllocBytes();  // bytes allocated in the active scope
uint64_t ScopeCopies();      // block copies seen by the active scope

// Stop charging this thread's allocations while alive (metric registration,
// abort formatting — anything that allocates on behalf of the checker).
class SuspendScope {
 public:
  SuspendScope();
  ~SuspendScope();
  SuspendScope(const SuspendScope&) = delete;
  SuspendScope& operator=(const SuspendScope&) = delete;
};

}  // namespace hotcheck
}  // namespace plan9

// Opens a counting scope at a P9_HOT_PATH root for the rest of the enclosing
// block.  Compiles away entirely without PLAN9NET_HOTCHECK.
#if defined(PLAN9NET_HOTCHECK)
#define P9_HOT_ROOT_CAT2(a, b) a##b
#define P9_HOT_ROOT_CAT(a, b) P9_HOT_ROOT_CAT2(a, b)
#define P9_HOT_ROOT(name) \
  ::plan9::hotcheck::Scope P9_HOT_ROOT_CAT(p9_hot_scope_, __LINE__)(name)
#else
#define P9_HOT_ROOT(name) ((void)0)
#endif

#endif  // SRC_TASK_HOTCHECK_H_

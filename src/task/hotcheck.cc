#include "src/task/hotcheck.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace plan9 {
namespace hotcheck {
namespace {

struct TlState {
  int depth = 0;        // nesting of Scope on this thread
  int suspend = 0;      // >0: do not charge allocations (checker internals)
  Mode mode = Mode::kCount;
  const char* root = nullptr;
  uint64_t allocs = 0;
  uint64_t bytes = 0;
  uint64_t copies = 0;
};

TlState& Tl() {
  thread_local TlState state;
  return state;
}

struct HotCounters {
  obs::Counter& msgs;
  obs::Counter& allocs;
  obs::Counter& alloc_bytes;
  obs::Counter& copies;
};

HotCounters& C() {
  // Registration allocates; never charge it to an open scope.
  static HotCounters c = [] {
    SuspendScope suspend;
    auto& r = obs::MetricsRegistry::Default();
    return HotCounters{
        r.CounterNamed("stream.hot.msgs"),
        r.CounterNamed("stream.hot.allocs"),
        r.CounterNamed("stream.hot.alloc-bytes"),
        r.CounterNamed("stream.hot.copies"),
    };
  }();
  return c;
}

[[noreturn]] void DieOnAlloc(std::size_t bytes) {
  TlState& tl = Tl();
  tl.suspend++;  // the dump below allocates freely
  std::fprintf(stderr,
               "hotcheck: heap allocation of %zu bytes inside zero-alloc hot "
               "scope '%s' (%llu allocation(s), %llu block copie(s) so far)\n",
               bytes, tl.root != nullptr ? tl.root : "?",
               static_cast<unsigned long long>(tl.allocs),
               static_cast<unsigned long long>(tl.copies));
  std::string dump = obs::FlightRecorder::Default().RenderText();
  if (!dump.empty()) {
    std::fprintf(stderr, "hotcheck: flight recorder:\n%s", dump.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

Scope::Scope(const char* root, Mode mode) {
  TlState& tl = Tl();
  outer_ = tl.depth == 0;
  if (outer_) {
    tl.mode = mode;
    tl.root = root;
    tl.allocs = 0;
    tl.bytes = 0;
    tl.copies = 0;
  }
  tl.depth++;
}

Scope::~Scope() {
  TlState& tl = Tl();
  tl.depth--;
  if (!outer_ || tl.depth != 0) return;
  tl.suspend++;
  HotCounters& c = C();
  c.msgs.Inc(1);
  if (tl.allocs != 0) c.allocs.Inc(tl.allocs);
  if (tl.bytes != 0) c.alloc_bytes.Inc(tl.bytes);
  if (tl.copies != 0) c.copies.Inc(tl.copies);
  tl.suspend--;
  tl.root = nullptr;
}

void NoteAlloc(std::size_t bytes) {
  TlState& tl = Tl();
  if (tl.depth == 0 || tl.suspend != 0) return;
  tl.allocs++;
  tl.bytes += bytes;
  if (tl.mode == Mode::kZeroAlloc) DieOnAlloc(bytes);
}

void NoteBlockCopy() {
  TlState& tl = Tl();
  if (tl.depth == 0 || tl.suspend != 0) return;
  tl.copies++;
}

bool InScope() { return Tl().depth > 0; }
uint64_t ScopeAllocs() { return Tl().allocs; }
uint64_t ScopeAllocBytes() { return Tl().bytes; }
uint64_t ScopeCopies() { return Tl().copies; }

SuspendScope::SuspendScope() { Tl().suspend++; }
SuspendScope::~SuspendScope() { Tl().suspend--; }

}  // namespace hotcheck
}  // namespace plan9

#if defined(PLAN9NET_HOTCHECK)

// Replaceable global allocation functions.  Everything funnels through
// malloc/free so the sanitizers (which intercept malloc) still see every
// allocation; the only addition is the thread-local charge to an open hot
// scope.  Deletes are replaced alongside news, as the standard requires.
namespace {

void* HotAlloc(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  plan9::hotcheck::NoteAlloc(size);
  return p;
}

void* HotAllocAligned(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size) != 0) {
    throw std::bad_alloc();
  }
  plan9::hotcheck::NoteAlloc(size);
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return HotAlloc(size); }
void* operator new[](std::size_t size) { return HotAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return HotAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return HotAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return HotAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return HotAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // PLAN9NET_HOTCHECK

#include "src/task/kproc.h"

#include <atomic>

#include "src/base/logging.h"

namespace plan9 {
namespace {
std::atomic<int> g_live{0};
thread_local std::string g_current_name;
const std::string g_main_name = "main";
}  // namespace

Kproc::Kproc(std::string name, std::function<void()> fn) : name_(std::move(name)) {
  g_live.fetch_add(1);
  thread_ = std::thread([name = name_, fn = std::move(fn)] {
    g_current_name = name;
    P9_LOG(kDebug) << "kproc start: " << name;
    fn();
    P9_LOG(kDebug) << "kproc exit: " << name;
    g_live.fetch_sub(1);
  });
}

const std::string& Kproc::CurrentName() {
  return g_current_name.empty() ? g_main_name : g_current_name;
}

void Kproc::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

int Kproc::LiveCount() { return g_live.load(); }

}  // namespace plan9

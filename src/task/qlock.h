// QLock — Plan 9's queueing blocking lock.
//
// Kernel code in the paper serializes stream and protocol state with qlocks
// and blocks on Rendez conditions while holding them.  We model a QLock as a
// mutex usable with Rendez (rendez.h); RAII guards are provided.
//
// A QLock is a Clang thread-safety *capability*: members declared
// GUARDED_BY(lock_) can only be touched while it is held, enforced by
// -Wthread-safety (see src/base/thread_annotations.h and DESIGN.md).
//
// Under PLAN9NET_LOCKCHECK every acquisition is also checked at run time
// against the global lock-order graph (src/task/lockcheck.h).  Locks that
// share an ordering rule are constructed with a class name, e.g.
// `QLock lock_{"stream.queue"};`; unnamed locks get a per-instance class.
#ifndef SRC_TASK_QLOCK_H_
#define SRC_TASK_QLOCK_H_

#include <mutex>

#include "src/base/thread_annotations.h"

#if defined(PLAN9NET_LOCKCHECK)
#include <source_location>

#include "src/task/lockcheck.h"
// Expands to a defaulted parameter capturing the caller's location, so
// lockcheck reports name acquisition *sites*, not qlock.h line numbers.
#define P9_LOCK_SITE std::source_location p9_site = std::source_location::current()
#endif

namespace plan9 {

// Constructor tag marking a lock class *sleepable*: legal to hold while the
// owner blocks on an unrelated Rendez.  Reserved for the two deliberate
// hold-across-sleep idioms (stream.read, 9p.server.write); plan9lint's
// static blocking-under-lock check reads the same list from its config.
struct SleepableClass {};
inline constexpr SleepableClass kSleepableClass{};

class CAPABILITY("qlock") QLock {
 public:
#if defined(PLAN9NET_LOCKCHECK)
  QLock() : class_(lockcheck::RegisterInstanceClass()) {}
  explicit QLock(const char* lock_class)
      : class_(lockcheck::RegisterClass(lock_class)), named_class_(true) {}
  QLock(const char* lock_class, SleepableClass) : QLock(lock_class) {
    lockcheck::SetClassSleepable(class_);
  }
  ~QLock() {
    if (!named_class_) {
      lockcheck::UnregisterInstanceClass(class_);
    }
  }

  void Lock(P9_LOCK_SITE) ACQUIRE() {
    lockcheck::OnAcquire(this, class_, p9_site.file_name(),
                         static_cast<int>(p9_site.line()));
    mutex_.lock();
  }
  void Unlock() RELEASE() {
    lockcheck::OnRelease(this);
    mutex_.unlock();
  }
  bool TryLock(P9_LOCK_SITE) TRY_ACQUIRE(true) {
    if (!mutex_.try_lock()) {
      return false;
    }
    lockcheck::OnTryAcquire(this, class_, p9_site.file_name(),
                            static_cast<int>(p9_site.line()));
    return true;
  }

  // BasicLockable interface, so std::condition_variable_any (Rendez) can
  // release and re-acquire around a sleep; the lockcheck held stack stays
  // accurate while the sleeper does not hold the lock.
  void lock(P9_LOCK_SITE) ACQUIRE() { Lock(p9_site); }
  void unlock() RELEASE() { Unlock(); }
#else
  QLock() = default;
  explicit QLock(const char* /*lock_class*/) {}
  QLock(const char* /*lock_class*/, SleepableClass) {}

  void Lock() ACQUIRE() { mutex_.lock(); }
  void Unlock() RELEASE() { mutex_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
#endif

  QLock(const QLock&) = delete;
  QLock& operator=(const QLock&) = delete;

 private:
  std::mutex mutex_;
#if defined(PLAN9NET_LOCKCHECK)
  lockcheck::ClassId class_;
  bool named_class_ = false;
#endif
};

// RAII holder, Plan 9's `qlock(...); ... qunlock(...)` pairing.  Relockable:
// Unlock()/Lock() drop and retake the qlock mid-scope (reply paths that must
// not hold the session lock across a transport write use this).
class SCOPED_CAPABILITY QLockGuard {
 public:
#if defined(PLAN9NET_LOCKCHECK)
  explicit QLockGuard(QLock& lock, P9_LOCK_SITE) ACQUIRE(lock) : lock_(lock) {
    lock_.Lock(p9_site);
  }
  void Lock(P9_LOCK_SITE) ACQUIRE() {
    lock_.Lock(p9_site);
    held_ = true;
  }
#else
  explicit QLockGuard(QLock& lock) ACQUIRE(lock) : lock_(lock) { lock_.Lock(); }
  void Lock() ACQUIRE() {
    lock_.Lock();
    held_ = true;
  }
#endif
  ~QLockGuard() RELEASE() {
    if (held_) {
      lock_.Unlock();
    }
  }
  void Unlock() RELEASE() {
    lock_.Unlock();
    held_ = false;
  }

  QLockGuard(const QLockGuard&) = delete;
  QLockGuard& operator=(const QLockGuard&) = delete;

 private:
  QLock& lock_;
  bool held_ = true;
};

}  // namespace plan9

#endif  // SRC_TASK_QLOCK_H_

// QLock — Plan 9's queueing blocking lock.
//
// Kernel code in the paper serializes stream and protocol state with qlocks
// and blocks on Rendez conditions while holding them.  We model a QLock as a
// mutex usable with Rendez (rendez.h); RAII guards are provided.
#ifndef SRC_TASK_QLOCK_H_
#define SRC_TASK_QLOCK_H_

#include <mutex>

namespace plan9 {

class QLock {
 public:
  QLock() = default;
  QLock(const QLock&) = delete;
  QLock& operator=(const QLock&) = delete;

  void Lock() { mutex_.lock(); }
  void Unlock() { mutex_.unlock(); }
  bool TryLock() { return mutex_.try_lock(); }

  // For Rendez and std::unique_lock interop.
  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

// RAII holder, Plan 9's `qlock(...); ... qunlock(...)` pairing.
class QLockGuard {
 public:
  explicit QLockGuard(QLock& lock) : lock_(lock.native()) {}
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace plan9

#endif  // SRC_TASK_QLOCK_H_

#include "src/task/timers.h"

#include <vector>

namespace plan9 {

TimerWheel::TimerWheel() : thread_([this] { Loop(); }) {}

TimerWheel::~TimerWheel() {
  {
    QLockGuard guard(lock_);
    stop_ = true;
  }
  wake_.Wakeup();
  thread_.join();
}

TimerId TimerWheel::Schedule(Clock::duration delay, std::function<void()> fn) {
  TimerId id;
  {
    QLockGuard guard(lock_);
    id = next_id_++;
    Clock::time_point when = Clock::now() + delay;
    queue_.emplace(when, std::make_pair(id, std::move(fn)));
    index_.emplace(id, when);
  }
  wake_.Wakeup();
  return id;
}

bool TimerWheel::Cancel(TimerId id) {
  QLockGuard guard(lock_);
  auto it = index_.find(id);
  if (it == index_.end()) {
    return false;
  }
  auto range = queue_.equal_range(it->second);
  for (auto q = range.first; q != range.second; ++q) {
    if (q->second.first == id) {
      queue_.erase(q);
      break;
    }
  }
  index_.erase(it);
  return true;
}

size_t TimerWheel::Pending() {
  QLockGuard guard(lock_);
  return queue_.size();
}

void TimerWheel::Drain() {
  QLockGuard guard(lock_);
  drained_.Sleep(lock_, [&]() REQUIRES(lock_) { return !executing_; });
}

void TimerWheel::Loop() {
  QLockGuard guard(lock_);
  while (!stop_) {
    if (queue_.empty()) {
      wake_.Sleep(lock_);
      continue;
    }
    auto next = queue_.begin()->first;
    if (Clock::now() < next) {
      wake_.SleepUntil(lock_, next);
      continue;
    }
    // Collect everything due, then run without the lock so callbacks can
    // schedule or cancel timers (and take conversation locks).
    std::vector<std::function<void()>> due;
    auto now = Clock::now();
    while (!queue_.empty() && queue_.begin()->first <= now) {
      auto it = queue_.begin();
      index_.erase(it->second.first);
      due.push_back(std::move(it->second.second));
      queue_.erase(it);
    }
    executing_ = true;
    guard.Unlock();
    for (auto& fn : due) {
      fn();
    }
    guard.Lock();
    executing_ = false;
    drained_.Wakeup();
  }
}

TimerWheel& TimerWheel::Default() {
  static TimerWheel* wheel = new TimerWheel();  // leaked: outlives all users
  return *wheel;
}

}  // namespace plan9

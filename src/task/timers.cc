#include "src/task/timers.h"

#include <vector>

namespace plan9 {

TimerWheel::TimerWheel() : thread_([this] { Loop(); }) {}

TimerWheel::~TimerWheel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

TimerId TimerWheel::Schedule(Clock::duration delay, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  TimerId id = next_id_++;
  Clock::time_point when = Clock::now() + delay;
  queue_.emplace(when, std::make_pair(id, std::move(fn)));
  index_.emplace(id, when);
  cv_.notify_all();
  return id;
}

bool TimerWheel::Cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(id);
  if (it == index_.end()) {
    return false;
  }
  auto range = queue_.equal_range(it->second);
  for (auto q = range.first; q != range.second; ++q) {
    if (q->second.first == id) {
      queue_.erase(q);
      break;
    }
  }
  index_.erase(it);
  return true;
}

size_t TimerWheel::Pending() {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void TimerWheel::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [&] { return !executing_; });
}

void TimerWheel::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (queue_.empty()) {
      cv_.wait(lock);
      continue;
    }
    auto next = queue_.begin()->first;
    if (Clock::now() < next) {
      cv_.wait_until(lock, next);
      continue;
    }
    // Collect everything due, then run without the lock so callbacks can
    // schedule or cancel timers.
    std::vector<std::function<void()>> due;
    auto now = Clock::now();
    while (!queue_.empty() && queue_.begin()->first <= now) {
      auto it = queue_.begin();
      index_.erase(it->second.first);
      due.push_back(std::move(it->second.second));
      queue_.erase(it);
    }
    executing_ = true;
    lock.unlock();
    for (auto& fn : due) {
      fn();
    }
    lock.lock();
    executing_ = false;
    drained_.notify_all();
  }
}

TimerWheel& TimerWheel::Default() {
  static TimerWheel* wheel = new TimerWheel();  // leaked: outlives all users
  return *wheel;
}

}  // namespace plan9

#include "src/task/lockcheck.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace plan9 {
namespace lockcheck {
namespace {

struct Edge {
  // Where each side of the ordering was acquired when the edge was first
  // observed: `from` was held at from_site when `to` was taken at to_site.
  std::string from_site;
  std::string to_site;
};

struct Graph {
  std::mutex mu;
  std::vector<std::string> class_names;            // index = ClassId
  std::vector<bool> sleepable;                     // index = ClassId
  std::map<ClassId, std::map<ClassId, Edge>> out;  // adjacency, first-seen sites
};

// Leaked: lock classes outlive every static destructor that might still
// take a QLock.
Graph& G() {
  static Graph* g = new Graph();
  return *g;
}

struct Held {
  const void* lock;
  ClassId cls;
  std::string site;
};

thread_local std::vector<Held> t_held;

std::string Site(const char* file, int line) {
  return std::string(file) + ":" + std::to_string(line);
}

// DFS: does `from` reach `to` in the order graph?  Records the path taken.
bool Reaches(const Graph& g, ClassId from, ClassId to, std::vector<ClassId>* path,
             std::vector<bool>* seen) {
  if (from == to) {
    path->push_back(from);
    return true;
  }
  (*seen)[from] = true;
  auto it = g.out.find(from);
  if (it != g.out.end()) {
    for (const auto& [next, edge] : it->second) {
      if (!(*seen)[next] && Reaches(g, next, to, path, seen)) {
        path->push_back(from);
        return true;
      }
    }
  }
  return false;
}

[[noreturn]] void Die() {
  std::fflush(stderr);
  std::abort();
}

const char* Name(const Graph& g, ClassId cls) { return g.class_names[cls].c_str(); }

}  // namespace

ClassId RegisterClass(const char* name) {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  for (ClassId i = 0; i < g.class_names.size(); ++i) {
    if (g.class_names[i] == name) {
      return i;
    }
  }
  g.class_names.emplace_back(name);
  g.sleepable.push_back(false);
  return static_cast<ClassId>(g.class_names.size() - 1);
}

ClassId RegisterInstanceClass() {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  g.class_names.emplace_back("qlock#" + std::to_string(g.class_names.size()));
  g.sleepable.push_back(false);
  return static_cast<ClassId>(g.class_names.size() - 1);
}

void SetClassSleepable(ClassId cls) {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  g.sleepable[cls] = true;
}

void OnBlock(const void* lock, const char* file, int line) {
  for (const Held& h : t_held) {
    if (h.lock == lock) {
      continue;  // the rendez's own lock: released atomically by the wait
    }
    Graph& g = G();
    std::lock_guard<std::mutex> glock(g.mu);
    if (g.sleepable[h.cls]) {
      continue;
    }
    std::fprintf(stderr,
                 "plan9net lockcheck: blocking under qlock\n"
                 "  rendez sleep at %s\n"
                 "  while holding qlock %p (class \"%s\") acquired at %s\n"
                 "  (only the rendez's own lock, or a class marked sleepable, "
                 "may be held across a sleep; see DESIGN.md)\n",
                 Site(file, line).c_str(), h.lock, Name(g, h.cls), h.site.c_str());
    Die();
  }
}

void UnregisterInstanceClass(ClassId cls) {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  g.out.erase(cls);
  for (auto& [from, edges] : g.out) {
    edges.erase(cls);
  }
}

void OnAcquire(const void* lock, ClassId cls, const char* file, int line) {
  std::string site = Site(file, line);
  for (const Held& h : t_held) {
    if (h.lock == lock) {
      std::fprintf(stderr,
                   "plan9net lockcheck: self-deadlock\n"
                   "  thread re-acquires qlock %p (class \"%s\") at %s\n"
                   "  already held since %s\n",
                   lock, Name(G(), cls), site.c_str(), h.site.c_str());
      Die();
    }
  }
  {
    Graph& g = G();
    std::lock_guard<std::mutex> glock(g.mu);
    for (const Held& h : t_held) {
      if (h.cls == cls) {
        continue;  // same-class nesting is not ordered (see header)
      }
      auto& edges = g.out[h.cls];
      if (edges.count(cls)) {
        continue;  // edge already known, order already validated
      }
      // New edge class(h) -> cls: a cycle exists iff cls already reaches
      // class(h) through previously observed orderings.
      std::vector<ClassId> path;
      std::vector<bool> seen(g.class_names.size(), false);
      if (Reaches(g, cls, h.cls, &path, &seen)) {
        std::fprintf(stderr,
                     "plan9net lockcheck: lock order inversion\n"
                     "  acquiring class \"%s\" at %s\n"
                     "  while holding class \"%s\" acquired at %s\n"
                     "  but the opposite order was already established:\n",
                     Name(g, cls), site.c_str(), Name(g, h.cls), h.site.c_str());
        // path is recorded leaf-first: cls ... h.cls reversed by the DFS.
        for (size_t i = path.size(); i-- > 1;) {
          const Edge& e = g.out.at(path[i]).at(path[i - 1]);
          std::fprintf(stderr,
                       "    \"%s\" (held at %s) -> \"%s\" (acquired at %s)\n",
                       Name(g, path[i]), e.from_site.c_str(), Name(g, path[i - 1]),
                       e.to_site.c_str());
        }
        Die();
      }
      edges.emplace(cls, Edge{h.site, site});
    }
  }
  t_held.push_back(Held{lock, cls, std::move(site)});
}

void OnTryAcquire(const void* lock, ClassId cls, const char* file, int line) {
  std::string site = Site(file, line);
  for (const Held& h : t_held) {
    if (h.lock == lock) {
      std::fprintf(stderr,
                   "plan9net lockcheck: self-deadlock\n"
                   "  thread try-acquires qlock %p (class \"%s\") at %s\n"
                   "  already held since %s\n",
                   lock, Name(G(), cls), site.c_str(), h.site.c_str());
      Die();
    }
  }
  t_held.push_back(Held{lock, cls, std::move(site)});
}

void OnRelease(const void* lock) {
  // Usually LIFO, but guard.Unlock() can release from mid-stack.
  for (size_t i = t_held.size(); i-- > 0;) {
    if (t_held[i].lock == lock) {
      t_held.erase(t_held.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

int HeldCount() { return static_cast<int>(t_held.size()); }

}  // namespace lockcheck
}  // namespace plan9

// Lockdep-style QLock order checking (debug builds).
//
// The kernel code this repo models takes qlocks in a fixed hierarchy
// (stream read lock -> queue -> protocol conversation -> timer; see
// DESIGN.md "Locking discipline").  Nothing enforced that — a PR could
// introduce an ABBA deadlock that only fires under load.  When built with
// -DPLAN9NET_LOCKCHECK=ON (the default; tier-1 tests always run with it),
// every QLock acquisition is recorded:
//
//   * a per-thread stack of currently held locks, and
//   * a global order graph over *lock classes* (locks constructed with the
//     same class name, e.g. all "stream.queue" locks, share a class; locks
//     constructed without a name each get a private per-instance class).
//
// Acquiring lock B while holding lock A adds the edge class(A) -> class(B).
// If class(B) already reaches class(A) in the graph, the two orders can
// deadlock against each other; we abort immediately with the acquisition
// sites of both directions, instead of waiting for the interleaving that
// actually hangs.  Re-acquiring a lock the thread already holds
// (self-deadlock: std::mutex is non-recursive) also aborts.
//
// Known limitation, as in Linux lockdep without subclass annotations:
// nesting two locks of the same named class is not checked (the graph
// ignores self-edges), so classes must only be shared by locks that are
// never held together.
#ifndef SRC_TASK_LOCKCHECK_H_
#define SRC_TASK_LOCKCHECK_H_

#include <cstdint>

namespace plan9 {
namespace lockcheck {

using ClassId = uint32_t;

// Intern a named lock class; calls with equal names return the same id.
ClassId RegisterClass(const char* name);

// Allocate a fresh anonymous class for one lock instance.
ClassId RegisterInstanceClass();

// Drop a per-instance class when its lock is destroyed (purges its edges so
// the graph tracks only live anonymous locks).  Named classes are permanent.
void UnregisterInstanceClass(ClassId cls);

// Mark a class as *sleepable*: it is legal to hold a lock of this class
// while the owner blocks on an unrelated Rendez.  Only two classes qualify
// today — "stream.read" (a stream's reader serializes across Queue::Get)
// and "9p.server.write" (frame writes to the transport serialize across a
// flow-controlled Queue::Put).  Everything else must be dropped before
// sleeping; see DESIGN.md "Static analysis" for the matching static rule.
void SetClassSleepable(ClassId cls);

// Called by Rendez as a sleep *begins*, before the wait can park the thread
// (so the check fires deterministically even when the predicate is already
// true).  `lock` is the rendez's own QLock — the one Sleep atomically
// releases.  Aborts if the thread holds any other lock whose class is not
// sleepable: that lock would stay held for the full (unbounded) sleep,
// which is the blocking-under-lock deadlock class plan9lint checks
// statically via MAY_BLOCK.
void OnBlock(const void* lock, const char* file, int line);

// Called by QLock before blocking on the underlying mutex.  Aborts (after
// printing both acquisition sites) on self-deadlock or order inversion.
void OnAcquire(const void* lock, ClassId cls, const char* file, int line);

// A successful TryLock cannot block, so it adds no ordering edges, but the
// lock still lands on the held stack (later acquisitions order against it).
void OnTryAcquire(const void* lock, ClassId cls, const char* file, int line);

void OnRelease(const void* lock);

// Number of locks the calling thread currently holds (tests).
int HeldCount();

}  // namespace lockcheck
}  // namespace plan9

#endif  // SRC_TASK_LOCKCHECK_H_

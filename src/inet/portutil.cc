#include "src/inet/portutil.h"

#include "src/base/strings.h"

namespace plan9 {

Result<HostPort> ParseConnectAddr(std::string_view s) {
  auto parts = GetFields(s, "!");
  if (parts.size() != 2) {
    return Error(kErrBadAddr);
  }
  auto addr = IpFromString(parts[0]);
  if (!addr.ok()) {
    return Error(kErrBadAddr);
  }
  auto port = ParseU64(parts[1]);
  if (!port || *port == 0 || *port > 65535) {
    return Error(kErrBadAddr);
  }
  return HostPort{*addr, static_cast<uint16_t>(*port)};
}

Result<uint16_t> ParseAnnounceAddr(std::string_view s) {
  auto parts = GetFields(s, "!");
  std::string_view portpart;
  if (parts.size() == 1) {
    portpart = parts[0];
  } else if (parts.size() == 2 && parts[0] == "*") {
    portpart = parts[1];
  } else {
    return Error(kErrBadAddr);
  }
  auto port = ParseU64(portpart);
  if (!port || *port == 0 || *port > 65535) {
    return Error(kErrBadAddr);
  }
  return static_cast<uint16_t>(*port);
}

}  // namespace plan9

// Shared helpers for the IP transports (TCP/UDP/IL): dial-string parsing and
// ephemeral port allocation.
#ifndef SRC_INET_PORTUTIL_H_
#define SRC_INET_PORTUTIL_H_

#include <cstdint>
#include <string>

#include "src/base/result.h"
#include "src/inet/ipaddr.h"

namespace plan9 {

struct HostPort {
  Ipv4Addr addr;  // unspecified for "*"
  uint16_t port = 0;
};

// "135.104.9.31!564" -> {addr, 564}.  Used by `connect`.
Result<HostPort> ParseConnectAddr(std::string_view s);

// "564", "*!564", "17008" -> port (addr left unspecified).  Used by
// `announce`; numeric service names only — symbolic names are resolved by CS
// before they ever reach a protocol device.
Result<uint16_t> ParseAnnounceAddr(std::string_view s);

// Ephemeral port allocator (one per transport instance).
class PortAlloc {
 public:
  uint16_t Next() {
    uint16_t p = next_++;
    if (next_ < 5000) {
      next_ = 5000;
    }
    return p;
  }

 private:
  uint16_t next_ = 5000;
};

}  // namespace plan9

#endif  // SRC_INET_PORTUTIL_H_

// IPv4 addresses and address-string helpers.
#ifndef SRC_INET_IPADDR_H_
#define SRC_INET_IPADDR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/result.h"

namespace plan9 {

// Host-byte-order IPv4 address; 0 is "unspecified".
struct Ipv4Addr {
  uint32_t v = 0;

  constexpr bool operator==(const Ipv4Addr&) const = default;
  constexpr bool IsUnspecified() const { return v == 0; }
  constexpr bool IsBroadcast() const { return v == 0xffffffffu; }

  static constexpr Ipv4Addr FromOctets(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
    return Ipv4Addr{static_cast<uint32_t>(a) << 24 | static_cast<uint32_t>(b) << 16 |
                    static_cast<uint32_t>(c) << 8 | d};
  }
};

std::string IpToString(Ipv4Addr addr);            // "135.104.9.31"
Result<Ipv4Addr> IpFromString(std::string_view s);

// Classful default mask, as 1993 code would infer it (class A/B/C).
Ipv4Addr ClassMask(Ipv4Addr addr);

inline bool SameNet(Ipv4Addr a, Ipv4Addr b, Ipv4Addr mask) {
  return (a.v & mask.v) == (b.v & mask.v);
}

}  // namespace plan9

#endif  // SRC_INET_IPADDR_H_

// TCP (§2.3, §3).
//
// The paper's baseline transport: a byte-stream protocol that "has a high
// overhead and does not preserve delimiters".  This implementation is a
// classic 1993-shape TCP: three-way handshake, cumulative acks, a sliding
// window, adaptive RTO — and *blind* go-back-N retransmission on timeout,
// which is exactly the behaviour §3 contrasts IL's query scheme against
// ("blind retransmission would cause further congestion").
//
// Delimiters are deliberately not preserved: inbound bytes are delivered as
// undelimited blocks, so 9P over TCP needs the framing module
// (src/ninep/framing) — "we provide mechanisms to marshal messages before
// handing them to the system".
#ifndef SRC_INET_TCP_H_
#define SRC_INET_TCP_H_

#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/base/rand.h"
#include "src/base/thread_annotations.h"
#include "src/dev/devproto.h"
#include "src/inet/ip.h"
#include "src/inet/netproto.h"
#include "src/inet/portutil.h"
#include "src/obs/metrics.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"
#include "src/task/timers.h"

namespace plan9 {

// Per-conversation counters, registry-backed: each increment also feeds the
// process-wide net.tcp.* aggregate in /net/stats.
struct TcpConvMetrics {
  TcpConvMetrics();

  obs::Counter segs_sent;
  obs::Counter segs_received;
  obs::Counter bytes_sent;
  obs::Counter bytes_received;
  obs::Counter retransmit_segs;
  obs::Counter retransmit_bytes;
  obs::Counter dup_segs;

  void Reset();  // this conversation only
};

class TcpProto;

class TcpConv : public NetConv {
 public:
  enum class State {
    kClosed,
    kListen,
    kSynSent,
    kSynRcvd,
    kEstablished,
    kFinWait1,
    kFinWait2,
    kCloseWait,
    kClosing,
    kLastAck,
    kTimeWait,
  };

  static constexpr size_t kMss = 1400;
  static constexpr size_t kSendWindow = 16 * 1024;   // fixed cwnd, 1993-style
  static constexpr size_t kSendBufMax = 64 * 1024;   // user write backpressure

  TcpConv(TcpProto* proto, int index);
  ~TcpConv() override;

  Status Ctl(const std::string& msg) override;
  Status WaitReady() override;
  Result<int> Listen() override;
  std::string Local() override;
  std::string Remote() override;
  std::string StatusText() override;
  void CloseUser() override;

  const TcpConvMetrics& metrics() const { return metrics_; }
  std::chrono::microseconds Srtt();

 private:
  friend class TcpProto;
  class Module;

  Status StartConnect(const HostPort& dest);
  Status QueueBytes(const uint8_t* data, size_t n) P9_HOT_PATH MAY_BLOCK;  // user data path; sndbuf sleep
  void Input(Ipv4Addr src, uint16_t sport, uint32_t seq, uint32_t ack, uint16_t flags,
             uint16_t wnd, Bytes payload) P9_HOT_PATH;
  void TrySendLocked() REQUIRES(lock_);
  void EmitLocked(uint16_t flags, uint32_t seq, size_t payload_off, size_t payload_len)
      REQUIRES(lock_);
  void RetransmitLocked() REQUIRES(lock_);
  void ProcessAckLocked(uint32_t ack, uint16_t wnd) REQUIRES(lock_);
  void ProcessDataLocked(uint32_t seq, Bytes payload, bool fin,
                         std::vector<BlockPtr>* deliveries, bool* peer_closed)
      REQUIRES(lock_);
  void EnterTimeWaitLocked() REQUIRES(lock_);
  void ResetLocked(const std::string& why) REQUIRES(lock_);
  void CompleteHangup();  // drains hangup_pending_: stream hangup, then free the slot
  void ArmTimerLocked(std::chrono::microseconds delay) REQUIRES(lock_);
  void TimerFire();
  std::chrono::microseconds RtoLocked() const REQUIRES(lock_);
  void RttSampleLocked(std::chrono::microseconds sample) REQUIRES(lock_);
  void MaybeSendFinLocked() REQUIRES(lock_);
  void Recycle();
  const char* StateNameLocked() const REQUIRES(lock_);

  TcpProto* proto_;
  // Conversation lock: ordered after tcp.proto (demux holds both), before
  // stream.queue (delivery) and timer (ArmTimerLocked).
  QLock lock_{"tcp.conv"};
  Rendez ready_;
  Rendez sendbuf_space_;
  Rendez incoming_;

  State state_ GUARDED_BY(lock_) = State::kClosed;
  bool slot_free_ GUARDED_BY(lock_) = true;
  bool dying_ GUARDED_BY(lock_) = false;  // proto teardown: never re-arm the timer
  // Set by ResetLocked; drained by callers *after* dropping lock_, because
  // Stream::Hangup takes the stream chain lock, which the write path holds
  // while taking lock_ (the opposite order).
  bool hangup_pending_ GUARDED_BY(lock_) = false;

  Ipv4Addr laddr_ GUARDED_BY(lock_), raddr_ GUARDED_BY(lock_);
  uint16_t lport_ GUARDED_BY(lock_) = 0, rport_ GUARDED_BY(lock_) = 0;

  // Send sequence space.  send_buf_ holds bytes [snd_una, snd_una+size).
  uint32_t iss_ GUARDED_BY(lock_) = 0;
  uint32_t snd_una_ GUARDED_BY(lock_) = 0;
  uint32_t snd_nxt_ GUARDED_BY(lock_) = 0;
  uint32_t snd_wnd_ GUARDED_BY(lock_) = kSendWindow;
  std::deque<uint8_t> send_buf_ GUARDED_BY(lock_);
  bool fin_pending_ GUARDED_BY(lock_) = false;  // user closed; FIN after the buffer
  bool fin_sent_ GUARDED_BY(lock_) = false;
  TimerWheel::Clock::time_point rtt_seg_sent_ GUARDED_BY(lock_);
  uint32_t rtt_seg_seq_ GUARDED_BY(lock_) = 0;  // sequence being timed (0 = none)
  bool rtt_timing_ GUARDED_BY(lock_) = false;

  // Receive sequence space.
  uint32_t irs_ GUARDED_BY(lock_) = 0;
  uint32_t rcv_nxt_ GUARDED_BY(lock_) = 0;
  std::map<uint32_t, Bytes> out_of_order_ GUARDED_BY(lock_);
  bool fin_received_ GUARDED_BY(lock_) = false;

  std::chrono::microseconds srtt_ GUARDED_BY(lock_){0};
  std::chrono::microseconds mdev_ GUARDED_BY(lock_){0};
  int backoff_ GUARDED_BY(lock_) = 0;
  TimerId timer_ GUARDED_BY(lock_) = kNoTimer;
  int handshake_tries_ GUARDED_BY(lock_) = 0;

  std::deque<int> pending_ GUARDED_BY(lock_);
  TcpConv* listener_backref_ GUARDED_BY(lock_) = nullptr;  // spawning conv (accept)
  std::string err_ GUARDED_BY(lock_);
  TcpConvMetrics metrics_;  // atomic counters; no lock needed
};

class TcpProto : public NetProto, public ProtoFiles {
 public:
  explicit TcpProto(IpStack* ip);
  ~TcpProto() override;

  std::string name() override { return "tcp"; }
  Result<NetConv*> Clone() override;
  NetConv* Conv(size_t index) override;
  size_t ConvCount() override;

  // ProtoFiles: the standard six plus a stats file with per-conversation
  // retransmit and duplicate-segment counters.
  std::vector<std::string> ConvFileNames() override {
    return {"ctl", "data", "listen", "local", "remote", "status", "stats"};
  }
  Result<std::string> InfoText(NetConv* conv, const std::string& file) override;

  IpStack* ip() { return ip_; }

  // Crash semantics (node lifecycle): abandon every conversation abruptly —
  // no FIN, no RST — so the peer sees only silence on the wire.  Call after
  // IpStack::Unplug().
  void Abort(const std::string& why) MAY_BLOCK;

 private:
  friend class TcpConv;

  void Input(IpPacket&& pkt) P9_HOT_PATH;
  Result<TcpConv*> AllocConv();
  TcpConv* SpawnFromSyn(Ipv4Addr dst, Ipv4Addr src, uint16_t dport, uint16_t sport,
                        uint32_t peer_seq, TcpConv* listener);
  void SendRst(Ipv4Addr src, Ipv4Addr dst, uint16_t sport, uint16_t dport, uint32_t ack);

  IpStack* ip_;
  QLock lock_{"tcp.proto"};
  std::vector<std::unique_ptr<TcpConv>> convs_ GUARDED_BY(lock_);
  PortAlloc ports_ GUARDED_BY(lock_);
  Rng isn_rng_ GUARDED_BY(lock_){0xfeedface};
};

}  // namespace plan9

#endif  // SRC_INET_TCP_H_

// The protocol-device contract (§2.3).
//
// "All protocol devices look identical so user programs contain no
// network-specific code."  Every transport (TCP, UDP, IL over IP; URP over
// Datakit) implements NetProto/NetConv; the devproto driver (src/dev) turns
// one NetProto into the file tree /net/<proto>/{clone, 0/, 1/, ...} with
// ctl/data/listen/local/remote/status files per conversation.
//
// Each conversation owns a Stream (§2.4) whose device module is the protocol
// itself: user writes travel down the stream into the protocol's output
// routine, and packets demultiplexed from the wire are put up the stream
// into the head queue where reads find them.
#ifndef SRC_INET_NETPROTO_H_
#define SRC_INET_NETPROTO_H_

#include <atomic>
#include <memory>
#include <string>

#include "src/base/result.h"
#include "src/base/thread_annotations.h"
#include "src/stream/stream.h"

namespace plan9 {

class NetConv {
 public:
  virtual ~NetConv() = default;

  int index() const { return index_; }
  const std::string& owner() const { return owner_; }
  void set_owner(std::string owner) { owner_ = std::move(owner); }

  // One ASCII control message written to the ctl file, e.g.
  // "connect 135.104.9.31!564", "announce 17008", "hangup".
  virtual Status Ctl(const std::string& msg) = 0;

  // Blocks until the conversation is usable: after `connect` this is
  // connection establishment ("When the data file is opened the connection
  // is established"); after `announce` it returns at once.
  virtual Status WaitReady() MAY_BLOCK = 0;

  // Data file I/O.  Reads come from the conversation's stream head and so
  // honour the transport's delimiter behaviour (IL/UDP/URP preserve message
  // boundaries; TCP does not).
  virtual Result<size_t> Write(const uint8_t* data, size_t n) MAY_BLOCK {
    return stream_->Write(data, n);
  }
  Result<size_t> Read(uint8_t* buf, size_t n) MAY_BLOCK { return stream_->Read(buf, n); }
  Result<Bytes> ReadMessage() MAY_BLOCK { return stream_->ReadMessage(); }

  // Blocks until an incoming call arrives on this announced conversation;
  // returns the index of the newly created conversation.
  virtual Result<int> Listen() MAY_BLOCK = 0;

  // Contents of the local / remote / status files.
  virtual std::string Local() = 0;
  virtual std::string Remote() = 0;
  virtual std::string StatusText() = 0;

  // Called when the last user reference to the conversation's files goes
  // away: initiate graceful shutdown and eventually recycle the slot.
  virtual void CloseUser() = 0;

  Stream* stream() { return stream_.get(); }

  // Reference count of open files on this conversation (managed by the
  // devproto driver; shown in the status file).
  std::atomic<int> refs{0};

 protected:
  int index_ = 0;
  std::string owner_ = "network";
  std::unique_ptr<Stream> stream_;
};

class NetProto {
 public:
  virtual ~NetProto() = default;

  // Directory name under /net ("tcp", "udp", "il", "dk").
  virtual std::string name() = 0;

  virtual size_t MaxConvs() { return 256; }

  // The clone file: reserve an unused conversation.
  virtual Result<NetConv*> Clone() = 0;

  // Conversation by number; nullptr if the slot was never created.
  virtual NetConv* Conv(size_t index) = 0;

  // Number of conversation slots ever created (directory size).
  virtual size_t ConvCount() = 0;
};

}  // namespace plan9

#endif  // SRC_INET_NETPROTO_H_

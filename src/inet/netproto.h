// The protocol-device contract (§2.3).
//
// "All protocol devices look identical so user programs contain no
// network-specific code."  Every transport (TCP, UDP, IL over IP; URP over
// Datakit) implements NetProto/NetConv; the devproto driver (src/dev) turns
// one NetProto into the file tree /net/<proto>/{clone, 0/, 1/, ...} with
// ctl/data/listen/local/remote/status files per conversation.
//
// Each conversation owns a Stream (§2.4) whose device module is the protocol
// itself: user writes travel down the stream into the protocol's output
// routine, and packets demultiplexed from the wire are put up the stream
// into the head queue where reads find them.
#ifndef SRC_INET_NETPROTO_H_
#define SRC_INET_NETPROTO_H_

#include <atomic>
#include <memory>
#include <string>

#include "src/base/result.h"
#include "src/base/strings.h"
#include "src/base/thread_annotations.h"
#include "src/obs/span.h"
#include "src/stream/stream.h"

namespace plan9 {

class NetConv {
 public:
  virtual ~NetConv() = default;

  int index() const { return index_; }
  const std::string& owner() const { return owner_; }
  void set_owner(std::string owner) { owner_ = std::move(owner); }

  // One ASCII control message written to the ctl file, e.g.
  // "connect 135.104.9.31!564", "announce 17008", "hangup".
  virtual Status Ctl(const std::string& msg) = 0;

  // Blocks until the conversation is usable: after `connect` this is
  // connection establishment ("When the data file is opened the connection
  // is established"); after `announce` it returns at once.
  virtual Status WaitReady() MAY_BLOCK = 0;

  // Data file I/O.  Reads come from the conversation's stream head and so
  // honour the transport's delimiter behaviour (IL/UDP/URP preserve message
  // boundaries; TCP does not).
  virtual Result<size_t> Write(const uint8_t* data, size_t n) MAY_BLOCK {
    return stream_->Write(data, n);
  }
  Result<size_t> Read(uint8_t* buf, size_t n) MAY_BLOCK { return stream_->Read(buf, n); }
  Result<Bytes> ReadMessage() MAY_BLOCK { return stream_->ReadMessage(); }

  // Blocks until an incoming call arrives on this announced conversation;
  // returns the index of the newly created conversation.
  virtual Result<int> Listen() MAY_BLOCK = 0;

  // Contents of the local / remote / status files.
  virtual std::string Local() = 0;
  virtual std::string Remote() = 0;
  virtual std::string StatusText() = 0;

  // Called when the last user reference to the conversation's files goes
  // away: initiate graceful shutdown and eventually recycle the slot.
  virtual void CloseUser() = 0;

  Stream* stream() { return stream_.get(); }

  // Reference count of open files on this conversation (managed by the
  // devproto driver; shown in the status file).
  std::atomic<int> refs{0};

  // Causal tracing (DESIGN.md §12): the context active when the user wrote
  // connect/announce to the ctl file, captured by devproto so late protocol
  // events (IL RTT samples) and the status line stay attributable.  hi is
  // written last / read first so a concurrent status reader never sees a
  // half-stamped id.
  void CaptureTrace(const obs::TraceContext& ctx) {
    if (!ctx.sampled) {
      return;
    }
    trace_parent_.store(ctx.span_id, std::memory_order_relaxed);
    trace_lo_.store(ctx.trace_lo, std::memory_order_relaxed);
    trace_rtt_budget_.store(kTraceRttBudget, std::memory_order_relaxed);
    trace_hi_.store(ctx.trace_hi, std::memory_order_release);
  }
  uint64_t trace_hi() const { return trace_hi_.load(std::memory_order_acquire); }
  uint64_t trace_lo() const { return trace_lo_.load(std::memory_order_relaxed); }
  uint64_t trace_parent() const {
    return trace_parent_.load(std::memory_order_relaxed);
  }
  // Point spans (il.rtt) are bounded per capture: without a budget a
  // stamped conversation would emit one span per ack for its whole
  // lifetime, flooding the ring — and since reading /net/trace over the
  // network acks frames, harvesting the trace would *generate* trace.
  bool TakeRttSpanBudget() {
    int budget = trace_rtt_budget_.load(std::memory_order_relaxed);
    while (budget > 0) {
      if (trace_rtt_budget_.compare_exchange_weak(budget, budget - 1,
                                                  std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }
  // " trace <32 hex>" for status lines; empty if never dialed under a
  // sampled context.
  std::string TraceNote() const {
    uint64_t hi = trace_hi();
    uint64_t lo = trace_lo();
    if (hi == 0 && lo == 0) {
      return "";
    }
    return StrFormat(" trace %016llx%016llx", (unsigned long long)hi,
                     (unsigned long long)lo);
  }

 protected:
  int index_ = 0;
  std::string owner_ = "network";
  std::unique_ptr<Stream> stream_;

 private:
  static constexpr int kTraceRttBudget = 32;

  std::atomic<uint64_t> trace_hi_{0};
  std::atomic<uint64_t> trace_lo_{0};
  std::atomic<uint64_t> trace_parent_{0};
  std::atomic<int> trace_rtt_budget_{0};
};

class NetProto {
 public:
  virtual ~NetProto() = default;

  // Directory name under /net ("tcp", "udp", "il", "dk").
  virtual std::string name() = 0;

  // The owning node's sysname, for trace-span hop labels ("" in bare
  // protocol unit tests).
  const std::string& host() const { return host_; }
  void set_host(std::string host) { host_ = std::move(host); }

  virtual size_t MaxConvs() { return 256; }

  // The clone file: reserve an unused conversation.
  virtual Result<NetConv*> Clone() = 0;

  // Conversation by number; nullptr if the slot was never created.
  virtual NetConv* Conv(size_t index) = 0;

  // Number of conversation slots ever created (directory size).
  virtual size_t ConvCount() = 0;

 private:
  std::string host_;
};

}  // namespace plan9

#endif  // SRC_INET_NETPROTO_H_

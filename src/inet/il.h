// IL — the Internet Link protocol (§3).
//
// "IL is a lightweight protocol designed to be encapsulated by IP.  It is a
// connection-based protocol providing reliable transmission of sequenced
// messages between machines."  Key properties, all implemented here:
//
//   * reliable datagram service with sequenced delivery (message == one
//     delimited block up the conversation stream);
//   * no flow control beyond "a small outstanding message window" — senders
//     block when the window fills, receivers discard out-of-window messages;
//   * two-way handshake generating initial sequence numbers;
//   * *query-based* retransmission: "IL does not do blind retransmission.
//     If a message is lost and a timeout occurs, a query message is sent...
//     The receiver responds to a query by retransmitting missing messages";
//   * adaptive timeouts from a round-trip timer, "so the protocol performs
//     well on both the Internet and on local Ethernets".
//
// Wire header (18 bytes, big-endian, IP protocol 40):
//   sum[2] len[2] type[1] spec[1] src[2] dst[2] id[4] ack[4]
#ifndef SRC_INET_IL_H_
#define SRC_INET_IL_H_

#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/base/rand.h"
#include "src/base/thread_annotations.h"
#include "src/dev/devproto.h"
#include "src/inet/ip.h"
#include "src/inet/netproto.h"
#include "src/inet/portutil.h"
#include "src/obs/metrics.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"
#include "src/task/timers.h"

namespace plan9 {

enum class IlType : uint8_t {
  kSync = 0,
  kData = 1,
  kDataQuery = 2,  // retransmitted data, provokes an immediate ack
  kAck = 3,
  kQuery = 4,  // "small control message containing the current sequence numbers"
  kState = 5,  // reply to a query
  kClose = 6,
};

// Per-conversation counters, registry-backed: each increment also feeds the
// process-wide net.il.* aggregate in /net/stats.  Atomic, so readable
// without the conversation lock.
struct IlConvMetrics {
  IlConvMetrics();

  obs::Counter msgs_sent;
  obs::Counter msgs_received;
  obs::Counter bytes_sent;
  obs::Counter bytes_received;
  obs::Counter retransmits;
  obs::Counter queries_sent;
  obs::Counter states_sent;
  obs::Counter dups_dropped;
  obs::Counter out_of_window;
  obs::Counter keepalives_sent;  // idle-connection probes
  obs::Counter deadman_closes;   // killed after too many unanswered queries

  void Reset();  // this conversation only; the aggregates keep counting
};

class IlProto;

class IlConv : public NetConv {
 public:
  enum class State {
    kClosed,
    kSyncer,    // actively connecting
    kSyncee,    // passively connecting (spawned by an announced conv)
    kEstablished,
    kListening,  // announced
    kClosing,
  };

  // "A small outstanding message window prevents too many incoming messages
  // from being buffered."
  static constexpr uint32_t kWindow = 20;

  IlConv(IlProto* proto, int index);
  ~IlConv() override;

  Status Ctl(const std::string& msg) override;
  Status WaitReady() override;
  Result<int> Listen() override;
  std::string Local() override;
  std::string Remote() override;
  std::string StatusText() override;
  void CloseUser() override;

  const IlConvMetrics& metrics() const { return metrics_; }
  std::chrono::microseconds Srtt();

 private:
  friend class IlProto;
  class Module;
  struct Unacked {
    uint32_t id;
    Bytes payload;
    TimerWheel::Clock::time_point sent_at;
    bool retransmitted = false;
  };

  // Locked() methods require lock_ held, enforced by the analysis.
  Status StartConnect(const HostPort& dest);
  Status SendMessage(Bytes payload) P9_HOT_PATH MAY_BLOCK;  // user data path; window sleep
  void Input(Ipv4Addr src, IlType type, uint16_t sport, uint32_t id, uint32_t ack,
             Bytes payload) P9_HOT_PATH;
  void HandleAckLocked(uint32_t ack) REQUIRES(lock_);
  void DeliverDataLocked(uint32_t id, Bytes payload, bool is_query,
                         std::vector<BlockPtr>* deliveries) P9_HOT_PATH REQUIRES(lock_);
  Status EmitLocked(IlType type, uint32_t id, uint32_t ack, const Bytes& payload)
      REQUIRES(lock_);
  void ArmTimerLocked(std::chrono::microseconds delay) REQUIRES(lock_);
  void TimerFire();
  std::chrono::microseconds RtoLocked() const REQUIRES(lock_);
  void RttSampleLocked(std::chrono::microseconds sample) REQUIRES(lock_);
  void HangupLocked() REQUIRES(lock_);
  void CompleteHangup();  // drains hangup_pending_: stream hangup, then free the slot
  void Recycle();

  IlProto* proto_;
  // Conversation lock: ordered after il.proto (demux holds both), before
  // stream.queue (delivery) and timer (ArmTimerLocked).
  QLock lock_{"il.conv"};
  Rendez ready_;     // connect handshake completion
  Rendez window_;    // sender window space
  Rendez incoming_;  // pending calls on a listening conv

  State state_ GUARDED_BY(lock_) = State::kClosed;
  bool slot_free_ GUARDED_BY(lock_) = true;  // available for Clone()
  bool dying_ GUARDED_BY(lock_) = false;     // proto teardown: never re-arm the timer
  // Set by HangupLocked; drained by callers *after* dropping lock_, because
  // Stream::Hangup takes the stream chain lock, which the write path holds
  // while taking lock_ (the opposite order).
  bool hangup_pending_ GUARDED_BY(lock_) = false;

  Ipv4Addr laddr_ GUARDED_BY(lock_), raddr_ GUARDED_BY(lock_);
  uint16_t lport_ GUARDED_BY(lock_) = 0, rport_ GUARDED_BY(lock_) = 0;

  // Send side.
  uint32_t start_ GUARDED_BY(lock_) = 0;  // initial sequence chosen at handshake
  uint32_t next_ GUARDED_BY(lock_) = 0;   // id of the next message to send
  std::deque<Unacked> unacked_ GUARDED_BY(lock_);

  // Receive side.
  uint32_t rstart_ GUARDED_BY(lock_) = 0;
  uint32_t recvd_ GUARDED_BY(lock_) = 0;  // highest in-sequence id received
  std::map<uint32_t, Bytes> out_of_order_ GUARDED_BY(lock_);

  // Adaptive timing (§3: "a round-trip timer is used to calculate
  // acknowledge and retransmission times in terms of the network speed").
  std::chrono::microseconds srtt_ GUARDED_BY(lock_){0};
  std::chrono::microseconds mdev_ GUARDED_BY(lock_){0};
  int backoff_ GUARDED_BY(lock_) = 0;
  TimerId timer_ GUARDED_BY(lock_) = kNoTimer;
  TimerWheel::Clock::time_point last_rexmit_ GUARDED_BY(lock_){};
  uint32_t last_rexmit_id_ GUARDED_BY(lock_) = 0;
  int sync_tries_ GUARDED_BY(lock_) = 0;
  int close_tries_ GUARDED_BY(lock_) = 0;
  // Deadman: consecutive queries the peer never answered.  Any Ack or State
  // from the peer resets it; crossing kDeadmanQueries kills the connection
  // (faster than waiting out the full backoff ladder on a dead link).
  int unanswered_queries_ GUARDED_BY(lock_) = 0;

  std::deque<int> pending_ GUARDED_BY(lock_);  // incoming calls (listening conv)
  std::string err_ GUARDED_BY(lock_);          // why the conversation died
  IlConvMetrics metrics_;  // atomic counters; no lock needed
};

class IlProto : public NetProto, public ProtoFiles {
 public:
  explicit IlProto(IpStack* ip);
  ~IlProto() override;

  std::string name() override { return "il"; }
  Result<NetConv*> Clone() override;
  NetConv* Conv(size_t index) override;
  size_t ConvCount() override;

  // ProtoFiles: the standard six plus a stats file with the per-conversation
  // counters (retransmits, queries, deadman kills) tests assert on.
  std::vector<std::string> ConvFileNames() override {
    return {"ctl", "data", "listen", "local", "remote", "status", "stats"};
  }
  Result<std::string> InfoText(NetConv* conv, const std::string& file) override;

  IpStack* ip() { return ip_; }

  // Crash semantics (node lifecycle): abandon every conversation abruptly —
  // queues hung up, listeners dropped, blocked users woken with `why` — and
  // emit nothing on the wire, so the peer learns of the death only through
  // its own deadman/keepalive machinery.  Call after IpStack::Unplug().
  void Abort(const std::string& why) MAY_BLOCK;

 private:
  friend class IlConv;

  void Input(IpPacket&& pkt) P9_HOT_PATH;
  Result<IlConv*> AllocConv();
  IlConv* SpawnFromSync(Ipv4Addr dst, Ipv4Addr src, uint16_t dport, uint16_t sport,
                        uint32_t peer_id, IlConv* listener);
  void SendReset(Ipv4Addr laddr, Ipv4Addr raddr, uint16_t lport, uint16_t rport,
                 uint32_t id, uint32_t ack);

  IpStack* ip_;
  QLock lock_{"il.proto"};
  std::vector<std::unique_ptr<IlConv>> convs_ GUARDED_BY(lock_);
  PortAlloc ports_ GUARDED_BY(lock_);
  Rng isn_rng_ GUARDED_BY(lock_){0xc0ffee};
};

}  // namespace plan9

#endif  // SRC_INET_IL_H_

#include "src/inet/udp.h"

#include <cstring>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/task/hotcheck.h"
#include "src/task/timers.h"

namespace plan9 {
namespace {

constexpr size_t kUdpHeaderSize = 8;

void Put16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}
uint16_t Get16(const uint8_t* p) { return static_cast<uint16_t>(p[0] << 8 | p[1]); }

}  // namespace

UdpConvMetrics::UdpConvMetrics() {
  auto& r = obs::MetricsRegistry::Default();
  dgrams_sent.BindParent(&r.CounterNamed("net.udp.dgrams-sent"));
  dgrams_received.BindParent(&r.CounterNamed("net.udp.dgrams-rcvd"));
  bytes_sent.BindParent(&r.CounterNamed("net.udp.bytes-sent"));
  bytes_received.BindParent(&r.CounterNamed("net.udp.bytes-rcvd"));
}

void UdpConvMetrics::Reset() {
  dgrams_sent.Reset();
  dgrams_received.Reset();
  bytes_sent.Reset();
  bytes_received.Reset();
}

// The stream device module: user writes become datagrams.  Data blocks are
// coalesced until the delimiter so one write == one datagram regardless of
// internal splitting.
class UdpConv::Module : public StreamModule {
 public:
  explicit Module(UdpConv* conv) : conv_(conv) {}
  std::string_view name() const override { return "udp"; }

  void DownPut(BlockPtr b) override P9_CONSUMES(b) P9_HOT_PATH {
    if (b->type != BlockType::kData) {
      DropBlock(std::move(b));  // module-specific control: none for udp
      return;
    }
    pending_.insert(pending_.end(), b->payload(), b->payload() + b->size());
    bool delim = b->delim;
    RecycleBlock(std::move(b));
    if (!delim) {
      return;
    }
    Bytes datagram;
    datagram.swap(pending_);
    Status s = conv_->Output(datagram);
    if (!s.ok()) {
      P9_LOG(kDebug) << "udp output: " << s.error().message();
    }
  }

 private:
  UdpConv* conv_;
  Bytes pending_;
};

UdpConv::UdpConv(UdpProto* proto, int index) : proto_(proto) {
  index_ = index;
  stream_ = std::make_unique<Stream>(std::make_unique<Module>(this));
}

void UdpConv::Recycle() {
  QLockGuard guard(lock_);
  stream_ = std::make_unique<Stream>(std::make_unique<Module>(this));
  laddr_ = raddr_ = Ipv4Addr{};
  lport_ = rport_ = 0;
  pending_.clear();
  metrics_.Reset();
}

Status UdpConv::Ctl(const std::string& msg) {
  auto words = Tokenize(msg);
  if (words.empty()) {
    return Error(kErrBadCtl);
  }
  if (words[0] == "connect" && words.size() >= 2) {
    P9_ASSIGN_OR_RETURN(HostPort hp, ParseConnectAddr(words[1]));
    P9_ASSIGN_OR_RETURN(Ipv4Addr laddr, proto_->ip()->SourceFor(hp.addr));
    uint16_t ephemeral;
    {
      // proto lock before conv lock, always.
      QLockGuard pguard(proto_->lock_);
      ephemeral = proto_->ports_.Next();
    }
    QLockGuard guard(lock_);
    if (state_ != State::kIdle) {
      return Error("connection already in use");
    }
    laddr_ = laddr;
    raddr_ = hp.addr;
    rport_ = hp.port;
    if (lport_ == 0) {
      lport_ = ephemeral;
    }
    state_ = State::kConnected;
    return Status::Ok();
  }
  if (words[0] == "announce" && words.size() >= 2) {
    P9_ASSIGN_OR_RETURN(uint16_t port, ParseAnnounceAddr(words[1]));
    QLockGuard guard(lock_);
    if (state_ != State::kIdle) {
      return Error("connection already in use");
    }
    lport_ = port;
    laddr_ = Ipv4Addr{};  // any local address
    state_ = State::kAnnounced;
    return Status::Ok();
  }
  if (words[0] == "bind" && words.size() >= 2) {
    // "bind <port>": fix the local port before connect.
    auto port = ParseU64(words[1]);
    if (!port || *port > 65535) {
      return Error(kErrBadArg);
    }
    QLockGuard guard(lock_);
    lport_ = static_cast<uint16_t>(*port);
    return Status::Ok();
  }
  if (words[0] == "hangup" || words[0] == "reject") {
    CloseUser();
    return Status::Ok();
  }
  if (words[0] == "accept") {
    return Status::Ok();
  }
  return Error(kErrBadCtl);
}

Status UdpConv::WaitReady() {
  QLockGuard guard(lock_);
  if (state_ == State::kClosed || state_ == State::kIdle) {
    return Error(kErrHungup);
  }
  return Status::Ok();  // UDP has no handshake
}

Result<int> UdpConv::Listen() {
  QLockGuard guard(lock_);
  if (state_ != State::kAnnounced) {
    return Error("not announced");
  }
  incoming_.Sleep(lock_, [&]() REQUIRES(lock_) { return !pending_.empty() || state_ == State::kClosed; });
  if (state_ == State::kClosed) {
    return Error(kErrHungup);
  }
  int conv = pending_.front();
  pending_.pop_front();
  return conv;
}

std::string UdpConv::Local() {
  QLockGuard guard(lock_);
  Ipv4Addr shown = laddr_.IsUnspecified() ? proto_->ip()->PrimaryAddr() : laddr_;
  return StrFormat("%s %u\n", IpToString(shown).c_str(), lport_);
}

std::string UdpConv::Remote() {
  QLockGuard guard(lock_);
  return StrFormat("%s %u\n", IpToString(raddr_).c_str(), rport_);
}

std::string UdpConv::StatusText() {
  QLockGuard guard(lock_);
  const char* s = "Idle";
  switch (state_) {
    case State::kIdle:
      s = "Idle";
      break;
    case State::kConnected:
      s = "Connected";
      break;
    case State::kAnnounced:
      s = "Announced";
      break;
    case State::kClosed:
      s = "Closed";
      break;
  }
  Ipv4Addr shown = laddr_.IsUnspecified() ? proto_->ip()->PrimaryAddr() : laddr_;
  return StrFormat("udp/%d %d %s %s!%u %s!%u tx %llu rx %llu\n", index_,
                   refs.load(), s, IpToString(shown).c_str(), lport_,
                   IpToString(raddr_).c_str(), rport_,
                   static_cast<unsigned long long>(metrics_.bytes_sent.value()),
                   static_cast<unsigned long long>(metrics_.bytes_received.value()));
}

void UdpConv::CloseUser() {
  std::deque<int> orphans;
  {
    QLockGuard guard(lock_);
    state_ = State::kClosed;
    orphans.swap(pending_);
  }
  incoming_.Wakeup();
  stream_->Hangup();
  // Close calls nobody will ever Listen() for.
  for (int idx : orphans) {
    if (NetConv* c = proto_->Conv(static_cast<size_t>(idx)); c != nullptr) {
      c->CloseUser();
    }
  }
  // Recycle the slot for a future clone.
  {
    QLockGuard guard(lock_);
    state_ = State::kIdle;
    laddr_ = raddr_ = Ipv4Addr{};
    lport_ = rport_ = 0;
    metrics_.Reset();
  }
}

Status UdpConv::Output(const Bytes& payload) {
  Ipv4Addr src, dst;
  uint16_t sport, dport;
  {
    QLockGuard guard(lock_);
    if (state_ != State::kConnected) {
      return Error("not connected");
    }
    src = laddr_;
    dst = raddr_;
    sport = lport_;
    dport = rport_;
  }
  Bytes pkt(kUdpHeaderSize + payload.size());
  Put16(pkt.data(), sport);
  Put16(pkt.data() + 2, dport);
  Put16(pkt.data() + 4, static_cast<uint16_t>(pkt.size()));
  Put16(pkt.data() + 6, 0);  // checksum optional in v4; media are checksummed
  std::memcpy(pkt.data() + kUdpHeaderSize, payload.data(), payload.size());
  metrics_.dgrams_sent.Inc();
  metrics_.bytes_sent.Inc(payload.size());
  return proto_->ip()->Send(kIpProtoUdp, src, dst, pkt);
}

void UdpConv::Input(const IpPacket& pkt, uint16_t sport, Bytes payload) {
  {
    QLockGuard guard(lock_);
    if (state_ == State::kConnected) {
      // Connected conversations only hear their peer.
      if (!(pkt.src == raddr_) || sport != rport_) {
        return;
      }
    }
  }
  metrics_.dgrams_received.Inc();
  metrics_.bytes_received.Inc(payload.size());
  stream_->DeliverUp(AllocDataBlock(std::move(payload), /*delim=*/true));
}

UdpProto::UdpProto(IpStack* ip) : ip_(ip) {
  ip_->RegisterProtocol(kIpProtoUdp,
                        [this](IpPacket&& pkt) { Input(std::move(pkt)); });
}

UdpProto::~UdpProto() {
  ip_->UnregisterProtocol(kIpProtoUdp);
  TimerWheel::Default().Drain();
}

void UdpProto::Abort(const std::string& why) {
  (void)why;  // datagram convs carry no error string; the hangup says it all
  std::vector<UdpConv*> convs;
  {
    QLockGuard guard(lock_);
    for (auto& c : convs_) {
      convs.push_back(c.get());
    }
  }
  for (UdpConv* c : convs) {
    {
      QLockGuard guard(c->lock_);
      c->state_ = UdpConv::State::kClosed;
      c->pending_.clear();
    }
    c->incoming_.Wakeup();
    c->stream_->Hangup();
  }
  TimerWheel::Default().Drain();
}

Result<NetConv*> UdpProto::Clone() {
  auto conv = AllocConv();
  if (!conv.ok()) {
    return conv.error();
  }
  return static_cast<NetConv*>(*conv);
}

Result<UdpConv*> UdpProto::AllocConv() {
  QLockGuard guard(lock_);
  for (auto& c : convs_) {
    bool reusable;
    {
      QLockGuard cguard(c->lock_);
      reusable = c->state_ == UdpConv::State::kIdle && c->refs.load() == 0;
    }
    if (reusable) {
      c->Recycle();
      return c.get();
    }
  }
  if (convs_.size() >= MaxConvs()) {
    return Error(kErrNoConv);
  }
  convs_.push_back(std::make_unique<UdpConv>(this, static_cast<int>(convs_.size())));
  return convs_.back().get();
}

NetConv* UdpProto::Conv(size_t index) {
  QLockGuard guard(lock_);
  return index < convs_.size() ? convs_[index].get() : nullptr;
}

size_t UdpProto::ConvCount() {
  QLockGuard guard(lock_);
  return convs_.size();
}

void UdpProto::Input(IpPacket&& pkt) {
  P9_HOT_ROOT("udp.input");
  if (pkt.payload.size() < kUdpHeaderSize) {
    return;
  }
  const uint8_t* h = pkt.payload.data();
  uint16_t sport = Get16(h);
  uint16_t dport = Get16(h + 2);
  uint16_t len = Get16(h + 4);
  if (len < kUdpHeaderSize || len > pkt.payload.size()) {
    return;
  }
  UdpConv* conv = FindOrSpawn(pkt, sport, dport);
  if (conv == nullptr) {
    return;
  }
  // Reuse the packet's buffer for the datagram payload.
  Bytes payload = std::move(pkt.payload);
  payload.resize(len);
  payload.erase(payload.begin(), payload.begin() + kUdpHeaderSize);
  conv->Input(pkt, sport, std::move(payload));
}

UdpConv* UdpProto::FindOrSpawn(const IpPacket& pkt, uint16_t sport, uint16_t dport) {
  UdpConv* announced = nullptr;
  {
    QLockGuard guard(lock_);
    // Exact 4-tuple match first.
    for (auto& c : convs_) {
      QLockGuard cguard(c->lock_);
      if (c->state_ == UdpConv::State::kConnected && c->lport_ == dport &&
          c->rport_ == sport && c->raddr_ == pkt.src) {
        return c.get();
      }
    }
    for (auto& c : convs_) {
      QLockGuard cguard(c->lock_);
      if (c->state_ == UdpConv::State::kAnnounced && c->lport_ == dport) {
        announced = c.get();
        break;
      }
    }
  }
  if (announced == nullptr) {
    return nullptr;
  }
  // Unseen source on an announced port: spawn a connected conversation and
  // hand it to Listen().
  auto spawned = AllocConv();
  if (!spawned.ok()) {
    return nullptr;
  }
  UdpConv* nc = *spawned;
  {
    QLockGuard guard(nc->lock_);
    nc->state_ = UdpConv::State::kConnected;
    nc->laddr_ = pkt.dst;
    nc->lport_ = dport;
    nc->raddr_ = pkt.src;
    nc->rport_ = sport;
    // state kConnected keeps the slot from being re-cloned while it waits in
    // the pending-call queue.
  }
  {
    QLockGuard guard(announced->lock_);
    announced->pending_.push_back(nc->index());
  }
  announced->incoming_.Wakeup();
  return nc;
}

}  // namespace plan9

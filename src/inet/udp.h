// UDP protocol device (§2.3).
//
// "UDP, while cheap, does not provide reliable sequenced delivery" — it is
// implemented here both as a usable transport (DNS queries ride on it) and
// as the baseline the loss benchmarks measure IL against.  Datagram
// boundaries are preserved: each datagram arrives as one delimited block.
//
// Announce/listen follow the uniform conversation model: a datagram from a
// previously unseen source on an announced port materializes a new
// conversation, which Listen() returns — giving UDP the same file-level
// interface as the connection-oriented protocols.
#ifndef SRC_INET_UDP_H_
#define SRC_INET_UDP_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/inet/ip.h"
#include "src/inet/netproto.h"
#include "src/base/thread_annotations.h"
#include "src/inet/portutil.h"
#include "src/obs/metrics.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"

namespace plan9 {

class UdpProto;

// Registry-backed datagram/byte counters (net.udp.* aggregates).
struct UdpConvMetrics {
  UdpConvMetrics();

  obs::Counter dgrams_sent;
  obs::Counter dgrams_received;
  obs::Counter bytes_sent;
  obs::Counter bytes_received;

  void Reset();
};

class UdpConv : public NetConv {
 public:
  enum class State { kIdle, kConnected, kAnnounced, kClosed };

  UdpConv(UdpProto* proto, int index);

  Status Ctl(const std::string& msg) override;
  Status WaitReady() override;
  Result<int> Listen() override;
  std::string Local() override;
  std::string Remote() override;
  std::string StatusText() override;
  void CloseUser() override;

  const UdpConvMetrics& metrics() const { return metrics_; }

 private:
  friend class UdpProto;
  class Module;

  // Transmit one datagram to the connected remote.
  Status Output(const Bytes& payload);
  void Input(const IpPacket& pkt, uint16_t sport, Bytes payload) P9_HOT_PATH;
  // Fresh stream + state for slot reuse after CloseUser.
  void Recycle();

  UdpProto* proto_;
  // Ordered after udp.proto (FindOrSpawn/AllocConv hold both).
  QLock lock_{"udp.conv"};
  Rendez incoming_;
  State state_ GUARDED_BY(lock_) = State::kIdle;
  Ipv4Addr laddr_ GUARDED_BY(lock_), raddr_ GUARDED_BY(lock_);
  uint16_t lport_ GUARDED_BY(lock_) = 0, rport_ GUARDED_BY(lock_) = 0;
  // Conversations spawned by unseen sources.
  std::deque<int> pending_ GUARDED_BY(lock_);
  UdpConvMetrics metrics_;  // atomic counters; no lock needed
};

class UdpProto : public NetProto {
 public:
  explicit UdpProto(IpStack* ip);
  ~UdpProto() override;

  std::string name() override { return "udp"; }
  Result<NetConv*> Clone() override;
  NetConv* Conv(size_t index) override;
  size_t ConvCount() override;

  IpStack* ip() { return ip_; }

  // Crash semantics (node lifecycle): hang up every conversation's stream
  // and wake blocked listeners; nothing is emitted.  Call after
  // IpStack::Unplug().
  void Abort(const std::string& why) MAY_BLOCK;

 private:
  friend class UdpConv;

  void Input(IpPacket&& pkt) P9_HOT_PATH;
  UdpConv* FindOrSpawn(const IpPacket& pkt, uint16_t sport, uint16_t dport);
  Result<UdpConv*> AllocConv();

  IpStack* ip_;
  QLock lock_{"udp.proto"};
  std::vector<std::unique_ptr<UdpConv>> convs_ GUARDED_BY(lock_);
  PortAlloc ports_ GUARDED_BY(lock_);
};

}  // namespace plan9

#endif  // SRC_INET_UDP_H_

#include "src/inet/ipaddr.h"

#include "src/base/strings.h"

namespace plan9 {

std::string IpToString(Ipv4Addr addr) {
  return StrFormat("%u.%u.%u.%u", addr.v >> 24 & 0xff, addr.v >> 16 & 0xff,
                   addr.v >> 8 & 0xff, addr.v & 0xff);
}

Result<Ipv4Addr> IpFromString(std::string_view s) {
  auto parts = GetFields(s, ".", /*collapse=*/false);
  if (parts.size() != 4) {
    return Error(kErrBadAddr);
  }
  uint32_t v = 0;
  for (auto& p : parts) {
    auto octet = ParseU64(p);
    if (!octet || *octet > 255) {
      return Error(kErrBadAddr);
    }
    v = v << 8 | static_cast<uint32_t>(*octet);
  }
  return Ipv4Addr{v};
}

Ipv4Addr ClassMask(Ipv4Addr addr) {
  uint32_t top = addr.v >> 24;
  if (top < 128) {
    return Ipv4Addr{0xff000000u};
  }
  if (top < 192) {
    return Ipv4Addr{0xffff0000u};
  }
  return Ipv4Addr{0xffffff00u};
}

}  // namespace plan9

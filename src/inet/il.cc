#include "src/inet/il.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/obs/trace.h"
#include "src/task/hotcheck.h"

namespace plan9 {
namespace {

// IL RTT samples feed this histogram (microseconds), next to the adaptive
// timeout state that consumes them.
obs::Histogram& IlRttHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Default().HistogramNamed("net.il.rtt");
  return h;
}

constexpr size_t kIlHeaderSize = 18;

// Timing bounds.  Plan 9 used coarse ticks; we work in microseconds with the
// same adaptive structure (srtt + 4*mdev, exponential backoff on repeat).
constexpr auto kMinRto = std::chrono::microseconds(20'000);
constexpr auto kMaxRto = std::chrono::microseconds(2'000'000);
constexpr auto kInitialRtt = std::chrono::microseconds(100'000);
constexpr int kMaxSyncTries = 8;
constexpr int kMaxCloseTries = 4;
constexpr int kMaxBackoff = 16;  // give up after this many consecutive timeouts
// Deadman: a peer that answers none of this many consecutive queries is
// declared dead.  Tighter than kMaxBackoff (which tolerates answered-but-
// unproductive rounds) yet loose enough to ride out a few-second partition.
constexpr int kDeadmanQueries = 10;
// Idle connections are probed at this cadence (real IL regularly queries
// idle conversations); unanswered probes count toward the deadman.
constexpr auto kKeepaliveTime = std::chrono::microseconds(2'000'000);

void Put16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}
uint16_t Get16(const uint8_t* p) { return static_cast<uint16_t>(p[0] << 8 | p[1]); }
void Put32(uint8_t* p, uint32_t v) {
  Put16(p, static_cast<uint16_t>(v >> 16));
  Put16(p + 2, static_cast<uint16_t>(v));
}
uint32_t Get32(const uint8_t* p) {
  return static_cast<uint32_t>(Get16(p)) << 16 | Get16(p + 2);
}

const char* StateName(IlConv::State s) {
  switch (s) {
    case IlConv::State::kClosed:
      return "Closed";
    case IlConv::State::kSyncer:
      return "Syncer";
    case IlConv::State::kSyncee:
      return "Syncee";
    case IlConv::State::kEstablished:
      return "Established";
    case IlConv::State::kListening:
      return "Listen";
    case IlConv::State::kClosing:
      return "Closing";
  }
  return "?";
}

}  // namespace

IlConvMetrics::IlConvMetrics() {
  auto& r = obs::MetricsRegistry::Default();
  msgs_sent.BindParent(&r.CounterNamed("net.il.msgs-sent"));
  msgs_received.BindParent(&r.CounterNamed("net.il.msgs-rcvd"));
  bytes_sent.BindParent(&r.CounterNamed("net.il.bytes-sent"));
  bytes_received.BindParent(&r.CounterNamed("net.il.bytes-rcvd"));
  retransmits.BindParent(&r.CounterNamed("net.il.resends"));
  queries_sent.BindParent(&r.CounterNamed("net.il.queries"));
  states_sent.BindParent(&r.CounterNamed("net.il.states"));
  dups_dropped.BindParent(&r.CounterNamed("net.il.dups"));
  out_of_window.BindParent(&r.CounterNamed("net.il.outwin"));
  keepalives_sent.BindParent(&r.CounterNamed("net.il.keepalives"));
  deadman_closes.BindParent(&r.CounterNamed("net.il.deadman"));
}

void IlConvMetrics::Reset() {
  msgs_sent.Reset();
  msgs_received.Reset();
  bytes_sent.Reset();
  bytes_received.Reset();
  retransmits.Reset();
  queries_sent.Reset();
  states_sent.Reset();
  dups_dropped.Reset();
  out_of_window.Reset();
  keepalives_sent.Reset();
  deadman_closes.Reset();
}

// Stream device module: delimited messages from the user become IL messages.
class IlConv::Module : public StreamModule {
 public:
  explicit Module(IlConv* conv) : conv_(conv) {}
  std::string_view name() const override { return "il"; }

  void DownPut(BlockPtr b) override P9_CONSUMES(b) P9_HOT_PATH {
    if (b->type != BlockType::kData) {
      DropBlock(std::move(b));
      return;
    }
    pending_.insert(pending_.end(), b->payload(), b->payload() + b->size());
    bool delim = b->delim;
    RecycleBlock(std::move(b));  // payload captured; pool the node
    if (!delim) {
      return;
    }
    Bytes msg;
    msg.swap(pending_);
    Status s = conv_->SendMessage(std::move(msg));
    if (!s.ok()) {
      P9_LOG(kDebug) << "il send: " << s.error().message();
    }
  }

 private:
  IlConv* conv_;
  Bytes pending_;
};

IlConv::IlConv(IlProto* proto, int index) : proto_(proto) {
  index_ = index;
  stream_ = std::make_unique<Stream>(std::make_unique<Module>(this));
}

IlConv::~IlConv() {
  TimerId t;
  {
    QLockGuard guard(lock_);
    t = timer_;
    timer_ = kNoTimer;
  }
  if (t != kNoTimer) {
    TimerWheel::Default().Cancel(t);
  }
}

void IlConv::Recycle() {
  QLockGuard guard(lock_);
  stream_ = std::make_unique<Stream>(std::make_unique<Module>(this));
  state_ = State::kClosed;
  laddr_ = raddr_ = Ipv4Addr{};
  lport_ = rport_ = 0;
  start_ = next_ = rstart_ = recvd_ = 0;
  unacked_.clear();
  out_of_order_.clear();
  srtt_ = mdev_ = std::chrono::microseconds(0);
  backoff_ = 0;
  sync_tries_ = 0;
  close_tries_ = 0;
  unanswered_queries_ = 0;
  pending_.clear();
  err_.clear();
  metrics_.Reset();
}

Status IlConv::Ctl(const std::string& msg) {
  auto words = Tokenize(msg);
  if (words.empty()) {
    return Error(kErrBadCtl);
  }
  if (words[0] == "connect" && words.size() >= 2) {
    P9_ASSIGN_OR_RETURN(HostPort hp, ParseConnectAddr(words[1]));
    return StartConnect(hp);
  }
  if (words[0] == "announce" && words.size() >= 2) {
    P9_ASSIGN_OR_RETURN(uint16_t port, ParseAnnounceAddr(words[1]));
    QLockGuard guard(lock_);
    if (state_ != State::kClosed) {
      return Error("connection already in use");
    }
    lport_ = port;
    state_ = State::kListening;
    return Status::Ok();
  }
  if (words[0] == "hangup" || words[0] == "reject") {
    // "networks such as IP ignore the third argument" — reject == hangup.
    CloseUser();
    return Status::Ok();
  }
  if (words[0] == "accept") {
    return Status::Ok();  // IP-family calls are already accepted at listen
  }
  return Error(kErrBadCtl);
}

Status IlConv::StartConnect(const HostPort& dest) {
  P9_ASSIGN_OR_RETURN(Ipv4Addr laddr, proto_->ip()->SourceFor(dest.addr));
  uint16_t ephemeral;
  uint32_t isn;
  {
    QLockGuard pguard(proto_->lock_);
    ephemeral = proto_->ports_.Next();
    isn = static_cast<uint32_t>(proto_->isn_rng_.Next());
  }
  Status emit = Status::Ok();
  {
    QLockGuard guard(lock_);
    if (state_ != State::kClosed) {
      return Error("connection already in use");
    }
    laddr_ = laddr;
    raddr_ = dest.addr;
    lport_ = ephemeral;
    rport_ = dest.port;
    // "Connection setup uses a two way handshake to generate initial
    // sequence numbers at each end of the connection."
    start_ = isn;
    next_ = start_ + 1;
    state_ = State::kSyncer;
    sync_tries_ = 0;
    emit = EmitLocked(IlType::kSync, start_, 0, {});
    ArmTimerLocked(RtoLocked());
  }
  return emit;
}

Status IlConv::WaitReady() {
  QLockGuard guard(lock_);
  if (state_ == State::kListening) {
    return Status::Ok();
  }
  bool done = ready_.SleepFor(lock_, std::chrono::seconds(15), [&]() REQUIRES(lock_) {
    return state_ == State::kEstablished || state_ == State::kClosed;
  });
  if (state_ == State::kEstablished) {
    return Status::Ok();
  }
  if (!done) {
    return Error(kErrTimedOut);
  }
  return Error(err_.empty() ? std::string(kErrConnRefused) : err_);
}

Result<int> IlConv::Listen() {
  QLockGuard guard(lock_);
  if (state_ != State::kListening) {
    return Error("not announced");
  }
  incoming_.Sleep(lock_, [&]() REQUIRES(lock_) { return !pending_.empty() || state_ == State::kClosed; });
  if (state_ == State::kClosed) {
    return Error(kErrHungup);
  }
  int conv = pending_.front();
  pending_.pop_front();
  return conv;
}

std::string IlConv::Local() {
  QLockGuard guard(lock_);
  Ipv4Addr shown = laddr_.IsUnspecified() ? proto_->ip()->PrimaryAddr() : laddr_;
  return StrFormat("%s %u\n", IpToString(shown).c_str(), lport_);
}

std::string IlConv::Remote() {
  QLockGuard guard(lock_);
  return StrFormat("%s %u\n", IpToString(raddr_).c_str(), rport_);
}

std::string IlConv::StatusText() {
  QLockGuard guard(lock_);
  // The paper's one-line conversation summary: state, local/remote address,
  // bytes each way (plus IL's adaptive-timeout state for good measure).
  Ipv4Addr shown = laddr_.IsUnspecified() ? proto_->ip()->PrimaryAddr() : laddr_;
  return StrFormat("il/%d %d %s %s!%u %s!%u tx %llu rx %llu rtt %lld us unacked %zu%s\n",
                   index_, refs.load(), StateName(state_),
                   IpToString(shown).c_str(), lport_, IpToString(raddr_).c_str(),
                   rport_,
                   static_cast<unsigned long long>(metrics_.bytes_sent.value()),
                   static_cast<unsigned long long>(metrics_.bytes_received.value()),
                   static_cast<long long>(srtt_.count()), unacked_.size(),
                   TraceNote().c_str());
}

std::chrono::microseconds IlConv::Srtt() {
  QLockGuard guard(lock_);
  return srtt_;
}

void IlConv::CloseUser() {
  std::deque<int> orphans;
  bool hangup = false;
  {
    QLockGuard guard(lock_);
    switch (state_) {
      case State::kEstablished:
        state_ = State::kClosing;
        close_tries_ = 0;
        (void)EmitLocked(IlType::kClose, next_, recvd_, {});
        ArmTimerLocked(RtoLocked());
        break;
      case State::kListening:
        orphans.swap(pending_);
        state_ = State::kClosed;
        HangupLocked();
        break;
      case State::kSyncer:
      case State::kSyncee:
        state_ = State::kClosed;
        HangupLocked();
        break;
      case State::kClosing:
      case State::kClosed:
        break;
    }
    hangup = std::exchange(hangup_pending_, false);
  }
  if (hangup) {
    CompleteHangup();
  }
  ready_.Wakeup();
  window_.Wakeup();
  incoming_.Wakeup();
  for (int idx : orphans) {
    if (NetConv* c = proto_->Conv(static_cast<size_t>(idx)); c != nullptr) {
      c->CloseUser();
    }
  }
}

void IlConv::HangupLocked() {
  // Not stream_->Hangup() here: that takes the stream chain lock, which the
  // user write path holds while acquiring lock_.  Callers drain the flag
  // once lock_ is dropped.
  hangup_pending_ = true;
  err_ = err_.empty() ? std::string(kErrClosed) : err_;
  if (timer_ != kNoTimer) {
    TimerWheel::Default().Cancel(timer_);
    timer_ = kNoTimer;
  }
}

void IlConv::CompleteHangup() {
  stream_->Hangup();
  // Publish the slot only now: AllocConv may Recycle() a free slot, which
  // replaces stream_ — that must not happen while the old stream is still
  // delivering the hangup.
  QLockGuard guard(lock_);
  slot_free_ = true;
}

Status IlConv::SendMessage(Bytes payload) {
  P9_HOT_ROOT("il.send");
  QLockGuard guard(lock_);
  // Window flow control: the user's writing process sleeps until space.
  window_.Sleep(lock_, [&]() REQUIRES(lock_) {
    return state_ != State::kEstablished || unacked_.size() < kWindow;
  });
  if (state_ != State::kEstablished) {
    return Error(err_.empty() ? std::string(kErrHungup) : err_);
  }
  uint32_t id = next_++;
  metrics_.msgs_sent.Inc();
  metrics_.bytes_sent.Inc(payload.size());
  P9_TRACE(obs::TraceKind::kIl, StrFormat("il/%d", index_),
           StrFormat("send id=%u len=%zu", id, payload.size()));
  // The retransmit buffer takes the payload by move; the wire frame is
  // serialized from it, so the user's message is copied exactly once (into
  // the packet).
  unacked_.push_back(Unacked{id, std::move(payload), TimerWheel::Clock::now(), false});
  Status s = EmitLocked(IlType::kData, id, recvd_, unacked_.back().payload);
  if (unacked_.size() == 1) {
    // First outstanding message: the pending timer (if any) is ticking at
    // the keep-alive cadence — rearm at the retransmit timeout.
    ArmTimerLocked(RtoLocked());
  }
  return s;
}

Status IlConv::EmitLocked(IlType type, uint32_t id, uint32_t ack, const Bytes& payload) {
  Bytes pkt(kIlHeaderSize + payload.size());
  uint8_t* h = pkt.data();
  Put16(h, 0);  // sum, filled below
  Put16(h + 2, static_cast<uint16_t>(pkt.size()));
  h[4] = static_cast<uint8_t>(type);
  h[5] = 0;  // spec
  Put16(h + 6, lport_);
  Put16(h + 8, rport_);
  Put32(h + 10, id);
  Put32(h + 14, ack);
  if (!payload.empty()) {
    std::memcpy(h + kIlHeaderSize, payload.data(), payload.size());
  }
  Put16(h, InetChecksum(pkt.data(), pkt.size()));
  return proto_->ip()->Send(kIpProtoIl, laddr_, raddr_, pkt);
}

std::chrono::microseconds IlConv::RtoLocked() const {
  auto base = srtt_.count() == 0 ? kInitialRtt : srtt_ + 4 * mdev_;
  // Exponential backoff while timeouts repeat, but clamped: a query is one
  // tiny control message, so IL keeps probing rather than going silent for
  // seconds the way a blind retransmitter must.
  int exponent = std::min(backoff_, 5);
  for (int i = 0; i < exponent && base < kMaxRto; i++) {
    base *= 2;
  }
  return std::clamp(base, kMinRto, kMaxRto);
}

void IlConv::RttSampleLocked(std::chrono::microseconds sample) {
  IlRttHistogram().Record(static_cast<uint64_t>(sample.count()));
  // A sampled-trace conversation attributes its first RTT measurements to
  // its trace as `il.rtt` point spans parented on the dial.connect span
  // that created the conversation (DESIGN.md §12).  Bounded by the per-
  // capture budget and gated on sampling still being on, so turning
  // sampling off quiesces the ring and trace harvesting over IL never
  // feeds back into the trace.
  if (obs::FlightRecorder::Default().enabled(obs::TraceKind::kSpan) &&
      obs::Tracer::Default().sample_interval() != 0 && trace_hi() != 0 &&
      TakeRttSpanBudget()) {
    obs::EmitPointSpan("il.rtt", proto_->host(), trace_hi(), trace_lo(),
                       trace_parent(),
                       static_cast<uint64_t>(sample.count()));
  }
  // Van Jacobson smoothing, as adaptive as the paper demands.
  if (srtt_.count() == 0) {
    srtt_ = sample;
    mdev_ = sample / 2;
    return;
  }
  auto err = sample - srtt_;
  srtt_ += err / 8;
  mdev_ += (std::chrono::microseconds(std::abs(err.count())) - mdev_) / 4;
}

void IlConv::ArmTimerLocked(std::chrono::microseconds delay) {
  if (dying_) {
    return;  // teardown in progress: a re-armed timer would fire on freed state
  }
  if (timer_ != kNoTimer) {
    TimerWheel::Default().Cancel(timer_);
  }
  timer_ = TimerWheel::Default().Schedule(delay, [this] { TimerFire(); });
}

void IlConv::TimerFire() {
  QLockGuard guard(lock_);
  timer_ = kNoTimer;
  switch (state_) {
    case State::kSyncer:
    case State::kSyncee:
      if (++sync_tries_ > kMaxSyncTries) {
        state_ = State::kClosed;
        err_ = kErrTimedOut;
        HangupLocked();
        break;
      }
      (void)EmitLocked(IlType::kSync, start_, state_ == State::kSyncee ? recvd_ : 0, {});
      backoff_++;
      ArmTimerLocked(RtoLocked());
      break;
    case State::kEstablished:
      if (unanswered_queries_ >= kDeadmanQueries) {
        metrics_.deadman_closes.Inc();
        // Recovery accounting: a conv reaped because its peer went silent
        // (crash, partition) — the chaos invariants assert on this.
        obs::MetricsRegistry::Default().CounterNamed("recovery.il.deadman-reaped").Inc();
        P9_TRACE(obs::TraceKind::kIl, StrFormat("il/%d", index_), "deadman close");
        state_ = State::kClosed;
        err_ = kErrTimedOut;
        HangupLocked();
        break;
      }
      if (unacked_.empty()) {
        // Nothing outstanding: keep-alive.  Real IL regularly queries idle
        // connections so a host holding a conversation its peer has
        // forgotten (crashed, or deadman-killed across a partition) finds
        // out, instead of blocking a reader forever.  Unanswered probes
        // feed the same deadman; any packet from the peer resets it, so an
        // idle connection rides out partitions shorter than the full
        // ladder (~kDeadmanQueries * kKeepaliveTime).
        metrics_.keepalives_sent.Inc();
        unanswered_queries_++;
        (void)EmitLocked(IlType::kQuery, next_ - 1, recvd_, {});
        ArmTimerLocked(kKeepaliveTime);
        break;
      }
      if (++backoff_ > kMaxBackoff) {
        state_ = State::kClosed;
        err_ = kErrTimedOut;
        HangupLocked();
        break;
      }
      // "In contrast to other protocols, IL does not do blind retransmission.
      // If a message is lost and a timeout occurs, a query message is sent."
      metrics_.queries_sent.Inc();
      unanswered_queries_++;
      P9_TRACE(obs::TraceKind::kIl, StrFormat("il/%d", index_),
               StrFormat("query recvd=%u unacked=%zu", recvd_, unacked_.size()));
      (void)EmitLocked(IlType::kQuery, next_ - 1, recvd_, {});
      ArmTimerLocked(RtoLocked());
      break;
    case State::kClosing:
      if (++close_tries_ > kMaxCloseTries) {
        state_ = State::kClosed;
        HangupLocked();
        break;
      }
      (void)EmitLocked(IlType::kClose, next_, recvd_, {});
      ArmTimerLocked(RtoLocked());
      break;
    case State::kListening:
    case State::kClosed:
      break;
  }
  bool hangup = std::exchange(hangup_pending_, false);
  guard.Unlock();
  if (hangup) {
    CompleteHangup();
  }
  ready_.Wakeup();
  window_.Wakeup();
}

void IlConv::HandleAckLocked(uint32_t ack) {
  P9_TRACE(obs::TraceKind::kIl, StrFormat("il/%d", index_),
           StrFormat("ack %u", ack));
  bool advanced = false;
  bool first = true;
  while (!unacked_.empty() && static_cast<int32_t>(ack - unacked_.front().id) >= 0) {
    auto& msg = unacked_.front();
    if (first && !msg.retransmitted) {
      // Karn's rule, batch form: only the front message's timing is a clean
      // RTT.  Messages behind a repaired hole were delivered long before
      // the cumulative ack could name them — sampling those would smear
      // hole-repair stalls into srtt.
      RttSampleLocked(std::chrono::duration_cast<std::chrono::microseconds>(
          TimerWheel::Clock::now() - msg.sent_at));
    }
    first = false;
    unacked_.pop_front();
    advanced = true;
  }
  if (advanced) {
    backoff_ = 0;
    if (unacked_.empty()) {
      // All data acknowledged: drop to the keep-alive cadence.
      ArmTimerLocked(kKeepaliveTime);
    } else {
      ArmTimerLocked(RtoLocked());
    }
  }
}

void IlConv::DeliverDataLocked(uint32_t id, Bytes payload, bool is_query,
                               std::vector<BlockPtr>* deliveries) {
  int32_t delta = static_cast<int32_t>(id - recvd_);
  if (delta <= 0) {
    metrics_.dups_dropped.Inc();
    return;
  }
  if (delta > static_cast<int32_t>(kWindow)) {
    // "messages outside the window are discarded and must be retransmitted"
    metrics_.out_of_window.Inc();
    return;
  }
  if (delta == 1) {
    recvd_ = id;
    metrics_.msgs_received.Inc();
    metrics_.bytes_received.Inc(payload.size());
    deliveries->push_back(AllocDataBlock(std::move(payload), /*delim=*/true));
    // Drain any buffered successors.
    auto it = out_of_order_.find(recvd_ + 1);
    while (it != out_of_order_.end()) {
      recvd_++;
      metrics_.msgs_received.Inc();
      metrics_.bytes_received.Inc(it->second.size());
      deliveries->push_back(AllocDataBlock(std::move(it->second), /*delim=*/true));
      out_of_order_.erase(it);
      it = out_of_order_.find(recvd_ + 1);
    }
  } else {
    out_of_order_[id] = std::move(payload);
  }
}

void IlConv::Input(Ipv4Addr src, IlType type, uint16_t sport, uint32_t id, uint32_t ack,
                   Bytes payload) {
  std::vector<BlockPtr> deliveries;
  bool wake_ready = false;
  bool hangup = false;
  {
    QLockGuard guard(lock_);
    switch (state_) {
      case State::kSyncer:
        if (type == IlType::kSync && ack == start_) {
          // Our sync was acknowledged; the peer's id seeds our receive seq.
          rstart_ = id;
          recvd_ = id;
          state_ = State::kEstablished;
          backoff_ = 0;
          sync_tries_ = 0;
          (void)EmitLocked(IlType::kAck, next_ - 1, recvd_, {});
          wake_ready = true;
        }
        break;
      case State::kSyncee:
        if ((type == IlType::kAck || type == IlType::kData ||
             type == IlType::kDataQuery) &&
            ack == start_) {
          state_ = State::kEstablished;
          backoff_ = 0;
          sync_tries_ = 0;
          wake_ready = true;
          if (type == IlType::kData || type == IlType::kDataQuery) {
            DeliverDataLocked(id, std::move(payload), type == IlType::kDataQuery,
                              &deliveries);
            (void)EmitLocked(IlType::kAck, next_ - 1, recvd_, {});
          }
        } else if (type == IlType::kQuery && ack == start_) {
          // The peer is already established (it only queries once up) but
          // our sync-ack never registered here — its query acking our start
          // proves the handshake completed.  Without this transition the
          // conversation stalls until the sync retry timer happens to fire.
          state_ = State::kEstablished;
          backoff_ = 0;
          sync_tries_ = 0;
          metrics_.states_sent.Inc();
          (void)EmitLocked(IlType::kState, next_ - 1, recvd_, {});
          wake_ready = true;
        } else if (type == IlType::kSync) {
          // Duplicate sync from the peer: re-answer.
          (void)EmitLocked(IlType::kSync, start_, recvd_, {});
        }
        break;
      case State::kEstablished:
        // Any packet from the peer proves it is alive: feed the deadman.
        unanswered_queries_ = 0;
        switch (type) {
          case IlType::kSync:
            // Stale handshake duplicate; re-ack.
            (void)EmitLocked(IlType::kAck, next_ - 1, recvd_, {});
            break;
          case IlType::kData:
          case IlType::kDataQuery: {
            HandleAckLocked(ack);
            uint32_t before = recvd_;
            DeliverDataLocked(id, std::move(payload), type == IlType::kDataQuery,
                              &deliveries);
            if (recvd_ != before || type == IlType::kDataQuery) {
              // Acknowledge received data.  A DataQuery (retransmission)
              // demands an immediate ack even if nothing advanced.
              (void)EmitLocked(IlType::kAck, next_ - 1, recvd_, {});
            } else if (static_cast<int32_t>(id - recvd_) > 1) {
              // A gap: volunteer our state so the sender can repair the
              // hole without waiting out its timer (still no blind
              // retransmission — the sender resends only what's missing).
              metrics_.states_sent.Inc();
              (void)EmitLocked(IlType::kState, next_ - 1, recvd_, {});
            }
            break;
          }
          case IlType::kAck:
            HandleAckLocked(ack);
            break;
          case IlType::kQuery: {
            // "The receiver responds to a query" with its current state...
            metrics_.states_sent.Inc();
            HandleAckLocked(ack);
            (void)EmitLocked(IlType::kState, next_ - 1, recvd_, {});
            break;
          }
          case IlType::kState: {
            // ...and the sender retransmits what the state report shows
            // missing.  Only the *oldest* unacked message is resent (as a
            // DataQuery, provoking an immediate ack): later messages are
            // usually already buffered in the receiver's resequencing
            // window, so the cumulative ack jumps once the hole fills.
            // This is the antithesis of TCP's go-back-N.
            HandleAckLocked(ack);
            if (!unacked_.empty()) {
              // Rate-limit repairs: several State reports can name the same
              // hole; one Dataquery per half-RTT is enough.
              auto now = TimerWheel::Clock::now();
              auto min_gap = srtt_.count() > 0 ? srtt_ / 2 : kMinRto;
              if (now - last_rexmit_ >= min_gap ||
                  unacked_.front().id != last_rexmit_id_) {
                auto& msg = unacked_.front();
                msg.retransmitted = true;
                metrics_.retransmits.Inc();
                P9_TRACE(obs::TraceKind::kIl, StrFormat("il/%d", index_),
                         StrFormat("resend id=%u len=%zu", msg.id, msg.payload.size()));
                last_rexmit_ = now;
                last_rexmit_id_ = msg.id;
                (void)EmitLocked(IlType::kDataQuery, msg.id, recvd_, msg.payload);
              }
              ArmTimerLocked(RtoLocked());
            }
            break;
          }
          case IlType::kClose:
            (void)EmitLocked(IlType::kClose, next_, recvd_, {});
            state_ = State::kClosed;
            err_ = kErrClosed;
            HangupLocked();
            break;
        }
        break;
      case State::kClosing:
        if (type == IlType::kClose) {
          state_ = State::kClosed;
          HangupLocked();
        } else if (type == IlType::kQuery) {
          (void)EmitLocked(IlType::kState, next_ - 1, recvd_, {});
        }
        break;
      case State::kListening:
      case State::kClosed:
        if (type == IlType::kClose) {
          (void)EmitLocked(IlType::kClose, next_, recvd_, {});
        }
        break;
    }
    hangup = std::exchange(hangup_pending_, false);
  }
  for (auto& b : deliveries) {
    stream_->DeliverUp(std::move(b));
  }
  if (hangup) {
    CompleteHangup();
  }
  if (wake_ready) {
    ready_.Wakeup();
  }
  window_.Wakeup();
}

IlProto::IlProto(IpStack* ip) : ip_(ip) {
  ip_->RegisterProtocol(kIpProtoIl,
                        [this](IpPacket&& pkt) { Input(std::move(pkt)); });
}

IlProto::~IlProto() {
  ip_->UnregisterProtocol(kIpProtoIl);
  {
    QLockGuard guard(lock_);
    for (auto& c : convs_) {
      TimerId t;
      {
        QLockGuard cguard(c->lock_);
        c->dying_ = true;  // a racing TimerFire must not re-arm
        t = c->timer_;
        c->timer_ = kNoTimer;
      }
      if (t != kNoTimer) {
        TimerWheel::Default().Cancel(t);
      }
    }
  }
  // No new packets or timer fires can reach a conversation now; wait out any
  // callback already executing.
  TimerWheel::Default().Drain();
}

void IlProto::Abort(const std::string& why) {
  std::vector<IlConv*> convs;
  {
    QLockGuard guard(lock_);
    for (auto& c : convs_) {
      convs.push_back(c.get());
    }
  }
  for (IlConv* c : convs) {
    bool hangup = false;
    {
      QLockGuard guard(c->lock_);
      c->dying_ = true;  // a racing TimerFire must not re-arm
      if (c->state_ != IlConv::State::kClosed) {
        c->err_ = why;
        c->state_ = IlConv::State::kClosed;
        c->pending_.clear();  // listeners drop their queued calls too
        c->HangupLocked();
      } else if (c->timer_ != kNoTimer) {
        TimerWheel::Default().Cancel(c->timer_);
        c->timer_ = kNoTimer;
      }
      hangup = std::exchange(c->hangup_pending_, false);
    }
    if (hangup) {
      c->CompleteHangup();
    }
    c->ready_.Wakeup();
    c->window_.Wakeup();
    c->incoming_.Wakeup();
  }
  // Wait out timer callbacks already executing; after Drain no conversation
  // can emit or re-arm.
  TimerWheel::Default().Drain();
}

Result<NetConv*> IlProto::Clone() {
  auto conv = AllocConv();
  if (!conv.ok()) {
    return conv.error();
  }
  return static_cast<NetConv*>(*conv);
}

Result<IlConv*> IlProto::AllocConv() {
  QLockGuard guard(lock_);
  for (auto& c : convs_) {
    bool reusable;
    {
      QLockGuard cguard(c->lock_);
      reusable = c->slot_free_ && c->state_ == IlConv::State::kClosed && c->refs.load() == 0;
    }
    if (reusable) {
      c->Recycle();
      QLockGuard cguard(c->lock_);
      c->slot_free_ = false;
      return c.get();
    }
  }
  if (convs_.size() >= MaxConvs()) {
    return Error(kErrNoConv);
  }
  convs_.push_back(std::make_unique<IlConv>(this, static_cast<int>(convs_.size())));
  IlConv* c = convs_.back().get();
  QLockGuard cguard(c->lock_);
  c->slot_free_ = false;
  return c;
}

NetConv* IlProto::Conv(size_t index) {
  QLockGuard guard(lock_);
  return index < convs_.size() ? convs_[index].get() : nullptr;
}

size_t IlProto::ConvCount() {
  QLockGuard guard(lock_);
  return convs_.size();
}

Result<std::string> IlProto::InfoText(NetConv* conv, const std::string& file) {
  if (file == "stats") {
    IlConv* c = static_cast<IlConv*>(conv);
    const IlConvMetrics& m = c->metrics();
    std::string out;
    auto line = [&](const char* key, const obs::Counter& v) {
      out += StrFormat("%s: %llu\n", key, static_cast<unsigned long long>(v.value()));
    };
    line("sent", m.msgs_sent);
    line("rcvd", m.msgs_received);
    line("txbytes", m.bytes_sent);
    line("rxbytes", m.bytes_received);
    line("rexmit", m.retransmits);
    line("queries", m.queries_sent);
    line("states", m.states_sent);
    line("dup", m.dups_dropped);
    line("outwin", m.out_of_window);
    line("keepalives", m.keepalives_sent);
    line("deadman", m.deadman_closes);
    out += StrFormat("rtt: %lld us\n", static_cast<long long>(c->Srtt().count()));
    return out;
  }
  return ProtoFiles::InfoText(conv, file);
}

IlConv* IlProto::SpawnFromSync(Ipv4Addr dst, Ipv4Addr src, uint16_t dport, uint16_t sport,
                               uint32_t peer_id, IlConv* listener) {
  auto spawned = AllocConv();
  if (!spawned.ok()) {
    return nullptr;
  }
  IlConv* nc = *spawned;
  uint32_t isn;
  {
    QLockGuard guard(lock_);
    isn = static_cast<uint32_t>(isn_rng_.Next());
  }
  {
    QLockGuard guard(nc->lock_);
    nc->state_ = IlConv::State::kSyncee;
    nc->laddr_ = dst;
    nc->lport_ = dport;
    nc->raddr_ = src;
    nc->rport_ = sport;
    nc->rstart_ = peer_id;
    nc->recvd_ = peer_id;
    nc->start_ = isn;
    nc->next_ = isn + 1;
    // Answer the sync: our initial id, acking theirs.
    (void)nc->EmitLocked(IlType::kSync, nc->start_, nc->recvd_, {});
    nc->ArmTimerLocked(nc->RtoLocked());
  }
  {
    QLockGuard guard(listener->lock_);
    listener->pending_.push_back(nc->index());
  }
  listener->incoming_.Wakeup();
  return nc;
}

void IlProto::Input(IpPacket&& pkt) {
  P9_HOT_ROOT("il.input");
  if (pkt.payload.size() < kIlHeaderSize) {
    return;
  }
  const uint8_t* h = pkt.payload.data();
  if (InetChecksum(h, Get16(h + 2) <= pkt.payload.size() ? Get16(h + 2)
                                                         : pkt.payload.size()) != 0) {
    return;  // corrupt
  }
  uint16_t len = Get16(h + 2);
  if (len < kIlHeaderSize || len > pkt.payload.size()) {
    return;
  }
  IlType type = static_cast<IlType>(h[4]);
  uint16_t sport = Get16(h + 6);
  uint16_t dport = Get16(h + 8);
  uint32_t id = Get32(h + 10);
  uint32_t ack = Get32(h + 14);
  // Reuse the packet's buffer for the payload: truncate the trailer, shift
  // out the header.  One memmove, no allocation on the receive path.
  Bytes payload = std::move(pkt.payload);
  payload.resize(len);
  payload.erase(payload.begin(), payload.begin() + kIlHeaderSize);

  // Demultiplex: exact conversation first, listener for Syncs second.
  IlConv* conv = nullptr;
  IlConv* listener = nullptr;
  {
    QLockGuard guard(lock_);
    for (auto& c : convs_) {
      QLockGuard cguard(c->lock_);
      if (c->state_ != IlConv::State::kClosed &&
          c->state_ != IlConv::State::kListening && c->lport_ == dport &&
          c->rport_ == sport && c->raddr_ == pkt.src) {
        conv = c.get();
        break;
      }
    }
    if (conv == nullptr && type == IlType::kSync) {
      for (auto& c : convs_) {
        QLockGuard cguard(c->lock_);
        if (c->state_ == IlConv::State::kListening && c->lport_ == dport) {
          listener = c.get();
          break;
        }
      }
    }
  }
  if (conv != nullptr) {
    conv->Input(pkt.src, type, sport, id, ack, std::move(payload));
    return;
  }
  if (listener != nullptr) {
    SpawnFromSync(pkt.dst, pkt.src, dport, sport, id, listener);
    return;
  }
  // No conversation wants this packet.  Real IL resets traffic for
  // conversations it has no record of, so a peer probing a dead one (its
  // keep-alive, a query across our deadman kill) learns fast instead of
  // probing a black hole.  Syncs to closed ports stay silently ignored
  // (connection attempts ride their own retry ladder), and we never answer
  // a kClose with a kClose — that would ping-pong between two dead ends.
  if (type != IlType::kSync && type != IlType::kClose) {
    SendReset(pkt.dst, pkt.src, dport, sport, ack, id);
  }
}

void IlProto::SendReset(Ipv4Addr laddr, Ipv4Addr raddr, uint16_t lport, uint16_t rport,
                        uint32_t id, uint32_t ack) {
  Bytes pkt(kIlHeaderSize);
  uint8_t* h = pkt.data();
  Put16(h, 0);  // sum, filled below
  Put16(h + 2, static_cast<uint16_t>(pkt.size()));
  h[4] = static_cast<uint8_t>(IlType::kClose);
  h[5] = 0;  // spec
  Put16(h + 6, lport);
  Put16(h + 8, rport);
  Put32(h + 10, id);
  Put32(h + 14, ack);
  Put16(h, InetChecksum(pkt.data(), pkt.size()));
  (void)ip_->Send(kIpProtoIl, laddr, raddr, pkt);
}

}  // namespace plan9

#include "src/inet/tcp.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/obs/trace.h"
#include "src/task/hotcheck.h"

namespace plan9 {
namespace {

constexpr size_t kTcpHeaderSize = 20;

constexpr uint16_t kFin = 0x01;
constexpr uint16_t kSyn = 0x02;
constexpr uint16_t kRst = 0x04;
constexpr uint16_t kPsh = 0x08;
constexpr uint16_t kAck = 0x10;

constexpr auto kMinRto = std::chrono::microseconds(50'000);
constexpr auto kMaxRto = std::chrono::microseconds(4'000'000);
constexpr auto kInitialRtt = std::chrono::microseconds(150'000);
constexpr auto kTimeWait = std::chrono::microseconds(250'000);
constexpr int kMaxHandshakeTries = 8;
constexpr int kMaxBackoff = 16;

void Put16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}
uint16_t Get16(const uint8_t* p) { return static_cast<uint16_t>(p[0] << 8 | p[1]); }
void Put32(uint8_t* p, uint32_t v) {
  Put16(p, static_cast<uint16_t>(v >> 16));
  Put16(p + 2, static_cast<uint16_t>(v));
}
uint32_t Get32(const uint8_t* p) {
  return static_cast<uint32_t>(Get16(p)) << 16 | Get16(p + 2);
}

// Signed sequence comparison.
bool SeqLt(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) < 0; }
bool SeqLeq(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) <= 0; }

}  // namespace

TcpConvMetrics::TcpConvMetrics() {
  auto& r = obs::MetricsRegistry::Default();
  segs_sent.BindParent(&r.CounterNamed("net.tcp.segs-sent"));
  segs_received.BindParent(&r.CounterNamed("net.tcp.segs-rcvd"));
  bytes_sent.BindParent(&r.CounterNamed("net.tcp.bytes-sent"));
  bytes_received.BindParent(&r.CounterNamed("net.tcp.bytes-rcvd"));
  retransmit_segs.BindParent(&r.CounterNamed("net.tcp.resends"));
  retransmit_bytes.BindParent(&r.CounterNamed("net.tcp.resend-bytes"));
  dup_segs.BindParent(&r.CounterNamed("net.tcp.dups"));
}

void TcpConvMetrics::Reset() {
  segs_sent.Reset();
  segs_received.Reset();
  bytes_sent.Reset();
  bytes_received.Reset();
  retransmit_segs.Reset();
  retransmit_bytes.Reset();
  dup_segs.Reset();
}

// Stream device module: TCP is a byte stream, so block and delimiter
// boundaries vanish into the send buffer.
class TcpConv::Module : public StreamModule {
 public:
  explicit Module(TcpConv* conv) : conv_(conv) {}
  std::string_view name() const override { return "tcp"; }

  void DownPut(BlockPtr b) override P9_CONSUMES(b) P9_HOT_PATH {
    if (b->type != BlockType::kData) {
      DropBlock(std::move(b));
      return;
    }
    Status s = conv_->QueueBytes(b->payload(), b->size());
    RecycleBlock(std::move(b));  // bytes are in the send buffer; pool the node
    if (!s.ok()) {
      P9_LOG(kDebug) << "tcp send: " << s.error().message();
    }
  }

 private:
  TcpConv* conv_;
};

TcpConv::TcpConv(TcpProto* proto, int index) : proto_(proto) {
  index_ = index;
  stream_ = std::make_unique<Stream>(std::make_unique<Module>(this));
}

TcpConv::~TcpConv() {
  TimerId t;
  {
    QLockGuard guard(lock_);
    t = timer_;
    timer_ = kNoTimer;
  }
  if (t != kNoTimer) {
    TimerWheel::Default().Cancel(t);
  }
}

void TcpConv::Recycle() {
  QLockGuard guard(lock_);
  stream_ = std::make_unique<Stream>(std::make_unique<Module>(this));
  state_ = State::kClosed;
  laddr_ = raddr_ = Ipv4Addr{};
  lport_ = rport_ = 0;
  iss_ = snd_una_ = snd_nxt_ = 0;
  snd_wnd_ = kSendWindow;
  send_buf_.clear();
  fin_pending_ = fin_sent_ = fin_received_ = false;
  rtt_timing_ = false;
  irs_ = rcv_nxt_ = 0;
  out_of_order_.clear();
  srtt_ = mdev_ = std::chrono::microseconds(0);
  backoff_ = 0;
  handshake_tries_ = 0;
  pending_.clear();
  listener_backref_ = nullptr;
  err_.clear();
  metrics_.Reset();
}

const char* TcpConv::StateNameLocked() const {
  switch (state_) {
    case State::kClosed:
      return "Closed";
    case State::kListen:
      return "Listen";
    case State::kSynSent:
      return "Syn_sent";
    case State::kSynRcvd:
      return "Syn_rcvd";
    case State::kEstablished:
      return "Established";
    case State::kFinWait1:
      return "Finwait1";
    case State::kFinWait2:
      return "Finwait2";
    case State::kCloseWait:
      return "Close_wait";
    case State::kClosing:
      return "Closing";
    case State::kLastAck:
      return "Last_ack";
    case State::kTimeWait:
      return "Time_wait";
  }
  return "?";
}

Status TcpConv::Ctl(const std::string& msg) {
  auto words = Tokenize(msg);
  if (words.empty()) {
    return Error(kErrBadCtl);
  }
  if (words[0] == "connect" && words.size() >= 2) {
    P9_ASSIGN_OR_RETURN(HostPort hp, ParseConnectAddr(words[1]));
    return StartConnect(hp);
  }
  if (words[0] == "announce" && words.size() >= 2) {
    P9_ASSIGN_OR_RETURN(uint16_t port, ParseAnnounceAddr(words[1]));
    QLockGuard guard(lock_);
    if (state_ != State::kClosed) {
      return Error("connection already in use");
    }
    lport_ = port;
    state_ = State::kListen;
    return Status::Ok();
  }
  if (words[0] == "hangup" || words[0] == "reject") {
    CloseUser();
    return Status::Ok();
  }
  if (words[0] == "accept") {
    return Status::Ok();
  }
  return Error(kErrBadCtl);
}

Status TcpConv::StartConnect(const HostPort& dest) {
  P9_ASSIGN_OR_RETURN(Ipv4Addr laddr, proto_->ip()->SourceFor(dest.addr));
  uint16_t ephemeral;
  uint32_t isn;
  {
    QLockGuard pguard(proto_->lock_);
    ephemeral = proto_->ports_.Next();
    isn = static_cast<uint32_t>(proto_->isn_rng_.Next());
  }
  QLockGuard guard(lock_);
  if (state_ != State::kClosed) {
    return Error("connection already in use");
  }
  laddr_ = laddr;
  raddr_ = dest.addr;
  lport_ = ephemeral;
  rport_ = dest.port;
  iss_ = isn;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN consumes one sequence number
  state_ = State::kSynSent;
  handshake_tries_ = 0;
  EmitLocked(kSyn, iss_, 0, 0);
  ArmTimerLocked(RtoLocked());
  return Status::Ok();
}

Status TcpConv::WaitReady() {
  QLockGuard guard(lock_);
  if (state_ == State::kListen) {
    return Status::Ok();
  }
  bool done = ready_.SleepFor(lock_, std::chrono::seconds(15), [&]() REQUIRES(lock_) {
    return state_ == State::kEstablished || state_ == State::kClosed ||
           state_ == State::kCloseWait;
  });
  if (state_ == State::kEstablished || state_ == State::kCloseWait) {
    return Status::Ok();
  }
  if (!done) {
    return Error(kErrTimedOut);
  }
  return Error(err_.empty() ? std::string(kErrConnRefused) : err_);
}

Result<int> TcpConv::Listen() {
  QLockGuard guard(lock_);
  if (state_ != State::kListen) {
    return Error("not announced");
  }
  incoming_.Sleep(lock_, [&]() REQUIRES(lock_) { return !pending_.empty() || state_ == State::kClosed; });
  if (state_ == State::kClosed) {
    return Error(kErrHungup);
  }
  int conv = pending_.front();
  pending_.pop_front();
  return conv;
}

std::string TcpConv::Local() {
  QLockGuard guard(lock_);
  Ipv4Addr shown = laddr_.IsUnspecified() ? proto_->ip()->PrimaryAddr() : laddr_;
  return StrFormat("%s %u\n", IpToString(shown).c_str(), lport_);
}

std::string TcpConv::Remote() {
  QLockGuard guard(lock_);
  return StrFormat("%s %u\n", IpToString(raddr_).c_str(), rport_);
}

std::string TcpConv::StatusText() {
  QLockGuard guard(lock_);
  // The paper's one-line `cat status` shape, extended with the addresses and
  // byte counts every protocol now reports uniformly.
  const char* mode = lport_ != 0 && rport_ == 0 ? "announce" : "connect";
  Ipv4Addr shown = laddr_.IsUnspecified() ? proto_->ip()->PrimaryAddr() : laddr_;
  return StrFormat("tcp/%d %d %s %s %s!%u %s!%u tx %llu rx %llu%s\n", index_,
                   refs.load(), StateNameLocked(), mode,
                   IpToString(shown).c_str(), lport_, IpToString(raddr_).c_str(),
                   rport_,
                   static_cast<unsigned long long>(metrics_.bytes_sent.value()),
                   static_cast<unsigned long long>(metrics_.bytes_received.value()),
                   TraceNote().c_str());
}

std::chrono::microseconds TcpConv::Srtt() {
  QLockGuard guard(lock_);
  return srtt_;
}

void TcpConv::CloseUser() {
  std::deque<int> orphans;
  bool hangup = false;
  {
    QLockGuard guard(lock_);
    switch (state_) {
      case State::kEstablished:
        state_ = State::kFinWait1;
        fin_pending_ = true;
        MaybeSendFinLocked();
        break;
      case State::kCloseWait:
        state_ = State::kLastAck;
        fin_pending_ = true;
        MaybeSendFinLocked();
        break;
      case State::kListen:
        orphans.swap(pending_);
        state_ = State::kClosed;
        ResetLocked("");
        break;
      case State::kSynSent:
      case State::kSynRcvd:
        state_ = State::kClosed;
        ResetLocked("");
        break;
      default:
        break;
    }
    hangup = std::exchange(hangup_pending_, false);
  }
  if (hangup) {
    CompleteHangup();
  }
  ready_.Wakeup();
  sendbuf_space_.Wakeup();
  incoming_.Wakeup();
  for (int idx : orphans) {
    if (NetConv* c = proto_->Conv(static_cast<size_t>(idx)); c != nullptr) {
      c->CloseUser();
    }
  }
}

void TcpConv::ResetLocked(const std::string& why) {
  if (!why.empty() && err_.empty()) {
    err_ = why;
  }
  state_ = State::kClosed;
  send_buf_.clear();
  // Not stream_->Hangup() here: that takes the stream chain lock, which the
  // user write path holds while acquiring lock_.  Callers drain the flag
  // once lock_ is dropped.
  hangup_pending_ = true;
  if (timer_ != kNoTimer) {
    TimerWheel::Default().Cancel(timer_);
    timer_ = kNoTimer;
  }
}

void TcpConv::CompleteHangup() {
  stream_->Hangup();
  // Publish the slot only now: AllocConv may Recycle() a free slot, which
  // replaces stream_ — that must not happen while the old stream is still
  // delivering the hangup.
  QLockGuard guard(lock_);
  slot_free_ = true;
}

Status TcpConv::QueueBytes(const uint8_t* data, size_t n) {
  size_t queued = 0;
  while (queued < n) {
    QLockGuard guard(lock_);
    sendbuf_space_.Sleep(lock_, [&]() REQUIRES(lock_) {
      return send_buf_.size() < kSendBufMax ||
             (state_ != State::kEstablished && state_ != State::kCloseWait);
    });
    if (state_ != State::kEstablished && state_ != State::kCloseWait) {
      return Error(err_.empty() ? std::string(kErrHungup) : err_);
    }
    size_t room = kSendBufMax - send_buf_.size();
    size_t take = std::min(room, n - queued);
    send_buf_.insert(send_buf_.end(), data + queued, data + queued + take);
    queued += take;
    TrySendLocked();
  }
  return Status::Ok();
}

void TcpConv::TrySendLocked() {
  // Send as much of [snd_nxt, snd_una+window) as the buffer allows.
  size_t window = std::min<size_t>(snd_wnd_, kSendWindow);
  for (;;) {
    uint32_t in_flight = snd_nxt_ - snd_una_;
    if (in_flight >= window) {
      break;
    }
    size_t buf_off = snd_nxt_ - snd_una_;  // == in_flight for data bytes
    if (buf_off >= send_buf_.size()) {
      break;  // nothing unsent
    }
    size_t can_send = std::min({send_buf_.size() - buf_off, window - in_flight, kMss});
    if (can_send == 0) {
      break;
    }
    if (!rtt_timing_) {
      rtt_timing_ = true;
      rtt_seg_seq_ = snd_nxt_ + static_cast<uint32_t>(can_send);
      rtt_seg_sent_ = TimerWheel::Clock::now();
    }
    EmitLocked(kAck | kPsh, snd_nxt_, buf_off, can_send);
    snd_nxt_ += static_cast<uint32_t>(can_send);
    metrics_.bytes_sent.Inc(can_send);
  }
  MaybeSendFinLocked();
  if (snd_nxt_ != snd_una_ && timer_ == kNoTimer) {
    ArmTimerLocked(RtoLocked());
  }
}

void TcpConv::MaybeSendFinLocked() {
  if (!fin_pending_ || fin_sent_) {
    return;
  }
  size_t buf_off = snd_nxt_ - snd_una_;
  if (buf_off < send_buf_.size()) {
    return;  // data still unsent; FIN follows it
  }
  EmitLocked(kFin | kAck, snd_nxt_, 0, 0);
  snd_nxt_ += 1;  // FIN consumes a sequence number
  fin_sent_ = true;
  if (timer_ == kNoTimer) {
    ArmTimerLocked(RtoLocked());
  }
}

void TcpConv::EmitLocked(uint16_t flags, uint32_t seq, size_t payload_off,
                         size_t payload_len) {
  Bytes pkt(kTcpHeaderSize + payload_len);
  uint8_t* h = pkt.data();
  Put16(h, lport_);
  Put16(h + 2, rport_);
  Put32(h + 4, seq);
  Put32(h + 8, (flags & kAck) ? rcv_nxt_ : 0);
  Put16(h + 12, static_cast<uint16_t>(5 << 12 | (flags & 0x3f)));
  Put16(h + 14, 0xffff);  // our receive window: effectively unbounded buffer
  Put16(h + 16, 0);
  Put16(h + 18, 0);
  for (size_t i = 0; i < payload_len; i++) {
    pkt[kTcpHeaderSize + i] = send_buf_[payload_off + i];
  }
  Put16(h + 16, InetChecksum(pkt.data(), pkt.size()));
  metrics_.segs_sent.Inc();
  (void)proto_->ip()->Send(kIpProtoTcp, laddr_, raddr_, pkt);
}

std::chrono::microseconds TcpConv::RtoLocked() const {
  auto base = srtt_.count() == 0 ? kInitialRtt : srtt_ + 4 * mdev_;
  for (int i = 0; i < backoff_ && base < kMaxRto; i++) {
    base *= 2;
  }
  return std::clamp(base, kMinRto, kMaxRto);
}

void TcpConv::RttSampleLocked(std::chrono::microseconds sample) {
  static obs::Histogram& hist =
      obs::MetricsRegistry::Default().HistogramNamed("net.tcp.rtt");
  hist.Record(static_cast<uint64_t>(sample.count()));
  if (srtt_.count() == 0) {
    srtt_ = sample;
    mdev_ = sample / 2;
    return;
  }
  auto err = sample - srtt_;
  srtt_ += err / 8;
  mdev_ += (std::chrono::microseconds(std::abs(err.count())) - mdev_) / 4;
}

void TcpConv::ArmTimerLocked(std::chrono::microseconds delay) {
  if (dying_) {
    return;
  }
  if (timer_ != kNoTimer) {
    TimerWheel::Default().Cancel(timer_);
  }
  timer_ = TimerWheel::Default().Schedule(delay, [this] { TimerFire(); });
}

void TcpConv::TimerFire() {
  QLockGuard guard(lock_);
  timer_ = kNoTimer;
  switch (state_) {
    case State::kSynSent:
    case State::kSynRcvd:
      if (++handshake_tries_ > kMaxHandshakeTries) {
        ResetLocked(kErrTimedOut);
        break;
      }
      backoff_++;
      EmitLocked(state_ == State::kSynSent ? kSyn : (kSyn | kAck), iss_, 0, 0);
      ArmTimerLocked(RtoLocked());
      break;
    case State::kEstablished:
    case State::kCloseWait:
    case State::kFinWait1:
    case State::kClosing:
    case State::kLastAck:
      if (snd_nxt_ == snd_una_ && !fin_sent_) {
        break;
      }
      if (++backoff_ > kMaxBackoff) {
        ResetLocked(kErrTimedOut);
        break;
      }
      RetransmitLocked();
      ArmTimerLocked(RtoLocked());
      break;
    case State::kTimeWait:
      state_ = State::kClosed;
      slot_free_ = true;
      break;
    default:
      break;
  }
  bool hangup = std::exchange(hangup_pending_, false);
  guard.Unlock();
  if (hangup) {
    CompleteHangup();
  }
  ready_.Wakeup();
  sendbuf_space_.Wakeup();
}

void TcpConv::RetransmitLocked() {
  // Blind go-back-N: rewind snd_nxt to snd_una and resend everything in the
  // window, whether or not the receiver already has it.  (The behaviour the
  // paper's IL design argues against — measured by bench_loss.)
  uint32_t to_resend = snd_nxt_ - snd_una_;
  bool fin_in_flight = fin_sent_;
  snd_nxt_ = snd_una_;
  fin_sent_ = false;
  rtt_timing_ = false;  // Karn: don't time retransmitted data
  P9_TRACE(obs::TraceKind::kTcp, StrFormat("tcp/%d", index_),
           StrFormat("rexmit una=%u nxt=%u", snd_una_, snd_nxt_));
  size_t off = 0;
  size_t data_len = std::min<size_t>(to_resend, send_buf_.size());
  while (off < data_len) {
    size_t chunk = std::min(data_len - off, kMss);
    EmitLocked(kAck | kPsh, snd_nxt_, off, chunk);
    snd_nxt_ += static_cast<uint32_t>(chunk);
    off += chunk;
    metrics_.retransmit_segs.Inc();
    metrics_.retransmit_bytes.Inc(chunk);
  }
  if (fin_in_flight) {
    EmitLocked(kFin | kAck, snd_nxt_, 0, 0);
    snd_nxt_ += 1;
    fin_sent_ = true;
    metrics_.retransmit_segs.Inc();
  }
}

void TcpConv::ProcessAckLocked(uint32_t ack, uint16_t wnd) {
  snd_wnd_ = wnd;
  if (SeqLt(snd_una_, ack) && SeqLeq(ack, snd_nxt_)) {
    uint32_t advance = ack - snd_una_;
    // FIN occupies sequence space beyond the data buffer.
    size_t data_acked = std::min<size_t>(advance, send_buf_.size());
    send_buf_.erase(send_buf_.begin(),
                    send_buf_.begin() + static_cast<long>(data_acked));
    snd_una_ = ack;
    backoff_ = 0;
    if (rtt_timing_ && SeqLeq(rtt_seg_seq_, ack)) {
      rtt_timing_ = false;
      RttSampleLocked(std::chrono::duration_cast<std::chrono::microseconds>(
          TimerWheel::Clock::now() - rtt_seg_sent_));
    }
    if (snd_una_ == snd_nxt_) {
      if (timer_ != kNoTimer) {
        TimerWheel::Default().Cancel(timer_);
        timer_ = kNoTimer;
      }
    } else {
      ArmTimerLocked(RtoLocked());
    }
    TrySendLocked();
  }
}

void TcpConv::ProcessDataLocked(uint32_t seq, Bytes payload, bool fin,
                                std::vector<BlockPtr>* deliveries, bool* peer_closed) {
  if (fin) {
    // Remember where the FIN sits in sequence space via the ooo map: append
    // it as a zero-byte marker right after its data.
    fin_received_ = true;
  }
  if (!payload.empty()) {
    if (SeqLeq(seq + static_cast<uint32_t>(payload.size()), rcv_nxt_)) {
      metrics_.dup_segs.Inc();  // entirely old
    } else if (SeqLt(rcv_nxt_, seq)) {
      out_of_order_[seq] = std::move(payload);  // future data; buffer it
    } else {
      // Overlap or exact: trim the old prefix and deliver.  The segment
      // buffer moves into the block — no copy on the in-order path.
      size_t skip = rcv_nxt_ - seq;
      rcv_nxt_ = seq + static_cast<uint32_t>(payload.size());
      metrics_.bytes_received.Inc(payload.size() - skip);
      if (skip > 0) {
        payload.erase(payload.begin(), payload.begin() + static_cast<long>(skip));
      }
      deliveries->push_back(AllocDataBlock(std::move(payload),
                                           /*delim=*/false));  // TCP does not preserve delimiters
      // Drain contiguous out-of-order segments.
      for (auto it = out_of_order_.begin(); it != out_of_order_.end();) {
        uint32_t s = it->first;
        Bytes& data = it->second;
        uint32_t e = s + static_cast<uint32_t>(data.size());
        if (SeqLeq(e, rcv_nxt_)) {
          it = out_of_order_.erase(it);
          continue;
        }
        if (SeqLt(rcv_nxt_, s)) {
          break;  // hole remains
        }
        size_t skip2 = rcv_nxt_ - s;
        metrics_.bytes_received.Inc(data.size() - skip2);
        if (skip2 > 0) {
          data.erase(data.begin(), data.begin() + static_cast<long>(skip2));
        }
        deliveries->push_back(AllocDataBlock(std::move(data), /*delim=*/false));
        rcv_nxt_ = e;
        it = out_of_order_.erase(it);
      }
    }
  }
  if (fin_received_ && out_of_order_.empty()) {
    // FIN is in order once all data before it has arrived.
    rcv_nxt_ += 1;
    *peer_closed = true;
    fin_received_ = false;
  }
}

void TcpConv::EnterTimeWaitLocked() {
  state_ = State::kTimeWait;
  ArmTimerLocked(std::chrono::duration_cast<std::chrono::microseconds>(kTimeWait));
}

void TcpConv::Input(Ipv4Addr src, uint16_t sport, uint32_t seq, uint32_t ack,
                    uint16_t flags, uint16_t wnd, Bytes payload) {
  std::vector<BlockPtr> deliveries;
  bool hangup_stream = false;
  bool hangup_reset = false;
  {
    QLockGuard guard(lock_);
    metrics_.segs_received.Inc();
    if (flags & kRst) {
      if (state_ != State::kClosed && state_ != State::kListen) {
        ResetLocked(state_ == State::kSynSent ? kErrConnRefused : "connection reset");
      }
      bool hangup = std::exchange(hangup_pending_, false);
      guard.Unlock();
      if (hangup) {
        CompleteHangup();
      }
      ready_.Wakeup();
      sendbuf_space_.Wakeup();
      return;
    }
    switch (state_) {
      case State::kSynSent:
        if ((flags & (kSyn | kAck)) == (kSyn | kAck) && ack == snd_una_ + 1) {
          irs_ = seq;
          rcv_nxt_ = seq + 1;
          snd_una_ = ack;
          snd_wnd_ = wnd;
          state_ = State::kEstablished;
          handshake_tries_ = 0;
          backoff_ = 0;
          if (timer_ != kNoTimer) {
            TimerWheel::Default().Cancel(timer_);
            timer_ = kNoTimer;
          }
          EmitLocked(kAck, snd_nxt_, 0, 0);
          ready_.Wakeup();
        }
        break;
      case State::kSynRcvd:
        if ((flags & kAck) && ack == snd_una_ + 1) {
          snd_una_ = ack;
          snd_wnd_ = wnd;
          state_ = State::kEstablished;
          backoff_ = 0;
          if (timer_ != kNoTimer) {
            TimerWheel::Default().Cancel(timer_);
            timer_ = kNoTimer;
          }
          // Tell the listener a call is ready for Listen()/accept.
          if (TcpConv* listener = listener_backref_; listener != nullptr) {
            guard.Unlock();
            {
              QLockGuard lguard(listener->lock_);
              listener->pending_.push_back(index_);
            }
            listener->incoming_.Wakeup();
            guard.Lock();
          }
          ready_.Wakeup();
          // The handshake ACK may carry data; fall through is emulated by
          // reprocessing below.
          bool peer_closed = false;
          ProcessDataLocked(seq, std::move(payload), flags & kFin, &deliveries,
                            &peer_closed);
          if (peer_closed) {
            state_ = State::kCloseWait;
            hangup_stream = true;
            EmitLocked(kAck, snd_nxt_, 0, 0);
          }
        }
        break;
      case State::kEstablished:
      case State::kFinWait1:
      case State::kFinWait2:
      case State::kClosing:
      case State::kCloseWait:
      case State::kLastAck: {
        if (flags & kAck) {
          ProcessAckLocked(ack, wnd);
        }
        bool peer_closed = false;
        bool had_payload = !payload.empty();
        if (state_ != State::kCloseWait && state_ != State::kLastAck) {
          ProcessDataLocked(seq, std::move(payload), flags & kFin, &deliveries,
                            &peer_closed);
        }
        bool all_sent_acked = snd_una_ == snd_nxt_;
        // State transitions on our FIN being acked / their FIN arriving.
        if (state_ == State::kFinWait1 && fin_sent_ && all_sent_acked) {
          state_ = peer_closed ? State::kTimeWait : State::kFinWait2;
          if (state_ == State::kTimeWait) {
            EnterTimeWaitLocked();
          }
        } else if (state_ == State::kFinWait1 && peer_closed) {
          state_ = State::kClosing;
        } else if (state_ == State::kFinWait2 && peer_closed) {
          EnterTimeWaitLocked();
        } else if (state_ == State::kClosing && fin_sent_ && all_sent_acked) {
          EnterTimeWaitLocked();
        } else if (state_ == State::kLastAck && fin_sent_ && all_sent_acked) {
          state_ = State::kClosed;
          slot_free_ = true;
          if (timer_ != kNoTimer) {
            TimerWheel::Default().Cancel(timer_);
            timer_ = kNoTimer;
          }
        } else if (state_ == State::kEstablished && peer_closed) {
          state_ = State::kCloseWait;
          hangup_stream = true;  // EOF for readers; writes still allowed
        }
        if (!deliveries.empty() || peer_closed || had_payload) {
          // Every data-bearing segment is acked — duplicates especially,
          // since a lost ack is exactly what made the peer retransmit.
          EmitLocked(kAck, snd_nxt_, 0, 0);
        }
        break;
      }
      case State::kTimeWait:
        EmitLocked(kAck, snd_nxt_, 0, 0);
        break;
      case State::kListen:
      case State::kClosed:
        break;
    }
    hangup_reset = std::exchange(hangup_pending_, false);
  }
  for (auto& b : deliveries) {
    stream_->DeliverUp(std::move(b));
  }
  if (hangup_reset) {
    CompleteHangup();
  } else if (hangup_stream) {
    // Peer sent FIN: readers see EOF once queued data drains.
    stream_->Hangup();
  }
  ready_.Wakeup();
  sendbuf_space_.Wakeup();
}

TcpProto::TcpProto(IpStack* ip) : ip_(ip) {
  ip_->RegisterProtocol(kIpProtoTcp,
                        [this](IpPacket&& pkt) { Input(std::move(pkt)); });
}

void TcpProto::Abort(const std::string& why) {
  std::vector<TcpConv*> convs;
  {
    QLockGuard guard(lock_);
    for (auto& c : convs_) {
      convs.push_back(c.get());
    }
  }
  for (TcpConv* c : convs) {
    bool hangup = false;
    {
      QLockGuard guard(c->lock_);
      c->dying_ = true;  // a racing TimerFire must not re-arm
      if (c->state_ != TcpConv::State::kClosed) {
        c->err_ = why;
        c->pending_.clear();  // listeners drop their queued calls too
        c->ResetLocked(why);  // sets kClosed + hangup_pending_, emits nothing
      } else if (c->timer_ != kNoTimer) {
        TimerWheel::Default().Cancel(c->timer_);
        c->timer_ = kNoTimer;
      }
      hangup = std::exchange(c->hangup_pending_, false);
    }
    if (hangup) {
      c->CompleteHangup();
    }
    c->ready_.Wakeup();
    c->sendbuf_space_.Wakeup();
    c->incoming_.Wakeup();
  }
  TimerWheel::Default().Drain();
}

TcpProto::~TcpProto() {
  ip_->UnregisterProtocol(kIpProtoTcp);
  {
    QLockGuard guard(lock_);
    for (auto& c : convs_) {
      TimerId t;
      {
        QLockGuard cguard(c->lock_);
        c->dying_ = true;
        t = c->timer_;
        c->timer_ = kNoTimer;
      }
      if (t != kNoTimer) {
        TimerWheel::Default().Cancel(t);
      }
    }
  }
  TimerWheel::Default().Drain();
}

Result<NetConv*> TcpProto::Clone() {
  auto conv = AllocConv();
  if (!conv.ok()) {
    return conv.error();
  }
  return static_cast<NetConv*>(*conv);
}

Result<TcpConv*> TcpProto::AllocConv() {
  QLockGuard guard(lock_);
  for (auto& c : convs_) {
    bool reusable;
    {
      QLockGuard cguard(c->lock_);
      reusable =
          c->slot_free_ && c->state_ == TcpConv::State::kClosed && c->refs.load() == 0;
    }
    if (reusable) {
      c->Recycle();
      QLockGuard cguard(c->lock_);
      c->slot_free_ = false;
      return c.get();
    }
  }
  if (convs_.size() >= MaxConvs()) {
    return Error(kErrNoConv);
  }
  convs_.push_back(std::make_unique<TcpConv>(this, static_cast<int>(convs_.size())));
  TcpConv* c = convs_.back().get();
  QLockGuard cguard(c->lock_);
  c->slot_free_ = false;
  return c;
}

NetConv* TcpProto::Conv(size_t index) {
  QLockGuard guard(lock_);
  return index < convs_.size() ? convs_[index].get() : nullptr;
}

size_t TcpProto::ConvCount() {
  QLockGuard guard(lock_);
  return convs_.size();
}

Result<std::string> TcpProto::InfoText(NetConv* conv, const std::string& file) {
  if (file == "stats") {
    TcpConv* c = static_cast<TcpConv*>(conv);
    const TcpConvMetrics& m = c->metrics();
    std::string out;
    auto line = [&](const char* key, const obs::Counter& v) {
      out += StrFormat("%s: %llu\n", key, static_cast<unsigned long long>(v.value()));
    };
    line("sent", m.segs_sent);
    line("rcvd", m.segs_received);
    line("bytes-sent", m.bytes_sent);
    line("bytes-rcvd", m.bytes_received);
    line("rexmit", m.retransmit_segs);
    line("rexmit-bytes", m.retransmit_bytes);
    line("dup", m.dup_segs);
    out += StrFormat("rtt: %lld us\n", static_cast<long long>(c->Srtt().count()));
    return out;
  }
  return ProtoFiles::InfoText(conv, file);
}

TcpConv* TcpProto::SpawnFromSyn(Ipv4Addr dst, Ipv4Addr src, uint16_t dport, uint16_t sport,
                                uint32_t peer_seq, TcpConv* listener) {
  auto spawned = AllocConv();
  if (!spawned.ok()) {
    return nullptr;
  }
  TcpConv* nc = *spawned;
  uint32_t isn;
  {
    QLockGuard guard(lock_);
    isn = static_cast<uint32_t>(isn_rng_.Next());
  }
  {
    QLockGuard guard(nc->lock_);
    nc->state_ = TcpConv::State::kSynRcvd;
    nc->laddr_ = dst;
    nc->lport_ = dport;
    nc->raddr_ = src;
    nc->rport_ = sport;
    nc->irs_ = peer_seq;
    nc->rcv_nxt_ = peer_seq + 1;
    nc->iss_ = isn;
    nc->snd_una_ = isn;
    nc->snd_nxt_ = isn + 1;
    nc->listener_backref_ = listener;
    nc->EmitLocked(kSyn | kAck, isn, 0, 0);
    nc->ArmTimerLocked(nc->RtoLocked());
  }
  return nc;
}

void TcpProto::SendRst(Ipv4Addr src, Ipv4Addr dst, uint16_t sport, uint16_t dport,
                       uint32_t ack) {
  Bytes pkt(kTcpHeaderSize);
  uint8_t* h = pkt.data();
  Put16(h, sport);
  Put16(h + 2, dport);
  Put32(h + 4, 0);
  Put32(h + 8, ack);
  Put16(h + 12, static_cast<uint16_t>(5 << 12 | kRst | kAck));
  Put16(h + 14, 0);
  Put16(h + 16, 0);
  Put16(h + 18, 0);
  Put16(h + 16, InetChecksum(pkt.data(), pkt.size()));
  (void)ip_->Send(kIpProtoTcp, src, dst, pkt);
}

void TcpProto::Input(IpPacket&& pkt) {
  P9_HOT_ROOT("tcp.input");
  if (pkt.payload.size() < kTcpHeaderSize) {
    return;
  }
  const uint8_t* h = pkt.payload.data();
  if (InetChecksum(h, pkt.payload.size()) != 0) {
    return;
  }
  uint16_t sport = Get16(h);
  uint16_t dport = Get16(h + 2);
  uint32_t seq = Get32(h + 4);
  uint32_t ack = Get32(h + 8);
  uint16_t off_flags = Get16(h + 12);
  uint16_t flags = off_flags & 0x3f;
  size_t header_len = static_cast<size_t>(off_flags >> 12) * 4;
  if (header_len < kTcpHeaderSize || header_len > pkt.payload.size()) {
    return;
  }
  uint16_t wnd = Get16(h + 14);
  // Reuse the packet's buffer for the payload (shift the header out in
  // place): no allocation on the receive path.
  Bytes payload = std::move(pkt.payload);
  payload.erase(payload.begin(), payload.begin() + static_cast<long>(header_len));

  TcpConv* conv = nullptr;
  TcpConv* listener = nullptr;
  {
    QLockGuard guard(lock_);
    for (auto& c : convs_) {
      QLockGuard cguard(c->lock_);
      if (c->state_ != TcpConv::State::kClosed && c->state_ != TcpConv::State::kListen &&
          c->lport_ == dport && c->rport_ == sport && c->raddr_ == pkt.src) {
        conv = c.get();
        break;
      }
    }
    if (conv == nullptr && (flags & kSyn) && !(flags & kAck)) {
      for (auto& c : convs_) {
        QLockGuard cguard(c->lock_);
        if (c->state_ == TcpConv::State::kListen && c->lport_ == dport) {
          listener = c.get();
          break;
        }
      }
    }
  }
  if (conv != nullptr) {
    conv->Input(pkt.src, sport, seq, ack, flags, wnd, std::move(payload));
    return;
  }
  if (listener != nullptr) {
    SpawnFromSyn(pkt.dst, pkt.src, dport, sport, seq, listener);
    return;
  }
  // No one home: answer with RST so connects fail fast ("connection
  // refused") instead of timing out.
  if (!(flags & kRst)) {
    SendRst(pkt.dst, pkt.src, dport, sport, seq + 1);
  }
}

}  // namespace plan9

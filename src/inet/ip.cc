#include "src/inet/ip.h"

#include <algorithm>
#include <cstring>

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace plan9 {
namespace {

constexpr size_t kIpHeaderSize = 20;
constexpr uint8_t kDefaultTtl = 64;
constexpr auto kReassemblyTimeout = std::chrono::seconds(5);

// Big-endian field helpers (IP wire format is network byte order).
void Put16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}
uint16_t Get16(const uint8_t* p) { return static_cast<uint16_t>(p[0] << 8 | p[1]); }
void Put32(uint8_t* p, uint32_t v) {
  Put16(p, static_cast<uint16_t>(v >> 16));
  Put16(p + 2, static_cast<uint16_t>(v));
}
uint32_t Get32(const uint8_t* p) {
  return static_cast<uint32_t>(Get16(p)) << 16 | Get16(p + 2);
}

}  // namespace

uint16_t InetChecksum(const uint8_t* data, size_t len, uint32_t seed) {
  uint32_t sum = seed;
  size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < len) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum & 0xffff);
}

struct IpStack::Interface {
  enum class Kind { kEther, kPtp } kind;
  // common
  Ipv4Addr addr;
  Ipv4Addr mask;
  size_t mtu = 1500;
  // ether
  EtherSegment* segment = nullptr;
  EtherSegment::StationId station = 0;
  MacAddr mac{};
  std::map<uint32_t, MacAddr> arp_table;
  std::map<uint32_t, std::vector<Bytes>> arp_pending;  // packets awaiting resolution
  // ptp
  Wire* wire = nullptr;
  Wire::End end = Wire::kA;
  Ipv4Addr peer;
};

struct IpStack::Route {
  Ipv4Addr dest;
  Ipv4Addr mask;
  Ipv4Addr gateway;  // 0 = directly attached
  int ifc_index;
};

struct IpStack::Reassembly {
  TimerWheel::Clock::time_point deadline;
  std::map<uint16_t, Bytes> fragments;  // offset(bytes) -> data
  bool have_last = false;
  size_t total_len = 0;
  Ipv4Addr src, dst;
  uint8_t proto = 0, ttl = 0;
};

IpMetrics::IpMetrics() {
  auto& r = obs::MetricsRegistry::Default();
  packets_sent.BindParent(&r.CounterNamed("net.ip.packets-sent"));
  packets_received.BindParent(&r.CounterNamed("net.ip.packets-rcvd"));
  packets_forwarded.BindParent(&r.CounterNamed("net.ip.forwarded"));
  fragments_sent.BindParent(&r.CounterNamed("net.ip.frags-sent"));
  fragments_received.BindParent(&r.CounterNamed("net.ip.frags-rcvd"));
  reassembly_drops.BindParent(&r.CounterNamed("net.ip.reassembly-drops"));
  no_route.BindParent(&r.CounterNamed("net.ip.no-route"));
  bad_header.BindParent(&r.CounterNamed("net.ip.bad-header"));
  unknown_proto.BindParent(&r.CounterNamed("net.ip.unknown-proto"));
}

IpStack::IpStack() : alive_(std::make_shared<std::atomic<bool>>(true)) {
  auto alive = alive_;
  // Periodic reassembly-buffer sweep.
  std::function<void()> arm = [this, alive]() {
    if (!alive->load()) {
      return;
    }
    SweepReassembly();
  };
  sweep_timer_ = TimerWheel::Default().Schedule(kReassemblyTimeout, arm);
}

IpStack::~IpStack() { Unplug(); }

void IpStack::Unplug() {
  alive_->store(false);
  TimerId sweep;
  {
    QLockGuard guard(lock_);
    sweep = sweep_timer_;
    sweep_timer_ = kNoTimer;
  }
  if (sweep != kNoTimer) {
    TimerWheel::Default().Cancel(sweep);
  }
  {
    QLockGuard guard(lock_);
    for (auto& ifc : interfaces_) {
      if (ifc->kind == Interface::Kind::kEther && ifc->segment != nullptr) {
        ifc->segment->Detach(ifc->station);
        // Null the medium so a later Unplug (or the destructor) cannot detach
        // again — after a crashed kernel is graveyarded, the same station id
        // or wire end may belong to the restarted kernel.
        ifc->segment = nullptr;
      } else if (ifc->kind == Interface::Kind::kPtp && ifc->wire != nullptr) {
        ifc->wire->Detach(ifc->end);
        ifc->wire = nullptr;
      }
    }
  }
  // Wait out any delivery callback that copied our receive hook before the
  // detach above; after Drain nothing can re-enter this stack.
  TimerWheel::Default().Drain();
}

void IpStack::SweepReassembly() {
  {
    QLockGuard guard(lock_);
    auto now = TimerWheel::Clock::now();
    for (auto it = reassembly_.begin(); it != reassembly_.end();) {
      if (it->second.deadline < now) {
        stats_.reassembly_drops.Inc();
        it = reassembly_.erase(it);
      } else {
        ++it;
      }
    }
  }
  auto alive = alive_;
  TimerId next = TimerWheel::Default().Schedule(kReassemblyTimeout, [this, alive] {
    if (alive->load()) {
      SweepReassembly();
    }
  });
  QLockGuard guard(lock_);
  sweep_timer_ = next;
}

int IpStack::AddEtherInterface(EtherSegment* segment, MacAddr mac, Ipv4Addr addr,
                               Ipv4Addr mask) {
  auto ifc = std::make_unique<Interface>();
  ifc->kind = Interface::Kind::kEther;
  ifc->segment = segment;
  ifc->mac = mac;
  ifc->addr = addr;
  ifc->mask = mask.IsUnspecified() ? ClassMask(addr) : mask;
  ifc->mtu = 1500;
  int index;
  {
    QLockGuard guard(lock_);
    index = static_cast<int>(interfaces_.size());
    interfaces_.push_back(std::move(ifc));
    // Connected route for the interface's subnet.
    routes_.push_back(Route{Ipv4Addr{addr.v & interfaces_.back()->mask.v},
                            interfaces_.back()->mask, Ipv4Addr{}, index});
  }
  auto alive = alive_;
  auto station = segment->Attach(mac, [this, alive, index](const EtherFrame& frame) {
    if (*alive) {
      EtherInput(static_cast<size_t>(index), frame);
    }
  });
  {
    QLockGuard guard(lock_);
    interfaces_[static_cast<size_t>(index)]->station = station;
  }
  return index;
}

int IpStack::AddPtpInterface(Wire* wire, Wire::End end, Ipv4Addr local, Ipv4Addr remote) {
  auto ifc = std::make_unique<Interface>();
  ifc->kind = Interface::Kind::kPtp;
  ifc->wire = wire;
  ifc->end = end;
  ifc->addr = local;
  ifc->peer = remote;
  ifc->mask = Ipv4Addr{0xffffffffu};
  ifc->mtu = 60 * 1024;
  int index;
  {
    QLockGuard guard(lock_);
    index = static_cast<int>(interfaces_.size());
    interfaces_.push_back(std::move(ifc));
    routes_.push_back(Route{remote, Ipv4Addr{0xffffffffu}, Ipv4Addr{}, index});
  }
  auto alive = alive_;
  wire->Attach(end, [this, alive, index](Bytes frame) {
    if (*alive) {
      PtpInput(static_cast<size_t>(index), std::move(frame));
    }
  });
  return index;
}

void IpStack::AddRoute(Ipv4Addr dest, Ipv4Addr mask, Ipv4Addr gateway, int ifc_index) {
  QLockGuard guard(lock_);
  routes_.push_back(Route{Ipv4Addr{dest.v & mask.v}, mask, gateway, ifc_index});
}

void IpStack::SetDefaultGateway(Ipv4Addr gateway) {
  // Route the gateway itself first (must be on a connected net).
  QLockGuard guard(lock_);
  for (size_t i = 0; i < interfaces_.size(); i++) {
    auto& ifc = interfaces_[i];
    if (SameNet(gateway, ifc->addr, ifc->mask)) {
      routes_.push_back(Route{Ipv4Addr{}, Ipv4Addr{}, gateway, static_cast<int>(i)});
      return;
    }
  }
}

void IpStack::RegisterProtocol(uint8_t proto, ProtoHandler handler) {
  QLockGuard guard(lock_);
  protocols_[proto] = std::move(handler);
}

void IpStack::UnregisterProtocol(uint8_t proto) {
  QLockGuard guard(lock_);
  protocols_.erase(proto);
}

Result<const IpStack::Route*> IpStack::Lookup(Ipv4Addr dst) {
  // Caller holds lock_.  Longest prefix match.
  const Route* best = nullptr;
  for (const auto& r : routes_) {
    if ((dst.v & r.mask.v) == r.dest.v) {
      if (best == nullptr || r.mask.v > best->mask.v ||
          (r.mask.v == best->mask.v && best->gateway.IsUnspecified() == false &&
           r.gateway.IsUnspecified())) {
        best = &r;
      }
    }
  }
  if (best == nullptr) {
    return Error(kErrNoRoute);
  }
  return best;
}

Result<Ipv4Addr> IpStack::SourceFor(Ipv4Addr dst) {
  QLockGuard guard(lock_);
  auto route = Lookup(dst);
  if (!route.ok()) {
    return route.error();
  }
  return interfaces_[static_cast<size_t>((*route)->ifc_index)]->addr;
}

Ipv4Addr IpStack::PrimaryAddr() {
  QLockGuard guard(lock_);
  return interfaces_.empty() ? Ipv4Addr{} : interfaces_[0]->addr;
}

Status IpStack::Send(uint8_t proto, Ipv4Addr src, Ipv4Addr dst, const Bytes& payload) {
  return Output(src, dst, proto, kDefaultTtl, payload);
}

Status IpStack::Output(Ipv4Addr src, Ipv4Addr dst, uint8_t proto, uint8_t ttl,
                       const Bytes& payload) {
  QLockGuard guard(lock_);
  auto route = Lookup(dst);
  if (!route.ok()) {
    stats_.no_route.Inc();
    return route.error();
  }
  Interface& ifc = *interfaces_[static_cast<size_t>((*route)->ifc_index)];
  if (src.IsUnspecified()) {
    src = ifc.addr;
  }
  Ipv4Addr next_hop = (*route)->gateway.IsUnspecified() ? dst : (*route)->gateway;

  // Fragment if needed.
  size_t max_data = (ifc.mtu - kIpHeaderSize) & ~size_t{7};
  uint16_t ident = next_ident_++;
  size_t offset = 0;
  do {
    size_t chunk = std::min(payload.size() - offset, max_data);
    bool more = offset + chunk < payload.size();
    Bytes pkt(kIpHeaderSize + chunk);
    uint8_t* h = pkt.data();
    h[0] = 0x45;  // v4, 20-byte header
    h[1] = 0;
    Put16(h + 2, static_cast<uint16_t>(pkt.size()));
    Put16(h + 4, ident);
    uint16_t frag = static_cast<uint16_t>(offset / 8);
    if (more) {
      frag |= 0x2000;  // MF
    }
    Put16(h + 6, frag);
    h[8] = ttl;
    h[9] = proto;
    Put16(h + 10, 0);
    Put32(h + 12, src.v);
    Put32(h + 16, dst.v);
    Put16(h + 10, InetChecksum(h, kIpHeaderSize));
    std::memcpy(pkt.data() + kIpHeaderSize, payload.data() + offset, chunk);
    if (more || offset != 0) {
      stats_.fragments_sent.Inc();
    }
    P9_RETURN_IF_ERROR(SendOnInterface(ifc, next_hop, pkt));
    offset += chunk;
  } while (offset < payload.size());
  stats_.packets_sent.Inc();
  return Status::Ok();
}

Status IpStack::SendOnInterface(Interface& ifc, Ipv4Addr next_hop, const Bytes& ip_packet) {
  // Caller holds lock_.
  if ((ifc.kind == Interface::Kind::kPtp && ifc.wire == nullptr) ||
      (ifc.kind == Interface::Kind::kEther && ifc.segment == nullptr)) {
    // Unplugged (crashed node): the packet silently dies at the dead NIC.
    return Error("interface unplugged");
  }
  if (ifc.kind == Interface::Kind::kPtp) {
    return ifc.wire->Send(ifc.end, ip_packet);
  }
  // Ether: resolve next_hop via ARP.
  auto arp = ifc.arp_table.find(next_hop.v);
  if (arp != ifc.arp_table.end()) {
    EtherFrame frame;
    frame.dst = arp->second;
    frame.src = ifc.mac;
    frame.type = kEtherTypeIp;
    frame.payload = ip_packet;
    return ifc.segment->Send(frame);
  }
  // Queue the packet and broadcast an ARP request.
  auto& pending = ifc.arp_pending[next_hop.v];
  if (pending.size() < 16) {
    pending.push_back(ip_packet);
  }
  Bytes arp_req(28);
  uint8_t* a = arp_req.data();
  Put16(a, 1);                 // htype ethernet
  Put16(a + 2, kEtherTypeIp);  // ptype
  a[4] = 6;
  a[5] = 4;
  Put16(a + 6, 1);  // op: request
  std::memcpy(a + 8, ifc.mac.data(), 6);
  Put32(a + 14, ifc.addr.v);
  std::memset(a + 18, 0, 6);
  Put32(a + 24, next_hop.v);
  EtherFrame frame;
  frame.dst = kEtherBroadcast;
  frame.src = ifc.mac;
  frame.type = kEtherTypeArp;
  frame.payload = std::move(arp_req);
  return ifc.segment->Send(frame);
}

void IpStack::EtherInput(size_t ifc_index, const EtherFrame& frame) {
  if (frame.type == kEtherTypeArp) {
    ArpInput(ifc_index, frame);
    return;
  }
  if (frame.type == kEtherTypeIp) {
    IpInput(ifc_index, frame.payload);
  }
}

void IpStack::PtpInput(size_t ifc_index, Bytes frame) { IpInput(ifc_index, frame); }

void IpStack::ArpInput(size_t ifc_index, const EtherFrame& frame) {
  if (frame.payload.size() < 28) {
    return;
  }
  const uint8_t* a = frame.payload.data();
  uint16_t op = Get16(a + 6);
  MacAddr sender_mac;
  std::memcpy(sender_mac.data(), a + 8, 6);
  Ipv4Addr sender_ip{Get32(a + 14)};
  Ipv4Addr target_ip{Get32(a + 24)};

  std::vector<Bytes> flush;
  EtherSegment* segment = nullptr;
  EtherFrame reply;
  bool send_reply = false;
  {
    QLockGuard guard(lock_);
    Interface& ifc = *interfaces_[ifc_index];
    // Learn the sender's binding and flush anything queued on it.
    ifc.arp_table[sender_ip.v] = sender_mac;
    auto pend = ifc.arp_pending.find(sender_ip.v);
    if (pend != ifc.arp_pending.end()) {
      flush = std::move(pend->second);
      ifc.arp_pending.erase(pend);
    }
    if (op == 1 && target_ip == ifc.addr) {
      Bytes arp_rep(28);
      uint8_t* r = arp_rep.data();
      Put16(r, 1);
      Put16(r + 2, kEtherTypeIp);
      r[4] = 6;
      r[5] = 4;
      Put16(r + 6, 2);  // reply
      std::memcpy(r + 8, ifc.mac.data(), 6);
      Put32(r + 14, ifc.addr.v);
      std::memcpy(r + 18, sender_mac.data(), 6);
      Put32(r + 24, sender_ip.v);
      reply.dst = sender_mac;
      reply.src = ifc.mac;
      reply.type = kEtherTypeArp;
      reply.payload = std::move(arp_rep);
      segment = ifc.segment;
      send_reply = true;
    }
    if (!flush.empty()) {
      EtherFrame out;
      out.src = ifc.mac;
      out.dst = sender_mac;
      out.type = kEtherTypeIp;
      for (auto& pkt : flush) {
        out.payload = std::move(pkt);
        (void)ifc.segment->Send(out);
      }
      flush.clear();
    }
  }
  if (send_reply && segment != nullptr) {
    (void)segment->Send(reply);
  }
}

void IpStack::IpInput(size_t ifc_index, const Bytes& raw) {
  if (raw.size() < kIpHeaderSize) {
    QLockGuard guard(lock_);
    stats_.bad_header.Inc();
    return;
  }
  const uint8_t* h = raw.data();
  if ((h[0] >> 4) != 4 || (h[0] & 0xf) != 5) {
    QLockGuard guard(lock_);
    stats_.bad_header.Inc();
    return;
  }
  uint16_t total_len = Get16(h + 2);
  if (total_len < kIpHeaderSize || total_len > raw.size()) {
    QLockGuard guard(lock_);
    stats_.bad_header.Inc();
    return;
  }
  if (InetChecksum(h, kIpHeaderSize) != 0) {
    QLockGuard guard(lock_);
    stats_.bad_header.Inc();
    return;
  }
  uint16_t ident = Get16(h + 4);
  uint16_t frag = Get16(h + 6);
  bool more_frags = (frag & 0x2000) != 0;
  uint16_t frag_off = static_cast<uint16_t>((frag & 0x1fff) * 8);

  IpPacket pkt;
  pkt.ttl = h[8];
  pkt.proto = h[9];
  pkt.src = Ipv4Addr{Get32(h + 12)};
  pkt.dst = Ipv4Addr{Get32(h + 16)};
  pkt.payload.assign(raw.begin() + kIpHeaderSize, raw.begin() + total_len);

  bool for_us = false;
  {
    QLockGuard guard(lock_);
    for (auto& ifc : interfaces_) {
      if (ifc->addr == pkt.dst) {
        for_us = true;
        break;
      }
    }
    if (pkt.dst.IsBroadcast()) {
      for_us = true;
    }
  }

  if (!for_us) {
    // Forward if we're a gateway.
    bool fwd;
    {
      QLockGuard guard(lock_);
      fwd = forwarding_;
    }
    if (fwd && pkt.ttl > 1) {
      {
        QLockGuard guard(lock_);
        stats_.packets_forwarded.Inc();
      }
      (void)Output(pkt.src, pkt.dst, pkt.proto, static_cast<uint8_t>(pkt.ttl - 1),
                   pkt.payload);
    }
    return;
  }

  if (more_frags || frag_off != 0) {
    // Reassemble.
    QLockGuard guard(lock_);
    stats_.fragments_received.Inc();
    uint64_t key = static_cast<uint64_t>(pkt.src.v) << 32 |
                   static_cast<uint64_t>(ident) << 8 | pkt.proto;
    Reassembly& re = reassembly_[key];
    re.deadline = TimerWheel::Clock::now() + kReassemblyTimeout;
    re.src = pkt.src;
    re.dst = pkt.dst;
    re.proto = pkt.proto;
    re.ttl = pkt.ttl;
    re.fragments[frag_off] = pkt.payload;
    if (!more_frags) {
      re.have_last = true;
      re.total_len = frag_off + pkt.payload.size();
    }
    if (!re.have_last) {
      return;
    }
    // Check contiguity.
    size_t next = 0;
    for (auto& [off, data] : re.fragments) {
      if (off != next) {
        return;  // hole remains
      }
      next = off + data.size();
    }
    if (next != re.total_len) {
      return;
    }
    IpPacket whole;
    whole.src = re.src;
    whole.dst = re.dst;
    whole.proto = re.proto;
    whole.ttl = re.ttl;
    whole.payload.reserve(re.total_len);
    for (auto& [off, data] : re.fragments) {
      whole.payload.insert(whole.payload.end(), data.begin(), data.end());
    }
    reassembly_.erase(key);
    guard.Unlock();
    Deliver(std::move(whole));
    return;
  }

  Deliver(std::move(pkt));
}

void IpStack::Deliver(IpPacket&& pkt) {
  ProtoHandler handler;
  {
    QLockGuard guard(lock_);
    stats_.packets_received.Inc();
    auto it = protocols_.find(pkt.proto);
    if (it == protocols_.end()) {
      stats_.unknown_proto.Inc();
      return;
    }
    handler = it->second;
  }
  handler(std::move(pkt));
}

}  // namespace plan9

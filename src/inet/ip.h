// The IP layer.
//
// Each node runs an IpStack: interfaces onto media (Ethernet segments via
// ARP, point-to-point wires), a routing table, transport-protocol demux, and
// RFC-791 fragmentation/reassembly.  Gateways (ipgw= in ndb) forward between
// interfaces.  TCP, UDP and IL (§2.3/§3) register as protocol handlers.
#ifndef SRC_INET_IP_H_
#define SRC_INET_IP_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/thread_annotations.h"
#include "src/inet/ipaddr.h"
#include "src/obs/metrics.h"
#include "src/sim/ether_segment.h"
#include "src/sim/wire.h"
#include "src/task/qlock.h"
#include "src/task/timers.h"

namespace plan9 {

// IP protocol numbers.
inline constexpr uint8_t kIpProtoTcp = 6;
inline constexpr uint8_t kIpProtoUdp = 17;
inline constexpr uint8_t kIpProtoIl = 40;  // Plan 9's IL rides protocol 40

inline constexpr uint16_t kEtherTypeIp = 0x0800;
inline constexpr uint16_t kEtherTypeArp = 0x0806;

// A parsed IP packet (post-reassembly when handed to protocols).
struct IpPacket {
  Ipv4Addr src;
  Ipv4Addr dst;
  uint8_t proto = 0;
  uint8_t ttl = 0;
  Bytes payload;
};

// RFC 1071 ones-complement checksum, used by IP/TCP/UDP/IL headers.
uint16_t InetChecksum(const uint8_t* data, size_t len, uint32_t seed = 0);

// Per-stack counters, registry-backed (net.ip.* aggregates in /net/stats).
struct IpMetrics {
  IpMetrics();

  obs::Counter packets_sent;
  obs::Counter packets_received;
  obs::Counter packets_forwarded;
  obs::Counter fragments_sent;
  obs::Counter fragments_received;
  obs::Counter reassembly_drops;
  obs::Counter no_route;
  obs::Counter bad_header;
  obs::Counter unknown_proto;
};

class IpStack {
 public:
  using ProtoHandler = std::function<void(IpPacket&&)>;

  IpStack();
  ~IpStack();

  // --- interfaces ----------------------------------------------------------

  // Ethernet interface: sends/receives IP + ARP frames on `segment`.
  // Returns the interface index.
  int AddEtherInterface(EtherSegment* segment, MacAddr mac, Ipv4Addr addr, Ipv4Addr mask);

  // Point-to-point interface over a Wire end (Cyclone-style IP link).
  int AddPtpInterface(Wire* wire, Wire::End end, Ipv4Addr local, Ipv4Addr remote);

  // Crash semantics (node lifecycle): detach every interface from its medium
  // so the stack goes silent on the wire — no packet is sent or received
  // afterwards — without destroying any state user fds still reference.
  // Idempotent; the destructor skips already-unplugged interfaces.
  void Unplug() MAY_BLOCK;

  // --- routing -------------------------------------------------------------

  // Longest-prefix-match route; gateway 0 means directly attached.
  void AddRoute(Ipv4Addr dest, Ipv4Addr mask, Ipv4Addr gateway, int ifc_index);
  void SetDefaultGateway(Ipv4Addr gateway);
  void EnableForwarding(bool on) {
    QLockGuard guard(lock_);
    forwarding_ = on;
  }

  // --- transports ----------------------------------------------------------

  void RegisterProtocol(uint8_t proto, ProtoHandler handler);
  // Transports must unregister (then TimerWheel::Drain) before destruction.
  void UnregisterProtocol(uint8_t proto);

  // Send `payload` as protocol `proto`.  src may be unspecified: the stack
  // picks the outgoing interface's address.
  Status Send(uint8_t proto, Ipv4Addr src, Ipv4Addr dst, const Bytes& payload);

  // Source address the stack would use toward dst (for binding local ports).
  Result<Ipv4Addr> SourceFor(Ipv4Addr dst);

  // First configured address (identity for status files).
  Ipv4Addr PrimaryAddr();

  const IpMetrics& stats() const { return stats_; }

 private:
  struct Interface;
  struct Route;
  struct Reassembly;

  void EtherInput(size_t ifc_index, const EtherFrame& frame);
  void PtpInput(size_t ifc_index, Bytes frame);
  void IpInput(size_t ifc_index, const Bytes& raw);
  void Deliver(IpPacket&& pkt);
  Status Output(Ipv4Addr src, Ipv4Addr dst, uint8_t proto, uint8_t ttl, const Bytes& payload);
  Status SendOnInterface(Interface& ifc, Ipv4Addr next_hop, const Bytes& ip_packet);
  void ArpInput(size_t ifc_index, const EtherFrame& frame);
  Result<const Route*> Lookup(Ipv4Addr dst) REQUIRES(lock_);
  void SweepReassembly();

  // Ordered before the protocol locks' media sends and before timer; the
  // demux path drops it before invoking protocol handlers.
  QLock lock_{"ip.stack"};
  std::vector<std::unique_ptr<Interface>> interfaces_ GUARDED_BY(lock_);
  std::vector<Route> routes_ GUARDED_BY(lock_);
  std::map<uint8_t, ProtoHandler> protocols_ GUARDED_BY(lock_);
  // Key: src<<32 | ident<<8 | proto.
  std::map<uint64_t, Reassembly> reassembly_ GUARDED_BY(lock_);
  uint16_t next_ident_ GUARDED_BY(lock_) = 1;
  bool forwarding_ GUARDED_BY(lock_) = false;
  IpMetrics stats_;  // atomic counters; no lock needed
  TimerId sweep_timer_ GUARDED_BY(lock_) = kNoTimer;
  // Set false in the destructor so in-flight sweep callbacks become no-ops;
  // the pointer itself is immutable after construction.
  std::shared_ptr<std::atomic<bool>> alive_;
};

}  // namespace plan9

#endif  // SRC_INET_IP_H_

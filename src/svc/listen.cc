#include "src/svc/listen.h"

#include "src/base/logging.h"
#include "src/dial/dial.h"

namespace plan9 {

Result<std::unique_ptr<Service>> Serve(std::shared_ptr<Proc> proc,
                                       const std::string& addr, CallHandler handler,
                                       const std::string& name) {
  std::string adir;
  auto afd = Announce(proc.get(), addr, &adir);
  if (!afd.ok()) {
    return afd.error();
  }
  auto svc = std::make_unique<Service>(name);
  Service* svc_ptr = svc.get();
  svc->OnStop([proc, afd = *afd] { (void)proc->Close(afd); });
  svc->Spawn([proc, adir, handler, svc_ptr] {
    for (;;) {
      // "listen for a call"
      std::string ldir;
      auto lcfd = Listen(proc.get(), adir, &ldir);
      if (!lcfd.ok()) {
        return;  // announcement closed
      }
      // "fork a process" per call.
      svc_ptr->Spawn([proc, handler, lcfd = *lcfd, ldir] {
        auto dfd = Accept(proc.get(), lcfd, ldir);
        if (dfd.ok()) {
          handler(proc.get(), *dfd, ldir);
        }
        (void)proc->Close(lcfd);
      });
    }
  });
  return svc;
}

Result<std::unique_ptr<Service>> StartEchoService(std::shared_ptr<Proc> proc,
                                                  const std::string& addr) {
  return Serve(
      proc, addr,
      [](Proc* p, int dfd, const std::string&) {
        // "echo until EOF"
        char buf[256];
        for (;;) {
          auto n = p->Read(dfd, buf, sizeof buf);
          if (!n.ok() || *n == 0) {
            break;
          }
          auto w = p->Write(dfd, buf, *n);
          if (!w.ok()) {
            break;
          }
        }
        (void)p->Close(dfd);
      },
      "echo");
}

Result<std::unique_ptr<Service>> StartDiscardService(std::shared_ptr<Proc> proc,
                                                     const std::string& addr) {
  return Serve(
      proc, addr,
      [](Proc* p, int dfd, const std::string&) {
        char buf[1024];
        for (;;) {
          auto n = p->Read(dfd, buf, sizeof buf);
          if (!n.ok() || *n == 0) {
            break;
          }
        }
        (void)p->Close(dfd);
      },
      "discard");
}

}  // namespace plan9

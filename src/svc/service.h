// Service — a long-running user-level server (listener, exportfs, DNS...).
//
// Owns the kprocs doing the work plus a stop function that unblocks them
// (typically by closing the announcement ctl fd, which wakes the blocked
// listen).  Destruction stops and joins.
#ifndef SRC_SVC_SERVICE_H_
#define SRC_SVC_SERVICE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/task/kproc.h"
#include "src/task/qlock.h"

namespace plan9 {

class Service {
 public:
  explicit Service(std::string name) : name_(std::move(name)) {}
  ~Service() { Stop(); }

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  const std::string& name() const { return name_; }

  void Spawn(std::function<void()> fn) {
    QLockGuard guard(lock_);
    kprocs_.emplace_back(name_ + "." + std::to_string(kprocs_.size()), std::move(fn));
  }

  void OnStop(std::function<void()> fn) {
    QLockGuard guard(lock_);
    stop_fns_.push_back(std::move(fn));
  }

  void Stop() {
    std::vector<std::function<void()>> fns;
    {
      QLockGuard guard(lock_);
      fns.swap(stop_fns_);
    }
    for (auto& fn : fns) {
      fn();
    }
    std::vector<Kproc> procs;
    {
      QLockGuard guard(lock_);
      procs.swap(kprocs_);
    }
    for (auto& k : procs) {
      k.Join();
    }
  }

 private:
  std::string name_;
  QLock lock_{"svc.service"};
  std::vector<Kproc> kprocs_ GUARDED_BY(lock_);
  std::vector<std::function<void()>> stop_fns_ GUARDED_BY(lock_);
};

}  // namespace plan9

#endif  // SRC_SVC_SERVICE_H_

// Listener — the Plan 9 equivalent of inetd (§5.2, §6.1).
//
// Serve() runs the paper's echo-server skeleton as a reusable harness:
// announce, loop on listen, "fork a process" (spawn a kproc) per call, run
// the handler on the accepted data fd.  Stock handlers for the classic
// trivial services (echo, discard, daytime — the very services the §4.1
// database maps to ports) are provided.
#ifndef SRC_SVC_LISTEN_H_
#define SRC_SVC_LISTEN_H_

#include <functional>
#include <memory>
#include <string>

#include "src/base/thread_annotations.h"
#include "src/ns/proc.h"
#include "src/svc/service.h"

namespace plan9 {

// Handler runs on its own kproc with the accepted data fd (and its
// connection directory); it must Close(dfd) before returning.
using CallHandler = std::function<void(Proc* proc, int dfd, const std::string& ldir)>;

// Announce `addr` ("il!*!echo") in proc's name space and dispatch incoming
// calls to `handler`.  Stop() (or destruction) closes the announcement.
Result<std::unique_ptr<Service>> Serve(std::shared_ptr<Proc> proc,
                                       const std::string& addr, CallHandler handler,
                                       const std::string& name) MAY_BLOCK;

// The echo server of §5.2: "echoes data on the connection until the remote
// end closes it."
Result<std::unique_ptr<Service>> StartEchoService(std::shared_ptr<Proc> proc,
                                                  const std::string& addr);

// Reads and discards until EOF.
Result<std::unique_ptr<Service>> StartDiscardService(std::shared_ptr<Proc> proc,
                                                     const std::string& addr);

}  // namespace plan9

#endif  // SRC_SVC_LISTEN_H_

#include "src/svc/exportfs.h"

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/dial/dial.h"
#include "src/ninep/client.h"
#include "src/ns/namespace.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/svc/listen.h"
#include "src/task/rendez.h"

namespace plan9 {
namespace {

// Fold a (dev_id, qid) pair into an export-local qid path, preserving the
// directory bit.  Different servers may reuse qid paths; the relay must
// present a single consistent space.
uint32_t FoldQid(uint64_t dev_id, uint32_t qid_path) {
  uint64_t h = dev_id * 0x9e3779b97f4a7c15ULL ^ (qid_path & ~kQidDirBit);
  h ^= h >> 33;
  return (static_cast<uint32_t>(h) & ~kQidDirBit) | (qid_path & kQidDirBit);
}

// A vnode naming a path inside the exported name space.  Walks re-resolve
// through the Namespace so mount points and unions behave exactly as they
// do locally.
class ExportVnode : public Vnode {
 public:
  ExportVnode(std::shared_ptr<Proc> proc, std::string root, std::string path,
              ChanPtr chan)
      : proc_(std::move(proc)),
        root_(std::move(root)),
        path_(std::move(path)),
        chan_(std::move(chan)) {}

  ~ExportVnode() override {
    if (opened_) {
      chan_->node->Close(open_mode_);
    }
  }

  Qid qid() override {
    Qid q = chan_->qid;
    q.path = FoldQid(chan_->dev_id, q.path);
    return q;
  }

  Result<Dir> Stat() override {
    auto d = chan_->node->Stat();
    if (d.ok()) {
      d->qid.path = FoldQid(chan_->dev_id, d->qid.path);
    }
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    std::string target = name == ".."
                             ? CleanName(path_ + "/..")
                             : CleanName(path_ + "/" + name);
    // ".." never escapes the exported root.
    if (!HasPrefix(target + "/", root_ == "/" ? "/" : root_ + "/")) {
      target = root_;
    }
    auto chan = proc_->ns()->Resolve(target);
    if (!chan.ok()) {
      return chan.error();
    }
    return std::shared_ptr<Vnode>(
        std::make_shared<ExportVnode>(proc_, root_, target, *chan));
  }

  Status Open(uint8_t mode, const std::string& user) override {
    if (chan_->IsDir() && !chan_->union_stack.empty()) {
      // Union directory: materialize merged entries now (same rule as the
      // local fd layer).
      auto entries = ReadDirChan(chan_);
      if (!entries.ok()) {
        return entries.error();
      }
      dir_image_ = std::make_shared<Bytes>();
      for (auto& d : *entries) {
        d.qid.path = FoldQid(chan_->dev_id, d.qid.path);
        d.Pack(dir_image_.get());
      }
      return Status::Ok();
    }
    P9_RETURN_IF_ERROR(chan_->node->Open(mode, user));
    opened_ = true;
    open_mode_ = mode;
    return Status::Ok();
  }

  Result<std::shared_ptr<Vnode>> Create(const std::string& name, uint32_t perm,
                                        uint8_t mode, const std::string& user) override {
    auto chan = proc_->ns()->Create(CleanName(path_ + "/" + name), perm, mode, user);
    if (!chan.ok()) {
      return chan.error();
    }
    auto node = std::make_shared<ExportVnode>(proc_, root_,
                                              CleanName(path_ + "/" + name), *chan);
    node->opened_ = true;
    node->open_mode_ = mode;
    return std::shared_ptr<Vnode>(node);
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    if (dir_image_ != nullptr) {
      if (offset >= dir_image_->size()) {
        return Bytes{};
      }
      size_t n = std::min<size_t>(count, dir_image_->size() - offset);
      return Bytes(dir_image_->begin() + static_cast<long>(offset),
                   dir_image_->begin() + static_cast<long>(offset + n));
    }
    return chan_->node->Read(offset, count);
  }

  Result<uint32_t> Write(uint64_t offset, const Bytes& data) override {
    return chan_->node->Write(offset, data);
  }

  Status Remove() override { return chan_->node->Remove(); }
  Status Wstat(const Dir& d) override { return chan_->node->Wstat(d); }

  void Close(uint8_t mode) override {
    if (opened_) {
      chan_->node->Close(mode);
      opened_ = false;
    }
  }

 private:
  std::shared_ptr<Proc> proc_;
  std::string root_;
  std::string path_;
  ChanPtr chan_;
  bool opened_ = false;
  uint8_t open_mode_ = 0;
  std::shared_ptr<Bytes> dir_image_;
};

}  // namespace

ExportVfs::ExportVfs(std::shared_ptr<Proc> proc, std::string root_path)
    : proc_(std::move(proc)), root_path_(CleanName(root_path)) {}

Result<std::shared_ptr<Vnode>> ExportVfs::Attach(const std::string& uname,
                                                 const std::string& aname) {
  // aname may narrow the export below root_path_.
  std::string path = aname.empty() ? root_path_ : CleanName(root_path_ + "/" + aname);
  auto chan = proc_->ns()->Resolve(path);
  if (!chan.ok()) {
    return chan.error();
  }
  return std::shared_ptr<Vnode>(std::make_shared<ExportVnode>(proc_, path, path, *chan));
}

Result<std::unique_ptr<Service>> StartExportfs(std::shared_ptr<Proc> proc,
                                               const std::string& addr) {
  return Serve(
      proc, addr,
      [](Proc* p, int dfd, const std::string& ldir) {
        // The transport preserves delimiters iff the network does.
        bool delimited = DialPathDelimited(ldir);
        auto transport = p->TransportForFd(dfd, delimited);
        if (transport == nullptr) {
          (void)p->Close(dfd);
          return;
        }
        // Initial protocol: first message = root of the exported tree.
        auto root = transport->ReadMsg();
        if (!root.ok() || root->empty()) {
          (void)p->Close(dfd);
          return;
        }
        // exportfs serves in the caller's name-space context; a private
        // proc sharing the node's namespace stands in for "the profile of
        // the user requesting the service".
        auto serve_proc = std::make_shared<Proc>(p->ns_ref(), p->user());
        serve_proc->set_host(p->host());
        ExportVfs vfs(serve_proc, ToString(*root));
        NinepServer server(&vfs, std::move(transport), "exportfs", p->host());
        server.Wait();  // until the importer hangs up
        (void)p->Close(dfd);
      },
      "exportfs");
}

Status Import(Proc* proc, const std::string& dest, const std::string& remote_tree,
              const std::string& local_mount, int flags) {
  // Convenience beyond the original tool: materialize a missing mount point
  // (the common /n/<machine> case).
  if (!proc->ns()->Resolve(local_mount).ok()) {
    auto made = proc->ns()->Create(local_mount, kDmDir | 0775, kORead, proc->user());
    if (!made.ok()) {
      return made.error();
    }
  }
  std::string dir;
  P9_ASSIGN_OR_RETURN(int dfd, Dial(proc, dest, &dir));
  bool delimited = DialPathDelimited(dir);
  auto transport = proc->TransportForFd(dfd, delimited);
  if (transport == nullptr) {
    (void)proc->Close(dfd);
    return Error(kErrBadFd);
  }
  // Initial protocol: name the tree we want.
  Status named = transport->WriteMsg(ToBytes(remote_tree));
  if (!named.ok()) {
    (void)proc->Close(dfd);
    return named;
  }
  auto client = std::make_shared<NinepClient>(std::move(transport), proc->host());
  Status mounted = proc->MountClient(client, local_mount, flags);
  // The data fd stays open underneath the transport; the fd table entry is
  // no longer needed ("the import command ... exits").
  return mounted;
}

namespace {

// Dial the remote exportfs, speak the initial protocol, and wrap the
// connection in a 9P client — the connect half of import, factored out so
// the remounter can re-run it.
Result<std::shared_ptr<NinepClient>> DialExport(Proc* proc, const std::string& dest,
                                                const std::string& remote_tree,
                                                const ImportOptions& opts) MAY_BLOCK {
  std::string dir;
  P9_ASSIGN_OR_RETURN(int dfd, Dial(proc, dest, opts.redial, &dir));
  auto transport = proc->TransportForFd(dfd, DialPathDelimited(dir));
  if (transport == nullptr) {
    (void)proc->Close(dfd);
    return Error(kErrBadFd);
  }
  Status named = transport->WriteMsg(ToBytes(remote_tree));
  if (!named.ok()) {
    (void)proc->Close(dfd);
    return named.error();
  }
  auto client = std::make_shared<NinepClient>(std::move(transport), proc->host());
  if (opts.rpc_timeout.count() > 0) {
    client->SetRpcTimeout(opts.rpc_timeout);
  }
  return client;
}

// Shared between the OnDead hook (fires on the client's reader kproc) and
// the remounter kproc.
struct RemountState {
  QLock lock{"import.remount"};
  Rendez kick;
  bool dead GUARDED_BY(lock) = false;
  bool stop GUARDED_BY(lock) = false;
  // The session currently mounted (the namespace's sessions_ record does
  // not own it exclusively; this handle lets the remounter dismantle it).
  std::shared_ptr<NinepClient> client GUARDED_BY(lock);
};

// Tear the current session out of the world: unmount, forget the session
// record, and destroy the client — which closes the transport, so the
// remote exportfs sees a hangup and can join its handler.  Never called
// with state->lock held (the destructor joins the reader, and the reader's
// dying OnDead hook takes state->lock).
void Dismantle(Proc* proc, const std::string& local_mount,
               const std::shared_ptr<RemountState>& state) MAY_BLOCK {
  std::shared_ptr<NinepClient> corpse;
  {
    QLockGuard guard(state->lock);
    corpse = std::move(state->client);
  }
  (void)proc->Unmount(local_mount);
  if (corpse != nullptr) {
    proc->DropSession(corpse);
    corpse.reset();
  }
}

}  // namespace

Result<std::unique_ptr<Service>> ImportManaged(Proc* proc, const std::string& dest,
                                               const std::string& remote_tree,
                                               const std::string& local_mount,
                                               ImportOptions opts) {
  if (!proc->ns()->Resolve(local_mount).ok()) {
    auto made = proc->ns()->Create(local_mount, kDmDir | 0775, kORead, proc->user());
    if (!made.ok()) {
      return made.error();
    }
  }

  auto state = std::make_shared<RemountState>();
  auto arm = [state](const std::shared_ptr<NinepClient>& client) {
    client->OnDead([state](const std::string&) {
      QLockGuard guard(state->lock);
      state->dead = true;
      state->kick.Wakeup();
    });
  };

  P9_ASSIGN_OR_RETURN(auto client, DialExport(proc, dest, remote_tree, opts));
  arm(client);
  P9_RETURN_IF_ERROR(proc->MountClient(client, local_mount, opts.flags));
  {
    QLockGuard guard(state->lock);
    state->client = client;
  }

  auto svc = std::make_unique<Service>("import " + local_mount);
  svc->OnStop([state]() {
    QLockGuard guard(state->lock);
    state->stop = true;
    state->kick.Wakeup();
  });
  svc->Spawn([proc, dest, remote_tree, local_mount, opts, state, arm]() {
    auto& redials = obs::MetricsRegistry::Default().CounterNamed("recovery.ninep.redials");
    auto& remounts = obs::MetricsRegistry::Default().CounterNamed("recovery.ninep.remounts");
    bool stopping = false;
    while (!stopping) {
      {
        QLockGuard guard(state->lock);
        state->kick.Sleep(state->lock,
                          [&]() REQUIRES(state->lock) { return state->dead || state->stop; });
        if (state->stop) {
          break;
        }
        state->dead = false;
      }
      // The connection is dead.  Tear it down now rather than after the
      // redial succeeds: in-flight walks fail fast instead of queueing RPCs
      // against a corpse.  The dead client's data fd entry lingers in the
      // proc's table (as plain Import's does); the vnode underneath it was
      // closed by the client's transport, so the conversation recycles.
      Dismantle(proc, local_mount, state);
      P9_TRACE(obs::TraceKind::kNinep, "import", StrFormat("%s dead; redialing %s",
                                                      local_mount.c_str(), dest.c_str()));
      while (!stopping) {
        redials.Inc();
        auto fresh = DialExport(proc, dest, remote_tree, opts);
        if (fresh.ok()) {
          arm(*fresh);
          Status mounted = proc->MountClient(*fresh, local_mount, opts.flags);
          if (mounted.ok()) {
            {
              QLockGuard guard(state->lock);
              state->client = *fresh;
            }
            remounts.Inc();
            P9_TRACE(obs::TraceKind::kNinep, "import",
                     StrFormat("%s remounted from %s", local_mount.c_str(), dest.c_str()));
            break;
          }
        }
        QLockGuard guard(state->lock);
        if (state->kick.SleepFor(state->lock, std::chrono::milliseconds(100),
                                 [&]() REQUIRES(state->lock) { return state->stop; })) {
          stopping = true;
        }
      }
    }
    // Dismantle the import on the way out, so a graceful shutdown of the
    // exporting node cannot deadlock waiting for a mount that would only
    // die with the whole name space.
    Dismantle(proc, local_mount, state);
  });
  return svc;
}

}  // namespace plan9

#include "src/svc/exportfs.h"

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/dial/dial.h"
#include "src/ninep/client.h"
#include "src/ns/namespace.h"
#include "src/svc/listen.h"

namespace plan9 {
namespace {

// Fold a (dev_id, qid) pair into an export-local qid path, preserving the
// directory bit.  Different servers may reuse qid paths; the relay must
// present a single consistent space.
uint32_t FoldQid(uint64_t dev_id, uint32_t qid_path) {
  uint64_t h = dev_id * 0x9e3779b97f4a7c15ULL ^ (qid_path & ~kQidDirBit);
  h ^= h >> 33;
  return (static_cast<uint32_t>(h) & ~kQidDirBit) | (qid_path & kQidDirBit);
}

// A vnode naming a path inside the exported name space.  Walks re-resolve
// through the Namespace so mount points and unions behave exactly as they
// do locally.
class ExportVnode : public Vnode {
 public:
  ExportVnode(std::shared_ptr<Proc> proc, std::string root, std::string path,
              ChanPtr chan)
      : proc_(std::move(proc)),
        root_(std::move(root)),
        path_(std::move(path)),
        chan_(std::move(chan)) {}

  ~ExportVnode() override {
    if (opened_) {
      chan_->node->Close(open_mode_);
    }
  }

  Qid qid() override {
    Qid q = chan_->qid;
    q.path = FoldQid(chan_->dev_id, q.path);
    return q;
  }

  Result<Dir> Stat() override {
    auto d = chan_->node->Stat();
    if (d.ok()) {
      d->qid.path = FoldQid(chan_->dev_id, d->qid.path);
    }
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    std::string target = name == ".."
                             ? CleanName(path_ + "/..")
                             : CleanName(path_ + "/" + name);
    // ".." never escapes the exported root.
    if (!HasPrefix(target + "/", root_ == "/" ? "/" : root_ + "/")) {
      target = root_;
    }
    auto chan = proc_->ns()->Resolve(target);
    if (!chan.ok()) {
      return chan.error();
    }
    return std::shared_ptr<Vnode>(
        std::make_shared<ExportVnode>(proc_, root_, target, *chan));
  }

  Status Open(uint8_t mode, const std::string& user) override {
    if (chan_->IsDir() && !chan_->union_stack.empty()) {
      // Union directory: materialize merged entries now (same rule as the
      // local fd layer).
      auto entries = ReadDirChan(chan_);
      if (!entries.ok()) {
        return entries.error();
      }
      dir_image_ = std::make_shared<Bytes>();
      for (auto& d : *entries) {
        d.qid.path = FoldQid(chan_->dev_id, d.qid.path);
        d.Pack(dir_image_.get());
      }
      return Status::Ok();
    }
    P9_RETURN_IF_ERROR(chan_->node->Open(mode, user));
    opened_ = true;
    open_mode_ = mode;
    return Status::Ok();
  }

  Result<std::shared_ptr<Vnode>> Create(const std::string& name, uint32_t perm,
                                        uint8_t mode, const std::string& user) override {
    auto chan = proc_->ns()->Create(CleanName(path_ + "/" + name), perm, mode, user);
    if (!chan.ok()) {
      return chan.error();
    }
    auto node = std::make_shared<ExportVnode>(proc_, root_,
                                              CleanName(path_ + "/" + name), *chan);
    node->opened_ = true;
    node->open_mode_ = mode;
    return std::shared_ptr<Vnode>(node);
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    if (dir_image_ != nullptr) {
      if (offset >= dir_image_->size()) {
        return Bytes{};
      }
      size_t n = std::min<size_t>(count, dir_image_->size() - offset);
      return Bytes(dir_image_->begin() + static_cast<long>(offset),
                   dir_image_->begin() + static_cast<long>(offset + n));
    }
    return chan_->node->Read(offset, count);
  }

  Result<uint32_t> Write(uint64_t offset, const Bytes& data) override {
    return chan_->node->Write(offset, data);
  }

  Status Remove() override { return chan_->node->Remove(); }
  Status Wstat(const Dir& d) override { return chan_->node->Wstat(d); }

  void Close(uint8_t mode) override {
    if (opened_) {
      chan_->node->Close(mode);
      opened_ = false;
    }
  }

 private:
  std::shared_ptr<Proc> proc_;
  std::string root_;
  std::string path_;
  ChanPtr chan_;
  bool opened_ = false;
  uint8_t open_mode_ = 0;
  std::shared_ptr<Bytes> dir_image_;
};

}  // namespace

ExportVfs::ExportVfs(std::shared_ptr<Proc> proc, std::string root_path)
    : proc_(std::move(proc)), root_path_(CleanName(root_path)) {}

Result<std::shared_ptr<Vnode>> ExportVfs::Attach(const std::string& uname,
                                                 const std::string& aname) {
  // aname may narrow the export below root_path_.
  std::string path = aname.empty() ? root_path_ : CleanName(root_path_ + "/" + aname);
  auto chan = proc_->ns()->Resolve(path);
  if (!chan.ok()) {
    return chan.error();
  }
  return std::shared_ptr<Vnode>(std::make_shared<ExportVnode>(proc_, path, path, *chan));
}

Result<std::unique_ptr<Service>> StartExportfs(std::shared_ptr<Proc> proc,
                                               const std::string& addr) {
  return Serve(
      proc, addr,
      [](Proc* p, int dfd, const std::string& ldir) {
        // The transport preserves delimiters iff the network does.
        bool delimited = DialPathDelimited(ldir);
        auto transport = p->TransportForFd(dfd, delimited);
        if (transport == nullptr) {
          (void)p->Close(dfd);
          return;
        }
        // Initial protocol: first message = root of the exported tree.
        auto root = transport->ReadMsg();
        if (!root.ok() || root->empty()) {
          (void)p->Close(dfd);
          return;
        }
        // exportfs serves in the caller's name-space context; a private
        // proc sharing the node's namespace stands in for "the profile of
        // the user requesting the service".
        auto serve_proc = std::make_shared<Proc>(p->ns_ref(), p->user());
        ExportVfs vfs(serve_proc, ToString(*root));
        NinepServer server(&vfs, std::move(transport), "exportfs");
        server.Wait();  // until the importer hangs up
        (void)p->Close(dfd);
      },
      "exportfs");
}

Status Import(Proc* proc, const std::string& dest, const std::string& remote_tree,
              const std::string& local_mount, int flags) {
  // Convenience beyond the original tool: materialize a missing mount point
  // (the common /n/<machine> case).
  if (!proc->ns()->Resolve(local_mount).ok()) {
    auto made = proc->ns()->Create(local_mount, kDmDir | 0775, kORead, proc->user());
    if (!made.ok()) {
      return made.error();
    }
  }
  std::string dir;
  P9_ASSIGN_OR_RETURN(int dfd, Dial(proc, dest, &dir));
  bool delimited = DialPathDelimited(dir);
  auto transport = proc->TransportForFd(dfd, delimited);
  if (transport == nullptr) {
    (void)proc->Close(dfd);
    return Error(kErrBadFd);
  }
  // Initial protocol: name the tree we want.
  Status named = transport->WriteMsg(ToBytes(remote_tree));
  if (!named.ok()) {
    (void)proc->Close(dfd);
    return named;
  }
  auto client = std::make_shared<NinepClient>(std::move(transport));
  Status mounted = proc->MountClient(client, local_mount, flags);
  // The data fd stays open underneath the transport; the fd table entry is
  // no longer needed ("the import command ... exits").
  return mounted;
}

}  // namespace plan9

// Blocks — the unit of information in a stream (§2.4).
//
// "Information is represented by linked lists of kernel structures called
// blocks.  Each block contains a type, some state flags, and pointers to an
// optional buffer.  Block buffers can hold either data or control
// information, i.e., directives to the processing modules."
//
// Blocks are passed, not copied, along the data path: ownership of a
// BlockPtr transfers at every hop (P9_CONSUMES), and per-message paths must
// not allocate once the block pool is warm (P9_HOT_PATH).  See
// src/base/block_annotations.h and DESIGN.md §13 for the discipline and the
// checkers (blockcheck / hotcheck) that enforce it.
#ifndef SRC_STREAM_BLOCK_H_
#define SRC_STREAM_BLOCK_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "src/base/block_annotations.h"
#include "src/base/bytes.h"

namespace plan9 {

enum class BlockType : uint8_t {
  kData = 0,     // user or protocol payload
  kControl = 1,  // ASCII directive to processing modules ("push ...", module-specific)
  kHangup = 2,   // sent up the stream from the device end on disconnect
};

// Copy-audit hooks (src/stream/block.cc).  Every deliberate block copy and
// every message entering a stream is counted, so the bench snapshot can
// report copies_per_message (stream.block.* counters, DESIGN.md §13).
namespace blockaudit {
void NoteCopy();     // a whole-payload copy was made (CloneBlock, Text)
void NoteMessage();  // a delimited data block entered a stream head
}  // namespace blockaudit

struct Block {
  BlockType type = BlockType::kData;
  // End-of-message marker: "The last block written is flagged with a
  // delimiter to alert downstream modules that care about write boundaries."
  bool delim = false;
  Bytes data;
  // Read cursor: bytes [rp, data.size()) are live.  Kept in the block so a
  // partially-consumed block can be pushed back on a queue.
  size_t rp = 0;
  // Intrusive free-list link for the per-thread block pool; live blocks
  // never use it.
  Block* pool_next = nullptr;

  size_t size() const { return data.size() - rp; }
  const uint8_t* payload() const { return data.data() + rp; }
  std::string Text() const {
    blockaudit::NoteCopy();
    return std::string(reinterpret_cast<const char*>(payload()), size());
  }
};

using BlockPtr = std::unique_ptr<Block>;

// Pooled allocation for the hot path.  AllocDataBlock reuses a Block node
// from the calling thread's free list when one is available (stream.block
// pool-hit/pool-miss counters record the ratio), so a warm steady-state
// send/receive path performs no node allocation.  RecycleBlock returns a
// fully-consumed block to the pool; DropBlock is the *explicit* way to
// discard an owned block (counted, pooled) — letting a BlockPtr die in a
// destructor on a consuming path is a blockcheck finding.
BlockPtr AllocDataBlock(Bytes data, bool delim = false) P9_HOT_PATH;
void RecycleBlock(BlockPtr b) P9_CONSUMES(b) P9_HOT_PATH;
void DropBlock(BlockPtr b) P9_CONSUMES(b);

inline BlockPtr MakeDataBlock(Bytes data, bool delim = false) {
  auto b = std::make_unique<Block>();
  b->type = BlockType::kData;
  b->data = std::move(data);
  b->delim = delim;
  return b;
}

inline BlockPtr MakeDataBlock(std::string_view text, bool delim = false) {
  return MakeDataBlock(ToBytes(text), delim);
}

inline BlockPtr MakeControlBlock(std::string_view text) {
  auto b = std::make_unique<Block>();
  b->type = BlockType::kControl;
  b->data = ToBytes(text);
  b->delim = true;
  return b;
}

inline BlockPtr MakeHangupBlock() {
  auto b = std::make_unique<Block>();
  b->type = BlockType::kHangup;
  b->delim = true;
  return b;
}

inline BlockPtr CloneBlock(const Block& b) P9_BORROWS(b);

inline BlockPtr CloneBlock(const Block& b) {
  blockaudit::NoteCopy();
  auto copy = std::make_unique<Block>();
  copy->type = b.type;
  copy->delim = b.delim;
  copy->data = Bytes(b.payload(), b.payload() + b.size());
  return copy;
}

}  // namespace plan9

#endif  // SRC_STREAM_BLOCK_H_

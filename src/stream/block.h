// Blocks — the unit of information in a stream (§2.4).
//
// "Information is represented by linked lists of kernel structures called
// blocks.  Each block contains a type, some state flags, and pointers to an
// optional buffer.  Block buffers can hold either data or control
// information, i.e., directives to the processing modules."
#ifndef SRC_STREAM_BLOCK_H_
#define SRC_STREAM_BLOCK_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "src/base/bytes.h"

namespace plan9 {

enum class BlockType : uint8_t {
  kData = 0,     // user or protocol payload
  kControl = 1,  // ASCII directive to processing modules ("push ...", module-specific)
  kHangup = 2,   // sent up the stream from the device end on disconnect
};

struct Block {
  BlockType type = BlockType::kData;
  // End-of-message marker: "The last block written is flagged with a
  // delimiter to alert downstream modules that care about write boundaries."
  bool delim = false;
  Bytes data;
  // Read cursor: bytes [rp, data.size()) are live.  Kept in the block so a
  // partially-consumed block can be pushed back on a queue.
  size_t rp = 0;

  size_t size() const { return data.size() - rp; }
  const uint8_t* payload() const { return data.data() + rp; }
  std::string Text() const {
    return std::string(reinterpret_cast<const char*>(payload()), size());
  }
};

using BlockPtr = std::unique_ptr<Block>;

inline BlockPtr MakeDataBlock(Bytes data, bool delim = false) {
  auto b = std::make_unique<Block>();
  b->type = BlockType::kData;
  b->data = std::move(data);
  b->delim = delim;
  return b;
}

inline BlockPtr MakeDataBlock(std::string_view text, bool delim = false) {
  return MakeDataBlock(ToBytes(text), delim);
}

inline BlockPtr MakeControlBlock(std::string_view text) {
  auto b = std::make_unique<Block>();
  b->type = BlockType::kControl;
  b->data = ToBytes(text);
  b->delim = true;
  return b;
}

inline BlockPtr MakeHangupBlock() {
  auto b = std::make_unique<Block>();
  b->type = BlockType::kHangup;
  b->delim = true;
  return b;
}

inline BlockPtr CloneBlock(const Block& b) {
  auto copy = std::make_unique<Block>();
  copy->type = b.type;
  copy->delim = b.delim;
  copy->data = Bytes(b.payload(), b.payload() + b.size());
  return copy;
}

}  // namespace plan9

#endif  // SRC_STREAM_BLOCK_H_

#include "src/stream/block.h"

#include "src/obs/metrics.h"
#include "src/task/hotcheck.h"

namespace plan9 {
namespace {

struct BlockCounters {
  obs::Counter& copies;
  obs::Counter& msgs;
  obs::Counter& pool_hit;
  obs::Counter& pool_miss;
  obs::Counter& dropped;
  obs::Counter& recycled;
};

BlockCounters& C() {
  // Registration allocates; keep it off any open hot scope's account.
  static BlockCounters c = [] {
    hotcheck::SuspendScope suspend;
    auto& r = obs::MetricsRegistry::Default();
    return BlockCounters{
        r.CounterNamed("stream.block.copies"),
        r.CounterNamed("stream.block.msgs"),
        r.CounterNamed("stream.block.pool-hit"),
        r.CounterNamed("stream.block.pool-miss"),
        r.CounterNamed("stream.block.dropped"),
        r.CounterNamed("stream.block.recycled"),
    };
  }();
  return c;
}

// Per-thread intrusive free list of Block nodes.  Thread-local so the hot
// path takes no lock; a block freed on a different thread than it was
// allocated on simply migrates lists.  Capped so a burst cannot pin memory.
struct FreeList {
  Block* head = nullptr;
  size_t count = 0;
  static constexpr size_t kCap = 128;

  ~FreeList() {
    while (head != nullptr) {
      Block* next = head->pool_next;
      delete head;
      head = next;
    }
  }
};

FreeList& Pool() {
  thread_local FreeList pool;
  return pool;
}

void PoolPut(BlockPtr b) {
  FreeList& pool = Pool();
  if (pool.count >= FreeList::kCap) return;  // BlockPtr frees it
  Block* node = b.release();
  node->data.clear();  // keeps capacity for reuse via assignment below
  node->rp = 0;
  node->delim = false;
  node->type = BlockType::kData;
  node->pool_next = pool.head;
  pool.head = node;
  pool.count++;
}

}  // namespace

namespace blockaudit {

void NoteCopy() {
  C().copies.Inc(1);
  hotcheck::NoteBlockCopy();
}

void NoteMessage() { C().msgs.Inc(1); }

}  // namespace blockaudit

BlockPtr AllocDataBlock(Bytes data, bool delim) {
  FreeList& pool = Pool();
  Block* node = pool.head;
  if (node != nullptr) {
    pool.head = node->pool_next;
    pool.count--;
    node->pool_next = nullptr;
    C().pool_hit.Inc(1);
  } else {
    C().pool_miss.Inc(1);
    node = new Block();
  }
  node->type = BlockType::kData;
  node->data = std::move(data);
  node->delim = delim;
  node->rp = 0;
  return BlockPtr(node);
}

void RecycleBlock(BlockPtr b) {
  if (b == nullptr) return;
  C().recycled.Inc(1);
  PoolPut(std::move(b));
}

void DropBlock(BlockPtr b) {
  if (b == nullptr) return;
  C().dropped.Inc(1);
  PoolPut(std::move(b));
}

}  // namespace plan9

#include "src/stream/stream.h"

#include <atomic>
#include <cstring>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/task/hotcheck.h"

namespace plan9 {

void StreamModule::PutDown(BlockPtr b) {
  if (down_ != nullptr) {
    down_->DownPut(std::move(b));
  } else {
    DropBlock(std::move(b));  // unlinked module: nowhere to forward
  }
}

void StreamModule::PutUp(BlockPtr b) {
  if (up_ != nullptr) {
    up_->UpPut(std::move(b));
  } else {
    DropBlock(std::move(b));
  }
}

ModuleRegistry& ModuleRegistry::Instance() {
  static ModuleRegistry* registry = new ModuleRegistry();
  return *registry;
}

void ModuleRegistry::Register(const std::string& name, Factory factory) {
  QLockGuard guard(lock_);
  factories_.emplace_back(name, std::move(factory));
}

std::unique_ptr<StreamModule> ModuleRegistry::Create(const std::string& name) {
  QLockGuard guard(lock_);
  for (auto& [n, f] : factories_) {
    if (n == name) {
      return f();
    }
  }
  return nullptr;
}

// The head module converts UpPut into head-queue insertion and watches for
// hangup blocks from the device end.
class Stream::HeadModule : public StreamModule {
 public:
  explicit HeadModule(Stream* stream) : stream_(stream) {}
  std::string_view name() const override { return "head"; }

  void UpPut(BlockPtr b) override P9_CONSUMES(b) P9_HOT_PATH {
    if (b->type == BlockType::kHangup) {
      stream_->hungup_.store(true);
      stream_->head_queue_.Close();
      DropBlock(std::move(b));  // the hangup is now stream state, not data
      return;
    }
    // Input is not flow controlled at the head (device context must not
    // block); the head queue limit bounds via protocol windows instead.
    (void)stream_->head_queue_.PutNoBlock(std::move(b));
  }

  void DownPut(BlockPtr b) override P9_CONSUMES(b) P9_HOT_PATH {
    PutDown(std::move(b));
  }

 private:
  Stream* stream_;
};

Stream::Stream(std::unique_ptr<StreamModule> device_module, size_t head_queue_limit)
    : device_module_(std::move(device_module)),
      head_module_(std::make_unique<HeadModule>(this)),
      head_queue_(head_queue_limit) {
  Relink();
  device_module_->OnOpen(this);
}

Stream::~Stream() {
  head_queue_.CloseAndFlush();
  for (auto& m : modules_) {
    m->OnClose();
  }
  device_module_->OnClose();
}

void Stream::Relink() {
  // head <-> modules[0] <-> ... <-> modules[n-1] <-> device
  StreamModule* prev = head_module_.get();
  for (auto& m : modules_) {
    prev->down_ = m.get();
    m->up_ = prev;
    prev = m.get();
  }
  prev->down_ = device_module_.get();
  device_module_->up_ = prev;
  device_module_->down_ = nullptr;
}

void Stream::SendDown(BlockPtr b) {
  std::shared_lock<std::shared_mutex> lock(chain_lock_);
  if (b->delim && b->type == BlockType::kData) {
    blockaudit::NoteMessage();
  }
  StreamModule* top = head_module_->down_;
  if (top != nullptr) {
    top->DownPut(std::move(b));
  } else {
    DropBlock(std::move(b));
  }
}

Result<size_t> Stream::Write(const uint8_t* data, size_t n) {
  if (hungup_.load()) {
    return Error(kErrHungup);
  }
  P9_HOT_ROOT("stream.write");
  size_t sent = 0;
  do {
    size_t chunk = n - sent < kMaxBlock ? n - sent : kMaxBlock;
    // The single user-to-kernel copy of the data path ("a write of less
    // than 32K is guaranteed to be contained by a single block"); the block
    // node itself comes from the pool.
    auto b = AllocDataBlock(Bytes(data + sent, data + sent + chunk),
                            /*delim=*/sent + chunk == n);
    sent += chunk;
    SendDown(std::move(b));
  } while (sent < n);
  return sent;
}

Status Stream::WriteBlock(BlockPtr b) {
  P9_HOT_ROOT("stream.write-block");
  if (hungup_.load()) {
    DropBlock(std::move(b));
    return Error(kErrHungup);
  }
  SendDown(std::move(b));
  return Status::Ok();
}

Status Stream::WriteControl(std::string_view msg) {
  auto words = Tokenize(msg);
  if (!words.empty()) {
    // "The stream system intercepts and interprets the following control
    // blocks: push name / pop / hangup."
    if (words[0] == "push" && words.size() == 2) {
      return Push(words[1]);
    }
    if (words[0] == "pop") {
      return Pop();
    }
    if (words[0] == "hangup") {
      Hangup();
      return Status::Ok();
    }
  }
  if (hungup_.load()) {
    return Error(kErrHungup);
  }
  SendDown(MakeControlBlock(msg));
  return Status::Ok();
}

Result<size_t> Stream::Read(uint8_t* buf, size_t n) {
  QLockGuard read_guard(read_lock_);
  P9_HOT_ROOT("stream.read");
  size_t got = 0;
  while (got < n) {
    BlockPtr b = got == 0 ? head_queue_.Get() : head_queue_.GetNoWait();
    if (b == nullptr) {
      break;  // EOF (hangup) or no more queued data
    }
    if (b->type == BlockType::kControl) {
      // Control blocks reaching the head are rare; skip them for data reads.
      DropBlock(std::move(b));
      continue;
    }
    size_t take = b->size() < n - got ? b->size() : n - got;
    std::memcpy(buf + got, b->payload(), take);
    b->rp += take;
    got += take;
    if (b->size() > 0) {
      head_queue_.PutBack(std::move(b));
      break;  // buffer full
    }
    bool delim = b->delim;
    RecycleBlock(std::move(b));  // fully drained: back to the pool
    if (delim) {
      break;  // "...or when the end of a delimited block is encountered"
    }
  }
  return got;
}

Result<Bytes> Stream::ReadMessage() {
  QLockGuard read_guard(read_lock_);
  P9_HOT_ROOT("stream.read-message");
  Bytes out;
  for (;;) {
    BlockPtr b = head_queue_.Get();
    if (b == nullptr) {
      break;  // EOF
    }
    if (b->type == BlockType::kControl) {
      DropBlock(std::move(b));
      continue;
    }
    out.insert(out.end(), b->payload(), b->payload() + b->size());
    bool delim = b->delim;
    RecycleBlock(std::move(b));
    if (delim) {
      break;
    }
  }
  return out;
}

bool Stream::HasInput() { return head_queue_.block_count() > 0 || hungup_.load(); }

Status Stream::Push(const std::string& module_name) {
  auto module = ModuleRegistry::Instance().Create(module_name);
  if (module == nullptr) {
    return Error(StrFormat("unknown stream module: %s", module_name.c_str()));
  }
  std::unique_lock<std::shared_mutex> lock(chain_lock_);
  modules_.insert(modules_.begin(), std::move(module));
  Relink();
  modules_.front()->OnOpen(this);
  return Status::Ok();
}

Status Stream::Pop() {
  std::unique_lock<std::shared_mutex> lock(chain_lock_);
  if (modules_.empty()) {
    return Error("no module to pop");
  }
  modules_.front()->OnClose();
  modules_.erase(modules_.begin());
  Relink();
  return Status::Ok();
}

size_t Stream::ModuleCount() {
  std::shared_lock<std::shared_mutex> lock(chain_lock_);
  return modules_.size();
}

void Stream::DeliverUp(BlockPtr b) {
  std::shared_lock<std::shared_mutex> lock(chain_lock_);
  if (b->delim && b->type == BlockType::kData) {
    blockaudit::NoteMessage();
  }
  // Enter above the device module so pushed modules see inbound traffic.
  StreamModule* first = device_module_->up_;
  if (first != nullptr) {
    first->UpPut(std::move(b));
  } else {
    DropBlock(std::move(b));
  }
}

void Stream::Hangup() {
  DeliverUp(MakeHangupBlock());
}

bool Stream::hungup() { return hungup_.load(); }

}  // namespace plan9

// Flow-controlled block queues (§2.4).
//
// "An instance of a processing module is represented by a pair of queues,
// one for each direction."  Queues point at put procedures and buffer blocks
// travelling along the stream.  Writers block when a queue exceeds its limit
// (flow control); readers sleep until data or close.  A queue may have a
// `kick` function, called after a put, which devices use to start output.
#ifndef SRC_STREAM_QUEUE_H_
#define SRC_STREAM_QUEUE_H_

#include <deque>
#include <functional>

#include "src/base/block_annotations.h"
#include "src/base/result.h"
#include "src/base/thread_annotations.h"
#include "src/stream/block.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"

namespace plan9 {

class Queue {
 public:
  static constexpr size_t kDefaultLimit = 128 * 1024;

  explicit Queue(size_t limit = kDefaultLimit, std::function<void()> kick = nullptr)
      : limit_(limit), kick_(std::move(kick)) {}
  ~Queue();  // releases still-queued bytes from the process depth gauge

  // Enqueue, sleeping while the queue is over its limit.  Fails if closed.
  Status Put(BlockPtr b) P9_CONSUMES(b) P9_HOT_PATH MAY_BLOCK;

  // Enqueue without flow control (device input paths must not block).
  Status PutNoBlock(BlockPtr b) P9_CONSUMES(b) P9_HOT_PATH;

  // Return a partially consumed block to the head of the queue.
  void PutBack(BlockPtr b) P9_CONSUMES(b) P9_HOT_PATH;

  // Dequeue; blocks until a block is available.  Returns nullptr once the
  // queue is closed and drained.
  BlockPtr Get() P9_HOT_PATH MAY_BLOCK;

  // Non-blocking dequeue; nullptr if empty.
  BlockPtr GetNoWait() P9_HOT_PATH;

  // Block until at least one block is queued or the queue is closed.
  // Returns true if data is available.
  bool WaitNonEmpty() MAY_BLOCK;

  // No more puts; readers drain whatever is queued, then see EOF.
  void Close();
  // Close and discard queued blocks.
  void CloseAndFlush();

  bool closed();
  size_t byte_count();
  size_t block_count();
  // True when below the flow-control limit (writers would not block).
  bool HasRoom();

 private:
  // Queue locks order *after* the stream read lock and after conversation
  // locks (input paths put while holding conversation state); they are
  // leaves apart from the timer — kick_ runs with lock_ dropped.
  QLock lock_{"stream.queue"};
  Rendez can_read_;
  Rendez can_write_;
  std::deque<BlockPtr> blocks_ GUARDED_BY(lock_);
  size_t bytes_ GUARDED_BY(lock_) = 0;
  const size_t limit_;
  bool closed_ GUARDED_BY(lock_) = false;
  const std::function<void()> kick_;
};

}  // namespace plan9

#endif  // SRC_STREAM_QUEUE_H_

#include "src/stream/queue.h"

#include "src/obs/metrics.h"

namespace plan9 {

namespace {

// Total bytes queued across every stream queue in the process, with a
// high-water mark (stream.q.depth / stream.q.depth-hiwat in /net/stats).
obs::Gauge& DepthGauge() {
  static obs::Gauge* g =
      &obs::MetricsRegistry::Default().GaugeNamed("stream.q.depth");
  return *g;
}

}  // namespace

Queue::~Queue() {
  if (bytes_ > 0) {
    DepthGauge().Add(-static_cast<int64_t>(bytes_));
  }
}

Status Queue::Put(BlockPtr b) {
  {
    QLockGuard guard(lock_);
    can_write_.Sleep(lock_, [&]() REQUIRES(lock_) { return closed_ || bytes_ <= limit_; });
    if (closed_) {
      DropBlock(std::move(b));  // don't strand the block on the failed path
      return Error(kErrHungup);
    }
    bytes_ += b->size();
    DepthGauge().Add(static_cast<int64_t>(b->size()));
    blocks_.push_back(std::move(b));
  }
  can_read_.Wakeup();
  if (kick_) {
    kick_();
  }
  return Status::Ok();
}

Status Queue::PutNoBlock(BlockPtr b) {
  {
    QLockGuard guard(lock_);
    if (closed_) {
      DropBlock(std::move(b));
      return Error(kErrHungup);
    }
    bytes_ += b->size();
    DepthGauge().Add(static_cast<int64_t>(b->size()));
    blocks_.push_back(std::move(b));
  }
  can_read_.Wakeup();
  if (kick_) {
    kick_();
  }
  return Status::Ok();
}

void Queue::PutBack(BlockPtr b) {
  {
    QLockGuard guard(lock_);
    bytes_ += b->size();
    DepthGauge().Add(static_cast<int64_t>(b->size()));
    blocks_.push_front(std::move(b));
  }
  can_read_.Wakeup();
}

BlockPtr Queue::Get() {
  BlockPtr b;
  {
    QLockGuard guard(lock_);
    can_read_.Sleep(lock_, [&]() REQUIRES(lock_) { return closed_ || !blocks_.empty(); });
    if (blocks_.empty()) {
      return nullptr;  // closed and drained
    }
    b = std::move(blocks_.front());
    blocks_.pop_front();
    bytes_ -= b->size();
    DepthGauge().Add(-static_cast<int64_t>(b->size()));
  }
  can_write_.Wakeup();
  return b;
}

BlockPtr Queue::GetNoWait() {
  BlockPtr b;
  {
    QLockGuard guard(lock_);
    if (blocks_.empty()) {
      return nullptr;
    }
    b = std::move(blocks_.front());
    blocks_.pop_front();
    bytes_ -= b->size();
    DepthGauge().Add(-static_cast<int64_t>(b->size()));
  }
  can_write_.Wakeup();
  return b;
}

bool Queue::WaitNonEmpty() {
  QLockGuard guard(lock_);
  can_read_.Sleep(lock_, [&]() REQUIRES(lock_) { return closed_ || !blocks_.empty(); });
  return !blocks_.empty();
}

void Queue::Close() {
  {
    QLockGuard guard(lock_);
    closed_ = true;
  }
  can_read_.Wakeup();
  can_write_.Wakeup();
}

void Queue::CloseAndFlush() {
  {
    QLockGuard guard(lock_);
    closed_ = true;
    blocks_.clear();
    DepthGauge().Add(-static_cast<int64_t>(bytes_));
    bytes_ = 0;
  }
  can_read_.Wakeup();
  can_write_.Wakeup();
}

bool Queue::closed() {
  QLockGuard guard(lock_);
  return closed_;
}

size_t Queue::byte_count() {
  QLockGuard guard(lock_);
  return bytes_;
}

size_t Queue::block_count() {
  QLockGuard guard(lock_);
  return blocks_.size();
}

bool Queue::HasRoom() {
  QLockGuard guard(lock_);
  return !closed_ && bytes_ <= limit_;
}

}  // namespace plan9

// Streams (§2.4).
//
// "A stream is a bidirectional channel connecting a physical or pseudo-device
// to user processes. ... A stream comprises a linear list of processing
// modules.  Each module has both an upstream (toward the process) and
// downstream (toward the device) put routine."
//
// Layout of a Stream:
//
//    user Read/Write
//        |                          ^
//        v                          |  head queue
//    [module 0]  <-- top of stream (pushed modules live here)
//        ...
//    [module n-1]
//        |                          ^
//        v                          |
//    [device module]  <-- supplied by the device driver
//
// Write() splits data into blocks of at most kMaxBlock (32K: "A write of less
// than 32K is guaranteed to be contained by a single block"), flags the last
// with a delimiter, and calls the top module's downstream put.  In most cases
// each put routine calls the next directly, so "most data is output without
// context switching".
//
// The stream system intercepts `push name`, `pop` and `hangup` control
// blocks; all other control blocks travel down the stream for modules to
// interpret.
#ifndef SRC_STREAM_STREAM_H_
#define SRC_STREAM_STREAM_H_

#include <atomic>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/thread_annotations.h"
#include "src/stream/block.h"
#include "src/stream/queue.h"
#include "src/task/qlock.h"

namespace plan9 {

class Stream;

// A processing module instance.  Subclasses override the put routines; the
// default implementations forward along the stream.  "There is no implicit
// synchronization in our streams.  Each processing module must ensure that
// concurrent processes using the stream are synchronized."
class StreamModule {
 public:
  virtual ~StreamModule() = default;

  virtual std::string_view name() const = 0;

  // Data travelling toward the device.  Default: pass to the next module.
  virtual void DownPut(BlockPtr b) P9_CONSUMES(b) P9_HOT_PATH {
    PutDown(std::move(b));
  }

  // Data travelling toward the process.  Default: pass upward.
  virtual void UpPut(BlockPtr b) P9_CONSUMES(b) P9_HOT_PATH {
    PutUp(std::move(b));
  }

  // Called when the module is inserted into / removed from a stream.
  virtual void OnOpen(Stream* stream) {}
  virtual void OnClose() {}

 protected:
  // Forward helpers for subclasses.
  void PutDown(BlockPtr b) P9_CONSUMES(b) P9_HOT_PATH;
  void PutUp(BlockPtr b) P9_CONSUMES(b) P9_HOT_PATH;

 private:
  friend class Stream;
  StreamModule* up_ = nullptr;    // toward the process (head)
  StreamModule* down_ = nullptr;  // toward the device
};

// Factory registry for dynamically pushable modules ("push name").
class ModuleRegistry {
 public:
  using Factory = std::function<std::unique_ptr<StreamModule>()>;

  static ModuleRegistry& Instance();
  void Register(const std::string& name, Factory factory);
  std::unique_ptr<StreamModule> Create(const std::string& name);

 private:
  QLock lock_{"stream.modreg"};
  std::vector<std::pair<std::string, Factory>> factories_ GUARDED_BY(lock_);
};

class Stream {
 public:
  // "A write of less than 32K is guaranteed to be contained by a single
  // block."
  static constexpr size_t kMaxBlock = 32 * 1024;

  // The device module sits at the downstream end; Stream takes ownership.
  explicit Stream(std::unique_ptr<StreamModule> device_module,
                  size_t head_queue_limit = Queue::kDefaultLimit);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  // --- user (process) end --------------------------------------------------

  // Copy data into blocks and send them down the stream.  Returns bytes
  // written or an error (e.g. after hangup).  MAY_BLOCK: put routines below
  // can sleep on protocol windows or queue flow control.
  Result<size_t> Write(const uint8_t* data, size_t n) P9_HOT_PATH MAY_BLOCK;
  Result<size_t> Write(std::string_view s) MAY_BLOCK {
    return Write(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }
  // Send one pre-formed block down (no splitting); used by RPC layers that
  // need message boundaries preserved exactly.
  Status WriteBlock(BlockPtr b) P9_CONSUMES(b) P9_HOT_PATH MAY_BLOCK;

  // Write a control block.  `push name`, `pop` and `hangup` are interpreted
  // by the stream system; everything else goes down the stream.
  Status WriteControl(std::string_view msg) MAY_BLOCK;

  // Read up to n bytes.  "The read terminates when the read count is reached
  // or when the end of a delimited block is encountered."  Returns 0 at EOF
  // (hangup).  A per-stream read lock serializes readers.
  Result<size_t> Read(uint8_t* buf, size_t n) P9_HOT_PATH MAY_BLOCK;

  // Read exactly one delimited message (drains blocks up to and including
  // the next delimiter).  nullptr-sized (empty optional semantics): returns
  // empty Bytes at EOF.
  Result<Bytes> ReadMessage() P9_HOT_PATH MAY_BLOCK;

  // Non-blocking check for readable data.
  bool HasInput();

  // --- stream management ---------------------------------------------------

  Status Push(const std::string& module_name);
  Status Pop();
  // Number of pushed modules (excluding the device module).
  size_t ModuleCount();

  // --- device / module end -------------------------------------------------

  // Deliver a block arriving from below the topmost module toward the user.
  // Called by the device module chain; lands in the head queue.
  void DeliverUp(BlockPtr b) P9_CONSUMES(b) P9_HOT_PATH;

  // The device end signals disconnect; readers see EOF after draining.
  void Hangup();
  bool hungup();

  Queue& head_queue() { return head_queue_; }

 private:
  friend class StreamModule;

  // Sends b into the top of the downstream chain.
  void SendDown(BlockPtr b) P9_CONSUMES(b) P9_HOT_PATH;
  void Relink();

  std::shared_mutex chain_lock_;  // guards module list & links vs. traffic
  std::vector<std::unique_ptr<StreamModule>> modules_;  // [0] = top
  std::unique_ptr<StreamModule> device_module_;

  // Sentinel top module: UpPut lands blocks in the head queue.
  class HeadModule;
  std::unique_ptr<StreamModule> head_module_;

  Queue head_queue_;
  // "A per stream read lock ensures only one process..." — serialization
  // only, guards no members; ordered before the head queue's lock.
  // Sleepable: Read/ReadMessage hold it across head_queue_.Get() by design
  // (the whole point is to park later readers behind the blocked one).
  QLock read_lock_{"stream.read", kSleepableClass};
  std::atomic<bool> hungup_{false};
};

}  // namespace plan9

#endif  // SRC_STREAM_STREAM_H_

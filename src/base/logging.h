// Minimal leveled logging.  Off by default; enabled per-process via
// SetLogLevel or the PLAN9_LOG environment variable (0..3).
#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace plan9 {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
bool LogEnabled(LogLevel level);
void LogLine(LogLevel level, const std::string& line);

// Stream-style one-shot logger: LogMessage(kInfo).stream() << ...
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define P9_LOG(level)                               \
  if (!::plan9::LogEnabled(::plan9::LogLevel::level)) { \
  } else                                            \
    ::plan9::LogMessage(::plan9::LogLevel::level).stream()

}  // namespace plan9

#endif  // SRC_BASE_LOGGING_H_

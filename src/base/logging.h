// Minimal leveled logging.  Off by default; enabled per-process via
// SetLogLevel or the PLAN9_LOG environment variable (0..3).
#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace plan9 {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
bool LogEnabled(LogLevel level);

// Node label prefixed to every line ("helix" -> "[helix/ether0.read]").
// Empty (the default) prefixes just the kproc name.  One node per process in
// deployment; simulations hosting several nodes leave this as the world name.
void SetLogNode(const std::string& name);

// Emits "[sec.usec] [L] [node/kproc] line".  The line is composed into one
// buffer and written with a single call under a mutex, so concurrent writers
// never interleave mid-line; the timestamp is monotonic (steady clock since
// process start).  When kLog tracing is enabled the line is also recorded in
// the flight recorder (readable as /net/log).
void LogLine(LogLevel level, const std::string& line);

// Stream-style one-shot logger: LogMessage(kInfo).stream() << ...
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define P9_LOG(level)                               \
  if (!::plan9::LogEnabled(::plan9::LogLevel::level)) { \
  } else                                            \
    ::plan9::LogMessage(::plan9::LogLevel::level).stream()

}  // namespace plan9

#endif  // SRC_BASE_LOGGING_H_

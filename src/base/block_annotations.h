// Data-path ownership and copy-discipline annotations.
//
// "Information is represented by linked lists of kernel structures called
// blocks" (§2.4) — and blocks are *passed*, not copied, between processing
// modules.  The whole data path hands a Block from the device input routine
// up through the protocol modules to the stream head (and back down on
// write) by transferring ownership of a single BlockPtr.  That discipline is
// implied by unique_ptr but not enforced by it: a stray CloneBlock, an early
// return that silently destroys a delimited block, or a per-message Bytes
// copy all compile cleanly.  These macros make the contract machine-checked:
//
//   * P9_CONSUMES(b) — the function takes ownership of block parameter `b`.
//     tools/lint/plan9lint (blockcheck) verifies the body forwards, pools
//     (RecycleBlock/DropBlock), resets, or returns the block on EVERY path;
//     an early return that strands it is a finding (block-consume).
//   * P9_BORROWS(b) — the function inspects block (or block-shaped)
//     parameter `b` but must not keep it: storing `&b` or binding it to a
//     member past the call is a finding (block-borrow-escape).
//   * P9_HOT_PATH — seeds the per-message send/receive paths.  plan9lint
//     propagates the property transitively over the call graph (callee
//     direction: everything reachable from a hot root is hot) and flags
//     copies and allocations inside hot functions: CloneBlock, Block::Text,
//     Bytes/std::string/std::vector construction, and non-pool
//     MakeDataBlock (hot-path-copy).  Deliberate exceptions (the single
//     user-to-kernel copy in Stream::Write, frame serialization) live in a
//     short whitelist in tools/lint/p9lint/config.py, mirroring the
//     kSleepableClass grammar for locks.
//
// The runtime counterpart is src/task/hotcheck.h: under
// -DPLAN9NET_HOTCHECK=ON a thread-local scope entered at HOT_PATH roots
// counts heap allocations and block copies per message (stream.hot.*
// counters feed allocs_per_message in the bench snapshot) and, for scopes
// declared zero-alloc, aborts with a flight-recorder dump on the first
// allocation.  Place P9_HOT_ROOT(name) at the top of a seeded function to
// open the scope.
//
// Like MAY_BLOCK, annotate declarations (the trailing position after the
// parameter list, alongside override/MAY_BLOCK); plan9lint reads them with
// its text frontend, and on clang they additionally expand to `annotate`
// attributes so AST-based tools can see them.  On GCC they expand to
// nothing.
#ifndef SRC_BASE_BLOCK_ANNOTATIONS_H_
#define SRC_BASE_BLOCK_ANNOTATIONS_H_

#include "src/base/thread_annotations.h"

// Ownership of block parameter `b` transfers to the callee; the callee must
// forward, pool, or explicitly drop it on every path.
#define P9_CONSUMES(b) P9_THREAD_ANNOTATION(annotate("plan9::consumes:" #b))

// Block parameter `b` is inspected only for the duration of the call; the
// callee must not store a reference or pointer to it.
#define P9_BORROWS(b) P9_THREAD_ANNOTATION(annotate("plan9::borrows:" #b))

// Per-message send/receive path: everything reachable from here runs once
// (or more) per message, so copies and allocations here are regressions.
#define P9_HOT_PATH P9_THREAD_ANNOTATION(annotate("plan9::hot_path"))

#endif  // SRC_BASE_BLOCK_ANNOTATIONS_H_

// Clang thread-safety annotations.
//
// The paper is explicit that "there is no implicit synchronization in our
// streams -- each processing module must ensure that concurrent processes
// using the stream are synchronized" (§2.4).  These macros let the compiler
// enforce that discipline: QLock is a capability, QLockGuard a scoped
// capability, and lock-protected state is marked GUARDED_BY so that an
// unlocked access is a compile error under
//
//   clang++ -Wthread-safety -Werror=thread-safety
//
// On compilers without the attributes (GCC) everything expands to nothing.
// See DESIGN.md "Locking discipline" for how to annotate new code.
#ifndef SRC_BASE_THREAD_ANNOTATIONS_H_
#define SRC_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define P9_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define P9_THREAD_ANNOTATION(x)
#endif

// A type that can be held: QLock.  `x` names the capability kind in
// diagnostics ("qlock 'lock_' is not held...").
#define CAPABILITY(x) P9_THREAD_ANNOTATION(capability(x))

// RAII type that acquires a capability in its constructor and releases it in
// its destructor: QLockGuard.
#define SCOPED_CAPABILITY P9_THREAD_ANNOTATION(scoped_lockable)

// Data members readable/writable only with the given capability held.
#define GUARDED_BY(x) P9_THREAD_ANNOTATION(guarded_by(x))
// As GUARDED_BY, for pointers: the pointed-to data is guarded.
#define PT_GUARDED_BY(x) P9_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions callable only with the capability held / not held.  Also valid on
// lambdas after the parameter list: [&]() REQUIRES(lock_) { ... } — used for
// Rendez sleep predicates, which always run under the lock.
#define REQUIRES(...) P9_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) P9_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that acquire/release a capability and hold it past return
// (or take it held and release it).
#define ACQUIRE(...) P9_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) P9_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) P9_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Assert (at analysis level) that the capability is already held.
#define ASSERT_CAPABILITY(x) P9_THREAD_ANNOTATION(assert_capability(x))

// Declare the return value is the capability itself (accessors).
#define RETURN_CAPABILITY(x) P9_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot follow (lock juggling across
// functions).  Use sparingly and leave a comment saying why.
#define NO_THREAD_SAFETY_ANALYSIS P9_THREAD_ANNOTATION(no_thread_safety_analysis)

// Functions that can put the calling kproc to sleep: Rendez::Sleep, the
// flow-controlled Queue put/get paths, 9P RPCs, Dial, and anything that
// transitively reaches one of them.  Clang's -Wthread-safety cannot express
// "must not be called with an unrelated QLock held", so this is enforced by
// two cooperating checkers instead:
//
//   * statically, tools/lint/plan9lint propagates MAY_BLOCK over the call
//     graph and reports call sites that can block while a QLock is held
//     (whitelisting the rendez-own-lock idiom and lock classes declared
//     sleepable, see DESIGN.md "Static analysis"); and
//   * dynamically, under -DPLAN9NET_LOCKCHECK=ON, Rendez aborts when a
//     sleep begins while the thread holds any non-sleepable lock other
//     than the rendez's own (src/task/lockcheck.h OnBlock).
//
// Annotate the public entry points of anything that sleeps; plan9lint infers
// the interior of the call graph but virtual dispatch and std::function are
// resolved through declared annotations only.
#define MAY_BLOCK P9_THREAD_ANNOTATION(annotate("plan9::may_block"))

#endif  // SRC_BASE_THREAD_ANNOTATIONS_H_

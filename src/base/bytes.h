// Byte-buffer codec helpers.
//
// 9P1 and our protocol headers marshal integers little-endian with explicit
// widths (the paper: ASCII for control, binary little-endian for 9P).  These
// helpers keep the marshal/unmarshal code free of casts and bounds bugs.
#ifndef SRC_BASE_BYTES_H_
#define SRC_BASE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace plan9 {

using Bytes = std::vector<uint8_t>;

// Append-only little-endian encoder.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) {
    out_->push_back(static_cast<uint8_t>(v));
    out_->push_back(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v));
    U16(static_cast<uint16_t>(v >> 16));
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }
  // Fixed-width NUL-padded string field (9P1 style: NAMELEN=28 etc.).
  void FixedString(std::string_view s, size_t width) {
    size_t n = s.size() < width ? s.size() : width - 1;
    out_->insert(out_->end(), s.begin(), s.begin() + static_cast<long>(n));
    out_->insert(out_->end(), width - n, 0);
  }
  void Raw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + n);
  }
  void Raw(const Bytes& b) { Raw(b.data(), b.size()); }

 private:
  Bytes* out_;
};

// Bounds-checked little-endian decoder.  All getters return nullopt once the
// buffer is exhausted; `ok()` reports whether any read failed.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t U8() { return Take(1) ? data_[pos_ - 1] : 0; }
  uint16_t U16() {
    if (!Take(2)) {
      return 0;
    }
    return static_cast<uint16_t>(data_[pos_ - 2]) |
           static_cast<uint16_t>(data_[pos_ - 1]) << 8;
  }
  uint32_t U32() {
    uint32_t lo = U16();
    uint32_t hi = U16();
    return lo | hi << 16;
  }
  uint64_t U64() {
    uint64_t lo = U32();
    uint64_t hi = U32();
    return lo | hi << 32;
  }
  std::string FixedString(size_t width) {
    if (!Take(width)) {
      return {};
    }
    const char* start = reinterpret_cast<const char*>(data_ + pos_ - width);
    size_t len = strnlen(start, width);
    return std::string(start, len);
  }
  Bytes Raw(size_t n) {
    if (!Take(n)) {
      return {};
    }
    return Bytes(data_ + pos_ - n, data_ + pos_);
  }

 private:
  bool Take(size_t n) {
    if (size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

inline Bytes ToBytes(std::string_view s) { return Bytes(s.begin(), s.end()); }
inline std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace plan9

#endif  // SRC_BASE_BYTES_H_

// String utilities shared across the library.
//
// Plan 9 code leans heavily on a small set of string helpers (getfields,
// tokenize) for parsing ASCII control messages, ndb entries, and network
// addresses.  These are faithful ports with C++ types.
#ifndef SRC_BASE_STRINGS_H_
#define SRC_BASE_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace plan9 {

// Split `s` at any rune in `delims`.  Like Plan 9 getfields(): when
// `collapse` is true adjacent delimiters produce no empty fields (the
// tokenize() behaviour); when false every delimiter separates two fields.
std::vector<std::string> GetFields(std::string_view s, std::string_view delims,
                                   bool collapse = true);

// Split on unquoted whitespace, honouring Plan 9 rc-style '' quoting.  Used
// for ctl messages such as `connect 135.104.9.31!564`.
std::vector<std::string> Tokenize(std::string_view s);

// Leading+trailing whitespace removed.
std::string_view TrimSpace(std::string_view s);

bool HasPrefix(std::string_view s, std::string_view prefix);
bool HasSuffix(std::string_view s, std::string_view suffix);

// Parse an unsigned/signed decimal number; nullopt on any trailing garbage.
std::optional<uint64_t> ParseU64(std::string_view s);
std::optional<int64_t> ParseI64(std::string_view s);

// printf into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Join `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Path cleaning in the style of Plan 9 cleanname(): collapses //, resolves
// "." and "..", preserves a leading '/' or '#'.
std::string CleanName(std::string_view path);

}  // namespace plan9

#endif  // SRC_BASE_STRINGS_H_

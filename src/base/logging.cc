#include "src/base/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/base/strings.h"
#include "src/obs/trace.h"
#include "src/task/kproc.h"

namespace plan9 {
namespace {

std::atomic<int> g_level{[] {
  const char* env = std::getenv("PLAN9_LOG");
  return env != nullptr ? std::atoi(env) : 0;
}()};

std::mutex g_log_mutex;
std::string g_node;  // guarded by g_log_mutex

const std::chrono::steady_clock::time_point g_log_epoch =
    std::chrono::steady_clock::now();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= g_level.load(std::memory_order_relaxed);
}

void SetLogNode(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_node = name;
}

void LogLine(LogLevel level, const std::string& line) {
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - g_log_epoch);
  std::string who;
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    who = g_node;
  }
  if (who.empty()) {
    who = Kproc::CurrentName();
  } else {
    who += "/" + Kproc::CurrentName();
  }
  // The flight-recorder hook must not recurse: recording takes a QLock whose
  // diagnostics may themselves log.
  thread_local bool in_log_hook = false;
  auto& recorder = obs::FlightRecorder::Default();
  if (!in_log_hook && recorder.enabled(obs::TraceKind::kLog)) {
    in_log_hook = true;
    recorder.Record(obs::TraceKind::kLog, who,
                    StrFormat("%s %s", LevelName(level), line.c_str()));
    in_log_hook = false;
  }
  std::string full =
      StrFormat("[%4lld.%06lld] [%s] [%s] %s\n", (long long)(us.count() / 1000000),
                (long long)(us.count() % 1000000), LevelName(level), who.c_str(),
                line.c_str());
  // One write call per line: writers never interleave mid-line.
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fwrite(full.data(), 1, full.size(), stderr);
}

}  // namespace plan9

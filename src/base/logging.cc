#include "src/base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace plan9 {
namespace {

std::atomic<int> g_level{[] {
  const char* env = std::getenv("PLAN9_LOG");
  return env != nullptr ? std::atoi(env) : 0;
}()};

std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= g_level.load(std::memory_order_relaxed);
}

void LogLine(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), line.c_str());
}

}  // namespace plan9

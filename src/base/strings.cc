#include "src/base/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace plan9 {

std::vector<std::string> GetFields(std::string_view s, std::string_view delims,
                                   bool collapse) {
  std::vector<std::string> out;
  size_t start = 0;
  size_t i = 0;
  auto is_delim = [&](char c) { return delims.find(c) != std::string_view::npos; };
  for (; i < s.size(); i++) {
    if (is_delim(s[i])) {
      if (!collapse || i > start) {
        out.emplace_back(s.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  if (!collapse || i > start) {
    out.emplace_back(s.substr(start, i - start));
  }
  if (!collapse && out.empty()) {
    out.emplace_back("");
  }
  return out;
}

std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
      i++;
    }
    if (i >= s.size()) {
      break;
    }
    std::string tok;
    if (s[i] == '\'') {
      // rc-style quoting: '...' with '' as an escaped quote.
      i++;
      while (i < s.size()) {
        if (s[i] == '\'') {
          if (i + 1 < s.size() && s[i + 1] == '\'') {
            tok.push_back('\'');
            i += 2;
            continue;
          }
          i++;
          break;
        }
        tok.push_back(s[i++]);
      }
    } else {
      while (i < s.size() && s[i] != ' ' && s[i] != '\t' && s[i] != '\n' && s[i] != '\r') {
        tok.push_back(s[i++]);
      }
    }
    out.push_back(std::move(tok));
  }
  return out;
}

std::string_view TrimSpace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\n' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\n' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool HasPrefix(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool HasSuffix(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<uint64_t> ParseU64(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

std::optional<int64_t> ParseI64(std::string_view s) {
  bool neg = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  auto u = ParseU64(s);
  if (!u) {
    return std::nullopt;
  }
  int64_t v = static_cast<int64_t>(*u);
  return neg ? -v : v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); i++) {
    if (i != 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string CleanName(std::string_view path) {
  if (path.empty()) {
    return ".";
  }
  std::string prefix;
  bool rooted = false;
  if (path[0] == '#') {
    // Device paths: `#l/ether0` — the device specifier is opaque.
    size_t slash = path.find('/');
    if (slash == std::string_view::npos) {
      return std::string(path);
    }
    prefix = std::string(path.substr(0, slash));
    path.remove_prefix(slash);
  }
  if (!path.empty() && path[0] == '/') {
    rooted = true;
  }
  std::vector<std::string> parts;
  for (auto& part : GetFields(path, "/")) {
    if (part.empty() || part == ".") {
      continue;
    }
    if (part == "..") {
      if (!parts.empty() && parts.back() != "..") {
        parts.pop_back();
      } else if (!rooted && prefix.empty()) {
        parts.emplace_back("..");
      }
      continue;
    }
    parts.push_back(part);
  }
  std::string out = prefix;
  if (rooted) {
    out.push_back('/');
  }
  out += Join(parts, "/");
  if (out.empty()) {
    return ".";
  }
  return out;
}

}  // namespace plan9

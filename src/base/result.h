// Error handling primitives for plan9net.
//
// Plan 9 reports errors as strings ("connection refused", "file does not
// exist"); we keep that model.  Result<T> carries either a value or an Error,
// mirroring the procedural 9P convention that every operation can fail with a
// human-readable diagnostic.
#ifndef SRC_BASE_RESULT_H_
#define SRC_BASE_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace plan9 {

// Canonical error strings, matching the diagnostics Plan 9 kernels emit.
// Comparing err.message() against these constants is the supported way to
// distinguish error causes.
inline constexpr const char kErrNotExist[] = "file does not exist";
inline constexpr const char kErrPerm[] = "permission denied";
inline constexpr const char kErrNotDir[] = "not a directory";
inline constexpr const char kErrIsDir[] = "file is a directory";
inline constexpr const char kErrBadArg[] = "bad arg in system call";
inline constexpr const char kErrBadCtl[] = "unknown control request";
inline constexpr const char kErrHungup[] = "i/o on hungup channel";
inline constexpr const char kErrShutdown[] = "device shut down";
inline constexpr const char kErrConnRefused[] = "connection refused";
inline constexpr const char kErrTimedOut[] = "connection timed out";
inline constexpr const char kErrInUse[] = "file in use";
inline constexpr const char kErrBadFd[] = "fd out of range or not open";
inline constexpr const char kErrNoConv[] = "no free conversations";
inline constexpr const char kErrClosed[] = "connection closed";
inline constexpr const char kErrExists[] = "file already exists";
inline constexpr const char kErrNoRoute[] = "no route to destination";
inline constexpr const char kErrUnknownService[] = "unknown service";
inline constexpr const char kErrBadAddr[] = "bad network address";
inline constexpr const char kErrInterrupted[] = "interrupted";

// A failure diagnostic.  Cheap to copy; never empty on a failed operation.
class Error {
 public:
  Error() = default;
  explicit Error(std::string message) : message_(std::move(message)) {}

  const std::string& message() const { return message_; }
  bool Is(const char* canonical) const { return message_ == canonical; }

 private:
  std::string message_;
};

inline Error Errorf(std::string message) { return Error(std::move(message)); }

// Result<T>: either a T or an Error.  Use Result<void> (below) for
// operations that produce no value.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}       // NOLINT(runtime/explicit)
  Result(Error error) : rep_(std::move(error)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& take() {
    assert(ok());
    return std::move(std::get<T>(rep_));
  }
  T value_or(T fallback) const { return ok() ? std::get<T>(rep_) : std::move(fallback); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(rep_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Error> rep_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(failed_);
    return error_;
  }

  static Result<void> Ok() { return Result<void>(); }

 private:
  Error error_;
  bool failed_ = false;
};

using Status = Result<void>;

// Propagate failure to the caller.  `expr` must yield a Result<...>.
#define P9_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    auto p9_status_ = (expr);                    \
    if (!p9_status_.ok()) {                      \
      return ::plan9::Error(p9_status_.error()); \
    }                                            \
  } while (0)

// Evaluate `expr` (a Result<T>), propagate failure, else bind the value.
#define P9_ASSIGN_OR_RETURN(lhs, expr)           \
  P9_ASSIGN_OR_RETURN_IMPL_(                     \
      P9_RESULT_CAT_(p9_result_, __LINE__), lhs, expr)
#define P9_RESULT_CAT_INNER_(a, b) a##b
#define P9_RESULT_CAT_(a, b) P9_RESULT_CAT_INNER_(a, b)
#define P9_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) {                                \
    return ::plan9::Error(tmp.error());           \
  }                                               \
  lhs = std::move(tmp).take()

}  // namespace plan9

#endif  // SRC_BASE_RESULT_H_

// Deterministic pseudo-random source (xoshiro256**).  Every stochastic
// element of the simulator (loss injection, initial sequence numbers, jitter)
// draws from an explicitly seeded Rng so experiments replay exactly.
#ifndef SRC_BASE_RAND_H_
#define SRC_BASE_RAND_H_

#include <cstdint>

namespace plan9 {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 expansion of the seed into state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    auto rotl = [](uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, n).
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform double in [0, 1).
  double Double() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial.
  bool Chance(double p) { return Double() < p; }

 private:
  uint64_t state_[4];
};

}  // namespace plan9

#endif  // SRC_BASE_RAND_H_

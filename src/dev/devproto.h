// devproto — protocol devices as file trees (§2.3).
//
// "Each protocol device driver serves a directory structure similar to that
// of the Ethernet driver.  The top directory contains a clone file and a
// directory for each connection numbered 0 to n."
//
//   /net/tcp/clone
//   /net/tcp/2/{ctl,data,listen,local,remote,status}
//
// The connection dance implemented here is the paper's §2.3 list:
//   1) open clone -> reserves an unused conversation; the fd *is* its ctl
//   2) read it    -> ASCII connection number
//   3) write a protocol-specific ASCII address string ("connect 1.2.3.4!564")
//   4) open the data file -> connection established (open blocks on the
//      handshake)
// and for listeners: open the listen file blocks until a call arrives and
// the fd morphs into the ctl file of the new conversation.
//
// NetDirVfs aggregates several NetProtos into one mountable root so that
// `bind -a` onto /net produces /net/tcp /net/udp /net/il ... (§6).
#ifndef SRC_DEV_DEVPROTO_H_
#define SRC_DEV_DEVPROTO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/inet/netproto.h"
#include "src/ninep/server.h"

namespace plan9 {

// Extra per-protocol file surface beyond the NetConv basics.
// Protocols may override the conversation file list (the ether driver has
// ctl/data/stats/type instead of ctl/data/listen/local/remote/status) and
// provide the text of info files.
class ProtoFiles {
 public:
  virtual ~ProtoFiles() = default;
  virtual std::vector<std::string> ConvFileNames() {
    return {"ctl", "data", "listen", "local", "remote", "status"};
  }
  // Contents of an info file (local/remote/status/stats/type...).
  virtual Result<std::string> InfoText(NetConv* conv, const std::string& file);
};

class NetDirVfs : public Vfs {
 public:
  struct Entry {
    NetProto* proto;
    ProtoFiles* files;  // nullptr -> default ProtoFiles
  };

  NetDirVfs();
  ~NetDirVfs() override;

  // Add a protocol directory (not owned).  files may be nullptr.
  void Add(NetProto* proto, ProtoFiles* files = nullptr);

  Result<std::shared_ptr<Vnode>> Attach(const std::string& uname,
                                        const std::string& aname) override;

 private:
  friend class NetRootVnode;
  std::vector<Entry> entries_;
  std::unique_ptr<ProtoFiles> default_files_;
};

}  // namespace plan9

#endif  // SRC_DEV_DEVPROTO_H_

#include "src/dev/cyclone.h"

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/task/hotcheck.h"
#include "src/task/timers.h"

namespace plan9 {
namespace {
constexpr uint8_t kTagData = 0;
constexpr uint8_t kTagCredit = 1;
}  // namespace

class CycloneConv::Module : public StreamModule {
 public:
  explicit Module(CycloneConv* conv) : conv_(conv) {}
  std::string_view name() const override { return "cyclone"; }

  void DownPut(BlockPtr b) override P9_CONSUMES(b) P9_HOT_PATH {
    if (b->type != BlockType::kData) {
      DropBlock(std::move(b));
      return;
    }
    pending_.insert(pending_.end(), b->payload(), b->payload() + b->size());
    bool delim = b->delim;
    RecycleBlock(std::move(b));
    if (!delim) {
      return;
    }
    Bytes msg;
    msg.swap(pending_);
    Status s = conv_->SendMessage(msg);
    if (!s.ok()) {
      P9_LOG(kDebug) << "cyclone send: " << s.error().message();
    }
  }

 private:
  CycloneConv* conv_;
  Bytes pending_;
};

CycloneConv::CycloneConv(CycloneProto* proto, int index) : proto_(proto) {
  index_ = index;
  stream_ = std::make_unique<Stream>(std::make_unique<Module>(this));
}

void CycloneConv::Recycle() {
  QLockGuard guard(lock_);
  stream_ = std::make_unique<Stream>(std::make_unique<Module>(this));
  connected_ = false;
  link_ = -1;
  wire_ = nullptr;
  outstanding_ = 0;
  in_use_ = true;
}

Status CycloneConv::Ctl(const std::string& msg) {
  auto words = Tokenize(msg);
  if (words.empty()) {
    return Error(kErrBadCtl);
  }
  if (words[0] == "connect" && words.size() >= 2) {
    auto n = ParseU64(words[1]);
    if (!n) {
      return Error(kErrBadAddr);
    }
    QLockGuard pguard(proto_->lock_);
    if (*n >= proto_->links_.size()) {
      return Error("no such fiber link");
    }
    auto& link = proto_->links_[*n];
    if (link.bound != nullptr) {
      return Error(kErrInUse);
    }
    link.bound = this;
    {
      QLockGuard guard(lock_);
      link_ = static_cast<int>(*n);
      wire_ = link.wire;
      wend_ = link.end;
      connected_ = true;
    }
    link.wire->Attach(link.end, [this](Bytes frame) { WireInput(std::move(frame)); });
    return Status::Ok();
  }
  if (words[0] == "hangup") {
    CloseUser();
    return Status::Ok();
  }
  return Error(kErrBadCtl);
}

Status CycloneConv::WaitReady() {
  QLockGuard guard(lock_);
  if (!connected_) {
    return Error("not connected to a fiber");
  }
  return Status::Ok();
}

Result<int> CycloneConv::Listen() {
  return Error("cyclone: point-to-point, no listen");
}

std::string CycloneConv::Local() {
  QLockGuard guard(lock_);
  return StrFormat("cyclone!%d\n", link_);
}

std::string CycloneConv::Remote() { return Local(); }

std::string CycloneConv::StatusText() {
  QLockGuard guard(lock_);
  return StrFormat("cyclone/%d %d %s link %d\n", index_, refs.load(),
                   connected_ ? "Established" : "Closed", link_);
}

void CycloneConv::CloseUser() {
  int link;
  {
    QLockGuard guard(lock_);
    link = link_;
    connected_ = false;
    in_use_ = false;
    link_ = -1;
  }
  if (link >= 0) {
    QLockGuard pguard(proto_->lock_);
    if (static_cast<size_t>(link) < proto_->links_.size() &&
        proto_->links_[link].bound == this) {
      proto_->links_[link].wire->Detach(proto_->links_[link].end);
      proto_->links_[link].bound = nullptr;
    }
  }
  TimerWheel::Default().Drain();
  stream_->Hangup();
  credit_.Wakeup();
}

Status CycloneConv::SendMessage(const Bytes& msg) {
  Wire* wire = nullptr;
  Wire::End end = Wire::kA;
  {
    QLockGuard guard(lock_);
    credit_.Sleep(lock_, [&]() REQUIRES(lock_) { return !connected_ || outstanding_ < kMaxOutstanding; });
    if (!connected_) {
      return Error(kErrHungup);
    }
    outstanding_ += msg.size();
    wire = wire_;
    end = wend_;
  }
  Bytes frame;
  frame.reserve(1 + msg.size());
  frame.push_back(kTagData);
  frame.insert(frame.end(), msg.begin(), msg.end());
  return wire->Send(end, std::move(frame));
}

void CycloneConv::WireInput(Bytes frame) {
  P9_HOT_ROOT("cyclone.input");
  if (frame.empty()) {
    return;
  }
  if (frame[0] == kTagCredit) {
    if (frame.size() >= 5) {
      uint32_t n = static_cast<uint32_t>(frame[1]) | static_cast<uint32_t>(frame[2]) << 8 |
                   static_cast<uint32_t>(frame[3]) << 16 |
                   static_cast<uint32_t>(frame[4]) << 24;
      QLockGuard guard(lock_);
      outstanding_ = n > outstanding_ ? 0 : outstanding_ - n;
    }
    credit_.Wakeup();
    return;
  }
  // Data: deliver and return credit for the consumed bytes.  The wire
  // buffer becomes the block payload (shift the tag byte out in place).
  size_t n = frame.size() - 1;
  frame.erase(frame.begin());
  stream_->DeliverUp(AllocDataBlock(std::move(frame), /*delim=*/true));
  Wire* wire = nullptr;
  Wire::End end = Wire::kA;
  {
    QLockGuard guard(lock_);
    if (!connected_) {
      return;
    }
    wire = wire_;
    end = wend_;
  }
  Bytes credit{kTagCredit, static_cast<uint8_t>(n), static_cast<uint8_t>(n >> 8),
               static_cast<uint8_t>(n >> 16), static_cast<uint8_t>(n >> 24)};
  (void)wire->Send(end, std::move(credit));
}

void CycloneProto::Unplug() {
  std::vector<CycloneConv*> bound;
  {
    QLockGuard guard(lock_);
    if (unplugged_) {
      return;
    }
    unplugged_ = true;
    for (auto& link : links_) {
      if (link.bound != nullptr) {
        link.wire->Detach(link.end);
        bound.push_back(link.bound);
        link.bound = nullptr;
      }
    }
  }
  for (CycloneConv* c : bound) {
    {
      QLockGuard guard(c->lock_);
      c->connected_ = false;
      c->link_ = -1;
      c->wire_ = nullptr;
    }
    c->stream_->Hangup();
    c->credit_.Wakeup();
  }
  TimerWheel::Default().Drain();
}

int CycloneProto::AddLink(Wire* wire, Wire::End end) {
  QLockGuard guard(lock_);
  links_.push_back(Link{wire, end, nullptr});
  return static_cast<int>(links_.size() - 1);
}

Result<NetConv*> CycloneProto::Clone() {
  QLockGuard guard(lock_);
  for (auto& c : convs_) {
    bool reusable;
    {
      QLockGuard cguard(c->lock_);
      reusable = !c->in_use_ && c->refs.load() == 0;
    }
    if (reusable) {
      c->Recycle();
      return static_cast<NetConv*>(c.get());
    }
  }
  if (convs_.size() >= MaxConvs()) {
    return Error(kErrNoConv);
  }
  convs_.push_back(std::make_unique<CycloneConv>(this, static_cast<int>(convs_.size())));
  convs_.back()->Recycle();
  return static_cast<NetConv*>(convs_.back().get());
}

NetConv* CycloneProto::Conv(size_t index) {
  QLockGuard guard(lock_);
  return index < convs_.size() ? convs_[index].get() : nullptr;
}

size_t CycloneProto::ConvCount() {
  QLockGuard guard(lock_);
  return convs_.size();
}

Result<std::string> CycloneProto::InfoText(NetConv* conv, const std::string& file) {
  if (file == "stats") {
    auto* cc = static_cast<CycloneConv*>(conv);
    Wire* wire;
    Wire::End tx_end;
    int link;
    {
      QLockGuard guard(cc->lock_);
      wire = cc->wire_;
      tx_end = cc->wend_;
      link = cc->link_;
    }
    if (wire == nullptr) {
      return std::string("link: none\n");
    }
    Wire::End rx_end = tx_end == Wire::kA ? Wire::kB : Wire::kA;
    const MediaStats& tx = wire->stats(tx_end);
    const MediaStats& rx = wire->stats(rx_end);
    std::string out = StrFormat("link: %d\n", link);
    out += StrFormat("out: %llu\n",
                     static_cast<unsigned long long>(tx.frames_sent.value()));
    out += StrFormat("in: %llu\n",
                     static_cast<unsigned long long>(rx.frames_delivered.value()));
    out += StrFormat("drop: %llu\n",
                     static_cast<unsigned long long>(tx.frames_dropped.value()));
    out += StrFormat("oerrs: %llu\n",
                     static_cast<unsigned long long>(tx.send_errors.value()));
    out += FormatFaultStats(wire->fault_stats(tx_end), "tx-fault-");
    out += FormatFaultStats(wire->fault_stats(rx_end), "rx-fault-");
    return out;
  }
  return ProtoFiles::InfoText(conv, file);
}

}  // namespace plan9

#include "src/dev/devproto.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/sim/chaos.h"

namespace plan9 {
namespace {

// Stamp the caller's active trace context onto the conversation when a ctl
// write sets up the endpoint.  The dial library's "dial.connect" span is the
// one live at this moment, so the conv's captured parent is exactly the hop
// that created it (DESIGN.md §12).
void MaybeCaptureTrace(NetConv* conv, const std::string& msg) {
  if (HasPrefix(msg, "connect") || HasPrefix(msg, "announce")) {
    conv->CaptureTrace(obs::Tracer::Current());
  }
}

// Qid layout: [proto+1 : bits 20..27][conv+1 : bits 8..19][file kind : bits 0..7]
// Root-level observability files use the low qids 2..6 (proto qids start at
// 1<<20, so the space is free).
uint32_t QidRoot() { return 1; }
uint32_t QidObsFile(size_t kind) { return static_cast<uint32_t>(kind + 2); }
uint32_t QidProto(size_t p) { return static_cast<uint32_t>(p + 1) << 20; }
uint32_t QidClone(size_t p) { return QidProto(p) | 1; }
uint32_t QidConv(size_t p, size_t c) { return QidProto(p) | static_cast<uint32_t>(c + 1) << 8; }
uint32_t QidFile(size_t p, size_t c, size_t kind) { return QidConv(p, c) | (kind + 2); }

Result<std::string> SliceText(const std::string& text, uint64_t offset, uint32_t count) {
  if (offset >= text.size()) {
    return std::string();
  }
  return text.substr(offset, count);
}

class ProtoDirVnode;
class ConvDirVnode;

// The /net-level observability files (tentpole): every node exports its
// metrics registry and flight recorder the same way the LANCE driver exports
// its stats file — as text, readable by cat, importable across machines.
//   /net/stats  the metrics registry, `key value` per line
//   /net/trace  the flight recorder ring, oldest first
//   /net/log    kLog events only (P9_LOG lines routed when tracing is on)
//   /net/ctl    writable: "trace on [kind...]", "trace off", "clear"
//   /net/chaos  writable: the chaos engine (sim/chaos.h); reads render the
//               seed, node/medium state and schedule, writes drive it
//               ("crash gnot", "seed 42 8", "run", ...)
constexpr const char* kObsFiles[] = {"stats", "trace", "log", "ctl", "chaos"};
constexpr size_t kObsFileCount = 5;

class ObsFileVnode : public Vnode {
 public:
  explicit ObsFileVnode(size_t kind) : kind_(kind) {}

  Qid qid() override { return Qid{QidObsFile(kind_), 0}; }

  Result<Dir> Stat() override {
    Dir d;
    d.name = kObsFiles[kind_];
    d.qid = qid();
    d.mode = d.name == "ctl" || d.name == "chaos" ? 0666 : 0444;
    d.type = 'I';
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    return Error(kErrNotDir);
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    std::string text;
    const std::string name = kObsFiles[kind_];
    if (name == "stats") {
      text = obs::MetricsRegistry::Default().RenderText();
    } else if (name == "trace") {
      text = obs::FlightRecorder::Default().RenderText();
    } else if (name == "log") {
      text = obs::FlightRecorder::Default().RenderText(
          static_cast<uint32_t>(obs::TraceKind::kLog));
    } else if (name == "chaos") {
      ChaosEngine* engine = ChaosEngine::Current();
      text = engine != nullptr ? engine->StatusText() : "no chaos engine\n";
    } else {  // ctl reads back the current mask as ctl-writable lines
      text = StrFormat("trace mask %#x\ntrace sample %u\n",
                       obs::FlightRecorder::Default().mask(),
                       obs::Tracer::Default().sample_interval());
    }
    auto sliced = SliceText(text, offset, count);
    return ToBytes(*sliced);
  }

  Result<uint32_t> Write(uint64_t offset, const Bytes& data) override {
    const std::string name = kObsFiles[kind_];
    if (name == "chaos") {
      ChaosEngine* engine = ChaosEngine::Current();
      if (engine == nullptr) {
        return Error("no chaos engine");
      }
      P9_RETURN_IF_ERROR(engine->Ctl(ToString(data)));
      return static_cast<uint32_t>(data.size());
    }
    if (name != "ctl") {
      return Error(kErrPerm);
    }
    P9_RETURN_IF_ERROR(obs::FlightRecorder::Default().Ctl(ToString(data)));
    return static_cast<uint32_t>(data.size());
  }

 private:
  size_t kind_;
};

// ---------------------------------------------------------------------------

class ConvFileVnode : public Vnode {
 public:
  ConvFileVnode(const NetDirVfs::Entry& entry, size_t proto_idx, NetConv* conv,
                size_t file_kind, std::string file_name)
      : entry_(entry),
        proto_idx_(proto_idx),
        conv_(conv),
        file_kind_(file_kind),
        file_name_(std::move(file_name)) {}

  ~ConvFileVnode() override { ReleaseRef(); }

  Qid qid() override {
    return Qid{QidFile(proto_idx_, static_cast<size_t>(conv_->index()), file_kind_), 0};
  }

  Result<Dir> Stat() override {
    Dir d;
    d.name = file_name_;
    d.uid = conv_->owner();
    d.gid = conv_->owner();
    d.qid = qid();
    d.mode = 0666;
    d.type = 'I';
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    return Error(kErrNotDir);
  }

  Status Open(uint8_t mode, const std::string& user) override {
    if (file_name_ == "listen") {
      // "If the process opens the listen file it blocks until an incoming
      // call is received. ... the open completes and returns a file
      // descriptor pointing to the ctl file of the new connection."
      auto idx = conv_->Listen();
      if (!idx.ok()) {
        return idx.error();
      }
      NetConv* accepted = entry_.proto->Conv(static_cast<size_t>(*idx));
      if (accepted == nullptr) {
        return Error("listen lost the call");
      }
      conv_ = accepted;
      file_kind_ = 0;  // morph into the new conversation's ctl
      file_name_ = "ctl";
    } else if (file_name_ == "data") {
      // "When the data file is opened the connection is established."
      P9_RETURN_IF_ERROR(conv_->WaitReady());
    }
    conv_->refs.fetch_add(1);
    holds_ref_ = true;
    if (!conv_->owner().empty() && conv_->owner() == "network" && !user.empty()) {
      conv_->set_owner(user);
    }
    return Status::Ok();
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    if (file_name_ == "ctl") {
      auto text = SliceText(StrFormat("%d", conv_->index()), offset, count);
      return ToBytes(*text);
    }
    if (file_name_ == "data") {
      Bytes buf(count);
      auto n = conv_->Read(buf.data(), buf.size());
      if (!n.ok()) {
        return n.error();
      }
      buf.resize(*n);
      return buf;
    }
    auto text = entry_.files->InfoText(conv_, file_name_);
    if (!text.ok()) {
      return text.error();
    }
    auto sliced = SliceText(*text, offset, count);
    return ToBytes(*sliced);
  }

  Result<uint32_t> Write(uint64_t offset, const Bytes& data) override {
    if (file_name_ == "ctl") {
      const std::string msg = ToString(data);
      MaybeCaptureTrace(conv_, msg);
      P9_RETURN_IF_ERROR(conv_->Ctl(msg));
      return static_cast<uint32_t>(data.size());
    }
    if (file_name_ == "data") {
      auto n = conv_->Write(data.data(), data.size());
      if (!n.ok()) {
        return n.error();
      }
      return static_cast<uint32_t>(*n);
    }
    return Error(kErrPerm);
  }

  void Close(uint8_t mode) override { ReleaseRef(); }

 private:
  void ReleaseRef() {
    if (holds_ref_ && conv_->refs.fetch_sub(1) == 1) {
      // "A connection remains established while any of the files in the
      // connection directory are referenced..."  Last reference: shut down.
      conv_->CloseUser();
    }
    holds_ref_ = false;
  }

  NetDirVfs::Entry entry_;
  size_t proto_idx_;
  NetConv* conv_;
  size_t file_kind_;
  std::string file_name_;
  bool holds_ref_ = false;
};

// The clone file: opening it reserves a conversation and the open fd behaves
// as that conversation's ctl file.
class CloneVnode : public Vnode {
 public:
  CloneVnode(const NetDirVfs::Entry& entry, size_t proto_idx)
      : entry_(entry), proto_idx_(proto_idx) {}

  ~CloneVnode() override { ReleaseRef(); }

  Qid qid() override {
    if (conv_ != nullptr) {
      return Qid{QidFile(proto_idx_, static_cast<size_t>(conv_->index()), 0), 0};
    }
    return Qid{QidClone(proto_idx_), 0};
  }

  Result<Dir> Stat() override {
    Dir d;
    d.name = "clone";
    d.qid = qid();
    d.mode = 0666;
    d.type = 'I';
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    return Error(kErrNotDir);
  }

  Status Open(uint8_t mode, const std::string& user) override {
    auto conv = entry_.proto->Clone();
    if (!conv.ok()) {
      return conv.error();
    }
    conv_ = *conv;
    conv_->refs.fetch_add(1);
    conv_->set_owner(user.empty() ? "network" : user);
    return Status::Ok();
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    if (conv_ == nullptr) {
      return Error("clone not open");
    }
    auto text = SliceText(StrFormat("%d", conv_->index()), offset, count);
    return ToBytes(*text);
  }

  Result<uint32_t> Write(uint64_t offset, const Bytes& data) override {
    if (conv_ == nullptr) {
      return Error("clone not open");
    }
    const std::string msg = ToString(data);
    MaybeCaptureTrace(conv_, msg);
    P9_RETURN_IF_ERROR(conv_->Ctl(msg));
    return static_cast<uint32_t>(data.size());
  }

  void Close(uint8_t mode) override { ReleaseRef(); }

 private:
  void ReleaseRef() {
    if (conv_ != nullptr && conv_->refs.fetch_sub(1) == 1) {
      conv_->CloseUser();
    }
    conv_ = nullptr;
  }

  NetDirVfs::Entry entry_;
  size_t proto_idx_;
  NetConv* conv_ = nullptr;
};

class ConvDirVnode : public Vnode {
 public:
  ConvDirVnode(const NetDirVfs::Entry& entry, size_t proto_idx, NetConv* conv,
               std::shared_ptr<Vnode> parent)
      : entry_(entry), proto_idx_(proto_idx), conv_(conv), parent_(std::move(parent)) {}

  Qid qid() override {
    return Qid{QidConv(proto_idx_, static_cast<size_t>(conv_->index())) | kQidDirBit, 0};
  }

  Result<Dir> Stat() override {
    Dir d;
    d.name = StrFormat("%d", conv_->index());
    d.uid = conv_->owner();
    d.gid = conv_->owner();
    d.qid = qid();
    d.mode = kDmDir | 0555;
    d.type = 'I';
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    if (name == ".") {
      return std::shared_ptr<Vnode>(
          std::make_shared<ConvDirVnode>(entry_, proto_idx_, conv_, parent_));
    }
    if (name == "..") {
      return parent_;
    }
    auto names = entry_.files->ConvFileNames();
    for (size_t k = 0; k < names.size(); k++) {
      if (names[k] == name) {
        return std::shared_ptr<Vnode>(
            std::make_shared<ConvFileVnode>(entry_, proto_idx_, conv_, k, name));
      }
    }
    return Error(kErrNotExist);
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    std::vector<Dir> entries;
    auto names = entry_.files->ConvFileNames();
    for (size_t k = 0; k < names.size(); k++) {
      Dir d;
      d.name = names[k];
      d.uid = conv_->owner();
      d.gid = conv_->owner();
      d.qid = Qid{QidFile(proto_idx_, static_cast<size_t>(conv_->index()), k), 0};
      d.mode = 0666;
      d.type = 'I';
      entries.push_back(std::move(d));
    }
    return PackDirEntries(entries, offset, count);
  }

 private:
  NetDirVfs::Entry entry_;
  size_t proto_idx_;
  NetConv* conv_;
  std::shared_ptr<Vnode> parent_;
};

class ProtoDirVnode : public Vnode,
                      public std::enable_shared_from_this<ProtoDirVnode> {
 public:
  ProtoDirVnode(const NetDirVfs::Entry& entry, size_t proto_idx,
                std::shared_ptr<Vnode> parent)
      : entry_(entry), proto_idx_(proto_idx), parent_(std::move(parent)) {}

  Qid qid() override { return Qid{QidProto(proto_idx_) | kQidDirBit, 0}; }

  Result<Dir> Stat() override {
    Dir d;
    d.name = entry_.proto->name();
    d.qid = qid();
    d.mode = kDmDir | 0555;
    d.type = 'I';
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    if (name == ".") {
      return std::shared_ptr<Vnode>(shared_from_this());
    }
    if (name == "..") {
      return parent_ != nullptr ? parent_
                                : std::shared_ptr<Vnode>(shared_from_this());
    }
    if (name == "clone") {
      return std::shared_ptr<Vnode>(std::make_shared<CloneVnode>(entry_, proto_idx_));
    }
    auto num = ParseU64(name);
    if (num.has_value()) {
      NetConv* conv = entry_.proto->Conv(*num);
      if (conv != nullptr) {
        return std::shared_ptr<Vnode>(std::make_shared<ConvDirVnode>(
            entry_, proto_idx_, conv, shared_from_this()));
      }
    }
    return Error(kErrNotExist);
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    std::vector<Dir> entries;
    Dir clone;
    clone.name = "clone";
    clone.qid = Qid{QidClone(proto_idx_), 0};
    clone.mode = 0666;
    clone.type = 'I';
    entries.push_back(std::move(clone));
    size_t n = entry_.proto->ConvCount();
    for (size_t c = 0; c < n; c++) {
      NetConv* conv = entry_.proto->Conv(c);
      if (conv == nullptr) {
        continue;
      }
      Dir d;
      d.name = StrFormat("%zu", c);
      d.uid = conv->owner();
      d.gid = conv->owner();
      d.qid = Qid{QidConv(proto_idx_, c) | kQidDirBit, 0};
      d.mode = kDmDir | 0555;
      d.type = 'I';
      entries.push_back(std::move(d));
    }
    return PackDirEntries(entries, offset, count);
  }

 private:
  NetDirVfs::Entry entry_;
  size_t proto_idx_;
  std::shared_ptr<Vnode> parent_;
};

class NetRootVnode : public Vnode, public std::enable_shared_from_this<NetRootVnode> {
 public:
  explicit NetRootVnode(const std::vector<NetDirVfs::Entry>* entries)
      : entries_(entries) {}

  Qid qid() override { return Qid{QidRoot() | kQidDirBit, 0}; }

  Result<Dir> Stat() override {
    Dir d;
    d.name = "net";
    d.qid = qid();
    d.mode = kDmDir | 0555;
    d.type = 'I';
    return d;
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    if (name == "." || name == "..") {
      return std::shared_ptr<Vnode>(shared_from_this());
    }
    for (size_t k = 0; k < kObsFileCount; k++) {
      if (name == kObsFiles[k]) {
        return std::shared_ptr<Vnode>(std::make_shared<ObsFileVnode>(k));
      }
    }
    for (size_t p = 0; p < entries_->size(); p++) {
      if ((*entries_)[p].proto->name() == name) {
        return std::shared_ptr<Vnode>(std::make_shared<ProtoDirVnode>(
            (*entries_)[p], p, shared_from_this()));
      }
    }
    return Error(kErrNotExist);
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    std::vector<Dir> entries;
    for (size_t k = 0; k < kObsFileCount; k++) {
      Dir d;
      d.name = kObsFiles[k];
      d.qid = Qid{QidObsFile(k), 0};
      d.mode = d.name == "ctl" || d.name == "chaos" ? 0666 : 0444;
      d.type = 'I';
      entries.push_back(std::move(d));
    }
    for (size_t p = 0; p < entries_->size(); p++) {
      Dir d;
      d.name = (*entries_)[p].proto->name();
      d.qid = Qid{QidProto(p) | kQidDirBit, 0};
      d.mode = kDmDir | 0555;
      d.type = 'I';
      entries.push_back(std::move(d));
    }
    return PackDirEntries(entries, offset, count);
  }

 private:
  const std::vector<NetDirVfs::Entry>* entries_;
};

}  // namespace

Result<std::string> ProtoFiles::InfoText(NetConv* conv, const std::string& file) {
  if (file == "local") {
    return conv->Local();
  }
  if (file == "remote") {
    return conv->Remote();
  }
  if (file == "status") {
    return conv->StatusText();
  }
  return Error(kErrNotExist);
}

NetDirVfs::NetDirVfs() : default_files_(std::make_unique<ProtoFiles>()) {}

NetDirVfs::~NetDirVfs() = default;

void NetDirVfs::Add(NetProto* proto, ProtoFiles* files) {
  entries_.push_back(Entry{proto, files != nullptr ? files : default_files_.get()});
}

Result<std::shared_ptr<Vnode>> NetDirVfs::Attach(const std::string& uname,
                                                 const std::string& aname) {
  return std::shared_ptr<Vnode>(std::make_shared<NetRootVnode>(&entries_));
}

}  // namespace plan9

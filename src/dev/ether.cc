#include "src/dev/ether.h"

#include "src/base/strings.h"
#include "src/task/hotcheck.h"
#include "src/task/timers.h"

namespace plan9 {

EtherConvMetrics::EtherConvMetrics() {
  auto& r = obs::MetricsRegistry::Default();
  frames_in.BindParent(&r.CounterNamed("net.ether.frames-in"));
  frames_out.BindParent(&r.CounterNamed("net.ether.frames-out"));
  drops.BindParent(&r.CounterNamed("net.ether.drops"));
}

void EtherConvMetrics::Reset() {
  frames_in.Reset();
  frames_out.Reset();
  drops.Reset();
}

// Stream device module: writes become transmissions.  The user supplies
// [6-byte destination][payload]; the driver prepends the source address and
// the connection's packet type.
class EtherConv::Module : public StreamModule {
 public:
  explicit Module(EtherConv* conv) : conv_(conv) {}
  std::string_view name() const override { return "ether"; }

  void DownPut(BlockPtr b) override P9_CONSUMES(b) P9_HOT_PATH {
    if (b->type != BlockType::kData) {
      DropBlock(std::move(b));
      return;
    }
    pending_.insert(pending_.end(), b->payload(), b->payload() + b->size());
    bool delim = b->delim;
    RecycleBlock(std::move(b));
    if (!delim) {
      return;
    }
    Bytes frame;
    frame.swap(pending_);
    if (frame.size() < 6) {
      return;  // no destination address
    }
    auto type = conv_->type();
    if (!type.has_value()) {
      return;  // not connected to a packet type
    }
    MacAddr dst;
    std::copy_n(frame.begin(), 6, dst.begin());
    Bytes payload(frame.begin() + 6, frame.end());
    conv_->metrics_.frames_out.Inc();
    (void)conv_->proto_->Transmit(
        dst, *type < 0 ? uint16_t{0} : static_cast<uint16_t>(*type), std::move(payload));
  }

 private:
  EtherConv* conv_;
  Bytes pending_;
};

EtherConv::EtherConv(EtherProto* proto, int index) : proto_(proto) {
  index_ = index;
  stream_ = std::make_unique<Stream>(std::make_unique<Module>(this));
}

void EtherConv::Recycle() {
  QLockGuard guard(lock_);
  stream_ = std::make_unique<Stream>(std::make_unique<Module>(this));
  type_.reset();
  promiscuous_ = false;
  metrics_.Reset();
  in_use_ = true;
}

Status EtherConv::Ctl(const std::string& msg) {
  auto words = Tokenize(msg);
  if (words.empty()) {
    return Error(kErrBadCtl);
  }
  if (words[0] == "connect" && words.size() >= 2) {
    // "Writing the string connect 2048 to the ctl file sets the packet type
    // to 2048...  The special packet type -1 selects all packets."
    auto type = ParseI64(words[1]);
    if (!type || *type < -1 || *type > 0xffff) {
      return Error(kErrBadArg);
    }
    QLockGuard guard(lock_);
    type_ = static_cast<int32_t>(*type);
    return Status::Ok();
  }
  if (words[0] == "promiscuous") {
    {
      QLockGuard guard(lock_);
      promiscuous_ = true;
    }
    proto_->UpdatePromiscuity();
    return Status::Ok();
  }
  if (words[0] == "hangup") {
    CloseUser();
    return Status::Ok();
  }
  return Error(kErrBadCtl);
}

Status EtherConv::WaitReady() {
  QLockGuard guard(lock_);
  if (!type_.has_value()) {
    return Error("no packet type selected");
  }
  return Status::Ok();
}

std::string EtherConv::Local() {
  return StrFormat("%s\n", MacToString(proto_->mac()).c_str());
}

std::string EtherConv::StatusText() {
  QLockGuard guard(lock_);
  return StrFormat("ether/%d %d type %d in %llu out %llu\n", index_, refs.load(),
                   type_.has_value() ? *type_ : -2,
                   static_cast<unsigned long long>(metrics_.frames_in.value()),
                   static_cast<unsigned long long>(metrics_.frames_out.value()));
}

void EtherConv::CloseUser() {
  {
    QLockGuard guard(lock_);
    type_.reset();
    promiscuous_ = false;
    in_use_ = false;
  }
  proto_->UpdatePromiscuity();
  stream_->Hangup();
}

std::optional<int32_t> EtherConv::type() const {
  QLockGuard guard(lock_);
  return type_;
}

bool EtherConv::promiscuous() const {
  QLockGuard guard(lock_);
  return promiscuous_;
}

void EtherConv::Deliver(Bytes frame) {
  {
    QLockGuard guard(lock_);
    if (!in_use_) {
      return;
    }
    // Bounded input queueing: NICs drop when software lags.
    if (stream_->head_queue().byte_count() > 512 * 1024) {
      metrics_.drops.Inc();
      return;
    }
    metrics_.frames_in.Inc();
  }
  // Readers see the whole frame: dst, src, type, payload.
  stream_->DeliverUp(AllocDataBlock(std::move(frame), /*delim=*/true));
}

EtherProto::EtherProto(EtherSegment* segment, MacAddr mac, std::string name)
    : name_(std::move(name)), segment_(segment), mac_(mac) {
  station_ = segment_->Attach(mac_, [this](const EtherFrame& f) { Input(f); });
}

EtherProto::~EtherProto() {
  Unplug();
}

void EtherProto::Unplug() {
  bool detach = false;
  std::vector<EtherConv*> convs;
  {
    QLockGuard guard(lock_);
    detach = !unplugged_;
    unplugged_ = true;
    for (auto& c : convs_) {
      convs.push_back(c.get());
    }
  }
  if (!detach) {
    return;
  }
  segment_->Detach(station_);
  for (EtherConv* c : convs) {
    bool in_use;
    {
      QLockGuard cguard(c->lock_);
      in_use = c->in_use_;
    }
    if (in_use) {
      c->stream_->Hangup();
    }
  }
  TimerWheel::Default().Drain();
}

Result<NetConv*> EtherProto::Clone() {
  QLockGuard guard(lock_);
  for (auto& c : convs_) {
    bool reusable;
    {
      QLockGuard cguard(c->lock_);
      reusable = !c->in_use_ && c->refs.load() == 0;
    }
    if (reusable) {
      c->Recycle();
      return static_cast<NetConv*>(c.get());
    }
  }
  if (convs_.size() >= MaxConvs()) {
    return Error(kErrNoConv);
  }
  convs_.push_back(std::make_unique<EtherConv>(this, static_cast<int>(convs_.size())));
  convs_.back()->Recycle();
  return static_cast<NetConv*>(convs_.back().get());
}

NetConv* EtherProto::Conv(size_t index) {
  QLockGuard guard(lock_);
  return index < convs_.size() ? convs_[index].get() : nullptr;
}

size_t EtherProto::ConvCount() {
  QLockGuard guard(lock_);
  return convs_.size();
}

Result<std::string> EtherProto::InfoText(NetConv* conv, const std::string& file) {
  auto* ec = static_cast<EtherConv*>(conv);
  if (file == "type") {
    // "Subsequent reads of the file type yield the string 2048."
    auto type = ec->type();
    return StrFormat("%d\n", type.has_value() ? *type : -2);
  }
  if (file == "stats") {
    // "The stats file returns ASCII text containing the interface address,
    // packet input/output counts, error statistics, and general information
    // about the state of the interface."
    const MediaStats& s = segment_->stats();
    std::string out;
    out += StrFormat("addr: %s\n", MacToString(mac_).c_str());
    out += StrFormat("in: %llu\n",
                     static_cast<unsigned long long>(s.frames_delivered.value()));
    out += StrFormat("out: %llu\n",
                     static_cast<unsigned long long>(s.frames_sent.value()));
    out += StrFormat("drop: %llu\n",
                     static_cast<unsigned long long>(s.frames_dropped.value()));
    out += StrFormat("oerrs: %llu\n",
                     static_cast<unsigned long long>(s.send_errors.value()));
    out += FormatFaultStats(segment_->fault_stats());
    out += ec->StatusText();
    return out;
  }
  return ProtoFiles::InfoText(conv, file);
}

Status EtherProto::Transmit(MacAddr dst, uint16_t type, Bytes payload) {
  EtherFrame frame;
  frame.dst = dst;
  frame.src = mac_;
  frame.type = type;
  frame.payload = std::move(payload);
  return segment_->Send(frame);
}

void EtherProto::UpdatePromiscuity() {
  bool any = false;
  {
    QLockGuard guard(lock_);
    for (auto& c : convs_) {
      if (c->promiscuous()) {
        any = true;
        break;
      }
    }
  }
  segment_->SetPromiscuous(station_, any);
}

void EtherProto::Input(const EtherFrame& frame) {
  P9_HOT_ROOT("ether.input");
  // The multiplexing module of §2.4.3, hand coded: "If several connections
  // on an interface are configured for a particular packet type, each
  // receives a copy of the incoming packets."
  std::vector<EtherConv*> matches;
  {
    QLockGuard guard(lock_);
    for (auto& c : convs_) {
      auto type = c->type();
      if (!type.has_value()) {
        continue;
      }
      bool match = *type == -1 || *type == static_cast<int32_t>(frame.type) ||
                   c->promiscuous();
      if (match) {
        matches.push_back(c.get());
      }
    }
  }
  if (matches.empty()) {
    return;
  }
  // "If several connections on an interface are configured for a particular
  // packet type, each receives a copy of the incoming packets."  Serialize
  // once; only the extra recipients pay for a copy.
  Bytes packed = frame.Pack();
  for (size_t i = 0; i + 1 < matches.size(); i++) {
    blockaudit::NoteCopy();
    matches[i]->Deliver(Bytes(packed));
  }
  matches.back()->Deliver(std::move(packed));
}

}  // namespace plan9

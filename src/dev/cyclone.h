// Cyclone fiber links (§7).
//
// "The file servers and CPU servers are connected by high-bandwidth
// point-to-point links...  Software in the VME card reduces latency by
// copying messages from system memory to fiber without intermediate
// buffering."  A Cyclone link carries delimited messages (9P rides on it
// directly, unframed).  We expose each link as a conversation of the
// /net/cyclone protocol device: `connect N` attaches to link N; there is no
// addressing — the fiber has exactly one other end.
//
// A simple credit scheme (the receiver acknowledges consumed bytes) bounds
// the data in flight, standing in for the VME card's staging discipline.
#ifndef SRC_DEV_CYCLONE_H_
#define SRC_DEV_CYCLONE_H_

#include <memory>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/dev/devproto.h"
#include "src/inet/netproto.h"
#include "src/sim/wire.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"

namespace plan9 {

class CycloneProto;

class CycloneConv : public NetConv {
 public:
  CycloneConv(CycloneProto* proto, int index);

  Status Ctl(const std::string& msg) override;
  Status WaitReady() override;
  Result<int> Listen() override;
  std::string Local() override;
  std::string Remote() override;
  std::string StatusText() override;
  void CloseUser() override;

 private:
  friend class CycloneProto;
  class Module;

  static constexpr size_t kMaxOutstanding = 256 * 1024;

  Status SendMessage(const Bytes& msg) P9_HOT_PATH MAY_BLOCK;  // credit sleep
  void WireInput(Bytes frame) P9_HOT_PATH;
  void Recycle();

  CycloneProto* proto_;
  // Ordered after cyclone.proto (connect holds both).
  QLock lock_{"cyclone.conv"};
  Rendez credit_;
  bool connected_ GUARDED_BY(lock_) = false;
  bool in_use_ GUARDED_BY(lock_) = false;
  int link_ GUARDED_BY(lock_) = -1;
  // Cached at connect: avoids the proto lock on the data path.
  Wire* wire_ GUARDED_BY(lock_) = nullptr;
  Wire::End wend_ GUARDED_BY(lock_) = Wire::kA;
  size_t outstanding_ GUARDED_BY(lock_) = 0;
};

class CycloneProto : public NetProto, public ProtoFiles {
 public:
  explicit CycloneProto() = default;

  // Register one end of a fiber as link number `n` (sequential).  Returns
  // the link number.  Wire not owned.
  int AddLink(Wire* wire, Wire::End end);

  std::string name() override { return "cyclone"; }
  Result<NetConv*> Clone() override;
  NetConv* Conv(size_t index) override;
  size_t ConvCount() override;

  // ProtoFiles: no listen (point-to-point), plus a stats file reporting the
  // bound fiber's media and fault counters in each direction.
  std::vector<std::string> ConvFileNames() override {
    return {"ctl", "data", "local", "remote", "status", "stats"};
  }
  Result<std::string> InfoText(NetConv* conv, const std::string& file) override;

  // Crash semantics (node lifecycle): detach every bound fiber end and hang
  // up the conversations abruptly.  The peer end of each fiber sees silence
  // (its 9P deadline or deadman fires), never a polite close.  Idempotent;
  // a graveyarded proto must not detach the restarted kernel's re-attached
  // wire ends.
  void Unplug();

 private:
  friend class CycloneConv;
  struct Link {
    Wire* wire;
    Wire::End end;
    CycloneConv* bound = nullptr;  // at most one conversation per fiber
  };

  QLock lock_{"cyclone.proto"};
  std::vector<Link> links_ GUARDED_BY(lock_);
  std::vector<std::unique_ptr<CycloneConv>> convs_ GUARDED_BY(lock_);
  bool unplugged_ GUARDED_BY(lock_) = false;
};

}  // namespace plan9

#endif  // SRC_DEV_CYCLONE_H_

// The Ethernet driver (§2.2, Figure 1).
//
// "The LANCE Ethernet driver serves a two level file tree providing device
// control and configuration, user-level protocols like ARP, and diagnostic
// interfaces for snooping software."  Each connection directory corresponds
// to an Ethernet packet type; the files are ctl, data, stats and type.
//
//   * `connect 2048` on ctl selects packet type 2048 (all IP packets);
//   * type -1 selects all packets; `promiscuous` hears the whole cable;
//   * "If several connections on an interface are configured for a
//     particular packet type, each receives a copy of the incoming packets";
//   * data reads return whole frames (dst src type payload); data writes
//     supply dst+payload and the driver "append[s] a packet header
//     containing the source address and packet type";
//   * stats returns ASCII text with the interface address and packet
//     input/output counts.
//
// EtherProto plugs into the generic devproto driver, giving the
// clone/numbered-directory tree of Figure 1.
#ifndef SRC_DEV_ETHER_H_
#define SRC_DEV_ETHER_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/dev/devproto.h"
#include "src/inet/netproto.h"
#include "src/obs/metrics.h"
#include "src/sim/ether_segment.h"
#include "src/task/qlock.h"

namespace plan9 {

class EtherProto;

// Registry-backed interface counters (net.ether.* aggregates in /net/stats).
struct EtherConvMetrics {
  EtherConvMetrics();

  obs::Counter frames_in;
  obs::Counter frames_out;
  obs::Counter drops;  // input overruns: software lagged the cable

  void Reset();  // this conversation only
};

class EtherConv : public NetConv {
 public:
  EtherConv(EtherProto* proto, int index);

  Status Ctl(const std::string& msg) override;
  Status WaitReady() override;
  Result<int> Listen() override { return Error("ether: no listen"); }
  std::string Local() override;
  std::string Remote() override { return "\n"; }
  std::string StatusText() override;
  void CloseUser() override;

  std::optional<int32_t> type() const;
  bool promiscuous() const;

 private:
  friend class EtherProto;
  class Module;

  void Deliver(Bytes frame) P9_HOT_PATH;
  void Recycle();

  EtherProto* proto_;
  // Ordered after ether.proto (Clone/Input hold both).
  mutable QLock lock_{"ether.conv"};
  std::optional<int32_t> type_ GUARDED_BY(lock_);  // -1 = all packets
  bool promiscuous_ GUARDED_BY(lock_) = false;
  bool in_use_ GUARDED_BY(lock_) = false;
  EtherConvMetrics metrics_;  // atomic counters; no lock needed
};

class EtherProto : public NetProto, public ProtoFiles {
 public:
  // Attaches a station on `segment` with address `mac`.  `name` is the
  // directory name under /net (ether0).
  EtherProto(EtherSegment* segment, MacAddr mac, std::string name = "ether0");
  ~EtherProto() override;

  // NetProto:
  std::string name() override { return name_; }
  Result<NetConv*> Clone() override;
  NetConv* Conv(size_t index) override;
  size_t ConvCount() override;

  // ProtoFiles: Figure 1's per-connection files.
  std::vector<std::string> ConvFileNames() override {
    return {"ctl", "data", "stats", "status", "type"};
  }
  Result<std::string> InfoText(NetConv* conv, const std::string& file) override;

  MacAddr mac() const { return mac_; }
  EtherSegment* segment() { return segment_; }

  // Crash semantics (node lifecycle): detach the station from the cable and
  // hang up every in-use conversation's stream.  Idempotent; the destructor
  // must not detach again (the restarted kernel may own a new station on the
  // same segment).
  void Unplug();

  // Transmit payload to dst with the given type (driver adds src).
  Status Transmit(MacAddr dst, uint16_t type, Bytes payload) P9_HOT_PATH;

  void UpdatePromiscuity();

  // Demultiplex one received frame to matching conversations (called from
  // the segment callback; public for the demux benchmarks).
  void Input(const EtherFrame& frame);

 private:
  friend class EtherConv;

  std::string name_;
  EtherSegment* segment_;
  MacAddr mac_;
  EtherSegment::StationId station_;
  QLock lock_{"ether.proto"};
  std::vector<std::unique_ptr<EtherConv>> convs_ GUARDED_BY(lock_);
  bool unplugged_ GUARDED_BY(lock_) = false;
};

}  // namespace plan9

#endif  // SRC_DEV_ETHER_H_

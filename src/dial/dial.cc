#include "src/dial/dial.h"

#include "src/base/strings.h"

namespace plan9 {
namespace {

// One "filename message" candidate from name translation.
struct Candidate {
  std::string clone_path;  // "/net/il/clone"
  std::string ctl_msg;     // "connect 135.104.9.31!17008"
};

// Translate a dial string into candidates.  Prefers the connection server;
// falls back to literal addresses for cs-less nodes.
Result<std::vector<Candidate>> Translate(Proc* p, const std::string& dest,
                                         bool announce) {
  std::vector<Candidate> out;
  std::string verb = announce ? "announce" : "connect";

  // Try CS: "A client writes a symbolic name to /net/cs then reads one line
  // for each matching destination reachable from this system."
  auto csfd = p->Open("/net/cs", kORdWr);
  if (csfd.ok()) {
    std::string query = announce ? "announce " + dest : dest;
    if (p->WriteString(*csfd, query).ok()) {
      (void)p->Seek(*csfd, 0, kSeekSet);
      for (;;) {
        auto line = p->ReadString(*csfd);
        if (!line.ok() || line->empty()) {
          break;
        }
        auto fields = Tokenize(*line);
        if (fields.size() >= 2) {
          out.push_back(Candidate{fields[0], verb + " " + fields[1]});
        }
      }
    }
    (void)p->Close(*csfd);
    if (!out.empty()) {
      return out;
    }
  }

  // Fallback: "Dial accepts addresses instead of symbolic names."
  auto parts = GetFields(dest, "!", /*collapse=*/false);
  if (parts.size() < 2) {
    return Error(kErrBadAddr);
  }
  const std::string& net = parts[0];
  if (net == "net") {
    return Error("no connection server to resolve 'net'");
  }
  std::string rest = parts[1];
  for (size_t i = 2; i < parts.size(); i++) {
    rest += "!" + parts[i];
  }
  if (announce) {
    // announce tcp!*!564 -> "announce *!564"; dk services pass through.
    out.push_back(Candidate{"/net/" + net + "/clone", "announce " + rest});
  } else {
    out.push_back(Candidate{"/net/" + net + "/clone", "connect " + rest});
  }
  return out;
}

// Open the clone file, learn the conversation directory, send the ctl msg.
// On success returns the open ctl fd and fills conn_dir.
Result<int> CloneAndCtl(Proc* p, const Candidate& cand, std::string* conn_dir) {
  P9_ASSIGN_OR_RETURN(int cfd, p->Open(cand.clone_path, kORdWr));
  auto num = p->ReadString(cfd, 32);
  if (!num.ok()) {
    (void)p->Close(cfd);
    return num.error();
  }
  Status wrote = p->WriteString(cfd, cand.ctl_msg);
  if (!wrote.ok()) {
    (void)p->Close(cfd);
    return wrote.error();
  }
  // ".../tcp/clone" -> ".../tcp/<n>"
  std::string proto_dir = cand.clone_path;
  auto slash = proto_dir.rfind('/');
  proto_dir.resize(slash);
  *conn_dir = proto_dir + "/" + std::string(TrimSpace(*num));
  return cfd;
}

}  // namespace

std::string NetMkAddr(const std::string& addr, const std::string& defnet,
                      const std::string& defsvc) {
  auto parts = GetFields(addr, "!", /*collapse=*/false);
  if (parts.size() >= 3 || (parts.size() == 2 && defsvc.empty())) {
    return addr;
  }
  std::string net = defnet.empty() ? "net" : defnet;
  if (parts.size() == 2) {
    return addr + "!" + defsvc;
  }
  if (defsvc.empty()) {
    return net + "!" + addr;
  }
  return net + "!" + addr + "!" + defsvc;
}

Result<int> Dial(Proc* p, const std::string& dest, std::string* dir, int* cfd) {
  P9_ASSIGN_OR_RETURN(std::vector<Candidate> candidates,
                      Translate(p, dest, /*announce=*/false));
  Error last{std::string(kErrBadAddr)};
  // "Dial uses CS to translate the symbolic name to all possible destination
  // addresses and attempts to connect to each in turn until one works."
  for (const auto& cand : candidates) {
    std::string conn_dir;
    auto ctl = CloneAndCtl(p, cand, &conn_dir);
    if (!ctl.ok()) {
      last = ctl.error();
      continue;
    }
    auto dfd = p->Open(conn_dir + "/data", kORdWr);
    if (!dfd.ok()) {
      last = dfd.error();
      (void)p->Close(*ctl);
      continue;
    }
    if (dir != nullptr) {
      *dir = conn_dir;
    }
    if (cfd != nullptr) {
      *cfd = *ctl;
    } else {
      (void)p->Close(*ctl);
    }
    return dfd;
  }
  return last;
}

Result<int> Announce(Proc* p, const std::string& addr, std::string* dir) {
  P9_ASSIGN_OR_RETURN(std::vector<Candidate> candidates,
                      Translate(p, addr, /*announce=*/true));
  Error last{std::string(kErrBadAddr)};
  for (const auto& cand : candidates) {
    std::string conn_dir;
    auto ctl = CloneAndCtl(p, cand, &conn_dir);
    if (!ctl.ok()) {
      last = ctl.error();
      continue;
    }
    if (dir != nullptr) {
      *dir = conn_dir;
    }
    return ctl;
  }
  return last;
}

Result<int> Listen(Proc* p, const std::string& dir, std::string* ldir) {
  // "If the process opens the listen file it blocks until an incoming call
  // is received...  Reading the ctl file yields a connection number used to
  // construct the path of the data file."
  P9_ASSIGN_OR_RETURN(int lcfd, p->Open(dir + "/listen", kORdWr));
  auto num = p->ReadString(lcfd, 32);
  if (!num.ok()) {
    (void)p->Close(lcfd);
    return num.error();
  }
  std::string proto_dir = dir;
  auto slash = proto_dir.rfind('/');
  proto_dir.resize(slash);
  if (ldir != nullptr) {
    *ldir = proto_dir + "/" + std::string(TrimSpace(*num));
  }
  return lcfd;
}

Result<int> Accept(Proc* p, int ctl, const std::string& ldir) {
  // IP networks accept implicitly; Datakit needs the word.
  (void)p->WriteString(ctl, "accept");
  return p->Open(ldir + "/data", kORdWr);
}

Status Reject(Proc* p, int ctl, const std::string& ldir, const std::string& reason) {
  Status s = p->WriteString(ctl, "reject " + reason);
  (void)p->Close(ctl);
  return s;
}

bool DialPathDelimited(const std::string& conn_dir) {
  // "/net/il/3" -> "il".  TCP is the odd one out (and udp is unreliable —
  // no 9P over it at all).
  auto fields = GetFields(conn_dir, "/");
  for (size_t i = 0; i + 1 < fields.size(); i++) {
    if (fields[i] == "net" || i + 2 == fields.size()) {
      const std::string& proto = fields[i + (fields[i] == "net" ? 1 : 0)];
      return proto != "tcp" && proto != "udp";
    }
  }
  return true;
}

}  // namespace plan9

#include "src/dial/dial.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/base/rand.h"
#include "src/base/strings.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"

namespace plan9 {
namespace {

// Process-wide dial counters (net.dial.* in /net/stats).
struct DialCounters {
  DialCounters() {
    auto& r = obs::MetricsRegistry::Default();
    attempts = &r.CounterNamed("net.dial.attempts");
    successes = &r.CounterNamed("net.dial.successes");
    failures = &r.CounterNamed("net.dial.failures");
  }
  obs::Counter* attempts;
  obs::Counter* successes;
  obs::Counter* failures;
};

DialCounters& Counters() {
  static DialCounters* c = new DialCounters;
  return *c;
}

// Closes the held fd on every exit path; Release() hands ownership back to
// the caller on success.  Every early return below leaks nothing.
class FdCloser {
 public:
  FdCloser(Proc* p, int fd) : p_(p), fd_(fd) {}
  ~FdCloser() {
    if (fd_ >= 0) {
      (void)p_->Close(fd_);
    }
  }
  FdCloser(const FdCloser&) = delete;
  FdCloser& operator=(const FdCloser&) = delete;
  int Release() { return std::exchange(fd_, -1); }
  int get() const { return fd_; }

 private:
  Proc* p_;
  int fd_;
};

// One "filename message" candidate from name translation.
struct Candidate {
  std::string clone_path;  // "/net/il/clone"
  std::string ctl_msg;     // "connect 135.104.9.31!17008"
};

// Translate a dial string into candidates.  Prefers the connection server;
// falls back to literal addresses for cs-less nodes.
Result<std::vector<Candidate>> Translate(Proc* p, const std::string& dest,
                                         bool announce) {
  std::vector<Candidate> out;
  std::string verb = announce ? "announce" : "connect";

  // Try CS: "A client writes a symbolic name to /net/cs then reads one line
  // for each matching destination reachable from this system."
  auto csfd = p->Open("/net/cs", kORdWr);
  if (csfd.ok()) {
    FdCloser cs(p, *csfd);
    std::string query = announce ? "announce " + dest : dest;
    if (p->WriteString(cs.get(), query).ok()) {
      (void)p->Seek(cs.get(), 0, kSeekSet);
      for (;;) {
        auto line = p->ReadString(cs.get());
        if (!line.ok() || line->empty()) {
          break;
        }
        auto fields = Tokenize(*line);
        if (fields.size() >= 2) {
          out.push_back(Candidate{fields[0], verb + " " + fields[1]});
        }
      }
    }
    if (!out.empty()) {
      return out;
    }
  }

  // Fallback: "Dial accepts addresses instead of symbolic names."
  auto parts = GetFields(dest, "!", /*collapse=*/false);
  if (parts.size() < 2) {
    return Error(kErrBadAddr);
  }
  const std::string& net = parts[0];
  if (net == "net") {
    return Error("no connection server to resolve 'net'");
  }
  std::string rest = parts[1];
  for (size_t i = 2; i < parts.size(); i++) {
    rest += "!" + parts[i];
  }
  if (announce) {
    // announce tcp!*!564 -> "announce *!564"; dk services pass through.
    out.push_back(Candidate{"/net/" + net + "/clone", "announce " + rest});
  } else {
    out.push_back(Candidate{"/net/" + net + "/clone", "connect " + rest});
  }
  return out;
}

// Open the clone file, learn the conversation directory, send the ctl msg.
// On success returns the open ctl fd and fills conn_dir.
Result<int> CloneAndCtl(Proc* p, const Candidate& cand, std::string* conn_dir) {
  P9_ASSIGN_OR_RETURN(int raw_cfd, p->Open(cand.clone_path, kORdWr));
  FdCloser cfd(p, raw_cfd);
  auto num = p->ReadString(cfd.get(), 32);
  if (!num.ok()) {
    return num.error();
  }
  Status wrote = p->WriteString(cfd.get(), cand.ctl_msg);
  if (!wrote.ok()) {
    return wrote.error();
  }
  // ".../tcp/clone" -> ".../tcp/<n>"
  std::string proto_dir = cand.clone_path;
  auto slash = proto_dir.rfind('/');
  proto_dir.resize(slash);
  *conn_dir = proto_dir + "/" + std::string(TrimSpace(*num));
  return cfd.Release();
}

// One full pass over the translated candidates: the classic single-attempt
// dial.  On failure every fd opened along the way is closed.
Result<int> DialOnce(Proc* p, const std::string& dest, std::string* dir, int* cfd) {
  Counters().attempts->Inc();
  P9_TRACE(obs::TraceKind::kDial, "dial", dest);
  // A dial is a trace root if the sampler picks it (and a child if the
  // caller — an exportfs relay, a traced test — already carries a context).
  obs::ScopedSpan call_span("dial.call", p->host(),
                            obs::ScopedSpan::kRootAtEntry);
  std::vector<Candidate> candidates;
  {
    obs::ScopedSpan cs_span("dial.cs", p->host());
    P9_ASSIGN_OR_RETURN(candidates, Translate(p, dest, /*announce=*/false));
  }
  Error last{std::string(kErrBadAddr)};
  // "Dial uses CS to translate the symbolic name to all possible destination
  // addresses and attempts to connect to each in turn until one works."
  for (const auto& cand : candidates) {
    // The span live while the ctl write lands is the one devproto stamps
    // onto the conversation (MaybeCaptureTrace).
    obs::ScopedSpan connect_span("dial.connect", p->host());
    std::string conn_dir;
    auto ctl_fd = CloneAndCtl(p, cand, &conn_dir);
    if (!ctl_fd.ok()) {
      last = ctl_fd.error();
      continue;
    }
    FdCloser ctl(p, *ctl_fd);
    auto dfd = p->Open(conn_dir + "/data", kORdWr);
    if (!dfd.ok()) {
      last = dfd.error();
      continue;
    }
    if (dir != nullptr) {
      *dir = conn_dir;
    }
    if (cfd != nullptr) {
      *cfd = ctl.Release();
    }
    Counters().successes->Inc();
    return dfd;
  }
  Counters().failures->Inc();
  P9_TRACE(obs::TraceKind::kDial, "dial",
           StrFormat("%s failed: %s", dest.c_str(), last.message().c_str()));
  return last;
}

}  // namespace

std::string NetMkAddr(const std::string& addr, const std::string& defnet,
                      const std::string& defsvc) {
  auto parts = GetFields(addr, "!", /*collapse=*/false);
  if (parts.size() >= 3 || (parts.size() == 2 && defsvc.empty())) {
    return addr;
  }
  std::string net = defnet.empty() ? "net" : defnet;
  if (parts.size() == 2) {
    return addr + "!" + defsvc;
  }
  if (defsvc.empty()) {
    return net + "!" + addr;
  }
  return net + "!" + addr + "!" + defsvc;
}

Result<int> Dial(Proc* p, const std::string& dest, std::string* dir, int* cfd) {
  return DialOnce(p, dest, dir, cfd);
}

Result<int> Dial(Proc* p, const std::string& dest, const DialOptions& opts,
                 std::string* dir, int* cfd) {
  Rng jitter_rng(opts.jitter_seed);
  auto delay = opts.backoff;
  Result<int> last = Error(std::string(kErrBadAddr));
  for (int attempt = 0; attempt < std::max(1, opts.attempts); attempt++) {
    if (attempt > 0) {
      // Backoff with deterministic jitter so a thundering herd of redialers
      // (and a replayed test) spread out the same way every run.
      auto d = delay.count();
      if (opts.jitter > 0 && d > 0) {
        auto span = static_cast<int64_t>(static_cast<double>(d) * opts.jitter);
        if (span > 0) {
          d += static_cast<int64_t>(jitter_rng.Below(
                   static_cast<uint64_t>(2 * span + 1))) -
               span;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(std::max<int64_t>(d, 0)));
      auto grown = static_cast<int64_t>(static_cast<double>(delay.count()) *
                                        opts.multiplier);
      delay = std::min(std::chrono::milliseconds(grown), opts.max_backoff);
    }
    last = DialOnce(p, dest, dir, cfd);
    if (last.ok()) {
      return last;
    }
  }
  return last;
}

Result<int> Announce(Proc* p, const std::string& addr, std::string* dir) {
  P9_ASSIGN_OR_RETURN(std::vector<Candidate> candidates,
                      Translate(p, addr, /*announce=*/true));
  Error last{std::string(kErrBadAddr)};
  for (const auto& cand : candidates) {
    std::string conn_dir;
    auto ctl = CloneAndCtl(p, cand, &conn_dir);
    if (!ctl.ok()) {
      last = ctl.error();
      continue;
    }
    if (dir != nullptr) {
      *dir = conn_dir;
    }
    return ctl;
  }
  return last;
}

Result<int> Listen(Proc* p, const std::string& dir, std::string* ldir) {
  // "If the process opens the listen file it blocks until an incoming call
  // is received...  Reading the ctl file yields a connection number used to
  // construct the path of the data file."
  P9_ASSIGN_OR_RETURN(int raw_lcfd, p->Open(dir + "/listen", kORdWr));
  FdCloser lcfd(p, raw_lcfd);
  auto num = p->ReadString(lcfd.get(), 32);
  if (!num.ok()) {
    return num.error();
  }
  std::string proto_dir = dir;
  auto slash = proto_dir.rfind('/');
  proto_dir.resize(slash);
  if (ldir != nullptr) {
    *ldir = proto_dir + "/" + std::string(TrimSpace(*num));
  }
  return lcfd.Release();
}

Result<int> Accept(Proc* p, int ctl, const std::string& ldir) {
  // IP networks accept implicitly; Datakit needs the word.
  (void)p->WriteString(ctl, "accept");
  return p->Open(ldir + "/data", kORdWr);
}

Status Reject(Proc* p, int ctl, const std::string& ldir, const std::string& reason) {
  Status s = p->WriteString(ctl, "reject " + reason);
  (void)p->Close(ctl);
  return s;
}

bool DialPathDelimited(const std::string& conn_dir) {
  // "/net/il/3" -> "il".  TCP is the odd one out (and udp is unreliable —
  // no 9P over it at all).
  auto fields = GetFields(conn_dir, "/");
  for (size_t i = 0; i + 1 < fields.size(); i++) {
    if (fields[i] == "net" || i + 2 == fields.size()) {
      const std::string& proto = fields[i + (fields[i] == "net" ? 1 : 0)];
      return proto != "tcp" && proto != "udp";
    }
  }
  return true;
}

}  // namespace plan9

// The connection library (§5).
//
// "The dance is straightforward but tedious.  Library routines are provided
// to relieve the programmer of the details."  These are the paper's five
// routines, operating through a Proc's name space, so they work identically
// on local protocol devices and on a /net imported from another machine
// (§6.1's gateway property).
//
//   fd = dial("net!research.bell-labs.com!login", 0, dir, &cfd);
//   afd = announce("tcp!*!echo", adir);
//   lcfd = listen(adir, ldir);
//   dfd = accept(lcfd, ldir);  /  reject(lcfd, ldir, "too busy");
//
// Name translation is delegated to the connection server when /net/cs
// exists (§4.2); otherwise a built-in fallback handles literal addresses
// ("tcp!135.104.117.5!513").
#ifndef SRC_DIAL_DIAL_H_
#define SRC_DIAL_DIAL_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "src/base/result.h"
#include "src/base/thread_annotations.h"
#include "src/ns/proc.h"

namespace plan9 {

// Retry policy for Dial.  Each attempt iterates over *all* CS translations;
// between attempts the caller's process sleeps an exponentially growing
// backoff with deterministic jitter (seeded, so tests replay exactly).
struct DialOptions {
  int attempts = 1;  // total tries; 1 == the classic single pass
  std::chrono::milliseconds backoff{100};      // delay before the 2nd attempt
  double multiplier = 2.0;                     // growth per attempt
  std::chrono::milliseconds max_backoff{2000}; // ceiling
  double jitter = 0.25;     // +/- fraction of the delay, drawn from the Rng
  uint64_t jitter_seed = 1; // deterministic jitter source
};

// Establish a connection to `dest` ("net!host!service").  Returns an open
// fd for the data file.  If `dir` is non-null it receives the connection
// directory path ("/net/il/3"); if `cfd` is non-null it receives an open fd
// for the ctl file (caller closes), else the ctl fd is closed.
Result<int> Dial(Proc* p, const std::string& dest, std::string* dir = nullptr,
                 int* cfd = nullptr) MAY_BLOCK;

// Same, with bounded retry.  Name translation reruns on every attempt, so a
// service that appears (or a CS answer that changes) while backing off is
// picked up.  Returns the last error once attempts are exhausted.
Result<int> Dial(Proc* p, const std::string& dest, const DialOptions& opts,
                 std::string* dir = nullptr, int* cfd = nullptr) MAY_BLOCK;

// Announce `addr` ("tcp!*!echo"); returns an open ctl fd (keep it open: "an
// announcement remains in force until the control file is closed").  `dir`
// receives the protocol directory of the announcement.
Result<int> Announce(Proc* p, const std::string& addr, std::string* dir) MAY_BLOCK;

// Block for an incoming call on the announcement at `dir`; returns an open
// ctl fd for the new connection, and its directory in `ldir`.
Result<int> Listen(Proc* p, const std::string& dir, std::string* ldir) MAY_BLOCK;

// Accept the call: returns an open data fd.
Result<int> Accept(Proc* p, int ctl, const std::string& ldir) MAY_BLOCK;

// Reject the call with a reason (networks that cannot carry one ignore it).
Status Reject(Proc* p, int ctl, const std::string& ldir,
              const std::string& reason) MAY_BLOCK;

// "helix" -> "net!helix!9fs" style defaulting, as in Plan 9's netmkaddr.
std::string NetMkAddr(const std::string& addr, const std::string& defnet,
                      const std::string& defsvc);

// True if the destination's final element names a protocol that preserves
// message delimiters end-to-end (il, dk, cyclone, pipes) — decides whether
// 9P needs the framing marshal (TCP).
bool DialPathDelimited(const std::string& conn_dir);

}  // namespace plan9

#endif  // SRC_DIAL_DIAL_H_

#include "src/ninep/transport.h"

#include "src/ninep/fcall.h"

namespace plan9 {

Result<bool> FramedMsgTransport::ReadFull(uint8_t* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    auto r = read_(buf + got, n - got);
    if (!r.ok()) {
      return r.error();
    }
    if (*r == 0) {
      if (got == 0) {
        return false;  // clean EOF between messages
      }
      return Error("eof inside 9p message");
    }
    got += *r;
  }
  return true;
}

Result<Bytes> FramedMsgTransport::ReadMsg() {
  uint8_t hdr[4];
  auto ok = ReadFull(hdr, sizeof hdr);
  if (!ok.ok()) {
    return ok.error();
  }
  if (!*ok) {
    return Bytes{};  // EOF
  }
  uint32_t len = static_cast<uint32_t>(hdr[0]) | static_cast<uint32_t>(hdr[1]) << 8 |
                 static_cast<uint32_t>(hdr[2]) << 16 | static_cast<uint32_t>(hdr[3]) << 24;
  if (len == 0 || len > kMaxMsg) {
    return Error("bad 9p frame length");
  }
  Bytes msg(len);
  auto body = ReadFull(msg.data(), len);
  if (!body.ok()) {
    return body.error();
  }
  if (!*body) {
    return Error("eof inside 9p message");
  }
  return msg;
}

Status FramedMsgTransport::WriteMsg(Bytes msg) {
  if (msg.size() > kMaxMsg) {
    return Error("9p message too long");
  }
  // Prefix the length in place: one memmove instead of a second buffer.
  uint32_t len = static_cast<uint32_t>(msg.size());
  const uint8_t hdr[4] = {static_cast<uint8_t>(len), static_cast<uint8_t>(len >> 8),
                          static_cast<uint8_t>(len >> 16),
                          static_cast<uint8_t>(len >> 24)};
  msg.insert(msg.begin(), hdr, hdr + 4);
  // One write: 9P messages are well under the 32K atomic-write guarantee, so
  // the frame never interleaves with another writer's.
  return write_(msg.data(), msg.size());
}

std::pair<std::unique_ptr<MsgTransport>, std::unique_ptr<MsgTransport>>
PipeTransport::Make() {
  auto a_to_b = std::make_shared<Queue>();
  auto b_to_a = std::make_shared<Queue>();
  auto a = std::unique_ptr<MsgTransport>(new PipeTransport(b_to_a, a_to_b));
  auto b = std::unique_ptr<MsgTransport>(new PipeTransport(a_to_b, b_to_a));
  return {std::move(a), std::move(b)};
}

Result<Bytes> PipeTransport::ReadMsg() {
  BlockPtr b = rx_->Get();
  if (b == nullptr) {
    return Bytes{};  // EOF
  }
  // Unread blocks surrender their buffer whole; a partially-read cursor
  // (never the case for message pipes, but be safe) forces a copy.
  Bytes out;
  if (b->rp == 0) {
    out = std::move(b->data);
  } else {
    out.assign(b->payload(), b->payload() + b->size());
  }
  RecycleBlock(std::move(b));
  return out;
}

Status PipeTransport::WriteMsg(Bytes msg) {
  return tx_->Put(AllocDataBlock(std::move(msg), /*delim=*/true));
}

void PipeTransport::Close() {
  rx_->Close();
  tx_->Close();
}

}  // namespace plan9

#include "src/ninep/fcall.h"

#include "src/base/strings.h"

namespace plan9 {

void Dir::Pack(Bytes* out) const {
  ByteWriter w(out);
  w.FixedString(name, kNameLen);
  w.FixedString(uid, kNameLen);
  w.FixedString(gid, kNameLen);
  w.U32(qid.path);
  w.U32(qid.vers);
  w.U32(mode);
  w.U32(atime);
  w.U32(mtime);
  w.U64(length);
  w.U16(type);
  w.U16(dev);
}

Result<Dir> Dir::Unpack(ByteReader* reader) {
  Dir d;
  d.name = reader->FixedString(kNameLen);
  d.uid = reader->FixedString(kNameLen);
  d.gid = reader->FixedString(kNameLen);
  d.qid.path = reader->U32();
  d.qid.vers = reader->U32();
  d.mode = reader->U32();
  d.atime = reader->U32();
  d.mtime = reader->U32();
  d.length = reader->U64();
  d.type = reader->U16();
  d.dev = reader->U16();
  if (!reader->ok()) {
    return Error("short stat record");
  }
  return d;
}

const char* FcallTypeName(FcallType t) {
  switch (t) {
    case FcallType::kTnop:
      return "Tnop";
    case FcallType::kRnop:
      return "Rnop";
    case FcallType::kTsession:
      return "Tsession";
    case FcallType::kRsession:
      return "Rsession";
    case FcallType::kRerror:
      return "Rerror";
    case FcallType::kTflush:
      return "Tflush";
    case FcallType::kRflush:
      return "Rflush";
    case FcallType::kTattach:
      return "Tattach";
    case FcallType::kRattach:
      return "Rattach";
    case FcallType::kTclone:
      return "Tclone";
    case FcallType::kRclone:
      return "Rclone";
    case FcallType::kTwalk:
      return "Twalk";
    case FcallType::kRwalk:
      return "Rwalk";
    case FcallType::kTopen:
      return "Topen";
    case FcallType::kRopen:
      return "Ropen";
    case FcallType::kTcreate:
      return "Tcreate";
    case FcallType::kRcreate:
      return "Rcreate";
    case FcallType::kTread:
      return "Tread";
    case FcallType::kRread:
      return "Rread";
    case FcallType::kTwrite:
      return "Twrite";
    case FcallType::kRwrite:
      return "Rwrite";
    case FcallType::kTclunk:
      return "Tclunk";
    case FcallType::kRclunk:
      return "Rclunk";
    case FcallType::kTremove:
      return "Tremove";
    case FcallType::kRremove:
      return "Rremove";
    case FcallType::kTstat:
      return "Tstat";
    case FcallType::kRstat:
      return "Rstat";
    case FcallType::kTwstat:
      return "Twstat";
    case FcallType::kRwstat:
      return "Rwstat";
    case FcallType::kTclwalk:
      return "Tclwalk";
    case FcallType::kRclwalk:
      return "Rclwalk";
  }
  return "?";
}

Result<Bytes> Fcall::Pack() const {
  Bytes out;
  out.reserve(64 + data.size());
  ByteWriter w(&out);
  w.U8(static_cast<uint8_t>(type));
  w.U16(tag);
  switch (type) {
    case FcallType::kTnop:
    case FcallType::kRnop:
      break;
    case FcallType::kTsession: {
      Bytes c = chal;
      c.resize(kChalLen);
      w.Raw(c);
      break;
    }
    case FcallType::kRsession: {
      Bytes c = chal;
      c.resize(kChalLen);
      w.Raw(c);
      w.FixedString(authid, kNameLen);
      w.FixedString(authdom, kDomLen);
      break;
    }
    case FcallType::kRerror:
      w.FixedString(ename, kErrLen);
      break;
    case FcallType::kTflush:
      w.U16(oldtag);
      break;
    case FcallType::kRflush:
      break;
    case FcallType::kTattach:
      w.U32(fid);
      w.FixedString(uname, kNameLen);
      w.FixedString(aname, kNameLen);
      break;
    case FcallType::kRattach:
      w.U32(fid);
      w.U32(qid.path);
      w.U32(qid.vers);
      break;
    case FcallType::kTclone:
      w.U32(fid);
      w.U32(newfid);
      break;
    case FcallType::kRclone:
      w.U32(fid);
      break;
    case FcallType::kTwalk:
      w.U32(fid);
      w.FixedString(name, kNameLen);
      break;
    case FcallType::kRwalk:
      w.U32(fid);
      w.U32(qid.path);
      w.U32(qid.vers);
      break;
    case FcallType::kTclwalk:
      w.U32(fid);
      w.U32(newfid);
      w.FixedString(name, kNameLen);
      break;
    case FcallType::kRclwalk:
      w.U32(fid);
      w.U32(qid.path);
      w.U32(qid.vers);
      break;
    case FcallType::kTopen:
      w.U32(fid);
      w.U8(mode);
      break;
    case FcallType::kRopen:
      w.U32(fid);
      w.U32(qid.path);
      w.U32(qid.vers);
      break;
    case FcallType::kTcreate:
      w.U32(fid);
      w.FixedString(name, kNameLen);
      w.U32(perm);
      w.U8(mode);
      break;
    case FcallType::kRcreate:
      w.U32(fid);
      w.U32(qid.path);
      w.U32(qid.vers);
      break;
    case FcallType::kTread:
      w.U32(fid);
      w.U64(offset);
      w.U32(count);
      break;
    case FcallType::kRread:
      if (data.size() > kMaxData) {
        return Error("9p data too long");
      }
      w.U32(fid);
      w.U32(static_cast<uint32_t>(data.size()));
      w.Raw(data);
      break;
    case FcallType::kTwrite:
      if (data.size() > kMaxData) {
        return Error("9p data too long");
      }
      w.U32(fid);
      w.U64(offset);
      w.U32(static_cast<uint32_t>(data.size()));
      w.Raw(data);
      break;
    case FcallType::kRwrite:
      w.U32(fid);
      w.U32(count);
      break;
    case FcallType::kTclunk:
    case FcallType::kRclunk:
    case FcallType::kTremove:
    case FcallType::kRremove:
    case FcallType::kTstat:
    case FcallType::kRwstat:
      w.U32(fid);
      break;
    case FcallType::kRstat: {
      w.U32(fid);
      Bytes rec;
      stat.Pack(&rec);
      w.Raw(rec);
      break;
    }
    case FcallType::kTwstat: {
      w.U32(fid);
      Bytes rec;
      stat.Pack(&rec);
      w.Raw(rec);
      break;
    }
  }
  if (trace.sampled) {
    w.U32(kTraceTrailerMagic);
    w.U64(trace.trace_hi);
    w.U64(trace.trace_lo);
    w.U64(trace.span_id);
    w.U8(1);  // flags: bit 0 = sampled
  }
  return out;
}

Result<Fcall> Fcall::Unpack(const Bytes& raw) {
  ByteReader r(raw);
  Fcall f;
  uint8_t t = r.U8();
  if (t < 50 || t > 81 || t == 54) {
    return Error(StrFormat("bad 9p message type %d", t));
  }
  f.type = static_cast<FcallType>(t);
  f.tag = r.U16();
  switch (f.type) {
    case FcallType::kTnop:
    case FcallType::kRnop:
    case FcallType::kRflush:
      break;
    case FcallType::kTsession:
      f.chal = r.Raw(kChalLen);
      break;
    case FcallType::kRsession:
      f.chal = r.Raw(kChalLen);
      f.authid = r.FixedString(kNameLen);
      f.authdom = r.FixedString(kDomLen);
      break;
    case FcallType::kRerror:
      f.ename = r.FixedString(kErrLen);
      break;
    case FcallType::kTflush:
      f.oldtag = r.U16();
      break;
    case FcallType::kTattach:
      f.fid = r.U32();
      f.uname = r.FixedString(kNameLen);
      f.aname = r.FixedString(kNameLen);
      break;
    case FcallType::kRattach:
    case FcallType::kRwalk:
    case FcallType::kRclwalk:
    case FcallType::kRopen:
    case FcallType::kRcreate:
      f.fid = r.U32();
      f.qid.path = r.U32();
      f.qid.vers = r.U32();
      break;
    case FcallType::kTclone:
      f.fid = r.U32();
      f.newfid = r.U32();
      break;
    case FcallType::kRclone:
    case FcallType::kTclunk:
    case FcallType::kRclunk:
    case FcallType::kTremove:
    case FcallType::kRremove:
    case FcallType::kTstat:
    case FcallType::kRwstat:
      f.fid = r.U32();
      break;
    case FcallType::kTwalk:
      f.fid = r.U32();
      f.name = r.FixedString(kNameLen);
      break;
    case FcallType::kTclwalk:
      f.fid = r.U32();
      f.newfid = r.U32();
      f.name = r.FixedString(kNameLen);
      break;
    case FcallType::kTopen:
      f.fid = r.U32();
      f.mode = r.U8();
      break;
    case FcallType::kTcreate:
      f.fid = r.U32();
      f.name = r.FixedString(kNameLen);
      f.perm = r.U32();
      f.mode = r.U8();
      break;
    case FcallType::kTread:
      f.fid = r.U32();
      f.offset = r.U64();
      f.count = r.U32();
      break;
    case FcallType::kRread: {
      f.fid = r.U32();
      uint32_t n = r.U32();
      if (n > kMaxData) {
        return Error("9p data too long");
      }
      f.data = r.Raw(n);
      break;
    }
    case FcallType::kTwrite: {
      f.fid = r.U32();
      f.offset = r.U64();
      uint32_t n = r.U32();
      if (n > kMaxData) {
        return Error("9p data too long");
      }
      f.data = r.Raw(n);
      break;
    }
    case FcallType::kRwrite:
      f.fid = r.U32();
      f.count = r.U32();
      break;
    case FcallType::kRstat:
    case FcallType::kTwstat: {
      f.fid = r.U32();
      auto d = Dir::Unpack(&r);
      if (!d.ok()) {
        return d.error();
      }
      f.stat = d.take();
      break;
    }
  }
  if (!r.ok()) {
    return Error(StrFormat("short 9p message (%s)", FcallTypeName(f.type)));
  }
  // Optional trace trailer; anything after the body that isn't ours stays
  // ignored, as before.
  if (r.remaining() >= kTraceTrailerLen && r.U32() == kTraceTrailerMagic) {
    f.trace.trace_hi = r.U64();
    f.trace.trace_lo = r.U64();
    f.trace.span_id = r.U64();
    f.trace.sampled = (r.U8() & 1) != 0;
  }
  return f;
}

std::string Fcall::DebugString() const {
  return StrFormat("%s tag %u fid %u name '%s' count %u offset %llu err '%s'",
                   FcallTypeName(type), tag, fid, name.c_str(),
                   static_cast<unsigned>(count ? count : data.size()),
                   static_cast<unsigned long long>(offset), ename.c_str());
}

Fcall TnopMsg() {
  Fcall f;
  f.type = FcallType::kTnop;
  return f;
}
Fcall TsessionMsg() {
  Fcall f;
  f.type = FcallType::kTsession;
  return f;
}
Fcall TattachMsg(uint32_t fid, std::string uname, std::string aname) {
  Fcall f;
  f.type = FcallType::kTattach;
  f.fid = fid;
  f.uname = std::move(uname);
  f.aname = std::move(aname);
  return f;
}
Fcall TcloneMsg(uint32_t fid, uint32_t newfid) {
  Fcall f;
  f.type = FcallType::kTclone;
  f.fid = fid;
  f.newfid = newfid;
  return f;
}
Fcall TwalkMsg(uint32_t fid, std::string name) {
  Fcall f;
  f.type = FcallType::kTwalk;
  f.fid = fid;
  f.name = std::move(name);
  return f;
}
Fcall TclwalkMsg(uint32_t fid, uint32_t newfid, std::string name) {
  Fcall f;
  f.type = FcallType::kTclwalk;
  f.fid = fid;
  f.newfid = newfid;
  f.name = std::move(name);
  return f;
}
Fcall TopenMsg(uint32_t fid, uint8_t mode) {
  Fcall f;
  f.type = FcallType::kTopen;
  f.fid = fid;
  f.mode = mode;
  return f;
}
Fcall TcreateMsg(uint32_t fid, std::string name, uint32_t perm, uint8_t mode) {
  Fcall f;
  f.type = FcallType::kTcreate;
  f.fid = fid;
  f.name = std::move(name);
  f.perm = perm;
  f.mode = mode;
  return f;
}
Fcall TreadMsg(uint32_t fid, uint64_t offset, uint32_t count) {
  Fcall f;
  f.type = FcallType::kTread;
  f.fid = fid;
  f.offset = offset;
  f.count = count;
  return f;
}
Fcall TwriteMsg(uint32_t fid, uint64_t offset, Bytes data) {
  Fcall f;
  f.type = FcallType::kTwrite;
  f.fid = fid;
  f.offset = offset;
  f.data = std::move(data);
  return f;
}
Fcall TclunkMsg(uint32_t fid) {
  Fcall f;
  f.type = FcallType::kTclunk;
  f.fid = fid;
  return f;
}
Fcall TremoveMsg(uint32_t fid) {
  Fcall f;
  f.type = FcallType::kTremove;
  f.fid = fid;
  return f;
}
Fcall TstatMsg(uint32_t fid) {
  Fcall f;
  f.type = FcallType::kTstat;
  f.fid = fid;
  return f;
}
Fcall TwstatMsg(uint32_t fid, Dir stat) {
  Fcall f;
  f.type = FcallType::kTwstat;
  f.fid = fid;
  f.stat = std::move(stat);
  return f;
}
Fcall TflushMsg(uint16_t oldtag) {
  Fcall f;
  f.type = FcallType::kTflush;
  f.oldtag = oldtag;
  return f;
}
Fcall RerrorMsg(uint16_t tag, std::string ename) {
  Fcall f;
  f.type = FcallType::kRerror;
  f.tag = tag;
  f.ename = std::move(ename);
  return f;
}

}  // namespace plan9

// RamFs — a memory file system implementing Vfs.
//
// Used as each node's root (every Plan 9 file tree needs somewhere to bind
// /net, /srv, /lib into), as exportfs test cargo, and as the ftpfs cache.
// Supports the full 9P1 surface: walk/create/remove/read/write/stat/wstat
// (including rename), directories, permission bits, append-only files.
#ifndef SRC_NINEP_RAMFS_H_
#define SRC_NINEP_RAMFS_H_

#include <map>
#include <memory>
#include <string>

#include "src/base/thread_annotations.h"
#include "src/ninep/server.h"
#include "src/task/qlock.h"

namespace plan9 {

class RamFs : public Vfs {
 public:
  RamFs();
  ~RamFs() override;

  Result<std::shared_ptr<Vnode>> Attach(const std::string& uname,
                                        const std::string& aname) override;

  // Build helpers for initial trees: "a/b/c" relative to the root.
  Status MkdirAll(const std::string& path);
  Status WriteFile(const std::string& path, std::string_view contents);
  Result<std::string> ReadFileText(const std::string& path);

  struct Node;

  // Implementation state, public for the file-local RamVnode class.
  QLock lock_{"ramfs"};  // one lock for the whole tree (simple and safe)
  std::shared_ptr<Node> root_;  // pointer set in the ctor; tree under lock_
  uint32_t next_path_ GUARDED_BY(lock_) = 1;
};

}  // namespace plan9

#endif  // SRC_NINEP_RAMFS_H_

#include "src/ninep/server.h"

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/obs/metrics.h"

namespace plan9 {
namespace {
constexpr int kWorkers = 4;

// Requests served, across every server in the process (ninep.srv.rpcs).
obs::Counter& ServedCounter() {
  static obs::Counter* c =
      &obs::MetricsRegistry::Default().CounterNamed("ninep.srv.rpcs");
  return *c;
}

// Span op name per request type (DESIGN.md §12 grammar: "9p.server.<op>").
const char* ServerSpanOp(FcallType t) {
  switch (t) {
    case FcallType::kTnop: return "9p.server.nop";
    case FcallType::kTsession: return "9p.server.session";
    case FcallType::kTflush: return "9p.server.flush";
    case FcallType::kTattach: return "9p.server.attach";
    case FcallType::kTclone: return "9p.server.clone";
    case FcallType::kTwalk: return "9p.server.walk";
    case FcallType::kTclwalk: return "9p.server.clwalk";
    case FcallType::kTopen: return "9p.server.open";
    case FcallType::kTcreate: return "9p.server.create";
    case FcallType::kTread: return "9p.server.read";
    case FcallType::kTwrite: return "9p.server.write";
    case FcallType::kTclunk: return "9p.server.clunk";
    case FcallType::kTremove: return "9p.server.remove";
    case FcallType::kTstat: return "9p.server.stat";
    case FcallType::kTwstat: return "9p.server.wstat";
    default: return "9p.server.other";
  }
}
}  // namespace

Result<Bytes> PackDirEntries(const std::vector<Dir>& entries, uint64_t offset,
                             uint32_t count) {
  // 9P1 semantics: directory reads must be aligned to whole stat records.
  if (offset % kDirLen != 0 || count % kDirLen != 0) {
    return Error("i/o count not a multiple of directory record");
  }
  size_t first = offset / kDirLen;
  size_t n = count / kDirLen;
  Bytes out;
  for (size_t i = first; i < entries.size() && i - first < n; i++) {
    entries[i].Pack(&out);
  }
  return out;
}

NinepServer::NinepServer(Vfs* vfs, std::unique_ptr<MsgTransport> transport,
                         std::string name, std::string host)
    : vfs_(vfs), transport_(std::move(transport)), host_(std::move(host)) {
  for (int i = 0; i < kWorkers; i++) {
    workers_.emplace_back(StrFormat("%s.w%d", name.c_str(), i), [this] { Worker(); });
  }
  reader_ = Kproc(name + ".reader", [this] { ReaderLoop(); });
}

NinepServer::~NinepServer() { Shutdown(); }

void NinepServer::Shutdown() {
  {
    QLockGuard guard(lock_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  transport_->Close();
  work_ready_.Wakeup();
  Wait();
}

void NinepServer::Wait() {
  reader_.Join();
  for (auto& w : workers_) {
    w.Join();
  }
}

void NinepServer::ReaderLoop() {
  for (;;) {
    auto raw = transport_->ReadMsg();
    if (!raw.ok() || raw->empty()) {
      break;  // EOF or dead transport
    }
    auto req = Fcall::Unpack(*raw);
    if (!req.ok()) {
      P9_LOG(kWarn) << "9p server: " << req.error().message();
      continue;
    }
    if (!req->IsT()) {
      continue;  // stray reply; ignore
    }
    {
      QLockGuard guard(lock_);
      outstanding_.insert(req->tag);
      work_.push_back(req.take());
    }
    work_ready_.Wakeup();
  }
  {
    QLockGuard guard(lock_);
    stopping_ = true;
  }
  work_ready_.Wakeup();
}

void NinepServer::Worker() {
  for (;;) {
    Fcall req;
    {
      QLockGuard guard(lock_);
      work_ready_.Sleep(lock_, [&]() REQUIRES(lock_) { return stopping_ || !work_.empty(); });
      if (work_.empty()) {
        return;  // stopping
      }
      req = std::move(work_.front());
      work_.pop_front();
    }
    Dispatch(std::move(req));
  }
}

void NinepServer::Reply(const Fcall& reply) {
  {
    QLockGuard guard(lock_);
    outstanding_.erase(reply.tag);
    if (flushed_.erase(reply.tag) > 0) {
      return;  // a Tflush asked us to drop this reply
    }
  }
  auto packed = reply.Pack();
  if (!packed.ok()) {
    P9_LOG(kWarn) << "9p server pack: " << packed.error().message();
    return;
  }
  QLockGuard guard(write_lock_);
  (void)transport_->WriteMsg(std::move(*packed));
}

void NinepServer::ReplyError(uint16_t tag, const std::string& ename) {
  Reply(RerrorMsg(tag, ename));
}

Result<NinepServer::FidState*> NinepServer::GetFidLocked(uint32_t fid) {
  auto it = fids_.find(fid);
  if (it == fids_.end()) {
    return Error("unknown fid");
  }
  return &it->second;
}

void NinepServer::Dispatch(Fcall req) {
  ServedCounter().Inc();
  // Adopt the context that rode in on the request's trailer: everything the
  // handler does downstream on this worker thread (exportfs relays included)
  // becomes part of the caller's trace, so re-exported mounts carry context
  // through multi-hop import chains.  The handler itself is a span.
  obs::SpanAdoption adopt(req.trace);
  obs::ScopedSpan span(ServerSpanOp(req.type), host_);
  Fcall reply;
  reply.type = static_cast<FcallType>(static_cast<uint8_t>(req.type) + 1);
  reply.tag = req.tag;
  reply.fid = req.fid;

  switch (req.type) {
    case FcallType::kTnop:
      Reply(reply);
      return;
    case FcallType::kTsession:
      // Auth is external to 9P (§2.1); echo a null challenge.
      reply.chal = Bytes(kChalLen, 0);
      reply.authid = "none";
      reply.authdom = "plan9net";
      Reply(reply);
      return;
    case FcallType::kTflush: {
      // If the old request is still outstanding, suppress its eventual
      // reply.  (We do not interrupt a blocked operation; see DESIGN.md.)
      QLockGuard guard(lock_);
      if (outstanding_.count(req.oldtag) != 0) {
        flushed_.insert(req.oldtag);
      }
      guard.Unlock();
      Reply(reply);
      return;
    }
    case FcallType::kTattach: {
      auto root = vfs_->Attach(req.uname, req.aname);
      if (!root.ok()) {
        ReplyError(req.tag, root.error().message());
        return;
      }
      {
        QLockGuard guard(lock_);
        if (fids_.count(req.fid) != 0) {
          guard.Unlock();
          ReplyError(req.tag, "fid in use");
          return;
        }
        fids_[req.fid] = FidState{*root, req.uname, false, 0};
      }
      reply.qid = (*root)->qid();
      Reply(reply);
      return;
    }
    case FcallType::kTclone: {
      QLockGuard guard(lock_);
      auto fs = GetFidLocked(req.fid);
      if (!fs.ok()) {
        guard.Unlock();
        ReplyError(req.tag, fs.error().message());
        return;
      }
      if ((*fs)->open) {
        guard.Unlock();
        ReplyError(req.tag, "cannot clone open fid");
        return;
      }
      if (fids_.count(req.newfid) != 0) {
        guard.Unlock();
        ReplyError(req.tag, "fid in use");
        return;
      }
      fids_[req.newfid] = **fs;
      guard.Unlock();
      Reply(reply);
      return;
    }
    case FcallType::kTwalk:
    case FcallType::kTclwalk: {
      std::shared_ptr<Vnode> node;
      std::string user;
      {
        QLockGuard guard(lock_);
        auto fs = GetFidLocked(req.fid);
        if (!fs.ok()) {
          guard.Unlock();
          ReplyError(req.tag, fs.error().message());
          return;
        }
        node = (*fs)->node;
        user = (*fs)->user;
        if (req.type == FcallType::kTclwalk && fids_.count(req.newfid) != 0) {
          guard.Unlock();
          ReplyError(req.tag, "fid in use");
          return;
        }
      }
      auto walked = node->Walk(req.name);
      if (!walked.ok()) {
        ReplyError(req.tag, walked.error().message());
        return;
      }
      {
        QLockGuard guard(lock_);
        uint32_t target = req.type == FcallType::kTclwalk ? req.newfid : req.fid;
        fids_[target] = FidState{*walked, user, false, 0};
      }
      reply.qid = (*walked)->qid();
      Reply(reply);
      return;
    }
    case FcallType::kTopen: {
      std::shared_ptr<Vnode> node;
      std::string user;
      {
        QLockGuard guard(lock_);
        auto fs = GetFidLocked(req.fid);
        if (!fs.ok()) {
          guard.Unlock();
          ReplyError(req.tag, fs.error().message());
          return;
        }
        node = (*fs)->node;
        user = (*fs)->user;
      }
      Status opened = node->Open(req.mode, user);
      if (!opened.ok()) {
        ReplyError(req.tag, opened.error().message());
        return;
      }
      {
        QLockGuard guard(lock_);
        auto fs = GetFidLocked(req.fid);
        if (fs.ok()) {
          (*fs)->open = true;
          (*fs)->open_mode = req.mode;
        }
      }
      reply.qid = node->qid();
      Reply(reply);
      return;
    }
    case FcallType::kTcreate: {
      std::shared_ptr<Vnode> node;
      std::string user;
      {
        QLockGuard guard(lock_);
        auto fs = GetFidLocked(req.fid);
        if (!fs.ok()) {
          guard.Unlock();
          ReplyError(req.tag, fs.error().message());
          return;
        }
        node = (*fs)->node;
        user = (*fs)->user;
      }
      auto created = node->Create(req.name, req.perm, req.mode, user);
      if (!created.ok()) {
        ReplyError(req.tag, created.error().message());
        return;
      }
      {
        QLockGuard guard(lock_);
        fids_[req.fid] = FidState{*created, user, true, req.mode};
      }
      reply.qid = (*created)->qid();
      Reply(reply);
      return;
    }
    case FcallType::kTread: {
      std::shared_ptr<Vnode> node;
      {
        QLockGuard guard(lock_);
        auto fs = GetFidLocked(req.fid);
        if (!fs.ok() || !(*fs)->open) {
          guard.Unlock();
          ReplyError(req.tag, fs.ok() ? "fid not open" : fs.error().message());
          return;
        }
        node = (*fs)->node;
      }
      auto data = node->Read(req.offset, std::min(req.count, kMaxData));
      if (!data.ok()) {
        ReplyError(req.tag, data.error().message());
        return;
      }
      reply.data = data.take();
      Reply(reply);
      return;
    }
    case FcallType::kTwrite: {
      std::shared_ptr<Vnode> node;
      {
        QLockGuard guard(lock_);
        auto fs = GetFidLocked(req.fid);
        if (!fs.ok() || !(*fs)->open) {
          guard.Unlock();
          ReplyError(req.tag, fs.ok() ? "fid not open" : fs.error().message());
          return;
        }
        node = (*fs)->node;
      }
      auto n = node->Write(req.offset, req.data);
      if (!n.ok()) {
        ReplyError(req.tag, n.error().message());
        return;
      }
      reply.count = *n;
      Reply(reply);
      return;
    }
    case FcallType::kTclunk:
    case FcallType::kTremove: {
      std::shared_ptr<Vnode> node;
      bool was_open = false;
      uint8_t open_mode = 0;
      {
        QLockGuard guard(lock_);
        auto fs = GetFidLocked(req.fid);
        if (!fs.ok()) {
          guard.Unlock();
          ReplyError(req.tag, fs.error().message());
          return;
        }
        node = (*fs)->node;
        was_open = (*fs)->open;
        open_mode = (*fs)->open_mode;
        fids_.erase(req.fid);
      }
      if (was_open) {
        node->Close(open_mode);
      }
      if (req.type == FcallType::kTremove) {
        Status removed = node->Remove();
        if (!removed.ok()) {
          ReplyError(req.tag, removed.error().message());
          return;
        }
      }
      Reply(reply);
      return;
    }
    case FcallType::kTstat: {
      std::shared_ptr<Vnode> node;
      {
        QLockGuard guard(lock_);
        auto fs = GetFidLocked(req.fid);
        if (!fs.ok()) {
          guard.Unlock();
          ReplyError(req.tag, fs.error().message());
          return;
        }
        node = (*fs)->node;
      }
      auto d = node->Stat();
      if (!d.ok()) {
        ReplyError(req.tag, d.error().message());
        return;
      }
      reply.stat = d.take();
      Reply(reply);
      return;
    }
    case FcallType::kTwstat: {
      std::shared_ptr<Vnode> node;
      {
        QLockGuard guard(lock_);
        auto fs = GetFidLocked(req.fid);
        if (!fs.ok()) {
          guard.Unlock();
          ReplyError(req.tag, fs.error().message());
          return;
        }
        node = (*fs)->node;
      }
      Status s = node->Wstat(req.stat);
      if (!s.ok()) {
        ReplyError(req.tag, s.error().message());
        return;
      }
      Reply(reply);
      return;
    }
    default:
      ReplyError(req.tag, "illegal 9p message");
      return;
  }
}

}  // namespace plan9

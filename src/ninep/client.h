// 9P client RPC engine — the heart of the mount driver (§2.1).
//
// "The mount driver manages buffers, packs and unpacks parameters from
// messages, and demultiplexes among processes using the file server."
// Multiple processes issue RPCs concurrently; a reader kproc matches replies
// to callers by tag.
#ifndef SRC_NINEP_CLIENT_H_
#define SRC_NINEP_CLIENT_H_

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/thread_annotations.h"
#include "src/ninep/fcall.h"
#include "src/ninep/transport.h"
#include "src/obs/metrics.h"
#include "src/task/kproc.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"

namespace plan9 {

// Counters for the recovery machinery; tests assert Tflush actually fired.
// Registry-backed: increments also feed the process-wide ninep.rpc.*
// aggregates in /net/stats.  Atomic, so readable without the client lock.
struct NinepClientStats {
  NinepClientStats();

  obs::Counter rpcs;
  obs::Counter timeouts;      // RPC deadlines that expired
  obs::Counter flushes_sent;  // Tflush messages written
  obs::Counter flushed;       // RPCs the server confirmed flushed (Rflush won)
  obs::Counter late_replies;  // original reply beat the Rflush after a timeout
  obs::Counter failures;      // connection declared dead (FailAll)
};

class NinepClient {
 public:
  // `host` labels this client's trace spans with the node it runs on
  // ("" in transport unit tests).
  explicit NinepClient(std::unique_ptr<MsgTransport> transport,
                       std::string host = "");
  ~NinepClient();

  NinepClient(const NinepClient&) = delete;
  NinepClient& operator=(const NinepClient&) = delete;

  // Issue one RPC: allocates the tag, sends, blocks for the matching reply.
  // Rerror replies surface as failed Results carrying ename.
  //
  // With a deadline set (SetRpcTimeout), an overdue RPC is flushed: a
  // Tflush(oldtag) goes out and the caller gets a timeout error once the
  // server confirms (Rflush) — or, if the original reply outruns the
  // Rflush, that reply, late but intact.  If the flush itself goes
  // unanswered for another deadline the connection is declared dead:
  // every waiter fails and the on-dead hook fires (redial time).
  Result<Fcall> Rpc(Fcall tx) MAY_BLOCK;

  // Per-RPC deadline; zero (the default) waits forever.
  void SetRpcTimeout(std::chrono::milliseconds timeout);

  // Invoked (without locks held, at most once) when the connection is
  // declared dead — transport error or unanswered flush.  The mount layer
  // hangs a redial policy here.
  void OnDead(std::function<void(const std::string& why)> hook);

  const NinepClientStats& stats() const { return stats_; }

  // Fid allocation for callers (the server sees whatever we choose).
  uint32_t AllocFid();

  // Convenience wrappers over Rpc; all of them block for the reply.
  Status Session() MAY_BLOCK;
  Result<Qid> Attach(uint32_t fid, const std::string& uname,
                     const std::string& aname) MAY_BLOCK;
  Result<Qid> Walk(uint32_t fid, const std::string& name) MAY_BLOCK;
  // Clone fid to newfid then walk each element; clunks newfid on failure.
  Result<Qid> CloneWalk(uint32_t fid, uint32_t newfid,
                        const std::vector<std::string>& names) MAY_BLOCK;
  Result<Qid> Open(uint32_t fid, uint8_t mode) MAY_BLOCK;
  Result<Qid> Create(uint32_t fid, const std::string& name, uint32_t perm,
                     uint8_t mode) MAY_BLOCK;
  Result<Bytes> Read(uint32_t fid, uint64_t offset, uint32_t count) MAY_BLOCK;
  Result<uint32_t> Write(uint32_t fid, uint64_t offset, const Bytes& data) MAY_BLOCK;
  Status Clunk(uint32_t fid) MAY_BLOCK;
  Status Remove(uint32_t fid) MAY_BLOCK;
  Result<Dir> Stat(uint32_t fid) MAY_BLOCK;
  Status Wstat(uint32_t fid, const Dir& d) MAY_BLOCK;

  // Whether the connection is still alive.
  bool ok();

 private:
  struct Pending {
    Rendez done;
    bool have_reply = false;
    Fcall reply;
    // A flush waiter chained to this tag: when the original reply lands,
    // the flusher sleeping on its own Rendez must be woken too.
    std::shared_ptr<Pending> also_wake;
  };

  void ReaderLoop();
  uint16_t AllocTagLocked() REQUIRES(lock_);
  // Returns true on the live->dead transition (callers fire the hook then).
  bool FailAllLocked(const std::string& why) REQUIRES(lock_);
  // Deadline expired on `waiter` (tag `oldtag`): send Tflush and resolve.
  // Returns the reply to surface, or a timeout error.
  Result<Fcall> FlushAndReap(uint16_t oldtag, std::shared_ptr<Pending> waiter,
                             std::chrono::milliseconds deadline) MAY_BLOCK;

  std::unique_ptr<MsgTransport> transport_;
  std::string host_;
  QLock lock_{"9p.client"};
  std::map<uint16_t, std::shared_ptr<Pending>> pending_ GUARDED_BY(lock_);
  uint16_t next_tag_ GUARDED_BY(lock_) = 1;
  uint32_t next_fid_ GUARDED_BY(lock_) = 1;
  bool dead_ GUARDED_BY(lock_) = false;
  std::string death_reason_ GUARDED_BY(lock_);
  std::chrono::milliseconds rpc_timeout_ GUARDED_BY(lock_){0};
  std::function<void(const std::string&)> on_dead_ GUARDED_BY(lock_);
  NinepClientStats stats_;  // atomic counters; no lock needed
  Kproc reader_;
};

}  // namespace plan9

#endif  // SRC_NINEP_CLIENT_H_

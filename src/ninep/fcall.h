// 9P — the Plan 9 file system protocol (§2.1), 1993 (9P1) shape.
//
// "The protocol consists of 17 messages describing operations on files and
// directories."  The T/R pairs implemented here: nop, session, error (R
// only; a Terror is illegal), flush, attach, clone, walk, clwalk, open,
// create, read, write, clunk, remove, stat, wstat — the classic pre-9P2000
// protocol with fixed-width name fields.
//
// "9P relies on several properties of the underlying transport protocol.
// It assumes messages arrive reliably and in sequence and that delimiters
// between messages are preserved."  Marshalled messages are little-endian
// with fixed-size string fields (NAMELEN=28, ERRLEN=64, DIRLEN=116).
//
// Divergence from the historical wire format, documented for honesty: the
// session/attach crypto fields (challenge, ticket, authenticator) are
// carried but unused — the paper defers authentication to "means external
// to 9P" and we provide none.
#ifndef SRC_NINEP_FCALL_H_
#define SRC_NINEP_FCALL_H_

#include <cstdint>
#include <string>

#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/obs/span.h"

namespace plan9 {

inline constexpr size_t kNameLen = 28;
inline constexpr size_t kErrLen = 64;
inline constexpr size_t kDirLen = 116;
inline constexpr size_t kChalLen = 8;
inline constexpr size_t kDomLen = 48;
// Largest data payload in a single read/write; 9P1 used 8K.
inline constexpr uint32_t kMaxData = 8192;
// Largest marshalled message (Twrite header + data).
inline constexpr size_t kMaxMsg = kMaxData + 160;

inline constexpr uint16_t kNoTag = 0xffff;
inline constexpr uint32_t kNoFid = 0xffffffffu;

// Causal-trace trailer (DESIGN.md §12).  A sampled TraceContext rides after
// the fixed-width message body: magic, 128-bit trace id, the sender's span
// id, and a flags byte.  Unpack tolerates (and both 9P1 peers ignore)
// trailing bytes, so an unsampled or pre-trace peer interoperates; the
// trailer costs nothing when tracing is off because Pack appends it only
// for sampled contexts.
inline constexpr uint32_t kTraceTrailerMagic = 0x39547230u;  // "0rT9"
inline constexpr size_t kTraceTrailerLen = 4 + 8 + 8 + 8 + 1;

// Qid: the server's unique identifier for a file.  The top bit of path is
// the directory bit (CHDIR), as in 9P1.
inline constexpr uint32_t kQidDirBit = 0x80000000u;

struct Qid {
  uint32_t path = 0;
  uint32_t vers = 0;

  bool IsDir() const { return (path & kQidDirBit) != 0; }
  bool operator==(const Qid&) const = default;
};

// Permission / mode bits (Dir.mode).
inline constexpr uint32_t kDmDir = 0x80000000u;
inline constexpr uint32_t kDmAppend = 0x40000000u;
inline constexpr uint32_t kDmExcl = 0x20000000u;

// Open modes.
inline constexpr uint8_t kORead = 0;
inline constexpr uint8_t kOWrite = 1;
inline constexpr uint8_t kORdWr = 2;
inline constexpr uint8_t kOExec = 3;
inline constexpr uint8_t kOTrunc = 0x10;
inline constexpr uint8_t kORClose = 0x40;

// A directory entry / stat record; marshals to exactly kDirLen bytes.
struct Dir {
  std::string name;
  std::string uid = "none";
  std::string gid = "none";
  Qid qid;
  uint32_t mode = 0;
  uint32_t atime = 0;
  uint32_t mtime = 0;
  uint64_t length = 0;
  uint16_t type = 0;  // device type character
  uint16_t dev = 0;   // device instance

  bool IsDir() const { return (mode & kDmDir) != 0; }

  void Pack(Bytes* out) const;
  static Result<Dir> Unpack(ByteReader* reader);
};

enum class FcallType : uint8_t {
  kTnop = 50,
  kRnop = 51,
  kTsession = 52,
  kRsession = 53,
  // 54 would be Terror, which is illegal to send.
  kRerror = 55,
  kTflush = 56,
  kRflush = 57,
  kTattach = 58,
  kRattach = 59,
  kTclone = 60,
  kRclone = 61,
  kTwalk = 62,
  kRwalk = 63,
  kTopen = 64,
  kRopen = 65,
  kTcreate = 66,
  kRcreate = 67,
  kTread = 68,
  kRread = 69,
  kTwrite = 70,
  kRwrite = 71,
  kTclunk = 72,
  kRclunk = 73,
  kTremove = 74,
  kRremove = 75,
  kTstat = 76,
  kRstat = 77,
  kTwstat = 78,
  kRwstat = 79,
  kTclwalk = 80,
  kRclwalk = 81,
};

const char* FcallTypeName(FcallType t);

// One 9P message, all fields flattened (the Plan 9 Fcall idiom).
struct Fcall {
  FcallType type = FcallType::kTnop;
  uint16_t tag = kNoTag;
  uint32_t fid = kNoFid;

  // session
  Bytes chal;  // kChalLen
  std::string authid;
  std::string authdom;
  // error
  std::string ename;
  // flush
  uint16_t oldtag = kNoTag;
  // attach
  std::string uname;
  std::string aname;
  // clone / clwalk
  uint32_t newfid = kNoFid;
  // walk / clwalk / create
  std::string name;
  // attach/clone/walk/open/create replies
  Qid qid;
  // open / create
  uint8_t mode = 0;
  uint32_t perm = 0;
  // read / write
  uint64_t offset = 0;
  uint32_t count = 0;
  Bytes data;
  // stat / wstat
  Dir stat;
  // Causal-trace context stamped per outstanding tag by the client;
  // adopted by the server for the handler's downstream work.  Not part of
  // the 9P1 message proper — carried as an optional trailer.
  obs::TraceContext trace;

  bool IsT() const { return (static_cast<uint8_t>(type) & 1) == 0; }

  // Marshal into wire bytes.  Fails on oversize data or bad type.
  Result<Bytes> Pack() const;
  // Unmarshal; fails on short/corrupt messages.
  static Result<Fcall> Unpack(const Bytes& raw);

  std::string DebugString() const;
};

// Convenience constructors for the common messages.
Fcall TnopMsg();
Fcall TsessionMsg();
Fcall TattachMsg(uint32_t fid, std::string uname, std::string aname);
Fcall TcloneMsg(uint32_t fid, uint32_t newfid);
Fcall TwalkMsg(uint32_t fid, std::string name);
Fcall TclwalkMsg(uint32_t fid, uint32_t newfid, std::string name);
Fcall TopenMsg(uint32_t fid, uint8_t mode);
Fcall TcreateMsg(uint32_t fid, std::string name, uint32_t perm, uint8_t mode);
Fcall TreadMsg(uint32_t fid, uint64_t offset, uint32_t count);
Fcall TwriteMsg(uint32_t fid, uint64_t offset, Bytes data);
Fcall TclunkMsg(uint32_t fid);
Fcall TremoveMsg(uint32_t fid);
Fcall TstatMsg(uint32_t fid);
Fcall TwstatMsg(uint32_t fid, Dir stat);
Fcall TflushMsg(uint16_t oldtag);
Fcall RerrorMsg(uint16_t tag, std::string ename);

}  // namespace plan9

#endif  // SRC_NINEP_FCALL_H_

#include "src/ninep/client.h"

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace plan9 {

NinepClient::NinepClient(std::unique_ptr<MsgTransport> transport)
    : transport_(std::move(transport)),
      reader_("9p.client.reader", [this] { ReaderLoop(); }) {}

NinepClient::~NinepClient() {
  transport_->Close();
  reader_.Join();
}

void NinepClient::ReaderLoop() {
  for (;;) {
    auto raw = transport_->ReadMsg();
    if (!raw.ok() || raw->empty()) {
      QLockGuard guard(lock_);
      FailAllLocked(raw.ok() ? std::string(kErrHungup) : raw.error().message());
      return;
    }
    auto reply = Fcall::Unpack(*raw);
    if (!reply.ok()) {
      P9_LOG(kWarn) << "9p client: " << reply.error().message();
      continue;
    }
    std::shared_ptr<Pending> waiter;
    {
      QLockGuard guard(lock_);
      auto it = pending_.find(reply->tag);
      if (it != pending_.end()) {
        waiter = it->second;
        pending_.erase(it);
        waiter->have_reply = true;
        waiter->reply = reply.take();
      }
    }
    if (waiter != nullptr) {
      waiter->done.Wakeup();
    } else {
      P9_LOG(kDebug) << "9p client: reply for unknown tag";
    }
  }
}

void NinepClient::FailAllLocked(const std::string& why) {
  dead_ = true;
  death_reason_ = why;
  for (auto& [tag, waiter] : pending_) {
    waiter->have_reply = true;
    waiter->reply = RerrorMsg(tag, why);
    waiter->done.Wakeup();
  }
  pending_.clear();
}

Result<Fcall> NinepClient::Rpc(Fcall tx) {
  auto waiter = std::make_shared<Pending>();
  {
    QLockGuard guard(lock_);
    if (dead_) {
      return Error(death_reason_);
    }
    do {
      tx.tag = next_tag_++;
      if (next_tag_ == kNoTag) {
        next_tag_ = 1;
      }
    } while (pending_.count(tx.tag) != 0);
    pending_[tx.tag] = waiter;
  }
  auto packed = tx.Pack();
  if (!packed.ok()) {
    QLockGuard guard(lock_);
    pending_.erase(tx.tag);
    return packed.error();
  }
  Status sent = transport_->WriteMsg(*packed);
  if (!sent.ok()) {
    QLockGuard guard(lock_);
    pending_.erase(tx.tag);
    return sent.error();
  }
  {
    QLockGuard guard(lock_);
    waiter->done.Sleep(lock_, [&]() REQUIRES(lock_) { return waiter->have_reply; });
  }
  if (waiter->reply.type == FcallType::kRerror) {
    return Error(waiter->reply.ename);
  }
  // Sanity: reply type must be request type + 1.
  if (static_cast<uint8_t>(waiter->reply.type) != static_cast<uint8_t>(tx.type) + 1) {
    return Error(StrFormat("mismatched 9p reply: %s for %s",
                           FcallTypeName(waiter->reply.type), FcallTypeName(tx.type)));
  }
  return waiter->reply;
}

uint32_t NinepClient::AllocFid() {
  QLockGuard guard(lock_);
  return next_fid_++;
}

Status NinepClient::Session() {
  auto r = Rpc(TsessionMsg());
  if (!r.ok()) {
    return r.error();
  }
  return Status::Ok();
}

Result<Qid> NinepClient::Attach(uint32_t fid, const std::string& uname,
                                const std::string& aname) {
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TattachMsg(fid, uname, aname)));
  return r.qid;
}

Result<Qid> NinepClient::Walk(uint32_t fid, const std::string& name) {
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TwalkMsg(fid, name)));
  return r.qid;
}

Result<Qid> NinepClient::CloneWalk(uint32_t fid, uint32_t newfid,
                                   const std::vector<std::string>& names) {
  Qid qid{};
  if (names.empty()) {
    P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TcloneMsg(fid, newfid)));
    (void)r;
    return qid;
  }
  // First element rides the clwalk; the rest are plain walks on newfid.
  auto first = Rpc(TclwalkMsg(fid, newfid, names[0]));
  if (!first.ok()) {
    return first.error();
  }
  qid = first->qid;
  for (size_t i = 1; i < names.size(); i++) {
    auto r = Rpc(TwalkMsg(newfid, names[i]));
    if (!r.ok()) {
      (void)Clunk(newfid);
      return r.error();
    }
    qid = r->qid;
  }
  return qid;
}

Result<Qid> NinepClient::Open(uint32_t fid, uint8_t mode) {
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TopenMsg(fid, mode)));
  return r.qid;
}

Result<Qid> NinepClient::Create(uint32_t fid, const std::string& name, uint32_t perm,
                                uint8_t mode) {
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TcreateMsg(fid, name, perm, mode)));
  return r.qid;
}

Result<Bytes> NinepClient::Read(uint32_t fid, uint64_t offset, uint32_t count) {
  if (count > kMaxData) {
    count = kMaxData;
  }
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TreadMsg(fid, offset, count)));
  return r.data;
}

Result<uint32_t> NinepClient::Write(uint32_t fid, uint64_t offset, const Bytes& data) {
  if (data.size() > kMaxData) {
    return Error("9p write too long");
  }
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TwriteMsg(fid, offset, data)));
  return r.count;
}

Status NinepClient::Clunk(uint32_t fid) {
  auto r = Rpc(TclunkMsg(fid));
  if (!r.ok()) {
    return r.error();
  }
  return Status::Ok();
}

Status NinepClient::Remove(uint32_t fid) {
  auto r = Rpc(TremoveMsg(fid));
  if (!r.ok()) {
    return r.error();
  }
  return Status::Ok();
}

Result<Dir> NinepClient::Stat(uint32_t fid) {
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TstatMsg(fid)));
  return r.stat;
}

Status NinepClient::Wstat(uint32_t fid, const Dir& d) {
  auto r = Rpc(TwstatMsg(fid, d));
  if (!r.ok()) {
    return r.error();
  }
  return Status::Ok();
}

bool NinepClient::ok() {
  QLockGuard guard(lock_);
  return !dead_;
}

}  // namespace plan9

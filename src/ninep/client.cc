#include "src/ninep/client.h"

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/obs/trace.h"

namespace plan9 {

namespace {

// One histogram for every client in the process: RPC round-trip time in
// microseconds, surfaced as ninep.rpc.latency-* in /net/stats.
obs::Histogram& RpcLatencyHistogram() {
  static obs::Histogram* h =
      &obs::MetricsRegistry::Default().HistogramNamed("ninep.rpc.latency");
  return *h;
}

// Span op name per request type (DESIGN.md §12 grammar: "9p.client.<op>").
const char* ClientSpanOp(FcallType t) {
  switch (t) {
    case FcallType::kTnop: return "9p.client.nop";
    case FcallType::kTsession: return "9p.client.session";
    case FcallType::kTflush: return "9p.client.flush";
    case FcallType::kTattach: return "9p.client.attach";
    case FcallType::kTclone: return "9p.client.clone";
    case FcallType::kTwalk: return "9p.client.walk";
    case FcallType::kTclwalk: return "9p.client.clwalk";
    case FcallType::kTopen: return "9p.client.open";
    case FcallType::kTcreate: return "9p.client.create";
    case FcallType::kTread: return "9p.client.read";
    case FcallType::kTwrite: return "9p.client.write";
    case FcallType::kTclunk: return "9p.client.clunk";
    case FcallType::kTremove: return "9p.client.remove";
    case FcallType::kTstat: return "9p.client.stat";
    case FcallType::kTwstat: return "9p.client.wstat";
    default: return "9p.client.other";
  }
}

}  // namespace

NinepClientStats::NinepClientStats() {
  auto& r = obs::MetricsRegistry::Default();
  rpcs.BindParent(&r.CounterNamed("ninep.rpc.count"));
  timeouts.BindParent(&r.CounterNamed("ninep.rpc.timeouts"));
  flushes_sent.BindParent(&r.CounterNamed("ninep.rpc.flushes-sent"));
  flushed.BindParent(&r.CounterNamed("ninep.rpc.flushed"));
  late_replies.BindParent(&r.CounterNamed("ninep.rpc.late-replies"));
  failures.BindParent(&r.CounterNamed("ninep.rpc.failures"));
}

NinepClient::NinepClient(std::unique_ptr<MsgTransport> transport,
                         std::string host)
    : transport_(std::move(transport)),
      host_(std::move(host)),
      reader_("9p.client.reader", [this] { ReaderLoop(); }) {}

NinepClient::~NinepClient() {
  transport_->Close();
  reader_.Join();
}

void NinepClient::ReaderLoop() {
  for (;;) {
    auto raw = transport_->ReadMsg();
    if (!raw.ok() || raw->empty()) {
      std::function<void(const std::string&)> hook;
      std::string why = raw.ok() ? std::string(kErrHungup) : raw.error().message();
      {
        QLockGuard guard(lock_);
        if (FailAllLocked(why)) {
          hook = on_dead_;
        }
      }
      if (hook) {
        hook(why);
      }
      return;
    }
    auto reply = Fcall::Unpack(*raw);
    if (!reply.ok()) {
      P9_LOG(kWarn) << "9p client: " << reply.error().message();
      continue;
    }
    std::shared_ptr<Pending> waiter;
    std::shared_ptr<Pending> chained;
    {
      QLockGuard guard(lock_);
      auto it = pending_.find(reply->tag);
      if (it != pending_.end()) {
        waiter = it->second;
        pending_.erase(it);
        waiter->have_reply = true;
        waiter->reply = reply.take();
        chained = waiter->also_wake;
      }
    }
    if (waiter != nullptr) {
      waiter->done.Wakeup();
      if (chained != nullptr) {
        chained->done.Wakeup();
      }
    } else {
      // Replies for flushed tags whose Rflush already won land here.
      P9_LOG(kDebug) << "9p client: reply for unknown tag";
    }
  }
}

uint16_t NinepClient::AllocTagLocked() {
  uint16_t tag;
  do {
    tag = next_tag_++;
    if (next_tag_ == kNoTag) {
      next_tag_ = 1;
    }
  } while (pending_.count(tag) != 0);
  return tag;
}

bool NinepClient::FailAllLocked(const std::string& why) {
  if (dead_) {
    return false;
  }
  dead_ = true;
  death_reason_ = why;
  stats_.failures.Inc();
  for (auto& [tag, waiter] : pending_) {
    waiter->have_reply = true;
    waiter->reply = RerrorMsg(tag, why);
    waiter->done.Wakeup();
  }
  pending_.clear();
  return true;
}

Result<Fcall> NinepClient::FlushAndReap(uint16_t oldtag, std::shared_ptr<Pending> waiter,
                                        std::chrono::milliseconds deadline) {
  // Half of the flush dance runs without the lock (transport writes block);
  // the waiter stays registered in pending_ throughout so a late reply is
  // matched to it, never to a recycled tag.
  auto flushw = std::make_shared<Pending>();
  uint16_t flush_tag;
  {
    QLockGuard guard(lock_);
    if (waiter->have_reply) {
      return waiter->reply;  // lost the race: the reply just landed
    }
    stats_.timeouts.Inc();
    flush_tag = AllocTagLocked();
    pending_[flush_tag] = flushw;
    waiter->also_wake = flushw;
  }
  Fcall tf = TflushMsg(oldtag);
  tf.tag = flush_tag;
  auto packed = tf.Pack();
  Status sent = packed.ok() ? transport_->WriteMsg(std::move(*packed)) : packed.error();
  std::function<void(const std::string&)> hook;
  std::string hook_why;
  Result<Fcall> out = Error(std::string(kErrTimedOut));
  {
    QLockGuard guard(lock_);
    if (!sent.ok()) {
      if (FailAllLocked(StrFormat("9p flush failed: %s", sent.error().message().c_str()))) {
        hook = on_dead_;
        hook_why = death_reason_;
      }
    } else {
      stats_.flushes_sent.Inc();
      // Wait for whichever the server sends first: the old reply (it beat
      // the flush) or the Rflush (the RPC is officially dead).
      (void)flushw->done.SleepFor(lock_, deadline, [&]() REQUIRES(lock_) {
        return flushw->have_reply || waiter->have_reply;
      });
    }
    waiter->also_wake = nullptr;
    if (waiter->have_reply) {
      // The original reply won (or FailAll stamped an error into it).  The
      // orphan Rflush, if still owed, is consumed by ReaderLoop against the
      // still-registered flush tag.
      if (!dead_) {
        stats_.late_replies.Inc();
      }
      out = waiter->reply;
    } else if (flushw->have_reply) {
      // Rflush confirmed: the server will never answer oldtag.  Reap it so
      // the tag can be reused.
      stats_.flushed.Inc();
      pending_.erase(oldtag);
      out = Error(std::string(kErrTimedOut));
    } else {
      // Neither the RPC nor its flush was answered: the connection is gone.
      pending_.erase(oldtag);
      pending_.erase(flush_tag);
      if (FailAllLocked("9p rpc timed out (flush unanswered)")) {
        hook = on_dead_;
        hook_why = death_reason_;
      }
      out = Error(std::string(kErrTimedOut));
    }
  }
  if (hook) {
    hook(hook_why);
  }
  return out;
}

Result<Fcall> NinepClient::Rpc(Fcall tx) {
  // Each RPC is a span: a child of the caller's context when one is active
  // (an exportfs relay, a traced application), otherwise a fresh root if the
  // sampler picks it.  The context rides to the server as a message trailer,
  // stamped per outstanding tag.
  obs::ScopedSpan span(ClientSpanOp(tx.type), host_,
                       obs::ScopedSpan::kRootAtEntry);
  if (span.active()) {
    tx.trace = span.context();
  }
  auto started = std::chrono::steady_clock::now();
  auto waiter = std::make_shared<Pending>();
  std::chrono::milliseconds deadline{0};
  {
    QLockGuard guard(lock_);
    if (dead_) {
      return Error(death_reason_);
    }
    stats_.rpcs.Inc();
    tx.tag = AllocTagLocked();
    pending_[tx.tag] = waiter;
    deadline = rpc_timeout_;
  }
  auto packed = tx.Pack();
  if (!packed.ok()) {
    QLockGuard guard(lock_);
    pending_.erase(tx.tag);
    return packed.error();
  }
  Status sent = transport_->WriteMsg(std::move(*packed));
  if (!sent.ok()) {
    QLockGuard guard(lock_);
    pending_.erase(tx.tag);
    return sent.error();
  }
  bool timed_out = false;
  {
    QLockGuard guard(lock_);
    if (deadline.count() <= 0) {
      waiter->done.Sleep(lock_, [&]() REQUIRES(lock_) { return waiter->have_reply; });
    } else {
      timed_out = !waiter->done.SleepFor(
          lock_, deadline, [&]() REQUIRES(lock_) { return waiter->have_reply; });
      timed_out = timed_out && !waiter->have_reply;
    }
  }
  Result<Fcall> reply = Error(std::string(kErrTimedOut));
  if (timed_out) {
    reply = FlushAndReap(tx.tag, waiter, deadline);
    if (!reply.ok()) {
      return reply.error();
    }
  } else {
    reply = waiter->reply;
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - started);
  RpcLatencyHistogram().Record(static_cast<uint64_t>(elapsed.count()));
  P9_TRACE(obs::TraceKind::kNinep, "9p.client",
           StrFormat("%s tag %u -> %s", FcallTypeName(tx.type), tx.tag,
                     FcallTypeName(reply->type)),
           tx.tag, static_cast<uint64_t>(elapsed.count()));
  if (reply->type == FcallType::kRerror) {
    return Error(reply->ename);
  }
  // Sanity: reply type must be request type + 1.
  if (static_cast<uint8_t>(reply->type) != static_cast<uint8_t>(tx.type) + 1) {
    return Error(StrFormat("mismatched 9p reply: %s for %s",
                           FcallTypeName(reply->type), FcallTypeName(tx.type)));
  }
  return reply;
}

void NinepClient::SetRpcTimeout(std::chrono::milliseconds timeout) {
  QLockGuard guard(lock_);
  rpc_timeout_ = timeout;
}

void NinepClient::OnDead(std::function<void(const std::string&)> hook) {
  QLockGuard guard(lock_);
  on_dead_ = std::move(hook);
}

uint32_t NinepClient::AllocFid() {
  QLockGuard guard(lock_);
  return next_fid_++;
}

Status NinepClient::Session() {
  auto r = Rpc(TsessionMsg());
  if (!r.ok()) {
    return r.error();
  }
  return Status::Ok();
}

Result<Qid> NinepClient::Attach(uint32_t fid, const std::string& uname,
                                const std::string& aname) {
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TattachMsg(fid, uname, aname)));
  return r.qid;
}

Result<Qid> NinepClient::Walk(uint32_t fid, const std::string& name) {
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TwalkMsg(fid, name)));
  return r.qid;
}

Result<Qid> NinepClient::CloneWalk(uint32_t fid, uint32_t newfid,
                                   const std::vector<std::string>& names) {
  Qid qid{};
  if (names.empty()) {
    P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TcloneMsg(fid, newfid)));
    (void)r;
    return qid;
  }
  // First element rides the clwalk; the rest are plain walks on newfid.
  auto first = Rpc(TclwalkMsg(fid, newfid, names[0]));
  if (!first.ok()) {
    return first.error();
  }
  qid = first->qid;
  for (size_t i = 1; i < names.size(); i++) {
    auto r = Rpc(TwalkMsg(newfid, names[i]));
    if (!r.ok()) {
      (void)Clunk(newfid);
      return r.error();
    }
    qid = r->qid;
  }
  return qid;
}

Result<Qid> NinepClient::Open(uint32_t fid, uint8_t mode) {
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TopenMsg(fid, mode)));
  return r.qid;
}

Result<Qid> NinepClient::Create(uint32_t fid, const std::string& name, uint32_t perm,
                                uint8_t mode) {
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TcreateMsg(fid, name, perm, mode)));
  return r.qid;
}

Result<Bytes> NinepClient::Read(uint32_t fid, uint64_t offset, uint32_t count) {
  if (count > kMaxData) {
    count = kMaxData;
  }
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TreadMsg(fid, offset, count)));
  return r.data;
}

Result<uint32_t> NinepClient::Write(uint32_t fid, uint64_t offset, const Bytes& data) {
  if (data.size() > kMaxData) {
    return Error("9p write too long");
  }
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TwriteMsg(fid, offset, data)));
  return r.count;
}

Status NinepClient::Clunk(uint32_t fid) {
  auto r = Rpc(TclunkMsg(fid));
  if (!r.ok()) {
    return r.error();
  }
  return Status::Ok();
}

Status NinepClient::Remove(uint32_t fid) {
  auto r = Rpc(TremoveMsg(fid));
  if (!r.ok()) {
    return r.error();
  }
  return Status::Ok();
}

Result<Dir> NinepClient::Stat(uint32_t fid) {
  P9_ASSIGN_OR_RETURN(Fcall r, Rpc(TstatMsg(fid)));
  return r.stat;
}

Status NinepClient::Wstat(uint32_t fid, const Dir& d) {
  auto r = Rpc(TwstatMsg(fid, d));
  if (!r.ok()) {
    return r.error();
  }
  return Status::Ok();
}

bool NinepClient::ok() {
  QLockGuard guard(lock_);
  return !dead_;
}

}  // namespace plan9

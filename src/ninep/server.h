// 9P server framework.
//
// External file servers "use an RPC form" of the protocol (§2.1).  A
// NinepServer speaks 9P over one MsgTransport on behalf of a Vfs.  Requests
// are dispatched to a worker pool — "Exportfs must be multithreaded since
// the system calls open, read and write may block" (§6.1) — with replies
// serialized onto the transport.
#ifndef SRC_NINEP_SERVER_H_
#define SRC_NINEP_SERVER_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/thread_annotations.h"
#include "src/ninep/fcall.h"
#include "src/ninep/transport.h"
#include "src/task/kproc.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"

namespace plan9 {

// A server-side file object.  Implementations: RamFs nodes, synthetic trees
// (SrvFile), exportfs relays.
class Vnode {
 public:
  virtual ~Vnode() = default;

  virtual Qid qid() = 0;
  virtual Result<Dir> Stat() = 0;

  // Walk one component ("." and ".." included).  Only meaningful on dirs.
  virtual Result<std::shared_ptr<Vnode>> Walk(const std::string& name) = 0;

  // Prepare for I/O.  `user` is the attach uname.  MAY_BLOCK: device vnodes
  // (devproto) block in Open on Listen/WaitReady — the reason the server
  // dispatches to a worker pool.
  virtual Status Open(uint8_t mode, const std::string& user) MAY_BLOCK {
    return Status::Ok();
  }

  virtual Result<std::shared_ptr<Vnode>> Create(const std::string& name, uint32_t perm,
                                                uint8_t mode, const std::string& user) {
    return Error(kErrPerm);
  }

  // Directories return packed Dir records (offset/count in bytes, kDirLen
  // aligned); PackDirEntries below helps.  MAY_BLOCK: data-file vnodes wait
  // for stream input / flow control.
  virtual Result<Bytes> Read(uint64_t offset, uint32_t count) MAY_BLOCK = 0;

  virtual Result<uint32_t> Write(uint64_t offset, const Bytes& data) MAY_BLOCK {
    return Error(kErrPerm);
  }

  virtual Status Remove() { return Error(kErrPerm); }
  virtual Status Wstat(const Dir& d) { return Error(kErrPerm); }

  // Last reference via an *opened* fid went away.
  virtual void Close(uint8_t mode) {}
};

class Vfs {
 public:
  virtual ~Vfs() = default;
  virtual Result<std::shared_ptr<Vnode>> Attach(const std::string& uname,
                                                const std::string& aname) = 0;
};

// Helper: serve a directory read from a materialized entry list.
Result<Bytes> PackDirEntries(const std::vector<Dir>& entries, uint64_t offset,
                             uint32_t count);

class NinepServer {
 public:
  // Serves until EOF on the transport; call Shutdown() or destroy to stop.
  // `vfs` must outlive the server.  `host` labels this server's trace spans
  // with the node it runs on ("" in unit tests).
  NinepServer(Vfs* vfs, std::unique_ptr<MsgTransport> transport,
              std::string name = "9p.server", std::string host = "");
  ~NinepServer();

  void Shutdown();
  // Block until the serve loop exits (EOF or Shutdown).
  void Wait() MAY_BLOCK;

 private:
  struct FidState {
    std::shared_ptr<Vnode> node;
    std::string user;
    bool open = false;
    uint8_t open_mode = 0;
  };

  void ReaderLoop();
  void Worker();
  void Dispatch(Fcall req) MAY_BLOCK;
  // Blocks: holds write_lock_ (sleepable) across a flow-controlled WriteMsg.
  void Reply(const Fcall& reply) MAY_BLOCK;
  void ReplyError(uint16_t tag, const std::string& ename) MAY_BLOCK;
  Result<FidState*> GetFidLocked(uint32_t fid) REQUIRES(lock_);

  Vfs* vfs_;
  std::unique_ptr<MsgTransport> transport_;
  std::string host_;
  // Serializes replies onto the transport; never held with lock_ (Reply
  // drops lock_ before packing and writing).  Sleepable: held across
  // WriteMsg, which can block on transport flow control — by design, so
  // concurrent repliers queue behind the stalled frame write.
  QLock write_lock_{"9p.server.write", kSleepableClass};

  QLock lock_{"9p.server"};  // fid table + work queue
  std::map<uint32_t, FidState> fids_ GUARDED_BY(lock_);
  std::deque<Fcall> work_ GUARDED_BY(lock_);
  Rendez work_ready_;
  // Tags whose replies must be suppressed (Tflush).
  std::set<uint16_t> flushed_ GUARDED_BY(lock_);
  std::set<uint16_t> outstanding_ GUARDED_BY(lock_);
  bool stopping_ GUARDED_BY(lock_) = false;

  std::vector<Kproc> workers_;
  Kproc reader_;
};

}  // namespace plan9

#endif  // SRC_NINEP_SERVER_H_

#include "src/ninep/ramfs.h"

#include <algorithm>
#include <vector>

#include "src/base/strings.h"

namespace plan9 {

struct RamFs::Node {
  std::string name;
  std::string uid = "sys";
  std::string gid = "sys";
  uint32_t mode = 0;  // kDmDir for directories
  uint32_t atime = 0;
  uint32_t mtime = 0;
  uint32_t qid_path = 0;
  uint32_t qid_vers = 0;
  Bytes contents;                                     // files
  std::map<std::string, std::shared_ptr<Node>> kids;  // directories
  std::weak_ptr<Node> parent;
  bool removed = false;

  bool IsDir() const { return (mode & kDmDir) != 0; }
  Qid qid() const {
    return Qid{qid_path | (IsDir() ? kQidDirBit : 0), qid_vers};
  }
  Dir DirEntry() const {
    Dir d;
    d.name = name;
    d.uid = uid;
    d.gid = gid;
    d.qid = qid();
    d.mode = mode;
    d.atime = atime;
    d.mtime = mtime;
    d.length = IsDir() ? 0 : contents.size();
    d.type = 'r';
    return d;
  }
};

namespace {

class RamVnode : public Vnode {
 public:
  RamVnode(RamFs* fs, std::shared_ptr<RamFs::Node> node)
      : fs_(fs), node_(std::move(node)) {}

  Qid qid() override {
    QLockGuard guard(fs_->lock_);
    return node_->qid();
  }

  Result<Dir> Stat() override {
    QLockGuard guard(fs_->lock_);
    return node_->DirEntry();
  }

  Result<std::shared_ptr<Vnode>> Walk(const std::string& name) override {
    QLockGuard guard(fs_->lock_);
    if (!node_->IsDir()) {
      return Error(kErrNotDir);
    }
    if (name == ".") {
      return std::shared_ptr<Vnode>(std::make_shared<RamVnode>(fs_, node_));
    }
    if (name == "..") {
      auto parent = node_->parent.lock();
      return std::shared_ptr<Vnode>(
          std::make_shared<RamVnode>(fs_, parent != nullptr ? parent : node_));
    }
    auto it = node_->kids.find(name);
    if (it == node_->kids.end()) {
      return Error(kErrNotExist);
    }
    return std::shared_ptr<Vnode>(std::make_shared<RamVnode>(fs_, it->second));
  }

  Status Open(uint8_t mode, const std::string& user) override {
    QLockGuard guard(fs_->lock_);
    if (node_->removed) {
      return Error(kErrNotExist);
    }
    if ((mode & kOTrunc) != 0 && !node_->IsDir()) {
      node_->contents.clear();
      node_->qid_vers++;
    }
    if (node_->IsDir() && (mode & 3) != kORead) {
      return Error(kErrIsDir);
    }
    return Status::Ok();
  }

  Result<std::shared_ptr<Vnode>> Create(const std::string& name, uint32_t perm,
                                        uint8_t mode, const std::string& user) override {
    QLockGuard guard(fs_->lock_);
    if (!node_->IsDir()) {
      return Error(kErrNotDir);
    }
    if (name.empty() || name == "." || name == ".." ||
        name.find('/') != std::string::npos || name.size() >= kNameLen) {
      return Error("bad file name");
    }
    if (node_->kids.count(name) != 0) {
      return Error(kErrExists);
    }
    auto kid = std::make_shared<RamFs::Node>();
    kid->name = name;
    kid->uid = user.empty() ? "sys" : user;
    kid->gid = kid->uid;
    kid->mode = perm;
    kid->qid_path = fs_->next_path_++;
    kid->parent = node_;
    node_->kids[name] = kid;
    node_->qid_vers++;
    return std::shared_ptr<Vnode>(std::make_shared<RamVnode>(fs_, kid));
  }

  Result<Bytes> Read(uint64_t offset, uint32_t count) override {
    QLockGuard guard(fs_->lock_);
    if (node_->IsDir()) {
      std::vector<Dir> entries;
      for (auto& [name, kid] : node_->kids) {
        entries.push_back(kid->DirEntry());
      }
      return PackDirEntries(entries, offset, count);
    }
    if (offset >= node_->contents.size()) {
      return Bytes{};
    }
    size_t n = std::min<size_t>(count, node_->contents.size() - offset);
    return Bytes(node_->contents.begin() + static_cast<long>(offset),
                 node_->contents.begin() + static_cast<long>(offset + n));
  }

  Result<uint32_t> Write(uint64_t offset, const Bytes& data) override {
    QLockGuard guard(fs_->lock_);
    if (node_->IsDir()) {
      return Error(kErrIsDir);
    }
    if (node_->removed) {
      return Error(kErrNotExist);
    }
    if ((node_->mode & kDmAppend) != 0) {
      offset = node_->contents.size();
    }
    if (offset + data.size() > node_->contents.size()) {
      node_->contents.resize(offset + data.size());
    }
    std::copy(data.begin(), data.end(),
              node_->contents.begin() + static_cast<long>(offset));
    node_->qid_vers++;
    node_->mtime++;
    return static_cast<uint32_t>(data.size());
  }

  Status Remove() override {
    QLockGuard guard(fs_->lock_);
    auto parent = node_->parent.lock();
    if (parent == nullptr) {
      return Error("cannot remove root");
    }
    if (node_->IsDir() && !node_->kids.empty()) {
      return Error("directory not empty");
    }
    parent->kids.erase(node_->name);
    parent->qid_vers++;
    node_->removed = true;
    return Status::Ok();
  }

  Status Wstat(const Dir& d) override {
    QLockGuard guard(fs_->lock_);
    if (!d.name.empty() && d.name != node_->name) {
      auto parent = node_->parent.lock();
      if (parent == nullptr) {
        return Error("cannot rename root");
      }
      if (parent->kids.count(d.name) != 0) {
        return Error(kErrExists);
      }
      parent->kids.erase(node_->name);
      node_->name = d.name;
      parent->kids[d.name] = node_;
    }
    if (d.mode != 0xffffffffu && d.mode != 0) {
      // Keep the directory bit honest.
      node_->mode = (node_->mode & kDmDir) | (d.mode & ~kDmDir);
    }
    node_->qid_vers++;
    return Status::Ok();
  }

 private:
  RamFs* fs_;
  std::shared_ptr<RamFs::Node> node_;
};

}  // namespace

RamFs::RamFs() {
  root_ = std::make_shared<Node>();
  root_->name = "/";
  root_->mode = kDmDir | 0777;
  root_->qid_path = next_path_++;
}

RamFs::~RamFs() = default;

Result<std::shared_ptr<Vnode>> RamFs::Attach(const std::string& uname,
                                             const std::string& aname) {
  return std::shared_ptr<Vnode>(std::make_shared<RamVnode>(this, root_));
}

Status RamFs::MkdirAll(const std::string& path) {
  std::shared_ptr<Vnode> cur = Attach("sys", "").take();
  for (auto& part : GetFields(path, "/")) {
    auto next = cur->Walk(part);
    if (next.ok()) {
      cur = next.take();
      continue;
    }
    auto made = cur->Create(part, kDmDir | 0775, kORead, "sys");
    if (!made.ok()) {
      return made.error();
    }
    cur = made.take();
  }
  return Status::Ok();
}

Status RamFs::WriteFile(const std::string& path, std::string_view contents) {
  auto parts = GetFields(path, "/");
  if (parts.empty()) {
    return Error(kErrBadArg);
  }
  std::string dir = Join(std::vector<std::string>(parts.begin(), parts.end() - 1), "/");
  if (!dir.empty()) {
    P9_RETURN_IF_ERROR(MkdirAll(dir));
  }
  std::shared_ptr<Vnode> cur = Attach("sys", "").take();
  for (size_t i = 0; i + 1 < parts.size(); i++) {
    P9_ASSIGN_OR_RETURN(cur, cur->Walk(parts[i]));
  }
  auto existing = cur->Walk(parts.back());
  std::shared_ptr<Vnode> file;
  if (existing.ok()) {
    file = existing.take();
    P9_RETURN_IF_ERROR(file->Open(kOWrite | kOTrunc, "sys"));
  } else {
    P9_ASSIGN_OR_RETURN(file, cur->Create(parts.back(), 0664, kOWrite, "sys"));
  }
  auto n = file->Write(0, ToBytes(contents));
  if (!n.ok()) {
    return n.error();
  }
  return Status::Ok();
}

Result<std::string> RamFs::ReadFileText(const std::string& path) {
  std::shared_ptr<Vnode> cur = Attach("sys", "").take();
  for (auto& part : GetFields(path, "/")) {
    P9_ASSIGN_OR_RETURN(cur, cur->Walk(part));
  }
  std::string out;
  uint64_t offset = 0;
  for (;;) {
    auto chunk = cur->Read(offset, kMaxData);
    if (!chunk.ok()) {
      return chunk.error();
    }
    if (chunk->empty()) {
      break;
    }
    out.append(chunk->begin(), chunk->end());
    offset += chunk->size();
  }
  return out;
}

}  // namespace plan9

// Message transports for 9P.
//
// 9P "assumes messages arrive reliably and in sequence and that delimiters
// between messages are preserved.  When a protocol does not meet these
// requirements (for example, TCP does not preserve delimiters) we provide
// mechanisms to marshal messages before handing them to the system."
//
//   * StreamMsgTransport — over a delimiter-preserving Stream (pipes, IL,
//     URP/Datakit, Cyclone): one delimited write per message, no framing.
//   * FramedMsgTransport — over a byte stream (TCP): each message carries a
//     4-byte little-endian length prefix (the marshal mechanism).
//   * PipeTransport — an in-process bidirectional queue pair, used to mount
//     kernel-resident user-level servers without a network.
#ifndef SRC_NINEP_TRANSPORT_H_
#define SRC_NINEP_TRANSPORT_H_

#include <functional>
#include <memory>
#include <utility>

#include "src/base/block_annotations.h"
#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/base/thread_annotations.h"
#include "src/stream/queue.h"
#include "src/stream/stream.h"

namespace plan9 {

class MsgTransport {
 public:
  virtual ~MsgTransport() = default;

  // Blocking read of one whole 9P message.  Empty bytes = EOF/hangup.
  virtual Result<Bytes> ReadMsg() P9_HOT_PATH MAY_BLOCK = 0;
  // Blocking: every transport can flow-control (queue limits, protocol
  // windows).  Callers may hold only sleepable locks (9p.server.write).
  virtual Status WriteMsg(Bytes msg) P9_HOT_PATH MAY_BLOCK = 0;
  virtual void Close() = 0;
};

// Over a Stream that preserves delimiters.  Does not own the stream.
class StreamMsgTransport : public MsgTransport {
 public:
  explicit StreamMsgTransport(Stream* stream) : stream_(stream) {}

  Result<Bytes> ReadMsg() override P9_HOT_PATH MAY_BLOCK {
    return stream_->ReadMessage();
  }
  Status WriteMsg(Bytes msg) override P9_HOT_PATH MAY_BLOCK {
    // The caller's serialization buffer becomes the block payload.
    return stream_->WriteBlock(AllocDataBlock(std::move(msg), /*delim=*/true));
  }
  void Close() override { stream_->Hangup(); }

 private:
  Stream* stream_;
};

// Over a byte-oriented channel: reader/writer callbacks (e.g. the data file
// of a TCP conversation).  Adds/strips the length prefix.
class FramedMsgTransport : public MsgTransport {
 public:
  // read: fill up to n bytes, return count (0 = EOF).  write: all-or-error.
  using ReadFn = std::function<Result<size_t>(uint8_t* buf, size_t n)>;
  using WriteFn = std::function<Status(const uint8_t* data, size_t n)>;
  using CloseFn = std::function<void()>;

  FramedMsgTransport(ReadFn read, WriteFn write, CloseFn close)
      : read_(std::move(read)), write_(std::move(write)), close_(std::move(close)) {}

  Result<Bytes> ReadMsg() override P9_HOT_PATH;
  Status WriteMsg(Bytes msg) override P9_HOT_PATH;
  void Close() override {
    if (close_) {
      close_();
    }
  }

 private:
  // Read exactly n bytes; false at EOF before any byte.
  Result<bool> ReadFull(uint8_t* buf, size_t n);

  ReadFn read_;
  WriteFn write_;
  CloseFn close_;
};

// An in-process full-duplex message pipe; Make() returns the two ends.
class PipeTransport : public MsgTransport {
 public:
  static std::pair<std::unique_ptr<MsgTransport>, std::unique_ptr<MsgTransport>> Make();

  Result<Bytes> ReadMsg() override P9_HOT_PATH;
  Status WriteMsg(Bytes msg) override P9_HOT_PATH;
  void Close() override;

 private:
  PipeTransport(std::shared_ptr<Queue> rx, std::shared_ptr<Queue> tx)
      : rx_(std::move(rx)), tx_(std::move(tx)) {}

  std::shared_ptr<Queue> rx_;
  std::shared_ptr<Queue> tx_;
};

}  // namespace plan9

#endif  // SRC_NINEP_TRANSPORT_H_

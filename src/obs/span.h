// Causal tracing (the cross-node observability layer, DESIGN.md §12).
//
// A TraceContext is a Dapper-shaped identity for one logical request: a
// 128-bit trace id, the 64-bit id of the currently active span, and a
// sampled flag.  Contexts are created at the edges (Dial, a 9P client RPC
// with no inherited context) by a head-based sampler — the decision is made
// once, at the root, and everything downstream inherits it — and travel:
//
//   * in-process: a thread-local current context.  The simulator's call
//     paths are synchronous (dial -> cs -> devproto ctl; exportfs server
//     worker -> namespace -> next-hop 9P client), so thread-locality is
//     exactly request-locality and no per-layer plumbing is needed;
//   * across the wire: piggybacked on 9P messages as an optional trailer
//     stamped per outstanding tag (see fcall.h) and adopted by the server
//     for the handler's downstream work, so re-exported mounts carry the
//     context through multi-hop import chains;
//   * onto conversations: IL/TCP convs capture the active context at
//     connect/announce so late protocol events (RTT samples) and status
//     lines stay attributable.
//
// Spans are recorded as TraceKind::kSpan events in the flight recorder with
// a fixed, parseable text shape (see stitch.h for the reader):
//
//   B <op> trace=<32 hex> span=<16 hex> parent=<16 hex>
//   E <op> trace=<32 hex> span=<16 hex> parent=<16 hex> us=<n>
//
// The tracing-off cost is one thread-local read and a branch per ScopedSpan;
// nothing is formatted, copied, or locked unless the context is sampled.
#ifndef SRC_OBS_SPAN_H_
#define SRC_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace plan9 {
namespace obs {

struct TraceContext {
  uint64_t trace_hi = 0;  // 128-bit trace id, high half
  uint64_t trace_lo = 0;  //   ... low half
  uint64_t span_id = 0;   // the active span; children parent to it
  bool sampled = false;

  bool active() const { return sampled; }
};

// Process-wide sampler + id generator.  The sample interval is a relaxed
// atomic (`trace sample <n>` via /net/ctl): 0 disables root creation
// entirely, 1 samples every root, N samples 1/N deterministically (a
// counter, not a coin flip, so tests replay).
class Tracer {
 public:
  static Tracer& Default();

  void SetSampleInterval(uint32_t n) {
    interval_.store(n, std::memory_order_relaxed);
  }
  uint32_t sample_interval() const {
    return interval_.load(std::memory_order_relaxed);
  }

  // One head decision; consumed only where a root could start.
  bool ShouldSample() {
    uint32_t n = interval_.load(std::memory_order_relaxed);
    if (n == 0) {
      return false;
    }
    if (n == 1) {
      return true;
    }
    return decisions_.fetch_add(1, std::memory_order_relaxed) % n == 0;
  }

  // Non-zero, well-mixed 64-bit ids (splitmix64 over a counter; no global
  // RNG, so a replayed schedule allocates the same ids).
  uint64_t NextId();

  // The calling thread's current context (inactive by default).
  static const TraceContext& Current();
  static void SetCurrent(const TraceContext& ctx);

 private:
  std::atomic<uint32_t> interval_{0};
  std::atomic<uint64_t> decisions_{0};
  std::atomic<uint64_t> ids_{0};
};

// RAII span.  `op` must outlive the span (string literals / static tables).
// kChildOnly starts a span only under an already-sampled context;
// kRootAtEntry additionally consults the sampler when there is none — use
// it at the request edges (Dial, 9P client RPC), kChildOnly everywhere
// else.  While active, the span installs itself as the thread's current
// context and restores the previous one on destruction.
class ScopedSpan {
 public:
  enum Mode { kChildOnly, kRootAtEntry };

  ScopedSpan(const char* op, const std::string& host, Mode mode = kChildOnly);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  // The context to propagate (span_id = this span); inactive if unsampled.
  const TraceContext& context() const { return ctx_; }

 private:
  const char* op_;
  bool active_ = false;
  TraceContext ctx_;
  TraceContext prev_;
  uint64_t parent_ = 0;
  std::string host_;
  std::chrono::steady_clock::time_point begin_;
};

// Install a wire-received context as the thread's current context for the
// scope (the 9P server's adoption point): downstream spans and next-hop
// RPCs parent to the sender's span.  A no-op for unsampled contexts.
class SpanAdoption {
 public:
  explicit SpanAdoption(const TraceContext& wire);
  ~SpanAdoption();
  SpanAdoption(const SpanAdoption&) = delete;
  SpanAdoption& operator=(const SpanAdoption&) = delete;

 private:
  bool installed_ = false;
  TraceContext prev_;
};

// A point span measured elsewhere (e.g. one IL RTT sample): emits a single
// end record of `us` microseconds under the given trace/parent.  No-op when
// the trace id is zero or span recording is disabled.
void EmitPointSpan(const char* op, const std::string& host, uint64_t trace_hi,
                   uint64_t trace_lo, uint64_t parent, uint64_t us);

}  // namespace obs
}  // namespace plan9

#endif  // SRC_OBS_SPAN_H_

#include "src/obs/stitch.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "src/base/strings.h"

namespace plan9 {
namespace obs {
namespace {

// "key=value" -> value; empty when the token is not that key.
std::string_view ValueFor(std::string_view token, std::string_view key) {
  if (token.size() <= key.size() + 1 || token.substr(0, key.size()) != key ||
      token[key.size()] != '=') {
    return {};
  }
  return token.substr(key.size() + 1);
}

uint64_t HexField(std::string_view v) {
  return std::strtoull(std::string(v).c_str(), nullptr, 16);
}

}  // namespace

std::vector<SpanRecord> ParseSpans(const std::string& text) {
  // Merge by (trace, span): B fills begin_s, E fills us; duplicates (the
  // same recorder read through several mounts) are naturally idempotent.
  std::map<std::pair<std::string, uint64_t>, SpanRecord> merged;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    auto f = Tokenize(line);
    // "<sec.usec> span <host> B|E <op> trace=.. span=.. parent=.. [us=..]"
    if (f.size() < 8 || f[1] != "span" || (f[3] != "B" && f[3] != "E")) {
      continue;
    }
    SpanRecord rec;
    rec.host = f[2];
    rec.op = f[4];
    double ts = std::strtod(f[0].c_str(), nullptr);
    bool is_end = f[3] == "E";
    uint64_t us = 0;
    for (size_t i = 5; i < f.size(); i++) {
      if (auto v = ValueFor(f[i], "trace"); !v.empty()) {
        rec.trace = std::string(v);
      } else if (auto s = ValueFor(f[i], "span"); !s.empty()) {
        rec.span = HexField(s);
      } else if (auto p = ValueFor(f[i], "parent"); !p.empty()) {
        rec.parent = HexField(p);
      } else if (auto u = ValueFor(f[i], "us"); !u.empty()) {
        us = std::strtoull(std::string(u).c_str(), nullptr, 10);
      }
    }
    if (rec.trace.empty() || rec.span == 0) {
      continue;
    }
    auto& slot = merged[{rec.trace, rec.span}];
    if (slot.span == 0) {
      slot = rec;
      slot.begin_s = ts;
    }
    if (is_end) {
      slot.ended = true;
      slot.us = us;
    } else {
      slot.begun = true;
      slot.begin_s = ts;
    }
  }
  std::vector<SpanRecord> out;
  out.reserve(merged.size());
  for (auto& [key, rec] : merged) {
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<SpanTree> StitchSpans(const std::vector<SpanRecord>& spans) {
  std::map<std::string, SpanTree> by_trace;
  for (const auto& rec : spans) {
    auto& tree = by_trace[rec.trace];
    tree.trace = rec.trace;
    tree.spans.push_back(rec);
  }
  std::vector<SpanTree> out;
  for (auto& [trace, tree] : by_trace) {
    std::sort(tree.spans.begin(), tree.spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.begin_s < b.begin_s;
              });
    std::set<uint64_t> ids;
    for (const auto& s : tree.spans) {
      ids.insert(s.span);
    }
    for (const auto& s : tree.spans) {
      if (s.parent == 0) {
        tree.roots.push_back(s.span);
      } else if (ids.count(s.parent) == 0) {
        tree.orphans.push_back(s.span);
      }
      if (s.begun && !s.ended) {
        tree.unfinished.push_back(s.span);
      }
    }
    out.push_back(std::move(tree));
  }
  std::sort(out.begin(), out.end(), [](const SpanTree& a, const SpanTree& b) {
    double at = a.spans.empty() ? 0 : a.spans.front().begin_s;
    double bt = b.spans.empty() ? 0 : b.spans.front().begin_s;
    return at < bt;
  });
  return out;
}

namespace {

using Children = std::map<uint64_t, std::vector<const SpanRecord*>>;

Children ChildIndex(const SpanTree& tree) {
  Children kids;
  for (const auto& s : tree.spans) {
    kids[s.parent].push_back(&s);
  }
  return kids;
}

const SpanRecord* FindSpan(const SpanTree& tree, uint64_t id) {
  for (const auto& s : tree.spans) {
    if (s.span == id) {
      return &s;
    }
  }
  return nullptr;
}

void RenderNode(const SpanTree& tree, const Children& kids,
                const SpanRecord& s, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += StrFormat("%s @%s", s.op.c_str(), s.host.c_str());
  if (s.ended) {
    *out += StrFormat(" %lluus", (unsigned long long)s.us);
  }
  if (s.begun && !s.ended) {
    *out += " UNFINISHED";
  }
  bool orphan = std::find(tree.orphans.begin(), tree.orphans.end(), s.span) !=
                tree.orphans.end();
  if (orphan) {
    *out += StrFormat(" ORPHAN(parent=%016llx)", (unsigned long long)s.parent);
  }
  *out += "\n";
  auto it = kids.find(s.span);
  if (it != kids.end()) {
    for (const SpanRecord* child : it->second) {
      RenderNode(tree, kids, *child, depth + 1, out);
    }
  }
}

int DepthFrom(const Children& kids, uint64_t id) {
  int best = 0;
  auto it = kids.find(id);
  if (it != kids.end()) {
    for (const SpanRecord* child : it->second) {
      best = std::max(best, DepthFrom(kids, child->span));
    }
  }
  return best + 1;
}

}  // namespace

std::string RenderSpanTree(const SpanTree& tree) {
  std::string out = StrFormat("trace %s (%zu spans)\n", tree.trace.c_str(),
                              tree.spans.size());
  Children kids = ChildIndex(tree);
  for (uint64_t root : tree.roots) {
    if (const SpanRecord* s = FindSpan(tree, root)) {
      RenderNode(tree, kids, *s, 1, &out);
    }
  }
  // Orphans still render, flagged, so a truncated ring is inspectable.
  for (uint64_t orphan : tree.orphans) {
    if (const SpanRecord* s = FindSpan(tree, orphan)) {
      RenderNode(tree, kids, *s, 1, &out);
    }
  }
  return out;
}

int SpanTreeDepth(const SpanTree& tree) {
  Children kids = ChildIndex(tree);
  int best = 0;
  for (uint64_t root : tree.roots) {
    best = std::max(best, DepthFrom(kids, root));
  }
  for (uint64_t orphan : tree.orphans) {
    best = std::max(best, DepthFrom(kids, orphan));
  }
  return best;
}

std::string CriticalPath(const SpanTree& tree) {
  Children kids = ChildIndex(tree);
  const SpanRecord* at = nullptr;
  for (uint64_t root : tree.roots) {
    const SpanRecord* s = FindSpan(tree, root);
    if (s != nullptr && (at == nullptr || s->us > at->us)) {
      at = s;
    }
  }
  std::string out;
  while (at != nullptr) {
    if (!out.empty()) {
      out += " -> ";
    }
    out += StrFormat("%s@%s %lluus", at->op.c_str(), at->host.c_str(),
                     (unsigned long long)at->us);
    const SpanRecord* next = nullptr;
    auto it = kids.find(at->span);
    if (it != kids.end()) {
      for (const SpanRecord* child : it->second) {
        if (next == nullptr || child->us > next->us) {
          next = child;
        }
      }
    }
    at = next;
  }
  return out;
}

std::string PerHopSummary(const std::vector<SpanTree>& trees) {
  struct Hop {
    uint64_t us = 0;
    uint64_t count = 0;
  };
  std::map<std::string, Hop> hops;
  for (const auto& tree : trees) {
    for (const auto& s : tree.spans) {
      auto& h = hops[s.host];
      h.us += s.us;
      h.count++;
    }
  }
  std::string out;
  for (const auto& [host, h] : hops) {
    out += StrFormat("%-12s %10llu us %8llu spans\n", host.c_str(),
                     (unsigned long long)h.us, (unsigned long long)h.count);
  }
  return out;
}

}  // namespace obs
}  // namespace plan9

#include "src/obs/span.h"

#include "src/base/strings.h"
#include "src/obs/trace.h"

namespace plan9 {
namespace obs {
namespace {

thread_local TraceContext g_current;

const char* SrcHost(const std::string& host) {
  return host.empty() ? "-" : host.c_str();
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer;
  return *tracer;
}

uint64_t Tracer::NextId() {
  uint64_t id;
  do {
    id = SplitMix64(ids_.fetch_add(1, std::memory_order_relaxed));
  } while (id == 0);
  return id;
}

const TraceContext& Tracer::Current() { return g_current; }

void Tracer::SetCurrent(const TraceContext& ctx) { g_current = ctx; }

ScopedSpan::ScopedSpan(const char* op, const std::string& host, Mode mode)
    : op_(op) {
  if (g_current.sampled) {
    // Child of the active span: same trace, fresh span id.
    prev_ = g_current;
    ctx_.trace_hi = prev_.trace_hi;
    ctx_.trace_lo = prev_.trace_lo;
    parent_ = prev_.span_id;
  } else if (mode == kRootAtEntry && Tracer::Default().ShouldSample()) {
    auto& tracer = Tracer::Default();
    prev_ = g_current;
    ctx_.trace_hi = tracer.NextId();
    ctx_.trace_lo = tracer.NextId();
    parent_ = 0;
  } else {
    return;  // unsampled: the branch is the whole cost
  }
  active_ = true;
  ctx_.span_id = Tracer::Default().NextId();
  ctx_.sampled = true;
  host_ = host;
  g_current = ctx_;
  begin_ = std::chrono::steady_clock::now();
  auto& fr = FlightRecorder::Default();
  if (fr.enabled(TraceKind::kSpan)) {
    fr.Record(TraceKind::kSpan, SrcHost(host_),
              StrFormat("B %s trace=%016llx%016llx span=%016llx parent=%016llx",
                        op_, (unsigned long long)ctx_.trace_hi,
                        (unsigned long long)ctx_.trace_lo,
                        (unsigned long long)ctx_.span_id,
                        (unsigned long long)parent_));
  }
}

ScopedSpan::~ScopedSpan() {
  if (!active_) {
    return;
  }
  g_current = prev_;
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - begin_);
  auto& fr = FlightRecorder::Default();
  if (fr.enabled(TraceKind::kSpan)) {
    fr.Record(
        TraceKind::kSpan, SrcHost(host_),
        StrFormat("E %s trace=%016llx%016llx span=%016llx parent=%016llx us=%llu",
                  op_, (unsigned long long)ctx_.trace_hi,
                  (unsigned long long)ctx_.trace_lo,
                  (unsigned long long)ctx_.span_id,
                  (unsigned long long)parent_,
                  (unsigned long long)us.count()));
  }
}

SpanAdoption::SpanAdoption(const TraceContext& wire) {
  if (!wire.sampled) {
    return;
  }
  installed_ = true;
  prev_ = g_current;
  g_current = wire;
}

SpanAdoption::~SpanAdoption() {
  if (installed_) {
    g_current = prev_;
  }
}

void EmitPointSpan(const char* op, const std::string& host, uint64_t trace_hi,
                   uint64_t trace_lo, uint64_t parent, uint64_t us) {
  if (trace_hi == 0 && trace_lo == 0) {
    return;
  }
  auto& fr = FlightRecorder::Default();
  if (!fr.enabled(TraceKind::kSpan)) {
    return;
  }
  uint64_t id = Tracer::Default().NextId();
  fr.Record(
      TraceKind::kSpan, SrcHost(host),
      StrFormat("E %s trace=%016llx%016llx span=%016llx parent=%016llx us=%llu",
                op, (unsigned long long)trace_hi, (unsigned long long)trace_lo,
                (unsigned long long)id, (unsigned long long)parent,
                (unsigned long long)us));
}

}  // namespace obs
}  // namespace plan9

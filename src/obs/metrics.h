// Unified metrics registry (observability tentpole).
//
// The paper's network devices are legible because they export themselves as
// files: the LANCE driver's `stats` file and every conversation's `status`
// file are the original observability layer (§2, Figure 1).  This module is
// the substrate behind those files: lock-free atomic counters, gauges with
// high-water marks, and log-bucketed latency histograms, registered by
// dotted name ("net.il.resends", "ninep.rpc.latency", "stream.q.depth").
//
// Two-level design: per-object stats structs (one per conversation, segment,
// client...) are built from obs::Counter members whose *parent* is the
// process-wide registry counter of the same family.  An increment is two
// relaxed atomic adds — one for the local `stats` file, one for the global
// `/net/stats` aggregate.  Registry entries are created once and never move,
// so handed-out references stay valid for the life of the process.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/base/thread_annotations.h"
#include "src/task/qlock.h"

namespace plan9 {
namespace obs {

// A monotonically increasing event count.  Incrementing is wait-free; an
// optional parent receives every increment so registry-level aggregates stay
// in sync with per-object counts.  Reset() clears only this counter (used
// when a conversation is recycled), never the parent: the aggregate counts
// events, not live objects.
class Counter {
 public:
  Counter() = default;
  explicit Counter(Counter* parent) : parent_(parent) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void BindParent(Counter* parent) { parent_ = parent; }

  void Inc(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
    if (parent_ != nullptr) {
      parent_->Inc(n);
    }
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
  Counter* parent_ = nullptr;
};

// A point-in-time level (queue depth, window size) with a high-water mark.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    RaiseHighWater(v);
  }

  void Add(int64_t delta) {
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    RaiseHighWater(now);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t high_water() const { return high_water_.load(std::memory_order_relaxed); }

  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    high_water_.store(0, std::memory_order_relaxed);
  }

 private:
  void RaiseHighWater(int64_t v) {
    int64_t hw = high_water_.load(std::memory_order_relaxed);
    while (v > hw &&
           !high_water_.compare_exchange_weak(hw, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> high_water_{0};
};

// A log-bucketed histogram for latency samples (microseconds by convention).
// Bucket b holds samples whose bit width is b: bucket 0 holds the value 0,
// bucket 1 holds 1, bucket 2 holds 2..3, bucket b (b >= 1) holds
// [2^(b-1), 2^b).  Recording is wait-free; snapshots are read relaxed and
// may be slightly torn under concurrent writers, which is fine for
// observability (counts never go backward).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Bucket index a value lands in.
  static int BucketFor(uint64_t v);
  // Inclusive lower bound of bucket b (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(int b);

  void Record(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(int b) const { return buckets_[b].load(std::memory_order_relaxed); }
  uint64_t mean() const;
  // Upper bound of the bucket containing the p-th percentile sample
  // (0 < p <= 100); 0 when empty.
  uint64_t Percentile(double p) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// The process-wide registry.  Entries are created on first use and live
// forever; lookup takes a lock, so resolve names once (at object
// construction) and keep the reference — never look up on a hot path.
class MetricsRegistry {
 public:
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& CounterNamed(const std::string& name);
  Gauge& GaugeNamed(const std::string& name);
  Histogram& HistogramNamed(const std::string& name);

  // All metrics in the paper's `key value` format, sorted by name.
  // Histograms render as name-count/-sum/-mean/-max/-p50/-p99 lines.
  std::string RenderText();
  // One JSON object {"name": value, ...} for bench snapshots.
  std::string RenderJson();

  // Zero every metric (bench/test isolation); references stay valid.
  void ResetAll();

 private:
  QLock lock_{"obs.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(lock_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(lock_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(lock_);
};

}  // namespace obs
}  // namespace plan9

#endif  // SRC_OBS_METRICS_H_

#include "src/obs/metrics.h"

#include <bit>

#include "src/base/strings.h"

namespace plan9 {
namespace obs {

int Histogram::BucketFor(uint64_t v) {
  return std::bit_width(v);  // 0 -> 0, 1 -> 1, 2..3 -> 2, [2^(b-1), 2^b) -> b
}

uint64_t Histogram::BucketLowerBound(int b) {
  if (b <= 0) {
    return 0;
  }
  return uint64_t{1} << (b - 1);
}

void Histogram::Record(uint64_t v) {
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t m = max_.load(std::memory_order_relaxed);
  while (v > m && !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0 : sum() / n;
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  auto rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; b++) {
    seen += bucket(b);
    if (seen >= rank) {
      // Inclusive upper bound of bucket b.
      return b == 0 ? 0 : (BucketLowerBound(b) << 1) - 1;
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter& MetricsRegistry::CounterNamed(const std::string& name) {
  QLockGuard guard(lock_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GaugeNamed(const std::string& name) {
  QLockGuard guard(lock_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::HistogramNamed(const std::string& name) {
  QLockGuard guard(lock_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

std::string MetricsRegistry::RenderText() {
  QLockGuard guard(lock_);
  std::string out;
  // std::map keeps families sorted; merge the three kinds into one listing.
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%s %llu\n", name.c_str(), (unsigned long long)c->value());
  }
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%s %lld\n", name.c_str(), (long long)g->value());
    out += StrFormat("%s-hiwat %lld\n", name.c_str(), (long long)g->high_water());
  }
  for (const auto& [name, h] : histograms_) {
    out += StrFormat("%s-count %llu\n", name.c_str(), (unsigned long long)h->count());
    out += StrFormat("%s-sum %llu\n", name.c_str(), (unsigned long long)h->sum());
    out += StrFormat("%s-mean %llu\n", name.c_str(), (unsigned long long)h->mean());
    out += StrFormat("%s-max %llu\n", name.c_str(), (unsigned long long)h->max());
    out += StrFormat("%s-p50 %llu\n", name.c_str(), (unsigned long long)h->Percentile(50));
    out += StrFormat("%s-p99 %llu\n", name.c_str(), (unsigned long long)h->Percentile(99));
  }
  return out;
}

std::string MetricsRegistry::RenderJson() {
  QLockGuard guard(lock_);
  std::string out = "{";
  bool first = true;
  auto emit = [&](const std::string& key, unsigned long long v) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += StrFormat("\"%s\":%llu", key.c_str(), v);
  };
  for (const auto& [name, c] : counters_) {
    emit(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    emit(name, (unsigned long long)g->value());
    emit(name + "-hiwat", (unsigned long long)g->high_water());
  }
  for (const auto& [name, h] : histograms_) {
    emit(name + "-count", h->count());
    emit(name + "-sum", h->sum());
    emit(name + "-mean", h->mean());
    emit(name + "-max", h->max());
    emit(name + "-p50", h->Percentile(50));
    emit(name + "-p99", h->Percentile(99));
  }
  out += "}";
  return out;
}

void MetricsRegistry::ResetAll() {
  QLockGuard guard(lock_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

}  // namespace obs
}  // namespace plan9

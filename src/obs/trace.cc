#include "src/obs/trace.h"

#include <cstdlib>

#include "src/base/strings.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace plan9 {
namespace obs {
namespace {

// Events overwritten before any reader rendered them (satellite of ISSUE 9):
// surfaced in /net/stats and netstat so span loss is visible.
Counter& DroppedCounter() {
  static Counter* c =
      &MetricsRegistry::Default().CounterNamed("obs.trace.dropped");
  return *c;
}

}  // namespace

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kBlock:
      return "block";
    case TraceKind::kIl:
      return "il";
    case TraceKind::kTcp:
      return "tcp";
    case TraceKind::kNinep:
      return "9p";
    case TraceKind::kDial:
      return "dial";
    case TraceKind::kFault:
      return "fault";
    case TraceKind::kLog:
      return "log";
    case TraceKind::kChaos:
      return "chaos";
    case TraceKind::kSpan:
      return "span";
    case TraceKind::kAll:
      return "all";
  }
  return "?";
}

std::optional<TraceKind> TraceKindFromName(std::string_view name) {
  static constexpr TraceKind kKinds[] = {
      TraceKind::kBlock, TraceKind::kIl,    TraceKind::kTcp,   TraceKind::kNinep,
      TraceKind::kDial,  TraceKind::kFault, TraceKind::kLog,   TraceKind::kChaos,
      TraceKind::kSpan,  TraceKind::kAll,
  };
  for (TraceKind k : kKinds) {
    if (name == TraceKindName(k)) {
      return k;
    }
  }
  return std::nullopt;
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = new FlightRecorder;
  return *recorder;
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

void FlightRecorder::Record(TraceKind kind, std::string src, std::string text,
                            uint64_t a, uint64_t b) {
  if (!enabled(kind)) {
    return;  // callers may invoke directly, without the P9_TRACE gate
  }
  TraceEvent ev;
  ev.ts = std::chrono::steady_clock::now();
  ev.kind = kind;
  ev.src = std::move(src);
  ev.text = std::move(text);
  ev.a = a;
  ev.b = b;
  QLockGuard guard(lock_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    // The slot being overwritten holds the oldest event, whose sequence
    // number is recorded_ - capacity_; if no reader has rendered that far,
    // the event is lost unseen.
    if (recorded_ - capacity_ >= read_seq_) {
      DroppedCounter().Inc();
    }
    ring_[next_ % capacity_] = std::move(ev);
  }
  next_ = (next_ + 1) % capacity_;
  recorded_++;
}

void FlightRecorder::Enable(uint32_t kinds) {
  mask_.fetch_or(kinds, std::memory_order_relaxed);
}

void FlightRecorder::Disable(uint32_t kinds) {
  mask_.fetch_and(~kinds, std::memory_order_relaxed);
}

Status FlightRecorder::Ctl(std::string_view msg) {
  auto fields = Tokenize(msg);
  if (fields.empty()) {
    return Error("empty ctl message");
  }
  if (fields[0] == "clear") {
    Clear();
    return Status::Ok();
  }
  if (fields[0] == "trace") {
    if (fields.size() == 3 && fields[1] == "sample") {
      char* end = nullptr;
      unsigned long n = std::strtoul(fields[2].c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Error("usage: trace sample <1/n>");
      }
      Tracer::Default().SetSampleInterval(static_cast<uint32_t>(n));
      if (n > 0) {
        Enable(static_cast<uint32_t>(TraceKind::kSpan));
      }
      return Status::Ok();
    }
    if (fields.size() < 2 || (fields[1] != "on" && fields[1] != "off")) {
      return Error("usage: trace on|off [kind...] | trace sample <1/n>");
    }
    bool on = fields[1] == "on";
    uint32_t kinds = 0;
    if (fields.size() == 2) {
      kinds = static_cast<uint32_t>(TraceKind::kAll);
    } else {
      for (size_t i = 2; i < fields.size(); i++) {
        auto k = TraceKindFromName(fields[i]);
        if (!k.has_value()) {
          return Error(StrFormat("unknown trace kind: %s", fields[i].c_str()));
        }
        kinds |= static_cast<uint32_t>(*k);
      }
    }
    if (on) {
      Enable(kinds);
    } else {
      Disable(kinds);
    }
    return Status::Ok();
  }
  return Error(StrFormat("unknown ctl message: %s", fields[0].c_str()));
}

std::string FlightRecorder::RenderText(uint32_t kinds) {
  // Snapshot under the lock, format outside it: text rendering is O(ring)
  // string work, and holding obs.trace across it would stall every hot-path
  // writer behind a slow /net/trace reader.
  std::vector<TraceEvent> snapshot;
  {
    QLockGuard guard(lock_);
    size_t n = ring_.size();
    // Oldest-first: when the ring has wrapped, next_ indexes the oldest slot.
    size_t start = n < capacity_ ? 0 : next_;
    snapshot.reserve(n);
    for (size_t i = 0; i < n; i++) {
      snapshot.push_back(ring_[(start + i) % n]);
    }
    read_seq_ = recorded_;
  }
  std::string out;
  for (const TraceEvent& ev : snapshot) {
    if ((static_cast<uint32_t>(ev.kind) & kinds) == 0) {
      continue;
    }
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(ev.ts - epoch_);
    out += StrFormat("%6lld.%06lld %-5s %s %s",
                     (long long)(us.count() / 1000000),
                     (long long)(us.count() % 1000000), TraceKindName(ev.kind),
                     ev.src.c_str(), ev.text.c_str());
    if (ev.a != 0 || ev.b != 0) {
      out += StrFormat(" %llu", (unsigned long long)ev.a);
    }
    if (ev.b != 0) {
      out += StrFormat(" %llu", (unsigned long long)ev.b);
    }
    out += "\n";
  }
  return out;
}

void FlightRecorder::Clear() {
  QLockGuard guard(lock_);
  ring_.clear();
  next_ = 0;
  read_seq_ = recorded_;
}

size_t FlightRecorder::EventCount() {
  QLockGuard guard(lock_);
  return ring_.size();
}

uint64_t FlightRecorder::Overwritten() {
  QLockGuard guard(lock_);
  return recorded_ - ring_.size();
}

}  // namespace obs
}  // namespace plan9

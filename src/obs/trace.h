// Flight recorder (observability tentpole).
//
// A fixed-size ring buffer of typed trace events: block put/queue, IL
// send/resend/ack/deadman, 9P T/R with latency, dial attempts, fault
// injections, and (optionally) every log line.  Tracing is off by default;
// the enabled-kind mask is a relaxed atomic so the disabled fast path is a
// single load and branch — event text is only formatted when the kind is on
// (use the P9_TRACE macro).  When the ring is full the oldest event is
// overwritten; `overwritten` counts what was lost.
//
// The recorder is per node in deployment terms: a real Plan 9 node is one
// process, so the process-wide Default() instance *is* the node's recorder.
// In multi-node simulations the nodes of a world share it; every event
// carries a source tag ("helix/il/3") so interleaved node activity stays
// attributable.  Readable as text through /net/trace and /net/log (kLog
// events only), controllable through /net/ctl — see devproto.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"
#include "src/base/thread_annotations.h"
#include "src/task/qlock.h"

namespace plan9 {
namespace obs {

enum class TraceKind : uint32_t {
  kBlock = 1u << 0,  // block put / queue transitions
  kIl = 1u << 1,     // IL send/resend/ack/deadman
  kTcp = 1u << 2,    // TCP segment events
  kNinep = 1u << 3,  // 9P T/R tag with latency
  kDial = 1u << 4,   // dial/announce attempts
  kFault = 1u << 5,  // injected faults
  kLog = 1u << 6,    // routed P9_LOG lines
  kChaos = 1u << 7,  // chaos engine: crash/restart/partition/heal/flap
  kSpan = 1u << 8,   // causal-trace span begin/end (src/obs/span.h)
  kAll = 0x1ff,
};

const char* TraceKindName(TraceKind kind);
// "il" -> kIl etc.; "all" -> kAll; nullopt for unknown names.
std::optional<TraceKind> TraceKindFromName(std::string_view name);

struct TraceEvent {
  std::chrono::steady_clock::time_point ts;
  TraceKind kind = TraceKind::kLog;
  std::string src;   // "helix/il/3", "9p.client", ...
  std::string text;  // event-specific detail
  uint64_t a = 0;    // event-specific numbers (latency us, seq, tag...)
  uint64_t b = 0;
};

class FlightRecorder {
 public:
  // Sized for span traffic: a traced chaos scenario emits two records per
  // span across every hop plus per-ack il.rtt points, and the stitcher
  // reports a span whose parent was overwritten as an orphan.
  static constexpr size_t kDefaultCapacity = 16384;

  static FlightRecorder& Default();

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // The disabled fast path: one relaxed load.
  bool enabled(TraceKind kind) const {
    return (mask_.load(std::memory_order_relaxed) & static_cast<uint32_t>(kind)) != 0;
  }

  void Record(TraceKind kind, std::string src, std::string text, uint64_t a = 0,
              uint64_t b = 0);

  void Enable(uint32_t kinds);
  void Disable(uint32_t kinds);
  uint32_t mask() const { return mask_.load(std::memory_order_relaxed); }

  // Ctl grammar (the writable /net/ctl file):
  //   trace on [kind...]    enable all kinds, or just the named ones
  //   trace off [kind...]   disable all kinds, or just the named ones
  //   trace sample <n>      head-sample 1/n traces (0 off, 1 all); a
  //                         non-zero n also enables the span kind
  //   clear                 drop every recorded event
  Status Ctl(std::string_view msg);

  // Events oldest-first, one per line:
  //   <sec.usec> <kind> <src> <text> [a [b]]
  // With a filter, only matching kinds render (log files pass kLog).
  // Formatting happens on a snapshot, outside the ring lock, so a slow
  // reader never stalls hot-path writers.
  std::string RenderText(uint32_t kinds = static_cast<uint32_t>(TraceKind::kAll));

  void Clear();

  size_t capacity() const { return capacity_; }
  size_t EventCount();
  uint64_t Overwritten();

 private:
  const size_t capacity_;
  std::atomic<uint32_t> mask_{0};
  const std::chrono::steady_clock::time_point epoch_;

  QLock lock_{"obs.trace"};
  std::vector<TraceEvent> ring_ GUARDED_BY(lock_);
  size_t next_ GUARDED_BY(lock_) = 0;      // slot the next event lands in
  uint64_t recorded_ GUARDED_BY(lock_) = 0;  // lifetime total
  // Sequence number up to which events have been rendered at least once;
  // overwriting an event past this mark bumps obs.trace.dropped — span loss
  // is counted, never silent.
  uint64_t read_seq_ GUARDED_BY(lock_) = 0;
};

// Record iff the kind is enabled; argument expressions (StrFormat etc.) are
// not evaluated when tracing is off.
#define P9_TRACE(kind, ...)                                          \
  do {                                                               \
    auto& p9_fr = ::plan9::obs::FlightRecorder::Default();           \
    if (p9_fr.enabled(kind)) {                                       \
      p9_fr.Record(kind, __VA_ARGS__);                               \
    }                                                                \
  } while (0)

}  // namespace obs
}  // namespace plan9

#endif  // SRC_OBS_TRACE_H_

// Span stitching: from flight-recorder text to per-trace span trees.
//
// The reader half of causal tracing (DESIGN.md §12).  ParseSpans scans
// rendered /net/trace text for kSpan lines (any other kinds are ignored, so
// a mixed dump — chaos schedules, IL events, log lines — parses fine),
// merges each span's begin/end records, and deduplicates: in a simulated
// world every node's /net/trace is a view of the same recorder, so the same
// span read through three mounts must count once.  StitchSpans groups spans
// by trace id and builds parent/child trees, flagging orphans (a parent id
// never seen — the CI gate) and unfinished spans (begin without end — how a
// stuck RPC shows up in a chaos dump).
//
// Lives in src/obs (not tools/) so tests and the chaos InvariantChecker can
// stitch without shelling out to trace9.
#ifndef SRC_OBS_STITCH_H_
#define SRC_OBS_STITCH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace plan9 {
namespace obs {

struct SpanRecord {
  std::string trace;  // 32-hex trace id
  uint64_t span = 0;
  uint64_t parent = 0;  // 0 = root
  std::string op;       // "9p.server.walk", "dial.cs", ...
  std::string host;     // "-" when the emitter had no host label
  double begin_s = 0;   // seconds since recorder epoch (begin, or end if
                        // only the end record was seen)
  uint64_t us = 0;      // duration; 0 until the end record lands
  bool begun = false;
  bool ended = false;
};

// One reconstructed trace: every span that shares the trace id.
struct SpanTree {
  std::string trace;
  std::vector<SpanRecord> spans;   // sorted by begin_s
  std::vector<uint64_t> roots;     // span ids with parent 0
  std::vector<uint64_t> orphans;   // span ids whose parent was never seen
  std::vector<uint64_t> unfinished;  // begun but never ended
};

// Parse one rendered trace text (possibly a concatenation of several
// /net/trace reads); duplicate records collapse.
std::vector<SpanRecord> ParseSpans(const std::string& text);

// Group and link; trees come back ordered by first span time.
std::vector<SpanTree> StitchSpans(const std::vector<SpanRecord>& spans);

// Indented tree, one span per line: op, host, duration, flags.
std::string RenderSpanTree(const SpanTree& tree);

// Longest parent->child chain length (the hop count a test asserts on).
int SpanTreeDepth(const SpanTree& tree);

// The chain of heaviest children from the heaviest root:
//   "9p.client.walk@helix 512us -> 9p.server.walk@musca 318us -> ..."
std::string CriticalPath(const SpanTree& tree);

// Total span microseconds per host, "host us count" per line — the
// per-hop latency attribution summary.
std::string PerHopSummary(const std::vector<SpanTree>& trees);

}  // namespace obs
}  // namespace plan9

#endif  // SRC_OBS_STITCH_H_

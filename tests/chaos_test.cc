// Chaos engine: crash/restart lifecycle and end-to-end recovery invariants.
//
// The claims under test: a crash is silent on the wire (survivors learn of
// it only through IL's deadman, a 9P deadline, or a failed dial — never
// shared memory), a restart replays the recorded boot so services come back
// under the same names, the dial library rides out a server that reboots
// mid-backoff, ImportManaged re-establishes a dead mount, and a seeded
// chaos schedule is replayable byte-for-byte from the seed a failing run
// prints.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "src/base/strings.h"
#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/sim/chaos.h"
#include "src/sim/datakit.h"
#include "src/sim/ether_segment.h"
#include "src/sim/faults.h"
#include "src/svc/exportfs.h"
#include "src/svc/listen.h"
#include "src/world/boot.h"
#include "src/world/node.h"

namespace plan9 {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

constexpr char kNdb[] = R"(sys=helix
	ip=135.104.9.31
sys=musca
	ip=135.104.9.6
il=echo port=56789
il=9fs port=17008
il=rx port=17009
tcp=echo port=7
)";

uint64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Default().CounterNamed(name).value();
}

// Two machines on one Ethernet (plus a Datakit switch for the re-attach
// test), with the echo service started *through the lifecycle layer* so a
// restart re-announces it.
class ChaosNetTest : public ::testing::Test {
 protected:
  explicit ChaosNetTest(LinkParams params = LinkParams::Ether10()) : ether_(params) {}

  void SetUp() override {
    db_ = std::make_shared<Ndb>();
    ASSERT_TRUE(db_->Load(kNdb).ok());
    helix_ = std::make_unique<Node>("helix");
    musca_ = std::make_unique<Node>("musca");
    helix_->AddEther(&ether_, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                     Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
    musca_->AddEther(&ether_, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                     Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
    helix_->AddDatakit(&dk_, "nj/astro/helix");
    musca_->AddDatakit(&dk_, "nj/astro/musca");
    ASSERT_TRUE(BootNetwork(helix_.get(), db_, kNdb).ok());
    ASSERT_TRUE(BootNetwork(musca_.get(), db_, kNdb).ok());
    ASSERT_TRUE(StartEcho(musca_.get()).ok());
  }

  static Status StartEcho(Node* node) {
    return node->StartService("echo", [](Node* n) {
      return StartEchoService(std::shared_ptr<Proc>(n->NewProc().release()),
                              "il!*!echo");
    });
  }

  EtherSegment ether_;
  DatakitSwitch dk_;
  std::shared_ptr<Ndb> db_;
  std::unique_ptr<Node> helix_, musca_;
};

// ---------------------------------------------------------------------------
// Crash semantics
// ---------------------------------------------------------------------------

TEST_F(ChaosNetTest, CrashIsSilentAndSurvivorsLearnFromTheDeadman) {
  auto client = helix_->NewProc();
  std::string dir;
  auto fd = Dial(client.get(), "il!musca!echo", &dir);
  ASSERT_TRUE(fd.ok()) << fd.error().message();
  ASSERT_TRUE(client->WriteString(*fd, "ping").ok());
  char buf[16];
  auto n = client->Read(*fd, buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, *n), "ping");

  musca_->Crash();
  EXPECT_FALSE(musca_->alive());
  // A dead machine runs nothing.
  EXPECT_EQ(musca_->NewProc(), nullptr);
  EXPECT_EQ(musca_->il(), nullptr);
  // Crashing a corpse is a no-op.
  musca_->Crash();

  // No FIN, close cell, or Rhangup crossed the wire: the conversation is
  // still Established on the survivor.  Leave data unacknowledged and the
  // query ladder runs into the deadman.
  ASSERT_TRUE(client->WriteString(*fd, "doomed").ok());
  n = client->Read(*fd, buf, sizeof buf);
  EXPECT_TRUE(!n.ok() || *n == 0) << "read must return, not hang";

  auto sfd = client->Open(dir + "/stats", kORead);
  ASSERT_TRUE(sfd.ok());
  auto text = client->ReadString(*sfd, 1024);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("deadman: 1"), std::string::npos) << *text;
  (void)client->Close(*sfd);
  (void)client->Close(*fd);
}

TEST_F(ChaosNetTest, RestartReannouncesServicesUnderTheSameName) {
  musca_->Crash();
  ASSERT_TRUE(musca_->Restart().ok());
  EXPECT_TRUE(musca_->alive());
  EXPECT_EQ(musca_->generation(), 1);

  // The recorded echo service came back through the *new* kernel's /net —
  // same name, fresh announce — and a survivor can simply redial it.
  auto client = helix_->NewProc();
  DialOptions opts;
  opts.attempts = 20;
  opts.backoff = milliseconds(50);
  opts.max_backoff = milliseconds(300);
  auto fd = Dial(client.get(), "il!musca!echo", opts);
  ASSERT_TRUE(fd.ok()) << fd.error().message();
  ASSERT_TRUE(client->WriteString(*fd, "again").ok());
  char buf[16];
  auto n = client->Read(*fd, buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, *n), "again");
  (void)client->Close(*fd);

  // Restarting a live machine is refused.
  EXPECT_FALSE(musca_->Restart().ok());
}

TEST_F(ChaosNetTest, RestartStormSurvivesRepeatedReboots) {
  uint64_t crashes0 = CounterValue("chaos.node.crashes");
  for (int round = 1; round <= 3; round++) {
    musca_->Crash();
    ASSERT_TRUE(musca_->Restart().ok()) << "round " << round;
    EXPECT_EQ(musca_->generation(), round);
    auto client = helix_->NewProc();
    DialOptions opts;
    opts.attempts = 20;
    opts.backoff = milliseconds(50);
    opts.max_backoff = milliseconds(300);
    auto fd = Dial(client.get(), "il!musca!echo", opts);
    ASSERT_TRUE(fd.ok()) << "round " << round << ": " << fd.error().message();
    ASSERT_TRUE(client->WriteString(*fd, "r").ok());
    char buf[4];
    ASSERT_TRUE(client->Read(*fd, buf, sizeof buf).ok());
    (void)client->Close(*fd);
  }
  EXPECT_EQ(CounterValue("chaos.node.crashes") - crashes0, 3u);
}

TEST_F(ChaosNetTest, DatakitHostReattachesAfterRestart) {
  // The switch still holds the graveyard kernel's idea of "nj/astro/musca"
  // unless Crash unplugged it; a restart must be able to re-register the
  // same host name (the "address in use" stale-registry trap).
  musca_->Crash();
  ASSERT_TRUE(musca_->Restart().ok());

  auto server = musca_->NewProc();
  std::string adir;
  auto afd = Announce(server.get(), "dk!*!rx", &adir);
  ASSERT_TRUE(afd.ok()) << afd.error().message();
  std::thread listener([&] {
    std::string ldir;
    auto lcfd = Listen(server.get(), adir, &ldir);
    ASSERT_TRUE(lcfd.ok());
    auto dfd = Accept(server.get(), *lcfd, ldir);
    ASSERT_TRUE(dfd.ok());
    char buf[16];
    auto n = server->Read(*dfd, buf, sizeof buf);
    if (n.ok()) {
      (void)server->Write(*dfd, buf, *n);
    }
    (void)server->Close(*dfd);
    (void)server->Close(*lcfd);
  });
  auto client = helix_->NewProc();
  auto fd = Dial(client.get(), "dk!nj/astro/musca!rx");
  ASSERT_TRUE(fd.ok()) << fd.error().message();
  ASSERT_TRUE(client->WriteString(*fd, "dk").ok());
  char buf[16];
  auto n = client->Read(*fd, buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, *n), "dk");
  (void)client->Close(*fd);
  listener.join();
  (void)server->Close(*afd);
}

// ---------------------------------------------------------------------------
// Dial retry across a reboot (satellite: server comes up mid-backoff)
// ---------------------------------------------------------------------------

TEST_F(ChaosNetTest, DialRetryRidesOutAServerReboot) {
  musca_->Crash();
  std::thread resurrector([&] {
    std::this_thread::sleep_for(milliseconds(400));
    ASSERT_TRUE(musca_->Restart().ok());
  });

  // The first attempts run against a silent or rebooting machine; once the
  // restarted kernel answers (with a reset, then an accept after the echo
  // service re-announces), the retrying dial completes.
  auto client = helix_->NewProc();
  DialOptions opts;
  opts.attempts = 60;
  opts.backoff = milliseconds(50);
  opts.multiplier = 1.5;
  opts.max_backoff = milliseconds(300);
  opts.jitter_seed = 11;
  auto fd = Dial(client.get(), "il!musca!echo", opts);
  ASSERT_TRUE(fd.ok()) << fd.error().message();
  ASSERT_TRUE(client->WriteString(*fd, "back").ok());
  char buf[16];
  auto n = client->Read(*fd, buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, *n), "back");
  (void)client->Close(*fd);
  resurrector.join();
}

// ---------------------------------------------------------------------------
// ImportManaged: remount-on-redial (satellite: OnDead now has a consumer)
// ---------------------------------------------------------------------------

TEST_F(ChaosNetTest, ImportManagedRemountsAfterServerCrashAndRestart) {
  ASSERT_TRUE(musca_->StartService("exportfs", [](Node* n) {
    return StartExportfs(std::shared_ptr<Proc>(n->NewProc().release()),
                         "il!*!9fs");
  }).ok());

  auto proc = helix_->NewProc();
  ImportOptions opts;
  opts.rpc_timeout = milliseconds(800);
  opts.redial.attempts = 40;
  opts.redial.backoff = milliseconds(100);
  opts.redial.max_backoff = milliseconds(300);
  auto svc = ImportManaged(proc.get(), "il!musca!9fs", "/", "/n/musca", opts);
  ASSERT_TRUE(svc.ok()) << svc.error().message();
  ASSERT_TRUE(proc->Stat("/n/musca/net").ok());

  uint64_t redials0 = CounterValue("recovery.ninep.redials");
  uint64_t remounts0 = CounterValue("recovery.ninep.remounts");

  musca_->Crash();
  std::thread resurrector([&] {
    std::this_thread::sleep_for(milliseconds(500));
    ASSERT_TRUE(musca_->Restart().ok());
  });

  // Keep poking the mount: the first stat after the crash times out, the
  // unanswered flush declares the client dead, OnDead kicks the remounter,
  // and eventually a stat answers through the *new* session.
  bool recovered = false;
  auto deadline = std::chrono::steady_clock::now() + seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    if (proc->Stat("/n/musca/net").ok() &&
        CounterValue("recovery.ninep.remounts") > remounts0) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(milliseconds(200));
  }
  resurrector.join();
  EXPECT_TRUE(recovered) << "mount never came back";
  EXPECT_GT(CounterValue("recovery.ninep.redials"), redials0);
  EXPECT_GT(CounterValue("recovery.ninep.remounts"), remounts0);

  (*svc)->Stop();
}

// ---------------------------------------------------------------------------
// Schedules: scripting, seeding, replay
// ---------------------------------------------------------------------------

TEST(ChaosSchedule, ScriptParsesCommentsSemicolonsAndSorts) {
  ChaosEngine engine;
  ASSERT_TRUE(engine
                  .Script("# a comment\n"
                          "restart t=900ms node=musca; crash t=500ms node=musca\n"
                          "flap t=1s medium=ether0 down=200ms\n")
                  .ok());
  EXPECT_EQ(engine.EventCount(), 3u);
  EXPECT_EQ(engine.ScheduleText(),
            "crash t=500ms node=musca\n"
            "restart t=900ms node=musca\n"
            "flap t=1000ms medium=ether0 down=200ms\n");

  EXPECT_FALSE(engine.Script("crash t=100ms medium=ether0").ok())
      << "crash takes a node, not a medium";
  EXPECT_FALSE(engine.Script("crash node=musca").ok()) << "t= is required";
}

TEST(ChaosSchedule, SeededScheduleIsAPureFunctionOfSeedAndNames) {
  Node gnot("gnot"), helix("helix");
  EtherSegment ether{LinkParams::Ether10()};

  auto build = [&](ChaosEngine& e) {
    e.AddNode(&gnot);
    e.AddNode(&helix);
    e.AddMedium("ether0", &ether);
  };

  ChaosEngine a, b, c;
  build(a);
  build(b);
  build(c);
  a.Seed(42, 12);
  b.Seed(42, 12);
  c.Seed(43, 12);
  EXPECT_GE(a.EventCount(), 12u);
  EXPECT_EQ(a.ScheduleText(), b.ScheduleText()) << "same seed must replay";
  EXPECT_NE(a.ScheduleText(), c.ScheduleText()) << "different seed must differ";

  // The replay contract: the canonical rendering scripts back verbatim.
  std::string canon = a.ScheduleText();
  ChaosEngine d;
  build(d);
  ASSERT_TRUE(d.Script(canon).ok());
  EXPECT_EQ(d.ScheduleText(), canon);

  // And the status file's output (comments + schedule) is itself a script.
  ASSERT_TRUE(d.Script(a.StatusText()).ok());
  EXPECT_EQ(d.ScheduleText(), canon);
}

TEST(ChaosSchedule, SeededScheduleEndsBalanced) {
  Node gnot("gnot");
  EtherSegment ether{LinkParams::Ether10()};
  ChaosEngine engine;
  engine.AddNode(&gnot);
  engine.AddMedium("ether0", &ether);
  engine.Seed(7, 9);
  // Walk the schedule: every crash is eventually restarted, every partition
  // healed, so a completed run leaves the world up.
  int node_down = 0, medium_down = 0;
  for (const auto& line : GetFields(engine.ScheduleText(), "\n")) {
    auto words = Tokenize(line);
    if (words.empty()) {
      continue;
    }
    if (words[0] == "crash") {
      node_down++;
    } else if (words[0] == "restart") {
      node_down--;
    } else if (words[0] == "partition") {
      medium_down++;
    } else if (words[0] == "heal") {
      medium_down--;
    }
    EXPECT_GE(node_down, 0) << line;
    EXPECT_GE(medium_down, 0) << line;
  }
  EXPECT_EQ(node_down, 0);
  EXPECT_EQ(medium_down, 0);
}

TEST_F(ChaosNetTest, NetChaosCtlFileDrivesTheEngine) {
  ChaosEngine engine;
  engine.AddNode(helix_.get());
  engine.AddNode(musca_.get());
  engine.AddMedium("ether0", &ether_);

  auto proc = helix_->NewProc();
  auto fd = proc->Open("/net/chaos", kORdWr);
  ASSERT_TRUE(fd.ok()) << fd.error().message();

  ASSERT_TRUE(proc->WriteString(*fd, "crash musca").ok());
  EXPECT_FALSE(musca_->alive());
  auto text = proc->ReadString(*fd, 4096);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("# node musca dead"), std::string::npos) << *text;
  EXPECT_NE(text->find("# node helix alive"), std::string::npos) << *text;

  ASSERT_TRUE(proc->WriteString(*fd, "restart musca").ok());
  EXPECT_TRUE(musca_->alive());

  // A schedule written through the file runs to completion.
  ASSERT_TRUE(proc->WriteString(*fd,
                                "script crash t=50ms node=musca; "
                                "restart t=150ms node=musca")
                  .ok());
  ASSERT_TRUE(proc->WriteString(*fd, "run").ok());
  EXPECT_TRUE(musca_->alive());
  EXPECT_EQ(musca_->generation(), 2);

  ASSERT_TRUE(proc->WriteString(*fd, "seed 9 4").ok());
  ChaosEngine* current = ChaosEngine::Current();
  ASSERT_EQ(current, &engine);
  EXPECT_EQ(current->seed(), 9u);
  EXPECT_GE(current->EventCount(), 4u);

  EXPECT_FALSE(proc->WriteString(*fd, "crash nonesuch").ok());
  EXPECT_FALSE(proc->WriteString(*fd, "frobnicate").ok());
  (void)proc->Close(*fd);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: seeded chaos + recovery invariants
// ---------------------------------------------------------------------------

uint64_t EnvSeed() {
  const char* s = std::getenv("PLAN9NET_CHAOS_SEED");
  if (s == nullptr || *s == '\0') {
    return 1;
  }
  auto v = ParseU64(s);
  return v.has_value() ? *v : 1;
}

LinkParams EnvProfile() {
  LinkParams params = LinkParams::Ether10();
  const char* p = std::getenv("PLAN9NET_CHAOS_PROFILE");
  std::string profile = p == nullptr ? "clean" : p;
  if (profile == "burst") {
    params.faults = FaultProfile::BurstLoss(0.05);
  } else if (profile == "hostile") {
    params.faults = FaultProfile::Hostile();
  }
  params.seed = 0x5eed ^ EnvSeed();
  return params;
}

class SeededChaosTest : public ChaosNetTest {
 protected:
  SeededChaosTest() : ChaosNetTest(EnvProfile()) {}
};

TEST_F(SeededChaosTest, SeededScheduleRunsAndTheWorldRecovers) {
  // CI's traced-scenario job sets PLAN9NET_TRACE_SAMPLE=1 so every dial and
  // 9P RPC in the scenario emits spans; the dump below then feeds
  // trace9 --stitch-file, which fails the job on orphan spans.
  if (const char* sample = std::getenv("PLAN9NET_TRACE_SAMPLE")) {
    ASSERT_TRUE(obs::FlightRecorder::Default()
                    .Ctl(std::string("trace sample ") + sample)
                    .ok());
  }
  ASSERT_TRUE(musca_->StartService("exportfs", [](Node* n) {
    return StartExportfs(std::shared_ptr<Proc>(n->NewProc().release()),
                         "il!*!9fs");
  }).ok());

  auto proc = helix_->NewProc();
  ImportOptions iopts;
  iopts.rpc_timeout = milliseconds(800);
  iopts.redial.attempts = 60;
  iopts.redial.backoff = milliseconds(100);
  iopts.redial.max_backoff = milliseconds(300);
  auto import = ImportManaged(proc.get(), "il!musca!9fs", "/", "/n/musca", iopts);
  ASSERT_TRUE(import.ok()) << import.error().message();

  // Only musca crashes (the importer's machine stays up and must recover
  // its view); the shared Ethernet partitions and flaps.
  ChaosEngine engine;
  engine.AddNode(musca_.get());
  engine.AddMedium("ether0", &ether_);
  uint64_t seed = EnvSeed();
  engine.Seed(seed, 6, milliseconds(100), milliseconds(400));

  // Always print the replay recipe; a CI failure must be reproducible from
  // the log alone (write the schedule to /net/chaos via `script`, or call
  // Seed with the same seed over the same names).
  std::fprintf(stderr, "[chaos] seed=%llu profile=%s schedule:\n%s",
               static_cast<unsigned long long>(seed),
               std::getenv("PLAN9NET_CHAOS_PROFILE") == nullptr
                   ? "clean"
                   : std::getenv("PLAN9NET_CHAOS_PROFILE"),
               engine.ScheduleText().c_str());

  InvariantChecker invariants;
  invariants.WatchNode(helix_.get());
  invariants.WatchNode(musca_.get());
  invariants.ExpectService(helix_.get(), "il!musca!echo");
  invariants.ExpectMount(proc.get(), "/n/musca/net");

  // A client keeps touching the mount throughout, so 9P deadlines (not just
  // dials) exercise the recovery path while the schedule runs.
  std::atomic<bool> stop{false};
  std::thread toucher([&] {
    while (!stop.load()) {
      (void)proc->Stat("/n/musca/net");
      std::this_thread::sleep_for(milliseconds(150));
    }
  });

  Status run = engine.Run();
  EXPECT_TRUE(run.ok()) << run.error().message();
  EXPECT_EQ(engine.seed(), seed);
  EXPECT_GT(CounterValue("chaos.sched.events"), 0u);

  Status recovered = invariants.Check(seconds(30));
  stop = true;
  toucher.join();

  if (const char* dump = std::getenv("PLAN9NET_CHAOS_DUMP")) {
    std::ofstream out(dump);
    out << "# chaos seed=" << seed << "\n"
        << engine.ScheduleText() << "\n"
        << obs::FlightRecorder::Default().RenderText();
  }
  if (std::getenv("PLAN9NET_TRACE_SAMPLE") != nullptr) {
    obs::Tracer::Default().SetSampleInterval(0);
  }
  EXPECT_TRUE(recovered.ok()) << recovered.error().message();

  (*import)->Stop();
}

TEST_F(ChaosNetTest, InvariantCheckerFlagsAnUnrecoveredService) {
  InvariantChecker invariants;
  invariants.WatchNode(helix_.get());
  // Quiescence holds, but nobody ever announced this port: the probe must
  // fail, not pass vacuously.
  invariants.ExpectService(helix_.get(), "tcp!musca!echo");
  Status s = invariants.Check(seconds(2));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(std::string(s.error().message()).find("unreachable"), std::string::npos)
      << s.error().message();
}

}  // namespace
}  // namespace plan9

// The lockdep-style checker (src/task/lockcheck.h) must catch deliberate
// ordering bugs.  Death tests run in a re-executed child ("threadsafe"
// style, set in test_main.cc), so the edges the child records never pollute
// the parent's global order graph — each test uses its own class names
// anyway, for the same reason.
#include "src/task/lockcheck.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/task/kproc.h"
#include "src/task/qlock.h"
#include "src/task/rendez.h"

#if defined(PLAN9NET_LOCKCHECK)

namespace plan9 {
namespace {

TEST(LockcheckDeathTest, OrderInversionAborts) {
  QLock a{"test.inv.a"};
  QLock b{"test.inv.b"};
  {
    QLockGuard ga(a);
    QLockGuard gb(b);  // establishes test.inv.a -> test.inv.b
  }
  EXPECT_DEATH(
      {
        QLockGuard gb(b);
        QLockGuard ga(a);  // opposite order: ABBA deadlock under load
      },
      "lock order inversion");
}

TEST(LockcheckDeathTest, InversionThroughIntermediateClassAborts) {
  // The graph check is transitive: a -> b -> c established, then c -> a
  // must abort even though no direct a/c nesting was ever seen.
  QLock a{"test.chain.a"};
  QLock b{"test.chain.b"};
  QLock c{"test.chain.c"};
  {
    QLockGuard ga(a);
    QLockGuard gb(b);
  }
  {
    QLockGuard gb(b);
    QLockGuard gc(c);
  }
  EXPECT_DEATH(
      {
        QLockGuard gc(c);
        QLockGuard ga(a);
      },
      "lock order inversion");
}

TEST(LockcheckDeathTest, SelfDeadlockAborts) {
  QLock a{"test.self.a"};
  EXPECT_DEATH(
      {
        QLockGuard g1(a);
        a.Lock();  // std::mutex is non-recursive; this would hang forever
      },
      "self-deadlock");
}

TEST(Lockcheck, ConsistentOrderIsAccepted) {
  QLock outer{"test.ok.outer"};
  QLock inner{"test.ok.inner"};
  for (int i = 0; i < 3; i++) {
    QLockGuard go(outer);
    QLockGuard gi(inner);
  }
  // Same classes, same order, different instances: still fine.
  QLock outer2{"test.ok.outer"};
  QLock inner2{"test.ok.inner"};
  QLockGuard go(outer2);
  QLockGuard gi(inner2);
}

TEST(Lockcheck, HeldCountTracksTheStack) {
  QLock a;
  QLock b;
  EXPECT_EQ(lockcheck::HeldCount(), 0);
  {
    QLockGuard ga(a);
    EXPECT_EQ(lockcheck::HeldCount(), 1);
    {
      QLockGuard gb(b);
      EXPECT_EQ(lockcheck::HeldCount(), 2);
    }
    EXPECT_EQ(lockcheck::HeldCount(), 1);
  }
  EXPECT_EQ(lockcheck::HeldCount(), 0);
}

TEST(Lockcheck, SleepReleasesTheHeldEntry) {
  // Rendez waits on the QLock itself, so while asleep the thread must not
  // appear to hold it (another kproc takes it to flip the condition).
  QLock lock;
  Rendez r;
  bool ready = false;

  Kproc waker("test.lockcheck.waker", [&] {
    QLockGuard g(lock);
    ready = true;
    r.Wakeup();
  });

  QLockGuard g(lock);
  r.Sleep(lock, [&]() REQUIRES(lock) { return ready; });
  EXPECT_EQ(lockcheck::HeldCount(), 1);  // re-held after the sleep
  g.Unlock();
  waker.Join();
  EXPECT_EQ(lockcheck::HeldCount(), 0);
}

TEST(Lockcheck, TryLockOrdersLaterAcquisitions) {
  // A successful TryLock adds no edges itself but lands on the held stack:
  // locks taken while it is held order after it, and releasing mid-stack
  // (guard destruction order here is inner-first, but TryLock released
  // before the other) must not confuse the stack.
  QLock a{"test.try.a"};
  QLock b{"test.try.b"};
  ASSERT_TRUE(a.TryLock());
  {
    QLockGuard gb(b);  // edge test.try.a -> test.try.b
    EXPECT_EQ(lockcheck::HeldCount(), 2);
    a.Unlock();  // release out of LIFO order
    EXPECT_EQ(lockcheck::HeldCount(), 1);
  }
  EXPECT_EQ(lockcheck::HeldCount(), 0);
}

TEST(LockcheckDeathTest, TryLockEstablishedOrderStillChecked) {
  // The edge recorded *under* a TryLock-held lock is a real ordering fact;
  // reversing it with blocking acquisitions must abort.
  QLock a{"test.tryinv.a"};
  QLock b{"test.tryinv.b"};
  ASSERT_TRUE(a.TryLock());
  {
    QLockGuard gb(b);
  }
  a.Unlock();
  EXPECT_DEATH(
      {
        QLockGuard gb(b);
        QLockGuard ga(a);
      },
      "lock order inversion");
}

TEST(LockcheckDeathTest, BlockingUnderUnrelatedLockAborts) {
  // The MAY_BLOCK runtime counterpart: sleeping on a rendez while holding a
  // lock that is neither the rendez's own nor of a sleepable class is the
  // blocking-under-lock deadlock class plan9lint checks statically.  The
  // assert fires as the sleep *begins* — deterministically, even though the
  // predicate is already true and the wait would not actually park.
  QLock unrelated{"test.block.unrelated"};
  QLock own{"test.block.own"};
  Rendez r;
  EXPECT_DEATH(
      {
        QLockGuard gu(unrelated);
        QLockGuard go(own);
        r.Sleep(own, [] { return true; });
      },
      "blocking under qlock");
}

TEST(Lockcheck, BlockingUnderSleepableClassIsAllowed) {
  // The two sanctioned hold-across-sleep idioms (stream.read,
  // 9p.server.write) are modeled by the SleepableClass tag: a sleep under
  // such a lock must not abort.
  QLock sleepable{"test.block.sleepable", kSleepableClass};
  QLock own{"test.block.own2"};
  Rendez r;
  QLockGuard gs(sleepable);
  QLockGuard go(own);
  r.Sleep(own, [] { return true; });
  EXPECT_EQ(lockcheck::HeldCount(), 2);
}

TEST(Lockcheck, SleepHoldingOnlyOwnLockIsAllowed) {
  // The rendez-own-lock idiom itself: never a finding.
  QLock own{"test.block.own3"};
  Rendez r;
  QLockGuard g(own);
  r.Sleep(own, [] { return true; });
  EXPECT_EQ(lockcheck::HeldCount(), 1);
}

TEST(Lockcheck, InstanceClassesAreIndependent) {
  // Unnamed locks get per-instance classes, so opposite nesting orders on
  // *different* pairs must not look like an inversion.  Distinct heap
  // objects kept alive, so TSan doesn't conflate reused addresses either.
  std::vector<std::unique_ptr<QLock>> keep;
  for (int i = 0; i < 4; i++) {
    keep.push_back(std::make_unique<QLock>());
    keep.push_back(std::make_unique<QLock>());
    QLock& a = *keep[keep.size() - 2];
    QLock& b = *keep[keep.size() - 1];
    if (i % 2 == 0) {
      QLockGuard ga(a);
      QLockGuard gb(b);
    } else {
      QLockGuard gb(b);
      QLockGuard ga(a);
    }
  }
}

}  // namespace
}  // namespace plan9

#endif  // PLAN9NET_LOCKCHECK

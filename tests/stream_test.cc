#include "src/stream/stream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/stream/block.h"
#include "src/stream/queue.h"

namespace plan9 {
namespace {

// A device module that loops everything written back up the stream —
// effectively one half of a pipe.  Control blocks are recorded.
class LoopbackDevice : public StreamModule {
 public:
  std::string_view name() const override { return "loopback"; }
  void DownPut(BlockPtr b) override {
    if (b->type == BlockType::kControl) {
      controls.push_back(b->Text());
      return;
    }
    PutUp(std::move(b));
  }
  std::vector<std::string> controls;
};

std::unique_ptr<Stream> MakeLoopback(LoopbackDevice** dev = nullptr) {
  auto device = std::make_unique<LoopbackDevice>();
  if (dev != nullptr) {
    *dev = device.get();
  }
  return std::make_unique<Stream>(std::move(device));
}

TEST(Queue, PutGetOrder) {
  Queue q;
  ASSERT_TRUE(q.PutNoBlock(MakeDataBlock("one")).ok());
  ASSERT_TRUE(q.PutNoBlock(MakeDataBlock("two")).ok());
  EXPECT_EQ(q.Get()->Text(), "one");
  EXPECT_EQ(q.Get()->Text(), "two");
}

TEST(Queue, CloseDrainsThenEof) {
  Queue q;
  ASSERT_TRUE(q.PutNoBlock(MakeDataBlock("last")).ok());
  q.Close();
  ASSERT_NE(q.Get(), nullptr);
  EXPECT_EQ(q.Get(), nullptr);
  EXPECT_FALSE(q.Put(MakeDataBlock("x")).ok());
}

TEST(Queue, FlowControlBlocksWriter) {
  Queue q(/*limit=*/8);
  ASSERT_TRUE(q.Put(MakeDataBlock("0123456789")).ok());  // over limit now
  std::atomic<bool> second_done{false};
  std::thread writer([&] {
    ASSERT_TRUE(q.Put(MakeDataBlock("abc")).ok());
    second_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(second_done.load());  // writer is flow-controlled
  EXPECT_EQ(q.Get()->Text(), "0123456789");
  writer.join();
  EXPECT_TRUE(second_done.load());
}

TEST(Queue, PutBackPreservesFront) {
  Queue q;
  ASSERT_TRUE(q.PutNoBlock(MakeDataBlock("bb")).ok());
  auto b = q.Get();
  b->rp += 1;
  q.PutBack(std::move(b));
  EXPECT_EQ(q.Get()->Text(), "b");
}

TEST(Queue, KickRunsOnPut) {
  int kicks = 0;
  Queue q(Queue::kDefaultLimit, [&] { kicks++; });
  ASSERT_TRUE(q.Put(MakeDataBlock("x")).ok());
  ASSERT_TRUE(q.PutNoBlock(MakeDataBlock("y")).ok());
  EXPECT_EQ(kicks, 2);
}

TEST(Stream, WriteThenReadRoundTrips) {
  auto s = MakeLoopback();
  ASSERT_TRUE(s->Write("hello").ok());
  uint8_t buf[16];
  auto n = s->Read(buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, buf + *n), "hello");
}

TEST(Stream, ReadStopsAtDelimiter) {
  // Two writes => two delimited messages; one read never crosses them.
  auto s = MakeLoopback();
  ASSERT_TRUE(s->Write("first").ok());
  ASSERT_TRUE(s->Write("second").ok());
  uint8_t buf[64];
  auto n = s->Read(buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, buf + *n), "first");
  n = s->Read(buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, buf + *n), "second");
}

TEST(Stream, ShortReadLeavesRemainder) {
  auto s = MakeLoopback();
  ASSERT_TRUE(s->Write("abcdef").ok());
  uint8_t buf[3];
  auto n = s->Read(buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, buf + *n), "abc");
  n = s->Read(buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, buf + *n), "def");
}

TEST(Stream, LargeWriteSplitsAt32K) {
  // "A write of less than 32K is guaranteed to be contained by a single
  // block"; larger writes split, only the last block delimited.
  auto s = MakeLoopback();
  Bytes big(Stream::kMaxBlock + 100, 0x5a);
  ASSERT_TRUE(s->Write(big.data(), big.size()).ok());
  auto msg = s->ReadMessage();
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->size(), big.size());  // message boundary = whole write
}

TEST(Stream, ControlBlocksReachModules) {
  LoopbackDevice* dev = nullptr;
  auto s = MakeLoopback(&dev);
  ASSERT_TRUE(s->WriteControl("connect 2048").ok());
  ASSERT_EQ(dev->controls.size(), 1u);
  EXPECT_EQ(dev->controls[0], "connect 2048");
}

TEST(Stream, HangupControlGivesEof) {
  auto s = MakeLoopback();
  ASSERT_TRUE(s->WriteControl("hangup").ok());
  uint8_t buf[4];
  auto n = s->Read(buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_FALSE(s->Write("after").ok());
}

// A module that upcases data moving downstream — exercises push/pop.
class UpcaseModule : public StreamModule {
 public:
  std::string_view name() const override { return "upcase"; }
  void DownPut(BlockPtr b) override {
    if (b->type == BlockType::kData) {
      for (auto& c : b->data) {
        if (c >= 'a' && c <= 'z') {
          c = static_cast<uint8_t>(c - 'a' + 'A');
        }
      }
    }
    PutDown(std::move(b));
  }
};

TEST(Stream, PushPopModule) {
  static bool registered = [] {
    ModuleRegistry::Instance().Register("upcase",
                                        [] { return std::make_unique<UpcaseModule>(); });
    return true;
  }();
  (void)registered;

  auto s = MakeLoopback();
  ASSERT_TRUE(s->WriteControl("push upcase").ok());
  EXPECT_EQ(s->ModuleCount(), 1u);
  ASSERT_TRUE(s->Write("abc").ok());
  uint8_t buf[8];
  auto n = s->Read(buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, buf + *n), "ABC");

  ASSERT_TRUE(s->WriteControl("pop").ok());
  EXPECT_EQ(s->ModuleCount(), 0u);
  ASSERT_TRUE(s->Write("abc").ok());
  n = s->Read(buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, buf + *n), "abc");
}

TEST(Stream, PushUnknownModuleFails) {
  auto s = MakeLoopback();
  EXPECT_FALSE(s->WriteControl("push nosuchmodule").ok());
  EXPECT_FALSE(s->Pop().ok());
}

TEST(Stream, ReaderBlocksUntilData) {
  auto s = MakeLoopback();
  std::atomic<bool> got{false};
  std::thread reader([&] {
    uint8_t buf[8];
    auto n = s->Read(buf, sizeof buf);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 4u);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(s->Write("data").ok());
  reader.join();
  EXPECT_TRUE(got.load());
}

TEST(Stream, DeliverUpFromDeviceSide) {
  auto s = MakeLoopback();
  s->DeliverUp(MakeDataBlock("from-the-wire", /*delim=*/true));
  auto msg = s->ReadMessage();
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(ToString(*msg), "from-the-wire");
}

}  // namespace
}  // namespace plan9

// Observability layer: metrics registry, flight recorder, and the /net
// surface (stats, trace, log, ctl) — locally and through a 9P import.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/ether_segment.h"
#include "src/svc/exportfs.h"
#include "src/svc/listen.h"
#include "src/world/boot.h"
#include "src/world/node.h"

namespace plan9 {
namespace {

using obs::FlightRecorder;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::TraceKind;

// ---------------------------------------------------------------------------
// Counters and parents
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, NamedEntriesAreStable) {
  auto& r = MetricsRegistry::Default();
  auto& c1 = r.CounterNamed("obs.test.stable");
  auto& c2 = r.CounterNamed("obs.test.stable");
  EXPECT_EQ(&c1, &c2) << "same name must resolve to the same counter";
  auto& h1 = r.HistogramNamed("obs.test.stable-hist");
  auto& h2 = r.HistogramNamed("obs.test.stable-hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  auto& parent = MetricsRegistry::Default().CounterNamed("obs.test.concurrent");
  parent.Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  // Each thread owns a child bound to the shared parent — the two-level
  // pattern every conversation uses.
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<obs::Counter>> children;
  for (int t = 0; t < kThreads; t++) {
    children.push_back(std::make_unique<obs::Counter>(&parent));
  }
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        children[static_cast<size_t>(t)]->Inc();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(parent.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  for (auto& c : children) {
    EXPECT_EQ(c->value(), static_cast<uint64_t>(kPerThread));
  }
  // Reset clears only the child; the aggregate keeps counting events.
  children[0]->Reset();
  EXPECT_EQ(children[0]->value(), 0u);
  EXPECT_EQ(parent.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, GaugeTracksHighWater) {
  auto& g = MetricsRegistry::Default().GaugeNamed("obs.test.gauge");
  g.Reset();
  g.Add(10);
  g.Add(25);
  g.Add(-30);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.high_water(), 35);
  g.Set(100);
  EXPECT_EQ(g.high_water(), 100);
}

// ---------------------------------------------------------------------------
// Histogram bucketing
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Bucket b = bit width: 0 -> 0, 1 -> 1, 2..3 -> 2, [2^(b-1), 2^b) -> b.
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(7), 3);
  EXPECT_EQ(Histogram::BucketFor(8), 4);
  EXPECT_EQ(Histogram::BucketFor(1023), 10);
  EXPECT_EQ(Histogram::BucketFor(1024), 11);
  EXPECT_EQ(Histogram::BucketFor(~0ull), 64 - 1 + 1);  // top bucket clamps
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024u);
  // Every value lands in the bucket whose range contains it.
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 5ull, 100ull, 4095ull, 1ull << 40}) {
    int b = Histogram::BucketFor(v);
    EXPECT_GE(v, Histogram::BucketLowerBound(b)) << v;
    if (b + 1 < Histogram::kBuckets) {
      EXPECT_LT(v, Histogram::BucketLowerBound(b + 1)) << v;
    }
  }
}

TEST(Histogram, RecordAndPercentiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; v++) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.sum(), 1000u * 1001 / 2);
  EXPECT_EQ(h.mean(), h.sum() / h.count());
  // Log buckets: percentile resolves to a bucket upper bound, so p50 of
  // 1..1000 lands in the bucket containing 500 (256..511 -> upper 511).
  uint64_t p50 = h.Percentile(50);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 1023u);
  uint64_t p99 = h.Percentile(99);
  EXPECT_GE(p99, 990u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistry, SnapshotIsConsistentUnderWriters) {
  auto& r = MetricsRegistry::Default();
  auto& c = r.CounterNamed("obs.test.snapshot");
  c.Reset();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) {
      c.Inc();
    }
  });
  for (int i = 0; i < 50; i++) {
    std::string text = r.RenderText();
    EXPECT_NE(text.find("obs.test.snapshot"), std::string::npos);
    std::string json = r.RenderJson();
    EXPECT_NE(json.find("\"obs.test.snapshot\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
  }
  stop.store(true);
  writer.join();
  // The rendered value parses back as a number no larger than the final one.
  std::string text = r.RenderText();
  auto pos = text.find("obs.test.snapshot ");
  ASSERT_NE(pos, std::string::npos);
  auto end = text.find('\n', pos);
  auto value = ParseU64(text.substr(pos + strlen("obs.test.snapshot "),
                                    end - pos - strlen("obs.test.snapshot ")));
  ASSERT_TRUE(value.has_value());
  EXPECT_LE(*value, c.value());
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, MaskGatesRecording) {
  FlightRecorder fr(16);
  EXPECT_FALSE(fr.enabled(TraceKind::kIl));
  fr.Record(TraceKind::kIl, "test", "ignored while off");
  EXPECT_EQ(fr.EventCount(), 0u);
  fr.Enable(static_cast<uint32_t>(TraceKind::kIl));
  EXPECT_TRUE(fr.enabled(TraceKind::kIl));
  EXPECT_FALSE(fr.enabled(TraceKind::kNinep));
  fr.Record(TraceKind::kIl, "test", "send", 7, 42);
  EXPECT_EQ(fr.EventCount(), 1u);
  std::string text = fr.RenderText();
  EXPECT_NE(text.find(" il "), std::string::npos);
  EXPECT_NE(text.find("test send 7 42"), std::string::npos);
  // Filtered render excludes other kinds.
  EXPECT_EQ(fr.RenderText(static_cast<uint32_t>(TraceKind::kNinep)), "");
}

TEST(FlightRecorderTest, RingOverwritesOldestFirst) {
  FlightRecorder fr(8);
  fr.Enable(static_cast<uint32_t>(TraceKind::kAll));
  for (int i = 0; i < 20; i++) {
    fr.Record(TraceKind::kDial, "test", StrFormat("ev%d", i));
  }
  EXPECT_EQ(fr.EventCount(), 8u);
  EXPECT_EQ(fr.Overwritten(), 12u);
  std::string text = fr.RenderText();
  EXPECT_EQ(text.find("ev11 "), std::string::npos) << "ev11 was overwritten";
  // Oldest surviving event renders first.
  EXPECT_LT(text.find("ev12"), text.find("ev19"));
  fr.Clear();
  EXPECT_EQ(fr.EventCount(), 0u);
}

TEST(FlightRecorderTest, CtlGrammar) {
  FlightRecorder fr(8);
  ASSERT_TRUE(fr.Ctl("trace on il 9p").ok());
  EXPECT_TRUE(fr.enabled(TraceKind::kIl));
  EXPECT_TRUE(fr.enabled(TraceKind::kNinep));
  EXPECT_FALSE(fr.enabled(TraceKind::kDial));
  ASSERT_TRUE(fr.Ctl("trace off il").ok());
  EXPECT_FALSE(fr.enabled(TraceKind::kIl));
  EXPECT_TRUE(fr.enabled(TraceKind::kNinep));
  ASSERT_TRUE(fr.Ctl("trace on").ok());
  EXPECT_TRUE(fr.enabled(TraceKind::kFault));
  ASSERT_TRUE(fr.Ctl("trace off").ok());
  EXPECT_EQ(fr.mask(), 0u);
  EXPECT_FALSE(fr.Ctl("trace sideways").ok());
  EXPECT_FALSE(fr.Ctl("trace on nosuchkind").ok());
  fr.Enable(static_cast<uint32_t>(TraceKind::kAll));
  fr.Record(TraceKind::kIl, "t", "x");
  ASSERT_TRUE(fr.Ctl("clear").ok());
  EXPECT_EQ(fr.EventCount(), 0u);
}

// ---------------------------------------------------------------------------
// The /net surface: stats, trace, log, ctl — local and imported
// ---------------------------------------------------------------------------

constexpr char kNdb[] = R"(sys=helix
	dom=helix.research.bell-labs.com
	ip=135.104.9.31 ether=080069022201
	proto=il
sys=musca
	dom=musca.research.bell-labs.com
	ip=135.104.9.6 ether=080069022202
il=echo port=56789
il=exportfs port=17007
)";

class ObsNetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_shared<Ndb>();
    ASSERT_TRUE(db_->Load(kNdb).ok());
    helix_ = std::make_unique<Node>("helix");
    musca_ = std::make_unique<Node>("musca");
    auto mac = [](uint8_t last) { return MacAddr{8, 0, 0x69, 2, 0x22, last}; };
    helix_->AddEther(&ether_, mac(1), Ipv4Addr::FromOctets(135, 104, 9, 31),
                     Ipv4Addr{0xffffff00});
    musca_->AddEther(&ether_, mac(2), Ipv4Addr::FromOctets(135, 104, 9, 6),
                     Ipv4Addr{0xffffff00});
    ASSERT_TRUE(BootNetwork(helix_.get(), db_, kNdb).ok());
    ASSERT_TRUE(BootNetwork(musca_.get(), db_, kNdb).ok());
  }

  void TearDown() override {
    (void)FlightRecorder::Default().Ctl("trace off");
    (void)FlightRecorder::Default().Ctl("clear");
  }

  // Run one echo round trip over IL so the counters move.
  void EchoOnce() {
    auto svc = StartEchoService(
        std::shared_ptr<Proc>(musca_->NewProc().release()), "il!*!echo");
    ASSERT_TRUE(svc.ok());
    auto client = helix_->NewProc();
    auto fd = Dial(client.get(), "il!135.104.9.6!56789");
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(client->WriteString(*fd, "ping").ok());
    auto reply = client->ReadString(*fd, 16);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(*reply, "ping");
    ASSERT_TRUE(client->Close(*fd).ok());
  }

  EtherSegment ether_{LinkParams::Ether10()};
  std::shared_ptr<Ndb> db_;
  std::unique_ptr<Node> helix_, musca_;
};

TEST_F(ObsNetTest, NetRootListsObservabilityFiles) {
  auto proc = helix_->NewProc();
  auto entries = proc->ReadDir("/net");
  ASSERT_TRUE(entries.ok());
  std::set<std::string> names;
  for (auto& d : *entries) {
    names.insert(d.name);
  }
  for (const char* want : {"stats", "trace", "log", "ctl"}) {
    EXPECT_TRUE(names.count(want)) << "missing /net/" << want;
  }
}

TEST_F(ObsNetTest, NetStatsRendersRegistryInKeyValueFormat) {
  EchoOnce();
  auto proc = helix_->NewProc();
  auto stats = proc->ReadFile("/net/stats");
  ASSERT_TRUE(stats.ok());
  // The paper's stats format: one `key value` pair per line.
  for (const char* key : {"net.il.msgs-sent", "sim.media.frames-sent",
                          "net.dial.attempts", "stream.q.depth-hiwat"}) {
    auto pos = stats->find(std::string(key) + " ");
    EXPECT_NE(pos, std::string::npos) << "missing " << key << " in\n" << *stats;
  }
  // The echo moved real traffic, so the IL aggregates are nonzero.
  auto pos = stats->find("net.il.msgs-sent ");
  ASSERT_NE(pos, std::string::npos);
  auto end = stats->find('\n', pos);
  auto value = ParseU64(stats->substr(pos + strlen("net.il.msgs-sent "),
                                      end - pos - strlen("net.il.msgs-sent ")));
  ASSERT_TRUE(value.has_value());
  EXPECT_GT(*value, 0u);
}

TEST_F(ObsNetTest, TraceCtlEnablesFlightRecorder) {
  auto proc = helix_->NewProc();
  // Writing the ctl file turns tracing on; the dial and IL activity lands
  // in /net/trace.
  ASSERT_TRUE(proc->WriteFile("/net/ctl", "trace on il dial 9p").ok());
  EchoOnce();
  auto trace = proc->ReadFile("/net/trace");
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace->find(" il "), std::string::npos) << *trace;
  EXPECT_NE(trace->find(" dial "), std::string::npos) << *trace;
  ASSERT_TRUE(proc->WriteFile("/net/ctl", "trace off").ok());
  ASSERT_TRUE(proc->WriteFile("/net/ctl", "clear").ok());
  auto cleared = proc->ReadFile("/net/trace");
  ASSERT_TRUE(cleared.ok());
  EXPECT_EQ(*cleared, "");
}

TEST_F(ObsNetTest, NetLogCarriesLogLinesWhenEnabled) {
  auto proc = helix_->NewProc();
  ASSERT_TRUE(proc->WriteFile("/net/ctl", "trace on log").ok());
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  P9_LOG(kInfo) << "obs-test log marker";
  SetLogLevel(saved);
  auto log = proc->ReadFile("/net/log");
  ASSERT_TRUE(log.ok());
  EXPECT_NE(log->find("obs-test log marker"), std::string::npos);
  // Only kLog events render in /net/log.
  EXPECT_EQ(log->find(" il "), std::string::npos);
}

TEST_F(ObsNetTest, PerConversationStatusHasPaperShape) {
  auto svc = StartEchoService(
      std::shared_ptr<Proc>(musca_->NewProc().release()), "il!*!echo");
  ASSERT_TRUE(svc.ok());
  auto client = helix_->NewProc();
  std::string dir;
  auto fd = Dial(client.get(), "il!135.104.9.6!56789", &dir, nullptr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client->WriteString(*fd, "ping").ok());
  auto reply = client->ReadString(*fd, 16);
  ASSERT_TRUE(reply.ok());

  // status: `il/N refs State local!port remote!port tx N rx N rtt N us ...`
  auto status = client->ReadFile(dir + "/status");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->find("il/"), std::string::npos) << *status;
  EXPECT_NE(status->find("Established"), std::string::npos) << *status;
  EXPECT_NE(status->find("135.104.9.31!"), std::string::npos) << *status;
  EXPECT_NE(status->find("135.104.9.6!56789"), std::string::npos) << *status;
  EXPECT_NE(status->find(" tx "), std::string::npos) << *status;
  EXPECT_NE(status->find(" rx "), std::string::npos) << *status;
  EXPECT_NE(status->find(" rtt "), std::string::npos) << *status;
  ASSERT_TRUE(client->Close(*fd).ok());
}

TEST_F(ObsNetTest, NetStatsReadableThroughNinepImport) {
  // The §6.1 gateway property applies to the observability files too:
  // import helix's /net and read its registry snapshot remotely.
  auto exportsvc = StartExportfs(
      std::shared_ptr<Proc>(helix_->NewProc().release()), "il!*!exportfs");
  ASSERT_TRUE(exportsvc.ok());
  EchoOnce();

  auto proc = musca_->NewProcPrivate();
  ASSERT_TRUE(Import(proc.get(), "il!135.104.9.31!17007", "/net", "/n/helixnet",
                     kMRepl)
                  .ok());
  auto stats = proc->ReadFile("/n/helixnet/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("net.il.msgs-sent "), std::string::npos);
  EXPECT_NE(stats->find("ninep.rpc.count "), std::string::npos);
  // The 9P latency histogram is live: this very import issued RPCs.
  EXPECT_NE(stats->find("ninep.rpc.latency-count "), std::string::npos);
}

}  // namespace
}  // namespace plan9

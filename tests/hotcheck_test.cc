// hotcheck: the runtime counterpart of blockcheck's copy-in-hot-path
// (src/task/hotcheck.h, DESIGN.md section 13).  Counting scopes charge
// every heap allocation on the thread to the open P9_HOT_ROOT; zero-alloc
// scopes abort on the first allocation, which is how the tests pin the
// "no allocation once the pool is warm" claim to real code paths.

#include "src/task/hotcheck.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/stream/block.h"

namespace plan9 {
namespace {

#if defined(PLAN9NET_HOTCHECK)

TEST(Hotcheck, CountsAllocationsInsideScope) {
  uint64_t before_allocs;
  {
    hotcheck::Scope scope("test.count");
    before_allocs = hotcheck::ScopeAllocs();
    auto p = std::make_unique<int>(42);
    EXPECT_GT(hotcheck::ScopeAllocs(), before_allocs);
    EXPECT_GE(hotcheck::ScopeAllocBytes(), sizeof(int));
  }
  EXPECT_FALSE(hotcheck::InScope());
}

TEST(Hotcheck, NestedScopesShareTheOuterAccount) {
  hotcheck::Scope outer("test.outer");
  auto a = std::make_unique<int>(1);
  uint64_t after_first = hotcheck::ScopeAllocs();
  {
    // Inner scope must NOT reset the counters: the message root owns them.
    // Allocate with a direct operator-new call: unlike a new-expression,
    // it cannot be elided by the optimizer.
    hotcheck::Scope inner("test.inner");
    void* p = ::operator new(32);
    ::operator delete(p);
  }
  EXPECT_GT(hotcheck::ScopeAllocs(), after_first);
}

TEST(Hotcheck, SuspendScopeExcludesCheckerInternals) {
  hotcheck::Scope scope("test.suspend");
  uint64_t before = hotcheck::ScopeAllocs();
  {
    hotcheck::SuspendScope suspend;
    auto p = std::make_unique<int>(7);
  }
  EXPECT_EQ(hotcheck::ScopeAllocs(), before);
}

TEST(Hotcheck, BlockCopiesAreCharged) {
  Block b;
  b.data = ToBytes("payload");
  b.delim = true;
  hotcheck::Scope scope("test.copies");
  uint64_t before = hotcheck::ScopeCopies();
  BlockPtr clone = CloneBlock(b);
  EXPECT_EQ(hotcheck::ScopeCopies(), before + 1);
}

TEST(HotcheckDeathTest, ZeroAllocScopeAbortsOnAllocation) {
  EXPECT_DEATH(
      {
        hotcheck::Scope scope("test.zero-alloc", hotcheck::Mode::kZeroAlloc);
        // Direct operator-new call: a plain new-expression of an unused
        // object is elidable under C++14 rules and may never reach the hook.
        void* p = ::operator new(32);
        ::operator delete(p);
      },
      "hotcheck: heap allocation .* inside zero-alloc hot scope "
      "'test.zero-alloc'");
}

TEST(Hotcheck, WarmBlockPoolSurvivesZeroAllocScope) {
  // Warm the pool and pre-build the payload outside the strict scope; a
  // pooled alloc/recycle round trip must then be allocation-free.
  RecycleBlock(AllocDataBlock(Bytes(64), true));
  Bytes payload(64, 0xab);
  {
    hotcheck::Scope scope("test.pool-warm", hotcheck::Mode::kZeroAlloc);
    BlockPtr b = AllocDataBlock(std::move(payload), true);
    RecycleBlock(std::move(b));
  }
  SUCCEED();
}

#else  // !PLAN9NET_HOTCHECK

TEST(Hotcheck, DisabledScopesAreInert) {
  hotcheck::Scope scope("test.disabled", hotcheck::Mode::kZeroAlloc);
  auto p = std::make_unique<int>(1);
  EXPECT_EQ(*p, 1);
}

#endif  // PLAN9NET_HOTCHECK

}  // namespace
}  // namespace plan9

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "src/inet/il.h"
#include "src/inet/ip.h"
#include "src/inet/tcp.h"
#include "src/inet/udp.h"
#include "src/sim/ether_segment.h"
#include "src/sim/medium.h"

namespace plan9 {
namespace {

// A little two-host internet: alice and bob on one Ethernet segment.
struct TwoHosts {
  explicit TwoHosts(LinkParams params = LinkParams{.latency = std::chrono::microseconds(50)})
      : segment(params),
        alice_ip(Ipv4Addr::FromOctets(135, 104, 9, 31)),
        bob_ip(Ipv4Addr::FromOctets(135, 104, 9, 6)) {
    alice.AddEtherInterface(&segment, MacAddr{8, 0, 0x69, 2, 0x22, 0xf0}, alice_ip,
                            Ipv4Addr{0xffffff00});
    bob.AddEtherInterface(&segment, MacAddr{8, 0, 0x69, 2, 0x22, 0xf1}, bob_ip,
                          Ipv4Addr{0xffffff00});
  }
  EtherSegment segment;
  IpStack alice, bob;
  Ipv4Addr alice_ip, bob_ip;
};

std::string ReadSome(NetConv* conv, size_t max = 4096) {
  Bytes buf(max);
  auto n = conv->Read(buf.data(), buf.size());
  EXPECT_TRUE(n.ok());
  return std::string(buf.begin(), buf.begin() + static_cast<long>(n.value_or(0)));
}

TEST(Ip, ChecksumKnownVector) {
  // RFC 1071 example bytes.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  uint16_t sum = InetChecksum(data, sizeof data);
  // Recomputing over data + stored checksum must give 0.
  uint8_t with[10];
  memcpy(with, data, 8);
  with[8] = static_cast<uint8_t>(sum >> 8);
  with[9] = static_cast<uint8_t>(sum);
  EXPECT_EQ(InetChecksum(with, sizeof with), 0);
}

TEST(Ip, ParseFormatAddresses) {
  auto a = IpFromString("135.104.9.31");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(IpToString(*a), "135.104.9.31");
  EXPECT_FALSE(IpFromString("1.2.3").ok());
  EXPECT_FALSE(IpFromString("1.2.3.299").ok());
  EXPECT_FALSE(IpFromString("a.b.c.d").ok());
}

TEST(Ip, ClassMasks) {
  EXPECT_EQ(ClassMask(Ipv4Addr::FromOctets(10, 0, 0, 1)).v, 0xff000000u);
  EXPECT_EQ(ClassMask(Ipv4Addr::FromOctets(135, 104, 9, 31)).v, 0xffff0000u);
  EXPECT_EQ(ClassMask(Ipv4Addr::FromOctets(192, 168, 1, 1)).v, 0xffffff00u);
}

TEST(Ip, SourceForUsesInterfaceAddr) {
  TwoHosts net;
  auto src = net.alice.SourceFor(net.bob_ip);
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->v, net.alice_ip.v);
  EXPECT_FALSE(net.alice.SourceFor(Ipv4Addr::FromOctets(1, 2, 3, 4)).ok());
}

TEST(Udp, DatagramRoundTripPreservesBoundaries) {
  TwoHosts net;
  UdpProto audp(&net.alice), budp(&net.bob);

  auto server = budp.Clone();
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Ctl("announce 7").ok());

  auto client = audp.Clone();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Ctl("connect 135.104.9.6!7").ok());
  ASSERT_TRUE((*client)->Write(reinterpret_cast<const uint8_t*>("ping"), 4).ok());
  ASSERT_TRUE((*client)->Write(reinterpret_cast<const uint8_t*>("pong!"), 5).ok());

  auto spawned_idx = (*server)->Listen();
  ASSERT_TRUE(spawned_idx.ok());
  NetConv* spawned = budp.Conv(static_cast<size_t>(*spawned_idx));
  ASSERT_NE(spawned, nullptr);

  // Datagram boundaries preserved: two reads, two messages.
  EXPECT_EQ(ReadSome(spawned), "ping");
  EXPECT_EQ(ReadSome(spawned), "pong!");

  // And the spawned conversation can answer.
  ASSERT_TRUE(spawned->Write(reinterpret_cast<const uint8_t*>("yes?"), 4).ok());
  EXPECT_EQ(ReadSome(*client), "yes?");
}

TEST(Udp, LossyNetworkDropsDatagrams) {
  TwoHosts net{LinkParams{.latency = std::chrono::microseconds(10),
                          .loss_rate = 0.5,
                          .seed = 42}};
  UdpProto audp(&net.alice), budp(&net.bob);
  auto server = budp.Clone();
  ASSERT_TRUE((*server)->Ctl("announce 9").ok());
  auto client = audp.Clone();
  ASSERT_TRUE((*client)->Ctl("connect 135.104.9.6!9").ok());
  // First datagram rides behind the ARP exchange, which itself can be lost;
  // send a burst and verify *some* but not all arrive (no reliability).
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE((*client)->Write(reinterpret_cast<const uint8_t*>("x"), 1).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto idx = (*server)->Listen();
  if (!idx.ok()) {
    // Statistically near-impossible with seed 42, but loss could eat all.
    GTEST_SKIP() << "all datagrams lost";
  }
  NetConv* spawned = budp.Conv(static_cast<size_t>(*idx));
  int got = 0;
  while (spawned->stream()->HasInput() && got < 40) {
    ReadSome(spawned);
    got++;
  }
  EXPECT_GT(got, 0);
  EXPECT_LT(got, 40);  // with 50% loss each way, some must vanish
}

class IlTest : public ::testing::Test {
 protected:
  void Dial(const char* addr = "connect 135.104.9.6!17008") {
    server_conv_ = bil_->Clone().take();
    ASSERT_TRUE(server_conv_->Ctl("announce 17008").ok());
    client_conv_ = ail_->Clone().take();
    ASSERT_TRUE(client_conv_->Ctl(addr).ok());
    ASSERT_TRUE(client_conv_->WaitReady().ok());
    auto idx = server_conv_->Listen();
    ASSERT_TRUE(idx.ok());
    accepted_ = bil_->Conv(static_cast<size_t>(*idx));
    ASSERT_NE(accepted_, nullptr);
    ASSERT_TRUE(accepted_->WaitReady().ok());
  }

  void Build(LinkParams params) {
    net_ = std::make_unique<TwoHosts>(params);
    ail_ = std::make_unique<IlProto>(&net_->alice);
    bil_ = std::make_unique<IlProto>(&net_->bob);
  }

  std::unique_ptr<TwoHosts> net_;
  std::unique_ptr<IlProto> ail_, bil_;
  NetConv* server_conv_ = nullptr;
  NetConv* client_conv_ = nullptr;
  NetConv* accepted_ = nullptr;
};

TEST_F(IlTest, ConnectTransferClose) {
  Build(LinkParams{.latency = std::chrono::microseconds(50)});
  Dial();
  ASSERT_TRUE(client_conv_->Write(reinterpret_cast<const uint8_t*>("hello il"), 8).ok());
  EXPECT_EQ(ReadSome(accepted_), "hello il");
  ASSERT_TRUE(accepted_->Write(reinterpret_cast<const uint8_t*>("ack"), 3).ok());
  EXPECT_EQ(ReadSome(client_conv_), "ack");
  client_conv_->CloseUser();
  // Server side sees EOF.
  EXPECT_EQ(ReadSome(accepted_), "");
}

TEST_F(IlTest, PreservesMessageBoundaries) {
  Build(LinkParams{.latency = std::chrono::microseconds(20)});
  Dial();
  for (int i = 0; i < 10; i++) {
    std::string msg = "message-" + std::to_string(i);
    ASSERT_TRUE(client_conv_
                    ->Write(reinterpret_cast<const uint8_t*>(msg.data()), msg.size())
                    .ok());
  }
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(ReadSome(accepted_), "message-" + std::to_string(i));
  }
}

TEST_F(IlTest, ReliableUnderLoss) {
  // 15% loss each way: IL must deliver everything, in order.
  Build(LinkParams{.latency = std::chrono::microseconds(20),
                   .loss_rate = 0.15,
                   .seed = 7});
  Dial();
  constexpr int kMessages = 60;
  std::thread sender([&] {
    for (int i = 0; i < kMessages; i++) {
      std::string msg = "m" + std::to_string(i);
      ASSERT_TRUE(client_conv_
                      ->Write(reinterpret_cast<const uint8_t*>(msg.data()), msg.size())
                      .ok());
    }
  });
  for (int i = 0; i < kMessages; i++) {
    EXPECT_EQ(ReadSome(accepted_), "m" + std::to_string(i));
  }
  sender.join();
  const auto& stats = static_cast<IlConv*>(client_conv_)->metrics();
  EXPECT_GT(stats.retransmits.value() + stats.queries_sent.value(), 0u)
      << "loss must trigger recovery";
}

TEST_F(IlTest, LargeMessagesFragmentAndReassemble) {
  Build(LinkParams{.latency = std::chrono::microseconds(20)});
  Dial();
  Bytes big(16 * 1024);
  for (size_t i = 0; i < big.size(); i++) {
    big[i] = static_cast<uint8_t>(i * 31);
  }
  ASSERT_TRUE(client_conv_->Write(big.data(), big.size()).ok());
  Bytes got(big.size());
  size_t off = 0;
  while (off < got.size()) {
    auto n = accepted_->Read(got.data() + off, got.size() - off);
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u);
    off += *n;
  }
  EXPECT_EQ(got, big);
  EXPECT_GT(net_->alice.stats().fragments_sent.value(), 0u)
      << "16K exceeds the ether MTU";
}

TEST_F(IlTest, ConnectToUnannouncedPortTimesOut) {
  Build(LinkParams{.latency = std::chrono::microseconds(20)});
  auto conv = ail_->Clone().take();
  ASSERT_TRUE(conv->Ctl("connect 135.104.9.6!999").ok());
  EXPECT_FALSE(conv->WaitReady().ok());
}

TEST_F(IlTest, AdaptiveRttConverges) {
  Build(LinkParams{.latency = std::chrono::microseconds(500)});
  Dial();
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(client_conv_->Write(reinterpret_cast<const uint8_t*>("x"), 1).ok());
    ReadSome(accepted_);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto srtt = static_cast<IlConv*>(client_conv_)->Srtt();
  // srtt should be near 2*latency (request+ack), well under the initial 100ms.
  EXPECT_GT(srtt.count(), 500);
  EXPECT_LT(srtt.count(), 50'000);
}

class TcpTest : public ::testing::Test {
 protected:
  void Build(LinkParams params) {
    net_ = std::make_unique<TwoHosts>(params);
    atcp_ = std::make_unique<TcpProto>(&net_->alice);
    btcp_ = std::make_unique<TcpProto>(&net_->bob);
  }
  void Dial(uint16_t port = 564) {
    server_conv_ = btcp_->Clone().take();
    ASSERT_TRUE(server_conv_->Ctl("announce " + std::to_string(port)).ok());
    client_conv_ = atcp_->Clone().take();
    ASSERT_TRUE(
        client_conv_->Ctl("connect 135.104.9.6!" + std::to_string(port)).ok());
    ASSERT_TRUE(client_conv_->WaitReady().ok());
    auto idx = server_conv_->Listen();
    ASSERT_TRUE(idx.ok());
    accepted_ = btcp_->Conv(static_cast<size_t>(*idx));
    ASSERT_NE(accepted_, nullptr);
  }

  std::unique_ptr<TwoHosts> net_;
  std::unique_ptr<TcpProto> atcp_, btcp_;
  NetConv* server_conv_ = nullptr;
  NetConv* client_conv_ = nullptr;
  NetConv* accepted_ = nullptr;
};

TEST_F(TcpTest, ConnectTransfer) {
  Build(LinkParams{.latency = std::chrono::microseconds(50)});
  Dial();
  ASSERT_TRUE(client_conv_->Write(reinterpret_cast<const uint8_t*>("GET /"), 5).ok());
  std::string got;
  while (got.size() < 5) {
    got += ReadSome(accepted_);
  }
  EXPECT_EQ(got, "GET /");
}

TEST_F(TcpTest, DoesNotPreserveDelimiters) {
  // "TCP ... does not preserve delimiters": two writes may arrive as one
  // read.  We only assert the byte stream is intact and ordered.
  Build(LinkParams{.latency = std::chrono::microseconds(20)});
  Dial();
  ASSERT_TRUE(client_conv_->Write(reinterpret_cast<const uint8_t*>("abc"), 3).ok());
  ASSERT_TRUE(client_conv_->Write(reinterpret_cast<const uint8_t*>("def"), 3).ok());
  std::string got;
  while (got.size() < 6) {
    got += ReadSome(accepted_);
  }
  EXPECT_EQ(got, "abcdef");
}

TEST_F(TcpTest, BulkTransferUnderLoss) {
  Build(LinkParams{.latency = std::chrono::microseconds(20),
                   .loss_rate = 0.08,
                   .seed = 3});
  Dial();
  constexpr size_t kTotal = 200 * 1024;
  std::thread sender([&] {
    Bytes chunk(8192);
    size_t sent = 0;
    uint8_t v = 0;
    while (sent < kTotal) {
      for (auto& b : chunk) {
        b = v++;
      }
      ASSERT_TRUE(client_conv_->Write(chunk.data(), chunk.size()).ok());
      sent += chunk.size();
    }
  });
  size_t got = 0;
  uint8_t expect = 0;
  Bytes buf(16384);
  while (got < kTotal) {
    auto n = accepted_->Read(buf.data(), buf.size());
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u) << "premature EOF at " << got;
    for (size_t i = 0; i < *n; i++) {
      ASSERT_EQ(buf[i], expect) << "byte " << got + i << " corrupt";
      expect++;
    }
    got += *n;
  }
  sender.join();
  const auto& stats = static_cast<TcpConv*>(client_conv_)->metrics();
  EXPECT_GT(stats.retransmit_segs.value(), 0u);
}

TEST_F(TcpTest, ConnectRefusedByRst) {
  Build(LinkParams{.latency = std::chrono::microseconds(20)});
  auto conv = atcp_->Clone().take();
  ASSERT_TRUE(conv->Ctl("connect 135.104.9.6!81").ok());
  auto status = conv->WaitReady();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().message(), kErrConnRefused);
}

TEST_F(TcpTest, GracefulCloseGivesEof) {
  Build(LinkParams{.latency = std::chrono::microseconds(20)});
  Dial();
  ASSERT_TRUE(client_conv_->Write(reinterpret_cast<const uint8_t*>("bye"), 3).ok());
  std::string got;
  while (got.size() < 3) {
    got += ReadSome(accepted_);
  }
  client_conv_->CloseUser();
  EXPECT_EQ(ReadSome(accepted_), "");  // EOF after FIN
}

TEST_F(TcpTest, StatusFileShape) {
  Build(LinkParams{.latency = std::chrono::microseconds(20)});
  Dial();
  auto status = static_cast<TcpConv*>(client_conv_)->StatusText();
  EXPECT_NE(status.find("Established"), std::string::npos);
  EXPECT_NE(status.find("tcp/"), std::string::npos);
}

}  // namespace
}  // namespace plan9

// Fault injection and end-to-end recovery.
//
// The robustness claims under test: same seed => same fault decisions
// (deterministic replay), Dial retries and falls through dead addresses,
// 9P RPC deadlines fire and Tflush suppresses late replies, IL's deadman
// kills connections on dead links, and a 9P mount over IL survives a
// hostile link (burst loss + reordering + duplication + corruption + a
// two-second partition) with zero hangs and zero corrupted payloads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/base/strings.h"
#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/ninep/client.h"
#include "src/ninep/transport.h"
#include "src/sim/ether_segment.h"
#include "src/sim/faults.h"
#include "src/sim/wire.h"
#include "src/svc/exportfs.h"
#include "src/world/boot.h"
#include "src/world/node.h"

namespace plan9 {
namespace {

using std::chrono::milliseconds;
using std::chrono::microseconds;

// ---------------------------------------------------------------------------
// FaultInjector unit tests
// ---------------------------------------------------------------------------

bool SameDecision(const FaultInjector::Decision& a, const FaultInjector::Decision& b) {
  return a.drop == b.drop && a.duplicate == b.duplicate && a.corrupt == b.corrupt &&
         a.corrupt_bit == b.corrupt_bit && a.extra_delay == b.extra_delay;
}

TEST(FaultInjector, SameSeedSameDecisionSequence) {
  auto epoch = TimerWheel::Clock::now();
  FaultProfile profile = FaultProfile::Hostile();
  FaultInjector a(profile, 42, epoch);
  FaultInjector b(profile, 42, epoch);
  FaultInjector other(profile, 43, epoch);
  int divergences = 0;
  for (int i = 0; i < 5000; i++) {
    size_t size = 64 + static_cast<size_t>(i % 700);
    auto da = a.Evaluate(epoch, size);
    auto db = b.Evaluate(epoch, size);
    ASSERT_TRUE(SameDecision(da, db)) << "diverged at frame " << i;
    if (!SameDecision(da, other.Evaluate(epoch, size))) {
      divergences++;
    }
  }
  EXPECT_EQ(a.stats().drops_burst.value(), b.stats().drops_burst.value());
  EXPECT_EQ(a.stats().dups.value(), b.stats().dups.value());
  EXPECT_EQ(a.stats().reorders.value(), b.stats().reorders.value());
  EXPECT_EQ(a.stats().corruptions.value(), b.stats().corruptions.value());
  EXPECT_EQ(a.stats().bad_state_entries.value(), b.stats().bad_state_entries.value());
  // A hostile profile actually exercises every fault mode...
  EXPECT_GT(a.stats().drops_burst.value(), 0u);
  EXPECT_GT(a.stats().dups.value(), 0u);
  EXPECT_GT(a.stats().reorders.value(), 0u);
  EXPECT_GT(a.stats().corruptions.value(), 0u);
  EXPECT_GT(a.stats().bad_state_entries.value(), 0u);
  // ...and a different seed gives a genuinely different trace.
  EXPECT_GT(divergences, 0);
}

TEST(FaultInjector, PartitionScriptAndFlap) {
  auto epoch = TimerWheel::Clock::now();
  FaultProfile p;
  p.partitions.push_back(PartitionWindow{milliseconds(10), milliseconds(20)});
  FaultInjector inj(p, 1, epoch);
  EXPECT_FALSE(inj.down(epoch + milliseconds(5)));
  EXPECT_TRUE(inj.down(epoch + milliseconds(10)));
  EXPECT_TRUE(inj.down(epoch + milliseconds(29)));
  EXPECT_FALSE(inj.down(epoch + milliseconds(30)));

  FaultProfile f;
  f.flap_period = milliseconds(100);
  f.flap_down = milliseconds(30);
  FaultInjector flappy(f, 1, epoch);
  EXPECT_TRUE(flappy.down(epoch + milliseconds(10)));   // phase 10 < 30
  EXPECT_FALSE(flappy.down(epoch + milliseconds(50)));  // phase 50
  EXPECT_TRUE(flappy.down(epoch + milliseconds(110)));  // phase 10 again
  EXPECT_FALSE(flappy.down(epoch + milliseconds(199))); // phase 99
}

TEST(FaultInjector, ForcedPartitionDropsEverything) {
  auto epoch = TimerWheel::Clock::now();
  FaultInjector inj(FaultProfile{}, 7, epoch);
  inj.SetDown(true);
  for (int i = 0; i < 10; i++) {
    EXPECT_TRUE(inj.Evaluate(epoch, 100).drop);
  }
  EXPECT_EQ(inj.stats().drops_partition.value(), 10u);
  inj.SetDown(false);
  EXPECT_FALSE(inj.Evaluate(epoch, 100).drop);
  EXPECT_EQ(inj.stats().drops_partition.value(), 10u);
}

TEST(FaultInjector, ApplyCorruptionFlipsExactlyOneBit) {
  Bytes frame(32);
  for (size_t i = 0; i < frame.size(); i++) {
    frame[i] = static_cast<uint8_t>(i * 3);
  }
  Bytes original = frame;
  FaultInjector::ApplyCorruption(&frame, 77);
  int bits_different = 0;
  for (size_t i = 0; i < frame.size(); i++) {
    uint8_t diff = frame[i] ^ original[i];
    while (diff != 0) {
      bits_different += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bits_different, 1);
  FaultInjector::ApplyCorruption(&frame, 77);  // flipping again restores
  EXPECT_EQ(frame, original);
}

TEST(FaultInjector, FormatFaultStatsStableSchema) {
  FaultStats s;
  s.drops_burst.Inc(3);
  std::string text = FormatFaultStats(s);
  EXPECT_NE(text.find("fault-drops-burst: 3\n"), std::string::npos);
  EXPECT_NE(text.find("fault-drops-partition: 0\n"), std::string::npos);
  EXPECT_NE(text.find("fault-dups: 0\n"), std::string::npos);
  std::string rx = FormatFaultStats(s, "rx-fault-");
  EXPECT_NE(rx.find("rx-fault-drops-burst: 3\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire / EtherSegment replay tests
// ---------------------------------------------------------------------------

// Order-insensitive digest of a delivery trace: the timer wheel may permute
// concurrent deliveries between runs, but the *set* of delivered payloads
// (post-corruption) and every counter must replay exactly.
struct DeliveryTrace {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> digest{0};

  void Add(const Bytes& frame) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint8_t b : frame) {
      h = (h ^ b) * 0x100000001b3ULL;
    }
    count++;
    digest += h;  // commutative fold
  }

  // Wait until deliveries stop arriving.
  uint64_t Settle() const {
    uint64_t last = count.load();
    for (int i = 0; i < 100; i++) {
      std::this_thread::sleep_for(milliseconds(20));
      uint64_t now = count.load();
      if (now == last && i >= 2) {
        break;
      }
      last = now;
    }
    return count.load();
  }
};

TEST(WireFaults, SameSeedSameDeliveryTrace) {
  auto run = [](uint64_t seed) {
    LinkParams params = LinkParams::Cyclone();
    params.seed = seed;
    params.faults = FaultProfile::Hostile();
    Wire wire(params);
    DeliveryTrace trace;
    wire.Attach(Wire::kB, [&](Bytes frame) { trace.Add(frame); });
    for (int i = 0; i < 400; i++) {
      Bytes frame(64 + static_cast<size_t>(i % 200));
      for (size_t j = 0; j < frame.size(); j++) {
        frame[j] = static_cast<uint8_t>(i * 31 + j);
      }
      EXPECT_TRUE(wire.Send(Wire::kA, std::move(frame)).ok());
    }
    uint64_t delivered = trace.Settle();
    const auto& fs = wire.fault_stats(Wire::kA);
    auto snap = std::tuple(delivered, trace.digest.load(), fs.drops_burst.value(),
                           fs.dups.value(), fs.reorders.value(),
                           fs.corruptions.value());
    wire.Detach(Wire::kB);
    return snap;
  };
  auto first = run(99);
  auto second = run(99);
  auto different = run(100);
  EXPECT_EQ(first, second);
  EXPECT_NE(std::get<1>(first), std::get<1>(different));
  // Sanity: faults really happened and drops really suppressed delivery.
  EXPECT_GT(std::get<2>(first), 0u);
  EXPECT_EQ(std::get<0>(first), 400 - std::get<2>(first) + std::get<3>(first));
}

TEST(WireFaults, DuplicationDeliversTwice) {
  LinkParams params = LinkParams::Cyclone();
  params.faults.dup_rate = 1.0;
  Wire wire(params);
  DeliveryTrace trace;
  wire.Attach(Wire::kB, [&](Bytes frame) { trace.Add(frame); });
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(wire.Send(Wire::kA, Bytes(100, static_cast<uint8_t>(i))).ok());
  }
  EXPECT_EQ(trace.Settle(), 100u);
  EXPECT_EQ(wire.fault_stats(Wire::kA).dups.value(), 50u);
  wire.Detach(Wire::kB);
}

TEST(WireFaults, PartitionSilencesTheLink) {
  Wire wire(LinkParams::Cyclone());
  DeliveryTrace trace;
  wire.Attach(Wire::kB, [&](Bytes frame) { trace.Add(frame); });
  wire.SetPartitioned(true);
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(wire.Send(Wire::kA, Bytes(64, 0xab)).ok());
  }
  EXPECT_EQ(trace.Settle(), 0u);
  EXPECT_EQ(wire.fault_stats(Wire::kA).drops_partition.value(), 20u);
  wire.SetPartitioned(false);
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(wire.Send(Wire::kA, Bytes(64, 0xcd)).ok());
  }
  EXPECT_EQ(trace.Settle(), 20u);
  wire.Detach(Wire::kB);
}

TEST(EtherFaults, DuplicationAndPartitionCounters) {
  LinkParams params = LinkParams::Ether10();
  params.faults.dup_rate = 1.0;
  EtherSegment seg(params);
  MacAddr a{8, 0, 0x69, 0, 0, 1}, b{8, 0, 0x69, 0, 0, 2};
  DeliveryTrace trace;
  seg.Attach(a, nullptr);
  seg.Attach(b, [&](const EtherFrame& f) { trace.Add(f.payload); });
  EtherFrame frame;
  frame.src = a;
  frame.dst = b;
  frame.type = 0x0800;
  frame.payload = Bytes(100, 0x5a);
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(seg.Send(frame).ok());
  }
  EXPECT_EQ(trace.Settle(), 20u);
  EXPECT_EQ(seg.fault_stats().dups.value(), 10u);
  seg.SetPartitioned(true);
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(seg.Send(frame).ok());
  }
  EXPECT_EQ(trace.Settle(), 20u);
  EXPECT_EQ(seg.fault_stats().drops_partition.value(), 5u);
}

// ---------------------------------------------------------------------------
// 9P client timeout / Tflush paths, against a scripted in-process server
// ---------------------------------------------------------------------------

// A hand-rolled 9P "server" on the other end of a pipe, driven entirely by
// what it reads: no wall-clock sleeps, so the three flush outcomes are
// decided by message order, not scheduling luck.
class ScriptedServer {
 public:
  explicit ScriptedServer(std::unique_ptr<MsgTransport> t) : t_(std::move(t)) {}
  ~ScriptedServer() {
    t_->Close();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  void Run(std::function<void(MsgTransport*, const Fcall&)> on_msg) {
    thread_ = std::thread([this, on_msg = std::move(on_msg)] {
      for (;;) {
        auto raw = t_->ReadMsg();
        if (!raw.ok() || raw->empty()) {
          return;
        }
        auto msg = Fcall::Unpack(*raw);
        if (msg.ok()) {
          on_msg(t_.get(), *msg);
        }
      }
    });
  }

  static void Reply(MsgTransport* t, FcallType type, uint16_t tag) {
    Fcall r;
    r.type = type;
    r.tag = tag;
    auto packed = r.Pack();
    ASSERT_TRUE(packed.ok());
    (void)t->WriteMsg(*packed);
  }

 private:
  std::unique_ptr<MsgTransport> t_;
  std::thread thread_;
};

TEST(NinepTimeout, FlushConfirmedSurfacesTimeoutAndConnectionSurvives) {
  auto pipe = PipeTransport::Make();
  ScriptedServer server(std::move(pipe.second));
  // Script: swallow the first Tnop; confirm its Tflush; answer everything
  // else normally.
  server.Run([swallowed = false](MsgTransport* t, const Fcall& m) mutable {
    if (m.type == FcallType::kTnop && !swallowed) {
      swallowed = true;
      return;  // never answered: the client must flush it
    }
    if (m.type == FcallType::kTflush) {
      ScriptedServer::Reply(t, FcallType::kRflush, m.tag);
      return;
    }
    ScriptedServer::Reply(t, static_cast<FcallType>(static_cast<uint8_t>(m.type) + 1),
                          m.tag);
  });

  NinepClient client(std::move(pipe.first));
  client.SetRpcTimeout(milliseconds(150));
  auto r = client.Rpc(TnopMsg());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message(), std::string(kErrTimedOut));

  // The flush reaped the tag; the connection keeps working.
  EXPECT_TRUE(client.Rpc(TnopMsg()).ok());
  EXPECT_TRUE(client.ok());
  const auto& s = client.stats();
  EXPECT_EQ(s.timeouts.value(), 1u);
  EXPECT_EQ(s.flushes_sent.value(), 1u);
  EXPECT_EQ(s.flushed.value(), 1u);
  EXPECT_EQ(s.late_replies.value(), 0u);
  EXPECT_EQ(s.failures.value(), 0u);
}

TEST(NinepTimeout, LateReplyBeatsFlushAndIsDelivered) {
  auto pipe = PipeTransport::Make();
  ScriptedServer server(std::move(pipe.second));
  // Script: hold the Tnop until its Tflush arrives (proof the client timed
  // out), then answer the *original* tag first and the flush second — the
  // late reply outruns the Rflush.
  server.Run([held_tag = uint16_t{0}, holding = false](MsgTransport* t,
                                                       const Fcall& m) mutable {
    if (m.type == FcallType::kTnop && !holding) {
      holding = true;
      held_tag = m.tag;
      return;
    }
    if (m.type == FcallType::kTflush) {
      ScriptedServer::Reply(t, FcallType::kRnop, held_tag);
      ScriptedServer::Reply(t, FcallType::kRflush, m.tag);
      return;
    }
    ScriptedServer::Reply(t, static_cast<FcallType>(static_cast<uint8_t>(m.type) + 1),
                          m.tag);
  });

  NinepClient client(std::move(pipe.first));
  client.SetRpcTimeout(milliseconds(150));
  auto r = client.Rpc(TnopMsg());
  ASSERT_TRUE(r.ok()) << r.error().message();
  EXPECT_EQ(r->type, FcallType::kRnop);
  EXPECT_TRUE(client.ok());
  // The orphan Rflush must be consumed, not misdelivered: the next RPC
  // reuses tags safely.
  EXPECT_TRUE(client.Rpc(TnopMsg()).ok());
  const auto& s = client.stats();
  EXPECT_EQ(s.timeouts.value(), 1u);
  EXPECT_EQ(s.flushes_sent.value(), 1u);
  EXPECT_EQ(s.late_replies.value(), 1u);
  EXPECT_EQ(s.flushed.value(), 0u);
  EXPECT_EQ(s.failures.value(), 0u);
}

TEST(NinepTimeout, UnansweredFlushDeclaresConnectionDead) {
  auto pipe = PipeTransport::Make();
  ScriptedServer server(std::move(pipe.second));
  server.Run([](MsgTransport*, const Fcall&) {
    // A black hole: neither RPCs nor flushes are ever answered.
  });

  NinepClient client(std::move(pipe.first));
  client.SetRpcTimeout(milliseconds(100));
  std::atomic<bool> hook_fired{false};
  std::string hook_why;
  client.OnDead([&](const std::string& why) {
    hook_why = why;
    hook_fired = true;
  });

  auto r = client.Rpc(TnopMsg());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(hook_fired.load());
  EXPECT_FALSE(hook_why.empty());
  EXPECT_FALSE(client.ok());
  // Subsequent RPCs fail fast without touching the wire.
  auto r2 = client.Rpc(TnopMsg());
  EXPECT_FALSE(r2.ok());
  const auto& s = client.stats();
  EXPECT_EQ(s.timeouts.value(), 1u);
  EXPECT_EQ(s.flushes_sent.value(), 1u);
  EXPECT_EQ(s.failures.value(), 1u);
}

// ---------------------------------------------------------------------------
// Network fixture for Dial retry/fallback, IL deadman, and the e2e workload
// ---------------------------------------------------------------------------

constexpr char kNdb[] = R"(sys=helix
	ip=135.104.9.31
sys=musca
	ip=135.104.9.6
sys=flaky
	ip=10.99.0.1 ip=135.104.9.6
il=9fs port=17008
il=fallback port=6009
il=deadtest port=6010
il=reaper port=6011
tcp=retry port=7001
)";

class FaultNetTest : public ::testing::Test {
 protected:
  explicit FaultNetTest(LinkParams params = LinkParams::Ether10()) : ether_(params) {}

  void SetUp() override {
    db_ = std::make_shared<Ndb>();
    ASSERT_TRUE(db_->Load(kNdb).ok());
    helix_ = std::make_unique<Node>("helix");
    musca_ = std::make_unique<Node>("musca");
    helix_->AddEther(&ether_, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                     Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
    musca_->AddEther(&ether_, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                     Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
    ASSERT_TRUE(BootNetwork(helix_.get(), db_, kNdb).ok());
    ASSERT_TRUE(BootNetwork(musca_.get(), db_, kNdb).ok());
  }

  EtherSegment ether_;
  std::shared_ptr<Ndb> db_;
  std::unique_ptr<Node> helix_, musca_;
};

TEST_F(FaultNetTest, DialRetriesUntilServiceAppears) {
  auto client = helix_->NewProc();

  // Nobody home yet: the single-shot dial fails fast (TCP RST).
  auto once = Dial(client.get(), "tcp!musca!retry");
  ASSERT_FALSE(once.ok());

  // The service comes up while the retrying dial is backing off.
  auto server = musca_->NewProc();
  std::thread announcer([&] {
    std::this_thread::sleep_for(milliseconds(250));
    std::string adir;
    auto afd = Announce(server.get(), "tcp!*!retry", &adir);
    ASSERT_TRUE(afd.ok()) << afd.error().message();
    std::string ldir;
    auto lcfd = Listen(server.get(), adir, &ldir);
    ASSERT_TRUE(lcfd.ok());
    auto dfd = Accept(server.get(), *lcfd, ldir);
    ASSERT_TRUE(dfd.ok());
    char buf[16];
    auto n = server->Read(*dfd, buf, sizeof buf);
    ASSERT_TRUE(n.ok());
    ASSERT_TRUE(server->Write(*dfd, buf, *n).ok());
    (void)server->Close(*dfd);
    (void)server->Close(*lcfd);
    (void)server->Close(*afd);
  });

  DialOptions opts;
  opts.attempts = 40;
  opts.backoff = milliseconds(50);
  opts.multiplier = 1.5;
  opts.max_backoff = milliseconds(200);
  opts.jitter_seed = 7;
  std::string dir;
  auto fd = Dial(client.get(), "tcp!musca!retry", opts, &dir);
  ASSERT_TRUE(fd.ok()) << fd.error().message();
  ASSERT_TRUE(client->WriteString(*fd, "ping").ok());
  char buf[16];
  auto n = client->Read(*fd, buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, *n), "ping");

  // Satellite check: the TCP conversation exposes a stats file.
  auto sfd = client->Open(dir + "/stats", kORead);
  ASSERT_TRUE(sfd.ok());
  auto text = client->ReadString(*sfd, 1024);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("rexmit:"), std::string::npos);
  EXPECT_NE(text->find("sent:"), std::string::npos);
  (void)client->Close(*sfd);
  (void)client->Close(*fd);
  announcer.join();
}

TEST_F(FaultNetTest, DialFallsThroughDeadAddressToLiveOne) {
  // "flaky" advertises an unroutable first address and musca's real one
  // second; CS hands back both and Dial walks them in order.
  auto server = musca_->NewProc();
  std::string adir;
  auto afd = Announce(server.get(), "il!*!fallback", &adir);
  ASSERT_TRUE(afd.ok()) << afd.error().message();
  std::thread listener([&] {
    std::string ldir;
    auto lcfd = Listen(server.get(), adir, &ldir);
    ASSERT_TRUE(lcfd.ok()) << lcfd.error().message();
    auto dfd = Accept(server.get(), *lcfd, ldir);
    ASSERT_TRUE(dfd.ok()) << dfd.error().message() << " ldir=" << ldir;
    char buf[16];
    auto n = server->Read(*dfd, buf, sizeof buf);
    if (n.ok()) {
      (void)server->Write(*dfd, buf, *n);
    }
    (void)server->Close(*dfd);
    (void)server->Close(*lcfd);
  });

  auto client = helix_->NewProc();
  std::string dir;
  auto fd = Dial(client.get(), "il!flaky!fallback", &dir);
  ASSERT_TRUE(fd.ok()) << fd.error().message();
  auto rfd = client->Open(dir + "/remote", kORead);
  ASSERT_TRUE(rfd.ok());
  auto remote = client->ReadString(*rfd, 64);
  ASSERT_TRUE(remote.ok());
  EXPECT_NE(remote->find("135.104.9.6"), std::string::npos) << *remote;
  (void)client->Close(*rfd);
  // Round-trip before closing, so the accept side is done with the call.
  ASSERT_TRUE(client->WriteString(*fd, "bye").ok());
  char buf[16];
  auto n = client->Read(*fd, buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, *n), "bye");
  (void)client->Close(*fd);
  listener.join();
}

TEST_F(FaultNetTest, IlDeadmanKillsConnectionAcrossDeadLink) {
  auto server = musca_->NewProc();
  std::string adir;
  auto afd = Announce(server.get(), "il!*!deadtest", &adir);
  ASSERT_TRUE(afd.ok()) << afd.error().message();
  int server_dfd = -1, server_lcfd = -1;
  std::thread listener([&] {
    std::string ldir;
    auto lcfd = Listen(server.get(), adir, &ldir);
    ASSERT_TRUE(lcfd.ok());
    auto dfd = Accept(server.get(), *lcfd, ldir);
    ASSERT_TRUE(dfd.ok());
    char buf[16];
    auto n = server->Read(*dfd, buf, sizeof buf);
    ASSERT_TRUE(n.ok());
    server_dfd = *dfd;
    server_lcfd = *lcfd;
  });

  auto client = helix_->NewProc();
  std::string dir;
  auto fd = Dial(client.get(), "il!musca!deadtest", &dir);
  ASSERT_TRUE(fd.ok()) << fd.error().message();
  ASSERT_TRUE(client->WriteString(*fd, "hello").ok());
  listener.join();

  // Cut the cable, then leave a message unacknowledged: queries go out,
  // nothing comes back, and the deadman fires long before the full
  // exponential-backoff ladder would.
  ether_.SetPartitioned(true);
  ASSERT_TRUE(client->WriteString(*fd, "doomed").ok());

  // The blocked read must return (error or EOF), not hang.
  char buf[16];
  auto n = client->Read(*fd, buf, sizeof buf);
  EXPECT_TRUE(!n.ok() || *n == 0);

  auto sfd = client->Open(dir + "/stats", kORead);
  ASSERT_TRUE(sfd.ok());
  auto text = client->ReadString(*sfd, 1024);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("deadman: 1"), std::string::npos) << *text;
  EXPECT_EQ(text->find("queries: 0"), std::string::npos) << *text;
  (void)client->Close(*sfd);
  (void)client->Close(*fd);
  EXPECT_GT(ether_.fault_stats().drops_partition.value(), 0u);

  ether_.SetPartitioned(false);
  (void)server->Close(server_dfd);
  (void)server->Close(server_lcfd);
  (void)server->Close(*afd);
}

TEST_F(FaultNetTest, AbandonedPeerIsReapedByKeepalive) {
  // A server holds an established conversation whose client died across a
  // partition (deadman kill — no kClose ever arrives).  The server side is
  // idle: nothing unacked, so no query ladder runs, and without keep-alives
  // its reader would block forever (and a Service join would hang on it).
  // The keep-alive probe must draw a reset from the peer — which has no
  // record of the conversation — and unblock the read.
  auto server = musca_->NewProc();
  std::string adir;
  auto afd = Announce(server.get(), "il!*!reaper", &adir);
  ASSERT_TRUE(afd.ok()) << afd.error().message();
  std::atomic<bool> server_read_returned{false};
  std::thread listener([&] {
    std::string ldir;
    auto lcfd = Listen(server.get(), adir, &ldir);
    ASSERT_TRUE(lcfd.ok());
    auto dfd = Accept(server.get(), *lcfd, ldir);
    ASSERT_TRUE(dfd.ok());
    char buf[16];
    auto n = server->Read(*dfd, buf, sizeof buf);
    ASSERT_TRUE(n.ok());
    ASSERT_TRUE(server->Write(*dfd, buf, *n).ok());
    // Block exactly like an exportfs session reader does.
    n = server->Read(*dfd, buf, sizeof buf);
    EXPECT_TRUE(!n.ok() || *n == 0);
    server_read_returned = true;
    (void)server->Close(*dfd);
    (void)server->Close(*lcfd);
  });

  auto client = helix_->NewProc();
  std::string dir;
  auto fd = Dial(client.get(), "il!musca!reaper", &dir);
  ASSERT_TRUE(fd.ok()) << fd.error().message();
  ASSERT_TRUE(client->WriteString(*fd, "hi").ok());
  char buf[16];
  auto n = client->Read(*fd, buf, sizeof buf);  // echoed: both sides go idle
  ASSERT_TRUE(n.ok());

  // The client dies behind a partition: its close handshake all drops, so
  // the server never hears the hangup.
  ether_.SetPartitioned(true);
  (void)client->Close(*fd);
  std::this_thread::sleep_for(milliseconds(800));  // close ladder exhausts
  ether_.SetPartitioned(false);

  for (int i = 0; i < 100 && !server_read_returned.load(); i++) {
    std::this_thread::sleep_for(milliseconds(100));
  }
  EXPECT_TRUE(server_read_returned.load());
  listener.join();
  (void)server->Close(*afd);
}

// ---------------------------------------------------------------------------
// The acceptance test: 9P over IL across a hostile link
// ---------------------------------------------------------------------------

class HostileLinkTest : public FaultNetTest {
 protected:
  static LinkParams HostileEther() {
    LinkParams params = LinkParams::Ether10();
    params.seed = 0x9f5eed;
    params.faults = FaultProfile::Hostile();  // 10% burst loss + reorder + dup + corrupt
    return params;
  }
  HostileLinkTest() : FaultNetTest(HostileEther()) {}
};

Bytes OpPayload(int op) {
  Bytes data(64);
  for (size_t j = 0; j < data.size(); j++) {
    data[j] = static_cast<uint8_t>(op * 131 + static_cast<int>(j) * 7 + 5);
  }
  return data;
}

uint64_t ParseStat(const std::string& text, const std::string& key) {
  auto pos = text.find(key + ": ");
  if (pos == std::string::npos) {
    return 0;
  }
  return std::strtoull(text.c_str() + pos + key.size() + 2, nullptr, 10);
}

TEST_F(HostileLinkTest, NinePOverIlCompletesWorkloadWithRecovery) {
  // musca exports its name space over il!*!9fs; helix runs 1000 read/write
  // operations against it through burst loss, reordering, duplication,
  // corruption, and a 2-second partition in the middle.
  auto svc = StartExportfs(std::shared_ptr<Proc>(musca_->NewProc().release()),
                           "il!*!9fs");
  ASSERT_TRUE(svc.ok()) << svc.error().message();

  auto proc = helix_->NewProc();

  struct Session {
    std::shared_ptr<NinepClient> client;
    std::string dir;
    uint32_t file_fid = 0;
  };
  Session sess;
  struct {
    uint64_t rpcs = 0, timeouts = 0, flushes_sent = 0, flushed = 0,
             late_replies = 0, failures = 0;
  } totals;
  uint64_t il_rexmit = 0;
  int reconnects = -1;  // first connect is not a *re*connect

  auto harvest = [&] {
    if (sess.client == nullptr) {
      return;
    }
    const auto& s = sess.client->stats();
    totals.rpcs += s.rpcs.value();
    totals.timeouts += s.timeouts.value();
    totals.flushes_sent += s.flushes_sent.value();
    totals.flushed += s.flushed.value();
    totals.late_replies += s.late_replies.value();
    totals.failures += s.failures.value();
    // The conversation's stats file still answers while the fd is open,
    // even after the connection died.
    auto sfd = proc->Open(sess.dir + "/stats", kORead);
    if (sfd.ok()) {
      auto text = proc->ReadString(*sfd, 1024);
      if (text.ok()) {
        il_rexmit += ParseStat(*text, "rexmit");
      }
      (void)proc->Close(*sfd);
    }
    sess.client.reset();
  };

  auto connect = [&]() -> bool {
    harvest();
    reconnects++;
    DialOptions opts;
    opts.attempts = 10;
    opts.backoff = milliseconds(50);
    opts.multiplier = 1.5;
    opts.max_backoff = milliseconds(400);
    opts.jitter_seed = static_cast<uint64_t>(reconnects) + 1;
    std::string dir;
    auto dfd = Dial(proc.get(), "il!musca!9fs", opts, &dir);
    if (!dfd.ok()) {
      return false;
    }
    auto transport = proc->TransportForFd(*dfd, DialPathDelimited(dir));
    if (transport == nullptr) {
      return false;
    }
    if (!transport->WriteMsg(ToBytes("/")).ok()) {
      return false;
    }
    auto client = std::make_shared<NinepClient>(std::move(transport));
    client->SetRpcTimeout(milliseconds(500));
    if (!client->Session().ok()) {
      return false;
    }
    uint32_t root = client->AllocFid();
    if (!client->Attach(root, "glenda", "").ok()) {
      return false;
    }
    uint32_t fid = client->AllocFid();
    // The workload file persists across reconnects: walk to it, or create
    // it on the first session.
    if (client->CloneWalk(root, fid, {"e2e"}).ok()) {
      if (!client->Open(fid, kORdWr).ok()) {
        return false;
      }
    } else {
      if (!client->CloneWalk(root, fid, {}).ok()) {
        return false;
      }
      if (!client->Create(fid, "e2e", 0666, kORdWr).ok()) {
        return false;
      }
    }
    sess.client = std::move(client);
    sess.dir = dir;
    sess.file_fid = fid;
    return true;
  };

  // One 2-second partition once the workload is warmed up.
  std::atomic<int> ops_done{0};
  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    while (ops_done.load() < 400 && !stop.load()) {
      std::this_thread::sleep_for(milliseconds(5));
    }
    if (stop.load()) {
      return;
    }
    ether_.SetPartitioned(true);
    std::this_thread::sleep_for(milliseconds(2000));
    ether_.SetPartitioned(false);
  });

  constexpr int kOps = 1000;
  constexpr int kSlots = 32;
  int mismatches = 0;
  bool workload_ok = true;
  for (int op = 0; op < kOps && workload_ok; op++) {
    int slot = (op / 2) % kSlots;
    uint64_t offset = static_cast<uint64_t>(slot) * 64;
    bool done = false;
    for (int attempt = 0; attempt < 60 && !done; attempt++) {
      if (sess.client == nullptr && !connect()) {
        continue;  // dial layer already backed off
      }
      if (op % 2 == 0) {
        // A timed-out write may have been applied server-side before the
        // flush; retries rewrite the same bytes, so the workload stays
        // idempotent.
        auto w = sess.client->Write(sess.file_fid, offset, OpPayload(op));
        if (w.ok()) {
          done = true;
        } else {
          harvest();
        }
      } else {
        auto r = sess.client->Read(sess.file_fid, offset, 64);
        if (r.ok()) {
          if (*r != OpPayload(op - 1)) {
            mismatches++;
          }
          done = true;
        } else {
          harvest();
        }
      }
    }
    if (!done) {
      workload_ok = false;
    }
    ops_done++;
  }
  stop = true;
  chaos.join();
  harvest();

  EXPECT_TRUE(workload_ok) << "an operation exhausted its retries";
  EXPECT_EQ(mismatches, 0) << "corrupted payloads reached the application";
  // Recovery machinery demonstrably fired:
  EXPECT_GE(totals.timeouts, 1u);
  EXPECT_GE(totals.flushes_sent, 1u);
  EXPECT_GE(totals.failures, 1u);
  EXPECT_GE(reconnects, 1);
  EXPECT_GT(il_rexmit, 0u);
  // And the medium really was hostile:
  const auto& fs = ether_.fault_stats();
  EXPECT_GT(fs.drops_burst.value(), 0u);
  EXPECT_GT(fs.drops_partition.value(), 0u);
  EXPECT_GT(fs.dups.value(), 0u);
  EXPECT_GT(fs.reorders.value(), 0u);
  EXPECT_GT(fs.corruptions.value(), 0u);
}

}  // namespace
}  // namespace plan9

// End-to-end tests over assembled machines: the paper's §4.2 csquery
// transcripts, §2.3 connection dance, §5 dial/announce/listen, and the
// conventional /net name space.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/base/strings.h"
#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/sim/datakit.h"
#include "src/sim/ether_segment.h"
#include "src/world/boot.h"
#include "src/world/node.h"

namespace plan9 {
namespace {

// The database from §4.1, lightly adapted: helix and musca are CPU servers
// on both the Ethernet and Datakit; p9auth is the auth server named by the
// network's auth= attribute.
constexpr char kNdb[] = R"(ipnet=mh-astro-net ip=135.104.0.0
	auth=p9auth
	auth=musca
ipnet=unix-room ip=135.104.9.0 ipmask=255.255.255.0
sys=helix
	dom=helix.research.bell-labs.com
	ip=135.104.9.31 ether=080069022201
	dk=nj/astro/helix
	proto=il
sys=musca
	dom=musca.research.bell-labs.com
	ip=135.104.9.6 ether=080069022202
	dk=nj/astro/musca
sys=p9auth
	ip=135.104.9.34
	dk=nj/astro/p9auth
il=9fs port=17008
il=rexauth port=17021
il=echo port=56789
tcp=echo port=7
tcp=discard port=9
tcp=9fs port=564
udp=dns port=53
)";

class WorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_shared<Ndb>();
    ASSERT_TRUE(db_->Load(kNdb).ok());
    db_->BuildIndex("sys");
    db_->BuildIndex("dom");

    helix_ = std::make_unique<Node>("helix");
    musca_ = std::make_unique<Node>("musca");
    auto mac = [](uint8_t last) { return MacAddr{8, 0, 0x69, 2, 0x22, last}; };
    helix_->AddEther(&ether_, mac(1), Ipv4Addr::FromOctets(135, 104, 9, 31),
                     Ipv4Addr{0xffffff00});
    musca_->AddEther(&ether_, mac(2), Ipv4Addr::FromOctets(135, 104, 9, 6),
                     Ipv4Addr{0xffffff00});
    helix_->AddDatakit(&dk_, "nj/astro/helix");
    musca_->AddDatakit(&dk_, "nj/astro/musca");
    ASSERT_TRUE(BootNetwork(helix_.get(), db_, kNdb).ok());
    ASSERT_TRUE(BootNetwork(musca_.get(), db_, kNdb).ok());
  }

  EtherSegment ether_{LinkParams::Ether10()};
  DatakitSwitch dk_;
  std::shared_ptr<Ndb> db_;
  std::unique_ptr<Node> helix_, musca_;
};

TEST_F(WorldTest, NetDirectoryHasConventionalShape) {
  auto proc = helix_->NewProc();
  auto entries = proc->ReadDir("/net");
  ASSERT_TRUE(entries.ok());
  std::set<std::string> names;
  for (auto& d : *entries) {
    names.insert(d.name);
  }
  for (const char* want : {"cs", "dns", "tcp", "udp", "il", "ether0", "dk"}) {
    EXPECT_TRUE(names.count(want)) << "missing /net/" << want;
  }
}

TEST_F(WorldTest, CsQueryMatchesPaperTranscript) {
  // "% ndb/csquery
  //  > net!helix!9fs
  //  /net/il/clone 135.104.9.31!17008
  //  /net/dk/clone nj/astro/helix!9fs"
  auto proc = musca_->NewProc();
  auto fd = proc->Open("/net/cs", kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(proc->WriteString(*fd, "net!helix!9fs").ok());
  ASSERT_TRUE(proc->Seek(*fd, 0, kSeekSet).ok());
  std::vector<std::string> lines;
  for (;;) {
    auto line = proc->ReadString(*fd);
    ASSERT_TRUE(line.ok());
    if (line->empty()) {
      break;
    }
    lines.push_back(*line);
  }
  // The paper shows the il and dk candidates, in preference order.  (Our
  // ndb also carries tcp=9fs port=564 — the §2.3 example conversation — so
  // a tcp candidate follows.)
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0], "/net/il/clone 135.104.9.31!17008");
  EXPECT_EQ(lines[1], "/net/dk/clone nj/astro/helix!9fs");
}

TEST_F(WorldTest, CsMetaNameAuthWalk) {
  // "> net!$auth!rexauth" returns the auth systems most closely associated
  // with the source host, on every common network.
  auto proc = helix_->NewProc();
  auto fd = proc->Open("/net/cs", kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(proc->WriteString(*fd, "net!$auth!rexauth").ok());
  ASSERT_TRUE(proc->Seek(*fd, 0, kSeekSet).ok());
  std::set<std::string> lines;
  for (;;) {
    auto line = proc->ReadString(*fd);
    ASSERT_TRUE(line.ok());
    if (line->empty()) {
      break;
    }
    lines.insert(*line);
  }
  EXPECT_TRUE(lines.count("/net/il/clone 135.104.9.34!17021"));
  EXPECT_TRUE(lines.count("/net/dk/clone nj/astro/p9auth!rexauth"));
  EXPECT_TRUE(lines.count("/net/il/clone 135.104.9.6!17021"));
  EXPECT_TRUE(lines.count("/net/dk/clone nj/astro/musca!rexauth"));
}

TEST_F(WorldTest, CsRejectsUnknownHost) {
  auto proc = helix_->NewProc();
  auto fd = proc->Open("/net/cs", kORdWr);
  ASSERT_TRUE(fd.ok());
  EXPECT_FALSE(proc->WriteString(*fd, "net!nonesuch!9fs").ok());
}

TEST_F(WorldTest, ManualConnectionDance) {
  // §2.3's four steps, by hand, against the TCP device.
  auto server = musca_->NewProc();
  std::string adir;
  auto afd = Announce(server.get(), "tcp!*!7", &adir);
  ASSERT_TRUE(afd.ok());

  std::thread listener([&] {
    std::string ldir;
    auto lcfd = Listen(server.get(), adir, &ldir);
    ASSERT_TRUE(lcfd.ok());
    auto dfd = Accept(server.get(), *lcfd, ldir);
    ASSERT_TRUE(dfd.ok());
    auto msg = server->ReadString(*dfd, 64);
    ASSERT_TRUE(msg.ok());
    ASSERT_TRUE(server->WriteString(*dfd, *msg).ok());
    // Hold the connection open until the client has inspected its status
    // files; EOF tells us it hung up.
    (void)server->ReadString(*dfd, 64);
    (void)server->Close(*dfd);
    (void)server->Close(*lcfd);
  });

  auto client = helix_->NewProc();
  // 1) open the clone file
  auto cfd = client->Open("/net/tcp/clone", kORdWr);
  ASSERT_TRUE(cfd.ok());
  // 2) read the connection number
  auto num = client->ReadString(*cfd, 32);
  ASSERT_TRUE(num.ok());
  // 3) write the address to ctl
  ASSERT_TRUE(client->WriteString(*cfd, "connect 135.104.9.6!7").ok());
  // 4) open data: connection established
  auto dfd = client->Open("/net/tcp/" + *num + "/data", kORdWr);
  ASSERT_TRUE(dfd.ok());

  ASSERT_TRUE(client->WriteString(*dfd, "hello?").ok());
  auto echoed = client->ReadString(*dfd, 64);
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(*echoed, "hello?");

  // §2.3 transcript shape: "cat local remote status".
  auto status = client->ReadFile("/net/tcp/" + *num + "/status");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->find("Established"), std::string::npos);
  auto local = client->ReadFile("/net/tcp/" + *num + "/local");
  ASSERT_TRUE(local.ok());
  EXPECT_NE(local->find("135.104.9.31"), std::string::npos);
  auto remote = client->ReadFile("/net/tcp/" + *num + "/remote");
  ASSERT_TRUE(remote.ok());
  EXPECT_NE(remote->find("135.104.9.6 7"), std::string::npos);

  (void)client->Close(*dfd);
  (void)client->Close(*cfd);
  listener.join();
}

TEST_F(WorldTest, DialViaCsPrefersIl) {
  // dial("net!musca!echo") must try IL first ("IL is our protocol of
  // choice") and succeed.
  auto server = musca_->NewProc();
  std::string adir;
  auto afd = Announce(server.get(), "il!*!56789", &adir);
  ASSERT_TRUE(afd.ok());
  std::thread listener([&] {
    std::string ldir;
    auto lcfd = Listen(server.get(), adir, &ldir);
    ASSERT_TRUE(lcfd.ok());
    auto dfd = Accept(server.get(), *lcfd, ldir);
    ASSERT_TRUE(dfd.ok());
    auto msg = server->ReadString(*dfd, 64);
    ASSERT_TRUE(msg.ok());
    ASSERT_TRUE(server->WriteString(*dfd, "echo: " + *msg).ok());
    (void)server->Close(*dfd);
    (void)server->Close(*lcfd);
  });

  auto client = helix_->NewProc();
  std::string dir;
  auto fd = Dial(client.get(), "net!musca!echo", &dir);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(HasPrefix(dir, "/net/il/")) << dir;
  ASSERT_TRUE(client->WriteString(*fd, "ping").ok());
  auto reply = client->ReadString(*fd, 64);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "echo: ping");
  (void)client->Close(*fd);
  listener.join();
}

TEST_F(WorldTest, DialOverDatakitWithRejectReason) {
  auto server = musca_->NewProc();
  std::string adir;
  auto afd = Announce(server.get(), "dk!*!rx", &adir);
  ASSERT_TRUE(afd.ok());
  std::thread listener([&] {
    std::string ldir;
    auto lcfd = Listen(server.get(), adir, &ldir);
    ASSERT_TRUE(lcfd.ok());
    // "Some networks such as Datakit accept a reason for a rejection."
    ASSERT_TRUE(Reject(server.get(), *lcfd, ldir, "notoday").ok());
  });
  auto client = helix_->NewProc();
  auto fd = Dial(client.get(), "dk!nj/astro/musca!rx");
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error().message(), "notoday");
  listener.join();

  // And an accepted call works end to end.
  std::thread listener2([&] {
    std::string ldir;
    auto lcfd = Listen(server.get(), adir, &ldir);
    ASSERT_TRUE(lcfd.ok());
    auto dfd = Accept(server.get(), *lcfd, ldir);
    ASSERT_TRUE(dfd.ok());
    auto msg = server->ReadString(*dfd, 64);
    ASSERT_TRUE(msg.ok());
    ASSERT_TRUE(server->WriteString(*dfd, *msg).ok());
    (void)server->Close(*dfd);
    (void)server->Close(*lcfd);
  });
  auto fd2 = Dial(client.get(), "dk!nj/astro/musca!rx");
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(client->WriteString(*fd2, "over datakit").ok());
  auto reply = client->ReadString(*fd2, 64);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "over datakit");
  (void)client->Close(*fd2);
  listener2.join();
}

TEST_F(WorldTest, DnsFileResolvesFromNdb) {
  auto proc = helix_->NewProc();
  auto fd = proc->Open("/net/dns", kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(proc->WriteString(*fd, "musca.research.bell-labs.com ip").ok());
  ASSERT_TRUE(proc->Seek(*fd, 0, kSeekSet).ok());
  auto line = proc->ReadString(*fd);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "musca.research.bell-labs.com ip 135.104.9.6");
}

TEST_F(WorldTest, EtherDeviceFigure1) {
  // Figure 1: /net/ether0 = clone + numbered connection dirs with
  // ctl/data/stats/type.
  auto proc = helix_->NewProc();
  auto cfd = proc->Open("/net/ether0/clone", kORdWr);
  ASSERT_TRUE(cfd.ok());
  auto num = proc->ReadString(*cfd, 16);
  ASSERT_TRUE(num.ok());
  ASSERT_TRUE(proc->WriteString(*cfd, "connect 2048").ok());

  auto entries = proc->ReadDir("/net/ether0/" + *num);
  ASSERT_TRUE(entries.ok());
  std::set<std::string> names;
  for (auto& d : *entries) {
    names.insert(d.name);
  }
  EXPECT_EQ(names,
            (std::set<std::string>{"ctl", "data", "stats", "status", "type"}));

  // "Subsequent reads of the file type yield the string 2048."
  auto type = proc->ReadFile("/net/ether0/" + *num + "/type");
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(TrimSpace(*type), "2048");

  auto stats = proc->ReadFile("/net/ether0/" + *num + "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("addr: 080069022201"), std::string::npos);
  (void)proc->Close(*cfd);
}

TEST_F(WorldTest, EtherSnoopingSeesForeignTraffic) {
  // A promiscuous type -1 connection observes IL traffic between the two
  // nodes' IP stacks — the paper's "diagnostic interfaces for snooping".
  auto snoop = musca_->NewProc();
  auto cfd = snoop->Open("/net/ether0/clone", kORdWr);
  ASSERT_TRUE(cfd.ok());
  auto num = snoop->ReadString(*cfd, 16);
  ASSERT_TRUE(num.ok());
  ASSERT_TRUE(snoop->WriteString(*cfd, "promiscuous").ok());
  ASSERT_TRUE(snoop->WriteString(*cfd, "connect -1").ok());
  auto dfd = snoop->Open("/net/ether0/" + *num + "/data", kORead);
  ASSERT_TRUE(dfd.ok());

  // Generate traffic helix -> musca.
  auto client = helix_->NewProc();
  auto fd = Dial(client.get(), "il!135.104.9.6!99");  // no listener: syncs fly anyway
  (void)fd;

  Bytes frame(2048);
  auto n = snoop->Read(*dfd, frame.data(), frame.size());
  ASSERT_TRUE(n.ok());
  EXPECT_GE(*n, kEtherHeaderSize);  // saw a whole frame, header included
  (void)snoop->Close(*dfd);
  (void)snoop->Close(*cfd);
}

TEST_F(WorldTest, PipesCarryDelimitedMessages) {
  auto proc = helix_->NewProc();
  auto pipe = proc->Pipe();
  ASSERT_TRUE(pipe.ok());
  auto [a, b] = *pipe;
  ASSERT_TRUE(proc->WriteString(a, "through the pipe").ok());
  auto got = proc->ReadString(b, 64);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "through the pipe");
  // EOF after close.
  ASSERT_TRUE(proc->Close(a).ok());
  auto eof = proc->ReadString(b, 64);
  ASSERT_TRUE(eof.ok());
  EXPECT_TRUE(eof->empty());
}

TEST_F(WorldTest, EiaStyleSysnameFile) {
  // /dev files are served by the root fs; the §2.2 idea that "programs like
  // stty are replaced by echo and shell redirection" — control by writing
  // ASCII to files.
  auto proc = helix_->NewProc();
  auto name = proc->ReadFile("/dev/sysname");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "helix");
}

}  // namespace
}  // namespace plan9

// Name-space mechanics (§2.1, §6.1): bind, union order, create routing,
// unmount, per-process forking.
#include <gtest/gtest.h>

#include <set>

#include "src/ninep/ramfs.h"
#include "src/ns/namespace.h"
#include "src/ns/proc.h"

namespace plan9 {
namespace {

class NamespaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(root_.MkdirAll("net").ok());
    ASSERT_TRUE(root_.MkdirAll("n").ok());
    ASSERT_TRUE(root_.WriteFile("net/cs", "local-cs").ok());
    ASSERT_TRUE(other_.MkdirAll("sub").ok());
    ASSERT_TRUE(other_.WriteFile("cs", "remote-cs").ok());
    ASSERT_TRUE(other_.WriteFile("tcp", "remote-tcp").ok());
    ns_ = std::make_shared<Namespace>(&root_);
    proc_ = std::make_unique<Proc>(ns_, "glenda");
  }

  std::set<std::string> Names(const std::string& path) {
    auto entries = proc_->ReadDir(path);
    EXPECT_TRUE(entries.ok());
    std::set<std::string> names;
    if (entries.ok()) {
      for (auto& d : *entries) {
        names.insert(d.name);
      }
    }
    return names;
  }

  RamFs root_, other_;
  std::shared_ptr<Namespace> ns_;
  std::unique_ptr<Proc> proc_;
};

TEST_F(NamespaceTest, MountReplaceHidesOriginal) {
  ASSERT_TRUE(ns_->MountVfs(&other_, "/net", kMRepl).ok());
  auto names = Names("/net");
  EXPECT_TRUE(names.count("tcp"));
  EXPECT_TRUE(names.count("cs"));
  // Replaced: the original /net/cs content is shadowed by the mount.
  auto cs = proc_->ReadFile("/net/cs");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(*cs, "remote-cs");
}

TEST_F(NamespaceTest, MountAfterUnionsLocalFirst) {
  ASSERT_TRUE(ns_->MountVfs(&other_, "/net", kMAfter).ok());
  auto names = Names("/net");
  EXPECT_TRUE(names.count("cs"));
  EXPECT_TRUE(names.count("tcp"));
  EXPECT_TRUE(names.count("sub"));
  // "Local entries supersede remote ones of the same name."
  auto cs = proc_->ReadFile("/net/cs");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(*cs, "local-cs");
}

TEST_F(NamespaceTest, MountBeforeWinsOverLocal) {
  ASSERT_TRUE(ns_->MountVfs(&other_, "/net", kMBefore).ok());
  auto cs = proc_->ReadFile("/net/cs");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(*cs, "remote-cs");
}

TEST_F(NamespaceTest, UnmountRestoresOriginal) {
  ASSERT_TRUE(ns_->MountVfs(&other_, "/net", kMBefore).ok());
  ASSERT_TRUE(ns_->Unmount("/net").ok());
  auto cs = proc_->ReadFile("/net/cs");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(*cs, "local-cs");
  EXPECT_FALSE(proc_->ReadFile("/net/tcp").ok());
  EXPECT_FALSE(ns_->Unmount("/net").ok()) << "second unmount must fail";
}

TEST_F(NamespaceTest, BindDirectoryOntoDirectory) {
  ASSERT_TRUE(root_.MkdirAll("tmp").ok());
  ASSERT_TRUE(root_.WriteFile("tmp/x", "in-tmp").ok());
  ASSERT_TRUE(ns_->Bind("/tmp", "/n", kMRepl).ok());
  auto x = proc_->ReadFile("/n/x");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, "in-tmp");
}

TEST_F(NamespaceTest, CreateInUnionGoesToCreateElement) {
  // kMAfter without kMCreate: creates land in the original (seeded with
  // create permission); with kMCreate on the mounted tree they go there.
  ASSERT_TRUE(ns_->MountVfs(&other_, "/net", kMAfter).ok());
  ASSERT_TRUE(proc_->WriteFile("/net/newfile", "hello").ok());
  EXPECT_TRUE(root_.ReadFileText("net/newfile").ok())
      << "create must go to the original union element";
  EXPECT_FALSE(other_.ReadFileText("newfile").ok());
}

TEST_F(NamespaceTest, WalkThroughMountPoint) {
  ASSERT_TRUE(ns_->MountVfs(&other_, "/net", kMAfter).ok());
  auto sub = ns_->Resolve("/net/sub");
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE((*sub)->IsDir());
}

TEST_F(NamespaceTest, ForkIsolatesLaterMounts) {
  auto forked = ns_->Fork();
  Proc other_proc(forked, "glenda");
  ASSERT_TRUE(forked->MountVfs(&other_, "/net", kMBefore).ok());
  // The fork sees the mount; the original does not.
  auto in_fork = other_proc.ReadFile("/net/cs");
  ASSERT_TRUE(in_fork.ok());
  EXPECT_EQ(*in_fork, "remote-cs");
  auto in_orig = proc_->ReadFile("/net/cs");
  ASSERT_TRUE(in_orig.ok());
  EXPECT_EQ(*in_orig, "local-cs");
}

TEST_F(NamespaceTest, ResolveErrorsNameTheComponent) {
  auto missing = ns_->Resolve("/net/nonesuch");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().message().find("nonesuch"), std::string::npos);
}

TEST_F(NamespaceTest, DotDotAndDotResolveLexically) {
  ASSERT_TRUE(root_.MkdirAll("a/b").ok());
  ASSERT_TRUE(root_.WriteFile("a/file", "here").ok());
  auto f = proc_->ReadFile("/a/b/../file");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, "here");
  auto g = proc_->ReadFile("/a/./file");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(*g, "here");
}

TEST_F(NamespaceTest, FdOffsetsAdvanceIndependently) {
  ASSERT_TRUE(root_.WriteFile("net/longfile", "abcdefghij").ok());
  auto fd1 = proc_->Open("/net/longfile", kORead);
  ASSERT_TRUE(fd1.ok());
  auto fd2 = proc_->Open("/net/longfile", kORead);
  ASSERT_TRUE(fd2.ok());
  char buf[4] = {};
  ASSERT_TRUE(proc_->Read(*fd1, buf, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "abc");
  ASSERT_TRUE(proc_->Read(*fd2, buf, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "abc") << "separate opens, separate offsets";
  ASSERT_TRUE(proc_->Read(*fd1, buf, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "def");
  // Dup shares... a *copy* of the offset (Plan 9 dup semantics are shared
  // chan; ours copies — both are defensible; we assert ours).
  auto fd3 = proc_->Dup(*fd1);
  ASSERT_TRUE(fd3.ok());
  ASSERT_TRUE(proc_->Read(*fd3, buf, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "ghi");
  // Seek repositions.
  ASSERT_TRUE(proc_->Seek(*fd1, 0, kSeekSet).ok());
  ASSERT_TRUE(proc_->Read(*fd1, buf, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "abc");
}

}  // namespace
}  // namespace plan9

#include <gtest/gtest.h>

#include <thread>

#include "src/ninep/client.h"
#include "src/ninep/fcall.h"
#include "src/ninep/ramfs.h"
#include "src/ninep/server.h"
#include "src/ninep/transport.h"

namespace plan9 {
namespace {

TEST(Fcall, PackUnpackRoundTripsEveryType) {
  // One representative of each T message plus tricky R messages.
  std::vector<Fcall> msgs = {
      TnopMsg(),
      TsessionMsg(),
      TattachMsg(3, "presotto", ""),
      TcloneMsg(3, 4),
      TwalkMsg(4, "net"),
      TclwalkMsg(4, 9, "tcp"),
      TopenMsg(4, kORdWr),
      TcreateMsg(4, "data", 0664, kOWrite),
      TreadMsg(4, 1 << 20, 512),
      TwriteMsg(4, 7, ToBytes("hello, world")),
      TclunkMsg(4),
      TremoveMsg(4),
      TstatMsg(4),
      TflushMsg(77),
      RerrorMsg(5, "file does not exist"),
  };
  Dir d;
  d.name = "clone";
  d.uid = "bootes";
  d.gid = "bootes";
  d.qid = Qid{42, 7};
  d.mode = 0664;
  d.length = 123456789;
  d.type = 'I';
  msgs.push_back(TwstatMsg(4, d));

  for (auto& m : msgs) {
    m.tag = 99;
    auto packed = m.Pack();
    ASSERT_TRUE(packed.ok()) << FcallTypeName(m.type);
    auto back = Fcall::Unpack(*packed);
    ASSERT_TRUE(back.ok()) << FcallTypeName(m.type);
    EXPECT_EQ(back->type, m.type);
    EXPECT_EQ(back->tag, m.tag);
    EXPECT_EQ(back->fid, m.fid) << FcallTypeName(m.type);
    EXPECT_EQ(back->name, m.name);
    EXPECT_EQ(back->uname, m.uname);
    EXPECT_EQ(back->ename, m.ename);
    EXPECT_EQ(back->data, m.data);
    EXPECT_EQ(back->offset, m.offset);
    if (m.type == FcallType::kTwstat) {
      EXPECT_EQ(back->stat.name, d.name);
      EXPECT_EQ(back->stat.qid, d.qid);
      EXPECT_EQ(back->stat.length, d.length);
    }
  }
}

TEST(Fcall, UnpackRejectsGarbage) {
  EXPECT_FALSE(Fcall::Unpack(Bytes{}).ok());
  EXPECT_FALSE(Fcall::Unpack(Bytes{0x00, 0x01}).ok());
  EXPECT_FALSE(Fcall::Unpack(Bytes{54, 0, 0}).ok());  // Terror is illegal
  // Truncated Twalk.
  auto walk = TwalkMsg(1, "x");
  walk.tag = 1;
  auto packed = walk.Pack();
  ASSERT_TRUE(packed.ok());
  packed->resize(packed->size() - 5);
  EXPECT_FALSE(Fcall::Unpack(*packed).ok());
}

TEST(Fcall, DirPackIsExactly116Bytes) {
  Dir d;
  d.name = "helix";
  Bytes out;
  d.Pack(&out);
  EXPECT_EQ(out.size(), kDirLen);
}

TEST(Fcall, LongNamesTruncateSafely) {
  Fcall m = TwalkMsg(1, std::string(100, 'x'));
  m.tag = 1;
  auto packed = m.Pack();
  ASSERT_TRUE(packed.ok());
  auto back = Fcall::Unpack(*packed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name.size(), kNameLen - 1);
}

class ClientServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs_.MkdirAll("net/tcp").ok());
    ASSERT_TRUE(fs_.WriteFile("lib/ndb/local", "sys=helix\n").ok());
    auto [a, b] = PipeTransport::Make();
    server_ = std::make_unique<NinepServer>(&fs_, std::move(a));
    client_ = std::make_unique<NinepClient>(std::move(b));
  }

  RamFs fs_;
  std::unique_ptr<NinepServer> server_;
  std::unique_ptr<NinepClient> client_;
};

TEST_F(ClientServerTest, SessionAttachWalkReadWrite) {
  ASSERT_TRUE(client_->Session().ok());
  uint32_t root = client_->AllocFid();
  auto rq = client_->Attach(root, "philw", "");
  ASSERT_TRUE(rq.ok());
  EXPECT_TRUE(rq->IsDir());

  uint32_t f = client_->AllocFid();
  auto q = client_->CloneWalk(root, f, {"lib", "ndb", "local"});
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->IsDir());

  ASSERT_TRUE(client_->Open(f, kORead).ok());
  auto data = client_->Read(f, 0, 512);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "sys=helix\n");
  ASSERT_TRUE(client_->Clunk(f).ok());
}

TEST_F(ClientServerTest, CreateWriteReadBack) {
  uint32_t root = client_->AllocFid();
  ASSERT_TRUE(client_->Attach(root, "philw", "").ok());
  uint32_t f = client_->AllocFid();
  ASSERT_TRUE(client_->CloneWalk(root, f, {"net"}).ok());
  ASSERT_TRUE(client_->Create(f, "notes", 0664, kOWrite).ok());
  ASSERT_TRUE(client_->Write(f, 0, ToBytes("remember the milk")).ok());
  ASSERT_TRUE(client_->Clunk(f).ok());

  uint32_t g = client_->AllocFid();
  ASSERT_TRUE(client_->CloneWalk(root, g, {"net", "notes"}).ok());
  ASSERT_TRUE(client_->Open(g, kORead).ok());
  auto data = client_->Read(g, 9, 100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "the milk");
}

TEST_F(ClientServerTest, WalkToMissingFileFails) {
  uint32_t root = client_->AllocFid();
  ASSERT_TRUE(client_->Attach(root, "philw", "").ok());
  uint32_t f = client_->AllocFid();
  auto q = client_->CloneWalk(root, f, {"no", "such", "path"});
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.error().message(), kErrNotExist);
}

TEST_F(ClientServerTest, DirectoryReadListsEntries) {
  uint32_t root = client_->AllocFid();
  ASSERT_TRUE(client_->Attach(root, "philw", "").ok());
  ASSERT_TRUE(client_->Open(root, kORead).ok());
  auto data = client_->Read(root, 0, kDirLen * 16);
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->size() % kDirLen, 0u);
  std::vector<std::string> names;
  ByteReader r(*data);
  while (r.remaining() >= kDirLen) {
    auto d = Dir::Unpack(&r);
    ASSERT_TRUE(d.ok());
    names.push_back(d->name);
  }
  EXPECT_EQ(names.size(), 2u);  // net, lib
  EXPECT_NE(std::find(names.begin(), names.end(), "net"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "lib"), names.end());
}

TEST_F(ClientServerTest, UnalignedDirectoryReadFails) {
  uint32_t root = client_->AllocFid();
  ASSERT_TRUE(client_->Attach(root, "philw", "").ok());
  ASSERT_TRUE(client_->Open(root, kORead).ok());
  EXPECT_FALSE(client_->Read(root, 3, 100).ok());
}

TEST_F(ClientServerTest, RemoveAndRename) {
  uint32_t root = client_->AllocFid();
  ASSERT_TRUE(client_->Attach(root, "philw", "").ok());

  // Rename lib -> library via wstat.
  uint32_t f = client_->AllocFid();
  ASSERT_TRUE(client_->CloneWalk(root, f, {"lib"}).ok());
  auto d = client_->Stat(f);
  ASSERT_TRUE(d.ok());
  d->name = "library";
  ASSERT_TRUE(client_->Wstat(f, *d).ok());
  ASSERT_TRUE(client_->Clunk(f).ok());

  uint32_t g = client_->AllocFid();
  EXPECT_TRUE(client_->CloneWalk(root, g, {"library", "ndb"}).ok());
  ASSERT_TRUE(client_->Clunk(g).ok());

  // Remove a file.
  uint32_t h = client_->AllocFid();
  ASSERT_TRUE(client_->CloneWalk(root, h, {"library", "ndb", "local"}).ok());
  ASSERT_TRUE(client_->Remove(h).ok());
  uint32_t i = client_->AllocFid();
  EXPECT_FALSE(client_->CloneWalk(root, i, {"library", "ndb", "local"}).ok());
}

TEST_F(ClientServerTest, ConcurrentRpcsInterleave) {
  // The mount driver "demultiplexes among processes using the file server":
  // hammer the server from several threads over one connection.
  uint32_t root = client_->AllocFid();
  ASSERT_TRUE(client_->Attach(root, "philw", "").ok());
  constexpr int kThreads = 4;
  constexpr int kOps = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; i++) {
        uint32_t f = client_->AllocFid();
        std::string name = "f" + std::to_string(t) + "_" + std::to_string(i);
        ASSERT_TRUE(client_->CloneWalk(root, f, {"net"}).ok());
        ASSERT_TRUE(client_->Create(f, name, 0664, kOWrite).ok());
        ASSERT_TRUE(client_->Write(f, 0, ToBytes(name)).ok());
        ASSERT_TRUE(client_->Clunk(f).ok());
        uint32_t g = client_->AllocFid();
        ASSERT_TRUE(client_->CloneWalk(root, g, {"net", name}).ok());
        ASSERT_TRUE(client_->Open(g, kORead).ok());
        auto data = client_->Read(g, 0, 100);
        ASSERT_TRUE(data.ok());
        EXPECT_EQ(ToString(*data), name);
        ASSERT_TRUE(client_->Clunk(g).ok());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
}

TEST_F(ClientServerTest, ServerShutdownFailsPendingRpcs) {
  uint32_t root = client_->AllocFid();
  ASSERT_TRUE(client_->Attach(root, "philw", "").ok());
  server_->Shutdown();
  uint32_t f = client_->AllocFid();
  EXPECT_FALSE(client_->CloneWalk(root, f, {"net"}).ok());
}

TEST(FramedTransport, RoundTripsOverByteStream) {
  // Simulate a TCP-ish byte channel with a raw byte queue.
  auto q = std::make_shared<Queue>();
  FramedMsgTransport tx(
      [](uint8_t*, size_t) -> Result<size_t> { return Error("write only"); },
      [q](const uint8_t* data, size_t n) -> Status {
        // Deliver bytes in awkward small chunks to prove reassembly works.
        for (size_t i = 0; i < n; i += 3) {
          size_t c = std::min<size_t>(3, n - i);
          (void)q->PutNoBlock(MakeDataBlock(Bytes(data + i, data + i + c)));
        }
        return Status::Ok();
      },
      nullptr);
  FramedMsgTransport rx(
      [q](uint8_t* buf, size_t n) -> Result<size_t> {
        auto b = q->Get();
        if (b == nullptr) {
          return size_t{0};
        }
        size_t take = std::min(n, b->size());
        memcpy(buf, b->payload(), take);
        b->rp += take;
        if (b->size() > 0) {
          q->PutBack(std::move(b));
        }
        return take;
      },
      [](const uint8_t*, size_t) -> Status { return Error("read only"); }, nullptr);

  auto msg = TwriteMsg(7, 0, ToBytes("framed message body"));
  msg.tag = 5;
  auto packed = msg.Pack();
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(tx.WriteMsg(*packed).ok());
  ASSERT_TRUE(tx.WriteMsg(*packed).ok());
  for (int i = 0; i < 2; i++) {
    auto got = rx.ReadMsg();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *packed);
  }
  q->Close();
  auto eof = rx.ReadMsg();
  ASSERT_TRUE(eof.ok());
  EXPECT_TRUE(eof->empty());
}

}  // namespace
}  // namespace plan9

#include "src/task/kproc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/task/qlock.h"
#include "src/task/rendez.h"

namespace plan9 {
namespace {

TEST(Kproc, RunsAndJoins) {
  std::atomic<bool> ran{false};
  {
    Kproc k("test.runner", [&] { ran = true; });
    k.Join();
  }
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(Kproc::LiveCount(), 0);
}

TEST(Kproc, LiveCountTracksRunningProcs) {
  QLock lock;
  Rendez go;
  bool release = false;

  Kproc k("test.blocked", [&] {
    QLockGuard guard(lock);
    go.Sleep(lock, [&]() REQUIRES(lock) { return release; });
  });
  // The kproc is alive until released.
  EXPECT_GE(Kproc::LiveCount(), 1);
  {
    QLockGuard guard(lock);
    release = true;
  }
  go.Wakeup();
  k.Join();
  EXPECT_EQ(Kproc::LiveCount(), 0);
}

TEST(Kproc, MoveAssignJoinsThePreviousProc) {
  std::atomic<int> done{0};
  Kproc a("test.first", [&] { done.fetch_add(1); });
  // Assigning over a running kproc must join it first, not abandon it.
  a = Kproc("test.second", [&] { done.fetch_add(10); });
  EXPECT_GE(done.load(), 1);  // first joined before being replaced
  a.Join();
  EXPECT_EQ(done.load(), 11);
  EXPECT_EQ(a.name(), "test.second");
}

TEST(Kproc, SelfMoveAssignIsSafe) {
  std::atomic<bool> ran{false};
  Kproc k("test.selfmove", [&] {
    // Hold the thread alive briefly so the self-move happens while joinable.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ran = true;
  });
  Kproc& alias = k;
  k = std::move(alias);  // must not join-and-clobber itself
  EXPECT_EQ(k.name(), "test.selfmove");
  EXPECT_TRUE(k.joinable());
  k.Join();
  EXPECT_TRUE(ran.load());
}

TEST(Kproc, DefaultConstructedIsInert) {
  Kproc k;
  EXPECT_FALSE(k.joinable());
  k.Join();  // no-op
}

}  // namespace
}  // namespace plan9

#include "src/base/strings.h"

#include <gtest/gtest.h>

namespace plan9 {
namespace {

TEST(GetFields, CollapsesAdjacentDelims) {
  auto f = GetFields("a  b\tc", " \t");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(GetFields, NonCollapsingKeepsEmpties) {
  auto f = GetFields("a!!b!", "!", /*collapse=*/false);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[2], "b");
  EXPECT_EQ(f[3], "");
}

TEST(GetFields, BangAddresses) {
  auto f = GetFields("net!helix!9fs", "!");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "net");
  EXPECT_EQ(f[1], "helix");
  EXPECT_EQ(f[2], "9fs");
}

TEST(GetFields, EmptyInput) {
  EXPECT_TRUE(GetFields("", " ").empty());
  EXPECT_EQ(GetFields("", " ", false).size(), 1u);
}

TEST(Tokenize, SplitsOnWhitespace) {
  auto t = Tokenize("connect 135.104.9.31!564");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "connect");
  EXPECT_EQ(t[1], "135.104.9.31!564");
}

TEST(Tokenize, HonoursQuotes) {
  auto t = Tokenize("announce 'a b' c");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], "a b");
}

TEST(Tokenize, EscapedQuote) {
  auto t = Tokenize("x 'don''t'");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1], "don't");
}

TEST(TrimSpace, Trims) {
  EXPECT_EQ(TrimSpace("  hi \n"), "hi");
  EXPECT_EQ(TrimSpace(""), "");
  EXPECT_EQ(TrimSpace(" \t "), "");
}

TEST(ParseU64, Basics) {
  EXPECT_EQ(ParseU64("0"), 0u);
  EXPECT_EQ(ParseU64("17008"), 17008u);
  EXPECT_FALSE(ParseU64("17x").has_value());
  EXPECT_FALSE(ParseU64("").has_value());
  EXPECT_FALSE(ParseU64("-1").has_value());
}

TEST(ParseI64, Basics) {
  EXPECT_EQ(ParseI64("-12"), -12);
  EXPECT_EQ(ParseI64("+4"), 4);
  EXPECT_FALSE(ParseI64("--4").has_value());
}

TEST(StrFormat, Formats) {
  EXPECT_EQ(StrFormat("%s/%d", "tcp", 2), "tcp/2");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(CleanName, Basics) {
  EXPECT_EQ(CleanName("/net//tcp/./2"), "/net/tcp/2");
  EXPECT_EQ(CleanName("/net/tcp/../il"), "/net/il");
  EXPECT_EQ(CleanName("/.."), "/");
  EXPECT_EQ(CleanName(""), ".");
  EXPECT_EQ(CleanName("a/b/.."), "a");
  EXPECT_EQ(CleanName("../x"), "../x");
}

TEST(CleanName, DeviceNames) {
  EXPECT_EQ(CleanName("#l/ether0/clone"), "#l/ether0/clone");
  EXPECT_EQ(CleanName("#p"), "#p");
}

TEST(Join, JoinsParts) {
  EXPECT_EQ(Join({"a", "b"}, "/"), "a/b");
  EXPECT_EQ(Join({}, "/"), "");
}

}  // namespace
}  // namespace plan9

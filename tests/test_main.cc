// Test entry point.
//
// Replaces gtest_main so every test is checked for leaked kprocs: a Kproc
// whose owner forgot Join() keeps running into later tests (or past exit)
// and turns unrelated tests flaky.  The listener fails the *leaking* test
// by name instead.
#include <gtest/gtest.h>

#include "src/task/kproc.h"
#include "src/task/timers.h"

namespace {

class KprocLeakListener : public ::testing::EmptyTestEventListener {
  void OnTestEnd(const ::testing::TestInfo& info) override {
    // Let in-flight timer callbacks finish; they are the usual stragglers
    // holding media delivery lambdas that feed still-draining streams.
    plan9::TimerWheel::Default().Drain();
    int live = plan9::Kproc::LiveCount();
    if (live != 0) {
      ADD_FAILURE() << info.test_suite_name() << "." << info.name() << " leaked "
                    << live << " kproc(s); every Kproc owner must Join before "
                    << "the test returns";
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // Death tests fork; "threadsafe" re-executes the binary so the timer
  // wheel kproc and friends do not survive into the child.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ::testing::UnitTest::GetInstance()->listeners().Append(new KprocLeakListener());
  return RUN_ALL_TESTS();
}

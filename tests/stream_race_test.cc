// Concurrency stress for the stream layer and IL.
//
// "There is no implicit synchronization in our streams" — the queues and
// per-stream locks are the synchronization.  These tests hammer one Stream
// from eight kprocs doing overlapping Read/Write/push/pop/hangup, and churn
// IL dial/transfer/close cycles from two sides at once.  They assert very
// little: the point is to give TSan (and the lockcheck order graph) real
// interleavings to chew on in CI, and to hang loudly if a wakeup is lost.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "src/inet/il.h"
#include "src/inet/ip.h"
#include "src/sim/ether_segment.h"
#include "src/sim/medium.h"
#include "src/stream/block.h"
#include "src/stream/stream.h"
#include "src/task/kproc.h"

namespace plan9 {
namespace {

// Loops data blocks back toward the process, one half of a pipe.
class EchoDevice : public StreamModule {
 public:
  std::string_view name() const override { return "echo"; }
  void DownPut(BlockPtr b) override {
    if (b->type == BlockType::kControl) {
      return;  // swallow downstream control messages
    }
    PutUp(std::move(b));
  }
};

// A do-nothing pushable module, so push/pop churn has something to insert.
class PassthruModule : public StreamModule {
 public:
  std::string_view name() const override { return "race.passthru"; }
};

bool RegisterPassthru() {
  static bool once = [] {
    ModuleRegistry::Instance().Register(
        "race.passthru", [] { return std::make_unique<PassthruModule>(); });
    return true;
  }();
  return once;
}

TEST(StreamRace, ConcurrentReadWritePushPopHangup) {
  RegisterPassthru();
  Stream stream(std::make_unique<EchoDevice>());

  std::atomic<size_t> bytes_read{0};
  std::atomic<int> writes_ok{0};

  // 2 writers + 2 readers + 2 push/pop churners + 1 poller + 1 hangup = 8.
  std::vector<Kproc> procs;
  for (int w = 0; w < 2; w++) {
    procs.emplace_back("race.writer", [&stream, &writes_ok] {
      const std::string payload(512, 'w');
      for (int i = 0; i < 200; i++) {
        auto n = stream.Write(payload);
        if (!n.ok()) {
          return;  // hangup beat us; expected
        }
        writes_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int r = 0; r < 2; r++) {
    procs.emplace_back("race.reader", [&stream, &bytes_read] {
      uint8_t buf[1024];
      for (;;) {
        auto n = stream.Read(buf, sizeof buf);
        if (!n.ok() || *n == 0) {
          return;  // EOF after hangup drains the head queue
        }
        bytes_read.fetch_add(*n, std::memory_order_relaxed);
      }
    });
  }
  for (int p = 0; p < 2; p++) {
    procs.emplace_back("race.pushpop", [&stream] {
      for (int i = 0; i < 100; i++) {
        (void)stream.Push("race.passthru");
        (void)stream.Pop();  // may pop the other churner's module; fine
      }
    });
  }
  procs.emplace_back("race.poller", [&stream] {
    for (int i = 0; i < 400; i++) {
      (void)stream.HasInput();
      (void)stream.ModuleCount();
      (void)stream.hungup();
    }
  });
  procs.emplace_back("race.hangup", [&stream] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stream.Hangup();  // unblocks writers (error) and readers (EOF)
  });

  for (auto& p : procs) {
    p.Join();
  }
  EXPECT_TRUE(stream.hungup());
  // Some traffic must have made it through before the hangup.
  EXPECT_GT(writes_ok.load(), 0);
  EXPECT_GT(bytes_read.load(), 0u);
}

// Dial/transfer/close churn: two client threads against one IL stack pair,
// each cycling fresh conversations on its own port while the other's
// traffic shares the wire, the IP stacks, and the protocol lock.
TEST(StreamRace, IlDialCloseChurn) {
  EtherSegment segment(LinkParams{.latency = std::chrono::microseconds(50)});
  Ipv4Addr alice_ip = Ipv4Addr::FromOctets(135, 104, 9, 31);
  Ipv4Addr bob_ip = Ipv4Addr::FromOctets(135, 104, 9, 6);
  IpStack alice, bob;
  alice.AddEtherInterface(&segment, MacAddr{8, 0, 0x69, 2, 0x22, 0xf0}, alice_ip,
                          Ipv4Addr{0xffffff00});
  bob.AddEtherInterface(&segment, MacAddr{8, 0, 0x69, 2, 0x22, 0xf1}, bob_ip,
                        Ipv4Addr{0xffffff00});
  IlProto ail(&alice), bil(&bob);

  std::atomic<int> cycles_done{0};
  auto churn = [&](uint16_t port) {
    NetConv* server = bil.Clone().take();
    char ctl[32];
    std::snprintf(ctl, sizeof ctl, "announce %u", port);
    ASSERT_TRUE(server->Ctl(ctl).ok());

    for (int i = 0; i < 6; i++) {
      NetConv* client = ail.Clone().take();
      std::snprintf(ctl, sizeof ctl, "connect 135.104.9.6!%u", port);
      ASSERT_TRUE(client->Ctl(ctl).ok());
      ASSERT_TRUE(client->WaitReady().ok());
      auto idx = server->Listen();
      ASSERT_TRUE(idx.ok());
      NetConv* accepted = bil.Conv(static_cast<size_t>(*idx));
      ASSERT_NE(accepted, nullptr);
      ASSERT_TRUE(accepted->WaitReady().ok());

      const std::string msg = "churn " + std::to_string(port) + "/" + std::to_string(i);
      ASSERT_TRUE(client->Write(reinterpret_cast<const uint8_t*>(msg.data()), msg.size())
                      .ok());
      Bytes buf(64);
      auto n = accepted->Read(buf.data(), buf.size());
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + static_cast<long>(*n)), msg);

      client->CloseUser();
      accepted->CloseUser();
      cycles_done.fetch_add(1, std::memory_order_relaxed);
    }
    server->CloseUser();
  };

  Kproc t1("race.churn.17100", [&] { churn(17100); });
  Kproc t2("race.churn.17101", [&] { churn(17101); });
  t1.Join();
  t2.Join();
  EXPECT_EQ(cycles_done.load(), 12);
}

}  // namespace
}  // namespace plan9

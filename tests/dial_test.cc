// §5 library routines: address defaulting and parameterized dial sweeps
// across every transport.
#include <gtest/gtest.h>

#include <thread>

#include "src/base/strings.h"
#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/sim/datakit.h"
#include "src/world/boot.h"
#include "src/world/node.h"

namespace plan9 {
namespace {

TEST(NetMkAddr, DefaultsLikeThePaper) {
  // netmkaddr semantics: fill in missing network and service.
  EXPECT_EQ(NetMkAddr("helix", "", "9fs"), "net!helix!9fs");
  EXPECT_EQ(NetMkAddr("helix", "il", "9fs"), "il!helix!9fs");
  EXPECT_EQ(NetMkAddr("il!helix", "", "9fs"), "il!helix!9fs");
  EXPECT_EQ(NetMkAddr("il!helix!9fs", "tcp", "echo"), "il!helix!9fs");
  EXPECT_EQ(NetMkAddr("helix", "", ""), "net!helix");
}

TEST(DialPathDelimited, ClassifiesProtocols) {
  EXPECT_TRUE(DialPathDelimited("/net/il/3"));
  EXPECT_TRUE(DialPathDelimited("/net/dk/0"));
  EXPECT_TRUE(DialPathDelimited("/net/cyclone/1"));
  EXPECT_FALSE(DialPathDelimited("/net/tcp/2"));
  EXPECT_FALSE(DialPathDelimited("/n/gateway/net/tcp/5"));
}

// Parameterized sweep: the same dial/echo exchange must work identically
// over every connection-oriented transport — "All protocol devices look
// identical so user programs contain no network-specific code."
class DialSweep : public ::testing::TestWithParam<const char*> {};

constexpr char kNdb[] = R"(sys=helix
	ip=135.104.9.31 dk=nj/astro/helix
sys=musca
	ip=135.104.9.6 dk=nj/astro/musca
il=sweep port=6001
tcp=sweep port=6001
)";

TEST_P(DialSweep, EchoOverEveryTransport) {
  std::string proto = GetParam();
  auto db = std::make_shared<Ndb>();
  ASSERT_TRUE(db->Load(kNdb).ok());
  EtherSegment ether(LinkParams::Ether10());
  DatakitSwitch dk;
  Node helix("helix"), musca("musca");
  helix.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                 Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
  musca.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                 Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
  helix.AddDatakit(&dk, "nj/astro/helix");
  musca.AddDatakit(&dk, "nj/astro/musca");
  ASSERT_TRUE(BootNetwork(&helix, db, kNdb).ok());
  ASSERT_TRUE(BootNetwork(&musca, db, kNdb).ok());

  auto server = musca.NewProc();
  std::string announce_addr = proto + "!*!sweep";
  std::string dial_addr = proto + "!musca!sweep";
  if (proto == "dk") {
    announce_addr = "dk!*!sweep";
    dial_addr = "dk!nj/astro/musca!sweep";
  }
  std::string adir;
  auto afd = Announce(server.get(), announce_addr, &adir);
  ASSERT_TRUE(afd.ok()) << afd.error().message();

  std::thread listener([&] {
    std::string ldir;
    auto lcfd = Listen(server.get(), adir, &ldir);
    ASSERT_TRUE(lcfd.ok());
    auto dfd = Accept(server.get(), *lcfd, ldir);
    ASSERT_TRUE(dfd.ok());
    char buf[128];
    for (;;) {
      auto n = server->Read(*dfd, buf, sizeof buf);
      if (!n.ok() || *n == 0) {
        break;
      }
      ASSERT_TRUE(server->Write(*dfd, buf, *n).ok());
    }
    (void)server->Close(*dfd);
    (void)server->Close(*lcfd);
  });

  auto client = helix.NewProc();
  std::string dir;
  auto fd = Dial(client.get(), dial_addr, &dir);
  ASSERT_TRUE(fd.ok()) << fd.error().message();
  EXPECT_NE(dir.find(proto), std::string::npos);

  // Several exchanges, varied sizes.
  for (size_t size : {1u, 57u, 1024u}) {
    std::string msg(size, 'm');
    ASSERT_TRUE(client->WriteString(*fd, msg).ok());
    std::string got;
    char buf[2048];
    while (got.size() < size) {
      auto n = client->Read(*fd, buf, sizeof buf);
      ASSERT_TRUE(n.ok());
      ASSERT_GT(*n, 0u);
      got.append(buf, *n);
    }
    EXPECT_EQ(got, msg);
  }
  ASSERT_TRUE(client->Close(*fd).ok());
  listener.join();
}

INSTANTIATE_TEST_SUITE_P(Transports, DialSweep,
                         ::testing::Values("il", "tcp", "dk"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace plan9

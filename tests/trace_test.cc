// Causal tracing (DESIGN.md §12): context propagation across 9P hops,
// head sampling, the wire trailer, span stitching, and the recorder's
// dropped-event accounting.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "src/base/strings.h"
#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/ninep/fcall.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/stitch.h"
#include "src/obs/trace.h"
#include "src/svc/exportfs.h"
#include "src/world/boot.h"
#include "src/world/node.h"

namespace plan9 {
namespace {

// Every test here mutates process-wide tracing state; scope it.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_mask_ = obs::FlightRecorder::Default().mask();
    obs::FlightRecorder::Default().Clear();
  }
  void TearDown() override {
    obs::Tracer::Default().SetSampleInterval(0);
    obs::FlightRecorder::Default().Disable(~0u);
    obs::FlightRecorder::Default().Enable(saved_mask_);
    obs::FlightRecorder::Default().Clear();
  }

  uint32_t saved_mask_ = 0;
};

// ---------------------------------------------------------------------------
// Wire trailer
// ---------------------------------------------------------------------------

TEST_F(TraceTest, SampledContextSurvivesPackUnpack) {
  Fcall tx = TwalkMsg(7, "net");
  tx.tag = 3;
  tx.trace.trace_hi = 0x1122334455667788ull;
  tx.trace.trace_lo = 0x99aabbccddeeff00ull;
  tx.trace.span_id = 0x0123456789abcdefull;
  tx.trace.sampled = true;
  auto packed = tx.Pack();
  ASSERT_TRUE(packed.ok());
  auto rx = Fcall::Unpack(*packed);
  ASSERT_TRUE(rx.ok());
  EXPECT_EQ(rx->type, FcallType::kTwalk);
  EXPECT_EQ(rx->name, "net");
  EXPECT_TRUE(rx->trace.sampled);
  EXPECT_EQ(rx->trace.trace_hi, tx.trace.trace_hi);
  EXPECT_EQ(rx->trace.trace_lo, tx.trace.trace_lo);
  EXPECT_EQ(rx->trace.span_id, tx.trace.span_id);
}

TEST_F(TraceTest, UnsampledMessageCarriesNoTrailer) {
  Fcall plain = TwalkMsg(7, "net");
  plain.tag = 3;
  auto packed_plain = plain.Pack();
  ASSERT_TRUE(packed_plain.ok());

  Fcall traced = TwalkMsg(7, "net");
  traced.tag = 3;
  traced.trace.sampled = true;
  traced.trace.trace_hi = 1;
  auto packed_traced = traced.Pack();
  ASSERT_TRUE(packed_traced.ok());

  EXPECT_EQ(packed_traced->size(), packed_plain->size() + kTraceTrailerLen);
  auto rx = Fcall::Unpack(*packed_plain);
  ASSERT_TRUE(rx.ok());
  EXPECT_FALSE(rx->trace.sampled);
  EXPECT_EQ(rx->trace.trace_hi, 0u);
}

// ---------------------------------------------------------------------------
// Head sampler
// ---------------------------------------------------------------------------

TEST_F(TraceTest, SampleIntervalIsHonored) {
  obs::FlightRecorder::Default().Enable(
      static_cast<uint32_t>(obs::TraceKind::kSpan));
  obs::Tracer::Default().SetSampleInterval(4);
  int sampled = 0;
  for (int i = 0; i < 8; i++) {
    obs::ScopedSpan span("dial.call", "testhost",
                         obs::ScopedSpan::kRootAtEntry);
    if (span.active()) {
      sampled++;
    }
  }
  // A counter (not a coin flip): any 8 consecutive decisions at 1/4 contain
  // exactly 2 hits, wherever the counter started.
  EXPECT_EQ(sampled, 2);
}

TEST_F(TraceTest, UnsampledPathEmitsNothing) {
  obs::FlightRecorder::Default().Enable(
      static_cast<uint32_t>(obs::TraceKind::kSpan));
  obs::Tracer::Default().SetSampleInterval(0);
  for (int i = 0; i < 16; i++) {
    obs::ScopedSpan span("dial.call", "testhost",
                         obs::ScopedSpan::kRootAtEntry);
    EXPECT_FALSE(span.active());
    obs::ScopedSpan child("dial.cs", "testhost");
    EXPECT_FALSE(child.active());
  }
  EXPECT_EQ(obs::FlightRecorder::Default().RenderText(
                static_cast<uint32_t>(obs::TraceKind::kSpan)),
            "");
}

TEST_F(TraceTest, ChildSpansInheritTheRootContext) {
  obs::FlightRecorder::Default().Enable(
      static_cast<uint32_t>(obs::TraceKind::kSpan));
  obs::Tracer::Default().SetSampleInterval(1);
  {
    obs::ScopedSpan root("dial.call", "a", obs::ScopedSpan::kRootAtEntry);
    ASSERT_TRUE(root.active());
    obs::ScopedSpan child("dial.cs", "a");
    ASSERT_TRUE(child.active());
    EXPECT_EQ(child.context().trace_hi, root.context().trace_hi);
    EXPECT_EQ(child.context().trace_lo, root.context().trace_lo);
    EXPECT_NE(child.context().span_id, root.context().span_id);
  }
  // Context restored: a kChildOnly span outside is inactive again.
  obs::Tracer::Default().SetSampleInterval(0);
  obs::ScopedSpan after("dial.cs", "a");
  EXPECT_FALSE(after.active());

  auto spans = obs::ParseSpans(obs::FlightRecorder::Default().RenderText(
      static_cast<uint32_t>(obs::TraceKind::kSpan)));
  auto trees = obs::StitchSpans(spans);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].spans.size(), 2u);
  EXPECT_EQ(trees[0].roots.size(), 1u);
  EXPECT_TRUE(trees[0].orphans.empty());
  EXPECT_TRUE(trees[0].unfinished.empty());
  EXPECT_EQ(obs::SpanTreeDepth(trees[0]), 2);
}

// ---------------------------------------------------------------------------
// Stitching
// ---------------------------------------------------------------------------

TEST_F(TraceTest, StitchFlagsOrphansAndUnfinishedAndDedupes) {
  const char* text =
      "  0.000001 span  helix B dial.call trace=000000000000000000000000000000aa span=0000000000000001 parent=0000000000000000\n"
      "  0.000002 span  helix B dial.cs trace=000000000000000000000000000000aa span=0000000000000002 parent=0000000000000001\n"
      "  0.000003 span  helix E dial.cs trace=000000000000000000000000000000aa span=0000000000000002 parent=0000000000000001 us=10\n"
      "  0.000004 span  musca E il.rtt trace=000000000000000000000000000000aa span=0000000000000009 parent=00000000000000ff us=5\n"
      // The same record read through a second mount: must collapse.
      "  0.000002 span  helix B dial.cs trace=000000000000000000000000000000aa span=0000000000000002 parent=0000000000000001\n"
      // Unrelated kinds interleave freely.
      "  0.000005 il    helix/il/0 send 1 2\n";
  auto spans = obs::ParseSpans(text);
  EXPECT_EQ(spans.size(), 3u);
  auto trees = obs::StitchSpans(spans);
  ASSERT_EQ(trees.size(), 1u);
  const auto& t = trees[0];
  EXPECT_EQ(t.roots.size(), 1u);
  ASSERT_EQ(t.orphans.size(), 1u);
  EXPECT_EQ(t.orphans[0], 9u);
  ASSERT_EQ(t.unfinished.size(), 1u);
  EXPECT_EQ(t.unfinished[0], 1u);
  std::string rendered = obs::RenderSpanTree(t);
  EXPECT_NE(rendered.find("UNFINISHED"), std::string::npos);
  EXPECT_NE(rendered.find("ORPHAN"), std::string::npos);
  EXPECT_NE(obs::PerHopSummary(trees).find("musca"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Dropped-event accounting (the recorder satellite)
// ---------------------------------------------------------------------------

TEST_F(TraceTest, OverwritingUnreadEventsBumpsDroppedCounter) {
  auto& dropped =
      obs::MetricsRegistry::Default().CounterNamed("obs.trace.dropped");
  uint64_t before = dropped.value();
  obs::FlightRecorder fr(4);
  fr.Enable(static_cast<uint32_t>(obs::TraceKind::kDial));
  for (int i = 0; i < 10; i++) {
    fr.Record(obs::TraceKind::kDial, "t", StrFormat("ev%d", i));
  }
  EXPECT_EQ(dropped.value(), before + 6);
  // Rendering marks everything read: the next wrap-around of *read* events
  // drops nothing.
  (void)fr.RenderText();
  for (int i = 0; i < 4; i++) {
    fr.Record(obs::TraceKind::kDial, "t", StrFormat("late%d", i));
  }
  EXPECT_EQ(dropped.value(), before + 6);
  fr.Record(obs::TraceKind::kDial, "t", "one more");
  EXPECT_EQ(dropped.value(), before + 7);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: a 3-node import chain stitches into one tree
// ---------------------------------------------------------------------------

constexpr char kNdb[] =
    "sys=helix\n\tip=135.104.9.31\n"
    "sys=musca\n\tip=135.104.9.6\n\til=exportfs port=17008\n"
    "sys=tern\n\tip=135.104.9.42\n\til=9fs port=17007\n";

TEST_F(TraceTest, ImportChainStitchesIntoOneTreeAcrossThreeHops) {
  EtherSegment ether(LinkParams::Ether10());
  auto db = std::make_shared<Ndb>();
  ASSERT_TRUE(db->Load(kNdb).ok());
  Node helix("helix"), musca("musca"), tern("tern");
  auto mac = [](uint8_t last) { return MacAddr{8, 0, 0x69, 2, 0x22, last}; };
  helix.AddEther(&ether, mac(1), Ipv4Addr::FromOctets(135, 104, 9, 31),
                 Ipv4Addr{0xffffff00});
  musca.AddEther(&ether, mac(2), Ipv4Addr::FromOctets(135, 104, 9, 6),
                 Ipv4Addr{0xffffff00});
  tern.AddEther(&ether, mac(3), Ipv4Addr::FromOctets(135, 104, 9, 42),
                Ipv4Addr{0xffffff00});
  ASSERT_TRUE(BootNetwork(&helix, db, kNdb).ok());
  ASSERT_TRUE(BootNetwork(&musca, db, kNdb).ok());
  ASSERT_TRUE(BootNetwork(&tern, db, kNdb).ok());

  // tern exports its root; musca imports it into the base namespace (so
  // musca's exportfs serves it onward) and re-exports; helix imports musca.
  // Managed imports so destruction dismantles each 9P session and the
  // exporters can join their handlers: destructors run in reverse
  // declaration order, unwinding the chain from helix back to tern.
  ImportOptions iopts;
  iopts.flags = kMRepl;
  auto ternfs = StartExportfs(
      std::shared_ptr<Proc>(tern.NewProc().release()), "il!*!9fs");
  ASSERT_TRUE(ternfs.ok());
  auto muscaproc = musca.NewProc();
  auto tern_import =
      ImportManaged(muscaproc.get(), "il!tern!9fs", "/", "/n/tern", iopts);
  ASSERT_TRUE(tern_import.ok());
  auto gwfs = StartExportfs(
      std::shared_ptr<Proc>(musca.NewProc().release()), "il!*!exportfs");
  ASSERT_TRUE(gwfs.ok());
  auto helixproc = helix.NewProcPrivate();
  auto gw_import =
      ImportManaged(helixproc.get(), "il!musca!exportfs", "/", "/n/gw", iopts);
  ASSERT_TRUE(gw_import.ok());

  // Sample everything through the file interface, then cross both hops.
  ASSERT_TRUE(helixproc->WriteFile("/net/ctl", "trace sample 1").ok());
  obs::FlightRecorder::Default().Clear();
  auto remote = helixproc->ReadFile("/n/gw/n/tern/net/stats");
  ASSERT_TRUE(remote.ok()) << remote.error().message();
  EXPECT_NE(remote->find("ninep.srv.rpcs"), std::string::npos);
  ASSERT_TRUE(helixproc->WriteFile("/net/ctl", "trace sample 0").ok());

  // Harvest the way trace9 does: local + both imported /net/trace views.
  std::string text;
  for (const char* path :
       {"/net/trace", "/n/gw/net/trace", "/n/gw/n/tern/net/trace"}) {
    auto t = helixproc->ReadFile(path);
    if (t.ok()) {
      text += *t;
    }
  }
  auto spans = obs::ParseSpans(text);
  ASSERT_FALSE(spans.empty());
  auto trees = obs::StitchSpans(spans);
  ASSERT_FALSE(trees.empty());

  // At least one trace crossed all three machines with ≥3 chained hops, and
  // nobody lost their parent along the way.
  int best_depth = 0;
  bool three_hosts = false;
  for (const auto& tree : trees) {
    EXPECT_TRUE(tree.orphans.empty())
        << "orphan spans in trace " << tree.trace << ":\n"
        << obs::RenderSpanTree(tree);
    best_depth = std::max(best_depth, obs::SpanTreeDepth(tree));
    std::set<std::string> hosts;
    for (const auto& s : tree.spans) {
      hosts.insert(s.host);
    }
    if (hosts.count("helix") && hosts.count("musca") && hosts.count("tern")) {
      three_hosts = true;
    }
  }
  EXPECT_GE(best_depth, 3) << "no trace chained through the gateway";
  EXPECT_TRUE(three_hosts) << "no trace visited helix, musca, and tern";
}

// The conversation a traced dial created carries the trace id in its status
// line (how chaos ties a stuck conv back to its causal history).
TEST_F(TraceTest, TracedDialAnnotatesTheConversationStatus) {
  EtherSegment ether(LinkParams::Ether10());
  auto db = std::make_shared<Ndb>();
  ASSERT_TRUE(db->Load(kNdb).ok());
  Node helix("helix"), musca("musca");
  helix.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                 Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
  musca.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                 Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
  ASSERT_TRUE(BootNetwork(&helix, db, kNdb).ok());
  ASSERT_TRUE(BootNetwork(&musca, db, kNdb).ok());
  auto svc = StartExportfs(
      std::shared_ptr<Proc>(musca.NewProc().release()), "il!*!exportfs");
  ASSERT_TRUE(svc.ok());

  obs::Tracer::Default().SetSampleInterval(1);
  obs::FlightRecorder::Default().Enable(
      static_cast<uint32_t>(obs::TraceKind::kSpan));
  auto proc = helix.NewProc();
  std::string dir;
  auto fd = Dial(proc.get(), "il!musca!exportfs", &dir);
  obs::Tracer::Default().SetSampleInterval(0);
  ASSERT_TRUE(fd.ok());
  auto status = proc->ReadFile(dir + "/status");
  ASSERT_TRUE(status.ok());
  auto pos = status->find(" trace ");
  ASSERT_NE(pos, std::string::npos) << *status;
  // The id in the status line names a trace the recorder actually holds.
  std::string id = status->substr(pos + 7, 32);
  auto spans = obs::ParseSpans(obs::FlightRecorder::Default().RenderText(
      static_cast<uint32_t>(obs::TraceKind::kSpan)));
  bool found = false;
  for (const auto& s : spans) {
    found = found || s.trace == id;
  }
  EXPECT_TRUE(found) << "status trace id " << id << " not in recorder";
  (void)proc->Close(*fd);
}

}  // namespace
}  // namespace plan9

// User-level services (§6): exportfs/import, the gateway property, and the
// listener-based trivial services.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/base/strings.h"
#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/svc/exportfs.h"
#include "src/svc/listen.h"
#include "src/world/boot.h"
#include "src/world/node.h"

namespace plan9 {
namespace {

constexpr char kNdb[] = R"(sys=helix
	dom=helix.research.bell-labs.com
	ip=135.104.9.31 dk=nj/astro/helix
sys=musca
	dom=musca.research.bell-labs.com
	ip=135.104.9.6 dk=nj/astro/musca
sys=gnot
	dk=nj/astro/gnot
il=echo port=56789
il=exportfs port=17007
tcp=echo port=7
)";

class SvcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_shared<Ndb>();
    ASSERT_TRUE(db_->Load(kNdb).ok());

    helix_ = std::make_unique<Node>("helix");
    musca_ = std::make_unique<Node>("musca");
    gnot_ = std::make_unique<Node>("gnot");  // a terminal with ONLY Datakit
    auto mac = [](uint8_t last) { return MacAddr{8, 0, 0x69, 2, 0x22, last}; };
    helix_->AddEther(&ether_, mac(1), Ipv4Addr::FromOctets(135, 104, 9, 31),
                     Ipv4Addr{0xffffff00});
    musca_->AddEther(&ether_, mac(2), Ipv4Addr::FromOctets(135, 104, 9, 6),
                     Ipv4Addr{0xffffff00});
    helix_->AddDatakit(&dk_, "nj/astro/helix");
    musca_->AddDatakit(&dk_, "nj/astro/musca");
    gnot_->AddDatakit(&dk_, "nj/astro/gnot");
    ASSERT_TRUE(BootNetwork(helix_.get(), db_, kNdb).ok());
    ASSERT_TRUE(BootNetwork(musca_.get(), db_, kNdb).ok());
    ASSERT_TRUE(BootNetwork(gnot_.get(), db_, kNdb).ok());
  }

  EtherSegment ether_{LinkParams::Ether10()};
  DatakitSwitch dk_;
  std::shared_ptr<Ndb> db_;
  std::unique_ptr<Node> helix_, musca_, gnot_;
};

TEST_F(SvcTest, EchoServiceViaDial) {
  auto svc = StartEchoService(
      std::shared_ptr<Proc>(musca_->NewProc().release()), "il!*!echo");
  ASSERT_TRUE(svc.ok());

  auto client = helix_->NewProc();
  auto fd = Dial(client.get(), "net!musca!echo");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client->WriteString(*fd, "are you there?").ok());
  auto reply = client->ReadString(*fd, 64);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "are you there?");
  ASSERT_TRUE(client->Close(*fd).ok());
}

TEST_F(SvcTest, ExportfsImportRemoteTree) {
  // musca exports /lib; helix mounts it at /n/musca and reads through it.
  ASSERT_TRUE(musca_->rootfs()->WriteFile("lib/motd", "maxims of musca").ok());
  auto svc = StartExportfs(std::shared_ptr<Proc>(musca_->NewProc().release()),
                           "il!*!exportfs");
  ASSERT_TRUE(svc.ok());

  auto proc = helix_->NewProcPrivate();
  ASSERT_TRUE(
      Import(proc.get(), "il!135.104.9.6!17007", "/lib", "/n/musca", kMRepl).ok());

  auto motd = proc->ReadFile("/n/musca/motd");
  ASSERT_TRUE(motd.ok());
  EXPECT_EQ(*motd, "maxims of musca");

  // Writes go back: "Operations in the imported file tree are executed on
  // the remote server."
  ASSERT_TRUE(proc->WriteFile("/n/musca/from-helix", "hello musca").ok());
  auto check = musca_->rootfs()->ReadFileText("lib/from-helix");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(*check, "hello musca");

  // Directory listing across the mount.
  auto entries = proc->ReadDir("/n/musca");
  ASSERT_TRUE(entries.ok());
  std::set<std::string> names;
  for (auto& d : *entries) {
    names.insert(d.name);
  }
  EXPECT_TRUE(names.count("motd"));
  EXPECT_TRUE(names.count("from-helix"));
  EXPECT_TRUE(names.count("ndb"));
}

TEST_F(SvcTest, GatewayImportNetParagraph61) {
  // The §6.1 example: a terminal with only a Datakit connection imports
  // /net from helix; all of helix's networks become available.
  auto exportsvc = StartExportfs(
      std::shared_ptr<Proc>(helix_->NewProc().release()), "dk!*!exportfs");
  ASSERT_TRUE(exportsvc.ok());

  auto proc = gnot_->NewProcPrivate("philw");

  // "philw-gnot% ls /net" — before: local networks only.
  {
    auto entries = proc->ReadDir("/net");
    ASSERT_TRUE(entries.ok());
    std::set<std::string> names;
    for (auto& d : *entries) {
      names.insert(d.name);
    }
    EXPECT_TRUE(names.count("cs"));
    EXPECT_TRUE(names.count("dk"));
    EXPECT_FALSE(names.count("tcp"));
    EXPECT_FALSE(names.count("ether0"));
  }

  // "import -a helix /net"
  ASSERT_TRUE(
      Import(proc.get(), "dk!nj/astro/helix!exportfs", "/net", "/net", kMAfter).ok());

  // After: the union contains helix's networks too.
  {
    auto entries = proc->ReadDir("/net");
    ASSERT_TRUE(entries.ok());
    std::set<std::string> names;
    for (auto& d : *entries) {
      names.insert(d.name);
    }
    for (const char* want : {"cs", "dk", "tcp", "udp", "il", "ether0", "dns"}) {
      EXPECT_TRUE(names.count(want)) << "missing /net/" << want;
    }
  }

  // And they work: dial TCP *through helix's stack* to musca's echo server.
  auto echosvc = StartEchoService(
      std::shared_ptr<Proc>(musca_->NewProc().release()), "tcp!*!7");
  ASSERT_TRUE(echosvc.ok());

  auto cfd = proc->Open("/net/tcp/clone", kORdWr);
  ASSERT_TRUE(cfd.ok()) << "remote tcp device must be visible";
  auto num = proc->ReadString(*cfd, 16);
  ASSERT_TRUE(num.ok());
  ASSERT_TRUE(proc->WriteString(*cfd, "connect 135.104.9.6!7").ok());
  auto dfd = proc->Open("/net/tcp/" + *num + "/data", kORdWr);
  ASSERT_TRUE(dfd.ok());
  ASSERT_TRUE(proc->WriteString(*dfd, "via the gateway").ok());
  auto reply = proc->ReadString(*dfd, 64);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "via the gateway");
  ASSERT_TRUE(proc->Close(*dfd).ok());
  ASSERT_TRUE(proc->Close(*cfd).ok());

  // "Local entries supersede remote ones of the same name": gnot's own cs
  // still answers (it knows gnot's dk address, helix's wouldn't).
  auto fd = proc->Open("/net/cs", kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(proc->WriteString(*fd, "dk!nj/astro/musca!x").ok());
  ASSERT_TRUE(proc->Seek(*fd, 0, kSeekSet).ok());
  auto line = proc->ReadString(*fd);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "/net/dk/clone nj/astro/musca!x");
  (void)proc->Close(*fd);
}

TEST_F(SvcTest, ImportIsPerProcessNamespace) {
  // A private namespace sees the import; the node's base namespace doesn't.
  ASSERT_TRUE(musca_->rootfs()->WriteFile("lib/motd", "musca speaks").ok());
  auto svc = StartExportfs(std::shared_ptr<Proc>(musca_->NewProc().release()),
                           "il!*!exportfs");
  ASSERT_TRUE(svc.ok());

  auto priv = helix_->NewProcPrivate();
  ASSERT_TRUE(
      Import(priv.get(), "il!135.104.9.6!17007", "/lib", "/n/musca", kMRepl).ok());
  EXPECT_TRUE(priv->ReadFile("/n/musca/motd").ok());

  auto other = helix_->NewProc();
  EXPECT_FALSE(other->ReadFile("/n/musca/motd").ok());
}

TEST_F(SvcTest, DiscardServiceSwallowsData) {
  auto svc = StartDiscardService(
      std::shared_ptr<Proc>(musca_->NewProc().release()), "il!*!9009");
  ASSERT_TRUE(svc.ok());
  auto client = helix_->NewProc();
  auto fd = Dial(client.get(), "il!135.104.9.6!9009");
  ASSERT_TRUE(fd.ok());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(client->WriteString(*fd, "into the void").ok());
  }
  ASSERT_TRUE(client->Close(*fd).ok());
}

}  // namespace
}  // namespace plan9

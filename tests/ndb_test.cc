// §4.1: the network database.
#include <gtest/gtest.h>

#include "src/ndb/ndb.h"

namespace plan9 {
namespace {

// The entries printed in §4.1 of the paper, verbatim shapes.
constexpr char kPaperNdb[] = R"(sys = helix
	dom=helix.research.bell-labs.com
	bootf=/mips/9power
	ip=135.104.9.31 ether=0800690222f0
	dk=nj/astro/helix
	proto=il flavor=9cpu
ipnet=mh-astro-net ip=135.104.0.0 ipmask=255.255.255.0
	fs=bootes.research.bell-labs.com
	auth=1127auth
ipnet=unix-room ip=135.104.117.0
	ipgw=135.104.117.1
ipnet=third-floor ip=135.104.51.0
	ipgw=135.104.51.1
ipnet=fourth-floor ip=135.104.52.0
	ipgw=135.104.52.1
tcp=echo	port=7
tcp=discard	port=9
tcp=systat	port=11
tcp=daytime	port=13
)";

class NdbTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(db_.Load(kPaperNdb).ok()); }
  Ndb db_;
};

TEST_F(NdbTest, ParsesMultiLineEntries) {
  // helix + 4 ipnets + 4 services.
  EXPECT_EQ(db_.entry_count(), 9u);
  auto helix = db_.Search("sys", "helix");
  ASSERT_EQ(helix.size(), 1u);
  EXPECT_EQ(helix[0]->Find("dom"), "helix.research.bell-labs.com");
  EXPECT_EQ(helix[0]->Find("bootf"), "/mips/9power");
  EXPECT_EQ(helix[0]->Find("ip"), "135.104.9.31");
  EXPECT_EQ(helix[0]->Find("ether"), "0800690222f0");
  EXPECT_EQ(helix[0]->Find("dk"), "nj/astro/helix");
  EXPECT_EQ(helix[0]->Find("flavor"), "9cpu");
}

TEST_F(NdbTest, SearchByAnyAttribute) {
  EXPECT_EQ(db_.Search("dom", "helix.research.bell-labs.com").size(), 1u);
  EXPECT_EQ(db_.Search("ipgw", "135.104.51.1").size(), 1u);
  EXPECT_TRUE(db_.Search("sys", "nonesuch").empty());
}

TEST_F(NdbTest, ServicePortsMatchPaperTable) {
  EXPECT_EQ(db_.ServicePort("tcp", "echo"), 7);
  EXPECT_EQ(db_.ServicePort("tcp", "discard"), 9);
  EXPECT_EQ(db_.ServicePort("tcp", "systat"), 11);
  EXPECT_EQ(db_.ServicePort("tcp", "daytime"), 13);
  EXPECT_FALSE(db_.ServicePort("il", "echo").has_value());
  // Numeric services pass through.
  EXPECT_EQ(db_.ServicePort("tcp", "564"), 564);
  EXPECT_FALSE(db_.ServicePort("tcp", "0").has_value());
  EXPECT_FALSE(db_.ServicePort("tcp", "99999").has_value());
}

TEST_F(NdbTest, IpInfoWalksSystemThenSubnetThenNetwork) {
  // A host in the unix-room subnet: ipgw comes from the subnet entry,
  // auth/fs from the class-B network entry.
  Ipv4Addr host = Ipv4Addr::FromOctets(135, 104, 117, 42);
  auto gw = db_.IpInfo(host, "ipgw");
  ASSERT_EQ(gw.size(), 1u);
  EXPECT_EQ(gw[0], "135.104.117.1");
  auto auth = db_.IpInfo(host, "auth");
  ASSERT_EQ(auth.size(), 1u);
  EXPECT_EQ(auth[0], "1127auth");
  auto fs = db_.IpInfo(host, "fs");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0], "bootes.research.bell-labs.com");
}

TEST_F(NdbTest, IpInfoPrefersSystemEntry) {
  // helix's own entry wins over network-level attributes it also has.
  auto boot = db_.IpInfo(Ipv4Addr::FromOctets(135, 104, 9, 31), "bootf");
  ASSERT_EQ(boot.size(), 1u);
  EXPECT_EQ(boot[0], "/mips/9power");
}

TEST_F(NdbTest, IndexedAndLinearAgree) {
  auto linear = db_.Search("sys", "helix");
  uint64_t linear_count = db_.linear_lookups;
  EXPECT_GT(linear_count, 0u);
  db_.BuildIndex("sys");
  auto indexed = db_.Search("sys", "helix");
  EXPECT_GT(db_.indexed_lookups, 0u);
  ASSERT_EQ(indexed.size(), linear.size());
  ASSERT_FALSE(indexed.empty());
  EXPECT_EQ(indexed[0], linear[0]);
}

TEST_F(NdbTest, StaleIndexFallsBackToScan) {
  db_.BuildIndex("sys");
  EXPECT_TRUE(db_.HasFreshIndex("sys"));
  // "Every hash file contains the modification time of its master file":
  // loading more data invalidates the index...
  ASSERT_TRUE(db_.Load("sys=freshling\n\tip=10.9.9.9\n").ok());
  EXPECT_FALSE(db_.HasFreshIndex("sys"));
  // ...but "searches ... still work, they just take longer."
  auto hit = db_.Search("sys", "freshling");
  ASSERT_EQ(hit.size(), 1u);
  db_.RebuildIndexes();
  EXPECT_TRUE(db_.HasFreshIndex("sys"));
  EXPECT_EQ(db_.Search("sys", "freshling").size(), 1u);
}

TEST_F(NdbTest, CommentsAndBlanksIgnored) {
  Ndb db;
  ASSERT_TRUE(db.Load("# comment\n\nsys=a\n\t# another\n\tip=1.2.3.4\n\n").ok());
  EXPECT_EQ(db.entry_count(), 1u);
  EXPECT_EQ(db.Search("sys", "a").size(), 1u);
}

TEST_F(NdbTest, AttributeWithoutValue) {
  Ndb db;
  ASSERT_TRUE(db.Load("sys=a trusted\n").ok());
  auto e = db.Search("sys", "a");
  ASSERT_EQ(e.size(), 1u);
  EXPECT_TRUE(e[0]->Find("trusted").has_value());
  EXPECT_EQ(*e[0]->Find("trusted"), "");
}

TEST_F(NdbTest, ContinuationBeforeEntryIsError) {
  Ndb db;
  EXPECT_FALSE(db.Load("\tip=1.2.3.4\n").ok());
}

TEST_F(NdbTest, SynthesizedGlobalDbHasRequestedScale) {
  auto text = SynthesizeGlobalNdb(43'000);
  size_t lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_GE(lines, 43'000u);
  EXPECT_LT(lines, 48'000u);
  Ndb db;
  ASSERT_TRUE(db.Load(text).ok());
  EXPECT_GT(db.entry_count(), 8000u);
  // Deterministic: same seed, same db.
  EXPECT_EQ(SynthesizeGlobalNdb(1000), SynthesizeGlobalNdb(1000));
}

TEST_F(NdbTest, MultipleValuesForAttr) {
  Ndb db;
  ASSERT_TRUE(db.Load("ipnet=x ip=10.0.0.0\n\tauth=a\n\tauth=b\n").ok());
  auto v = db.entries()[0].FindAll("auth");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
}

}  // namespace
}  // namespace plan9

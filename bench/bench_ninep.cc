// §2.1: 9P and the mount driver.
//
// "Nearly all traffic between Plan 9 systems consists of 9P messages", so
// the cost of packing, unpacking and round-tripping them bounds everything
// else.  Benchmarks: marshal/unmarshal per message type, full RPC round
// trips through the client/server engines over an in-process transport, and
// 8K reads through the mount driver (the kernel's remote-file fast path).
#include <benchmark/benchmark.h>

#include "bench/bench_obs.h"

#include <memory>

#include "src/ninep/client.h"
#include "src/ninep/fcall.h"
#include "src/ninep/ramfs.h"
#include "src/ninep/server.h"
#include "src/ninep/transport.h"
#include "src/ns/mnt.h"

namespace plan9 {
namespace {

void BM_PackTwrite8K(benchmark::State& state) {
  auto msg = TwriteMsg(7, 4096, Bytes(8192, 0x55));
  msg.tag = 3;
  for (auto _ : state) {
    auto packed = msg.Pack();
    benchmark::DoNotOptimize(packed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_PackTwrite8K);

void BM_UnpackRread8K(benchmark::State& state) {
  Fcall msg;
  msg.type = FcallType::kRread;
  msg.tag = 3;
  msg.fid = 7;
  msg.data = Bytes(8192, 0x55);
  auto packed = msg.Pack().take();
  for (auto _ : state) {
    auto f = Fcall::Unpack(packed);
    benchmark::DoNotOptimize(f);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_UnpackRread8K);

void BM_PackUnpackStat(benchmark::State& state) {
  Fcall msg;
  msg.type = FcallType::kRstat;
  msg.tag = 9;
  msg.fid = 2;
  msg.stat.name = "clone";
  msg.stat.uid = "bootes";
  msg.stat.qid = Qid{42, 1};
  for (auto _ : state) {
    auto packed = msg.Pack();
    auto back = Fcall::Unpack(*packed);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_PackUnpackStat);

struct RpcFixture {
  RpcFixture() {
    (void)fs.WriteFile("data/file", std::string(64 * 1024, 'x'));
    auto [a, b] = PipeTransport::Make();
    server = std::make_unique<NinepServer>(&fs, std::move(a));
    client = std::make_unique<NinepClient>(std::move(b));
    root = client->AllocFid();
    (void)client->Attach(root, "bench", "");
    file = client->AllocFid();
    (void)client->CloneWalk(root, file, {"data", "file"});
    (void)client->Open(file, kORead);
  }
  RamFs fs;
  std::unique_ptr<NinepServer> server;
  std::unique_ptr<NinepClient> client;
  uint32_t root = 0, file = 0;
};

RpcFixture* Fixture() {
  static RpcFixture* f = new RpcFixture();
  return f;
}

void BM_RpcNop(benchmark::State& state) {
  auto* f = Fixture();
  for (auto _ : state) {
    auto r = f->client->Rpc(TnopMsg());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RpcNop);

void BM_RpcWalkCloneClunk(benchmark::State& state) {
  auto* f = Fixture();
  for (auto _ : state) {
    uint32_t fid = f->client->AllocFid();
    (void)f->client->CloneWalk(f->root, fid, {"data"});
    (void)f->client->Clunk(fid);
  }
}
BENCHMARK(BM_RpcWalkCloneClunk);

void BM_RpcRead8K(benchmark::State& state) {
  auto* f = Fixture();
  for (auto _ : state) {
    auto data = f->client->Read(f->file, 0, 8192);
    benchmark::DoNotOptimize(data);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_RpcRead8K);

void BM_MountDriverRead8K(benchmark::State& state) {
  // Through MntVnode — the procedural-to-RPC conversion path (§2.1).
  static std::shared_ptr<Vnode> node = [] {
    auto* f = Fixture();
    auto [a, b] = PipeTransport::Make();
    static NinepServer server(&f->fs, std::move(a));
    auto client = std::make_shared<NinepClient>(std::move(b));
    auto root = MntAttach(client, "bench", "").take();
    auto walked = root->Walk("data").take()->Walk("file").take();
    (void)walked->Open(kORead, "bench");
    return walked;
  }();
  for (auto _ : state) {
    auto data = node->Read(0, 8192);
    benchmark::DoNotOptimize(data);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_MountDriverRead8K);

}  // namespace
}  // namespace plan9

P9_BENCHMARK_MAIN("ninep");

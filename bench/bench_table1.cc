// Table 1 (§8): throughput and latency of reading and writing bytes between
// two processes, for four paths:
//
//     test          throughput MB/s   latency ms     (paper, 25 MHz MIPS)
//     pipes               8.15           .255
//     IL/ether            1.02           1.42
//     URP/Datakit         0.22           1.75
//     Cyclone             3.2            0.375
//
// "Throughput is measured using 16k writes from one process to another";
// latency "as the round trip time for a byte sent from one process to
// another and back again."  Media are configured at the paper's hardware
// rates (Ether 10 Mb/s, Datakit ~2 Mb/s circuits, Cyclone 125 Mb/s); pipes
// are pure memory.  See EXPERIMENTS.md for the shape discussion.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/svc/listen.h"
#include "src/world/boot.h"
#include "src/world/node.h"

using namespace plan9;
using Clock = std::chrono::steady_clock;

namespace {

constexpr size_t kWriteSize = 16 * 1024;

struct Row {
  const char* name;
  double mbytes_per_sec;
  double latency_ms;
  double paper_tput;
  double paper_lat;
};

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Sink `total` bytes arriving on fd, then send a one-byte ack.
void SinkThenAck(Proc* p, int fd, size_t total) {
  Bytes buf(64 * 1024);
  size_t got = 0;
  while (got < total) {
    auto n = p->Read(fd, buf.data(), buf.size());
    if (!n.ok() || *n == 0) {
      return;
    }
    got += *n;
  }
  (void)p->Write(fd, "!", 1);
}

// Throughput: writer pushes `total` bytes in 16K writes; remote sinks and
// acks.  Returns MB/s.
double Throughput(Proc* wp, int wfd, Proc* rp, int rfd, size_t total) {
  std::thread sink([&] { SinkThenAck(rp, rfd, total); });
  Bytes block(kWriteSize, 0x42);
  auto t0 = Clock::now();
  size_t sent = 0;
  while (sent < total) {
    auto n = wp->Write(wfd, block.data(), block.size());
    if (!n.ok()) {
      break;
    }
    sent += *n;
  }
  char ack;
  (void)wp->Read(wfd, &ack, 1);
  auto t1 = Clock::now();
  sink.join();
  return static_cast<double>(total) / (1024.0 * 1024.0) / Seconds(t0, t1);
}

// Latency: one-byte ping-pong round trips; remote echoes.  Returns ms/RTT.
double Latency(Proc* wp, int wfd, Proc* rp, int rfd, int rounds) {
  std::thread echo([&] {
    char c;
    for (int i = 0; i < rounds; i++) {
      auto n = rp->Read(rfd, &c, 1);
      if (!n.ok() || *n == 0) {
        return;
      }
      (void)rp->Write(rfd, &c, 1);
    }
  });
  char c = 'p';
  auto t0 = Clock::now();
  for (int i = 0; i < rounds; i++) {
    (void)wp->Write(wfd, &c, 1);
    (void)wp->Read(wfd, &c, 1);
  }
  auto t1 = Clock::now();
  echo.join();
  return Seconds(t0, t1) * 1000.0 / rounds;
}

const char kNdb[] =
    "sys=helix\n\tip=135.104.9.31 dk=nj/astro/helix\n"
    "sys=musca\n\tip=135.104.9.6 dk=nj/astro/musca\n"
    "il=bench port=9999\n";

struct TwoNodeWorld {
  TwoNodeWorld() : ether(LinkParams::Ether10()) {
    db = std::make_shared<Ndb>();
    (void)db->Load(kNdb);
    helix = std::make_unique<Node>("helix");
    musca = std::make_unique<Node>("musca");
    helix->AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                    Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
    musca->AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                    Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
    helix->AddDatakit(&dk, "nj/astro/helix");
    musca->AddDatakit(&dk, "nj/astro/musca");
    cyclone_link = std::make_unique<Wire>(LinkParams::Cyclone());
    helix->AddCyclone(cyclone_link.get(), Wire::kA);
    musca->AddCyclone(cyclone_link.get(), Wire::kB);
    (void)BootNetwork(helix.get(), db, kNdb);
    (void)BootNetwork(musca.get(), db, kNdb);
  }
  EtherSegment ether;
  DatakitSwitch dk;
  std::unique_ptr<Wire> cyclone_link;
  std::shared_ptr<Ndb> db;
  std::unique_ptr<Node> helix, musca;
};

// Set up a connected conversation on `net` between the two nodes; returns
// (client proc, client fd, server proc, server fd).
struct Conn {
  std::unique_ptr<Proc> cp, sp;
  int cfd = -1, sfd = -1;
};

Conn Connect(TwoNodeWorld& w, const std::string& dial_to, const std::string& announce) {
  Conn c;
  c.sp = w.musca->NewProc();
  c.cp = w.helix->NewProc();
  std::string adir;
  auto afd = Announce(c.sp.get(), announce, &adir);
  if (!afd.ok()) {
    std::fprintf(stderr, "announce %s: %s\n", announce.c_str(),
                 afd.error().message().c_str());
    exit(1);
  }
  int server_fd = -1;
  std::thread listener([&] {
    std::string ldir;
    auto lcfd = Listen(c.sp.get(), adir, &ldir);
    if (!lcfd.ok()) {
      return;
    }
    auto dfd = Accept(c.sp.get(), *lcfd, ldir);
    if (dfd.ok()) {
      server_fd = *dfd;
    }
  });
  auto dfd = Dial(c.cp.get(), dial_to);
  listener.join();
  if (!dfd.ok() || server_fd < 0) {
    std::fprintf(stderr, "dial %s: %s\n", dial_to.c_str(),
                 dfd.ok() ? "accept failed" : dfd.error().message().c_str());
    exit(1);
  }
  c.cfd = *dfd;
  c.sfd = server_fd;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  size_t scale = quick ? 1 : 4;
  int lat_rounds = quick ? 50 : 200;

  TwoNodeWorld w;
  Row rows[4] = {
      {"pipes", 0, 0, 8.15, 0.255},
      {"IL/ether", 0, 0, 1.02, 1.42},
      {"URP/Datakit", 0, 0, 0.22, 1.75},
      {"Cyclone", 0, 0, 3.2, 0.375},
  };

  // --- pipes ---------------------------------------------------------------
  {
    auto p = w.helix->NewProc();
    auto pipe1 = p->Pipe().take();
    rows[0].mbytes_per_sec =
        Throughput(p.get(), pipe1.first, p.get(), pipe1.second, scale * 64 * 1024 * 1024);
    auto pipe2 = p->Pipe().take();
    rows[0].latency_ms =
        Latency(p.get(), pipe2.first, p.get(), pipe2.second, lat_rounds * 10);
  }

  // --- IL over the 10 Mb/s Ethernet -----------------------------------------
  {
    auto conn = Connect(w, "il!135.104.9.6!9999", "il!*!9999");
    rows[1].mbytes_per_sec = Throughput(conn.cp.get(), conn.cfd, conn.sp.get(),
                                        conn.sfd, scale * 512 * 1024);
    rows[1].latency_ms = Latency(conn.cp.get(), conn.cfd, conn.sp.get(), conn.sfd,
                                 lat_rounds);
  }

  // --- URP over Datakit ------------------------------------------------------
  {
    auto conn = Connect(w, "dk!nj/astro/musca!bench", "dk!*!bench");
    rows[2].mbytes_per_sec = Throughput(conn.cp.get(), conn.cfd, conn.sp.get(),
                                        conn.sfd, scale * 256 * 1024);
    rows[2].latency_ms = Latency(conn.cp.get(), conn.cfd, conn.sp.get(), conn.sfd,
                                 lat_rounds);
  }

  // --- Cyclone fiber ---------------------------------------------------------
  {
    // Point-to-point: each node connects its end of link 0 by hand (the
    // fiber has no listen).
    auto cp = w.helix->NewProc();
    auto sp = w.musca->NewProc();
    auto ccfd = cp->Open("/net/cyclone/clone", kORdWr).take();
    auto cnum = cp->ReadString(ccfd, 16).take();
    (void)cp->WriteString(ccfd, "connect 0");
    int cdfd = cp->Open("/net/cyclone/" + cnum + "/data", kORdWr).take();
    auto scfd = sp->Open("/net/cyclone/clone", kORdWr).take();
    auto snum = sp->ReadString(scfd, 16).take();
    (void)sp->WriteString(scfd, "connect 0");
    int sdfd = sp->Open("/net/cyclone/" + snum + "/data", kORdWr).take();

    rows[3].mbytes_per_sec =
        Throughput(cp.get(), cdfd, sp.get(), sdfd, scale * 8 * 1024 * 1024);
    rows[3].latency_ms = Latency(cp.get(), cdfd, sp.get(), sdfd, lat_rounds);
    (void)cp->Close(cdfd);
    (void)cp->Close(ccfd);
    (void)sp->Close(sdfd);
    (void)sp->Close(scfd);
  }

  std::printf("\nTable 1 - Performance (16K writes; 1-byte RTT)\n");
  std::printf("%-14s %12s %12s %14s %12s\n", "test", "MB/s", "ms",
              "paper MB/s", "paper ms");
  for (const auto& r : rows) {
    std::printf("%-14s %12.2f %12.3f %14.2f %12.3f\n", r.name, r.mbytes_per_sec,
                r.latency_ms, r.paper_tput, r.paper_lat);
  }
  std::printf(
      "\nshape check: pipes > Cyclone > IL/ether > URP/Datakit : %s\n",
      (rows[0].mbytes_per_sec > rows[3].mbytes_per_sec &&
       rows[3].mbytes_per_sec > rows[1].mbytes_per_sec &&
       rows[1].mbytes_per_sec > rows[2].mbytes_per_sec)
          ? "HOLDS"
          : "VIOLATED");
  std::printf("latency shape: pipes < Cyclone < IL/ether < URP/Datakit : %s\n",
              (rows[0].latency_ms < rows[3].latency_ms &&
               rows[3].latency_ms < rows[1].latency_ms &&
               rows[1].latency_ms < rows[2].latency_ms)
                  ? "HOLDS"
                  : "VIOLATED");
  return 0;
}

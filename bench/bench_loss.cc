// §3's retransmission-strategy ablation.
//
// "In contrast to other protocols, IL does not do blind retransmission.  If
// a message is lost and a timeout occurs, a query message is sent...  This
// allows the protocol to behave well in congested networks, where blind
// retransmission would cause further congestion."
//
// We run an RPC-shaped workload (1K messages, windowed) over IL and over
// TCP at increasing loss rates and report goodput plus *overhead ratio* —
// retransmitted bytes (or messages) per useful byte delivered.  TCP's
// go-back-N resends everything in flight on a timeout; IL queries first and
// resends only what the State reply shows missing.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "src/dial/dial.h"
#include "src/inet/il.h"
#include "src/inet/tcp.h"
#include "src/ndb/ndb.h"
#include "src/world/boot.h"
#include "src/world/node.h"

using namespace plan9;
using Clock = std::chrono::steady_clock;

namespace {

const char kNdb[] =
    "sys=helix\n\tip=135.104.9.31\nsys=musca\n\tip=135.104.9.6\n";

struct World {
  explicit World(double loss, uint64_t seed)
      : ether(LinkParams{.bandwidth_bps = 10'000'000,
                         .latency = std::chrono::microseconds(200),
                         .loss_rate = loss,
                         .seed = seed,
                         .mtu = 1514}) {
    db = std::make_shared<Ndb>();
    (void)db->Load(kNdb);
    helix = std::make_unique<Node>("helix");
    musca = std::make_unique<Node>("musca");
    helix->AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                    Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
    musca->AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                    Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
    (void)BootNetwork(helix.get(), db, kNdb);
    (void)BootNetwork(musca.get(), db, kNdb);
  }
  EtherSegment ether;
  std::shared_ptr<Ndb> db;
  std::unique_ptr<Node> helix, musca;
};

struct RunResult {
  double goodput_kbs = 0;
  double overhead_ratio = 0;  // retransmitted bytes / useful bytes
  bool completed = false;
};

RunResult Run(const std::string& proto, double loss, size_t messages, size_t msg_size,
              uint64_t seed) {
  World w(loss, seed);
  auto sp = w.musca->NewProc();
  auto cp = w.helix->NewProc();
  std::string adir;
  auto afd = Announce(sp.get(), proto + "!*!7777", &adir);
  if (!afd.ok()) {
    return {};
  }
  int server_fd = -1;
  std::thread listener([&] {
    std::string ldir;
    auto lcfd = Listen(sp.get(), adir, &ldir);
    if (lcfd.ok()) {
      auto dfd = Accept(sp.get(), *lcfd, ldir);
      if (dfd.ok()) {
        server_fd = *dfd;
      }
    }
  });
  auto dfd = Dial(cp.get(), proto + "!135.104.9.6!7777");
  listener.join();
  if (!dfd.ok() || server_fd < 0) {
    return {};
  }

  size_t total = messages * msg_size;
  std::thread sink([&] {
    Bytes buf(16 * 1024);
    size_t got = 0;
    while (got < total) {
      auto n = sp->Read(server_fd, buf.data(), buf.size());
      if (!n.ok() || *n == 0) {
        return;
      }
      got += *n;
    }
    (void)sp->Write(server_fd, "!", 1);
  });

  Bytes block(msg_size, 0x3c);
  auto t0 = Clock::now();
  bool ok = true;
  for (size_t i = 0; i < messages && ok; i++) {
    auto n = cp->Write(*dfd, block.data(), block.size());
    ok = n.ok();
  }
  char ack = 0;
  if (ok) {
    auto n = cp->Read(*dfd, &ack, 1);
    ok = n.ok() && *n == 1;
  }
  auto t1 = Clock::now();
  sink.join();

  RunResult r;
  r.completed = ok;
  r.goodput_kbs = static_cast<double>(total) / 1024.0 /
                  std::chrono::duration<double>(t1 - t0).count();
  // Pull retransmission stats from the client conversation (index found via
  // the protocol object: connection 0 is ours — the world is private).
  if (proto == "il") {
    auto* conv = static_cast<IlConv*>(w.helix->il()->Conv(0));
    auto s = conv->stats();
    r.overhead_ratio =
        s.msgs_sent == 0
            ? 0
            : static_cast<double>(s.retransmits) / static_cast<double>(s.msgs_sent);
  } else {
    auto* conv = static_cast<TcpConv*>(w.helix->tcp()->Conv(0));
    auto s = conv->stats();
    r.overhead_ratio = s.bytes_sent == 0 ? 0
                                         : static_cast<double>(s.retransmit_bytes) /
                                               static_cast<double>(s.bytes_sent);
  }
  (void)cp->Close(*dfd);
  (void)sp->Close(server_fd);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  setbuf(stdout, nullptr);
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  size_t messages = quick ? 150 : 600;
  size_t msg_size = 1024;

  std::printf("query-based (IL) vs blind (TCP) retransmission under loss (§3)\n");
  std::printf("workload: %zu x %zuB messages, one direction + ack\n\n", messages,
              msg_size);
  std::printf("%-6s %6s %14s %26s\n", "proto", "loss", "goodput KB/s",
              "retransmit overhead ratio");
  for (double loss : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    for (const char* proto : {"il", "tcp"}) {
      auto r = Run(proto, loss, messages, msg_size, /*seed=*/1234);
      std::printf("%-6s %5.0f%% %14.1f %26.3f %s\n", proto, loss * 100,
                  r.goodput_kbs, r.overhead_ratio, r.completed ? "" : "(incomplete)");
    }
  }
  std::printf(
      "\noverhead ratio = retransmitted/total sent (messages for IL, bytes for "
      "TCP).\nIL's ratio should stay well below TCP's as loss grows: it asks "
      "(Query/State)\nbefore resending, instead of blindly resending the window.\n");
  return 0;
}

// §3's retransmission-strategy ablation, extended with adversarial links.
//
// "In contrast to other protocols, IL does not do blind retransmission.  If
// a message is lost and a timeout occurs, a query message is sent...  This
// allows the protocol to behave well in congested networks, where blind
// retransmission would cause further congestion."
//
// Two experiments:
//
//   1. The classic sweep: an RPC-shaped workload (windowed one-way stream +
//      ack) over IL and TCP at increasing *uniform* loss, reporting goodput
//      and overhead ratio — retransmitted per useful.  TCP's go-back-N
//      resends everything in flight on a timeout; IL queries first and
//      resends only what the State reply shows missing.
//
//   2. A FaultProfile sweep: a ping-pong workload across burst loss,
//      reordering, and a flapping partition, reporting measured loss, p50
//      and p99 per-op latency, and retransmit counts.  Tail latency is where
//      query-based recovery shows its worth.
//
// `--quick` shrinks the workloads (CI); `--json` emits one machine-readable
// object instead of the tables.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/dial/dial.h"
#include "src/inet/il.h"
#include "src/inet/tcp.h"
#include "src/ndb/ndb.h"
#include "src/sim/faults.h"
#include "src/world/boot.h"
#include "src/world/node.h"

using namespace plan9;
using Clock = std::chrono::steady_clock;

namespace {

const char kNdb[] =
    "sys=helix\n\tip=135.104.9.31\nsys=musca\n\tip=135.104.9.6\n";

struct World {
  explicit World(LinkParams params) : ether(params) {
    db = std::make_shared<Ndb>();
    (void)db->Load(kNdb);
    helix = std::make_unique<Node>("helix");
    musca = std::make_unique<Node>("musca");
    helix->AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                    Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
    musca->AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                    Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
    (void)BootNetwork(helix.get(), db, kNdb);
    (void)BootNetwork(musca.get(), db, kNdb);
  }
  EtherSegment ether;
  std::shared_ptr<Ndb> db;
  std::unique_ptr<Node> helix, musca;
};

LinkParams BaseEther(uint64_t seed) {
  LinkParams p;
  p.bandwidth_bps = 10'000'000;
  p.latency = std::chrono::microseconds(200);
  p.seed = seed;
  p.mtu = 1514;
  return p;
}

// Dial proto!musca!7777 and hand back both data fds.
struct Conn {
  int client_fd = -1;
  int server_fd = -1;
  bool ok = false;
};

Conn Connect(World& w, Proc* sp, Proc* cp, const std::string& proto) {
  Conn c;
  std::string adir;
  auto afd = Announce(sp, proto + "!*!7777", &adir);
  if (!afd.ok()) {
    return c;
  }
  std::thread listener([&] {
    std::string ldir;
    auto lcfd = Listen(sp, adir, &ldir);
    if (lcfd.ok()) {
      auto dfd = Accept(sp, *lcfd, ldir);
      if (dfd.ok()) {
        c.server_fd = *dfd;
      }
      (void)sp->Close(*lcfd);
    }
  });
  DialOptions opts;  // flaky media can eat the handshake; retry through it
  opts.attempts = 5;
  opts.backoff = std::chrono::milliseconds(100);
  auto dfd = Dial(cp, proto + "!135.104.9.6!7777", opts);
  listener.join();
  (void)w.helix;
  if (!dfd.ok() || c.server_fd < 0) {
    return c;
  }
  c.client_fd = *dfd;
  c.ok = true;
  return c;
}

uint64_t ClientRetransmits(World& w, const std::string& proto) {
  if (proto == "il") {
    const auto& s = static_cast<IlConv*>(w.helix->il()->Conv(0))->metrics();
    return s.retransmits.value();
  }
  const auto& s = static_cast<TcpConv*>(w.helix->tcp()->Conv(0))->metrics();
  return s.retransmit_segs.value();
}

// --- experiment 1: uniform loss, streaming goodput -------------------------

struct RunResult {
  double goodput_kbs = 0;
  double overhead_ratio = 0;  // retransmitted / useful
  bool completed = false;
};

RunResult Run(const std::string& proto, double loss, size_t messages, size_t msg_size,
              uint64_t seed) {
  LinkParams params = BaseEther(seed);
  params.loss_rate = loss;
  World w(params);
  auto sp = w.musca->NewProc();
  auto cp = w.helix->NewProc();
  Conn conn = Connect(w, sp.get(), cp.get(), proto);
  if (!conn.ok) {
    return {};
  }

  size_t total = messages * msg_size;
  std::thread sink([&] {
    Bytes buf(16 * 1024);
    size_t got = 0;
    while (got < total) {
      auto n = sp->Read(conn.server_fd, buf.data(), buf.size());
      if (!n.ok() || *n == 0) {
        return;
      }
      got += *n;
    }
    (void)sp->Write(conn.server_fd, "!", 1);
  });

  Bytes block(msg_size, 0x3c);
  auto t0 = Clock::now();
  bool ok = true;
  for (size_t i = 0; i < messages && ok; i++) {
    auto n = cp->Write(conn.client_fd, block.data(), block.size());
    ok = n.ok();
  }
  char ack = 0;
  if (ok) {
    auto n = cp->Read(conn.client_fd, &ack, 1);
    ok = n.ok() && *n == 1;
  }
  auto t1 = Clock::now();
  sink.join();

  RunResult r;
  r.completed = ok;
  r.goodput_kbs = static_cast<double>(total) / 1024.0 /
                  std::chrono::duration<double>(t1 - t0).count();
  // Pull retransmission stats from the client conversation (index found via
  // the protocol object: connection 0 is ours — the world is private).
  if (proto == "il") {
    const auto& s = static_cast<IlConv*>(w.helix->il()->Conv(0))->metrics();
    r.overhead_ratio = s.msgs_sent.value() == 0
                           ? 0
                           : static_cast<double>(s.retransmits.value()) /
                                 static_cast<double>(s.msgs_sent.value());
  } else {
    const auto& s = static_cast<TcpConv*>(w.helix->tcp()->Conv(0))->metrics();
    r.overhead_ratio = s.bytes_sent.value() == 0
                           ? 0
                           : static_cast<double>(s.retransmit_bytes.value()) /
                                 static_cast<double>(s.bytes_sent.value());
  }
  (void)cp->Close(conn.client_fd);
  (void)sp->Close(conn.server_fd);
  return r;
}

// --- experiment 2: fault profiles, ping-pong latency tail ------------------

struct NamedProfile {
  const char* name;
  FaultProfile profile;
};

std::vector<NamedProfile> SweepProfiles() {
  FaultProfile uniform;
  uniform.loss_good = uniform.loss_bad = 0.05;
  uniform.p_good_to_bad = 0.0;

  FaultProfile flap;
  flap.flap_period = std::chrono::milliseconds(800);
  flap.flap_down = std::chrono::milliseconds(150);

  return {
      {"uniform", uniform},
      {"burst-loss", FaultProfile::BurstLoss(0.10)},
      {"reorder", FaultProfile::Reorder(0.10, std::chrono::microseconds(3000))},
      {"partition-flap", flap},
  };
}

struct ProfileResult {
  bool completed = false;
  double loss_pct = 0;   // measured at the medium
  double p50_us = 0;
  double p99_us = 0;
  uint64_t retransmits = 0;
  double goodput_kbs = 0;
};

ProfileResult RunProfile(const std::string& proto, const FaultProfile& profile,
                         size_t ops, size_t msg_size, uint64_t seed) {
  LinkParams params = BaseEther(seed);
  params.faults = profile;
  World w(params);
  auto sp = w.musca->NewProc();
  auto cp = w.helix->NewProc();
  Conn conn = Connect(w, sp.get(), cp.get(), proto);
  if (!conn.ok) {
    return {};
  }

  // Echo server: one full message in, the same bytes back.
  std::thread echo([&] {
    Bytes buf(msg_size);
    for (size_t i = 0; i < ops; i++) {
      size_t got = 0;
      while (got < msg_size) {
        auto n = sp->Read(conn.server_fd, buf.data() + got, msg_size - got);
        if (!n.ok() || *n == 0) {
          return;
        }
        got += *n;
      }
      if (!sp->Write(conn.server_fd, buf.data(), msg_size).ok()) {
        return;
      }
    }
  });

  Bytes block(msg_size, 0x5a);
  Bytes back(msg_size);
  std::vector<double> lat_us;
  lat_us.reserve(ops);
  bool ok = true;
  auto t0 = Clock::now();
  for (size_t i = 0; i < ops && ok; i++) {
    auto s0 = Clock::now();
    ok = cp->Write(conn.client_fd, block.data(), msg_size).ok();
    size_t got = 0;
    while (ok && got < msg_size) {
      auto n = cp->Read(conn.client_fd, back.data() + got, msg_size - got);
      ok = n.ok() && *n > 0;
      if (ok) {
        got += *n;
      }
    }
    if (ok) {
      lat_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - s0).count());
    }
  }
  auto t1 = Clock::now();

  ProfileResult r;
  r.completed = ok && lat_us.size() == ops;
  if (!lat_us.empty()) {
    std::sort(lat_us.begin(), lat_us.end());
    r.p50_us = lat_us[lat_us.size() / 2];
    r.p99_us = lat_us[std::min(lat_us.size() - 1, lat_us.size() * 99 / 100)];
  }
  r.retransmits = ClientRetransmits(w, proto);
  const auto& ms = w.ether.stats();
  r.loss_pct = ms.frames_sent.value() == 0
                   ? 0
                   : 100.0 * static_cast<double>(ms.frames_dropped.value()) /
                         static_cast<double>(ms.frames_sent.value());
  r.goodput_kbs = static_cast<double>(2 * msg_size * lat_us.size()) / 1024.0 /
                  std::chrono::duration<double>(t1 - t0).count();
  (void)cp->Close(conn.client_fd);
  (void)sp->Close(conn.server_fd);
  echo.join();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  setbuf(stdout, nullptr);
  bool quick = false, json = false;
  std::string only_profile;  // --profile=NAME restricts the fault sweep
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--profile=", 0) == 0) {
      only_profile = arg.substr(10);
    }
  }
  size_t messages = quick ? 150 : 600;
  size_t msg_size = 1024;
  size_t ops = quick ? 120 : 400;
  size_t op_size = 512;
  uint64_t seed = 1234;

  if (!json) {
    std::printf("query-based (IL) vs blind (TCP) retransmission under loss (§3)\n");
    std::printf("workload: %zu x %zuB messages, one direction + ack\n\n", messages,
                msg_size);
    std::printf("%-6s %6s %14s %26s\n", "proto", "loss", "goodput KB/s",
                "retransmit overhead ratio");
  }
  struct UniformRow {
    double loss;
    std::string proto;
    RunResult r;
  };
  std::vector<UniformRow> uniform_rows;
  for (double loss : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    for (const char* proto : {"il", "tcp"}) {
      auto r = Run(proto, loss, messages, msg_size, seed);
      uniform_rows.push_back({loss, proto, r});
      if (!json) {
        std::printf("%-6s %5.0f%% %14.1f %26.3f %s\n", proto, loss * 100,
                    r.goodput_kbs, r.overhead_ratio, r.completed ? "" : "(incomplete)");
      }
    }
  }

  if (!json) {
    std::printf(
        "\noverhead ratio = retransmitted/total sent (messages for IL, bytes for "
        "TCP).\nIL's ratio should stay well below TCP's as loss grows: it asks "
        "(Query/State)\nbefore resending, instead of blindly resending the "
        "window.\n");
    std::printf("\nfault-profile sweep: %zu x %zuB ping-pong ops\n\n", ops, op_size);
    std::printf("%-15s %-6s %7s %10s %10s %10s %12s\n", "profile", "proto", "loss%",
                "p50 us", "p99 us", "rexmit", "goodput KB/s");
  }
  struct ProfileRow {
    std::string profile;
    std::string proto;
    ProfileResult r;
  };
  std::vector<ProfileRow> profile_rows;
  for (const auto& np : SweepProfiles()) {
    if (!only_profile.empty() && only_profile != np.name) {
      continue;
    }
    for (const char* proto : {"il", "tcp"}) {
      auto r = RunProfile(proto, np.profile, ops, op_size, seed);
      profile_rows.push_back({np.name, proto, r});
      if (!json) {
        std::printf("%-15s %-6s %6.1f%% %10.0f %10.0f %10llu %12.1f %s\n", np.name,
                    proto, r.loss_pct, r.p50_us, r.p99_us,
                    static_cast<unsigned long long>(r.retransmits), r.goodput_kbs,
                    r.completed ? "" : "(incomplete)");
      }
    }
  }

  if (json) {
    std::printf("{\n  \"bench\": \"bench_loss\",\n");
    std::printf("  \"uniform_workload\": {\"messages\": %zu, \"msg_size\": %zu},\n",
                messages, msg_size);
    std::printf("  \"uniform\": [\n");
    for (size_t i = 0; i < uniform_rows.size(); i++) {
      const auto& row = uniform_rows[i];
      std::printf("    {\"proto\": \"%s\", \"loss\": %.2f, \"goodput_kbs\": %.1f, "
                  "\"overhead_ratio\": %.4f, \"completed\": %s}%s\n",
                  row.proto.c_str(), row.loss, row.r.goodput_kbs,
                  row.r.overhead_ratio, row.r.completed ? "true" : "false",
                  i + 1 < uniform_rows.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"profile_workload\": {\"ops\": %zu, \"msg_size\": %zu},\n", ops,
                op_size);
    std::printf("  \"profiles\": [\n");
    for (size_t i = 0; i < profile_rows.size(); i++) {
      const auto& row = profile_rows[i];
      std::printf("    {\"profile\": \"%s\", \"proto\": \"%s\", \"loss_pct\": %.2f, "
                  "\"p50_us\": %.0f, \"p99_us\": %.0f, \"retransmits\": %llu, "
                  "\"goodput_kbs\": %.1f, \"completed\": %s}%s\n",
                  row.profile.c_str(), row.proto.c_str(), row.r.loss_pct, row.r.p50_us,
                  row.r.p99_us, static_cast<unsigned long long>(row.r.retransmits),
                  row.r.goodput_kbs, row.r.completed ? "true" : "false",
                  i + 1 < profile_rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  }
  return 0;
}

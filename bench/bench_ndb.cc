// §4.1: the network-database hash indexes.
//
// "Our global file ... has 43,000 lines.  To speed searches, we build hash
// table files for each attribute we expect to search often...  Searches for
// attributes that aren't hashed or whose hash table is out-of-date still
// work, they just take longer."
//
// Benchmarks: indexed lookup vs linear scan vs stale-index fallback on a
// synthetic 43k-line global database, plus the $attr ipinfo walk and the
// service-name resolution CS performs per dial.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/ndb/ndb.h"

namespace plan9 {
namespace {

Ndb* GlobalDb() {
  static Ndb* db = [] {
    auto* d = new Ndb();
    // The paper's AT&T-wide database: 43,000 lines.
    (void)d->Load(SynthesizeGlobalNdb(43'000));
    (void)d->Load(
        "ipnet=backbone ip=10.0.0.0 auth=authserv\n"
        "il=9fs port=17008\ntcp=echo port=7\n"
        "sys=target\n\tdom=target.example.com\n\tip=10.1.2.3\n");
    return d;
  }();
  return db;
}

void BM_LookupIndexed(benchmark::State& state) {
  Ndb* db = GlobalDb();
  db->BuildIndex("sys");
  for (auto _ : state) {
    auto hits = db->Search("sys", "synth500");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_LookupIndexed);

void BM_LookupLinearScan(benchmark::State& state) {
  Ndb* db = GlobalDb();
  // "attributes that aren't hashed ... still work, they just take longer":
  // dom has no index here.
  for (auto _ : state) {
    auto hits = db->Search("dom", "synth500.research.example.com");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_LookupLinearScan);

void BM_LookupStaleIndexFallback(benchmark::State& state) {
  Ndb* db = GlobalDb();
  db->BuildIndex("sys");
  db->InvalidateIndexes();  // master file changed; hash files out of date
  for (auto _ : state) {
    auto hits = db->Search("sys", "synth500");
    benchmark::DoNotOptimize(hits);
  }
  db->RebuildIndexes();
}
BENCHMARK(BM_LookupStaleIndexFallback);

void BM_IndexBuild43kLines(benchmark::State& state) {
  Ndb* db = GlobalDb();
  for (auto _ : state) {
    db->BuildIndex("ip");
  }
}
BENCHMARK(BM_IndexBuild43kLines);

void BM_IpInfoAuthWalk(benchmark::State& state) {
  // The $auth meta-name: system entry -> subnet -> network.
  Ndb* db = GlobalDb();
  for (auto _ : state) {
    auto v = db->IpInfo(Ipv4Addr::FromOctets(10, 1, 2, 3), "auth");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_IpInfoAuthWalk);

void BM_ServicePortResolution(benchmark::State& state) {
  Ndb* db = GlobalDb();
  for (auto _ : state) {
    auto p = db->ServicePort("il", "9fs");
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ServicePortResolution);

void BM_ParseLocalDb(benchmark::State& state) {
  static const std::string text = SynthesizeGlobalNdb(1000);
  for (auto _ : state) {
    Ndb db;
    (void)db.Load(text);
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_ParseLocalDb);

}  // namespace
}  // namespace plan9

BENCHMARK_MAIN();

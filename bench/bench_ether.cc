// Figure 1 / §2.2: the Ethernet driver's demultiplexer.
//
// "If several connections on an interface are configured for a particular
// packet type, each receives a copy of the incoming packets."  We measure
// delivered frames/sec into the conversation streams as the number of
// matching conversations grows (each match is a copy), and the cost of a
// promiscuous snooper on top.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/dev/ether.h"
#include "src/sim/ether_segment.h"

namespace plan9 {
namespace {

struct EtherFixture {
  EtherFixture() : segment(LinkParams::Perfect()) {
    proto = std::make_unique<EtherProto>(&segment, MacAddr{2, 0, 0, 0, 0, 1});
    // A peer station whose frames the driver will hear.
    peer = segment.Attach(MacAddr{2, 0, 0, 0, 0, 2}, nullptr);
  }
  EtherSegment segment;
  std::unique_ptr<EtherProto> proto;
  EtherSegment::StationId peer;
};

void DemuxBench(benchmark::State& state, bool promiscuous) {
  EtherFixture fx;
  int nconvs = static_cast<int>(state.range(0));
  std::vector<NetConv*> convs;
  for (int i = 0; i < nconvs; i++) {
    auto conv = fx.proto->Clone().take();
    (void)conv->Ctl("connect 2048");
    if (promiscuous && i == 0) {
      (void)conv->Ctl("promiscuous");
    }
    convs.push_back(conv);
  }
  EtherFrame frame;
  frame.src = MacAddr{2, 0, 0, 0, 0, 2};
  frame.dst = MacAddr{2, 0, 0, 0, 0, 1};
  frame.type = 2048;
  frame.payload = Bytes(512, 0x7e);

  // Drive Input directly: pure demux cost, no media timing.
  for (auto _ : state) {
    fx.proto->Input(frame);
    // Drain so head queues don't hit their drop threshold.
    for (auto* c : convs) {
      Bytes buf(600);
      (void)c->Read(buf.data(), buf.size());
    }
  }
  state.SetItemsProcessed(state.iterations() * nconvs);
  for (auto* c : convs) {
    c->CloseUser();
  }
}

void BM_DemuxCopies(benchmark::State& state) { DemuxBench(state, false); }
BENCHMARK(BM_DemuxCopies)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_DemuxWithSnooper(benchmark::State& state) { DemuxBench(state, true); }
BENCHMARK(BM_DemuxWithSnooper)->Arg(2)->Arg(8);

void BM_NonMatchingTypeFiltered(benchmark::State& state) {
  // Frames of a type nobody selected must be cheap to discard.
  EtherFixture fx;
  auto conv = fx.proto->Clone().take();
  (void)conv->Ctl("connect 2048");
  EtherFrame frame;
  frame.src = MacAddr{2, 0, 0, 0, 0, 2};
  frame.dst = MacAddr{2, 0, 0, 0, 0, 1};
  frame.type = 0x0806;  // ARP, not selected
  frame.payload = Bytes(64, 0);
  for (auto _ : state) {
    fx.proto->Input(frame);
  }
  conv->CloseUser();
}
BENCHMARK(BM_NonMatchingTypeFiltered);

}  // namespace
}  // namespace plan9

BENCHMARK_MAIN();

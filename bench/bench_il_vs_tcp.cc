// §3: "None of the standard IP protocols is suitable for transmission of 9P
// messages...  TCP has a high overhead and does not preserve delimiters."
// IL vs TCP as a 9P RPC transport on the same 10 Mb/s Ethernet:
//
//   * RPC latency: 128-byte request / 128-byte reply round trips — a stat-
//     sized 9P exchange (TCP pays framing + ack machinery);
//   * message throughput: 8K writes (the 9P data size), delimited for IL,
//     length-framed for TCP;
//   * code size: the paper quotes 847 lines of IL vs 2200 of TCP; ours are
//     printed by tools/loc.sh and recorded in EXPERIMENTS.md.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "bench/bench_obs.h"
#include "src/dial/dial.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/ndb/ndb.h"
#include "src/world/boot.h"
#include "src/world/node.h"

using namespace plan9;
using Clock = std::chrono::steady_clock;

namespace {

const char kNdb[] =
    "sys=helix\n\tip=135.104.9.31\nsys=musca\n\tip=135.104.9.6\n";

struct World {
  World() : ether(LinkParams::Ether10()) {
    db = std::make_shared<Ndb>();
    (void)db->Load(kNdb);
    helix = std::make_unique<Node>("helix");
    musca = std::make_unique<Node>("musca");
    helix->AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                    Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
    musca->AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                    Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
    (void)BootNetwork(helix.get(), db, kNdb);
    (void)BootNetwork(musca.get(), db, kNdb);
  }
  EtherSegment ether;
  std::shared_ptr<Ndb> db;
  std::unique_ptr<Node> helix, musca;
};

struct Conn {
  std::unique_ptr<Proc> cp, sp;
  int cfd = -1, sfd = -1;
};

Conn Connect(World& w, const std::string& proto, const char* port) {
  Conn c;
  c.sp = w.musca->NewProc();
  c.cp = w.helix->NewProc();
  std::string adir;
  auto afd = Announce(c.sp.get(), proto + "!*!" + port, &adir);
  if (!afd.ok()) {
    std::fprintf(stderr, "announce: %s\n", afd.error().message().c_str());
    exit(1);
  }
  int server_fd = -1;
  std::thread listener([&] {
    std::string ldir;
    auto lcfd = Listen(c.sp.get(), adir, &ldir);
    if (lcfd.ok()) {
      auto dfd = Accept(c.sp.get(), *lcfd, ldir);
      if (dfd.ok()) {
        server_fd = *dfd;
      }
    }
  });
  auto dfd = Dial(c.cp.get(), proto + "!135.104.9.6!" + port);
  listener.join();
  if (!dfd.ok() || server_fd < 0) {
    std::fprintf(stderr, "dial failed\n");
    exit(1);
  }
  c.cfd = *dfd;
  c.sfd = server_fd;
  return c;
}

// RPC latency: client sends `size` bytes, server replies with `size` bytes.
double RpcLatencyUs(Conn& c, size_t size, int rounds) {
  std::thread server([&] {
    Bytes buf(size * 2);
    for (int i = 0; i < rounds; i++) {
      size_t got = 0;
      while (got < size) {
        auto n = c.sp->Read(c.sfd, buf.data(), buf.size());
        if (!n.ok() || *n == 0) {
          return;
        }
        got += *n;
      }
      (void)c.sp->Write(c.sfd, buf.data(), size);
    }
  });
  Bytes req(size, 0x7);
  Bytes resp(size * 2);
  auto t0 = Clock::now();
  for (int i = 0; i < rounds; i++) {
    (void)c.cp->Write(c.cfd, req.data(), req.size());
    size_t got = 0;
    while (got < size) {
      auto n = c.cp->Read(c.cfd, resp.data(), resp.size());
      if (!n.ok() || *n == 0) {
        break;
      }
      got += *n;
    }
  }
  auto t1 = Clock::now();
  server.join();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / rounds;
}

double ThroughputMBs(Conn& c, size_t msg, size_t total) {
  std::thread sink([&] {
    Bytes buf(64 * 1024);
    size_t got = 0;
    while (got < total) {
      auto n = c.sp->Read(c.sfd, buf.data(), buf.size());
      if (!n.ok() || *n == 0) {
        return;
      }
      got += *n;
    }
    (void)c.sp->Write(c.sfd, "!", 1);
  });
  Bytes block(msg, 0x42);
  auto t0 = Clock::now();
  size_t sent = 0;
  while (sent < total) {
    auto n = c.cp->Write(c.cfd, block.data(), block.size());
    if (!n.ok()) {
      break;
    }
    sent += *n;
  }
  char ack;
  (void)c.cp->Read(c.cfd, &ack, 1);
  auto t1 = Clock::now();
  sink.join();
  return static_cast<double>(total) / (1024.0 * 1024.0) /
         std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::string json_path = "BENCH_il_vs_tcp.json";
  double gate_trace_overhead = -1;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
    } else if (arg.rfind("--gate-trace-overhead=", 0) == 0) {
      gate_trace_overhead = std::atof(arg.c_str() + 22);
    }
  }
  int rounds = quick ? 100 : 400;
  size_t total = (quick ? 1 : 4) * 512 * 1024;

  World w;
  std::printf("9P-transport comparison on a 10 Mb/s Ethernet (§3)\n\n");
  std::printf("%-6s %22s %18s\n", "proto", "128B RPC latency (us)",
              "8K msg tput (MB/s)");
  double lat_us[2], tput_mbs[2];
  const char* protos[2] = {"il", "tcp"};
  for (int i = 0; i < 2; i++) {
    auto lat_conn = Connect(w, protos[i], "9901");
    lat_us[i] = RpcLatencyUs(lat_conn, 128, rounds);
    auto tput_conn = Connect(w, protos[i], "9902");
    tput_mbs[i] = ThroughputMBs(tput_conn, 8192, total);
    std::printf("%-6s %22.1f %18.2f\n", protos[i], lat_us[i], tput_mbs[i]);
  }
  std::printf(
      "\npaper: IL 847 LoC vs TCP 2200 LoC; ours: see tools/loc.sh output in "
      "EXPERIMENTS.md.\nIL preserves delimiters (no framing layer needed for 9P); "
      "TCP needs the marshal module.\n");

  // Causal-tracing overhead (DESIGN.md §12): IL throughput with tracing off
  // vs head sampling at 1/1000.  The off run above already measured the
  // baseline shape; re-measure both on fresh conversations so the only
  // variable is the sampler.
  double il_tput_off = ThroughputMBs(
      *std::make_unique<Conn>(Connect(w, "il", "9903")).get(), 8192, total);
  (void)obs::FlightRecorder::Default().Ctl("trace sample 1000");
  double il_tput_sampled = ThroughputMBs(
      *std::make_unique<Conn>(Connect(w, "il", "9904")).get(), 8192, total);
  (void)obs::FlightRecorder::Default().Ctl("trace sample 0");
  obs::FlightRecorder::Default().Disable(
      static_cast<uint32_t>(obs::TraceKind::kSpan));
  double overhead_pct =
      il_tput_off > 0 ? (il_tput_off - il_tput_sampled) / il_tput_off * 100.0
                      : 0.0;
  std::printf(
      "\ntracing overhead on IL throughput: off %.2f MB/s, sample 1/1000 "
      "%.2f MB/s (%.2f%%)\n",
      il_tput_off, il_tput_sampled, overhead_pct);

  if (json) {
    std::ofstream out(json_path);
    out << "{\"suite\": \"il_vs_tcp\",\n\"results\": [\n";
    for (int i = 0; i < 2; i++) {
      out << "  {\"proto\": \"" << protos[i] << "\", \"rpc_latency_us\": "
          << lat_us[i] << ", \"throughput_mbs\": " << tput_mbs[i] << "}"
          << (i == 0 ? ",\n" : "\n");
    }
    out << "],\n\"trace_overhead\": {\"il_tput_off\": " << il_tput_off
        << ", \"il_tput_sampled\": " << il_tput_sampled
        << ", \"overhead_pct\": " << overhead_pct << "},\n\"block_audit\": "
        << benchutil::RenderBlockAudit() << ",\n\"registry\": "
        << obs::MetricsRegistry::Default().RenderJson() << "}\n";
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  if (gate_trace_overhead >= 0 && overhead_pct > gate_trace_overhead) {
    std::fprintf(stderr,
                 "FAIL: tracing overhead %.2f%% exceeds gate %.2f%%\n",
                 overhead_pct, gate_trace_overhead);
    return 1;
  }
  return 0;
}

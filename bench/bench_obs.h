// Shared main() for google-benchmark suites, adding two flags:
//
//   --quick        short run (min_time 0.05s) for CI smoke jobs
//   --json[=path]  after the run, write BENCH_<name>.json (or `path`)
//                  containing the google-benchmark JSON report plus a
//                  snapshot of the metrics registry, starting the
//                  BENCH_*.json trajectory the CI bench-smoke job uploads
//
// Use P9_BENCHMARK_MAIN("name") in place of BENCHMARK_MAIN().  The
// container's benchmark library predates the "0.2s" suffix syntax, so
// min_time is always passed as a bare double.
#ifndef BENCH_BENCH_OBS_H_
#define BENCH_BENCH_OBS_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace plan9 {
namespace benchutil {

// Derived block-audit figures (DESIGN.md section 13): payload copies and
// heap allocations per delimited message, and the block-pool hit rate.
// Written as their own JSON section so a trend job can gate on
// copies_per_message / allocs_per_message without walking the registry.
inline std::string RenderBlockAudit() {
  auto& r = obs::MetricsRegistry::Default();
  auto v = [&r](const char* n) {
    return static_cast<double>(r.CounterNamed(n).value());
  };
  double msgs = v("stream.block.msgs");
  double hot_msgs = v("stream.hot.msgs");
  double hits = v("stream.block.pool-hit");
  double misses = v("stream.block.pool-miss");
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(6);
  out << "{\"messages\": " << static_cast<uint64_t>(msgs)
      << ", \"copies_per_message\": "
      << (msgs > 0 ? v("stream.block.copies") / msgs : 0.0)
      << ", \"allocs_per_message\": "
      << (hot_msgs > 0 ? v("stream.hot.allocs") / hot_msgs : 0.0)
      << ", \"alloc_bytes_per_message\": "
      << (hot_msgs > 0 ? v("stream.hot.alloc-bytes") / hot_msgs : 0.0)
      << ", \"pool_hit_rate\": "
      << (hits + misses > 0 ? hits / (hits + misses) : 0.0) << "}";
  return out.str();
}

inline int RunWithObs(int argc, char** argv, const char* name) {
  bool quick = false;
  bool json = false;
  std::string json_path = std::string("BENCH_") + name + ".json";
  // Rebuild argv without our flags; google benchmark rejects unknown ones.
  std::vector<std::string> args;
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
    } else {
      args.push_back(std::move(arg));
    }
  }
  if (quick) {
    args.emplace_back("--benchmark_min_time=0.05");
  }
  std::string report_path = json_path + ".gbench";
  if (json) {
    args.emplace_back("--benchmark_out=" + report_path);
    args.emplace_back("--benchmark_out_format=json");
  }
  std::vector<char*> cargs;
  for (auto& a : args) {
    cargs.push_back(a.data());
  }
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  benchmark::RunSpecifiedBenchmarks();
  if (json) {
    std::ifstream in(report_path);
    std::stringstream report;
    report << in.rdbuf();
    std::ofstream out(json_path);
    out << "{\"suite\": \"" << name << "\",\n\"google_benchmark\": "
        << (report.str().empty() ? "null" : report.str())
        << ",\n\"block_audit\": " << RenderBlockAudit()
        << ",\n\"registry\": " << obs::MetricsRegistry::Default().RenderJson()
        << "}\n";
    std::remove(report_path.c_str());
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace benchutil
}  // namespace plan9

#define P9_BENCHMARK_MAIN(name)                              \
  int main(int argc, char** argv) {                          \
    return ::plan9::benchutil::RunWithObs(argc, argv, name); \
  }

#endif  // BENCH_BENCH_OBS_H_

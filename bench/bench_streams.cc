// §2.4's performance claim: "the time to process protocols and drive device
// interfaces continues to dwarf the time spent allocating, freeing, and
// moving blocks of data."
//
// Benchmarks: block allocation, queue put/get, the put-routine chain at
// several depths ("most data is output without context switching"), 32K
// write splitting, and pipe round trips through two full streams — to set
// against the protocol-path costs bench_il_vs_tcp measures.
#include <benchmark/benchmark.h>

#include "bench/bench_obs.h"

#include "src/stream/block.h"
#include "src/stream/queue.h"
#include "src/stream/stream.h"

namespace plan9 {
namespace {

void BM_BlockAllocFree(benchmark::State& state) {
  for (auto _ : state) {
    auto b = MakeDataBlock(Bytes(1024, 0x11), true);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_BlockAllocFree);

void BM_QueuePutGet(benchmark::State& state) {
  Queue q;
  Bytes payload(1024, 0x22);
  for (auto _ : state) {
    (void)q.PutNoBlock(MakeDataBlock(payload));
    auto b = q.Get();
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_QueuePutGet);

// A no-op pass-through module.
class NullModule : public StreamModule {
 public:
  std::string_view name() const override { return "null"; }
};

// Device that sinks everything and counts bytes.
class SinkDevice : public StreamModule {
 public:
  std::string_view name() const override { return "sink"; }
  void DownPut(BlockPtr b) override { bytes += b->size(); }
  size_t bytes = 0;
};

void BM_PutChain(benchmark::State& state) {
  // Depth = number of pushed modules the write traverses, all on the
  // caller's thread (no context switch).
  static bool registered = [] {
    ModuleRegistry::Instance().Register("null",
                                        [] { return std::make_unique<NullModule>(); });
    return true;
  }();
  (void)registered;
  auto depth = state.range(0);
  Stream s(std::make_unique<SinkDevice>());
  for (int i = 0; i < depth; i++) {
    (void)s.Push("null");
  }
  Bytes payload(1024, 0x33);
  for (auto _ : state) {
    (void)s.Write(payload.data(), payload.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_PutChain)->Arg(0)->Arg(1)->Arg(4)->Arg(8);

void BM_Write32KSplit(benchmark::State& state) {
  // Writes above kMaxBlock split into multiple blocks with one delimiter.
  Stream s(std::make_unique<SinkDevice>());
  Bytes payload(64 * 1024, 0x44);
  for (auto _ : state) {
    (void)s.Write(payload.data(), payload.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_Write32KSplit);

// Loopback device: upstream copy of everything written.
class LoopDevice : public StreamModule {
 public:
  std::string_view name() const override { return "loop"; }
  void DownPut(BlockPtr b) override { PutUp(std::move(b)); }
};

void BM_StreamEcho1K(benchmark::State& state) {
  // Write + read through a full stream (head queue, read lock, delimiters).
  Stream s(std::make_unique<LoopDevice>());
  Bytes payload(1024, 0x55);
  Bytes buf(2048);
  for (auto _ : state) {
    (void)s.Write(payload.data(), payload.size());
    (void)s.Read(buf.data(), buf.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_StreamEcho1K);

void BM_ControlBlockParse(benchmark::State& state) {
  // "The time to parse control blocks is not important, since control
  // operations are rare" — but measure it anyway.
  Stream s(std::make_unique<SinkDevice>());
  for (auto _ : state) {
    (void)s.WriteControl("connect 135.104.9.31!564");
  }
}
BENCHMARK(BM_ControlBlockParse);

}  // namespace
}  // namespace plan9

P9_BENCHMARK_MAIN("streams");

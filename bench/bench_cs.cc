// §4.2: connection-server translation rates.
//
// Every dial pays one CS translation; these benchmarks measure the pure
// translator (literal names, symbolic names, the $attr source-host walk,
// and the net! fan-out) against the paper's database shapes.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/csdns/cs.h"
#include "src/ndb/ndb.h"

namespace plan9 {
namespace {

const char kNdbText[] = R"(ipnet=mh-astro-net ip=135.104.0.0
	auth=p9auth
ipnet=unix-room ip=135.104.9.0 ipmask=255.255.255.0
	ipgw=135.104.9.1
sys=helix
	dom=helix.research.bell-labs.com
	ip=135.104.9.31 dk=nj/astro/helix
sys=musca
	dom=musca.research.bell-labs.com
	ip=135.104.9.6 dk=nj/astro/musca
sys=p9auth
	ip=135.104.9.34 dk=nj/astro/p9auth
il=9fs port=17008
il=rexauth port=17021
tcp=9fs port=564
tcp=echo port=7
)";

CsTranslator* Translator(bool indexed) {
  static Ndb* db = [] {
    auto* d = new Ndb();
    (void)d->Load(kNdbText);
    (void)d->Load(SynthesizeGlobalNdb(10'000));  // a realistic global file
    return d;
  }();
  static CsTranslator* indexed_tr = nullptr;
  static CsTranslator* plain_tr = nullptr;
  auto make = [&] {
    CsConfig config;
    config.sysname = "helix";
    config.self_ip = Ipv4Addr::FromOctets(135, 104, 9, 31);
    config.dk_name = "nj/astro/helix";
    config.db = db;
    config.nets = {{"il", true}, {"dk", false}, {"tcp", true}, {"udp", true}};
    return new CsTranslator(std::move(config));
  };
  if (indexed) {
    if (indexed_tr == nullptr) {
      db->BuildIndex("sys");
      db->BuildIndex("dom");
      db->BuildIndex("il");
      db->BuildIndex("tcp");
      indexed_tr = make();
    }
    return indexed_tr;
  }
  if (plain_tr == nullptr) {
    db->InvalidateIndexes();
    plain_tr = make();
  }
  return plain_tr;
}

void BM_TranslateLiteralAddress(benchmark::State& state) {
  auto* tr = Translator(true);
  for (auto _ : state) {
    auto r = tr->Query("tcp!135.104.9.6!564");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TranslateLiteralAddress);

void BM_TranslateSymbolicIndexed(benchmark::State& state) {
  auto* tr = Translator(true);
  for (auto _ : state) {
    auto r = tr->Query("net!helix!9fs");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TranslateSymbolicIndexed);

void BM_TranslateSymbolicLinear(benchmark::State& state) {
  // The out-of-date-hash fallback path the paper calls out.
  auto* tr = Translator(false);
  for (auto _ : state) {
    auto r = tr->Query("net!helix!9fs");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TranslateSymbolicLinear);

void BM_TranslateAuthMetaName(benchmark::State& state) {
  auto* tr = Translator(true);
  for (auto _ : state) {
    auto r = tr->Query("net!$auth!rexauth");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TranslateAuthMetaName);

void BM_TranslateAnnounce(benchmark::State& state) {
  auto* tr = Translator(true);
  for (auto _ : state) {
    auto r = tr->Query("announce net!*!9fs");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TranslateAnnounce);

}  // namespace
}  // namespace plan9

BENCHMARK_MAIN();

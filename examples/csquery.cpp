// ndb/csquery (§4.2): "a program that prompts for strings to write to
// /net/cs and prints the replies."
//
// With no arguments it replays the paper's two example queries against the
// paper's database; with arguments it queries those names.
//
//   % ndb/csquery
//   > net!helix!9fs
//   /net/il/clone 135.104.9.31!17008
//   /net/dk/clone nj/astro/helix!9fs
#include <cstdio>
#include <string>
#include <vector>

#include "src/ndb/ndb.h"
#include "src/ns/proc.h"
#include "src/world/boot.h"
#include "src/world/node.h"

using namespace plan9;

static const char kNdb[] = R"(ipnet=mh-astro-net ip=135.104.0.0
	auth=p9auth
	auth=musca
sys=helix
	dom=helix.research.bell-labs.com
	ip=135.104.9.31 dk=nj/astro/helix
sys=musca
	dom=musca.research.bell-labs.com
	ip=135.104.9.6 dk=nj/astro/musca
sys=p9auth
	ip=135.104.9.34 dk=nj/astro/p9auth
il=9fs port=17008
il=rexauth port=17021
tcp=9fs port=564
)";

static void Query(Proc* p, const std::string& q) {
  std::printf("> %s\n", q.c_str());
  auto fd = p->Open("/net/cs", kORdWr);
  if (!fd.ok()) {
    std::printf("csquery: %s\n", fd.error().message().c_str());
    return;
  }
  if (!p->WriteString(*fd, q).ok()) {
    std::printf("csquery: translation failed\n");
    (void)p->Close(*fd);
    return;
  }
  (void)p->Seek(*fd, 0, kSeekSet);
  for (;;) {
    auto line = p->ReadString(*fd);
    if (!line.ok() || line->empty()) {
      break;
    }
    std::printf("%s\n", line->c_str());
  }
  (void)p->Close(*fd);
}

int main(int argc, char** argv) {
  auto db = std::make_shared<Ndb>();
  (void)db->Load(kNdb);
  db->BuildIndex("sys");
  db->BuildIndex("dom");
  EtherSegment ether(LinkParams::Ether10());
  DatakitSwitch dk;
  Node helix("helix");
  helix.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                 Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
  helix.AddDatakit(&dk, "nj/astro/helix");
  (void)BootNetwork(&helix, db, kNdb);

  auto proc = helix.NewProc("presotto");
  std::vector<std::string> queries;
  for (int i = 1; i < argc; i++) {
    queries.push_back(argv[i]);
  }
  if (queries.empty()) {
    queries = {"net!helix!9fs", "net!$auth!rexauth"};
  }
  std::printf("%% ndb/csquery\n");
  for (auto& q : queries) {
    Query(proc.get(), q);
  }
  return 0;
}
